package gomdb_test

// Tests of trace-driven object clustering: the Recluster pass must preserve
// every materialized result and the directory <-> heap correspondence, and on
// a durable database a crash between Recluster and the next checkpoint must
// recover the old layout while a crash after the checkpoint recovers the
// clustered one — never a mix of the two.

import (
	"reflect"
	"testing"

	"gomdb"
	"gomdb/internal/fixtures"
)

func materializeGvw(t *testing.T, db *gomdb.Database, strategy gomdb.Strategy) {
	t.Helper()
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Name: "Gvw", Funcs: []string{"Cuboid.volume", "Cuboid.weight"},
		Complete: true, Strategy: strategy, Mode: gomdb.ModeObjDep,
	}); err != nil {
		t.Fatalf("materialize: %v", err)
	}
}

func allVolumes(t *testing.T, db *gomdb.Database, cuboids []gomdb.OID) []float64 {
	t.Helper()
	out := make([]float64, len(cuboids))
	for i, c := range cuboids {
		out[i] = mustVolume(t, db, c)
	}
	return out
}

func TestReclusterPreservesResultsAndDirectory(t *testing.T) {
	for _, strategy := range []gomdb.Strategy{gomdb.Immediate, gomdb.Lazy, gomdb.Deferred} {
		t.Run(strategy.String(), func(t *testing.T) {
			db := gomdb.Open(gomdb.DefaultConfig())
			if err := fixtures.DefineGeometry(db, false); err != nil {
				t.Fatal(err)
			}
			geo, err := fixtures.PopulateGeometry(db, 20, 42)
			if err != nil {
				t.Fatal(err)
			}
			materializeGvw(t, db, strategy)
			before := allVolumes(t, db, geo.Cuboids)

			rep, err := db.Recluster()
			if err != nil {
				t.Fatalf("recluster: %v", err)
			}
			if rep.Objects != db.Objects.NumObjects() {
				t.Fatalf("report places %d objects, base holds %d", rep.Objects, db.Objects.NumObjects())
			}
			if rep.Traces == 0 || rep.HotObjects == 0 || rep.Edges == 0 {
				t.Fatalf("materialization left no usable traces: %+v", rep)
			}
			if rep.Moved == 0 {
				t.Fatalf("reclustering a populated base moved nothing: %+v", rep)
			}
			if msgs := db.Objects.AuditDirectory(); len(msgs) != 0 {
				t.Fatalf("directory audit after recluster: %v", msgs)
			}
			after := allVolumes(t, db, geo.Cuboids)
			if !reflect.DeepEqual(before, after) {
				t.Fatal("reclustering changed materialized results")
			}
			crep, err := db.CheckConsistency("Gvw", 1e-9, true)
			if err != nil {
				t.Fatal(err)
			}
			if crep.Err() != nil {
				t.Fatalf("GMR inconsistent after recluster: %+v", crep)
			}
			// A second pass over the already-clustered base is a no-op
			// placement-wise (same traces, same order) and must stay clean.
			if _, err := db.Recluster(); err != nil {
				t.Fatalf("second recluster: %v", err)
			}
			if msgs := db.Objects.AuditDirectory(); len(msgs) != 0 {
				t.Fatalf("directory audit after second recluster: %v", msgs)
			}
		})
	}
}

func TestReclusterAccessStats(t *testing.T) {
	db := gomdb.Open(gomdb.DefaultConfig())
	if err := fixtures.DefineGeometry(db, false); err != nil {
		t.Fatal(err)
	}
	if _, err := fixtures.PopulateGeometry(db, 10, 7); err != nil {
		t.Fatal(err)
	}
	materializeGvw(t, db, gomdb.Immediate)
	st := &db.GMRs.Stats
	if st.ForwardTraces == 0 || st.TraceObjects == 0 || st.TracePages == 0 {
		t.Fatalf("trace counters not populated: traces=%d objects=%d pages=%d",
			st.ForwardTraces, st.TraceObjects, st.TracePages)
	}
	per := db.GMRs.GMRAccessStats()
	g, ok := per["Gvw"]
	if !ok {
		t.Fatalf("no per-GMR access stats for Gvw: %v", per)
	}
	// Two columns per cuboid entry.
	if g.Traces != 20 {
		t.Fatalf("Gvw traces = %d, want 20", g.Traces)
	}
	if g.TraceObjects < g.Traces || g.DistinctPages < g.Traces {
		t.Fatalf("implausible access stats: %+v", g)
	}
	// Dropping the GMR drops its traces and stats.
	if err := db.Dematerialize("Gvw"); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.GMRs.GMRAccessStats()["Gvw"]; ok {
		t.Fatal("dematerialize left access stats behind")
	}
	if db.GMRs.TraceCount() != 0 {
		t.Fatalf("dematerialize left %d traces behind", db.GMRs.TraceCount())
	}
}

func TestReclusterDurableCrashBeforeCheckpointRecoversOldLayout(t *testing.T) {
	dir := t.TempDir()
	db, err := gomdb.OpenAt(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	geo, err := fixtures.PopulateGeometry(db, 12, 9)
	if err != nil {
		t.Fatal(err)
	}
	materializeGvw(t, db, gomdb.Lazy)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	oldDir := db.Objects.ExportDirectory()
	want := allVolumes(t, db, geo.Cuboids)

	rep, err := db.Recluster()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Moved == 0 {
		t.Fatalf("recluster moved nothing: %+v", rep)
	}
	// Crash WITHOUT checkpointing the relocation: recovery must come back in
	// the pre-relocation layout — consistent, never a mix.
	db.Crash()
	db2, err := gomdb.OpenAt(durableConfig(dir))
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer db2.Close()
	gotDir := db2.Objects.ExportDirectory()
	if !reflect.DeepEqual(oldDir.RIDs, gotDir.RIDs) {
		t.Fatal("recovery did not restore the pre-relocation directory")
	}
	if msgs := db2.Objects.AuditDirectory(); len(msgs) != 0 {
		t.Fatalf("directory audit after recovery: %v", msgs)
	}
	if got := allVolumes(t, db2, geo.Cuboids); !reflect.DeepEqual(got, want) {
		t.Fatal("recovered base computes different volumes")
	}
}

func TestReclusterDurableCheckpointCommitsClusteredLayout(t *testing.T) {
	dir := t.TempDir()
	db, err := gomdb.OpenAt(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	geo, err := fixtures.PopulateGeometry(db, 12, 9)
	if err != nil {
		t.Fatal(err)
	}
	materializeGvw(t, db, gomdb.Lazy)
	rep, err := db.Recluster()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Moved == 0 {
		t.Fatalf("recluster moved nothing: %+v", rep)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	newDir := db.Objects.ExportDirectory()
	want := allVolumes(t, db, geo.Cuboids)

	db.Crash()
	db2, err := gomdb.OpenAt(durableConfig(dir))
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer db2.Close()
	gotDir := db2.Objects.ExportDirectory()
	if !reflect.DeepEqual(newDir.RIDs, gotDir.RIDs) {
		t.Fatal("recovery did not restore the clustered directory")
	}
	if msgs := db2.Objects.AuditDirectory(); len(msgs) != 0 {
		t.Fatalf("directory audit after recovery: %v", msgs)
	}
	if got := allVolumes(t, db2, geo.Cuboids); !reflect.DeepEqual(got, want) {
		t.Fatal("recovered base computes different volumes")
	}
}

func TestReclusterOnCheckpointConfig(t *testing.T) {
	cfg := gomdb.DefaultConfig()
	cfg.ReclusterOnCheckpoint = true
	db := gomdb.Open(cfg)
	if err := fixtures.DefineGeometry(db, false); err != nil {
		t.Fatal(err)
	}
	geo, err := fixtures.PopulateGeometry(db, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	materializeGvw(t, db, gomdb.Immediate)
	want := allVolumes(t, db, geo.Cuboids)
	before := db.Objects.ExportDirectory()
	// Checkpoint on an in-memory database persists nothing but still runs
	// the configured reclustering pass.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after := db.Objects.ExportDirectory()
	if reflect.DeepEqual(before.RIDs, after.RIDs) {
		t.Fatal("ReclusterOnCheckpoint did not relocate anything")
	}
	if msgs := db.Objects.AuditDirectory(); len(msgs) != 0 {
		t.Fatalf("directory audit: %v", msgs)
	}
	if got := allVolumes(t, db, geo.Cuboids); !reflect.DeepEqual(got, want) {
		t.Fatal("checkpoint-time reclustering changed results")
	}
}

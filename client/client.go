// Package client is the gomdb network SDK: it dials a gomserve instance
// (or wraps any net.Conn, e.g. one half of a net.Pipe in tests), performs
// the versioned handshake, and exposes the embedded API's surface over the
// internal/wire protocol — queries, function calls, elementary updates,
// GMR materialization and retrieval, and interactive update batches.
//
// A Client multiplexes nothing: calls are serialized on the connection
// (guarded by a mutex), one request in flight at a time, responses matched
// to requests by id. Open one Client per concurrent actor.
package client

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"gomdb"
	"gomdb/internal/query"
	"gomdb/internal/wire"
)

// Options configures Dial and New.
type Options struct {
	// Token is the authentication token presented in the handshake.
	Token string
	// DialTimeout bounds Dial's connection attempt; 0 means no limit.
	DialTimeout time.Duration
	// CallTimeout bounds each request/response round trip (deadline armed
	// per frame, so long streams are not starved); 0 means no limit.
	CallTimeout time.Duration
}

// Client is one protocol session.
type Client struct {
	opts Options

	mu     sync.Mutex
	conn   net.Conn
	br     *bufio.Reader
	reqID  uint64
	shards uint32
	closed bool
}

// Dial connects to a gomserve at addr and performs the handshake.
func Dial(addr string, opts Options) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	c, err := New(conn, opts)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// New wraps an established connection (any net.Conn) and performs the
// handshake. On error the connection is left to the caller to close.
func New(conn net.Conn, opts Options) (*Client, error) {
	c := &Client{opts: opts, conn: conn, br: bufio.NewReader(conn)}
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpHello, WireVersion: wire.Version, Token: opts.Token})
	if err != nil {
		return nil, err
	}
	if resp.Op != wire.RespHello {
		return nil, wire.Errf(wire.CodeBadRequest, "handshake answered with %s", resp.Op)
	}
	if resp.WireVersion != wire.Version {
		return nil, wire.Errf(wire.CodeVersion, "server speaks protocol %d, client speaks %d", resp.WireVersion, wire.Version)
	}
	c.shards = resp.Shards
	return c, nil
}

// Shards reports the server backend's partition count (1 for a plain
// engine), as announced in the handshake.
func (c *Client) Shards() int { return int(c.shards) }

// Close announces an orderly goodbye and closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	// Best-effort goodbye; the close matters more than the ack.
	c.exchange(&wire.Request{Op: wire.OpGoodbye})
	return c.conn.Close()
}

// Ping round-trips a liveness probe.
func (c *Client) Ping() error {
	_, err := c.exchangeAck(&wire.Request{Op: wire.OpPing})
	return err
}

// --- wire plumbing ---------------------------------------------------------

var errClosed = wire.Errf(wire.CodeShutdown, "client is closed")

// exchange performs one serialized request/response round trip.
func (c *Client) exchange(req *wire.Request) (*wire.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.roundTrip(req)
}

// roundTrip writes req and reads its (non-stream) response. Callers hold
// c.mu (New calls it before the client escapes its goroutine).
func (c *Client) roundTrip(req *wire.Request) (*wire.Response, error) {
	id, err := c.send(req)
	if err != nil {
		return nil, err
	}
	return c.recv(id)
}

func (c *Client) send(req *wire.Request) (uint64, error) {
	if c.closed && req.Op != wire.OpGoodbye {
		return 0, errClosed
	}
	payload, err := wire.EncodeRequest(req)
	if err != nil {
		return 0, err
	}
	c.reqID++
	id := c.reqID
	if t := c.opts.CallTimeout; t > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(t))
	}
	if err := wire.WriteFrame(c.conn, &wire.Frame{Op: req.Op, ReqID: id, Payload: payload}); err != nil {
		return 0, err
	}
	return id, nil
}

// recv reads one response frame for request id and decodes it. RespError
// becomes a structured *wire.Error.
func (c *Client) recv(id uint64) (*wire.Response, error) {
	if t := c.opts.CallTimeout; t > 0 {
		c.conn.SetReadDeadline(time.Now().Add(t))
	}
	frame, err := wire.ReadFrame(c.br)
	if err != nil {
		return nil, err
	}
	if frame.ReqID != id {
		// A connection-level refusal (the server rejects before reading any
		// request — full, draining) travels as a RespError with id 0.
		if frame.Op == wire.RespError && frame.ReqID == 0 {
			if resp, derr := wire.DecodeResponse(frame.Op, frame.Payload); derr == nil {
				return nil, resp.Err()
			}
		}
		return nil, wire.Errf(wire.CodeMalformed, "response for request %d, expected %d", frame.ReqID, id)
	}
	resp, err := wire.DecodeResponse(frame.Op, frame.Payload)
	if err != nil {
		return nil, err
	}
	if err := resp.Err(); err != nil {
		return nil, err
	}
	return resp, nil
}

// exchangeAck round-trips req and insists on RespAck.
func (c *Client) exchangeAck(req *wire.Request) (*wire.Response, error) {
	resp, err := c.exchange(req)
	if err != nil {
		return nil, err
	}
	if resp.Op != wire.RespAck {
		return nil, wire.Errf(wire.CodeMalformed, "expected ack, got %s", resp.Op)
	}
	return resp, nil
}

// exchangeStream round-trips a streamed request: RespStreamBegin of the
// expected kind, any number of RespChunk frames, RespDone. Each chunk is
// handed to sink; the reported total is verified against the delivered row
// count, so a lost chunk cannot pass silently.
func (c *Client) exchangeStream(req *wire.Request, kind wire.StreamKind, sink func(*wire.Response) int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, err := c.send(req)
	if err != nil {
		return err
	}
	begin, err := c.recv(id)
	if err != nil {
		return err
	}
	if begin.Op != wire.RespStreamBegin || begin.Stream != kind {
		return wire.Errf(wire.CodeMalformed, "expected %d-stream begin, got %s", kind, begin.Op)
	}
	sink(begin) // columns travel on the begin frame
	delivered := 0
	for {
		resp, err := c.recv(id)
		if err != nil {
			return err
		}
		switch resp.Op {
		case wire.RespChunk:
			if resp.Stream != kind {
				return wire.Errf(wire.CodeMalformed, "stream kind changed mid-stream")
			}
			delivered += sink(resp)
		case wire.RespDone:
			if uint64(delivered) != resp.Total {
				return wire.Errf(wire.CodeMalformed, "stream delivered %d rows, server sent %d", delivered, resp.Total)
			}
			return nil
		default:
			return wire.Errf(wire.CodeMalformed, "unexpected %s inside stream", resp.Op)
		}
	}
}

// --- embedded-API surface --------------------------------------------------

// Query runs a GOMql statement with named parameters.
func (c *Client) Query(src string, params map[string]gomdb.Value) (*gomdb.QueryResult, error) {
	res := &query.Result{}
	err := c.exchangeStream(&wire.Request{Op: wire.OpQuery, Name: src, Params: params}, wire.StreamQuery,
		func(resp *wire.Response) int {
			if resp.Op == wire.RespStreamBegin {
				res.Columns = resp.Columns
				return 0
			}
			res.Rows = append(res.Rows, resp.Rows...)
			return len(resp.Rows)
		})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Call invokes a function or operation (forward query when materialized).
func (c *Client) Call(fn string, args ...gomdb.Value) (gomdb.Value, error) {
	resp, err := c.exchange(&wire.Request{Op: wire.OpCall, Name: fn, Args: args})
	if err != nil {
		return gomdb.Value{}, err
	}
	return resp.Val, nil
}

// GetAttr reads one attribute.
func (c *Client) GetAttr(oid gomdb.OID, attr string) (gomdb.Value, error) {
	resp, err := c.exchange(&wire.Request{Op: wire.OpGetAttr, OID: oid, Attr: attr})
	if err != nil {
		return gomdb.Value{}, err
	}
	return resp.Val, nil
}

// Set performs the elementary update oid.set_attr(v).
func (c *Client) Set(oid gomdb.OID, attr string, v gomdb.Value) error {
	_, err := c.exchangeAck(&wire.Request{Op: wire.OpSet, OID: oid, Attr: attr, Val: v})
	return err
}

// New creates a tuple-structured instance.
func (c *Client) New(typeName string, attrs ...gomdb.Value) (gomdb.OID, error) {
	resp, err := c.exchange(&wire.Request{Op: wire.OpNew, Name: typeName, Args: attrs})
	if err != nil {
		return 0, err
	}
	return resp.OID, nil
}

// NewSet creates a set- or list-structured instance.
func (c *Client) NewSet(typeName string, elems ...gomdb.Value) (gomdb.OID, error) {
	resp, err := c.exchange(&wire.Request{Op: wire.OpNewSet, Name: typeName, Args: elems})
	if err != nil {
		return 0, err
	}
	return resp.OID, nil
}

// Delete removes an object.
func (c *Client) Delete(oid gomdb.OID) error {
	_, err := c.exchangeAck(&wire.Request{Op: wire.OpDelete, OID: oid})
	return err
}

// Insert performs set.insert(elem).
func (c *Client) Insert(set gomdb.OID, elem gomdb.Value) error {
	_, err := c.exchangeAck(&wire.Request{Op: wire.OpInsert, OID: set, Val: elem})
	return err
}

// Remove performs set.remove(elem).
func (c *Client) Remove(set gomdb.OID, elem gomdb.Value) error {
	_, err := c.exchangeAck(&wire.Request{Op: wire.OpRemove, OID: set, Val: elem})
	return err
}

// Retrieve answers a tabular GMR query.
func (c *Client) Retrieve(gmrName string, spec []gomdb.FieldSpec) ([]gomdb.Row, error) {
	var rows []gomdb.Row
	err := c.exchangeStream(&wire.Request{Op: wire.OpRetrieve, Name: gmrName, Specs: spec}, wire.StreamRows,
		func(resp *wire.Response) int {
			rows = append(rows, resp.GRows...)
			return len(resp.GRows)
		})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Backward answers a backward range query over a materialized function.
func (c *Client) Backward(fid string, lb, ub float64) ([]gomdb.Match, error) {
	var matches []gomdb.Match
	err := c.exchangeStream(&wire.Request{Op: wire.OpBackward, Name: fid, Lo: lb, Hi: ub}, wire.StreamMatches,
		func(resp *wire.Response) int {
			matches = append(matches, resp.Matches...)
			return len(resp.Matches)
		})
	if err != nil {
		return nil, err
	}
	return matches, nil
}

// Sum aggregates a materialized function over oids (nil means every
// materialized entry).
func (c *Client) Sum(fid string, oids []gomdb.OID) (float64, error) {
	resp, err := c.exchange(&wire.Request{Op: wire.OpSum, Name: fid, OIDs: oids, HasOIDs: oids != nil})
	if err != nil {
		return 0, err
	}
	if resp.Op != wire.RespFloat {
		return 0, wire.Errf(wire.CodeMalformed, "expected float, got %s", resp.Op)
	}
	return resp.F, nil
}

// Extension returns the extension of a type.
func (c *Client) Extension(typeName string) ([]gomdb.OID, error) {
	var oids []gomdb.OID
	err := c.exchangeStream(&wire.Request{Op: wire.OpExtension, Name: typeName}, wire.StreamOIDs,
		func(resp *wire.Response) int {
			oids = append(oids, resp.OIDs...)
			return len(resp.OIDs)
		})
	if err != nil {
		return nil, err
	}
	return oids, nil
}

// Materialize creates a GMR on the server. Restriction predicates and
// atomic-argument restrictions are function values — code, not data — and
// cannot travel over the wire; options carrying them are rejected locally.
func (c *Client) Materialize(opts gomdb.MaterializeOptions) error {
	if opts.Restriction != nil || len(opts.AtomicArgs) > 0 {
		return wire.Errf(wire.CodeBadRequest, "restricted GMRs cannot be created over the wire")
	}
	if opts.MaxEntries < 0 || int64(opts.MaxEntries) > int64(^uint32(0)) {
		return wire.Errf(wire.CodeBadRequest, "max entries %d out of wire range", opts.MaxEntries)
	}
	_, err := c.exchangeAck(&wire.Request{Op: wire.OpMaterialize, Mat: wire.MatOptions{
		Name:         opts.Name,
		Funcs:        opts.Funcs,
		Strategy:     uint8(opts.Strategy),
		Mode:         uint8(opts.Mode),
		Complete:     opts.Complete,
		SecondChance: opts.SecondChance,
		UseMDS:       opts.UseMDS,
		MemoCache:    opts.MemoCache,
		MaxEntries:   uint32(opts.MaxEntries),
	}})
	return err
}

// Dematerialize drops a GMR.
func (c *Client) Dematerialize(name string) error {
	_, err := c.exchangeAck(&wire.Request{Op: wire.OpDematerialize, Name: name})
	return err
}

// Flush drains the server's deferred-rematerialization queue.
func (c *Client) Flush() error {
	_, err := c.exchangeAck(&wire.Request{Op: wire.OpFlush})
	return err
}

// SimSeconds reads the server's simulated-cost clock.
func (c *Client) SimSeconds() (float64, error) {
	resp, err := c.exchange(&wire.Request{Op: wire.OpSimSeconds})
	if err != nil {
		return 0, err
	}
	if resp.Op != wire.RespFloat {
		return 0, wire.Errf(wire.CodeMalformed, "expected float, got %s", resp.Op)
	}
	return resp.F, nil
}

// --- interactive batches ---------------------------------------------------

// Batch is an open interactive update batch: the server holds the engine's
// exclusive lock until Commit or Abort. A Batch belongs to its Client's
// connection; while it is open, only batch operations may travel on it.
type Batch struct {
	c    *Client
	done bool
}

// BeginBatch opens an interactive batch on the server.
func (c *Client) BeginBatch() (*Batch, error) {
	if _, err := c.exchangeAck(&wire.Request{Op: wire.OpBatchBegin}); err != nil {
		return nil, err
	}
	return &Batch{c: c}, nil
}

// Batch runs fn inside an interactive batch; fn's error aborts the batch
// (matching the embedded Batch contract: the verdict propagates, applied
// operations are not rolled back).
func (c *Client) Batch(fn func(*Batch) error) error {
	b, err := c.BeginBatch()
	if err != nil {
		return err
	}
	if err := fn(b); err != nil {
		if aerr := b.Abort(); aerr != nil {
			return fmt.Errorf("%w (abort also failed: %v)", err, aerr)
		}
		return err
	}
	return b.Commit()
}

func (b *Batch) sub(sub *wire.Request) (*wire.Response, error) {
	if b.done {
		return nil, wire.Errf(wire.CodeBatch, "batch already closed")
	}
	return b.c.exchange(&wire.Request{Op: wire.OpBatchOp, Sub: sub})
}

// New creates a tuple-structured instance inside the batch.
func (b *Batch) New(typeName string, attrs ...gomdb.Value) (gomdb.OID, error) {
	resp, err := b.sub(&wire.Request{Op: wire.OpNew, Name: typeName, Args: attrs})
	if err != nil {
		return 0, err
	}
	return resp.OID, nil
}

// NewSet creates a set-structured instance inside the batch.
func (b *Batch) NewSet(typeName string, elems ...gomdb.Value) (gomdb.OID, error) {
	resp, err := b.sub(&wire.Request{Op: wire.OpNewSet, Name: typeName, Args: elems})
	if err != nil {
		return 0, err
	}
	return resp.OID, nil
}

// Delete removes an object inside the batch.
func (b *Batch) Delete(oid gomdb.OID) error {
	_, err := b.sub(&wire.Request{Op: wire.OpDelete, OID: oid})
	return err
}

// Set performs oid.set_attr(v) inside the batch.
func (b *Batch) Set(oid gomdb.OID, attr string, v gomdb.Value) error {
	_, err := b.sub(&wire.Request{Op: wire.OpSet, OID: oid, Attr: attr, Val: v})
	return err
}

// GetAttr reads one attribute inside the batch.
func (b *Batch) GetAttr(oid gomdb.OID, attr string) (gomdb.Value, error) {
	resp, err := b.sub(&wire.Request{Op: wire.OpGetAttr, OID: oid, Attr: attr})
	if err != nil {
		return gomdb.Value{}, err
	}
	return resp.Val, nil
}

// Insert performs set.insert(elem) inside the batch.
func (b *Batch) Insert(set gomdb.OID, elem gomdb.Value) error {
	_, err := b.sub(&wire.Request{Op: wire.OpInsert, OID: set, Val: elem})
	return err
}

// Remove performs set.remove(elem) inside the batch.
func (b *Batch) Remove(set gomdb.OID, elem gomdb.Value) error {
	_, err := b.sub(&wire.Request{Op: wire.OpRemove, OID: set, Val: elem})
	return err
}

// Call invokes a function inside the batch.
func (b *Batch) Call(fn string, args ...gomdb.Value) (gomdb.Value, error) {
	resp, err := b.sub(&wire.Request{Op: wire.OpCall, Name: fn, Args: args})
	if err != nil {
		return gomdb.Value{}, err
	}
	return resp.Val, nil
}

// Commit closes the batch successfully: the server saves metadata, drains
// deferred work, and checkpoints before the ack.
func (b *Batch) Commit() error { return b.commit(false) }

// Abort closes the batch with a failure verdict. Operations already applied
// stay applied (the engine's batches are not transactional); the abort
// marks the batch failed and releases the server-side lock.
func (b *Batch) Abort() error { return b.commit(true) }

func (b *Batch) commit(abort bool) error {
	if b.done {
		return wire.Errf(wire.CodeBatch, "batch already closed")
	}
	b.done = true
	_, err := b.c.exchangeAck(&wire.Request{Op: wire.OpBatchCommit, Abort: abort})
	return err
}

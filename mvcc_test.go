package gomdb_test

// Tests of the MVCC snapshot read path: readers must not stall behind
// writers (the regression the snapshot path retires), snapshots must present
// one consistent version across every read surface, pins must drain, and
// barrier operations must exclude pinned readers.

import (
	"testing"
	"time"

	"gomdb"
)

// materializedRectangleDB is rectangleDB populated with n rectangles
// (Width=i, Height=2) and Rectangle.area materialized complete; it returns
// the database, the extension, and the GMR name.
func materializedRectangleDB(t *testing.T, n int) (*gomdb.Database, []gomdb.OID, string) {
	t.Helper()
	db := rectangleDB(t)
	for i := 1; i <= n; i++ {
		db.MustNew("Rectangle", gomdb.Float(float64(i)), gomdb.Float(2))
	}
	g, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Rectangle.area"}, Complete: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db, db.Extension("Rectangle"), g.Name
}

// TestReaderDoesNotStallBehindWriter is the tentpole regression: a
// side-effect-free Call arriving while an update batch holds the exclusive
// engine lock must be answered from a snapshot instead of queueing behind
// the writer. Before the MVCC read path this deadlocked until the batch
// finished (the write-preferring RWMutex also stalled every later reader).
func TestReaderDoesNotStallBehindWriter(t *testing.T) {
	db, oids, gmrName := materializedRectangleDB(t, 8)

	entered := make(chan struct{})
	hold := make(chan struct{})
	batchDone := make(chan error, 1)
	go func() {
		batchDone <- db.Batch(func(tx *gomdb.Tx) error {
			close(entered)
			<-hold
			return tx.Set(oids[0], "Width", gomdb.Float(100))
		})
	}()
	<-entered // the batch holds the exclusive lock from here until hold closes

	type res struct {
		v   gomdb.Value
		err error
	}
	callDone := make(chan res, 1)
	go func() {
		v, err := db.Call("Rectangle.area", gomdb.Ref(oids[0]))
		callDone <- res{v, err}
	}()
	select {
	case r := <-callDone:
		if r.err != nil {
			t.Fatalf("snapshot call: %v", r.err)
		}
		if f, _ := r.v.AsFloat(); f != 2 { // pre-batch: Width=1, Height=2
			t.Fatalf("snapshot call = %v, want 2 (pre-batch state)", r.v)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("reader stalled behind the update batch")
	}

	// Query, Retrieve, GetAttr, Extension, CheckConsistency must all be
	// answerable while the writer still holds the engine.
	qr, err := db.Query(`range r: Rectangle retrieve r.Width where r.area >= 4.0 and r.area <= 8.0`, nil)
	if err != nil {
		t.Fatalf("snapshot query: %v", err)
	}
	if len(qr.Rows) != 3 { // widths 2,3,4
		t.Fatalf("snapshot query rows = %d, want 3", len(qr.Rows))
	}
	if v, err := db.GetAttr(oids[2], "Width"); err != nil {
		t.Fatalf("snapshot GetAttr: %v", err)
	} else if f, _ := v.AsFloat(); f != 3 {
		t.Fatalf("snapshot GetAttr = %v, want 3", v)
	}
	if got := len(db.Extension("Rectangle")); got != 8 {
		t.Fatalf("snapshot Extension = %d, want 8", got)
	}
	rows, err := db.Retrieve(gmrName, []gomdb.FieldSpec{
		gomdb.AnySpec(), gomdb.AnySpec(),
	})
	if err != nil {
		t.Fatalf("snapshot Retrieve: %v", err)
	}
	if len(rows) != 8 {
		t.Fatalf("snapshot Retrieve rows = %d, want 8", len(rows))
	}
	rep, err := db.CheckConsistency(gmrName, 1e-9, true)
	if err != nil {
		t.Fatalf("snapshot CheckConsistency: %v", err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("snapshot audit: %v", err)
	}

	close(hold)
	if err := <-batchDone; err != nil {
		t.Fatalf("batch: %v", err)
	}
	// The batch's update must be visible now, and no pin may remain.
	if v, _ := db.Call("Rectangle.area", gomdb.Ref(oids[0])); v.F != 200 {
		t.Fatalf("post-batch area = %v, want 200", v)
	}
	if st := db.MVCCStats(); st.ActivePins != 0 {
		t.Fatalf("%d pins leaked", st.ActivePins)
	}
}

// TestSnapshotViewConsistency pins an explicit view and verifies every read
// surface answers at the pinned version while the live engine moves on:
// updates, inserts, and deletes after the pin are all invisible.
func TestSnapshotViewConsistency(t *testing.T) {
	db, oids, gmrName := materializedRectangleDB(t, 6)
	view, err := db.SnapshotView()
	if err != nil {
		t.Fatal(err)
	}
	defer view.Release()

	if err := db.Set(oids[0], "Width", gomdb.Float(50)); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(oids[5]); err != nil {
		t.Fatal(err)
	}
	db.MustNew("Rectangle", gomdb.Float(7), gomdb.Float(2))

	// The view still sees the pre-update attribute and materialized result.
	if v, err := view.GetAttr(oids[0], "Width"); err != nil {
		t.Fatal(err)
	} else if f, _ := v.AsFloat(); f != 1 {
		t.Fatalf("view GetAttr = %v, want 1", v)
	}
	if v, err := view.Call("Rectangle.area", gomdb.Ref(oids[0])); err != nil {
		t.Fatal(err)
	} else if f, _ := v.AsFloat(); f != 2 {
		t.Fatalf("view area = %v, want 2", v)
	}
	// The deleted object is still readable at the pinned version; the
	// object created after the pin is invisible.
	if v, err := view.GetAttr(oids[5], "Width"); err != nil {
		t.Fatalf("view read of deleted object: %v", err)
	} else if f, _ := v.AsFloat(); f != 6 {
		t.Fatalf("view GetAttr(deleted) = %v, want 6", v)
	}
	if got := len(view.Extension("Rectangle")); got != 6 {
		t.Fatalf("view Extension = %d, want 6", got)
	}
	if got := len(db.Extension("Rectangle")); got != 6 { // 6 - 1 deleted + 1 new
		t.Fatalf("live Extension = %d, want 6", got)
	}
	// Query and Retrieve at the pinned version.
	qr, err := view.Query(`range r: Rectangle retrieve r.Width where r.area >= 2.0 and r.area <= 4.0`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Rows) != 2 { // widths 1 and 2 at the pinned version
		t.Fatalf("view query rows = %d, want 2: %v", len(qr.Rows), qr.Rows)
	}
	rows, err := view.Retrieve(gmrName, []gomdb.FieldSpec{
		gomdb.AnySpec(), gomdb.RangeSpec(0, 5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("view retrieve rows = %d, want 2", len(rows))
	}
	// Definition 3.2 congruence at the pinned version: stored results must
	// match recomputation against the pinned object base even though the
	// live base has diverged.
	rep, err := view.CheckConsistency(gmrName, 1e-9, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("view audit: %v", err)
	}
	// Live state reflects every post-pin change.
	if v, _ := db.GetAttr(oids[0], "Width"); v.F != 50 {
		t.Fatalf("live GetAttr = %v, want 50", v)
	}

	// A view refuses work it cannot answer read-only.
	if _, err := view.Query(`range r: Rectangle materialize r.perimeter`, nil); err == nil {
		t.Fatal("view accepted a materialize statement")
	}

	view.Release()
	if st := db.MVCCStats(); st.ActivePins != 0 {
		t.Fatalf("%d pins active after release", st.ActivePins)
	}
}

// TestSnapshotSeesInvalidEntriesRecomputed pins a view while a lazy GMR
// holds invalid entries; the snapshot must recompute them against the pinned
// object base rather than exposing stale results or repairing live state.
func TestSnapshotSeesInvalidEntriesRecomputed(t *testing.T) {
	db := rectangleDB(t)
	for i := 1; i <= 4; i++ {
		db.MustNew("Rectangle", gomdb.Float(float64(i)), gomdb.Float(2))
	}
	oids := db.Extension("Rectangle")
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Rectangle.area"}, Complete: true, Strategy: gomdb.Lazy,
	}); err != nil {
		t.Fatal(err)
	}
	// Invalidate entry 0 (lazy: marked, not recomputed), then pin.
	if err := db.Set(oids[0], "Width", gomdb.Float(10)); err != nil {
		t.Fatal(err)
	}
	view, err := db.SnapshotView()
	if err != nil {
		t.Fatal(err)
	}
	defer view.Release()
	// Move the live base past the pin.
	if err := db.Set(oids[0], "Width", gomdb.Float(30)); err != nil {
		t.Fatal(err)
	}
	// The snapshot recomputes the invalid entry at the pinned version.
	if v, err := view.Call("Rectangle.area", gomdb.Ref(oids[0])); err != nil {
		t.Fatal(err)
	} else if f, _ := v.AsFloat(); f != 20 {
		t.Fatalf("view area = %v, want 20 (pinned Width=10)", v)
	}
	// The live engine was not repaired by the snapshot read: forcing the
	// entry now must yield the live value.
	if v, err := db.Call("Rectangle.area", gomdb.Ref(oids[0])); err != nil {
		t.Fatal(err)
	} else if f, _ := v.AsFloat(); f != 60 {
		t.Fatalf("live area = %v, want 60", v)
	}
}

// TestBarrierExcludesPinnedReaders verifies the operations the capture
// protocol cannot version wait for pinned readers to drain.
func TestBarrierExcludesPinnedReaders(t *testing.T) {
	db, _, gmrName := materializedRectangleDB(t, 3)
	view, err := db.SnapshotView()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- db.Dematerialize(gmrName) }()
	select {
	case <-done:
		t.Fatal("Dematerialize completed while a snapshot pin was held")
	case <-time.After(50 * time.Millisecond):
	}
	view.Release()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// After the barrier drains, captures must be fully reclaimed.
	st := db.MVCCStats()
	if st.ActivePins != 0 {
		t.Fatalf("%d pins active", st.ActivePins)
	}
	if st.PageCaptures != 0 || st.ObjectCaptures != 0 || st.EntryCaptures != 0 {
		t.Fatalf("captures leaked after barrier: %+v", st)
	}
}

// TestDisableMVCC covers the baseline switch: no snapshot state is wired,
// SnapshotView refuses, and the read paths still work (blocking).
func TestDisableMVCC(t *testing.T) {
	cfg := gomdb.DefaultConfig()
	cfg.DisableMVCC = true
	db := gomdb.Open(cfg)
	db.MustDefineType(gomdb.NewTupleType("P", gomdb.PubAttr("X", "float")))
	oid := db.MustNew("P", gomdb.Float(4))
	if _, err := db.SnapshotView(); err == nil {
		t.Fatal("SnapshotView succeeded with MVCC disabled")
	}
	if st := db.MVCCStats(); st.Enabled {
		t.Fatal("MVCCStats reports enabled")
	}
	if v, err := db.GetAttr(oid, "X"); err != nil || v.F != 4 {
		t.Fatalf("GetAttr = %v, %v", v, err)
	}
}

package gomdb_test

// Regression tests for the durable-open resource bugs: a panic escaping
// OpenAt (typically a DefineSchema callback using the MustDefine* helpers)
// used to leave the page store's file descriptors open and — now that the
// store holds a directory flock — would leave the directory locked forever,
// and two concurrent opens of one directory used to interleave WAL writes
// silently.

import (
	"os"
	"strings"
	"testing"

	"gomdb"
	"gomdb/internal/fixtures"
)

// countFDs returns the number of open file descriptors of this process.
func countFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("no /proc/self/fd: %v", err)
	}
	return len(ents)
}

// TestOpenPanicReleasesStore drives a panic out of the DefineSchema callback
// and verifies the half-opened page store was torn down: no leaked file
// descriptors, and the directory reopens cleanly (the flock was released).
func TestOpenPanicReleasesStore(t *testing.T) {
	dir := t.TempDir()
	before := countFDs(t)

	cfg := gomdb.DefaultConfig()
	cfg.Path = dir
	cfg.DefineSchema = func(db *gomdb.Database) error {
		// The MustDefine* idiom: schema errors surface as panics.
		db.MustDefineType(gomdb.NewTupleType("Dup", gomdb.Attr("X", "float")))
		db.MustDefineType(gomdb.NewTupleType("Dup", gomdb.Attr("X", "float")))
		return nil
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected the DefineSchema panic to propagate")
			}
		}()
		gomdb.Open(cfg)
	}()

	if after := countFDs(t); after != before {
		t.Fatalf("file descriptors leaked across panicking open: %d -> %d", before, after)
	}
	// The directory lock must be free again: a well-formed open succeeds.
	db, err := gomdb.OpenAt(durableConfig(dir))
	if err != nil {
		t.Fatalf("reopen after panic: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryErrorReleasesStore injects a recovery fault (a schema
// fingerprint mismatch) and verifies the failed open released the store so a
// corrected open succeeds. This was the original shape of the bug: an error
// between OpenPageStore and the baseline checkpoint must abandon the store.
func TestRecoveryErrorReleasesStore(t *testing.T) {
	dir := t.TempDir()
	db, err := gomdb.OpenAt(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fixtures.PopulateGeometry(db, 4, 7); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	before := countFDs(t)
	bad := gomdb.DefaultConfig()
	bad.Path = dir
	bad.DefineSchema = func(db *gomdb.Database) error {
		return db.DefineType(gomdb.NewTupleType("Unrelated", gomdb.Attr("X", "float")))
	}
	if _, err := gomdb.OpenAt(bad); err == nil {
		t.Fatal("open with mismatched schema succeeded")
	} else if !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("unexpected error: %v", err)
	}
	if after := countFDs(t); after != before {
		t.Fatalf("file descriptors leaked across failed recovery: %d -> %d", before, after)
	}
	db2, err := gomdb.OpenAt(durableConfig(dir))
	if err != nil {
		t.Fatalf("corrected reopen: %v", err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDirectoryLockExcludesSecondOpen verifies the store's flock: while one
// database holds a directory, a second open of the same directory is refused
// instead of silently sharing the WAL; Close and Crash both release it.
func TestDirectoryLockExcludesSecondOpen(t *testing.T) {
	dir := t.TempDir()
	db, err := gomdb.OpenAt(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gomdb.OpenAt(durableConfig(dir)); err == nil {
		t.Fatal("second open of a held directory succeeded")
	} else if !strings.Contains(err.Error(), "locked") {
		t.Fatalf("unexpected error: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := gomdb.OpenAt(durableConfig(dir))
	if err != nil {
		t.Fatalf("open after Close: %v", err)
	}
	db2.Crash()
	db3, err := gomdb.OpenAt(durableConfig(dir))
	if err != nil {
		t.Fatalf("open after Crash: %v", err)
	}
	if err := db3.Close(); err != nil {
		t.Fatal(err)
	}
}

package gomdb_test

// Integration tests of the public gomdb API: the full lifecycle a downstream
// user goes through — schema definition, population, materialization via
// GOMql, queries, updates, and teardown.

import (
	"testing"

	"gomdb"
	"gomdb/internal/lang"
)

func rectangleDB(t *testing.T) *gomdb.Database {
	t.Helper()
	db := gomdb.Open(gomdb.DefaultConfig())
	db.MustDefineType(gomdb.NewTupleType("Rectangle",
		gomdb.PubAttr("Width", "float"),
		gomdb.PubAttr("Height", "float"),
	), "area", "perimeter")
	area := &gomdb.Function{
		Params:         []gomdb.Param{lang.Prm("self", "Rectangle")},
		ResultType:     "float",
		SideEffectFree: true,
		Body: []gomdb.Stmt{
			lang.Ret(lang.Mul(lang.A(lang.Self(), "Width"), lang.A(lang.Self(), "Height"))),
		},
	}
	db.MustDefineOp("Rectangle", "area", area)
	perimeter := &gomdb.Function{
		Params:         []gomdb.Param{lang.Prm("self", "Rectangle")},
		ResultType:     "float",
		SideEffectFree: true,
		Body: []gomdb.Stmt{
			lang.Ret(lang.Mul(lang.F(2), lang.Add(lang.A(lang.Self(), "Width"), lang.A(lang.Self(), "Height")))),
		},
	}
	db.MustDefineOp("Rectangle", "perimeter", perimeter)
	return db
}

func TestPublicAPILifecycle(t *testing.T) {
	db := rectangleDB(t)
	for i := 1; i <= 10; i++ {
		db.MustNew("Rectangle", gomdb.Float(float64(i)), gomdb.Float(2))
	}
	// Materialize via GOMql.
	res, err := db.Query(`range r: Rectangle materialize r.area, r.perimeter`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][1].I != 10 {
		t.Fatalf("materialized %v entries", res.Rows[0][1])
	}
	// Backward query.
	res, err = db.Query(`range r: Rectangle retrieve r.Width where r.area >= 10.0 and r.area <= 16.0`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 { // widths 5..8 (areas 10..16)
		t.Fatalf("got %d rows: %v", len(res.Rows), res.Rows)
	}
	// Aggregate over materialized results.
	res, err = db.Query(`range r: Rectangle retrieve sum(r.area), count(r.area), min(r.area), max(r.area), avg(r.area)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if s, _ := row[0].AsFloat(); s != 110 { // 2*(1+..+10)
		t.Fatalf("sum = %v", row[0])
	}
	if row[1].I != 10 {
		t.Fatalf("count = %v", row[1])
	}
	if mn, _ := row[2].AsFloat(); mn != 2 {
		t.Fatalf("min = %v", row[2])
	}
	if mx, _ := row[3].AsFloat(); mx != 20 {
		t.Fatalf("max = %v", row[3])
	}
	if av, _ := row[4].AsFloat(); av != 11 {
		t.Fatalf("avg = %v", row[4])
	}
	// Update and re-query.
	oid := db.Extension("Rectangle")[0]
	if err := db.Set(oid, "Height", gomdb.Float(100)); err != nil {
		t.Fatal(err)
	}
	v, err := db.Call("Rectangle.area", gomdb.Ref(oid))
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := v.AsFloat(); f != 100 {
		t.Fatalf("area after update = %v", v)
	}
	// Teardown restores the unmodified schema.
	for _, name := range db.GMRs.GMRs() {
		if err := db.Dematerialize(name); err != nil {
			t.Fatal(err)
		}
	}
	if db.GMRs.InstalledHookCount() != 0 {
		t.Fatal("hooks left after teardown")
	}
	v, err = db.Call("Rectangle.area", gomdb.Ref(oid))
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := v.AsFloat(); f != 100 {
		t.Fatalf("area after teardown = %v", v)
	}
}

func TestSimulatedCostVisible(t *testing.T) {
	db := rectangleDB(t)
	if db.SimSeconds() != 0 {
		t.Fatal("fresh database has nonzero simulated time")
	}
	for i := 0; i < 2000; i++ {
		db.MustNew("Rectangle", gomdb.Float(1), gomdb.Float(1))
	}
	if db.SimSeconds() <= 0 {
		t.Fatal("population charged nothing")
	}
	snap := db.Snapshot()
	if snap.LogWrites == 0 {
		t.Fatal("no logical writes recorded")
	}
}

func TestCollectionsAPI(t *testing.T) {
	db := rectangleDB(t)
	db.MustDefineType(gomdb.NewSetType("Rects", "Rectangle"), "insert", "remove")
	a := db.MustNew("Rectangle", gomdb.Float(1), gomdb.Float(1))
	bOid := db.MustNew("Rectangle", gomdb.Float(2), gomdb.Float(2))
	set, err := db.NewSet("Rects", gomdb.Ref(a))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Insert(set, gomdb.Ref(bOid)); err != nil {
		t.Fatal(err)
	}
	elems, err := db.Engine.ReadElems(gomdb.Ref(set))
	if err != nil || len(elems) != 2 {
		t.Fatalf("elems = %v, %v", elems, err)
	}
	if err := db.Remove(set, gomdb.Ref(a)); err != nil {
		t.Fatal(err)
	}
	elems, _ = db.Engine.ReadElems(gomdb.Ref(set))
	if len(elems) != 1 || elems[0].R != bOid {
		t.Fatalf("after remove: %v", elems)
	}
	if err := db.Delete(bOid); err != nil {
		t.Fatal(err)
	}
	if db.Objects.Exists(bOid) {
		t.Fatal("delete failed")
	}
}

// TestTextualDefinitionLifecycle drives the interactive workflow: define a
// derived function textually, materialize it, query it through the GMR, and
// watch updates maintain it.
func TestTextualDefinitionLifecycle(t *testing.T) {
	db := rectangleDB(t)
	for i := 1; i <= 6; i++ {
		db.MustNew("Rectangle", gomdb.Float(float64(i)), gomdb.Float(3))
	}
	if err := db.DefineOpSrc("Rectangle", `
		define aspect: float is
			!! width-to-height ratio
			return self.Width / self.Height
		end`, true); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`range r: Rectangle materialize r.aspect`, nil); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`range r: Rectangle retrieve r.Width where r.aspect > 1.0`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 { // widths 4, 5, 6 over height 3
		t.Fatalf("aspect query returned %d rows", len(res.Rows))
	}
	// An update must flow through the rewritten set_Height.
	oid := db.Extension("Rectangle")[0] // width 1
	if err := db.Set(oid, "Height", gomdb.Float(0.5)); err != nil {
		t.Fatal(err)
	}
	v, err := db.Call("Rectangle.aspect", gomdb.Ref(oid))
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := v.AsFloat(); f != 2 {
		t.Fatalf("aspect after update = %v, want 2", v)
	}
	// Textual definitions are statically analyzable: the GMR rewrote only
	// the relevant operations.
	if !db.Engine.Hooks.Installed("Rectangle", "set_Height") {
		t.Fatal("set_Height not rewritten")
	}
	// A non-side-effect-free textual definition cannot be materialized.
	if err := db.DefineOpSrc("Rectangle", `
		define widen is
			self.set_Width(self.Width + 1.0)
		end`, false); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`range r: Rectangle materialize r.widen`, nil); err == nil {
		t.Fatal("materialize of updating operation accepted")
	}
}

func TestQueryErrors(t *testing.T) {
	db := rectangleDB(t)
	db.MustNew("Rectangle", gomdb.Float(1), gomdb.Float(1))
	if _, err := db.Query(`range r: Missing retrieve r`, nil); err == nil {
		t.Fatal("unknown type accepted")
	}
	if _, err := db.Query(`range r: Rectangle retrieve r.nope`, nil); err == nil {
		t.Fatal("unknown path segment accepted")
	}
	if _, err := db.Query(`range r: Rectangle retrieve r where r.Width = $missing`, nil); err == nil {
		t.Fatal("unbound parameter accepted")
	}
	if _, err := db.Query(`range r: Rectangle retrieve sum(r.area), r.Width`, nil); err == nil {
		t.Fatal("mixed aggregate/plain targets accepted")
	}
	if _, err := db.Query(`range a: Rectangle, b: Rectangle materialize a.area`, nil); err == nil {
		t.Fatal("multi-range materialize accepted")
	}
}

package gomdb

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"gomdb/internal/core"
	"gomdb/internal/object"
	"gomdb/internal/storage"
)

// Durable databases. With Config.Path set, the simulated disk gains a real
// file-backed page store behind it (storage.PageStore): at every checkpoint
// point — Flush, Batch end, Materialize, Dematerialize, Close, or an explicit
// Checkpoint call — the pages written since the last checkpoint plus a
// metadata blob are made durable atomically through a physical write-ahead
// log with page-level redo records and checksums. Reopening the directory
// replays the WAL, restores the object base, and rebuilds every GMR from its
// persisted catalog description.
//
// Two properties are deliberate:
//
//   - The simulated Clock is bit-identical whether durability is on or off:
//     checkpoint I/O is real I/O, charged to nothing, and the dirty-page
//     bookkeeping never touches the buffer pool's simulated write-back
//     accounting. The paper's figures are unchanged by durability.
//
//   - GMR extensions, RRR tuples, indexes, and the deferred queue are NOT
//     persisted — only the catalog of Materialize options is. Recovery
//     re-validates by recomputation: complete GMRs repopulate fully from the
//     restored objects (healing any invalidation that was in flight at crash
//     time), incremental GMRs come back as empty caches. Deferred work
//     pending at the crash can therefore never resurface as a silently-stale
//     valid entry.

// ErrSimulatedCrash marks an injected crash point in the durable layer
// (TestingFailNextCheckpoint or a FaultTornWrite rule); match it with
// errors.Is. After it surfaces, the database must be treated as crashed:
// call Crash and reopen the directory.
var ErrSimulatedCrash = storage.ErrSimulatedCrash

var errRestrictedDurable = errors.New(
	"gomdb: restricted GMRs (Restriction/AtomicArgs) are not supported on durable databases: " +
		"their predicates are code and cannot be rebuilt on recovery")

// durableMeta is the engine metadata blob of one checkpoint. It is
// deterministic JSON: every map is exported as a sorted slice, so identical
// engine states serialize to identical bytes (the golden-file tests rely on
// it).
type durableMeta struct {
	Version    int              `json:"version"`
	SchemaSig  uint64           `json:"schemaSig"`
	NextPage   uint32           `json:"nextPage"`
	Objects    object.Directory `json:"objects"`
	ResultObjs []OID            `json:"resultObjs,omitempty"`
	GMRs       []core.GMRMeta   `json:"gmrs,omitempty"`
	// Pending records the deferred-queue length at checkpoint time (nonzero
	// only for checkpoints taken outside flush points, e.g. Materialize);
	// recovery reports it as PendingDiscarded.
	Pending int `json:"pending,omitempty"`
}

// RecoveryInfo describes what OpenAt recovered from an existing directory.
type RecoveryInfo struct {
	// Recovered is true when the directory held a committed checkpoint.
	Recovered bool
	// WALPagesReplayed counts page images re-applied from a committed WAL
	// batch (the crash hit between WAL commit and data-file apply).
	WALPagesReplayed int
	// TornPagesRepaired counts data-file records with invalid checksums
	// whose content recovery took from the WAL copy instead.
	TornPagesRepaired int
	// WALTailDiscarded is true when an uncommitted WAL tail was thrown away
	// (the crash hit mid-append; the previous checkpoint survived).
	WALTailDiscarded bool
	// ObjectsRestored is the number of objects in the recovered base.
	ObjectsRestored int
	// GMRsRebuilt is the number of GMRs re-materialized from the catalog.
	GMRsRebuilt int
	// CachesReset names the incremental (non-complete) GMRs that came back
	// as empty caches — their entries were dropped rather than re-validated.
	CachesReset []string
	// PendingDiscarded is the number of deferred-queue entries that were
	// pending at the recovered checkpoint; their invalidations were healed
	// by full recomputation.
	PendingDiscarded int
}

// OpenAt opens (creating if necessary) a durable database in cfg.Path,
// running recovery when the directory holds an existing base. It is Open for
// callers that want recovery failures as errors instead of panics.
func OpenAt(cfg Config) (*Database, error) {
	if cfg.Path == "" {
		return nil, errors.New("gomdb: OpenAt requires Config.Path")
	}
	db := newDatabase(cfg)
	ps, img, err := storage.OpenPageStore(cfg.Path)
	if err != nil {
		return nil, err
	}
	db.Disk.EnableDurability()
	ps.SetTornWriteHook(db.Disk.CheckTornWrite)
	db.store = ps
	// A panic below — typically a DefineSchema callback using the MustDefine*
	// helpers, or a recovery assertion — must not escape with the store still
	// open: that leaks the file descriptors and the directory lock, so the
	// same path can never be reopened in-process. Close the store first, then
	// let the panic continue.
	defer func() {
		if r := recover(); r != nil {
			ps.Abandon()
			panic(r)
		}
	}()
	if cfg.DefineSchema != nil {
		if err := cfg.DefineSchema(db); err != nil {
			ps.Abandon()
			return nil, fmt.Errorf("gomdb: DefineSchema: %w", err)
		}
	}
	if img.Exists {
		if err := db.recoverFrom(img); err != nil {
			ps.Abandon()
			return nil, err
		}
	}
	// Baseline checkpoint: a fresh directory becomes a valid empty base, a
	// recovered one re-commits its post-recovery state (rebuilt GMRs and
	// all), so a crash right after open recovers to exactly this state.
	db.lockWrite()
	err = db.checkpointLocked()
	db.unlockWrite()
	if err != nil {
		ps.Abandon()
		return nil, err
	}
	return db, nil
}

// recoverFrom rebuilds the engine from a recovered checkpoint image.
func (db *Database) recoverFrom(img *storage.RecoveredImage) error {
	var meta durableMeta
	if err := json.Unmarshal(img.Meta, &meta); err != nil {
		return fmt.Errorf("gomdb: recovery: corrupt checkpoint metadata: %w", err)
	}
	if meta.Version != storage.FormatVersion {
		return fmt.Errorf("gomdb: recovery: checkpoint format version %d, this build reads version %d",
			meta.Version, storage.FormatVersion)
	}
	if sig := db.Schema.Fingerprint(); sig != meta.SchemaSig {
		return fmt.Errorf("gomdb: recovery: schema fingerprint %#x does not match the stored base (%#x); "+
			"DefineSchema must rebuild the schema the base was written with", sig, meta.SchemaSig)
	}
	// Restore the object heap's pages; every other page of the previous
	// incarnation (GMR extensions, indexes, RRR) is reclaimed as free space,
	// since those structures are rebuilt below.
	if err := db.Disk.Restore(img.Pages, meta.Objects.Heap.Pages, storage.PageID(meta.NextPage)); err != nil {
		return fmt.Errorf("gomdb: recovery: %w", err)
	}
	heap := storage.RestoreHeapFile(db.Pool, meta.Objects.Heap, false)
	if err := db.Objects.RestoreDirectory(heap, meta.Objects); err != nil {
		return fmt.Errorf("gomdb: recovery: %w", err)
	}
	db.GMRs.RestoreResultObjects(meta.ResultObjs)
	info := &RecoveryInfo{
		Recovered:         true,
		WALPagesReplayed:  img.WALPagesReplayed,
		TornPagesRepaired: img.TornPagesRepaired,
		WALTailDiscarded:  img.WALTailDiscarded,
		ObjectsRestored:   db.Objects.NumObjects(),
		PendingDiscarded:  meta.Pending,
	}
	for _, gm := range meta.GMRs {
		if gm.Restricted {
			return fmt.Errorf("gomdb: recovery: GMR %q is restricted and cannot be rebuilt", gm.Name)
		}
		if _, err := db.GMRs.Materialize(gm.Options()); err != nil {
			return fmt.Errorf("gomdb: recovery: rebuilding GMR %q: %w", gm.Name, err)
		}
		info.GMRsRebuilt++
		if !gm.Complete {
			info.CachesReset = append(info.CachesReset, gm.Name)
		}
	}
	db.Recovery = info
	return nil
}

// checkpointLocked makes the current engine state durable; a no-op on an
// in-memory database. Caller holds the exclusive lock. The pages captured are
// the union of pages physically written since the last checkpoint and pages
// dirty in the buffer pool (whose latest content only the pool has); both
// sets are read through the charge-free snapshot path, so the simulated Clock
// never observes a checkpoint.
func (db *Database) checkpointLocked() error {
	if db.store == nil {
		return nil
	}
	meta := durableMeta{
		Version:    storage.FormatVersion,
		SchemaSig:  db.Schema.Fingerprint(),
		NextPage:   uint32(db.Disk.NextPage()),
		Objects:    db.Objects.ExportDirectory(),
		ResultObjs: db.GMRs.ResultObjectIDs(),
		GMRs:       db.GMRs.ExportCatalog(),
		Pending:    db.GMRs.PendingLen(),
	}
	blob, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("gomdb: checkpoint: %w", err)
	}
	dirty := db.Disk.DurableDirty()
	for _, id := range db.Pool.DirtyPageIDs() {
		dirty = append(dirty, id)
	}
	dirty = dedupSorted(dirty)
	if err := db.store.Checkpoint(dirty, db.Pool.ReadSnapshot, blob); err != nil {
		return err
	}
	db.Disk.ClearDurableDirty()
	db.Pool.ClearDurableDirty()
	return nil
}

// dedupSorted sorts ids and removes duplicates in place.
func dedupSorted(ids []storage.PageID) []storage.PageID {
	if len(ids) < 2 {
		return ids
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}

// Checkpoint makes the current state durable immediately; a no-op on an
// in-memory database. It does not flush the deferred queue (use Flush for a
// combined flush point + checkpoint). With Config.ReclusterOnCheckpoint set,
// a trace-driven reclustering pass runs first (under the reader barrier
// relocation requires), so the checkpoint commits the clustered layout and
// recovery replays to it. With Config.AutoRecluster > 0 the pass runs only
// when the forward-trace access statistics say the base is scattered (see
// autoReclusterDue).
func (db *Database) Checkpoint() error {
	if db.reclusterOnCkpt || db.autoRecluster > 0 {
		db.lockBarrier()
		defer db.unlockBarrier()
		if db.reclusterOnCkpt || db.autoReclusterDue() {
			if _, err := db.reclusterLocked(); err != nil {
				return err
			}
		}
		return db.checkpointLocked()
	}
	db.lockWrite()
	defer db.unlockWrite()
	return db.checkpointLocked()
}

// autoReclusterDue implements the Config.AutoRecluster trigger: it reports
// whether any GMR's forward traces show a DistinctPages/TraceObjects ratio at
// or above the configured threshold. A ratio near 1.0 means every traced
// object access hit its own page — the scattered-base signature trace-driven
// reclustering exists to fix; a well-clustered base packs the working set
// into far fewer pages. GMRs with fewer than 16 traced objects are skipped:
// with so few accesses the ratio is noise, and a tiny base cannot benefit.
// Caller holds the exclusive lock. Reads access-trace counters only — no
// page pins, no simulated charges.
func (db *Database) autoReclusterDue() bool {
	const minTraceObjects = 16
	for _, st := range db.GMRs.GMRAccessStats() {
		if st.TraceObjects >= minTraceObjects &&
			float64(st.DistinctPages) >= db.autoRecluster*float64(st.TraceObjects) {
			return true
		}
	}
	return false
}

// Close flushes, checkpoints, and closes the durable store. On an in-memory
// database it is a no-op. The database must not be used after Close.
func (db *Database) Close() error {
	db.lockBarrier()
	defer db.unlockBarrier()
	if db.store == nil {
		return nil
	}
	err := db.GMRs.Flush()
	if cerr := db.checkpointLocked(); err == nil {
		err = cerr
	}
	if cerr := db.store.Close(); err == nil {
		err = cerr
	}
	db.store = nil
	return err
}

// Crash abandons the durable store without flushing, syncing, or
// checkpointing — the programmatic equivalent of the process dying at this
// instant. Durable state remains whatever the last committed checkpoint
// established; reopening the directory runs recovery. A no-op on an
// in-memory database. The simulation harness uses it for crash-restart ops.
func (db *Database) Crash() {
	db.lockBarrier()
	defer db.unlockBarrier()
	if db.store != nil {
		db.store.Abandon()
		db.store = nil
	}
}

// TestingFailNextCheckpoint arms the crash-mid-checkpoint injection of the
// underlying page store: the next checkpoint's WAL append is cut off after n
// bytes and surfaces ErrSimulatedCrash (or completes normally if the batch is
// shorter). A no-op on an in-memory database. Testing/simulation only.
func (db *Database) TestingFailNextCheckpoint(n int64) {
	db.lockWrite()
	defer db.unlockWrite()
	if db.store != nil {
		db.store.FailNextCheckpointAfter(n)
	}
}

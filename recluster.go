package gomdb

import "gomdb/internal/cluster"

// Trace-driven object clustering. Every (re)materialization records the
// ordered sequence of objects the computation read (the forward trace);
// Recluster feeds those traces to internal/cluster, which computes an
// affinity-weighted placement order — objects that materialized functions
// read together end up on the same pages, hottest chains first, untraced
// objects last — and physically rewrites the object heap in that order.
// OIDs never change, so GMR argument columns, RRR tuples, memo keys, and
// extents are untouched; only the OID directory is remapped. See DESIGN.md,
// "Object clustering".

// ReclusterReport describes one reclustering pass.
type ReclusterReport struct {
	// Objects is the number of live objects placed (every one of them).
	Objects int `json:"objects"`
	// Moved counts objects whose physical record id changed.
	Moved int `json:"moved"`
	// HotObjects counts objects that appeared in at least one forward trace.
	HotObjects int `json:"hotObjects"`
	// Hubs counts hot objects placed in the packed hub region instead of a
	// chain, because they are co-accessed with many distinct partners.
	Hubs int `json:"hubs"`
	// Chains counts affinity chains of length >= 2 in the placement.
	Chains int `json:"chains"`
	// Edges counts distinct co-access pairs observed across the traces.
	Edges int `json:"edges"`
	// Traces counts the forward traces that contributed to the placement.
	Traces int `json:"traces"`
	// PagesBefore/PagesAfter are the object-heap page counts around the
	// relocation (relocation also compacts deleted slack, so PagesAfter can
	// shrink).
	PagesBefore int `json:"pagesBefore"`
	PagesAfter  int `json:"pagesAfter"`
}

// Recluster physically reorders the object base by trace affinity. It runs
// under the reader barrier — the relocation frees the old pages, which no
// pinned snapshot reader may still need — and charges the simulated Clock
// for the record reads and page writes the rewrite performs, exactly as the
// storage layer charges any other access. The pass is deterministic: traces
// are consumed in canonical order and all ties break on OIDs.
//
// On a durable database the relocated pages become durable at the NEXT
// checkpoint (Recluster itself does not checkpoint): a crash before it
// recovers the pre-relocation layout from the previous checkpoint, a crash
// after it recovers the clustered layout — never a mix.
func (db *Database) Recluster() (*ReclusterReport, error) {
	db.lockBarrier()
	defer db.unlockBarrier()
	return db.reclusterLocked()
}

// reclusterLocked is Recluster's body; caller holds the barrier.
func (db *Database) reclusterLocked() (*ReclusterReport, error) {
	live := db.Objects.AllOIDs()
	p := cluster.Compute(db.GMRs.AccessTraces(), live)
	rep := &ReclusterReport{
		Objects:     len(live),
		HotObjects:  p.HotObjects,
		Hubs:        p.Hubs,
		Chains:      p.Chains,
		Edges:       p.Edges,
		Traces:      p.Traces,
		PagesBefore: db.Objects.HeapPages(),
	}
	moved, err := db.Objects.Relocate(p.Order)
	if err != nil {
		return nil, err
	}
	rep.Moved = moved
	rep.PagesAfter = db.Objects.HeapPages()
	return rep, nil
}

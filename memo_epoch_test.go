package gomdb_test

// Regression tests for the write-epoch discipline: the epoch (which
// invalidates the forward-lookup memo cache wholesale) must move only when
// the GMR state, the RRR, or a restriction predicate actually changes — not
// merely because a write lock was taken or an update hook fired without
// finding anything to invalidate.

import (
	"sync/atomic"
	"testing"

	"gomdb"
	"gomdb/internal/fixtures"
)

// TestMemoSurvivesIrrelevantWrite: an update that no materialized function
// depends on (Cuboid.Value is read by neither volume nor weight) must leave
// the write epoch — and therefore the memo cache — untouched, while a
// relevant update (a vertex move) must bump it and refresh the cached value.
func TestMemoSurvivesIrrelevantWrite(t *testing.T) {
	db := gomdb.Open(gomdb.DefaultConfig())
	if err := fixtures.DefineGeometry(db, false); err != nil {
		t.Fatal(err)
	}
	g, err := fixtures.PopulateGeometry(db, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.volume", "Cuboid.weight"}, Complete: true,
		Strategy: gomdb.Immediate, Mode: gomdb.ModeObjDep, MemoCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := g.Cuboids[0]
	st := &db.GMRs.Stats

	// Fill the cache, then read again so the second Call is a memo hit.
	if _, err := db.Call("Cuboid.volume", gomdb.Ref(c)); err != nil {
		t.Fatal(err)
	}
	hits0 := atomic.LoadInt64(&st.MemoHits)
	if _, err := db.Call("Cuboid.volume", gomdb.Ref(c)); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt64(&st.MemoHits) != hits0+1 {
		t.Fatalf("warm-up Call was not a memo hit")
	}

	// Irrelevant write: Value is not read by any materialized function, so no
	// hook finds work and the epoch must not move.
	epoch := db.GMRs.WriteEpoch()
	if err := db.Set(c, "Value", gomdb.Float(77.5)); err != nil {
		t.Fatal(err)
	}
	if got := db.GMRs.WriteEpoch(); got != epoch {
		t.Fatalf("irrelevant write bumped the epoch %d -> %d", epoch, got)
	}
	hits1 := atomic.LoadInt64(&st.MemoHits)
	if _, err := db.Call("Cuboid.volume", gomdb.Ref(c)); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt64(&st.MemoHits) != hits1+1 {
		t.Fatalf("memo entry did not survive an irrelevant write")
	}

	// Relevant write: moving a vertex volume depends on must bump the epoch,
	// and the next Call must serve the fresh value, not the cached one.
	before, err := db.Call("Cuboid.volume", gomdb.Ref(c))
	if err != nil {
		t.Fatal(err)
	}
	v, err := db.GetAttr(c, "V2")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Set(v.R, "X", gomdb.Float(99.25)); err != nil {
		t.Fatal(err)
	}
	if db.GMRs.WriteEpoch() == epoch {
		t.Fatal("relevant write did not bump the epoch")
	}
	after, err := db.Call("Cuboid.volume", gomdb.Ref(c))
	if err != nil {
		t.Fatal(err)
	}
	fb, _ := before.AsFloat()
	fa, _ := after.AsFloat()
	if fa == fb {
		t.Fatalf("volume unchanged (%v) after a vertex move: stale memo value served", fa)
	}
	rep, err := db.CheckConsistency(gmr.Name, 1e-6, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestMemoEpochBumpOrderedAfterMutation exercises the epoch discipline
// through the full facade: a memoized forward lookup interleaved at each
// epoch bump of a vertex-move update must end with a coherent cache and a
// fresh result. The isolating regression for the ordering bug itself is
// TestMemoEpochSingleBumpOrdering in internal/core — a facade-level update
// bumps more than once (invalidation, then RRR maintenance), so the later
// bumps retire a memo entry poisoned at the first and this test alone cannot
// distinguish the buggy order; it documents the end-to-end behaviour and
// guards the consistency audit after the interleaving.
func TestMemoEpochBumpOrderedAfterMutation(t *testing.T) {
	db := gomdb.Open(gomdb.DefaultConfig())
	if err := fixtures.DefineGeometry(db, false); err != nil {
		t.Fatal(err)
	}
	g, err := fixtures.PopulateGeometry(db, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.volume"}, Complete: true,
		Strategy: gomdb.Lazy, Mode: gomdb.ModeObjDep, MemoCache: true,
	}); err != nil {
		t.Fatal(err)
	}
	c := g.Cuboids[0]
	before, err := db.Call("Cuboid.volume", gomdb.Ref(c)) // warm the memo
	if err != nil {
		t.Fatal(err)
	}

	var raced int32
	db.GMRs.TestingSetEpochBumpHook(func() {
		// One racing read at the first bump; ignore nested bumps caused by
		// the raced lookup itself rematerializing.
		if !atomic.CompareAndSwapInt32(&raced, 0, 1) {
			return
		}
		_, _ = db.GMRs.Forward("Cuboid.volume", []gomdb.Value{gomdb.Ref(c)})
	})
	// A relevant update: move a vertex the volume depends on. Lazy strategy
	// keeps this to a single mutation point (one markInvalid), so the hook
	// fires in exactly the window the race needs.
	v, err := db.GetAttr(c, "V2")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Set(v.R, "X", gomdb.Float(50.5)); err != nil {
		t.Fatal(err)
	}
	db.GMRs.TestingSetEpochBumpHook(nil)
	if atomic.LoadInt32(&raced) == 0 {
		t.Fatal("the relevant update never bumped the epoch")
	}

	after, err := db.Call("Cuboid.volume", gomdb.Ref(c))
	if err != nil {
		t.Fatal(err)
	}
	fb, _ := before.AsFloat()
	fa, _ := after.AsFloat()
	if fa == fb {
		t.Fatalf("stale memoized volume %v served after the update", fa)
	}
	rep, err := db.CheckConsistency("<<Cuboid.volume>>", 1e-6, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
}

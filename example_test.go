package gomdb_test

import (
	"fmt"

	"gomdb"
)

// Example demonstrates the core loop of function materialization: define a
// derived function, materialize it, query it through the GMR, and let an
// update invalidate and rematerialize exactly the affected result.
func Example() {
	db := gomdb.Open(gomdb.DefaultConfig())

	db.MustDefineType(gomdb.NewTupleType("Rectangle",
		gomdb.PubAttr("Width", "float"),
		gomdb.PubAttr("Height", "float"),
	), "area")

	if err := db.DefineOpSrc("Rectangle", `
		define area: float is
			return self.Width * self.Height
		end`, true); err != nil {
		panic(err)
	}

	for i := 1; i <= 4; i++ {
		db.MustNew("Rectangle", gomdb.Float(float64(i)), gomdb.Float(10))
	}

	// range r: Rectangle materialize r.area
	if _, err := db.Query(`range r: Rectangle materialize r.area`, nil); err != nil {
		panic(err)
	}

	// The backward query runs off the GMR's result index.
	res, err := db.Query(`range r: Rectangle retrieve r.Width where r.area >= 30.0`, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d rectangles with area >= 30\n", len(res.Rows))

	// Updating a relevant attribute invalidates exactly one result; the
	// immediate strategy recomputes it on the spot.
	first := db.Extension("Rectangle")[0]
	if err := db.Set(first, "Height", gomdb.Float(100)); err != nil {
		panic(err)
	}
	v, err := db.Call("Rectangle.area", gomdb.Ref(first))
	if err != nil {
		panic(err)
	}
	fmt.Printf("area after update: %v\n", v)
	fmt.Printf("rematerializations: %d\n", db.GMRs.Stats.Rematerializations)

	// Output:
	// 2 rectangles with area >= 30
	// area after update: 100
	// rematerializations: 5
}

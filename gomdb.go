// Package gomdb is the public API of this reproduction of "Function
// Materialization in Object Bases" (Kemper, Kilger, Moerkotte; SIGMOD 1991).
//
// It wires together the GOM object model, the paged storage substrate with
// its simulated cost model, the GOMpl operation language, and the GMR
// manager implementing function materialization, and re-exports the types a
// downstream user needs:
//
//	db := gomdb.Open(gomdb.DefaultConfig())
//	db.MustDefineType(gomdb.NewTupleType("Vertex",
//	    gomdb.Attr("X", "float"), gomdb.Attr("Y", "float"), gomdb.Attr("Z", "float")))
//	...
//	gmr, err := db.Materialize(gomdb.MaterializeOptions{
//	    Funcs: []string{"Cuboid.volume", "Cuboid.weight"},
//	    Complete: true,
//	})
//	res, err := db.Query(`range c: Cuboid retrieve c where c.volume > 20.0`)
//
// See the examples/ directory for complete programs.
package gomdb

import (
	"strings"
	"sync"

	"gomdb/internal/core"
	"gomdb/internal/lang"
	"gomdb/internal/mvcc"
	"gomdb/internal/object"
	"gomdb/internal/query"
	"gomdb/internal/schema"
	"gomdb/internal/storage"
)

// Re-exported value and identity types.
type (
	// Value is a runtime value of the data model.
	Value = object.Value
	// OID is an object identifier.
	OID = object.OID
	// Type is a type descriptor.
	Type = object.Type
	// AttrDef declares one tuple attribute.
	AttrDef = object.AttrDef
	// Obj is the in-memory form of a stored object.
	Obj = object.Obj
	// Function is a declared GOMpl function.
	Function = lang.Function
	// Param is a formal parameter.
	Param = lang.Param
	// Expr is a GOMpl expression node.
	Expr = lang.Expr
	// Stmt is a GOMpl statement node.
	Stmt = lang.Stmt
	// MaterializeOptions configures Materialize.
	MaterializeOptions = core.Options
	// Strategy selects immediate, lazy, or deferred rematerialization.
	Strategy = core.Strategy
	// HookMode selects the invalidation mechanism (ModeBasic ... ModeInfoHiding).
	HookMode = core.HookMode
	// GMR is a generalized materialization relation.
	GMR = core.GMR
	// Restriction is a restriction predicate for a p-restricted GMR.
	Restriction = core.Restriction
	// ArgRestriction restricts an atomic argument position.
	ArgRestriction = core.ArgRestriction
	// Match is one backward-query result row.
	Match = core.Match
	// FieldSpec constrains one GMR column in a tabular Retrieve call.
	FieldSpec = core.FieldSpec
	// Row is one retrieved GMR tuple.
	Row = core.Row
	// TraceEvent is one GMR-manager maintenance action (SetTrace).
	TraceEvent = core.TraceEvent
	// ConsistencyReport summarizes a CheckConsistency run.
	ConsistencyReport = core.ConsistencyReport
	// Clock is the simulated-work accumulator.
	Clock = storage.Clock
)

// Re-exported strategy and mode constants.
const (
	// Immediate rematerialization recomputes on invalidation.
	Immediate = core.Immediate
	// Lazy rematerialization marks and recomputes on demand.
	Lazy = core.Lazy
	// Deferred rematerialization marks, coalesces repeated invalidations of
	// the same result, and recomputes in parallel at the next Flush (or when
	// a lookup forces a single pending entry).
	Deferred = core.Deferred

	// ModeBasic is the unsophisticated Section 4 invalidation mechanism.
	ModeBasic = core.ModeBasic
	// ModeSchemaDep uses SchemaDepFct (Section 5.1).
	ModeSchemaDep = core.ModeSchemaDep
	// ModeObjDep adds the ObjDepFct marking check (Section 5.2).
	ModeObjDep = core.ModeObjDep
	// ModeInfoHiding exploits strict encapsulation (Section 5.3).
	ModeInfoHiding = core.ModeInfoHiding
)

// Value constructors.
var (
	// Null returns the null value.
	Null = object.Null
	// Bool returns a boolean value.
	Bool = object.Bool
	// Int returns an integer value.
	Int = object.Int
	// Float returns a float value.
	Float = object.Float
	// Str returns a string value.
	Str = object.String_
	// Ref returns an object reference.
	Ref = object.Ref
	// SetOf returns a transient set value.
	SetOf = object.SetVal
	// ListOf returns a transient list value.
	ListOf = object.ListVal
	// TupleOf returns a transient tuple value.
	TupleOf = object.TupleVal
)

// Type constructors.
var (
	// NewTupleType constructs a tuple-structured type descriptor.
	NewTupleType = object.NewTupleType
	// NewSetType constructs a set-structured type descriptor.
	NewSetType = object.NewSetType
	// NewListType constructs a list-structured type descriptor.
	NewListType = object.NewListType
)

// Attr declares a private tuple attribute.
func Attr(name, typeName string) AttrDef { return AttrDef{Name: name, Type: typeName} }

// PubAttr declares a public tuple attribute (its A and set_A operations are
// added to the public clause).
func PubAttr(name, typeName string) AttrDef {
	return AttrDef{Name: name, Type: typeName, Public: true}
}

// Config configures a Database.
type Config struct {
	// BufferPages is the buffer pool capacity in 4 KB pages. The paper's
	// setup used 600 KB = 150 pages.
	BufferPages int
	// BufferShards is the number of lock stripes of the buffer pool's
	// resident-page table (rounded up to a power of two). 0 selects the
	// default, the next power of two >= GOMAXPROCS. 1 reproduces the
	// historical single-mutex pool and serves as the contended baseline in
	// the throughput benchmarks. The shard count only affects locking:
	// replacement uses an exact global LRU, so simulated cost accounting
	// is identical for every value.
	BufferShards int
	// IOCostMicros is the simulated cost of one physical page I/O
	// (default 25 ms, the paper's disk).
	IOCostMicros int64
	// CPUCostMicros is the simulated cost of one charged CPU operation.
	CPUCostMicros int64
	// RematWorkers bounds the worker pool that recomputes pending entries of
	// Deferred GMRs at flush points; 0 (or negative) selects GOMAXPROCS.
	// The worker count affects wall-clock time only: simulated cost
	// accounting is bit-identical for every value (see DESIGN.md, "Update
	// path").
	RematWorkers int
	// Path, when non-empty, makes the database durable: pages and engine
	// metadata are checkpointed to this directory (see DESIGN.md,
	// "Durability & recovery") and recovered on the next open. Durability
	// never changes simulated cost accounting: all durable file I/O is real
	// I/O outside the simulated Clock.
	Path string
	// DefineSchema rebuilds the schema (types, operations, public clauses,
	// InvalidatedFct declarations) on every durable open. GOMpl function
	// bodies are code, not data, so they cannot be read back from disk; the
	// checkpoint stores a schema fingerprint and recovery verifies the
	// callback rebuilt a congruent schema before decoding any record. The
	// callback must only define schema — it must not create objects or
	// materialize. Required when Path is set and the directory holds an
	// existing database.
	DefineSchema func(*Database) error
	// ReclusterOnCheckpoint runs a trace-driven reclustering pass (see
	// Database.Recluster) at every explicit Checkpoint call, before the state
	// is made durable — so the checkpoint commits the clustered layout and
	// crash recovery replays to it. Flush/Batch/Materialize checkpoint points
	// are NOT recluster points: they run under the plain write lock, and
	// relocation needs the reader barrier. Off by default.
	ReclusterOnCheckpoint bool
	// DisableMVCC turns off the versioned snapshot read path: a
	// read-classified operation that finds the engine write-locked blocks on
	// the reader/writer lock instead of answering from a pinned snapshot —
	// the pre-MVCC behaviour. The switch exists as the contended baseline of
	// the writer-interference benchmark and for bisecting; leave it false
	// otherwise. Simulated cost accounting is identical either way: snapshot
	// reads charge a throwaway clock, never the database's.
	DisableMVCC bool
	// OIDAllocator, when non-nil, replaces the engine's private OID counter
	// with a shared allocator. The shard router (internal/shard) injects one
	// global allocator into all of its engine instances so the same logical
	// plan assigns the same OIDs — and therefore the same record bytes and
	// the same simulated charges — at every shard count. It is wired before
	// schema definition and recovery, so recovery-time rematerializations
	// also allocate from it. Leave nil for a standalone database.
	OIDAllocator OIDAllocator
	// AutoRecluster, when > 0, turns every explicit Checkpoint call into a
	// conditional reclustering point: if any GMR's forward-trace access
	// statistics show a DistinctPages/TraceObjects ratio at or above this
	// threshold (each traced object sitting on nearly its own page — the
	// signature of a scattered base), a trace-driven reclustering pass
	// (Database.Recluster) runs under the reader barrier before the state is
	// made durable. Ratios near 1.0 mean fully scattered; well-clustered
	// bases run well below 0.3. GMRs with fewer than 16 traced objects are
	// ignored (too little signal). 0 disables the policy;
	// ReclusterOnCheckpoint forces a pass unconditionally.
	AutoRecluster float64
}

// OIDAllocator is a shared source of object identifiers (see
// Config.OIDAllocator).
type OIDAllocator = object.OIDAllocator

// DefaultConfig returns the paper's measurement configuration.
func DefaultConfig() Config {
	return Config{
		BufferPages:   150,
		IOCostMicros:  storage.DefaultIOCostMicros,
		CPUCostMicros: storage.DefaultCPUCostMicros,
	}
}

// Database is an in-process GOM object base with function materialization.
//
// # Concurrency
//
// Database methods are safe for concurrent use. A write-preferring
// reader/writer lock guards the engine: schema definitions, object creation
// and deletion, elementary updates, materialization, dematerialization, and
// any statement that may mutate GMR state run exclusively; provably
// side-effect-free work — forward queries, backward and retrieval queries,
// consistency audits, attribute reads — runs shared when the lock is free.
// When it is not, read-classified operations do not wait for the writer:
// they pin the current stable version and answer from an MVCC snapshot (see
// DESIGN.md, "MVCC snapshot reads"), so a long update batch no longer stalls
// the read side. Config.DisableMVCC restores the blocking behaviour.
// Classification is static and charge-free (schema metadata only), and
// snapshot reads charge a throwaway clock, so a single-threaded program
// observes bit-identical simulated cost accounting with or without
// concurrent-safety in play. The embedded field pointers (Engine, GMRs, ...)
// remain exported for single-threaded tooling such as the benchmark driver;
// concurrent clients must go through Database methods.
type Database struct {
	// mu is the engine-wide reader/writer lock. Go's sync.RWMutex is
	// write-preferring: a blocked writer stops later readers, so update
	// transactions cannot starve behind a stream of queries.
	mu sync.RWMutex

	Clock   *storage.Clock
	Disk    *storage.Disk
	Pool    *storage.BufferPool
	Schema  *schema.Schema
	Objects *object.Manager
	Engine  *schema.Engine
	GMRs    *core.Manager
	Queries *query.Executor

	// mvccSt is the version state shared by the MVCC snapshot read path
	// (nil when Config.DisableMVCC is set): the stable version, the reader
	// pin registry, and the barrier taken by the few operations that cannot
	// be versioned. See internal/mvcc.
	mvccSt *mvcc.State

	// reclusterOnCkpt mirrors Config.ReclusterOnCheckpoint.
	reclusterOnCkpt bool
	// autoRecluster mirrors Config.AutoRecluster (0 = disabled).
	autoRecluster float64

	// store is the durable page store (nil for an in-memory database); see
	// durable.go.
	store *storage.PageStore
	// Recovery describes what the durable open recovered; nil when the
	// database is in-memory or the directory was fresh.
	Recovery *RecoveryInfo
}

// QueryResult is the result of a GOMql query.
type QueryResult = query.Result

// Open creates a database. With Config.Path unset the database is purely
// in-memory (the historical behaviour). With Path set it delegates to OpenAt,
// panicking on error — use OpenAt directly to handle recovery failures.
func Open(cfg Config) *Database {
	if cfg.Path != "" {
		db, err := OpenAt(cfg)
		if err != nil {
			panic(err)
		}
		return db
	}
	return newDatabase(cfg)
}

// newDatabase builds the in-memory engine stack shared by Open and OpenAt.
func newDatabase(cfg Config) *Database {
	if cfg.BufferPages == 0 {
		cfg.BufferPages = 150
	}
	clock := storage.NewClock()
	if cfg.IOCostMicros != 0 {
		clock.IOCostMicros = cfg.IOCostMicros
	}
	if cfg.CPUCostMicros != 0 {
		clock.CPUCostMicros = cfg.CPUCostMicros
	}
	disk := storage.NewDisk(clock)
	pool := storage.NewPoolShards(disk, cfg.BufferPages, cfg.BufferShards)
	sch := schema.New()
	objs := object.NewManager(sch.Reg, pool, clock)
	if cfg.OIDAllocator != nil {
		objs.SetOIDAllocator(cfg.OIDAllocator)
	}
	en := schema.NewEngine(sch, objs, clock)
	mgr := core.NewManager(en, pool)
	mgr.SetRematWorkers(cfg.RematWorkers)
	db := &Database{
		Clock:   clock,
		Disk:    disk,
		Pool:    pool,
		Schema:  sch,
		Objects: objs,
		Engine:  en,
		GMRs:    mgr,
		Queries: query.NewExecutor(en, mgr),

		reclusterOnCkpt: cfg.ReclusterOnCheckpoint,
		autoRecluster:   cfg.AutoRecluster,
	}
	if !cfg.DisableMVCC {
		st := mvcc.NewState()
		db.mvccSt = st
		pool.SetMVCC(st)
		objs.SetMVCC(st)
		mgr.SetMVCC(st)
	}
	return db
}

// lockWrite acquires the exclusive engine lock for a write-classified
// operation. The forward-lookup memo cache's write epoch is NOT bumped here:
// every GMR-state mutation point (entry insert/remove, result write,
// invalidity marking, RRR tuple change) bumps it itself, so an exclusive
// operation that ends up changing nothing — an update irrelevant to every
// materialized result, a no-op query — leaves memoized lookups valid (see
// internal/core/memo.go).
func (db *Database) lockWrite() {
	db.mu.Lock()
}

// unlockWrite ends a write-classified operation: the mutated state is
// published as the new stable version, pre-image captures no pinned reader
// can still reach are reclaimed, and the exclusive lock is released.
// Publishing even when the operation changed nothing is harmless — a capture
// tagged with an older stable version stays valid for every reader at or
// below it.
func (db *Database) unlockWrite() {
	if db.mvccSt != nil {
		floor := db.mvccSt.Publish()
		db.Pool.ReclaimVersions(floor)
		db.Objects.ReclaimVersions(floor)
		db.GMRs.ReclaimEntryCaptures(floor)
	}
	db.mu.Unlock()
}

// lockBarrier acquires the exclusive lock AND the reader barrier, for the
// few operations the capture protocol does not cover: schema DDL (the
// registry maps are mutated in place, unversioned), materialization and
// dematerialization (the GMR catalog and the schema rewrite), and durable
// store teardown (Close, Crash). New snapshot pins block and active ones
// drain before the operation proceeds, so it has the engine entirely to
// itself. Snapshot readers never take db.mu, so draining them while holding
// it cannot deadlock.
func (db *Database) lockBarrier() {
	db.mu.Lock()
	if db.mvccSt != nil {
		db.mvccSt.BeginBarrier()
	}
}

// unlockBarrier publishes, reclaims (trivially: the barrier guarantees no
// pins, so every capture goes), lifts the barrier, and unlocks.
func (db *Database) unlockBarrier() {
	if db.mvccSt != nil {
		floor := db.mvccSt.Publish()
		db.Pool.ReclaimVersions(floor)
		db.Objects.ReclaimVersions(floor)
		db.GMRs.ReclaimEntryCaptures(floor)
		db.mvccSt.EndBarrier()
	}
	db.mu.Unlock()
}

// Query parses and executes a GOMql statement; $name parameters are bound
// from params (pass nil when the query has none). Retrieve statements whose
// plan is provably read-only execute under the shared lock when every GMR is
// quiescent; materialize statements and statements the classifier cannot
// prove side effect free execute exclusively. A read-only statement that
// finds the engine write-locked does not wait for the writer: it pins the
// current stable version and answers from an MVCC snapshot (unless
// Config.DisableMVCC).
func (db *Database) Query(src string, params map[string]Value) (*QueryResult, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	if db.mvccSt == nil {
		db.mu.RLock()
		if db.GMRs.Quiescent() && db.Queries.ReadOnlyPlan(q) {
			defer db.mu.RUnlock()
			return db.Queries.RunQuery(q, params)
		}
		db.mu.RUnlock()
		db.lockWrite()
		defer db.unlockWrite()
		return db.Queries.RunQuery(q, params)
	}
	var readOnly bool
	if db.mu.TryRLock() {
		// Uncontended: the historical shared fast path, charge-identical to
		// the pre-MVCC engine for single-threaded programs (TryRLock cannot
		// fail without a concurrent writer).
		readOnly = db.Queries.ReadOnlyPlan(q)
		if readOnly && db.GMRs.Quiescent() {
			defer db.mu.RUnlock()
			return db.Queries.RunQuery(q, params)
		}
		db.mu.RUnlock()
	} else {
		// A writer holds (or is waiting for) the engine. Pin the stable
		// version before classifying — a pin excludes barrier operations, so
		// the schema metadata the classifier reads cannot change underneath
		// it — and answer read-only plans from the snapshot.
		ver, release := db.mvccSt.Pin()
		readOnly = db.Queries.ReadOnlyPlan(q)
		if readOnly {
			defer release()
			return db.Queries.Snapshot(db.GMRs.SnapshotAt(ver)).RunQuery(q, params)
		}
		release()
	}
	if readOnly {
		// Read-only but not quiescent: the run may force rematerializations,
		// which the capture protocol covers, so the plain exclusive lock
		// suffices.
		db.lockWrite()
		defer db.unlockWrite()
		return db.Queries.RunQuery(q, params)
	}
	// The plan may materialize (the GOMql materialize statement) — a GMR
	// catalog and schema mutation the capture protocol does not version.
	db.lockBarrier()
	defer db.unlockBarrier()
	return db.Queries.RunQuery(q, params)
}

// DefineType registers a type with its public clause.
func (db *Database) DefineType(t *Type, publicNames ...string) error {
	db.lockBarrier()
	defer db.unlockBarrier()
	return db.Schema.DefineType(t, publicNames...)
}

// MustDefineType is DefineType panicking on error; for schema-building code
// where a failure is a programming bug.
func (db *Database) MustDefineType(t *Type, publicNames ...string) {
	if err := db.DefineType(t, publicNames...); err != nil {
		panic(err)
	}
}

// DefineOp attaches an operation to a type.
func (db *Database) DefineOp(typeName, opName string, fn *Function) error {
	db.lockBarrier()
	defer db.unlockBarrier()
	return db.Schema.DefineOp(typeName, opName, fn)
}

// MustDefineOp is DefineOp panicking on error.
func (db *Database) MustDefineOp(typeName, opName string, fn *Function) {
	if err := db.DefineOp(typeName, opName, fn); err != nil {
		panic(err)
	}
}

// DefineFunc registers a free function.
func (db *Database) DefineFunc(fn *Function) error {
	db.lockBarrier()
	defer db.unlockBarrier()
	return db.Schema.DefineFunc(fn)
}

// DefineOpSrc parses, type-checks, and attaches a textual GOMpl operation —
// the paper's concrete syntax:
//
//	db.DefineOpSrc("Cuboid", `
//	    define volume: float is
//	        return self.length * self.width * self.height
//	    end`, true)
//
// sideEffectFree marks the function materializable.
func (db *Database) DefineOpSrc(typeName, src string, sideEffectFree bool) error {
	db.lockBarrier()
	defer db.unlockBarrier()
	_, err := db.Schema.DefineOpSrc(typeName, src, sideEffectFree)
	return err
}

// DefineFuncSrc parses and registers a textual free function (or, with the
// qualified "define Type.op" form, a type-associated operation).
func (db *Database) DefineFuncSrc(src string, sideEffectFree bool) error {
	db.lockBarrier()
	defer db.unlockBarrier()
	_, err := db.Schema.DefineFuncSrc(src, sideEffectFree)
	return err
}

// New creates a tuple-structured instance; attribute order follows the
// flattened inherited layout.
func (db *Database) New(typeName string, attrs ...Value) (OID, error) {
	db.lockWrite()
	defer db.unlockWrite()
	return db.Engine.Create(typeName, attrs)
}

// MustNew is New panicking on error.
func (db *Database) MustNew(typeName string, attrs ...Value) OID {
	oid, err := db.New(typeName, attrs...)
	if err != nil {
		panic(err)
	}
	return oid
}

// NewSet creates a set- or list-structured instance.
func (db *Database) NewSet(typeName string, elems ...Value) (OID, error) {
	db.lockWrite()
	defer db.unlockWrite()
	return db.Engine.CreateCollection(typeName, elems)
}

// Delete removes an object (running forget_object hooks first).
func (db *Database) Delete(oid OID) error {
	db.lockWrite()
	defer db.unlockWrite()
	return db.Engine.Delete(oid)
}

// Set performs the elementary update oid.set_attr(v).
func (db *Database) Set(oid OID, attr string, v Value) error {
	db.lockWrite()
	defer db.unlockWrite()
	return db.Engine.SetAttrByName(oid, attr, v)
}

// GetAttr reads attribute attr of oid. When a writer holds the engine the
// read is answered from an MVCC snapshot instead of waiting.
func (db *Database) GetAttr(oid OID, attr string) (Value, error) {
	if db.mvccSt != nil {
		if db.mu.TryRLock() {
			defer db.mu.RUnlock()
			return db.Engine.ReadAttr(Ref(oid), attr)
		}
		ver, release := db.mvccSt.Pin()
		defer release()
		return db.GMRs.SnapshotAt(ver).Engine().ReadAttr(Ref(oid), attr)
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.Engine.ReadAttr(Ref(oid), attr)
}

// Insert performs the elementary update set.insert(elem).
func (db *Database) Insert(set OID, elem Value) error {
	db.lockWrite()
	defer db.unlockWrite()
	return db.Engine.InsertElem(Ref(set), elem)
}

// Remove performs the elementary update set.remove(elem).
func (db *Database) Remove(set OID, elem Value) error {
	db.lockWrite()
	defer db.unlockWrite()
	return db.Engine.RemoveElem(Ref(set), elem)
}

// Call invokes a declared function or operation; materialized functions are
// answered from their GMR (forward query) when possible. A call to a
// side-effect-free function runs under the shared lock when every GMR is
// quiescent (complete and fully valid) — concurrent callers then hit the
// materialized results in parallel. When a writer holds the engine, a
// side-effect-free call does not wait: it pins the current stable version
// and answers from an MVCC snapshot (quiescence does not matter there — the
// snapshot recomputes entries that were invalid at its version without
// storing anything). All other calls run exclusively.
func (db *Database) Call(fn string, args ...Value) (Value, error) {
	if db.mvccSt == nil {
		db.mu.RLock()
		if db.readOnlyCall(fn) {
			defer db.mu.RUnlock()
			return db.Engine.Invoke(fn, args...)
		}
		db.mu.RUnlock()
		db.lockWrite()
		defer db.unlockWrite()
		return db.Engine.Invoke(fn, args...)
	}
	if db.mu.TryRLock() {
		if db.readOnlyCall(fn) {
			defer db.mu.RUnlock()
			return db.Engine.Invoke(fn, args...)
		}
		db.mu.RUnlock()
	} else {
		// Pin before classifying: a pin excludes barrier operations, so the
		// schema metadata sideEffectFreeCall reads cannot change underneath.
		ver, release := db.mvccSt.Pin()
		if db.sideEffectFreeCall(fn) {
			defer release()
			return db.GMRs.SnapshotAt(ver).Call(fn, args...)
		}
		release()
	}
	db.lockWrite()
	defer db.unlockWrite()
	return db.Engine.Invoke(fn, args...)
}

// Flush drains the deferred-rematerialization queue: every result a Deferred
// GMR has marked invalid since the last flush point is recomputed once, by a
// pool of Config.RematWorkers parallel workers, regardless of how many
// updates invalidated it. A no-op when nothing is pending. On a durable
// database a flush is a checkpoint point: the drained state is made durable
// before the lock is released.
func (db *Database) Flush() error {
	db.lockWrite()
	defer db.unlockWrite()
	err := db.GMRs.Flush()
	if cerr := db.checkpointLocked(); err == nil {
		err = cerr
	}
	return err
}

// Tx is the batch-update handle passed to Batch: it exposes the update
// operations of Database without per-call locking, for use inside the single
// exclusive critical section a batch holds. A Tx must not escape its batch
// function and is not safe for concurrent use.
type Tx struct {
	db *Database
}

// New creates a tuple-structured instance (Database.New).
func (tx *Tx) New(typeName string, attrs ...Value) (OID, error) {
	return tx.db.Engine.Create(typeName, attrs)
}

// NewSet creates a set- or list-structured instance (Database.NewSet).
func (tx *Tx) NewSet(typeName string, elems ...Value) (OID, error) {
	return tx.db.Engine.CreateCollection(typeName, elems)
}

// Delete removes an object (Database.Delete).
func (tx *Tx) Delete(oid OID) error { return tx.db.Engine.Delete(oid) }

// Set performs the elementary update oid.set_attr(v) (Database.Set).
func (tx *Tx) Set(oid OID, attr string, v Value) error {
	return tx.db.Engine.SetAttrByName(oid, attr, v)
}

// GetAttr reads attribute attr of oid (Database.GetAttr).
func (tx *Tx) GetAttr(oid OID, attr string) (Value, error) {
	return tx.db.Engine.ReadAttr(Ref(oid), attr)
}

// Insert performs the elementary update set.insert(elem) (Database.Insert).
func (tx *Tx) Insert(set OID, elem Value) error {
	return tx.db.Engine.InsertElem(Ref(set), elem)
}

// Remove performs the elementary update set.remove(elem) (Database.Remove).
func (tx *Tx) Remove(set OID, elem Value) error {
	return tx.db.Engine.RemoveElem(Ref(set), elem)
}

// Call invokes a declared function or operation (Database.Call).
func (tx *Tx) Call(fn string, args ...Value) (Value, error) {
	return tx.db.Engine.Invoke(fn, args...)
}

// Batch runs fn as one update batch: the exclusive engine lock is taken once
// for the whole batch instead of per operation, and the end of the batch is a
// flush point for Deferred GMRs — all results the batch invalidated are
// recomputed by the parallel worker pool before the lock is released. If fn
// returns an error the flush still runs (updates already applied must not
// leave the queue stale across an unlocked window for readers that force
// entries individually), and fn's error takes precedence. On a durable
// database the end of the batch is also a checkpoint point.
func (db *Database) Batch(fn func(*Tx) error) error {
	tx := db.BeginBatch()
	return db.EndBatch(tx, fn(tx))
}

// BeginBatch opens an update batch explicitly: the exclusive engine lock is
// taken and a Tx handle returned. Every BeginBatch must be paired with exactly
// one EndBatch — most callers should use Batch, which pairs them around a
// function. The split form exists for coordinators that hold several
// databases' batches open at once (the shard router opens one per shard and
// routes each operation to its owner before closing them all).
func (db *Database) BeginBatch() *Tx {
	db.lockWrite()
	return &Tx{db: db}
}

// EndBatch closes a batch opened by BeginBatch: the deferred-rematerialization
// queue is flushed, the state checkpointed (durable databases), and the
// exclusive lock released. err is the batch body's verdict; it takes
// precedence over flush and checkpoint errors, matching Batch — the flush
// still runs on a failed batch because updates already applied must not leave
// the queue stale across an unlocked window.
func (db *Database) EndBatch(tx *Tx, err error) error {
	defer db.unlockWrite()
	if ferr := db.GMRs.Flush(); err == nil {
		err = ferr
	}
	if cerr := db.checkpointLocked(); err == nil {
		err = cerr
	}
	return err
}

// readOnlyCall reports whether invoking name cannot mutate engine or GMR
// state under the live engine: the GMR manager is quiescent (so a forward
// query answers from valid entries or computes without storing) and the call
// is side-effect free. Caller holds at least the read lock.
func (db *Database) readOnlyCall(name string) bool {
	return db.GMRs.Quiescent() && db.sideEffectFreeCall(name)
}

// sideEffectFreeCall reports whether every function name can dispatch to is
// declared side-effect free with no update hook installed. Side-effect
// freedom is transitive by contract — a side-effect-free body invokes only
// side-effect-free operations — so checking the entry points suffices. The
// classification reads schema metadata only: no object loads, no
// simulated-clock charges, so single-threaded cost accounting is unchanged.
// It is the whole admission test for the snapshot read path (quiescence is a
// live-engine concern). Caller holds the read lock or a snapshot pin; both
// exclude schema DDL.
func (db *Database) sideEffectFreeCall(name string) bool {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		declType, opName := name[:i], name[i+1:]
		// Dynamic dispatch may land on any subtype's override; all of them
		// must be side-effect free and hook-free.
		for _, tn := range db.Schema.Reg.WithSubtypes(declType) {
			f, ok := db.Schema.ResolveOp(tn, opName)
			if !ok || !f.SideEffectFree || db.Engine.Hooks.Installed(tn, opName) {
				return false
			}
		}
		return true
	}
	f, ok := db.Schema.ResolveStatic(name)
	return ok && f.SideEffectFree
}

// Field-spec constructors for tabular GMR retrieval (Section 3.2's
// QBE-style operations).
var (
	// ExactSpec constrains a column to one value.
	ExactSpec = core.ExactSpec
	// RangeSpec constrains a numeric column to [lo, hi].
	RangeSpec = core.RangeSpec
	// AnySpec leaves a column unconstrained.
	AnySpec = core.AnySpec
)

// ErrInjectedFault is the sentinel wrapped by every error the simulated
// disk's fault-injection layer produces (db.Disk.FailAfter and scripted
// fault plans via db.Disk.SetFaultPlan); match it with errors.Is.
var ErrInjectedFault = storage.ErrInjectedFault

// Materialize creates a GMR per the options — the API form of the GOMql
// statement "range ... materialize ...". On a durable database a successful
// materialization is a checkpoint point, and restricted GMRs (Restriction or
// AtomicArgs set) are refused: their predicates are function values that
// cannot be persisted, so they could not be rebuilt on recovery.
func (db *Database) Materialize(opts MaterializeOptions) (*GMR, error) {
	db.lockBarrier()
	defer db.unlockBarrier()
	if db.store != nil && (opts.Restriction != nil || len(opts.AtomicArgs) > 0) {
		return nil, errRestrictedDurable
	}
	g, err := db.GMRs.Materialize(opts)
	if err != nil {
		return nil, err
	}
	if cerr := db.checkpointLocked(); cerr != nil {
		return g, cerr
	}
	return g, nil
}

// Retrieve answers a tabular GMR query (one FieldSpec per argument and
// result column), using the GMR's multidimensional index when present.
// Quiescent GMRs answer under the shared lock; otherwise the retrieval may
// rematerialize invalid entries and runs exclusively. When a writer holds
// the engine the retrieval is answered from an MVCC snapshot instead of
// waiting (invalid columns are recomputed at the snapshot version, not
// repaired in place).
func (db *Database) Retrieve(gmrName string, spec []FieldSpec) ([]Row, error) {
	if db.mvccSt == nil {
		db.mu.RLock()
		if db.GMRs.Quiescent() {
			defer db.mu.RUnlock()
			return db.GMRs.Retrieve(gmrName, spec)
		}
		db.mu.RUnlock()
		db.lockWrite()
		defer db.unlockWrite()
		return db.GMRs.Retrieve(gmrName, spec)
	}
	if db.mu.TryRLock() {
		if db.GMRs.Quiescent() {
			defer db.mu.RUnlock()
			return db.GMRs.Retrieve(gmrName, spec)
		}
		db.mu.RUnlock()
		db.lockWrite()
		defer db.unlockWrite()
		return db.GMRs.Retrieve(gmrName, spec)
	}
	ver, release := db.mvccSt.Pin()
	defer release()
	return db.GMRs.SnapshotAt(ver).Retrieve(gmrName, spec)
}

// Backward answers a backward query on a Complete GMR: every materialized
// argument combination whose stored result lies in [lb, ub]. Quiescent GMRs
// answer under the shared lock; a GMR with invalid entries must revalidate
// them first and runs exclusively. When a writer holds the engine the query
// is answered from an MVCC snapshot instead of waiting.
func (db *Database) Backward(fid string, lb, ub float64) ([]Match, error) {
	if db.mvccSt == nil || db.mu.TryRLock() {
		if db.mvccSt == nil {
			db.mu.RLock()
		}
		if db.GMRs.Quiescent() {
			defer db.mu.RUnlock()
			return db.GMRs.Backward(fid, lb, ub)
		}
		db.mu.RUnlock()
		db.lockWrite()
		defer db.unlockWrite()
		return db.GMRs.Backward(fid, lb, ub)
	}
	ver, release := db.mvccSt.Pin()
	defer release()
	return db.GMRs.SnapshotAt(ver).Backward(fid, lb, ub)
}

// Sum aggregates a materialized function over the given argument objects
// (nil = every materialized entry), forcing invalid entries first. Because the
// forcing path may store recomputed results, a non-quiescent GMR manager runs
// the aggregation exclusively; quiescent managers answer under the shared
// lock. There is no snapshot tier: a contended Sum blocks on the writer.
func (db *Database) Sum(fid string, oids []OID) (float64, error) {
	db.mu.RLock()
	if db.GMRs.Quiescent() {
		defer db.mu.RUnlock()
		return db.GMRs.Sum(fid, oids)
	}
	db.mu.RUnlock()
	db.lockWrite()
	defer db.unlockWrite()
	return db.GMRs.Sum(fid, oids)
}

// CheckConsistency audits a GMR against Definition 3.2 (and, with
// checkComplete, Definition 3.4/6.1): every valid entry must match a fresh
// recomputation within relative tolerance tol.
// The audit only recomputes and compares (invalid entries are counted, not
// repaired), so it always runs under the shared lock — or, when a writer
// holds the engine, against an MVCC snapshot, verifying Definition 3.2
// congruence at the pinned version.
func (db *Database) CheckConsistency(gmrName string, tol float64, checkComplete bool) (*ConsistencyReport, error) {
	if db.mvccSt != nil {
		if db.mu.TryRLock() {
			defer db.mu.RUnlock()
			return db.GMRs.CheckConsistency(gmrName, tol, checkComplete)
		}
		ver, release := db.mvccSt.Pin()
		defer release()
		return db.GMRs.SnapshotAt(ver).CheckConsistency(gmrName, tol, checkComplete)
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.GMRs.CheckConsistency(gmrName, tol, checkComplete)
}

// SetTrace installs (or, with nil, removes) a callback observing every
// GMR-manager maintenance action. The hook is stored atomically and may be
// swapped while queries run; forward hits and backward queries execute under
// the shared lock, so the callback can fire from several goroutines at once
// and must synchronize any state it accumulates.
func (db *Database) SetTrace(fn func(TraceEvent)) { db.GMRs.SetTrace(fn) }

// Dematerialize drops a GMR and undoes its schema rewrite. On a durable
// database the drop is a checkpoint point.
func (db *Database) Dematerialize(name string) error {
	db.lockBarrier()
	defer db.unlockBarrier()
	if err := db.GMRs.Drop(name); err != nil {
		return err
	}
	return db.checkpointLocked()
}

// Extension returns the OIDs of all instances of typeName (and subtypes).
// When a writer holds the engine the extension is reconstructed from an MVCC
// snapshot instead of waiting.
func (db *Database) Extension(typeName string) []OID {
	if db.mvccSt != nil {
		if db.mu.TryRLock() {
			defer db.mu.RUnlock()
			return db.Objects.Extension(typeName)
		}
		ver, release := db.mvccSt.Pin()
		defer release()
		return db.Objects.ExtensionVersioned(typeName, ver)
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.Objects.Extension(typeName)
}

// SimSeconds returns the simulated seconds of work performed so far. The
// counters are atomic, so no lock is taken; concurrent in-flight operations
// may or may not be included.
func (db *Database) SimSeconds() float64 { return db.Clock.SimSeconds() }

// Snapshot returns a copy of the cost counters (atomically per counter; see
// SimSeconds).
func (db *Database) Snapshot() Clock { return db.Clock.Snapshot() }

// Package gomdb is the public API of this reproduction of "Function
// Materialization in Object Bases" (Kemper, Kilger, Moerkotte; SIGMOD 1991).
//
// It wires together the GOM object model, the paged storage substrate with
// its simulated cost model, the GOMpl operation language, and the GMR
// manager implementing function materialization, and re-exports the types a
// downstream user needs:
//
//	db := gomdb.Open(gomdb.DefaultConfig())
//	db.MustDefineType(gomdb.NewTupleType("Vertex",
//	    gomdb.Attr("X", "float"), gomdb.Attr("Y", "float"), gomdb.Attr("Z", "float")))
//	...
//	gmr, err := db.Materialize(gomdb.MaterializeOptions{
//	    Funcs: []string{"Cuboid.volume", "Cuboid.weight"},
//	    Complete: true,
//	})
//	res, err := db.Query(`range c: Cuboid retrieve c where c.volume > 20.0`)
//
// See the examples/ directory for complete programs.
package gomdb

import (
	"gomdb/internal/core"
	"gomdb/internal/lang"
	"gomdb/internal/object"
	"gomdb/internal/query"
	"gomdb/internal/schema"
	"gomdb/internal/storage"
)

// Re-exported value and identity types.
type (
	// Value is a runtime value of the data model.
	Value = object.Value
	// OID is an object identifier.
	OID = object.OID
	// Type is a type descriptor.
	Type = object.Type
	// AttrDef declares one tuple attribute.
	AttrDef = object.AttrDef
	// Obj is the in-memory form of a stored object.
	Obj = object.Obj
	// Function is a declared GOMpl function.
	Function = lang.Function
	// Param is a formal parameter.
	Param = lang.Param
	// Expr is a GOMpl expression node.
	Expr = lang.Expr
	// Stmt is a GOMpl statement node.
	Stmt = lang.Stmt
	// MaterializeOptions configures Materialize.
	MaterializeOptions = core.Options
	// GMR is a generalized materialization relation.
	GMR = core.GMR
	// Restriction is a restriction predicate for a p-restricted GMR.
	Restriction = core.Restriction
	// ArgRestriction restricts an atomic argument position.
	ArgRestriction = core.ArgRestriction
	// Match is one backward-query result row.
	Match = core.Match
	// FieldSpec constrains one GMR column in a tabular Retrieve call.
	FieldSpec = core.FieldSpec
	// Row is one retrieved GMR tuple.
	Row = core.Row
	// TraceEvent is one GMR-manager maintenance action (SetTrace).
	TraceEvent = core.TraceEvent
	// ConsistencyReport summarizes a CheckConsistency run.
	ConsistencyReport = core.ConsistencyReport
	// Clock is the simulated-work accumulator.
	Clock = storage.Clock
)

// Re-exported strategy and mode constants.
const (
	// Immediate rematerialization recomputes on invalidation.
	Immediate = core.Immediate
	// Lazy rematerialization marks and recomputes on demand.
	Lazy = core.Lazy

	// ModeBasic is the unsophisticated Section 4 invalidation mechanism.
	ModeBasic = core.ModeBasic
	// ModeSchemaDep uses SchemaDepFct (Section 5.1).
	ModeSchemaDep = core.ModeSchemaDep
	// ModeObjDep adds the ObjDepFct marking check (Section 5.2).
	ModeObjDep = core.ModeObjDep
	// ModeInfoHiding exploits strict encapsulation (Section 5.3).
	ModeInfoHiding = core.ModeInfoHiding
)

// Value constructors.
var (
	// Null returns the null value.
	Null = object.Null
	// Bool returns a boolean value.
	Bool = object.Bool
	// Int returns an integer value.
	Int = object.Int
	// Float returns a float value.
	Float = object.Float
	// Str returns a string value.
	Str = object.String_
	// Ref returns an object reference.
	Ref = object.Ref
	// SetOf returns a transient set value.
	SetOf = object.SetVal
	// ListOf returns a transient list value.
	ListOf = object.ListVal
	// TupleOf returns a transient tuple value.
	TupleOf = object.TupleVal
)

// Type constructors.
var (
	// NewTupleType constructs a tuple-structured type descriptor.
	NewTupleType = object.NewTupleType
	// NewSetType constructs a set-structured type descriptor.
	NewSetType = object.NewSetType
	// NewListType constructs a list-structured type descriptor.
	NewListType = object.NewListType
)

// Attr declares a private tuple attribute.
func Attr(name, typeName string) AttrDef { return AttrDef{Name: name, Type: typeName} }

// PubAttr declares a public tuple attribute (its A and set_A operations are
// added to the public clause).
func PubAttr(name, typeName string) AttrDef {
	return AttrDef{Name: name, Type: typeName, Public: true}
}

// Config configures a Database.
type Config struct {
	// BufferPages is the buffer pool capacity in 4 KB pages. The paper's
	// setup used 600 KB = 150 pages.
	BufferPages int
	// IOCostMicros is the simulated cost of one physical page I/O
	// (default 25 ms, the paper's disk).
	IOCostMicros int64
	// CPUCostMicros is the simulated cost of one charged CPU operation.
	CPUCostMicros int64
}

// DefaultConfig returns the paper's measurement configuration.
func DefaultConfig() Config {
	return Config{
		BufferPages:   150,
		IOCostMicros:  storage.DefaultIOCostMicros,
		CPUCostMicros: storage.DefaultCPUCostMicros,
	}
}

// Database is an in-process GOM object base with function materialization.
type Database struct {
	Clock   *storage.Clock
	Disk    *storage.Disk
	Pool    *storage.BufferPool
	Schema  *schema.Schema
	Objects *object.Manager
	Engine  *schema.Engine
	GMRs    *core.Manager
	Queries *query.Executor
}

// QueryResult is the result of a GOMql query.
type QueryResult = query.Result

// Open creates an empty database.
func Open(cfg Config) *Database {
	if cfg.BufferPages == 0 {
		cfg.BufferPages = 150
	}
	clock := storage.NewClock()
	if cfg.IOCostMicros != 0 {
		clock.IOCostMicros = cfg.IOCostMicros
	}
	if cfg.CPUCostMicros != 0 {
		clock.CPUCostMicros = cfg.CPUCostMicros
	}
	disk := storage.NewDisk(clock)
	pool := storage.NewPool(disk, cfg.BufferPages)
	sch := schema.New()
	objs := object.NewManager(sch.Reg, pool, clock)
	en := schema.NewEngine(sch, objs, clock)
	mgr := core.NewManager(en, pool)
	return &Database{
		Clock:   clock,
		Disk:    disk,
		Pool:    pool,
		Schema:  sch,
		Objects: objs,
		Engine:  en,
		GMRs:    mgr,
		Queries: query.NewExecutor(en, mgr),
	}
}

// Query parses and executes a GOMql statement; $name parameters are bound
// from params (pass nil when the query has none).
func (db *Database) Query(src string, params map[string]Value) (*QueryResult, error) {
	return db.Queries.Run(src, params)
}

// DefineType registers a type with its public clause.
func (db *Database) DefineType(t *Type, publicNames ...string) error {
	return db.Schema.DefineType(t, publicNames...)
}

// MustDefineType is DefineType panicking on error; for schema-building code
// where a failure is a programming bug.
func (db *Database) MustDefineType(t *Type, publicNames ...string) {
	if err := db.DefineType(t, publicNames...); err != nil {
		panic(err)
	}
}

// DefineOp attaches an operation to a type.
func (db *Database) DefineOp(typeName, opName string, fn *Function) error {
	return db.Schema.DefineOp(typeName, opName, fn)
}

// MustDefineOp is DefineOp panicking on error.
func (db *Database) MustDefineOp(typeName, opName string, fn *Function) {
	if err := db.DefineOp(typeName, opName, fn); err != nil {
		panic(err)
	}
}

// DefineFunc registers a free function.
func (db *Database) DefineFunc(fn *Function) error { return db.Schema.DefineFunc(fn) }

// DefineOpSrc parses, type-checks, and attaches a textual GOMpl operation —
// the paper's concrete syntax:
//
//	db.DefineOpSrc("Cuboid", `
//	    define volume: float is
//	        return self.length * self.width * self.height
//	    end`, true)
//
// sideEffectFree marks the function materializable.
func (db *Database) DefineOpSrc(typeName, src string, sideEffectFree bool) error {
	_, err := db.Schema.DefineOpSrc(typeName, src, sideEffectFree)
	return err
}

// DefineFuncSrc parses and registers a textual free function (or, with the
// qualified "define Type.op" form, a type-associated operation).
func (db *Database) DefineFuncSrc(src string, sideEffectFree bool) error {
	_, err := db.Schema.DefineFuncSrc(src, sideEffectFree)
	return err
}

// New creates a tuple-structured instance; attribute order follows the
// flattened inherited layout.
func (db *Database) New(typeName string, attrs ...Value) (OID, error) {
	return db.Engine.Create(typeName, attrs)
}

// MustNew is New panicking on error.
func (db *Database) MustNew(typeName string, attrs ...Value) OID {
	oid, err := db.New(typeName, attrs...)
	if err != nil {
		panic(err)
	}
	return oid
}

// NewSet creates a set- or list-structured instance.
func (db *Database) NewSet(typeName string, elems ...Value) (OID, error) {
	return db.Engine.CreateCollection(typeName, elems)
}

// Delete removes an object (running forget_object hooks first).
func (db *Database) Delete(oid OID) error { return db.Engine.Delete(oid) }

// Set performs the elementary update oid.set_attr(v).
func (db *Database) Set(oid OID, attr string, v Value) error {
	return db.Engine.SetAttrByName(oid, attr, v)
}

// GetAttr reads attribute attr of oid.
func (db *Database) GetAttr(oid OID, attr string) (Value, error) {
	return db.Engine.ReadAttr(Ref(oid), attr)
}

// Insert performs the elementary update set.insert(elem).
func (db *Database) Insert(set OID, elem Value) error {
	return db.Engine.InsertElem(Ref(set), elem)
}

// Remove performs the elementary update set.remove(elem).
func (db *Database) Remove(set OID, elem Value) error {
	return db.Engine.RemoveElem(Ref(set), elem)
}

// Call invokes a declared function or operation; materialized functions are
// answered from their GMR (forward query) when possible.
func (db *Database) Call(fn string, args ...Value) (Value, error) {
	return db.Engine.Invoke(fn, args...)
}

// Field-spec constructors for tabular GMR retrieval (Section 3.2's
// QBE-style operations).
var (
	// ExactSpec constrains a column to one value.
	ExactSpec = core.ExactSpec
	// RangeSpec constrains a numeric column to [lo, hi].
	RangeSpec = core.RangeSpec
	// AnySpec leaves a column unconstrained.
	AnySpec = core.AnySpec
)

// Materialize creates a GMR per the options — the API form of the GOMql
// statement "range ... materialize ...".
func (db *Database) Materialize(opts MaterializeOptions) (*GMR, error) {
	return db.GMRs.Materialize(opts)
}

// Retrieve answers a tabular GMR query (one FieldSpec per argument and
// result column), using the GMR's multidimensional index when present.
func (db *Database) Retrieve(gmrName string, spec []FieldSpec) ([]Row, error) {
	return db.GMRs.Retrieve(gmrName, spec)
}

// CheckConsistency audits a GMR against Definition 3.2 (and, with
// checkComplete, Definition 3.4/6.1): every valid entry must match a fresh
// recomputation within relative tolerance tol.
func (db *Database) CheckConsistency(gmrName string, tol float64, checkComplete bool) (*ConsistencyReport, error) {
	return db.GMRs.CheckConsistency(gmrName, tol, checkComplete)
}

// SetTrace installs (or, with nil, removes) a callback observing every
// GMR-manager maintenance action.
func (db *Database) SetTrace(fn func(TraceEvent)) { db.GMRs.SetTrace(fn) }

// Dematerialize drops a GMR and undoes its schema rewrite.
func (db *Database) Dematerialize(name string) error { return db.GMRs.Drop(name) }

// Extension returns the OIDs of all instances of typeName (and subtypes).
func (db *Database) Extension(typeName string) []OID { return db.Objects.Extension(typeName) }

// SimSeconds returns the simulated seconds of work performed so far.
func (db *Database) SimSeconds() float64 { return db.Clock.SimSeconds() }

// Snapshot returns a copy of the cost counters.
func (db *Database) Snapshot() Clock { return db.Clock.Snapshot() }

// Restricted: Section 6 of the paper — p-restricted GMRs and materialized
// functions with atomic argument types.
//
//  1. Materializes volume and weight only for iron cuboids
//     (range c: Cuboid materialize ... where c.Mat.Name = "Iron") and shows
//     the Rosenkrantz–Hunt applicability test routing covered backward
//     queries to the GMR and uncovered ones to a scan.
//
//  2. Materializes a gravity-dependent weight for a value-restricted set of
//     gravitational constants (the planets example of Section 6.2).
//
//     go run ./examples/restricted
package main

import (
	"fmt"
	"log"

	"gomdb"
	"gomdb/internal/fixtures"
	"gomdb/internal/lang"
)

func main() {
	db := gomdb.Open(gomdb.DefaultConfig())
	if err := fixtures.DefineGeometry(db, false); err != nil {
		log.Fatal(err)
	}
	if _, err := fixtures.PopulateGeometry(db, 64, 3); err != nil {
		log.Fatal(err)
	}
	db.Queries.Explain = func(s string) { fmt.Println("  ", s) }

	// --- Part 1: restricted GMR ------------------------------------------
	res, err := db.Query(`range c: Cuboid materialize c.volume, c.weight where c.Mat.Name = "Iron"`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restricted GMR %v holds %v entries (iron cuboids only)\n\n", res.Rows[0][0], res.Rows[0][1])

	fmt.Println("covered backward query (σ' implies the restriction):")
	if _, err := db.Query(`range c: Cuboid retrieve c where c.volume > 200.0 and c.Mat.Name = "Iron"`, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Println("uncovered backward query (gold cuboids might match too):")
	if _, err := db.Query(`range c: Cuboid retrieve c where c.volume > 200.0`, nil); err != nil {
		log.Fatal(err)
	}

	// Changing a cuboid's material moves it in or out of the restricted
	// extension (the predicate(o) algorithm of Section 6.1).
	g, _ := db.GMRs.Get(db.GMRs.GMRs()[0])
	before := g.Len()
	gold := findMaterial(db, "Gold")
	iron := findMaterial(db, "Iron")
	someIron := firstWithMaterial(db, iron)
	if err := db.Set(someIron, "Mat", gomdb.Ref(gold)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nturned an iron cuboid to gold: GMR %d -> %d entries\n", before, g.Len())
	if err := db.Set(someIron, "Mat", gomdb.Ref(iron)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("and back to iron:              GMR now %d entries\n", g.Len())

	// --- Part 2: atomic argument types ------------------------------------
	// weight_g: Cuboid || float -> float computes the weight under a given
	// gravitational acceleration; float arguments must be value-restricted.
	weightG := &gomdb.Function{
		Name:           "weight_on",
		Params:         []gomdb.Param{lang.Prm("c", "Cuboid"), lang.Prm("gravitation", "float")},
		ResultType:     "float",
		SideEffectFree: true,
		Body: []gomdb.Stmt{
			lang.Ret(lang.Div(lang.Mul(lang.CallFn("Cuboid.weight", lang.V("c")), lang.V("gravitation")), lang.F(9.81))),
		},
	}
	if err := db.Schema.DefineFunc(weightG); err != nil {
		log.Fatal(err)
	}
	planets := map[string]float64{"Mercury": 3.7, "Earth": 9.81, "Jupiter": 24.79}
	var gs []gomdb.Value
	for _, v := range []float64{3.7, 9.81, 24.79} {
		gs = append(gs, gomdb.Float(v))
	}
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs:      []string{"weight_on"},
		Complete:   true,
		Strategy:   gomdb.Immediate,
		Mode:       gomdb.ModeObjDep,
		AtomicArgs: map[int]gomdb.ArgRestriction{1: {Values: gs}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmaterialized weight_on for %d (cuboid, gravitation) combinations\n", gmr.Len())

	c0 := firstWithMaterial(db, iron)
	for name, grav := range planets {
		w, err := db.Call("weight_on", gomdb.Ref(c0), gomdb.Float(grav))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  weight of %v on %-8s %v\n", c0, name+":", w)
	}
	// Outside the restricted domain the normal function computes the answer
	// without extending the GMR.
	w, err := db.Call("weight_on", gomdb.Ref(c0), gomdb.Float(1.62)) // Moon
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  weight of %v on the Moon: %v (computed, not materialized; GMR still %d entries)\n",
		c0, w, gmr.Len())
}

func findMaterial(db *gomdb.Database, name string) gomdb.OID {
	for _, oid := range db.Extension("Material") {
		v, err := db.GetAttr(oid, "Name")
		if err == nil && v.S == name {
			return oid
		}
	}
	log.Fatalf("no material %q", name)
	return 0
}

func firstWithMaterial(db *gomdb.Database, mat gomdb.OID) gomdb.OID {
	for _, oid := range db.Extension("Cuboid") {
		v, err := db.GetAttr(oid, "Mat")
		if err == nil && v.R == mat {
			return oid
		}
	}
	log.Fatal("no cuboid with that material")
	return 0
}

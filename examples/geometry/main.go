// Geometry: the paper's running Cuboid example (Sections 2-5). Shows the
// difference between the plain invalidation machinery and information
// hiding: under strict encapsulation a rotate costs the materialized volume
// nothing and a scale exactly one invalidation, where the open schema pays
// twelve.
//
//	go run ./examples/geometry
package main

import (
	"fmt"
	"log"
	"math"

	"gomdb"
	"gomdb/internal/core"
	"gomdb/internal/fixtures"
)

func main() {
	fmt.Println("== open schema (every structural detail public) ==")
	run(false)
	fmt.Println()
	fmt.Println("== strictly encapsulated schema (Section 5.3) ==")
	run(true)
}

func run(encapsulated bool) {
	db := gomdb.Open(gomdb.DefaultConfig())
	if err := fixtures.DefineGeometry(db, encapsulated); err != nil {
		log.Fatal(err)
	}
	g, err := fixtures.ExampleGeometry(db) // the exact Figure 2 database
	if err != nil {
		log.Fatal(err)
	}

	mode := gomdb.ModeObjDep
	if encapsulated {
		mode = gomdb.ModeInfoHiding
	}
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs:    []string{"Cuboid.volume", "Cuboid.weight"},
		Complete: true,
		Strategy: gomdb.Immediate,
		Mode:     mode,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The Section 3.1 example table.
	fmt.Printf("%-8s %10s %10s\n", "O1", "volume", "weight")
	gmr.Entries(func(args, results []gomdb.Value, valid []bool) bool {
		fmt.Printf("%-8v %10v %10v\n", args[0], results[0], results[1])
		return true
	})

	id1 := g.Cuboids[0]

	// Both volume and weight are materialized, so the paper's "12
	// invalidations per scale" (4 relevant vertices x 3 coordinates)
	// doubles to 24 here, and drops to one per function under information
	// hiding.
	db.GMRs.Stats = core.Stats{}
	if _, err := db.Call("Cuboid.rotate", gomdb.Ref(id1), gomdb.Float(math.Pi/4), gomdb.Str("z")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rotate: %d invalidations, %d rematerializations\n",
		db.GMRs.Stats.Invalidations, db.GMRs.Stats.Rematerializations)

	db.GMRs.Stats = core.Stats{}
	s := fixtures.NewVertex(db, 2, 1, 1)
	if _, err := db.Call("Cuboid.scale", gomdb.Ref(id1), gomdb.Ref(s)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scale:  %d invalidations, %d rematerializations\n",
		db.GMRs.Stats.Invalidations, db.GMRs.Stats.Rematerializations)

	v, _ := db.Call("Cuboid.volume", gomdb.Ref(id1))
	fmt.Printf("volume of id1 after rotating and scaling: %v (answered from the GMR)\n", v)
}

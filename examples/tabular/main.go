// Tabular: the QBE-style GMR retrieval operations of Section 3.2 over the
// multidimensional (Grid File) storage structure of Section 3.3.
//
// A GMR <<volume, weight>> has three columns: O1 (the Cuboid), volume, and
// weight. Each retrieval specifies, per column, a constant, a range, or
// "don't care" — the paper's table
//
//	O1 : Cuboid | volume      | weight
//	idi         | ?           | ?            (forward query)
//	?           | [lb1, ub1]  | [lb2, ub2]   (backward range query)
//
// go run ./examples/tabular
package main

import (
	"fmt"
	"log"

	"gomdb"
	"gomdb/internal/fixtures"
)

func main() {
	db := gomdb.Open(gomdb.DefaultConfig())
	if err := fixtures.DefineGeometry(db, false); err != nil {
		log.Fatal(err)
	}
	g, err := fixtures.PopulateGeometry(db, 100, 23)
	if err != nil {
		log.Fatal(err)
	}

	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs:    []string{"Cuboid.volume", "Cuboid.weight"},
		Complete: true,
		Strategy: gomdb.Immediate,
		Mode:     gomdb.ModeObjDep,
		UseMDS:   true, // single multidimensional index over O1 x volume x weight
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GMR %s: %d entries, MDS over %d columns\n\n", gmr.Name, gmr.Len(), 3)

	// Forward query: [ idi | ? | ? ].
	target := g.Cuboids[10]
	rows, err := db.Retrieve(gmr.Name, []gomdb.FieldSpec{
		gomdb.ExactSpec(gomdb.Ref(target)),
		gomdb.AnySpec(),
		gomdb.AnySpec(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("forward [%v | ? | ?]:\n", target)
	for _, r := range rows {
		fmt.Printf("  volume=%v weight=%v\n", r.Results[0], r.Results[1])
	}

	// Backward range query: [ ? | [200,400] | [1000,4000] ].
	rows, err = db.Retrieve(gmr.Name, []gomdb.FieldSpec{
		gomdb.AnySpec(),
		gomdb.RangeSpec(200, 400),
		gomdb.RangeSpec(1000, 4000),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbackward [? | [200,400] | [1000,4000]]: %d cuboids\n", len(rows))
	for i, r := range rows {
		if i == 5 {
			fmt.Printf("  ... %d more\n", len(rows)-5)
			break
		}
		fmt.Printf("  %v: volume=%.1f weight=%.1f\n", r.Args[0], f(r.Results[0]), f(r.Results[1]))
	}

	// Combined: a constant argument AND a result window at once — the "any
	// combination" the multidimensional structure exists for.
	rows, err = db.Retrieve(gmr.Name, []gomdb.FieldSpec{
		gomdb.ExactSpec(gomdb.Ref(target)),
		gomdb.RangeSpec(0, 1e6),
		gomdb.AnySpec(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncombined [%v | [0,1e6] | ?]: %d row(s)\n", target, len(rows))

	// The same call works without an MDS (scan fallback) — drop and
	// re-materialize with conventional indexes only.
	if err := db.Dematerialize(gmr.Name); err != nil {
		log.Fatal(err)
	}
	gmr2, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs:    []string{"Cuboid.volume", "Cuboid.weight"},
		Complete: true,
		Mode:     gomdb.ModeObjDep,
	})
	if err != nil {
		log.Fatal(err)
	}
	rows, err = db.Retrieve(gmr2.Name, []gomdb.FieldSpec{
		gomdb.AnySpec(),
		gomdb.RangeSpec(200, 400),
		gomdb.RangeSpec(1000, 4000),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsame backward query without MDS (extension scan): %d cuboids, HasMDS=%v\n",
		len(rows), gmr2.HasMDS())
}

func f(v gomdb.Value) float64 {
	x, _ := v.AsFloat()
	return x
}

// Quickstart: define a small object schema with a derived function,
// materialize the function, and watch the GMR manager keep the precomputed
// results consistent under updates.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gomdb"
)

func main() {
	db := gomdb.Open(gomdb.DefaultConfig())

	// A tuple-structured type with two public attributes ...
	db.MustDefineType(gomdb.NewTupleType("Rectangle",
		gomdb.PubAttr("Width", "float"),
		gomdb.PubAttr("Height", "float"),
	), "area")

	// ... and a side-effect-free, type-associated function in the paper's
	// textual syntax (bodies can equally be built as ASTs with the lang
	// package; see examples/geometry).
	if err := db.DefineOpSrc("Rectangle", `
		define area: float is
			return self.Width * self.Height
		end`, true); err != nil {
		log.Fatal(err)
	}

	// Create some instances.
	var last gomdb.OID
	for i := 1; i <= 5; i++ {
		last = db.MustNew("Rectangle", gomdb.Float(float64(i)), gomdb.Float(float64(i)*2))
	}

	// Materialize area: this is the GOMql statement
	//     range r: Rectangle materialize r.area
	res, err := db.Query(`range r: Rectangle materialize r.area`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("materialized %v with %v precomputed entries\n", res.Rows[0][0], res.Rows[0][1])

	// A backward query now runs off the GMR's result index instead of
	// evaluating area for every instance.
	db.Queries.Explain = func(s string) { fmt.Println("  ", s) }
	res, err = db.Query(`range r: Rectangle retrieve r.Width where r.area > 10.0`, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("  rectangle with width %v has area > 10\n", row[0])
	}

	// Updates invalidate exactly the affected precomputed result; under the
	// (default) immediate strategy it is recomputed on the spot.
	fmt.Println("\nbefore update:", mustCall(db, "Rectangle.area", last))
	if err := db.Set(last, "Width", gomdb.Float(100)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after  update:", mustCall(db, "Rectangle.area", last))
	fmt.Printf("maintenance work: %+v\n", db.GMRs.Stats)
	fmt.Printf("simulated time so far: %.3fs\n", db.SimSeconds())
}

func mustCall(db *gomdb.Database, fn string, oid gomdb.OID) gomdb.Value {
	v, err := db.Call(fn, gomdb.Ref(oid))
	if err != nil {
		log.Fatal(err)
	}
	return v
}

// Company: the paper's Section 7.2 administrative application. Materializes
// the employee ranking and the department-project matrix, contrasts lazy
// and immediate rematerialization, and applies the Figure 15 compensating
// action for project insertion.
//
//	go run ./examples/company
package main

import (
	"fmt"
	"log"

	"gomdb"
	"gomdb/internal/core"
	"gomdb/internal/fixtures"
)

func main() {
	db := gomdb.Open(gomdb.DefaultConfig())
	if err := fixtures.DefineCompany(db); err != nil {
		log.Fatal(err)
	}
	c, err := fixtures.PopulateCompany(db, fixtures.CompanyConfig{
		Departments: 4, EmpsPerDep: 8, Projects: 20, JobsPerEmp: 5, ProgsPerProj: 4, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Materialize ranking lazily: promotions only mark results; the next
	// query pays for exactly the rankings it touches.
	rank, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Employee.ranking"}, Complete: true,
		Strategy: gomdb.Lazy, Mode: gomdb.ModeObjDep,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("materialized ranking for %d employees\n", rank.Len())

	for i := 0; i < 5; i++ {
		if err := c.Promote(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after 5 promotions: %d rankings invalid (lazy)\n", rank.InvalidCount("Employee.ranking"))

	// The backward query forces revalidation of the invalid results first.
	res, err := db.Query(`range e: Employee retrieve e.EmpNo, e.ranking where e.ranking > 700.0`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d employees rank above 700; all results valid again: %v\n",
		len(res.Rows), rank.InvalidCount("Employee.ranking") == 0)

	// Materialize the matrix (a complex, set-structured result stored as
	// objects) and register the compensating action: inserting a project
	// extends the old matrix instead of recomputing it.
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Company.matrix"}, Complete: true,
		Strategy: gomdb.Immediate, Mode: gomdb.ModeInfoHiding,
	}); err != nil {
		log.Fatal(err)
	}
	comp, err := db.Schema.LookupFunction("Company.comp_add_project")
	if err != nil {
		log.Fatal(err)
	}
	if err := db.GMRs.DefineCompensation("Company", "add_project", "Company.matrix", comp); err != nil {
		log.Fatal(err)
	}

	m, _ := db.Call("Company.matrix", gomdb.Ref(c.Comp))
	lines, _ := db.Engine.ReadElems(m)
	fmt.Printf("\nmatrix has %d (department, project) lines\n", len(lines))

	db.GMRs.Stats = core.Stats{}
	p, err := c.NewProjectWithProgrammers(3)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := db.Call("Company.add_project", gomdb.Ref(c.Comp), gomdb.Ref(p)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("add_project: %d compensations, %d full rematerializations\n",
		db.GMRs.Stats.Compensations, db.GMRs.Stats.Rematerializations)

	m, _ = db.Call("Company.matrix", gomdb.Ref(c.Comp))
	lines, _ = db.Engine.ReadElems(m)
	fmt.Printf("matrix now has %d lines — updated by the compensating action alone\n", len(lines))
}

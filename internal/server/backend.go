package server

import (
	"gomdb"
	"gomdb/internal/shard"
	"gomdb/internal/wire"
)

// Backend is the engine surface a session dispatches into — the subset of
// the embedded API the protocol can express, spoken identically by a plain
// engine and by the sharded router. Reads (Query, GetAttr, Call, Retrieve,
// Backward, Sum, Extension) go down each backend's own concurrency path —
// the MVCC snapshot machinery on the plain engine — so a slow writer on one
// connection never stalls readers on the others.
type Backend interface {
	Query(src string, params map[string]gomdb.Value) (*gomdb.QueryResult, error)
	Call(fn string, args ...gomdb.Value) (gomdb.Value, error)
	GetAttr(oid gomdb.OID, attr string) (gomdb.Value, error)
	Set(oid gomdb.OID, attr string, v gomdb.Value) error
	New(typeName string, attrs ...gomdb.Value) (gomdb.OID, error)
	NewSet(typeName string, elems ...gomdb.Value) (gomdb.OID, error)
	Delete(oid gomdb.OID) error
	Insert(set gomdb.OID, elem gomdb.Value) error
	Remove(set gomdb.OID, elem gomdb.Value) error
	Retrieve(gmrName string, spec []gomdb.FieldSpec) ([]gomdb.Row, error)
	Backward(fid string, lb, ub float64) ([]gomdb.Match, error)
	Sum(fid string, oids []gomdb.OID) (float64, error)
	Extension(typeName string) []gomdb.OID
	Dematerialize(name string) error
	Flush() error
	SimSeconds() float64

	// Shards reports the backend's partition count (1 for a plain engine);
	// it travels in the hello response so clients can log what they hit.
	Shards() int
	// MaterializeGMR creates a GMR. The embedded APIs disagree on the
	// return (the engine hands back the *GMR, the router does not), so the
	// common surface keeps only the error.
	MaterializeGMR(opts gomdb.MaterializeOptions) error
	// BeginTx opens an interactive update batch; EndTx closes it with the
	// batch verdict. Sessions hold a Tx open across request frames and are
	// responsible for closing it on disconnect — an unpaired BeginTx leaves
	// the engine's exclusive lock held forever.
	BeginTx() Tx
	EndTx(tx Tx, err error) error
}

// Tx is the interactive-batch handle: the batchable operations.
type Tx interface {
	New(typeName string, attrs ...gomdb.Value) (gomdb.OID, error)
	NewSet(typeName string, elems ...gomdb.Value) (gomdb.OID, error)
	Delete(oid gomdb.OID) error
	Set(oid gomdb.OID, attr string, v gomdb.Value) error
	GetAttr(oid gomdb.OID, attr string) (gomdb.Value, error)
	Insert(set gomdb.OID, elem gomdb.Value) error
	Remove(set gomdb.OID, elem gomdb.Value) error
	Call(fn string, args ...gomdb.Value) (gomdb.Value, error)
}

// Embedded adapts a plain *gomdb.Database to the Backend surface.
type Embedded struct{ DB *gomdb.Database }

func (e Embedded) Query(src string, params map[string]gomdb.Value) (*gomdb.QueryResult, error) {
	return e.DB.Query(src, params)
}
func (e Embedded) Call(fn string, args ...gomdb.Value) (gomdb.Value, error) {
	return e.DB.Call(fn, args...)
}
func (e Embedded) GetAttr(oid gomdb.OID, attr string) (gomdb.Value, error) {
	return e.DB.GetAttr(oid, attr)
}
func (e Embedded) Set(oid gomdb.OID, attr string, v gomdb.Value) error {
	return e.DB.Set(oid, attr, v)
}
func (e Embedded) New(typeName string, attrs ...gomdb.Value) (gomdb.OID, error) {
	return e.DB.New(typeName, attrs...)
}
func (e Embedded) NewSet(typeName string, elems ...gomdb.Value) (gomdb.OID, error) {
	return e.DB.NewSet(typeName, elems...)
}
func (e Embedded) Delete(oid gomdb.OID) error { return e.DB.Delete(oid) }
func (e Embedded) Insert(set gomdb.OID, elem gomdb.Value) error {
	return e.DB.Insert(set, elem)
}
func (e Embedded) Remove(set gomdb.OID, elem gomdb.Value) error {
	return e.DB.Remove(set, elem)
}
func (e Embedded) Retrieve(gmrName string, spec []gomdb.FieldSpec) ([]gomdb.Row, error) {
	return e.DB.Retrieve(gmrName, spec)
}
func (e Embedded) Backward(fid string, lb, ub float64) ([]gomdb.Match, error) {
	return e.DB.Backward(fid, lb, ub)
}
func (e Embedded) Sum(fid string, oids []gomdb.OID) (float64, error) {
	return e.DB.Sum(fid, oids)
}
func (e Embedded) Extension(typeName string) []gomdb.OID { return e.DB.Extension(typeName) }
func (e Embedded) Dematerialize(name string) error       { return e.DB.Dematerialize(name) }
func (e Embedded) Flush() error                          { return e.DB.Flush() }
func (e Embedded) SimSeconds() float64                   { return e.DB.SimSeconds() }
func (e Embedded) Shards() int                           { return 1 }
func (e Embedded) MaterializeGMR(opts gomdb.MaterializeOptions) error {
	_, err := e.DB.Materialize(opts)
	return err
}
func (e Embedded) BeginTx() Tx { return e.DB.BeginBatch() }
func (e Embedded) EndTx(tx Tx, err error) error {
	t, ok := tx.(*gomdb.Tx)
	if !ok {
		return wire.Errf(wire.CodeBatch, "foreign batch handle %T", tx)
	}
	return e.DB.EndBatch(t, err)
}

// Sharded adapts the scatter-gather router to the Backend surface.
type Sharded struct{ DB *shard.DB }

func (s Sharded) Query(src string, params map[string]gomdb.Value) (*gomdb.QueryResult, error) {
	return s.DB.Query(src, params)
}
func (s Sharded) Call(fn string, args ...gomdb.Value) (gomdb.Value, error) {
	return s.DB.Call(fn, args...)
}
func (s Sharded) GetAttr(oid gomdb.OID, attr string) (gomdb.Value, error) {
	return s.DB.GetAttr(oid, attr)
}
func (s Sharded) Set(oid gomdb.OID, attr string, v gomdb.Value) error {
	return s.DB.Set(oid, attr, v)
}
func (s Sharded) New(typeName string, attrs ...gomdb.Value) (gomdb.OID, error) {
	return s.DB.New(typeName, attrs...)
}
func (s Sharded) NewSet(typeName string, elems ...gomdb.Value) (gomdb.OID, error) {
	return s.DB.NewSet(typeName, elems...)
}
func (s Sharded) Delete(oid gomdb.OID) error { return s.DB.Delete(oid) }
func (s Sharded) Insert(set gomdb.OID, elem gomdb.Value) error {
	return s.DB.Insert(set, elem)
}
func (s Sharded) Remove(set gomdb.OID, elem gomdb.Value) error {
	return s.DB.Remove(set, elem)
}
func (s Sharded) Retrieve(gmrName string, spec []gomdb.FieldSpec) ([]gomdb.Row, error) {
	return s.DB.Retrieve(gmrName, spec)
}
func (s Sharded) Backward(fid string, lb, ub float64) ([]gomdb.Match, error) {
	return s.DB.Backward(fid, lb, ub)
}
func (s Sharded) Sum(fid string, oids []gomdb.OID) (float64, error) {
	return s.DB.Sum(fid, oids)
}
func (s Sharded) Extension(typeName string) []gomdb.OID { return s.DB.Extension(typeName) }
func (s Sharded) Dematerialize(name string) error       { return s.DB.Dematerialize(name) }
func (s Sharded) Flush() error                          { return s.DB.Flush() }
func (s Sharded) SimSeconds() float64                   { return s.DB.SimSeconds() }
func (s Sharded) Shards() int                           { return s.DB.Shards() }
func (s Sharded) MaterializeGMR(opts gomdb.MaterializeOptions) error {
	return s.DB.Materialize(opts)
}
func (s Sharded) BeginTx() Tx { return s.DB.BeginBatch() }
func (s Sharded) EndTx(tx Tx, err error) error {
	t, ok := tx.(*shard.Tx)
	if !ok {
		return wire.Errf(wire.CodeBatch, "foreign batch handle %T", tx)
	}
	return s.DB.EndBatch(t, err)
}

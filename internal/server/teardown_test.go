package server_test

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"gomdb"
	"gomdb/client"
	"gomdb/internal/server"
	"gomdb/internal/sim"
	"gomdb/internal/wire"
)

// Fault injection and concurrency: sessions killed mid-stream, mid-batch,
// and mid-materialize must be reaped with no leaked engine resources — the
// zero-leaked-pins audit (sim.Audit) extends to server sessions via
// Server.AuditQuiescent, and GMR congruence (Definition 3.2) is re-audited
// at quiescence after every scenario.

// waitQuiescent polls until the server has reaped every session.
func waitQuiescent(t *testing.T, srv *server.Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := srv.Stats()
		if st.ActiveSessions == 0 && st.OpenBatches == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("sessions never reaped: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// auditAll flushes the engine and runs both auditors: the engine-side
// invariants (pins, MVCC captures, deferred queue, Definition 3.2
// congruence) and the server-side session accounting.
func auditAll(t *testing.T, srv *server.Server, db *gomdb.Database) {
	t.Helper()
	if err := db.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if v := sim.Audit(db); len(v) != 0 {
		t.Fatalf("engine audit: %v", v)
	}
	if v := srv.AuditQuiescent(); len(v) != 0 {
		t.Fatalf("server audit: %v", v)
	}
}

func TestDisconnectMidBatch(t *testing.T) {
	be, db := plainBackend(t)
	srv := newServer(t, be, nil)
	r := rawSession(t, srv)
	r.hello("")
	ext := db.Extension("Cuboid")

	r.sendReq(&wire.Request{Op: wire.OpBatchBegin}, 2)
	if resp := r.recv(); resp.Op != wire.RespAck {
		t.Fatalf("batch begin: %s", resp.Op)
	}
	r.sendReq(&wire.Request{Op: wire.OpBatchOp,
		Sub: &wire.Request{Op: wire.OpSet, OID: ext[0], Attr: "Value", Val: gomdb.Float(42)}}, 3)
	if resp := r.recv(); resp.Op != wire.RespAck {
		t.Fatalf("batch op: %s", resp.Op)
	}
	if srv.Stats().OpenBatches != 1 {
		t.Fatalf("open batches = %d, want 1", srv.Stats().OpenBatches)
	}
	// The client vanishes with the batch open — the engine's exclusive lock
	// is held server-side at this moment.
	r.conn.Close()
	waitQuiescent(t, srv)
	if srv.Stats().AbortedBatches != 1 {
		t.Fatalf("aborted batches = %d, want 1", srv.Stats().AbortedBatches)
	}
	// The lock is demonstrably released: a fresh embedded batch completes.
	if err := db.Batch(func(tx *gomdb.Tx) error {
		return tx.Set(ext[1], "Value", gomdb.Float(7))
	}); err != nil {
		t.Fatalf("engine lock still held: %v", err)
	}
	auditAll(t, srv, db)
}

func TestDisconnectMidStream(t *testing.T) {
	be, db := plainBackend(t)
	// One row per chunk: the extension streams as ~24 frames, so the kill
	// lands mid-stream with certainty.
	srv := newServer(t, be, func(c *server.Config) { c.ChunkRows = 1 })
	r := rawSession(t, srv)
	r.hello("")
	r.sendReq(&wire.Request{Op: wire.OpExtension, Name: "Cuboid"}, 2)
	if resp := r.recv(); resp.Op != wire.RespStreamBegin {
		t.Fatalf("stream begin: %s", resp.Op)
	}
	if resp := r.recv(); resp.Op != wire.RespChunk {
		t.Fatalf("first chunk: %s", resp.Op)
	}
	// Kill the connection with most of the stream unsent; the server's next
	// chunk write fails and the session is reaped.
	r.conn.Close()
	waitQuiescent(t, srv)
	auditAll(t, srv, db)
}

func TestDisconnectDuringMaterialize(t *testing.T) {
	be, db := plainBackend(t)
	srv := newServer(t, be, nil)
	r := rawSession(t, srv)
	r.hello("")
	payload, err := wire.EncodeRequest(&wire.Request{Op: wire.OpMaterialize, Mat: wire.MatOptions{
		Name: "VW", Funcs: []string{"Cuboid.volume", "Cuboid.weight"}, Complete: true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	r.send(wire.OpMaterialize, 2, payload)
	// Disconnect while the sweep runs; the ack write fails into a closed
	// connection and the session is reaped with no pins left behind.
	r.conn.Close()
	waitQuiescent(t, srv)
	auditAll(t, srv, db)
}

// TestConcurrentClients runs reader and writer clients against one server
// and re-audits Definition 3.2 congruence at quiescence. Run under -race in
// CI, this is the server-level analogue of the engine's concurrency tests.
func TestConcurrentClients(t *testing.T) {
	be, db := plainBackend(t)
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Name: "VW", Funcs: []string{"Cuboid.volume", "Cuboid.weight"}, Complete: true,
	}); err != nil {
		t.Fatal(err)
	}
	ext := db.Extension("Cuboid")
	srv := newServer(t, be, nil)
	addr := tcpServer(t, srv)

	const readers, writers, iters = 6, 2, 30
	var wg sync.WaitGroup
	errs := make(chan error, readers+writers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			c, err := client.Dial(addr, client.Options{DialTimeout: 5 * time.Second})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(seed))
			for n := 0; n < iters; n++ {
				oid := ext[rng.Intn(len(ext))]
				switch rng.Intn(4) {
				case 0:
					_, err = c.Call("Cuboid.volume", gomdb.Ref(oid))
				case 1:
					_, err = c.GetAttr(oid, "Value")
				case 2:
					_, err = c.Sum("Cuboid.volume", nil)
				case 3:
					_, err = c.Retrieve("VW", make([]gomdb.FieldSpec, 3))
				}
				if err != nil {
					errs <- fmt.Errorf("reader: %w", err)
					return
				}
			}
		}(int64(i + 1))
	}
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			c, err := client.Dial(addr, client.Options{DialTimeout: 5 * time.Second})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(100 + seed))
			for n := 0; n < iters; n++ {
				oid := ext[rng.Intn(len(ext))]
				if n%5 == 4 {
					err = c.Batch(func(b *client.Batch) error {
						return b.Set(oid, "Value", gomdb.Float(float64(rng.Intn(1000))))
					})
				} else {
					err = c.Set(oid, "Value", gomdb.Float(float64(rng.Intn(1000))))
				}
				if err != nil {
					errs <- fmt.Errorf("writer: %w", err)
					return
				}
			}
		}(int64(i + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	drainServer(t, srv)
	auditAll(t, srv, db)
}

// TestServedOpPlan drives a gomsim-style seeded operation plan through a
// real client/server pair over TCP and audits every engine invariant at the
// end. The plan length scales via GOMSERVE_PLAN_OPS (the nightly CI leg
// raises it); the default keeps the test fast for every push.
func TestServedOpPlan(t *testing.T) {
	ops := 200
	if s := os.Getenv("GOMSERVE_PLAN_OPS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("GOMSERVE_PLAN_OPS=%q: %v", s, err)
		}
		ops = n
	}
	be, db := plainBackend(t)
	srv := newServer(t, be, nil)
	addr := tcpServer(t, srv)
	c := tcpClient(t, addr, client.Options{CallTimeout: 30 * time.Second})

	if err := c.Materialize(gomdb.MaterializeOptions{
		Name: "VW", Funcs: []string{"Cuboid.volume", "Cuboid.weight"}, Complete: true,
	}); err != nil {
		t.Fatal(err)
	}
	cuboids, err := c.Extension("Cuboid")
	if err != nil {
		t.Fatal(err)
	}
	var vertices []gomdb.OID
	rng := rand.New(rand.NewSource(41))
	for n := 0; n < ops; n++ {
		oid := cuboids[rng.Intn(len(cuboids))]
		var err error
		switch rng.Intn(10) {
		case 0:
			var v gomdb.OID
			v, err = c.New("Vertex",
				gomdb.Float(rng.Float64()*100), gomdb.Float(rng.Float64()*100), gomdb.Float(rng.Float64()*100))
			vertices = append(vertices, v)
		case 1:
			err = c.Set(oid, "Value", gomdb.Float(rng.Float64()*1000))
		case 2:
			_, err = c.GetAttr(oid, "Value")
		case 3:
			_, err = c.Call("Cuboid.volume", gomdb.Ref(oid))
		case 4:
			_, err = c.Sum("Cuboid.volume", nil)
		case 5:
			_, err = c.Retrieve("VW", make([]gomdb.FieldSpec, 3))
		case 6:
			_, err = c.Query(`range c: Cuboid retrieve c.CuboidID where c.volume > 200.0`, nil)
		case 7:
			if len(vertices) > 0 {
				i := rng.Intn(len(vertices))
				err = c.Delete(vertices[i])
				vertices = append(vertices[:i], vertices[i+1:]...)
			}
		case 8:
			err = c.Batch(func(b *client.Batch) error {
				for k := 0; k < 3; k++ {
					o := cuboids[rng.Intn(len(cuboids))]
					if err := b.Set(o, "Value", gomdb.Float(rng.Float64()*1000)); err != nil {
						return err
					}
				}
				return nil
			})
		case 9:
			err = c.Flush()
		}
		if err != nil {
			t.Fatalf("op %d: %v", n, err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	drainServer(t, srv)
	auditAll(t, srv, db)
}

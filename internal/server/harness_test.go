package server_test

import (
	"context"
	"net"
	"testing"
	"time"

	"gomdb"
	"gomdb/client"
	"gomdb/internal/fixtures"
	"gomdb/internal/server"
	"gomdb/internal/shard"
)

// The harness builds twin backends — one behind the server, one driven
// directly through the embedded API — and connects clients over both
// transports (net.Pipe for deterministic in-process tests, real TCP for the
// full stack). Twins are populated identically, so deterministic OID
// allocation makes their results byte-comparable.

const (
	popCuboids = 24
	popSeed    = 7
)

// plainBackend builds a populated single-engine backend.
func plainBackend(t *testing.T) (server.Backend, *gomdb.Database) {
	t.Helper()
	db := gomdb.Open(gomdb.DefaultConfig())
	if err := fixtures.DefineGeometry(db, false); err != nil {
		t.Fatal(err)
	}
	if _, err := fixtures.PopulateGeometry(db, popCuboids, popSeed); err != nil {
		t.Fatal(err)
	}
	return server.Embedded{DB: db}, db
}

// shardBackend builds a populated 4-shard router backend.
func shardBackend(t *testing.T) server.Backend {
	t.Helper()
	db := shard.Open(shard.Config{Shards: 4, Engine: gomdb.DefaultConfig()})
	if err := fixtures.DefineGeometrySharded(db, false); err != nil {
		t.Fatal(err)
	}
	if _, err := fixtures.PopulateGeometrySharded(db, popCuboids, popSeed); err != nil {
		t.Fatal(err)
	}
	return server.Sharded{DB: db}
}

// newServer wraps a backend in a Server with test-friendly timeouts.
func newServer(t *testing.T, be server.Backend, mut func(*server.Config)) *server.Server {
	t.Helper()
	cfg := server.Config{
		Backend:      be,
		ReadTimeout:  5 * time.Second,
		WriteTimeout: 5 * time.Second,
	}
	if mut != nil {
		mut(&cfg)
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// pipeClient connects a client to srv over an in-process net.Pipe.
func pipeClient(t *testing.T, srv *server.Server, opts client.Options) *client.Client {
	t.Helper()
	cliEnd, srvEnd := net.Pipe()
	go srv.ServeConn(srvEnd)
	c, err := client.New(cliEnd, opts)
	if err != nil {
		cliEnd.Close()
		t.Fatalf("pipe handshake: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// tcpServer starts srv on a loopback listener and returns its address. The
// server is drained at test cleanup.
func tcpServer(t *testing.T, srv *server.Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return ln.Addr().String()
}

// tcpClient dials a client against addr.
func tcpClient(t *testing.T, addr string, opts client.Options) *client.Client {
	t.Helper()
	opts.DialTimeout = 5 * time.Second
	c, err := client.Dial(addr, opts)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// drainServer shuts srv down and fails the test on drain errors.
func drainServer(t *testing.T, srv *server.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if v := srv.AuditQuiescent(); len(v) != 0 {
		t.Fatalf("server not quiescent after drain: %v", v)
	}
}

package server_test

import (
	"fmt"
	"testing"
	"time"

	"gomdb"
	"gomdb/client"
	"gomdb/internal/ocb"
	"gomdb/internal/server"
	"gomdb/internal/shard"
)

// The OCB conformance leg: the same twin-backend, byte-fingerprint protocol
// as TestConformanceMatrix, but over a generated object base and a generated
// op stream instead of the hand-built geometry script. Every stream op maps
// to a wire call; each is applied to both twins and the results must be
// byte-identical (or carry identical error texts) over both transports and
// both backends.

// ocbServeParams keeps Instances below Ocache's MaxEntries (16) so the
// incomplete GMR never evicts — eviction timing is an engine-internal detail
// that differs in charge but must not differ in answers, and holding the
// cache under capacity keeps even the Retrieve row sets comparable.
var ocbServeParams = ocb.Params{Classes: 4, FanOut: 2, Depth: 2, NumAttrs: 3,
	Instances: 12, HotFraction: 0.25, Skew: 0.8}

const ocbServeSeed = 97

// ocbPlainBackend builds a populated single-engine OCB backend.
func ocbPlainBackend(t *testing.T) server.Backend {
	t.Helper()
	base, err := ocb.Gen(ocbServeParams, ocbServeSeed)
	if err != nil {
		t.Fatal(err)
	}
	db := gomdb.Open(gomdb.DefaultConfig())
	if err := ocb.Define(db, ocbServeParams); err != nil {
		t.Fatal(err)
	}
	if _, err := ocb.Populate(db, base); err != nil {
		t.Fatal(err)
	}
	return server.Embedded{DB: db}
}

// ocbShardBackend builds a populated 4-shard OCB backend.
func ocbShardBackend(t *testing.T) server.Backend {
	t.Helper()
	base, err := ocb.Gen(ocbServeParams, ocbServeSeed)
	if err != nil {
		t.Fatal(err)
	}
	db := shard.Open(shard.Config{Shards: 4, Engine: gomdb.DefaultConfig()})
	if err := ocb.DefineSharded(db, ocbServeParams); err != nil {
		t.Fatal(err)
	}
	if _, err := ocb.PopulateSharded(db, base); err != nil {
		t.Fatal(err)
	}
	return server.Sharded{DB: db}
}

// ocbScript replays a generated op stream through both surfaces via step().
// Updates apply to both twins, so they stay aligned for every later read.
func ocbScript(t *testing.T, c surface, ref surface) {
	p := ocbServeParams
	cat := ocb.Catalog(p)
	classes := make([][]gomdb.OID, p.Classes)
	for cl := 0; cl < p.Classes; cl++ {
		name := ocb.ClassName(cl)
		step(t, "extension/"+name, c, ref, func(s surface) (any, error) {
			v, err := s.Extension(name)
			return v, err
		})
		oids, err := ref.Extension(name)
		if err != nil || len(oids) != p.Instances {
			t.Fatalf("extension %s: %v (%d oids, want %d)", name, err, len(oids), p.Instances)
		}
		classes[cl] = oids
	}
	c0 := classes[0]

	ops := ocb.GenStream(p, ocbServeSeed+1, ocb.StreamOptions{
		Ops: 80, W: ocb.DefaultWeights(), AuditEvery: -1})
	if len(ops) == 0 {
		t.Fatal("generated an empty op stream")
	}
	setOne := func(s surface, op ocb.Op) error {
		cls := classes[op.N%p.Classes]
		return s.Set(cls[op.X%len(cls)], op.S, gomdb.Float(op.F[0]))
	}
	for i, op := range ops {
		op := op
		name := fmt.Sprintf("op%03d/%s", i, op.Kind)
		switch op.Kind {
		case "forward":
			step(t, name, c, ref, func(s surface) (any, error) {
				return s.Call(op.S, gomdb.Ref(c0[op.X%len(c0)]))
			})
		case "set-value":
			step(t, name, c, ref, func(s surface) (any, error) { return nil, setOne(s, op) })
		case "batch":
			// The interactive batch opcode is exercised by batchScript; here
			// the sub-updates apply as plain sets so twins stay aligned.
			for j, sub := range op.Sub {
				if sub.Kind != "set-value" {
					continue
				}
				sub := sub
				step(t, fmt.Sprintf("%s/sub%d", name, j), c, ref, func(s surface) (any, error) {
					return nil, setOne(s, sub)
				})
			}
		case "backward":
			step(t, name, c, ref, func(s surface) (any, error) {
				return s.Backward(op.S, op.F[0], op.F[1])
			})
		case "sum":
			k := 1 + op.N%len(c0)
			step(t, name, c, ref, func(s surface) (any, error) {
				return s.Sum(op.S, append([]gomdb.OID(nil), c0[:k]...))
			})
		case "retrieve":
			spec := cat[op.X%len(cat)]
			step(t, name+"/"+spec.Name, c, ref, func(s surface) (any, error) {
				return s.Retrieve(spec.Name, []gomdb.FieldSpec{
					gomdb.AnySpec(), gomdb.RangeSpec(op.F[0], op.F[1])})
			})
		case "mat":
			spec := cat[op.X%len(cat)]
			step(t, name+"/"+spec.Name, c, ref, func(s surface) (any, error) {
				return nil, s.Materialize(gomdb.MaterializeOptions{
					Name: spec.Name, Funcs: spec.Funcs, Complete: spec.Complete,
					MaxEntries: spec.MaxEntries, Strategy: gomdb.Lazy, Mode: gomdb.ModeObjDep,
				})
			})
		case "demat":
			spec := cat[op.X%len(cat)]
			step(t, name+"/"+spec.Name, c, ref, func(s surface) (any, error) {
				return nil, s.Dematerialize(spec.Name)
			})
		case "flush":
			step(t, name, c, ref, func(s surface) (any, error) { return nil, s.Flush() })
		}
		// snap-read, gc, and audit have no wire opcode: skipped on both
		// sides, so the twins stay aligned.
	}
	step(t, "simseconds/final", c, ref, func(s surface) (any, error) { return s.SimSeconds() })
}

func TestOCBConformanceMatrix(t *testing.T) {
	backends := []struct {
		name  string
		build func(t *testing.T) server.Backend
	}{
		{"plain", ocbPlainBackend},
		{"shard4", ocbShardBackend},
	}
	transports := []struct {
		name    string
		connect func(t *testing.T, srv *server.Server) *client.Client
	}{
		{"pipe", func(t *testing.T, srv *server.Server) *client.Client {
			t.Cleanup(func() { drainServer(t, srv) })
			return pipeClient(t, srv, client.Options{})
		}},
		{"tcp", func(t *testing.T, srv *server.Server) *client.Client {
			return tcpClient(t, tcpServer(t, srv), client.Options{CallTimeout: 5 * time.Second})
		}},
	}
	for _, be := range backends {
		for _, tr := range transports {
			t.Run(be.name+"/"+tr.name, func(t *testing.T) {
				served := be.build(t)   // twin behind the server
				embedded := be.build(t) // twin driven directly
				srv := newServer(t, served, nil)
				c := tr.connect(t, srv)
				ocbScript(t, c, refAPI{embedded})
			})
		}
	}
}

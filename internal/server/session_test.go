package server_test

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"gomdb"
	"gomdb/client"
	"gomdb/internal/server"
	"gomdb/internal/wire"
)

// Protocol-level session behaviour: handshake ordering, auth, version skew,
// connection limits, malformed traffic, batch lifecycle guards, and drain.

// rawConn speaks raw frames against a server end of a pipe, for tests that
// need traffic the client refuses to produce.
type rawConn struct {
	t    *testing.T
	conn net.Conn
}

func rawSession(t *testing.T, srv *server.Server) *rawConn {
	t.Helper()
	cliEnd, srvEnd := net.Pipe()
	go srv.ServeConn(srvEnd)
	t.Cleanup(func() { cliEnd.Close() })
	return &rawConn{t: t, conn: cliEnd}
}

func (r *rawConn) send(op wire.Opcode, reqID uint64, payload []byte) {
	r.t.Helper()
	r.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if err := wire.WriteFrame(r.conn, &wire.Frame{Op: op, ReqID: reqID, Payload: payload}); err != nil {
		r.t.Fatalf("send %s: %v", op, err)
	}
}

func (r *rawConn) sendReq(req *wire.Request, reqID uint64) {
	r.t.Helper()
	payload, err := wire.EncodeRequest(req)
	if err != nil {
		r.t.Fatalf("encode %s: %v", req.Op, err)
	}
	r.send(req.Op, reqID, payload)
}

func (r *rawConn) recv() *wire.Response {
	r.t.Helper()
	r.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	frame, err := wire.ReadFrame(r.conn)
	if err != nil {
		r.t.Fatalf("recv: %v", err)
	}
	resp, err := wire.DecodeResponse(frame.Op, frame.Payload)
	if err != nil {
		r.t.Fatalf("decode response: %v", err)
	}
	return resp
}

func (r *rawConn) hello(token string) {
	r.t.Helper()
	r.sendReq(&wire.Request{Op: wire.OpHello, WireVersion: wire.Version, Token: token}, 1)
	if resp := r.recv(); resp.Op != wire.RespHello {
		r.t.Fatalf("handshake answered with %s", resp.Op)
	}
}

// expectClosed asserts the server closed the connection (EOF or reset).
func (r *rawConn) expectClosed() {
	r.t.Helper()
	r.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if frame, err := wire.ReadFrame(r.conn); err == nil {
		r.t.Fatalf("connection still open, got %s frame", frame.Op)
	}
}

func expectCode(t *testing.T, err error, code wire.Code) {
	t.Helper()
	if wire.CodeOf(err) != code {
		t.Fatalf("error %v carries code %s, want %s", err, wire.CodeOf(err), code)
	}
}

func TestHandshakeHelloFirst(t *testing.T) {
	be, _ := plainBackend(t)
	srv := newServer(t, be, nil)
	r := rawSession(t, srv)
	r.sendReq(&wire.Request{Op: wire.OpPing}, 1)
	resp := r.recv()
	if resp.Op != wire.RespError || resp.ErrCode != wire.CodeBadRequest {
		t.Fatalf("ping before hello answered with %s/%s", resp.Op, resp.ErrCode)
	}
	r.expectClosed()
	drainServer(t, srv)
}

func TestHandshakeVersionSkew(t *testing.T) {
	be, _ := plainBackend(t)
	srv := newServer(t, be, nil)
	r := rawSession(t, srv)
	// A future client version inside a well-formed v1 frame: the payload
	// carries version 2, the frame itself is current.
	r.sendReq(&wire.Request{Op: wire.OpHello, WireVersion: wire.Version + 1}, 1)
	resp := r.recv()
	if resp.Op != wire.RespError || resp.ErrCode != wire.CodeVersion {
		t.Fatalf("version skew answered with %s/%s", resp.Op, resp.ErrCode)
	}
	r.expectClosed()
	drainServer(t, srv)
}

func TestAuthToken(t *testing.T) {
	be, _ := plainBackend(t)
	srv := newServer(t, be, func(c *server.Config) { c.AuthToken = "sesame" })

	cliEnd, srvEnd := net.Pipe()
	go srv.ServeConn(srvEnd)
	if _, err := client.New(cliEnd, client.Options{Token: "wrong"}); wire.CodeOf(err) != wire.CodeAuth {
		t.Fatalf("wrong token: %v", err)
	}
	cliEnd.Close()

	c := pipeClient(t, srv, client.Options{Token: "sesame"})
	if err := c.Ping(); err != nil {
		t.Fatalf("authed ping: %v", err)
	}
	if srv.Stats().AuthFailures != 1 {
		t.Fatalf("auth failures = %d, want 1", srv.Stats().AuthFailures)
	}
	c.Close()
	drainServer(t, srv)
}

func TestMalformedTrafficAnswered(t *testing.T) {
	be, _ := plainBackend(t)
	srv := newServer(t, be, nil)
	r := rawSession(t, srv)
	r.hello("")
	// Garbage that is not even a frame: the server answers with a bad-magic
	// error frame, then closes (framing is unrecoverable).
	r.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if _, err := r.conn.Write([]byte("this is not a frame, not even close......")); err != nil {
		t.Fatal(err)
	}
	resp := r.recv()
	if resp.Op != wire.RespError || resp.ErrCode != wire.CodeBadMagic {
		t.Fatalf("garbage answered with %s/%s", resp.Op, resp.ErrCode)
	}
	r.expectClosed()
	drainServer(t, srv)
}

func TestGarbagePayloadKeepsSession(t *testing.T) {
	be, _ := plainBackend(t)
	srv := newServer(t, be, nil)
	r := rawSession(t, srv)
	r.hello("")
	// A well-framed request whose payload is garbage: answered with an
	// error, session continues.
	r.send(wire.OpQuery, 2, []byte{0xFF, 0xFF, 0xFF})
	resp := r.recv()
	if resp.Op != wire.RespError || resp.ErrCode != wire.CodeMalformed {
		t.Fatalf("garbage payload answered with %s/%s", resp.Op, resp.ErrCode)
	}
	r.sendReq(&wire.Request{Op: wire.OpPing}, 3)
	if resp := r.recv(); resp.Op != wire.RespAck {
		t.Fatalf("session did not survive garbage payload: %s", resp.Op)
	}
	r.conn.Close()
	drainServer(t, srv)
}

func TestMaxConns(t *testing.T) {
	be, _ := plainBackend(t)
	srv := newServer(t, be, func(c *server.Config) { c.MaxConns = 1 })
	addr := tcpServer(t, srv)
	c1 := tcpClient(t, addr, client.Options{})
	if err := c1.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Dial(addr, client.Options{DialTimeout: 5 * time.Second}); wire.CodeOf(err) != wire.CodeBusy {
		t.Fatalf("second connection: %v, want busy", err)
	}
	if srv.Stats().Refused != 1 {
		t.Fatalf("refused = %d, want 1", srv.Stats().Refused)
	}
	c1.Close()
	// The slot frees up once the first session is gone.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c2, err := client.Dial(addr, client.Options{DialTimeout: time.Second})
		if err == nil {
			c2.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestBatchLifecycleGuards(t *testing.T) {
	be, _ := plainBackend(t)
	srv := newServer(t, be, nil)
	c := pipeClient(t, srv, client.Options{})
	ext, err := c.Extension("Cuboid")
	if err != nil {
		t.Fatal(err)
	}
	c0 := ext[0]

	b, err := c.BeginBatch()
	if err != nil {
		t.Fatal(err)
	}
	// Double begin is refused.
	if _, err := c.BeginBatch(); !errors.Is(err, &wire.Error{Code: wire.CodeBatch}) {
		t.Fatalf("double begin: %v", err)
	}
	// Non-batch updates while a batch is open would self-deadlock on the
	// engine lock this session already holds; the server refuses them.
	expectCode(t, c.Set(c0, "Value", gomdb.Float(1)), wire.CodeBatch)
	// Liveness stays available.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping during batch: %v", err)
	}
	if err := b.Set(c0, "Value", gomdb.Float(5)); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	// Commit or op on a closed batch is refused — locally and server-side.
	expectCode(t, b.Commit(), wire.CodeBatch)
	if _, err := b.New("Vertex", gomdb.Float(0), gomdb.Float(0), gomdb.Float(0)); wire.CodeOf(err) != wire.CodeBatch {
		t.Fatalf("op on closed batch: %v", err)
	}
	v, err := c.GetAttr(c0, "Value")
	if err != nil || v.F != 5 {
		t.Fatalf("batched set lost: %v %v", v, err)
	}
	c.Close()
	drainServer(t, srv)
}

func TestBatchOpOutsideBatch(t *testing.T) {
	be, _ := plainBackend(t)
	srv := newServer(t, be, nil)
	r := rawSession(t, srv)
	r.hello("")
	r.sendReq(&wire.Request{Op: wire.OpBatchOp, Sub: &wire.Request{Op: wire.OpDelete, OID: 1}}, 2)
	resp := r.recv()
	if resp.Op != wire.RespError || resp.ErrCode != wire.CodeBatch {
		t.Fatalf("stray batch op answered with %s/%s", resp.Op, resp.ErrCode)
	}
	r.sendReq(&wire.Request{Op: wire.OpBatchCommit}, 3)
	resp = r.recv()
	if resp.Op != wire.RespError || resp.ErrCode != wire.CodeBatch {
		t.Fatalf("stray commit answered with %s/%s", resp.Op, resp.ErrCode)
	}
	r.conn.Close()
	drainServer(t, srv)
}

func TestShutdownDrains(t *testing.T) {
	be, db := plainBackend(t)
	srv := newServer(t, be, nil)
	addr := tcpServer(t, srv)
	clients := make([]*client.Client, 3)
	for i := range clients {
		clients[i] = tcpClient(t, addr, client.Options{})
		if err := clients[i].Ping(); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if v := srv.AuditQuiescent(); len(v) != 0 {
		t.Fatalf("post-drain audit: %v", v)
	}
	// Drained sessions answer nothing further.
	for _, c := range clients {
		if err := c.Ping(); err == nil {
			t.Fatal("ping succeeded after drain")
		}
	}
	// New connections are refused outright.
	if _, err := client.Dial(addr, client.Options{DialTimeout: time.Second}); err == nil {
		t.Fatal("dial succeeded after drain")
	}
	// The engine itself is unharmed.
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
}

package server_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"gomdb"
	"gomdb/client"
	"gomdb/internal/server"
	"gomdb/internal/wire"
)

// The conformance matrix: every opcode, driven over both transports
// (net.Pipe and real TCP) against both backends (plain engine and 4-shard
// router), must produce results byte-identical to the embedded API. Each
// cell builds twin backends populated identically — the server fronts one
// twin, the script drives the other directly — and compares the
// wire-encoded fingerprint of every step's result.

// surface is the API shape shared by the network client and the embedded
// reference (refAPI below), so one script drives both.
type surface interface {
	Query(src string, params map[string]gomdb.Value) (*gomdb.QueryResult, error)
	Call(fn string, args ...gomdb.Value) (gomdb.Value, error)
	GetAttr(oid gomdb.OID, attr string) (gomdb.Value, error)
	Set(oid gomdb.OID, attr string, v gomdb.Value) error
	New(typeName string, attrs ...gomdb.Value) (gomdb.OID, error)
	NewSet(typeName string, elems ...gomdb.Value) (gomdb.OID, error)
	Delete(oid gomdb.OID) error
	Insert(set gomdb.OID, elem gomdb.Value) error
	Remove(set gomdb.OID, elem gomdb.Value) error
	Retrieve(gmrName string, spec []gomdb.FieldSpec) ([]gomdb.Row, error)
	Backward(fid string, lb, ub float64) ([]gomdb.Match, error)
	Sum(fid string, oids []gomdb.OID) (float64, error)
	Extension(typeName string) ([]gomdb.OID, error)
	Materialize(opts gomdb.MaterializeOptions) error
	Dematerialize(name string) error
	Flush() error
	SimSeconds() (float64, error)
}

// refAPI adapts a server.Backend (the embedded twin) to the client's shape.
type refAPI struct{ be server.Backend }

func (r refAPI) Query(src string, params map[string]gomdb.Value) (*gomdb.QueryResult, error) {
	return r.be.Query(src, params)
}
func (r refAPI) Call(fn string, args ...gomdb.Value) (gomdb.Value, error) {
	return r.be.Call(fn, args...)
}
func (r refAPI) GetAttr(oid gomdb.OID, attr string) (gomdb.Value, error) {
	return r.be.GetAttr(oid, attr)
}
func (r refAPI) Set(oid gomdb.OID, attr string, v gomdb.Value) error {
	return r.be.Set(oid, attr, v)
}
func (r refAPI) New(typeName string, attrs ...gomdb.Value) (gomdb.OID, error) {
	return r.be.New(typeName, attrs...)
}
func (r refAPI) NewSet(typeName string, elems ...gomdb.Value) (gomdb.OID, error) {
	return r.be.NewSet(typeName, elems...)
}
func (r refAPI) Delete(oid gomdb.OID) error              { return r.be.Delete(oid) }
func (r refAPI) Insert(s gomdb.OID, e gomdb.Value) error { return r.be.Insert(s, e) }
func (r refAPI) Remove(s gomdb.OID, e gomdb.Value) error { return r.be.Remove(s, e) }
func (r refAPI) Retrieve(g string, spec []gomdb.FieldSpec) ([]gomdb.Row, error) {
	return r.be.Retrieve(g, spec)
}
func (r refAPI) Backward(fid string, lb, ub float64) ([]gomdb.Match, error) {
	return r.be.Backward(fid, lb, ub)
}
func (r refAPI) Sum(fid string, oids []gomdb.OID) (float64, error) { return r.be.Sum(fid, oids) }
func (r refAPI) Extension(tn string) ([]gomdb.OID, error)          { return r.be.Extension(tn), nil }
func (r refAPI) Materialize(opts gomdb.MaterializeOptions) error   { return r.be.MaterializeGMR(opts) }
func (r refAPI) Dematerialize(name string) error                   { return r.be.Dematerialize(name) }
func (r refAPI) Flush() error                                      { return r.be.Flush() }
func (r refAPI) SimSeconds() (float64, error)                      { return r.be.SimSeconds(), nil }

// fingerprint reduces a step result to canonical wire bytes, so "the
// network produced the same answer" is checked at the byte level — the same
// encoding the protocol itself uses.
func fingerprint(t *testing.T, v any) []byte {
	t.Helper()
	var resps []*wire.Response
	switch x := v.(type) {
	case nil:
		resps = []*wire.Response{{Op: wire.RespAck}}
	case gomdb.Value:
		resps = []*wire.Response{{Op: wire.RespValue, Val: x}}
	case gomdb.OID:
		resps = []*wire.Response{{Op: wire.RespOID, OID: x}}
	case float64:
		resps = []*wire.Response{{Op: wire.RespFloat, F: x}}
	case []gomdb.Row:
		resps = []*wire.Response{{Op: wire.RespChunk, Stream: wire.StreamRows, GRows: x}}
	case []gomdb.Match:
		resps = []*wire.Response{{Op: wire.RespChunk, Stream: wire.StreamMatches, Matches: x}}
	case []gomdb.OID:
		resps = []*wire.Response{{Op: wire.RespChunk, Stream: wire.StreamOIDs, OIDs: x}}
	case *gomdb.QueryResult:
		resps = []*wire.Response{
			{Op: wire.RespStreamBegin, Stream: wire.StreamQuery, Columns: x.Columns},
			{Op: wire.RespChunk, Stream: wire.StreamQuery, Rows: x.Rows},
		}
	default:
		t.Fatalf("fingerprint: unhandled result type %T", v)
	}
	var buf bytes.Buffer
	for _, r := range resps {
		p, err := wire.EncodeResponse(r)
		if err != nil {
			t.Fatalf("fingerprint encode: %v", err)
		}
		buf.WriteByte(byte(r.Op))
		buf.Write(p)
	}
	return buf.Bytes()
}

// step runs one named operation against both surfaces and insists on
// byte-identical results (or identical failure texts).
func step(t *testing.T, name string, net, ref surface, op func(surface) (any, error)) {
	t.Helper()
	nv, nerr := op(net)
	rv, rerr := op(ref)
	if (nerr != nil) != (rerr != nil) {
		t.Fatalf("%s: network err=%v, embedded err=%v", name, nerr, rerr)
	}
	if rerr != nil {
		// The server folds engine errors into CodeEngine responses carrying
		// the engine's message; the texts must survive the trip.
		var we *wire.Error
		if !errors.As(nerr, &we) {
			t.Fatalf("%s: network error %v is not structured", name, nerr)
		}
		if we.Msg != rerr.Error() {
			t.Fatalf("%s: error drifted over the wire:\n net: %q\n ref: %q", name, we.Msg, rerr.Error())
		}
		return
	}
	if !bytes.Equal(fingerprint(t, nv), fingerprint(t, rv)) {
		t.Fatalf("%s: results differ:\n net: %#v\n ref: %#v", name, nv, rv)
	}
}

// conformanceScript drives every opcode through both surfaces.
func conformanceScript(t *testing.T, c surface, ref surface) {
	ext := func(s surface) (any, error) { v, err := s.Extension("Cuboid"); return v, err }

	// Reads against the populated geometry.
	step(t, "extension", c, ref, ext)
	cuboids, err := ref.Extension("Cuboid")
	if err != nil || len(cuboids) < 3 {
		t.Fatalf("population missing: %v %d", err, len(cuboids))
	}
	c0, c1 := cuboids[0], cuboids[1]

	step(t, "getattr/Value", c, ref, func(s surface) (any, error) { return s.GetAttr(c0, "Value") })
	step(t, "getattr/V1", c, ref, func(s surface) (any, error) { return s.GetAttr(c0, "V1") })
	step(t, "getattr/bad-oid", c, ref, func(s surface) (any, error) { return s.GetAttr(gomdb.OID(1<<40), "Value") })
	step(t, "call/volume", c, ref, func(s surface) (any, error) { return s.Call("Cuboid.volume", gomdb.Ref(c0)) })
	step(t, "call/unknown", c, ref, func(s surface) (any, error) { return s.Call("Cuboid.nope", gomdb.Ref(c0)) })
	step(t, "simseconds", c, ref, func(s surface) (any, error) { return s.SimSeconds() })

	// Materialization and the GMR read surfaces.
	mat := gomdb.MaterializeOptions{
		Name:     "VW",
		Funcs:    []string{"Cuboid.volume", "Cuboid.weight"},
		Complete: true,
	}
	step(t, "materialize", c, ref, func(s surface) (any, error) { return nil, s.Materialize(mat) })
	step(t, "retrieve/all", c, ref, func(s surface) (any, error) { return s.Retrieve("VW", nil) })
	refC0 := gomdb.Ref(c0)
	step(t, "retrieve/spec", c, ref, func(s surface) (any, error) {
		return s.Retrieve("VW", []gomdb.FieldSpec{{Exact: &refC0}})
	})
	step(t, "backward", c, ref, func(s surface) (any, error) { return s.Backward("Cuboid.volume", 0, 1e9) })
	step(t, "sum/all", c, ref, func(s surface) (any, error) { return s.Sum("Cuboid.volume", nil) })
	step(t, "sum/subset", c, ref, func(s surface) (any, error) {
		return s.Sum("Cuboid.volume", []gomdb.OID{c0, c1})
	})
	step(t, "query", c, ref, func(s surface) (any, error) {
		return s.Query(`range c: Cuboid retrieve c.CuboidID where c.volume > 100.0`, nil)
	})
	step(t, "query/params", c, ref, func(s surface) (any, error) {
		return s.Query(`range c: Cuboid retrieve c.Value where c.CuboidID = $id`,
			map[string]gomdb.Value{"id": gomdb.Int(1)})
	})
	step(t, "query/bad", c, ref, func(s surface) (any, error) {
		return s.Query(`range r: Missing retrieve r`, nil)
	})

	// Updates: twin determinism makes even the allocated OIDs comparable.
	step(t, "new/vertex", c, ref, func(s surface) (any, error) {
		return s.New("Vertex", gomdb.Float(1), gomdb.Float(2), gomdb.Float(3))
	})
	step(t, "newset", c, ref, func(s surface) (any, error) {
		return s.NewSet("Workpieces", gomdb.Ref(c0), gomdb.Ref(c1))
	})
	ws, err := ref.Extension("Workpieces")
	if err != nil || len(ws) == 0 {
		t.Fatalf("workpieces missing: %v", err)
	}
	wp := ws[len(ws)-1]
	step(t, "call/total_volume", c, ref, func(s surface) (any, error) {
		return s.Call("Workpieces.total_volume", gomdb.Ref(wp))
	})
	step(t, "insert", c, ref, func(s surface) (any, error) {
		return nil, s.Insert(wp, gomdb.Ref(cuboids[2]))
	})
	step(t, "remove", c, ref, func(s surface) (any, error) {
		return nil, s.Remove(wp, gomdb.Ref(c1))
	})
	step(t, "set", c, ref, func(s surface) (any, error) {
		return nil, s.Set(c0, "Value", gomdb.Float(123.5))
	})
	step(t, "getattr/after-set", c, ref, func(s surface) (any, error) { return s.GetAttr(c0, "Value") })
	step(t, "flush", c, ref, func(s surface) (any, error) { return nil, s.Flush() })
	step(t, "retrieve/after-update", c, ref, func(s surface) (any, error) { return s.Retrieve("VW", nil) })
	step(t, "delete", c, ref, func(s surface) (any, error) { return nil, s.Delete(wp) })
	step(t, "dematerialize", c, ref, func(s surface) (any, error) { return nil, s.Dematerialize("VW") })
	step(t, "dematerialize/missing", c, ref, func(s surface) (any, error) {
		return nil, s.Dematerialize("VW")
	})
	step(t, "extension/final", c, ref, ext)
	step(t, "simseconds/final", c, ref, func(s surface) (any, error) { return s.SimSeconds() })
}

// batchScript drives the interactive batch surface through the network
// client and the embedded Batch, comparing results step by step.
func batchScript(t *testing.T, c *client.Client, ref server.Backend) {
	ext, err := c.Extension("Cuboid")
	if err != nil || len(ext) == 0 {
		t.Fatalf("extension: %v", err)
	}
	c0 := ext[0]

	var netOID, refOID gomdb.OID
	var netVal, refVal gomdb.Value
	err = c.Batch(func(b *client.Batch) error {
		var err error
		if netOID, err = b.New("Vertex", gomdb.Float(9), gomdb.Float(9), gomdb.Float(9)); err != nil {
			return err
		}
		if err = b.Set(c0, "Value", gomdb.Float(77)); err != nil {
			return err
		}
		netVal, err = b.GetAttr(c0, "Value")
		return err
	})
	if err != nil {
		t.Fatalf("network batch: %v", err)
	}
	tx := ref.BeginTx()
	refOID, err = tx.New("Vertex", gomdb.Float(9), gomdb.Float(9), gomdb.Float(9))
	if err == nil {
		err = tx.Set(c0, "Value", gomdb.Float(77))
	}
	if err == nil {
		refVal, err = tx.GetAttr(c0, "Value")
	}
	if eerr := ref.EndTx(tx, err); eerr != nil {
		t.Fatalf("embedded batch: %v", eerr)
	}
	if netOID != refOID {
		t.Fatalf("batch New diverged: net %v, ref %v", netOID, refOID)
	}
	if !bytes.Equal(fingerprint(t, netVal), fingerprint(t, refVal)) {
		t.Fatalf("batch GetAttr diverged: net %#v, ref %#v", netVal, refVal)
	}

	// Abort: applied operations stay applied (batches are not
	// transactional), the verdict releases the lock; both sides agree on
	// the resulting state.
	b, err := c.BeginBatch()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Set(c0, "Value", gomdb.Float(88)); err != nil {
		t.Fatal(err)
	}
	if err := b.Abort(); err != nil {
		t.Fatalf("abort: %v", err)
	}
	tx = ref.BeginTx()
	if err := tx.Set(c0, "Value", gomdb.Float(88)); err != nil {
		t.Fatal(err)
	}
	ref.EndTx(tx, fmt.Errorf("aborted"))
	nv, nerr := c.GetAttr(c0, "Value")
	rv, rerr := ref.GetAttr(c0, "Value")
	if nerr != nil || rerr != nil || !bytes.Equal(fingerprint(t, nv), fingerprint(t, rv)) {
		t.Fatalf("post-abort state diverged: net (%#v, %v), ref (%#v, %v)", nv, nerr, rv, rerr)
	}
}

func TestConformanceMatrix(t *testing.T) {
	backends := []struct {
		name  string
		build func(t *testing.T) server.Backend
	}{
		{"plain", func(t *testing.T) server.Backend { be, _ := plainBackend(t); return be }},
		{"shard4", func(t *testing.T) server.Backend { return shardBackend(t) }},
	}
	transports := []struct {
		name    string
		connect func(t *testing.T, srv *server.Server) *client.Client
	}{
		{"pipe", func(t *testing.T, srv *server.Server) *client.Client {
			t.Cleanup(func() { drainServer(t, srv) })
			return pipeClient(t, srv, client.Options{})
		}},
		{"tcp", func(t *testing.T, srv *server.Server) *client.Client {
			return tcpClient(t, tcpServer(t, srv), client.Options{CallTimeout: 5 * time.Second})
		}},
	}
	for _, be := range backends {
		for _, tr := range transports {
			t.Run(be.name+"/"+tr.name, func(t *testing.T) {
				served := be.build(t)   // twin behind the server
				embedded := be.build(t) // twin driven directly
				srv := newServer(t, served, nil)
				c := tr.connect(t, srv)
				conformanceScript(t, c, refAPI{embedded})
				batchScript(t, c, embedded)
			})
		}
	}
}

package server

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"time"

	"gomdb"
	"gomdb/internal/core"
	"gomdb/internal/wire"
)

// errDisconnected is the batch verdict when the client vanished mid-batch.
var errDisconnected = wire.Errf(wire.CodeBatch, "client disconnected mid-batch")

// errAborted is the batch verdict for an explicit client abort. The engine's
// batches are not transactional: operations already applied stay applied;
// the abort verdict marks the batch failed and releases the lock.
var errAborted = wire.Errf(wire.CodeBatch, "batch aborted by client")

// session serves one connection: handshake, then a strict request/response
// loop (one request in flight per connection; streamed results interleave
// nothing else).
type session struct {
	srv  *Server
	conn net.Conn
	br   *bufio.Reader

	// mu guards tx: the serve goroutine opens and closes it, while Stats
	// and teardown (the server's release path) inspect it concurrently.
	mu sync.Mutex
	tx Tx

	torn bool
}

func newSession(srv *Server, conn net.Conn) *session {
	return &session{srv: srv, conn: conn, br: bufio.NewReader(conn)}
}

// holdsBatch reports whether an interactive batch is open.
func (ss *session) holdsBatch() bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.tx != nil
}

// takeTx detaches and returns the open batch handle (nil if none).
func (ss *session) takeTx() Tx {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	tx := ss.tx
	ss.tx = nil
	return tx
}

func (ss *session) setTx(tx Tx) {
	ss.mu.Lock()
	ss.tx = tx
	ss.mu.Unlock()
}

// interruptRead kicks the session out of a blocking frame read (drain).
func (ss *session) interruptRead() {
	ss.conn.SetReadDeadline(time.Now())
}

// teardown closes the connection and force-closes any batch the session
// still holds, releasing the engine's exclusive lock. Idempotent; reports
// whether a batch had to be aborted.
func (ss *session) teardown() bool {
	ss.mu.Lock()
	if ss.torn {
		ss.mu.Unlock()
		return false
	}
	ss.torn = true
	ss.mu.Unlock()
	ss.conn.Close()
	if tx := ss.takeTx(); tx != nil {
		ss.srv.cfg.Backend.EndTx(tx, errDisconnected)
		return true
	}
	return false
}

// serve runs the session to completion: handshake first, then the request
// loop. Any return path flows into the server's release, which calls
// teardown.
func (ss *session) serve() {
	if !ss.handshake() {
		return
	}
	for {
		if ss.srv.isDraining() {
			return
		}
		frame, err := ss.readFrame()
		if err != nil {
			// Clean close at a frame boundary, peer reset, drain kick, or
			// idle timeout: just drop the session. A protocol violation
			// (bad magic, CRC, version skew, truncation) gets a
			// best-effort error frame first — framing is lost, so the
			// session cannot continue either way.
			if answerable(err) {
				ss.writeResponse(0, wire.ErrResponse(err))
			}
			return
		}
		ss.srv.countRequest()
		if !ss.dispatch(frame) {
			return
		}
	}
}

// handshake enforces hello-first: exactly one OpHello with a supported
// protocol version and a valid token before anything else is served.
func (ss *session) handshake() bool {
	frame, err := ss.readFrame()
	if err != nil {
		if answerable(err) {
			ss.writeResponse(0, wire.ErrResponse(err))
		}
		return false
	}
	ss.srv.countRequest()
	fail := func(err error) bool {
		ss.writeResponse(frame.ReqID, wire.ErrResponse(err))
		return false
	}
	if frame.Op != wire.OpHello {
		return fail(wire.Errf(wire.CodeBadRequest, "first frame must be hello, got %s", frame.Op))
	}
	req, err := wire.DecodeRequest(frame.Op, frame.Payload)
	if err != nil {
		return fail(err)
	}
	if req.WireVersion != wire.Version {
		return fail(wire.Errf(wire.CodeVersion, "client speaks protocol %d, server speaks %d", req.WireVersion, wire.Version))
	}
	if !ss.srv.authOK(req.Token) {
		ss.srv.countAuthFailure()
		return fail(wire.Errf(wire.CodeAuth, "bad auth token"))
	}
	return ss.writeResponse(frame.ReqID, &wire.Response{
		Op:          wire.RespHello,
		WireVersion: wire.Version,
		Shards:      uint32(ss.srv.cfg.Backend.Shards()),
	})
}

// answerable reports whether a frame-read failure deserves a best-effort
// error frame: the peer is still connected but spoke garbage (bad magic,
// version skew, corrupt CRC, oversized or malformed frames). Transport
// conditions — clean EOF, peer reset, and deadline kicks from the drain or
// idle timers — just close the session silently.
func answerable(err error) bool {
	var we *wire.Error
	if !errors.As(err, &we) {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return false
	}
	return true
}

// readFrame reads one frame under the configured idle deadline.
func (ss *session) readFrame() (*wire.Frame, error) {
	if t := ss.srv.cfg.ReadTimeout; t > 0 {
		ss.conn.SetReadDeadline(time.Now().Add(t))
	}
	return wire.ReadFrame(ss.br)
}

// writeResponse encodes and writes one response frame under the write
// deadline. A false return means the connection is unusable.
func (ss *session) writeResponse(reqID uint64, resp *wire.Response) bool {
	payload, err := wire.EncodeResponse(resp)
	if err != nil {
		// Server-side encoding bug surfaced as a response: fall back to an
		// error frame so the client is not left waiting.
		resp = wire.ErrResponse(err)
		if payload, err = wire.EncodeResponse(resp); err != nil {
			return false
		}
	}
	if t := ss.srv.cfg.WriteTimeout; t > 0 {
		ss.conn.SetWriteDeadline(time.Now().Add(t))
	}
	return wire.WriteFrame(ss.conn, &wire.Frame{Op: resp.Op, ReqID: reqID, Payload: payload}) == nil
}

// reply is the common "engine call produced (resp, err)" path.
func (ss *session) reply(reqID uint64, resp *wire.Response, err error) bool {
	if err != nil {
		return ss.writeResponse(reqID, wire.ErrResponse(err))
	}
	return ss.writeResponse(reqID, resp)
}

// dispatch serves one request frame. A false return ends the session.
func (ss *session) dispatch(frame *wire.Frame) bool {
	req, err := wire.DecodeRequest(frame.Op, frame.Payload)
	if err != nil {
		// Framing is intact (length and CRC checked out), so a garbage
		// payload is answered and the session continues.
		return ss.writeResponse(frame.ReqID, wire.ErrResponse(err))
	}
	id := frame.ReqID
	be := ss.srv.cfg.Backend

	// While an interactive batch is open, this session holds the engine's
	// exclusive lock; dispatching a non-batch update here would deadlock
	// the session against itself, so only batch and liveness opcodes pass.
	if ss.holdsBatch() {
		switch req.Op {
		case wire.OpBatchOp, wire.OpBatchCommit, wire.OpPing, wire.OpGoodbye, wire.OpSimSeconds:
		default:
			return ss.writeResponse(id, wire.ErrResponse(
				wire.Errf(wire.CodeBatch, "%s not allowed while a batch is open", req.Op)))
		}
	}

	switch req.Op {
	case wire.OpHello:
		return ss.writeResponse(id, wire.ErrResponse(
			wire.Errf(wire.CodeBadRequest, "duplicate hello")))
	case wire.OpPing:
		return ss.writeResponse(id, &wire.Response{Op: wire.RespAck})
	case wire.OpGoodbye:
		ss.writeResponse(id, &wire.Response{Op: wire.RespAck})
		return false
	case wire.OpSimSeconds:
		return ss.writeResponse(id, &wire.Response{Op: wire.RespFloat, F: be.SimSeconds()})

	case wire.OpQuery:
		res, err := be.Query(req.Name, req.Params)
		if err != nil {
			return ss.writeResponse(id, wire.ErrResponse(err))
		}
		return ss.stream(id, wire.StreamQuery, res.Columns, len(res.Rows), func(lo, hi int) *wire.Response {
			return &wire.Response{Op: wire.RespChunk, Stream: wire.StreamQuery, Rows: res.Rows[lo:hi]}
		})
	case wire.OpCall:
		v, err := be.Call(req.Name, req.Args...)
		return ss.reply(id, &wire.Response{Op: wire.RespValue, Val: v}, err)
	case wire.OpGetAttr:
		v, err := be.GetAttr(req.OID, req.Attr)
		return ss.reply(id, &wire.Response{Op: wire.RespValue, Val: v}, err)
	case wire.OpSet:
		return ss.reply(id, &wire.Response{Op: wire.RespAck}, be.Set(req.OID, req.Attr, req.Val))
	case wire.OpNew:
		oid, err := be.New(req.Name, req.Args...)
		return ss.reply(id, &wire.Response{Op: wire.RespOID, OID: oid}, err)
	case wire.OpNewSet:
		oid, err := be.NewSet(req.Name, req.Args...)
		return ss.reply(id, &wire.Response{Op: wire.RespOID, OID: oid}, err)
	case wire.OpDelete:
		return ss.reply(id, &wire.Response{Op: wire.RespAck}, be.Delete(req.OID))
	case wire.OpInsert:
		return ss.reply(id, &wire.Response{Op: wire.RespAck}, be.Insert(req.OID, req.Val))
	case wire.OpRemove:
		return ss.reply(id, &wire.Response{Op: wire.RespAck}, be.Remove(req.OID, req.Val))

	case wire.OpRetrieve:
		rows, err := be.Retrieve(req.Name, req.Specs)
		if err != nil {
			return ss.writeResponse(id, wire.ErrResponse(err))
		}
		return ss.stream(id, wire.StreamRows, nil, len(rows), func(lo, hi int) *wire.Response {
			return &wire.Response{Op: wire.RespChunk, Stream: wire.StreamRows, GRows: rows[lo:hi]}
		})
	case wire.OpBackward:
		matches, err := be.Backward(req.Name, req.Lo, req.Hi)
		if err != nil {
			return ss.writeResponse(id, wire.ErrResponse(err))
		}
		return ss.stream(id, wire.StreamMatches, nil, len(matches), func(lo, hi int) *wire.Response {
			return &wire.Response{Op: wire.RespChunk, Stream: wire.StreamMatches, Matches: matches[lo:hi]}
		})
	case wire.OpExtension:
		oids := be.Extension(req.Name)
		return ss.stream(id, wire.StreamOIDs, nil, len(oids), func(lo, hi int) *wire.Response {
			return &wire.Response{Op: wire.RespChunk, Stream: wire.StreamOIDs, OIDs: oids[lo:hi]}
		})
	case wire.OpSum:
		var oids []gomdb.OID
		if req.HasOIDs {
			oids = req.OIDs
			if oids == nil {
				oids = []gomdb.OID{}
			}
		}
		f, err := be.Sum(req.Name, oids)
		return ss.reply(id, &wire.Response{Op: wire.RespFloat, F: f}, err)

	case wire.OpMaterialize:
		opts, err := matOptions(&req.Mat)
		if err != nil {
			return ss.writeResponse(id, wire.ErrResponse(err))
		}
		return ss.reply(id, &wire.Response{Op: wire.RespAck}, be.MaterializeGMR(opts))
	case wire.OpDematerialize:
		return ss.reply(id, &wire.Response{Op: wire.RespAck}, be.Dematerialize(req.Name))
	case wire.OpFlush:
		return ss.reply(id, &wire.Response{Op: wire.RespAck}, be.Flush())

	case wire.OpBatchBegin:
		if ss.holdsBatch() {
			return ss.writeResponse(id, wire.ErrResponse(
				wire.Errf(wire.CodeBatch, "batch already open")))
		}
		ss.setTx(be.BeginTx())
		return ss.writeResponse(id, &wire.Response{Op: wire.RespAck})
	case wire.OpBatchOp:
		ss.mu.Lock()
		tx := ss.tx
		ss.mu.Unlock()
		if tx == nil {
			return ss.writeResponse(id, wire.ErrResponse(
				wire.Errf(wire.CodeBatch, "no batch open")))
		}
		return ss.batchOp(id, tx, req.Sub)
	case wire.OpBatchCommit:
		tx := ss.takeTx()
		if tx == nil {
			return ss.writeResponse(id, wire.ErrResponse(
				wire.Errf(wire.CodeBatch, "no batch open")))
		}
		var verdict error
		if req.Abort {
			verdict = errAborted
		}
		err := ss.srv.cfg.Backend.EndTx(tx, verdict)
		if req.Abort && errors.Is(err, errAborted) {
			// The client asked for the abort; acknowledging it is success.
			err = nil
		}
		return ss.reply(id, &wire.Response{Op: wire.RespAck}, err)

	default:
		return ss.writeResponse(id, wire.ErrResponse(
			wire.Errf(wire.CodeUnknownOp, "opcode %s is not servable", req.Op)))
	}
}

// batchOp dispatches one sub-operation into the open batch.
func (ss *session) batchOp(id uint64, tx Tx, sub *wire.Request) bool {
	if sub == nil {
		return ss.writeResponse(id, wire.ErrResponse(
			wire.Errf(wire.CodeBadRequest, "batch op without sub-operation")))
	}
	switch sub.Op {
	case wire.OpNew:
		oid, err := tx.New(sub.Name, sub.Args...)
		return ss.reply(id, &wire.Response{Op: wire.RespOID, OID: oid}, err)
	case wire.OpNewSet:
		oid, err := tx.NewSet(sub.Name, sub.Args...)
		return ss.reply(id, &wire.Response{Op: wire.RespOID, OID: oid}, err)
	case wire.OpDelete:
		return ss.reply(id, &wire.Response{Op: wire.RespAck}, tx.Delete(sub.OID))
	case wire.OpSet:
		return ss.reply(id, &wire.Response{Op: wire.RespAck}, tx.Set(sub.OID, sub.Attr, sub.Val))
	case wire.OpGetAttr:
		v, err := tx.GetAttr(sub.OID, sub.Attr)
		return ss.reply(id, &wire.Response{Op: wire.RespValue, Val: v}, err)
	case wire.OpInsert:
		return ss.reply(id, &wire.Response{Op: wire.RespAck}, tx.Insert(sub.OID, sub.Val))
	case wire.OpRemove:
		return ss.reply(id, &wire.Response{Op: wire.RespAck}, tx.Remove(sub.OID, sub.Val))
	case wire.OpCall:
		v, err := tx.Call(sub.Name, sub.Args...)
		return ss.reply(id, &wire.Response{Op: wire.RespValue, Val: v}, err)
	default:
		return ss.writeResponse(id, wire.ErrResponse(
			wire.Errf(wire.CodeBadRequest, "opcode %s is not batchable", sub.Op)))
	}
}

// stream writes a result set as RespStreamBegin, bounded RespChunk frames,
// and RespDone carrying the total row count.
func (ss *session) stream(id uint64, kind wire.StreamKind, columns []string, total int, chunk func(lo, hi int) *wire.Response) bool {
	if !ss.writeResponse(id, &wire.Response{Op: wire.RespStreamBegin, Stream: kind, Columns: columns}) {
		return false
	}
	size := ss.srv.cfg.ChunkRows
	for lo := 0; lo < total; lo += size {
		hi := lo + size
		if hi > total {
			hi = total
		}
		if !ss.writeResponse(id, chunk(lo, hi)) {
			return false
		}
	}
	return ss.writeResponse(id, &wire.Response{Op: wire.RespDone, Total: uint64(total)})
}

// matOptions converts the wire representation into engine options,
// validating the enums (the wire carries raw bytes).
func matOptions(m *wire.MatOptions) (gomdb.MaterializeOptions, error) {
	if core.Strategy(m.Strategy) > core.Lazy {
		return gomdb.MaterializeOptions{}, wire.Errf(wire.CodeBadRequest, "bad strategy %d", m.Strategy)
	}
	if core.HookMode(m.Mode) > core.ModeInfoHiding {
		return gomdb.MaterializeOptions{}, wire.Errf(wire.CodeBadRequest, "bad hook mode %d", m.Mode)
	}
	return gomdb.MaterializeOptions{
		Name:         m.Name,
		Funcs:        m.Funcs,
		Strategy:     core.Strategy(m.Strategy),
		Mode:         core.HookMode(m.Mode),
		Complete:     m.Complete,
		SecondChance: m.SecondChance,
		UseMDS:       m.UseMDS,
		MemoCache:    m.MemoCache,
		MaxEntries:   int(m.MaxEntries),
	}, nil
}

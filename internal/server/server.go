// Package server implements the gomdb network service: a TCP (or any
// net.Conn) front end that speaks the internal/wire protocol and dispatches
// into an embedded engine or the sharded router. One goroutine serves one
// connection; requests on a connection are handled strictly in order, while
// connections run concurrently against the engine's own concurrency
// machinery (MVCC snapshots classify the read-only opcodes, so a batch held
// open on one session does not stall readers on another).
package server

import (
	"context"
	"crypto/subtle"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"gomdb/internal/wire"
)

// ErrServerClosed is returned by Serve and ListenAndServe after Shutdown.
var ErrServerClosed = errors.New("server: closed")

// Config carries the service knobs.
type Config struct {
	// Backend is the engine the server fronts. Required.
	Backend Backend
	// AuthToken, when non-empty, must be presented in the hello frame
	// (constant-time compared). An authentication stub, not a security
	// boundary: tokens travel in clear text.
	AuthToken string
	// MaxConns bounds concurrently served connections; 0 means unlimited.
	// Excess connections are refused with a CodeBusy error frame.
	MaxConns int
	// ReadTimeout bounds the wait for each request frame (an idle timeout,
	// armed once per frame, not per byte); 0 means no deadline.
	ReadTimeout time.Duration
	// WriteTimeout bounds each response frame write; 0 means no deadline.
	WriteTimeout time.Duration
	// ChunkRows caps rows per stream chunk; 0 means DefaultChunkRows.
	// Results larger than this are streamed as multiple RespChunk frames
	// between RespStreamBegin and RespDone, so one huge extension never
	// forms one huge frame.
	ChunkRows int
}

// DefaultChunkRows is the stream chunk size when Config.ChunkRows is 0.
const DefaultChunkRows = 256

// Stats is a point-in-time snapshot of server counters.
type Stats struct {
	ActiveSessions int    // sessions currently being served
	OpenBatches    int    // sessions currently holding an interactive batch
	Sessions       uint64 // sessions ever admitted
	Refused        uint64 // connections refused at the MaxConns gate
	AuthFailures   uint64 // sessions rejected at the handshake
	Requests       uint64 // request frames dispatched
	AbortedBatches uint64 // batches force-closed by disconnect or drain
}

// Server serves the wire protocol over accepted connections.
type Server struct {
	cfg Config

	mu       sync.Mutex
	ln       net.Listener
	sessions map[*session]struct{}
	draining bool
	wg       sync.WaitGroup
	stats    Stats
}

// New constructs a Server. The config is copied; Backend must be non-nil.
func New(cfg Config) (*Server, error) {
	if cfg.Backend == nil {
		return nil, errors.New("server: nil backend")
	}
	if cfg.ChunkRows <= 0 {
		cfg.ChunkRows = DefaultChunkRows
	}
	return &Server{cfg: cfg, sessions: make(map[*session]struct{})}, nil
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections from ln until Shutdown closes it. Each accepted
// connection is served on its own goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return ErrServerClosed
			}
			return err
		}
		go s.ServeConn(conn)
	}
}

// ServeConn serves one connection synchronously until the peer disconnects,
// the session fails, or the server drains. It is exported so tests can
// drive a server end over net.Pipe without a listener. The connection is
// always closed on return and the session's resources — above all an open
// interactive batch, which holds the engine's exclusive lock — are
// released.
func (s *Server) ServeConn(conn net.Conn) {
	sess, err := s.admit(conn)
	if err != nil {
		// Refused at the gate: best-effort error frame, then close.
		writeErrFrame(conn, s.cfg.WriteTimeout, 0, err)
		conn.Close()
		return
	}
	defer s.release(sess)
	sess.serve()
}

// admit registers a new session, enforcing MaxConns and the drain state.
func (s *Server) admit(conn net.Conn) (*session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.stats.Refused++
		return nil, wire.Errf(wire.CodeShutdown, "server is shutting down")
	}
	if s.cfg.MaxConns > 0 && len(s.sessions) >= s.cfg.MaxConns {
		s.stats.Refused++
		return nil, wire.Errf(wire.CodeBusy, "connection limit %d reached", s.cfg.MaxConns)
	}
	sess := newSession(s, conn)
	s.sessions[sess] = struct{}{}
	s.stats.Sessions++
	s.stats.ActiveSessions++
	s.wg.Add(1)
	return sess, nil
}

// release tears a session down: the connection closes and any batch the
// session still holds is force-closed so the engine lock releases even when
// the client vanished mid-batch.
func (s *Server) release(sess *session) {
	aborted := sess.teardown()
	s.mu.Lock()
	delete(s.sessions, sess)
	s.stats.ActiveSessions--
	if aborted {
		s.stats.AbortedBatches++
	}
	s.mu.Unlock()
	s.wg.Done()
}

// Shutdown drains the server: the listener closes, new connections and new
// requests are refused, sessions finish their in-flight request and are
// then released. Blocks until every session is gone or ctx expires; on
// expiry remaining connections are force-closed and Shutdown waits for
// their teardown (batch release) to finish.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	// Kick every session out of its blocking frame read; a session that is
	// mid-dispatch finishes and writes its response first, then observes
	// the drain flag.
	for sess := range s.sessions {
		sess.interruptRead()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for sess := range s.sessions {
			sess.conn.Close()
		}
		s.mu.Unlock()
		<-done // teardown still runs; batches are still released
		return ctx.Err()
	}
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.OpenBatches = 0
	for sess := range s.sessions {
		if sess.holdsBatch() {
			st.OpenBatches++
		}
	}
	return st
}

// AuditQuiescent checks the server-side session invariants at quiescence —
// the network-layer analogue of sim.Audit: no live sessions, no batch
// handle still holding an engine lock. Violations are returned as strings.
func (s *Server) AuditQuiescent() []string {
	st := s.Stats()
	var v []string
	if st.ActiveSessions != 0 {
		v = append(v, fmt.Sprintf("%d sessions still active", st.ActiveSessions))
	}
	if st.OpenBatches != 0 {
		v = append(v, fmt.Sprintf("%d interactive batches still open", st.OpenBatches))
	}
	return v
}

// draining reports the drain flag.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *Server) countRequest() {
	s.mu.Lock()
	s.stats.Requests++
	s.mu.Unlock()
}

func (s *Server) countAuthFailure() {
	s.mu.Lock()
	s.stats.AuthFailures++
	s.mu.Unlock()
}

// authOK checks the hello token against the configured one in constant
// time.
func (s *Server) authOK(token string) bool {
	if s.cfg.AuthToken == "" {
		return true
	}
	return subtle.ConstantTimeCompare([]byte(token), []byte(s.cfg.AuthToken)) == 1
}

// writeErrFrame best-effort writes a RespError frame outside any session
// (pre-admission refusals).
func writeErrFrame(conn net.Conn, timeout time.Duration, reqID uint64, err error) {
	payload, perr := wire.EncodeResponse(wire.ErrResponse(err))
	if perr != nil {
		return
	}
	if timeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(timeout))
	}
	wire.WriteFrame(conn, &wire.Frame{Op: wire.RespError, ReqID: reqID, Payload: payload})
}

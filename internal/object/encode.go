package object

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary record encoding for objects and values. Records must be compact:
// the cost model depends on realistic object sizes (a Vertex is a few dozen
// bytes, so ~40 of them share a 4 KB page, matching the paper's setup).

type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8) { e.buf = append(e.buf, v) }
func (e *encoder) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}
func (e *encoder) varint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}
func (e *encoder) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}
func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) value(v Value) {
	e.u8(uint8(v.Kind))
	switch v.Kind {
	case KNull:
	case KBool:
		if v.B {
			e.u8(1)
		} else {
			e.u8(0)
		}
	case KInt:
		e.varint(v.I)
	case KFloat:
		e.f64(v.F)
	case KString:
		e.str(v.S)
	case KRef:
		e.uvarint(uint64(v.R))
	case KTuple:
		e.str(v.TupleType)
		e.uvarint(uint64(len(v.Elems)))
		for _, el := range v.Elems {
			e.value(el)
		}
	case KSet, KList:
		e.uvarint(uint64(len(v.Elems)))
		for _, el := range v.Elems {
			e.value(el)
		}
	}
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("object: truncated record (u8 at %d)", d.off)
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("object: truncated record (uvarint at %d)", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("object: truncated record (varint at %d)", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("object: truncated record (f64 at %d)", d.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	// Compare in the uint64 domain: a hostile 64-bit length must not wrap
	// negative under int conversion and slip past the bound (the slice
	// expression below would panic). len-off is never negative.
	if n > uint64(len(d.buf)-d.off) {
		d.fail("object: truncated record (string of %d at %d)", n, d.off)
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *decoder) value() Value {
	k := Kind(d.u8())
	switch k {
	case KNull:
		return Null()
	case KBool:
		return Bool(d.u8() != 0)
	case KInt:
		return Int(d.varint())
	case KFloat:
		return Float(d.f64())
	case KString:
		return String_(d.str())
	case KRef:
		return Ref(OID(d.uvarint()))
	case KTuple:
		tn := d.str()
		// Bound the arity by the remaining bytes in the uint64 domain: an
		// int conversion of a hostile 64-bit count can wrap negative, pass
		// a signed comparison, and panic in make.
		n := d.uvarint()
		if d.err != nil || n > uint64(len(d.buf)-d.off) {
			d.fail("object: bad tuple arity %d", n)
			return Null()
		}
		elems := make([]Value, int(n))
		for i := range elems {
			elems[i] = d.value()
		}
		return Value{Kind: KTuple, TupleType: tn, Elems: elems}
	case KSet, KList:
		n := d.uvarint()
		if d.err != nil || n > uint64(len(d.buf)-d.off) {
			d.fail("object: bad collection arity %d", n)
			return Null()
		}
		elems := make([]Value, int(n))
		for i := range elems {
			elems[i] = d.value()
		}
		return Value{Kind: k, Elems: elems}
	default:
		d.fail("object: unknown value kind %d", k)
		return Null()
	}
}

// EncodeValue serializes a single value (used for GMR records).
func EncodeValue(v Value) []byte {
	var e encoder
	e.value(v)
	return e.buf
}

// DecodeValue deserializes a value produced by EncodeValue and returns the
// number of bytes consumed.
func DecodeValue(buf []byte) (Value, int, error) {
	d := decoder{buf: buf}
	v := d.value()
	return v, d.off, d.err
}

// encodeObj serializes an object record: type name, attributes, elements,
// and the ObjDepFct marking set.
func encodeObj(o *Obj) []byte {
	var e encoder
	e.str(o.Type)
	e.uvarint(uint64(len(o.Attrs)))
	for _, v := range o.Attrs {
		e.value(v)
	}
	e.uvarint(uint64(len(o.Elems)))
	for _, v := range o.Elems {
		e.value(v)
	}
	e.uvarint(uint64(len(o.DepFcts)))
	for _, f := range o.DepFcts {
		e.str(f)
	}
	return e.buf
}

func decodeObj(oid OID, buf []byte) (*Obj, error) {
	d := decoder{buf: buf}
	o := &Obj{OID: oid}
	o.Type = d.str()
	nAttrs := int(d.uvarint())
	if d.err == nil && nAttrs <= len(buf) {
		o.Attrs = make([]Value, nAttrs)
		for i := range o.Attrs {
			o.Attrs[i] = d.value()
		}
	}
	nElems := int(d.uvarint())
	if d.err == nil && nElems <= len(buf) {
		o.Elems = make([]Value, nElems)
		for i := range o.Elems {
			o.Elems[i] = d.value()
		}
	}
	nDep := int(d.uvarint())
	if d.err == nil && nDep <= len(buf) {
		if nDep > 0 {
			o.DepFcts = make([]string, nDep)
			for i := range o.DepFcts {
				o.DepFcts[i] = d.str()
			}
		}
	}
	return o, d.err
}

package object

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"gomdb/internal/mvcc"
	"gomdb/internal/storage"
)

// Obj is the in-memory form of a stored object. Callers obtain it from
// Manager.Get, mutate it, and write it back with Manager.Put.
type Obj struct {
	OID  OID
	Type string
	// Attrs are the attribute values of a tuple-structured object, in the
	// flattened inherited layout (Manager.Layout).
	Attrs []Value
	// Elems are the elements of a set- or list-structured object.
	Elems []Value
	// DepFcts is the ObjDepFct set of Section 5.2: the identifiers of all
	// materialized functions that used this object during materialization.
	// Sorted; maintained in lockstep with the RRR by the GMR manager.
	DepFcts []string
}

// HasDepFct reports whether fid is in the object's ObjDepFct set.
func (o *Obj) HasDepFct(fid string) bool {
	i := sort.SearchStrings(o.DepFcts, fid)
	return i < len(o.DepFcts) && o.DepFcts[i] == fid
}

// AddDepFct inserts fid into ObjDepFct; reports whether it was new.
func (o *Obj) AddDepFct(fid string) bool {
	i := sort.SearchStrings(o.DepFcts, fid)
	if i < len(o.DepFcts) && o.DepFcts[i] == fid {
		return false
	}
	o.DepFcts = append(o.DepFcts, "")
	copy(o.DepFcts[i+1:], o.DepFcts[i:])
	o.DepFcts[i] = fid
	return true
}

// RemoveDepFct removes fid from ObjDepFct; reports whether it was present.
func (o *Obj) RemoveDepFct(fid string) bool {
	i := sort.SearchStrings(o.DepFcts, fid)
	if i >= len(o.DepFcts) || o.DepFcts[i] != fid {
		return false
	}
	o.DepFcts = append(o.DepFcts[:i], o.DepFcts[i+1:]...)
	return true
}

// extent tracks the instances of one exact type with O(1) membership and
// swap-removal while preserving deterministic iteration for seeded
// benchmarks.
type extent struct {
	order []OID
	pos   map[OID]int
}

func (e *extent) add(oid OID) {
	e.pos[oid] = len(e.order)
	e.order = append(e.order, oid)
}

func (e *extent) remove(oid OID) {
	i, ok := e.pos[oid]
	if !ok {
		return
	}
	last := len(e.order) - 1
	e.order[i] = e.order[last]
	e.pos[e.order[i]] = i
	e.order = e.order[:last]
	delete(e.pos, oid)
}

// Manager stores objects in a paged heap file, maintains the OID directory
// and per-type extensions, and charges all access to the simulated clock.
type Manager struct {
	Reg   *Registry
	Clock *storage.Clock

	heap    *storage.HeapFile
	rids    map[OID]storage.RID
	extents map[string]*extent
	nextOID OID
	// alloc, when non-nil, replaces the private nextOID counter: every
	// stored object draws its OID from the shared allocator instead. A
	// shard router injects one allocator into all of its engine instances
	// so the same logical plan assigns the same OIDs at every shard count
	// (references encode as varints, so OID magnitude affects record
	// length and thus CPU charges — a per-shard counter would break charge
	// parity). See internal/shard.
	alloc OIDAllocator

	// layoutMu guards the lazily populated layout caches below: Layout and
	// AttrIndex are called on the concurrent read path, so the first
	// resolution of a type's layout must not race with other readers.
	layoutMu sync.Mutex
	layouts  map[string][]AttrDef
	attrIdx  map[string]map[string]int

	// Reads counts Get calls; used by tests and diagnostics. Updated
	// atomically: Get runs on the concurrent read path.
	Reads int64
	// Writes counts Put calls.
	Writes int64

	// MVCC snapshot-read state. Writers capture pre-images of the OID
	// directory and the extents under verMu before mutating them; pinned
	// readers reconstruct both at their version under verMu.RLock, with the
	// record bytes served by the storage layer's page overlay. Charged
	// accessors skip verMu entirely: they run either under the exclusive
	// Database lock or with no writer present.
	st      *mvcc.State
	verMu   sync.RWMutex
	ridVers map[OID][]ridCapture
	extVers map[string][]extCapture
}

// ridCapture is a pre-image of one OID-directory entry as of publish ver.
type ridCapture struct {
	ver     uint64
	rid     storage.RID
	present bool
}

// extCapture is a pre-image of one type extent's membership as of ver.
type extCapture struct {
	ver   uint64
	order []OID
}

// NewManager returns an object manager storing objects via pool.
func NewManager(reg *Registry, pool *storage.BufferPool, clock *storage.Clock) *Manager {
	return &Manager{
		Reg:     reg,
		Clock:   clock,
		heap:    storage.NewHeapFile(pool, "objects"),
		rids:    make(map[OID]storage.RID),
		extents: make(map[string]*extent),
		nextOID: 1,
		layouts: make(map[string][]AttrDef),
		attrIdx: make(map[string]map[string]int),
	}
}

// OIDAllocator hands out object identifiers from a source shared by several
// managers. NextOID allocates (and consumes) the next OID; PeekOID reports
// the next OID without consuming it. Implementations must be safe for
// concurrent use; the manager itself calls them only under the engine's
// exclusive lock.
type OIDAllocator interface {
	NextOID() OID
	PeekOID() OID
}

// SetOIDAllocator replaces the manager's private OID counter with a shared
// allocator. Must be called before any object is stored (the shard router
// injects it at construction / open time, before schema definition).
func (m *Manager) SetOIDAllocator(a OIDAllocator) { m.alloc = a }

// SetMVCC attaches the shared MVCC version state, enabling pre-image
// capture on directory and extent mutations.
func (m *Manager) SetMVCC(st *mvcc.State) {
	m.st = st
	m.ridVers = make(map[OID][]ridCapture)
	m.extVers = make(map[string][]extCapture)
}

// captureRID records the pre-image of oid's directory entry for the current
// epoch. Caller holds verMu.
func (m *Manager) captureRID(oid OID, stable uint64) {
	caps := m.ridVers[oid]
	if n := len(caps); n > 0 && caps[n-1].ver == stable {
		return
	}
	rid, ok := m.rids[oid]
	m.ridVers[oid] = append(caps, ridCapture{ver: stable, rid: rid, present: ok})
}

// captureExt records the pre-image of a type extent's membership for the
// current epoch. Caller holds verMu.
func (m *Manager) captureExt(typeName string, stable uint64) {
	caps := m.extVers[typeName]
	if n := len(caps); n > 0 && caps[n-1].ver == stable {
		return
	}
	var order []OID
	if ext := m.extents[typeName]; ext != nil {
		order = append([]OID(nil), ext.order...)
	}
	m.extVers[typeName] = append(caps, extCapture{ver: stable, order: order})
}

// GetVersioned reads and decodes the object with the given OID as of MVCC
// version ver — charge-free, safe concurrently with a writer. It returns a
// dangling-reference error when the object did not exist at ver.
func (m *Manager) GetVersioned(oid OID, ver uint64) (*Obj, error) {
	m.verMu.RLock()
	rid, present := m.rids[oid]
	caps := m.ridVers[oid]
	for _, c := range caps {
		if c.ver >= ver {
			rid, present = c.rid, c.present
			break
		}
	}
	m.verMu.RUnlock()
	if !present {
		return nil, fmt.Errorf("object: dangling reference %v", oid)
	}
	rec, err := m.heap.ReadVersioned(rid, ver)
	if err != nil {
		return nil, err
	}
	return decodeObj(oid, rec)
}

// ExtensionVersioned returns the OIDs of all instances of typeName and its
// subtypes as of MVCC version ver. The slice is a copy.
func (m *Manager) ExtensionVersioned(typeName string, ver uint64) []OID {
	var out []OID
	m.verMu.RLock()
	defer m.verMu.RUnlock()
	for _, tn := range m.Reg.WithSubtypes(typeName) {
		captured := false
		for _, c := range m.extVers[tn] {
			if c.ver >= ver {
				out = append(out, c.order...)
				captured = true
				break
			}
		}
		if !captured {
			if ext := m.extents[tn]; ext != nil {
				out = append(out, ext.order...)
			}
		}
	}
	return out
}

// ReclaimVersions drops directory and extent captures no pinned reader can
// reach (tags below floor).
func (m *Manager) ReclaimVersions(floor uint64) {
	if m.st == nil {
		return
	}
	m.verMu.Lock()
	defer m.verMu.Unlock()
	for oid, caps := range m.ridVers {
		j := 0
		for j < len(caps) && caps[j].ver < floor {
			j++
		}
		if j == len(caps) {
			delete(m.ridVers, oid)
		} else if j > 0 {
			m.ridVers[oid] = append([]ridCapture(nil), caps[j:]...)
		}
	}
	for tn, caps := range m.extVers {
		j := 0
		for j < len(caps) && caps[j].ver < floor {
			j++
		}
		if j == len(caps) {
			delete(m.extVers, tn)
		} else if j > 0 {
			m.extVers[tn] = append([]extCapture(nil), caps[j:]...)
		}
	}
}

// VersionCaptureCount reports the number of retained directory and extent
// pre-images (audits).
func (m *Manager) VersionCaptureCount() int {
	m.verMu.RLock()
	defer m.verMu.RUnlock()
	n := 0
	for _, caps := range m.ridVers {
		n += len(caps)
	}
	for _, caps := range m.extVers {
		n += len(caps)
	}
	return n
}

// Layout returns the flattened (inheritance-resolved) attribute layout of a
// tuple type.
func (m *Manager) Layout(typeName string) []AttrDef {
	m.layoutMu.Lock()
	defer m.layoutMu.Unlock()
	return m.layoutLocked(typeName)
}

func (m *Manager) layoutLocked(typeName string) []AttrDef {
	if l, ok := m.layouts[typeName]; ok {
		return l
	}
	l := m.Reg.InheritedAttrs(typeName)
	m.layouts[typeName] = l
	idx := make(map[string]int, len(l))
	for i, a := range l {
		idx[a.Name] = i
	}
	m.attrIdx[typeName] = idx
	return l
}

// AttrIndex returns the position of attr in the flattened layout of
// typeName, or -1.
func (m *Manager) AttrIndex(typeName, attr string) int {
	m.layoutMu.Lock()
	defer m.layoutMu.Unlock()
	if _, ok := m.attrIdx[typeName]; !ok {
		m.layoutLocked(typeName)
	}
	if i, ok := m.attrIdx[typeName][attr]; ok {
		return i
	}
	return -1
}

// Create stores a new tuple-structured instance of typeName with the given
// attribute values (in flattened layout order) and returns its OID.
func (m *Manager) Create(typeName string, attrs []Value) (OID, error) {
	t := m.Reg.Lookup(typeName)
	if t == nil {
		return NilOID, fmt.Errorf("object: create of unknown type %q", typeName)
	}
	if t.Kind != TupleType {
		return NilOID, fmt.Errorf("object: Create on non-tuple type %q; use CreateCollection", typeName)
	}
	layout := m.Layout(typeName)
	if attrs == nil {
		attrs = make([]Value, len(layout))
		for i := range attrs {
			attrs[i] = Null()
		}
	}
	if len(attrs) != len(layout) {
		return NilOID, fmt.Errorf("object: type %q expects %d attributes, got %d", typeName, len(layout), len(attrs))
	}
	return m.store(&Obj{Type: typeName, Attrs: attrs})
}

// CreateCollection stores a new set- or list-structured instance.
func (m *Manager) CreateCollection(typeName string, elems []Value) (OID, error) {
	t := m.Reg.Lookup(typeName)
	if t == nil {
		return NilOID, fmt.Errorf("object: create of unknown type %q", typeName)
	}
	if t.Kind != SetType && t.Kind != ListType {
		return NilOID, fmt.Errorf("object: CreateCollection on non-collection type %q", typeName)
	}
	return m.store(&Obj{Type: typeName, Elems: elems})
}

func (m *Manager) store(o *Obj) (OID, error) {
	if m.alloc != nil {
		o.OID = m.alloc.NextOID()
	} else {
		o.OID = m.nextOID
		m.nextOID++
	}
	rec := encodeObj(o)
	m.Clock.AddCPU(1 + int64(len(rec))/64)
	rid, err := m.heap.Insert(rec)
	if err != nil {
		return NilOID, err
	}
	if m.st != nil {
		m.verMu.Lock()
		stable := m.st.Stable()
		m.captureRID(o.OID, stable)
		m.captureExt(o.Type, stable)
		defer m.verMu.Unlock()
	}
	m.rids[o.OID] = rid
	ext := m.extents[o.Type]
	if ext == nil {
		ext = &extent{pos: make(map[OID]int)}
		m.extents[o.Type] = ext
	}
	ext.add(o.OID)
	m.Writes++
	return o.OID, nil
}

// Exists reports whether oid denotes a live object.
func (m *Manager) Exists(oid OID) bool {
	_, ok := m.rids[oid]
	return ok
}

// TypeOf returns the type name of oid without charging a full record decode.
// It still reads the record (and thus charges I/O) because the type tag is
// stored with the object.
func (m *Manager) TypeOf(oid OID) (string, error) {
	o, err := m.Get(oid)
	if err != nil {
		return "", err
	}
	return o.Type, nil
}

// Get reads and decodes the object with the given OID.
func (m *Manager) Get(oid OID) (*Obj, error) {
	rid, ok := m.rids[oid]
	if !ok {
		return nil, fmt.Errorf("object: dangling reference %v", oid)
	}
	rec, err := m.heap.Read(rid)
	if err != nil {
		return nil, err
	}
	m.Clock.AddCPU(1 + int64(len(rec))/64)
	atomic.AddInt64(&m.Reads, 1)
	return decodeObj(oid, rec)
}

// GetSnapshot reads and decodes the object with the given OID through the
// charge-free snapshot path: no simulated-clock charges, no buffer-pool
// traffic, no Reads increment. The deferred-rematerialization workers use it
// to evaluate concurrently; the corresponding charged Get calls are replayed
// serially afterwards so the simulated accounting stays deterministic.
// Callers must guarantee no concurrent writer (the workers run under the
// Database write lock).
func (m *Manager) GetSnapshot(oid OID) (*Obj, error) {
	rid, ok := m.rids[oid]
	if !ok {
		return nil, fmt.Errorf("object: dangling reference %v", oid)
	}
	rec, err := m.heap.ReadSnapshot(rid)
	if err != nil {
		return nil, err
	}
	return decodeObj(oid, rec)
}

// Put writes back a (possibly mutated) object.
func (m *Manager) Put(o *Obj) error {
	rid, ok := m.rids[o.OID]
	if !ok {
		return fmt.Errorf("object: put of deleted object %v", o.OID)
	}
	rec := encodeObj(o)
	m.Clock.AddCPU(1 + int64(len(rec))/64)
	newRID, err := m.heap.Update(rid, rec)
	if err != nil {
		return err
	}
	if newRID != rid {
		if m.st != nil {
			m.verMu.Lock()
			m.captureRID(o.OID, m.st.Stable())
			m.rids[o.OID] = newRID
			m.verMu.Unlock()
		} else {
			m.rids[o.OID] = newRID
		}
	}
	m.Writes++
	return nil
}

// Delete removes the object from the store and its type extension.
func (m *Manager) Delete(oid OID) error {
	rid, ok := m.rids[oid]
	if !ok {
		return fmt.Errorf("object: delete of unknown object %v", oid)
	}
	o, err := m.Get(oid)
	if err != nil {
		return err
	}
	if err := m.heap.Delete(rid); err != nil {
		return err
	}
	if m.st != nil {
		m.verMu.Lock()
		stable := m.st.Stable()
		m.captureRID(oid, stable)
		m.captureExt(o.Type, stable)
		defer m.verMu.Unlock()
	}
	delete(m.rids, oid)
	if ext := m.extents[o.Type]; ext != nil {
		ext.remove(oid)
	}
	return nil
}

// Extension returns the OIDs of all instances of typeName and its subtypes
// (Section 3: "the extension of type Cuboid, i.e., the set of instances of
// type Cuboid"). The slice is a copy.
func (m *Manager) Extension(typeName string) []OID {
	var out []OID
	for _, tn := range m.Reg.WithSubtypes(typeName) {
		if ext := m.extents[tn]; ext != nil {
			out = append(out, ext.order...)
		}
	}
	return out
}

// ExtensionSize returns the number of instances of typeName incl. subtypes.
func (m *Manager) ExtensionSize(typeName string) int {
	n := 0
	for _, tn := range m.Reg.WithSubtypes(typeName) {
		if ext := m.extents[tn]; ext != nil {
			n += len(ext.order)
		}
	}
	return n
}

// NumObjects returns the number of live objects.
func (m *Manager) NumObjects() int { return len(m.rids) }

// NextOID returns the OID the next created object will receive; the GMR
// manager uses the watermark to identify result objects for garbage
// collection.
func (m *Manager) NextOID() OID {
	if m.alloc != nil {
		return m.alloc.PeekOID()
	}
	return m.nextOID
}

// HeapPages returns the number of pages occupied by the object heap.
func (m *Manager) HeapPages() int { return m.heap.NumPages() }

// MaterializeValue persists a transient complex value (tuple/set/list) as
// one or more objects and returns a Ref to the root. Atomic values are
// returned unchanged. The GMR manager uses this to store complex function
// results as objects, per Section 3.1 ("references to the result objects").
func (m *Manager) MaterializeValue(v Value, typeName string) (Value, error) {
	switch v.Kind {
	case KTuple:
		tn := v.TupleType
		if tn == "" {
			tn = typeName
		}
		layout := m.Layout(tn)
		attrs := make([]Value, len(layout))
		for i := range layout {
			if i < len(v.Elems) {
				av, err := m.MaterializeValue(v.Elems[i], layout[i].Type)
				if err != nil {
					return Null(), err
				}
				attrs[i] = av
			} else {
				attrs[i] = Null()
			}
		}
		oid, err := m.Create(tn, attrs)
		if err != nil {
			return Null(), err
		}
		return Ref(oid), nil
	case KSet, KList:
		t := m.Reg.Lookup(typeName)
		elemType := ""
		if t != nil {
			elemType = t.Elem
		}
		elems := make([]Value, len(v.Elems))
		for i, e := range v.Elems {
			ev, err := m.MaterializeValue(e, elemType)
			if err != nil {
				return Null(), err
			}
			elems[i] = ev
		}
		if t == nil || (t.Kind != SetType && t.Kind != ListType) {
			// No declared collection type: keep it transient.
			return Value{Kind: v.Kind, Elems: elems}, nil
		}
		oid, err := m.CreateCollection(typeName, elems)
		if err != nil {
			return Null(), err
		}
		return Ref(oid), nil
	default:
		return v, nil
	}
}

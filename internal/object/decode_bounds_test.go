package object

import "testing"

// TestDecodeValueHostileLengths: a malformed record whose length or arity
// prefix is a huge 64-bit value must fail cleanly, not panic. Before the
// bounds checks moved to the uint64 domain, int conversion wrapped these
// counts negative: the string path sliced with a negative high index and the
// tuple/set paths called make with a negative length — both runtime panics,
// reachable from any untrusted byte stream fed to DecodeValue (the network
// protocol's value decoder delegates here).
func TestDecodeValueHostileLengths(t *testing.T) {
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01} // uvarint 2^63+
	cases := map[string][]byte{
		"string length wraps negative":    append([]byte{byte(KString)}, huge...),
		"tuple arity wraps negative":      append([]byte{byte(KTuple), 0}, huge...),
		"set arity wraps negative":        append([]byte{byte(KSet)}, huge...),
		"list arity wraps negative":       append([]byte{byte(KList)}, huge...),
		"tuple type name wraps negative":  append([]byte{byte(KTuple)}, huge...),
		"string length exceeds remaining": {byte(KString), 0x10, 'a'},
		"set arity exceeds remaining":     {byte(KSet), 0x7f},
	}
	for name, buf := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("DecodeValue panicked: %v", r)
				}
			}()
			if _, _, err := DecodeValue(buf); err == nil {
				t.Fatalf("DecodeValue(% x) = nil error, want failure", buf)
			}
		})
	}
}

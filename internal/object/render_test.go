package object

import (
	"strings"
	"testing"
)

func TestValueStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "null"},
		{Bool(true), "true"},
		{Int(-3), "-3"},
		{Float(2.5), "2.5"},
		{String_("a\"b"), `"a\"b"`},
		{Ref(42), "id42"},
		{TupleVal("T", Int(1), String_("x")), `T[1, "x"]`},
		{ListVal(Int(2), Int(1)), "<2, 1>"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", c.v.Kind, got, c.want)
		}
	}
	// Set rendering is canonical (order-insensitive).
	a := SetVal(Int(2), Int(1)).String()
	b := SetVal(Int(1), Int(2)).String()
	if a != b {
		t.Errorf("set rendering not canonical: %q vs %q", a, b)
	}
}

func TestKindStrings(t *testing.T) {
	kinds := map[Kind]string{
		KNull: "null", KBool: "bool", KInt: "int", KFloat: "float",
		KString: "string", KRef: "ref", KTuple: "tuple", KSet: "set", KList: "list",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	typeKinds := map[TypeKind]string{
		Atomic: "atomic", TupleType: "tuple", SetType: "set", ListType: "list",
	}
	for k, want := range typeKinds {
		if k.String() != want {
			t.Errorf("TypeKind(%d).String() = %q", k, k.String())
		}
	}
}

func TestRegistryMiscellany(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(NewTupleType("A", AttrDef{Name: "X", Type: "float"})); err != nil {
		t.Fatal(err)
	}
	if got := reg.Lookup("A").AttrType("X"); got != "float" {
		t.Fatalf("AttrType = %q", got)
	}
	if got := reg.Lookup("A").AttrType("Y"); got != "" {
		t.Fatalf("missing AttrType = %q", got)
	}
	if len(reg.Types()) != 1 {
		t.Fatalf("Types = %v", reg.Types())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustLookup of missing type did not panic")
		}
	}()
	reg.MustLookup("missing")
}

func TestTypeOfAndHeapPages(t *testing.T) {
	m, reg := testManager(t)
	if err := reg.Register(NewTupleType("T", AttrDef{Name: "X", Type: "float"})); err != nil {
		t.Fatal(err)
	}
	oid, err := m.Create("T", []Value{Float(1)})
	if err != nil {
		t.Fatal(err)
	}
	tn, err := m.TypeOf(oid)
	if err != nil || tn != "T" {
		t.Fatalf("TypeOf = %q, %v", tn, err)
	}
	if m.HeapPages() < 1 {
		t.Fatal("no heap pages")
	}
	if m.NextOID() <= oid {
		t.Fatal("NextOID not advancing")
	}
	// AsFloat/Truth edge cases.
	if _, ok := String_("x").AsFloat(); ok {
		t.Fatal("string AsFloat succeeded")
	}
	if !strings.Contains(ListVal().String(), "<") {
		t.Fatal("empty list rendering")
	}
}

package object

import (
	"fmt"
	"sort"

	"gomdb/internal/storage"
)

// Physical relocation of the object base. The clustering pass
// (internal/cluster) computes a placement order over all live OIDs; Relocate
// rewrites the heap in that order and remaps the OID directory. OIDs are the
// only stable names the rest of the engine holds — the RRR, GMR argument
// columns, memo keys, and extents all reference objects by OID, never by RID
// — so remapping the directory is the entire reference fixup.
//
// Callers must hold the MVCC write barrier (no pinned snapshot readers): the
// directory remap deliberately takes no pre-image captures, because a reader
// pinned across a relocation would otherwise need the old page set, which the
// relocation frees.

// Relocate rewrites the object heap so records appear in exactly the given
// OID order and remaps the directory. order must name every live object
// exactly once. The move is all-or-nothing (see storage.HeapFile.Relocate):
// on error the heap and directory are unchanged. It returns the number of
// objects whose record id changed.
func (m *Manager) Relocate(order []OID) (int, error) {
	if len(order) != len(m.rids) {
		return 0, fmt.Errorf("object: relocate order names %d objects, directory holds %d",
			len(order), len(m.rids))
	}
	ridOrder := make([]storage.RID, len(order))
	for i, oid := range order {
		rid, ok := m.rids[oid]
		if !ok {
			return 0, fmt.Errorf("object: relocate order names unknown object %v", oid)
		}
		ridOrder[i] = rid
	}
	remap, err := m.heap.Relocate(ridOrder)
	if err != nil {
		return 0, err
	}
	moved := 0
	for i, oid := range order {
		newRID := remap[ridOrder[i]]
		if newRID != ridOrder[i] {
			moved++
		}
		m.rids[oid] = newRID
	}
	return moved, nil
}

// AllOIDs returns every live OID in ascending order — the canonical live set
// the clustering pass appends cold objects from.
func (m *Manager) AllOIDs() []OID {
	out := make([]OID, 0, len(m.rids))
	for oid := range m.rids {
		out = append(out, oid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RIDOf returns the record id currently backing oid. It is a charge-free
// directory lookup for diagnostics and access statistics; the record itself
// is not touched.
func (m *Manager) RIDOf(oid OID) (storage.RID, bool) {
	rid, ok := m.rids[oid]
	return rid, ok
}

// AuditDirectory verifies the directory ↔ heap correspondence and returns
// the violations found: every directory entry must resolve to exactly one
// live heap slot holding a decodable record, no two entries may share a
// slot, every extent member must be in the directory, and the live-record
// count must match. All reads go through the charge-free snapshot path, so
// auditing never perturbs the simulated clock. The simulation harness runs
// it at every quiescent point.
func (m *Manager) AuditDirectory() []string {
	var out []string
	seen := make(map[storage.RID]OID, len(m.rids))
	for _, oid := range m.AllOIDs() {
		rid := m.rids[oid]
		if prev, dup := seen[rid]; dup {
			out = append(out, fmt.Sprintf("directory: objects %v and %v share heap slot %v", prev, oid, rid))
			continue
		}
		seen[rid] = oid
		rec, err := m.heap.ReadSnapshot(rid)
		if err != nil {
			out = append(out, fmt.Sprintf("directory: object %v does not resolve to a live heap slot: %v", oid, err))
			continue
		}
		if _, err := decodeObj(oid, rec); err != nil {
			out = append(out, fmt.Sprintf("directory: object %v resolves to an undecodable record at %v: %v", oid, rid, err))
		}
	}
	if m.heap.Count() != len(m.rids) {
		out = append(out, fmt.Sprintf("directory: heap holds %d live records, directory holds %d entries",
			m.heap.Count(), len(m.rids)))
	}
	types := make([]string, 0, len(m.extents))
	for tn := range m.extents {
		types = append(types, tn)
	}
	sort.Strings(types)
	for _, tn := range types {
		for _, oid := range m.extents[tn].order {
			if _, ok := m.rids[oid]; !ok {
				out = append(out, fmt.Sprintf("directory: extension of %q lists object %v with no directory entry", tn, oid))
			}
		}
	}
	return out
}

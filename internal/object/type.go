package object

import (
	"fmt"
	"sort"
)

// TypeKind enumerates the structural descriptions a GOM type may have
// (Section 2: "The structural description of a new object type can be either
// a tuple, a set, or a list"), plus the built-in atomic types.
type TypeKind uint8

const (
	// Atomic covers the built-in value types float, int, string, bool.
	Atomic TypeKind = iota
	// TupleType is a tuple-structured object type: [a1:t1, ..., an:tn].
	TupleType
	// SetType is a set-structured object type: {t}.
	SetType
	// ListType is a list-structured object type: <t>.
	ListType
)

func (k TypeKind) String() string {
	switch k {
	case Atomic:
		return "atomic"
	case TupleType:
		return "tuple"
	case SetType:
		return "set"
	case ListType:
		return "list"
	}
	return fmt.Sprintf("typekind(%d)", uint8(k))
}

// AttrDef describes one attribute of a tuple-structured type. Public
// attributes have their built-in A / set_A operations in the public clause;
// strictly encapsulated types keep them private.
type AttrDef struct {
	Name   string
	Type   string
	Public bool
}

// Type is a type descriptor. Operation bodies are attached at the schema
// layer; the object layer only needs structure.
type Type struct {
	Name  string
	Kind  TypeKind
	Super string // name of the supertype; "" means ANY

	// Attrs describes the tuple attributes (TupleType only).
	Attrs []AttrDef
	// Elem names the element type (SetType/ListType only).
	Elem string

	// StrictEncapsulated marks the type as strictly encapsulated in the
	// Section 5.3 sense: its representation (including all subobjects) is
	// reachable only through public operations, so only those operations
	// need invalidation hooks.
	StrictEncapsulated bool

	attrIdx map[string]int
}

// NewTupleType constructs a tuple-structured type descriptor.
func NewTupleType(name string, attrs ...AttrDef) *Type {
	t := &Type{Name: name, Kind: TupleType, Attrs: attrs}
	t.buildIndex()
	return t
}

// NewSetType constructs a set-structured type descriptor with the given
// element type.
func NewSetType(name, elem string) *Type {
	return &Type{Name: name, Kind: SetType, Elem: elem}
}

// NewListType constructs a list-structured type descriptor.
func NewListType(name, elem string) *Type {
	return &Type{Name: name, Kind: ListType, Elem: elem}
}

func (t *Type) buildIndex() {
	t.attrIdx = make(map[string]int, len(t.Attrs))
	for i, a := range t.Attrs {
		t.attrIdx[a.Name] = i
	}
}

// AttrIndex returns the position of the named attribute, or -1.
func (t *Type) AttrIndex(name string) int {
	if t.attrIdx == nil {
		t.buildIndex()
	}
	if i, ok := t.attrIdx[name]; ok {
		return i
	}
	return -1
}

// AttrType returns the declared type of the named attribute, or "".
func (t *Type) AttrType(name string) string {
	i := t.AttrIndex(name)
	if i < 0 {
		return ""
	}
	return t.Attrs[i].Type
}

// IsAtomicName reports whether a type name denotes one of the built-in
// atomic value types.
func IsAtomicName(name string) bool {
	switch name {
	case "float", "int", "string", "bool", "void", "decimal", "char":
		return true
	}
	return false
}

// Registry maps type names to descriptors and answers subtype questions.
type Registry struct {
	types map[string]*Type
	// subs maps a type name to its direct subtypes.
	subs map[string][]string
}

// NewRegistry returns an empty type registry.
func NewRegistry() *Registry {
	return &Registry{types: make(map[string]*Type), subs: make(map[string][]string)}
}

// Register adds a type descriptor. Registering a duplicate name is an error.
func (r *Registry) Register(t *Type) error {
	if _, dup := r.types[t.Name]; dup {
		return fmt.Errorf("object: duplicate type %q", t.Name)
	}
	if IsAtomicName(t.Name) {
		return fmt.Errorf("object: type %q collides with a built-in atomic type", t.Name)
	}
	if t.Super != "" {
		sup, ok := r.types[t.Super]
		if !ok {
			return fmt.Errorf("object: type %q declares unknown supertype %q", t.Name, t.Super)
		}
		if sup.Kind != t.Kind {
			return fmt.Errorf("object: type %q (%v) cannot extend %q (%v)", t.Name, t.Kind, sup.Name, sup.Kind)
		}
		r.subs[t.Super] = append(r.subs[t.Super], t.Name)
	}
	r.types[t.Name] = t
	return nil
}

// Lookup returns the descriptor for name, or nil.
func (r *Registry) Lookup(name string) *Type { return r.types[name] }

// MustLookup returns the descriptor for name or panics; for internal use
// where the schema has already validated the name.
func (r *Registry) MustLookup(name string) *Type {
	t := r.types[name]
	if t == nil {
		panic(fmt.Sprintf("object: unknown type %q", name))
	}
	return t
}

// Types returns all registered type names in sorted order, so callers that
// iterate the schema (hooks installation, garbage collection, tooling) do so
// deterministically.
func (r *Registry) Types() []string {
	out := make([]string, 0, len(r.types))
	for n := range r.types {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// IsSubtypeOf reports whether sub = sup or sub is a (transitive) subtype of
// sup. Atomic names are only subtypes of themselves.
func (r *Registry) IsSubtypeOf(sub, sup string) bool {
	if sub == sup || sup == "ANY" {
		return true
	}
	t := r.types[sub]
	for t != nil && t.Super != "" {
		if t.Super == sup {
			return true
		}
		t = r.types[t.Super]
	}
	return false
}

// HasSubtypes reports whether any type names name as its supertype. When
// false, the declared type of an expression is also the dynamic type of
// every value it denotes, so operation dispatch can be resolved statically.
func (r *Registry) HasSubtypes(name string) bool { return len(r.subs[name]) > 0 }

// WithSubtypes returns name followed by all of its transitive subtypes.
func (r *Registry) WithSubtypes(name string) []string {
	out := []string{name}
	for i := 0; i < len(out); i++ {
		out = append(out, r.subs[out[i]]...)
	}
	return out
}

// InheritedAttrs returns the full attribute list of a tuple type, with
// inherited attributes first — the physical layout of instances. The object
// manager stores instances with this flattened layout.
func (r *Registry) InheritedAttrs(name string) []AttrDef {
	t := r.types[name]
	if t == nil || t.Kind != TupleType {
		return nil
	}
	var chain []*Type
	for cur := t; cur != nil; cur = r.types[cur.Super] {
		chain = append(chain, cur)
		if cur.Super == "" {
			break
		}
	}
	var out []AttrDef
	for i := len(chain) - 1; i >= 0; i-- {
		out = append(out, chain[i].Attrs...)
	}
	return out
}

package object

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"gomdb/internal/storage"
)

func testManager(t *testing.T) (*Manager, *Registry) {
	t.Helper()
	clock := storage.NewClock()
	disk := storage.NewDisk(clock)
	pool := storage.NewPool(disk, 50)
	reg := NewRegistry()
	return NewManager(reg, pool, clock), reg
}

func TestValueConstructorsAndEquality(t *testing.T) {
	cases := []struct {
		a, b  Value
		equal bool
	}{
		{Null(), Null(), true},
		{Bool(true), Bool(true), true},
		{Bool(true), Bool(false), false},
		{Int(3), Int(3), true},
		{Int(3), Float(3), true}, // numeric cross-kind equality
		{Float(2.5), Float(2.5), true},
		{Float(math.NaN()), Float(math.NaN()), true},
		{String_("a"), String_("a"), true},
		{String_("a"), String_("b"), false},
		{Ref(7), Ref(7), true},
		{Ref(7), Ref(8), false},
		{SetVal(Int(1), Int(2)), SetVal(Int(2), Int(1)), true}, // set order-insensitive
		{ListVal(Int(1), Int(2)), ListVal(Int(2), Int(1)), false},
		{TupleVal("T", Int(1)), TupleVal("T", Int(1)), true},
		{TupleVal("T", Int(1)), TupleVal("U", Int(1)), false},
		{Null(), Int(0), false},
	}
	for i, c := range cases {
		if got := c.a.Equal(c.b); got != c.equal {
			t.Errorf("case %d: %v.Equal(%v) = %v, want %v", i, c.a, c.b, got, c.equal)
		}
		if got := c.b.Equal(c.a); got != c.equal {
			t.Errorf("case %d: symmetry violated", i)
		}
	}
}

func TestValueContainsAndTruth(t *testing.T) {
	s := SetVal(Int(1), String_("x"))
	if !s.Contains(Int(1)) || !s.Contains(String_("x")) || s.Contains(Int(2)) {
		t.Fatal("Contains wrong")
	}
	if !Bool(true).Truth() || Bool(false).Truth() || Int(1).Truth() {
		t.Fatal("Truth wrong")
	}
}

// randomValue builds a random value of bounded depth for round-trip tests.
func randomValue(rng *rand.Rand, depth int) Value {
	if depth <= 0 {
		switch rng.Intn(6) {
		case 0:
			return Null()
		case 1:
			return Bool(rng.Intn(2) == 0)
		case 2:
			return Int(rng.Int63n(1 << 40))
		case 3:
			return Float(rng.NormFloat64() * 1e6)
		case 4:
			b := make([]byte, rng.Intn(20))
			rng.Read(b)
			return String_(string(b))
		default:
			return Ref(OID(rng.Int63n(1 << 30)))
		}
	}
	switch rng.Intn(3) {
	case 0:
		n := rng.Intn(4)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = randomValue(rng, depth-1)
		}
		return SetVal(elems...)
	case 1:
		n := rng.Intn(4)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = randomValue(rng, depth-1)
		}
		return ListVal(elems...)
	default:
		return TupleVal("T", randomValue(rng, depth-1), randomValue(rng, depth-1))
	}
}

func TestQuickValueEncodeRoundTrip(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randomValue(rng, rng.Intn(4))
		buf := EncodeValue(v)
		got, n, err := DecodeValue(buf)
		return err == nil && n == len(buf) && got.Equal(v) && reflect.DeepEqual(got.Kind, v.Kind)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeValueRejectsGarbage(t *testing.T) {
	for _, buf := range [][]byte{{}, {255}, {uint8(KString), 200}, {uint8(KSet), 255, 255, 255, 255, 15}} {
		if _, _, err := DecodeValue(buf); err == nil {
			t.Errorf("DecodeValue(%v) succeeded", buf)
		}
	}
}

func TestRegistryInheritance(t *testing.T) {
	reg := NewRegistry()
	person := NewTupleType("Person", AttrDef{Name: "Name", Type: "string"})
	if err := reg.Register(person); err != nil {
		t.Fatal(err)
	}
	emp := NewTupleType("Employee", AttrDef{Name: "Salary", Type: "float"})
	emp.Super = "Person"
	if err := reg.Register(emp); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(NewTupleType("Person")); err == nil {
		t.Fatal("duplicate type registered")
	}
	bad := NewTupleType("Bad")
	bad.Super = "Missing"
	if err := reg.Register(bad); err == nil {
		t.Fatal("unknown supertype accepted")
	}
	if err := reg.Register(NewTupleType("float")); err == nil {
		t.Fatal("atomic name collision accepted")
	}
	setOfPersons := NewSetType("People", "Person")
	setOfPersons.Super = "Person"
	if err := reg.Register(setOfPersons); err == nil {
		t.Fatal("set type extending tuple type accepted")
	}

	if !reg.IsSubtypeOf("Employee", "Person") || !reg.IsSubtypeOf("Employee", "Employee") {
		t.Fatal("IsSubtypeOf wrong")
	}
	if reg.IsSubtypeOf("Person", "Employee") {
		t.Fatal("supertype considered subtype")
	}
	if !reg.IsSubtypeOf("Person", "ANY") {
		t.Fatal("ANY is not a universal supertype")
	}
	if reg.HasSubtypes("Employee") || !reg.HasSubtypes("Person") {
		t.Fatal("HasSubtypes wrong")
	}
	attrs := reg.InheritedAttrs("Employee")
	if len(attrs) != 2 || attrs[0].Name != "Name" || attrs[1].Name != "Salary" {
		t.Fatalf("InheritedAttrs = %v", attrs)
	}
	with := reg.WithSubtypes("Person")
	if len(with) != 2 {
		t.Fatalf("WithSubtypes = %v", with)
	}
}

func TestManagerCRUDAndExtensions(t *testing.T) {
	m, reg := testManager(t)
	if err := reg.Register(NewTupleType("Point",
		AttrDef{Name: "X", Type: "float"}, AttrDef{Name: "Y", Type: "float"})); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(NewSetType("Points", "Point")); err != nil {
		t.Fatal(err)
	}

	var oids []OID
	for i := 0; i < 200; i++ {
		oid, err := m.Create("Point", []Value{Float(float64(i)), Float(0)})
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
	}
	if m.ExtensionSize("Point") != 200 {
		t.Fatalf("extension size %d", m.ExtensionSize("Point"))
	}
	o, err := m.Get(oids[13])
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := o.Attrs[0].AsFloat(); f != 13 {
		t.Fatalf("attr = %v", o.Attrs[0])
	}
	o.Attrs[1] = Float(99)
	if err := m.Put(o); err != nil {
		t.Fatal(err)
	}
	o2, _ := m.Get(oids[13])
	if f, _ := o2.Attrs[1].AsFloat(); f != 99 {
		t.Fatal("write-back lost")
	}
	// Delete removes from extension and invalidates the OID.
	if err := m.Delete(oids[13]); err != nil {
		t.Fatal(err)
	}
	if m.Exists(oids[13]) {
		t.Fatal("deleted object exists")
	}
	if _, err := m.Get(oids[13]); err == nil {
		t.Fatal("Get of deleted object succeeded")
	}
	if err := m.Delete(oids[13]); err == nil {
		t.Fatal("double delete succeeded")
	}
	if m.ExtensionSize("Point") != 199 {
		t.Fatalf("extension size after delete %d", m.ExtensionSize("Point"))
	}
	// Collections.
	setOID, err := m.CreateCollection("Points", []Value{Ref(oids[0]), Ref(oids[1])})
	if err != nil {
		t.Fatal(err)
	}
	so, _ := m.Get(setOID)
	if len(so.Elems) != 2 {
		t.Fatalf("set elems = %v", so.Elems)
	}
	// Kind mismatches.
	if _, err := m.Create("Points", nil); err == nil {
		t.Fatal("Create on set type succeeded")
	}
	if _, err := m.CreateCollection("Point", nil); err == nil {
		t.Fatal("CreateCollection on tuple type succeeded")
	}
	if _, err := m.Create("Nope", nil); err == nil {
		t.Fatal("Create of unknown type succeeded")
	}
	if _, err := m.Create("Point", []Value{Float(1)}); err == nil {
		t.Fatal("wrong attribute arity accepted")
	}
}

func TestExtensionIncludesSubtypes(t *testing.T) {
	m, reg := testManager(t)
	p := NewTupleType("Person", AttrDef{Name: "Name", Type: "string"})
	if err := reg.Register(p); err != nil {
		t.Fatal(err)
	}
	e := NewTupleType("Employee", AttrDef{Name: "Salary", Type: "float"})
	e.Super = "Person"
	if err := reg.Register(e); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("Person", []Value{String_("p")}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("Employee", []Value{String_("e"), Float(1)}); err != nil {
		t.Fatal(err)
	}
	if n := len(m.Extension("Person")); n != 2 {
		t.Fatalf("Person extension = %d, want 2 (substitutability)", n)
	}
	if n := len(m.Extension("Employee")); n != 1 {
		t.Fatalf("Employee extension = %d", n)
	}
}

func TestDepFctsSortedSetOps(t *testing.T) {
	o := &Obj{}
	for _, f := range []string{"c", "a", "b", "a"} {
		o.AddDepFct(f)
	}
	if !reflect.DeepEqual(o.DepFcts, []string{"a", "b", "c"}) {
		t.Fatalf("DepFcts = %v", o.DepFcts)
	}
	if !o.HasDepFct("b") || o.HasDepFct("d") {
		t.Fatal("HasDepFct wrong")
	}
	if !o.RemoveDepFct("b") || o.RemoveDepFct("b") {
		t.Fatal("RemoveDepFct wrong")
	}
	if !reflect.DeepEqual(o.DepFcts, []string{"a", "c"}) {
		t.Fatalf("DepFcts after remove = %v", o.DepFcts)
	}
}

func TestObjPersistsDepFcts(t *testing.T) {
	m, reg := testManager(t)
	if err := reg.Register(NewTupleType("T", AttrDef{Name: "X", Type: "float"})); err != nil {
		t.Fatal(err)
	}
	oid, err := m.Create("T", []Value{Float(1)})
	if err != nil {
		t.Fatal(err)
	}
	o, _ := m.Get(oid)
	o.AddDepFct("f1")
	o.AddDepFct("f2")
	if err := m.Put(o); err != nil {
		t.Fatal(err)
	}
	o2, _ := m.Get(oid)
	if !o2.HasDepFct("f1") || !o2.HasDepFct("f2") {
		t.Fatalf("marks not persisted: %v", o2.DepFcts)
	}
}

func TestMaterializeValue(t *testing.T) {
	m, reg := testManager(t)
	if err := reg.Register(NewTupleType("Pair",
		AttrDef{Name: "A", Type: "float"}, AttrDef{Name: "B", Type: "float"})); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(NewSetType("Pairs", "Pair")); err != nil {
		t.Fatal(err)
	}
	v := SetVal(
		TupleVal("Pair", Float(1), Float(2)),
		TupleVal("Pair", Float(3), Float(4)),
	)
	ref, err := m.MaterializeValue(v, "Pairs")
	if err != nil {
		t.Fatal(err)
	}
	if ref.Kind != KRef {
		t.Fatalf("materialized value is %v", ref.Kind)
	}
	set, err := m.Get(ref.R)
	if err != nil {
		t.Fatal(err)
	}
	if set.Type != "Pairs" || len(set.Elems) != 2 {
		t.Fatalf("set object: %+v", set)
	}
	pair, err := m.Get(set.Elems[0].R)
	if err != nil {
		t.Fatal(err)
	}
	if pair.Type != "Pair" || len(pair.Attrs) != 2 {
		t.Fatalf("pair object: %+v", pair)
	}
	// Atomic values pass through.
	av, err := m.MaterializeValue(Float(7), "float")
	if err != nil || !av.Equal(Float(7)) {
		t.Fatalf("atomic MaterializeValue = %v, %v", av, err)
	}
}

func TestManagerChargesClock(t *testing.T) {
	m, _ := testManager(t)
	reg := m.Reg
	if err := reg.Register(NewTupleType("T", AttrDef{Name: "X", Type: "float"})); err != nil {
		t.Fatal(err)
	}
	before := m.Clock.Snapshot()
	for i := 0; i < 100; i++ {
		if _, err := m.Create("T", []Value{Float(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	d := m.Clock.Sub(before)
	if d.CPUOps == 0 {
		t.Fatal("creates charged no CPU")
	}
	if d.LogWrites == 0 {
		t.Fatal("creates charged no logical writes")
	}
}

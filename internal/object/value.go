// Package object implements the GOM object model: typed values, object
// identifiers, tuple/set/list-structured objects, type descriptors with
// single inheritance, and the object manager that stores objects in paged
// heap files with stable OIDs and per-type extensions.
package object

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// OID is an object identifier. OIDs are immutable for the lifetime of an
// object (Section 2 of the paper: "the OID of an object is guaranteed to
// remain invariant throughout its lifetime"). NilOID references no object.
type OID uint64

// NilOID is the null reference.
const NilOID OID = 0

func (o OID) String() string { return "id" + strconv.FormatUint(uint64(o), 10) }

// Kind enumerates the kinds of runtime values.
type Kind uint8

// Value kinds. Tuple/Set/List values are transient (not yet objects);
// complex results of materialized functions are turned into objects by the
// object manager before being stored in a GMR.
const (
	KNull Kind = iota
	KBool
	KInt
	KFloat
	KString
	KRef
	KTuple
	KSet
	KList
)

func (k Kind) String() string {
	switch k {
	case KNull:
		return "null"
	case KBool:
		return "bool"
	case KInt:
		return "int"
	case KFloat:
		return "float"
	case KString:
		return "string"
	case KRef:
		return "ref"
	case KTuple:
		return "tuple"
	case KSet:
		return "set"
	case KList:
		return "list"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Value is a runtime value of the GOM data model.
type Value struct {
	Kind Kind
	B    bool
	I    int64
	F    float64
	S    string
	R    OID
	// Elems holds the components of transient tuple, set, and list values.
	Elems []Value
	// TupleType names the tuple type of a transient tuple value, so the
	// object manager can persist it as an instance of that type.
	TupleType string
}

// Null returns the null value.
func Null() Value { return Value{Kind: KNull} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{Kind: KBool, B: b} }

// Int returns an integer value.
func Int(i int64) Value { return Value{Kind: KInt, I: i} }

// Float returns a float value.
func Float(f float64) Value { return Value{Kind: KFloat, F: f} }

// String_ returns a string value.
func String_(s string) Value { return Value{Kind: KString, S: s} }

// Ref returns an object reference value.
func Ref(oid OID) Value { return Value{Kind: KRef, R: oid} }

// TupleVal returns a transient tuple value of the named tuple type.
func TupleVal(typeName string, fields ...Value) Value {
	return Value{Kind: KTuple, TupleType: typeName, Elems: fields}
}

// SetVal returns a transient set value.
func SetVal(elems ...Value) Value { return Value{Kind: KSet, Elems: elems} }

// ListVal returns a transient list value.
func ListVal(elems ...Value) Value { return Value{Kind: KList, Elems: elems} }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.Kind == KNull }

// AsFloat converts numeric values to float64.
func (v Value) AsFloat() (float64, bool) {
	switch v.Kind {
	case KFloat:
		return v.F, true
	case KInt:
		return float64(v.I), true
	}
	return 0, false
}

// Truth reports the boolean interpretation of v (null is false).
func (v Value) Truth() bool { return v.Kind == KBool && v.B }

// Equal reports deep value equality. Sets compare as multisets would under
// sorted canonical order; for GMR keys and predicate evaluation this is the
// identity the paper needs (object identity for refs, value equality for
// atomic values).
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		// Allow int/float cross-kind numeric equality.
		a, okA := v.AsFloat()
		b, okB := o.AsFloat()
		return okA && okB && a == b
	}
	switch v.Kind {
	case KNull:
		return true
	case KBool:
		return v.B == o.B
	case KInt:
		return v.I == o.I
	case KFloat:
		return v.F == o.F || (math.IsNaN(v.F) && math.IsNaN(o.F))
	case KString:
		return v.S == o.S
	case KRef:
		return v.R == o.R
	case KTuple, KList:
		if len(v.Elems) != len(o.Elems) || v.TupleType != o.TupleType {
			return false
		}
		for i := range v.Elems {
			if !v.Elems[i].Equal(o.Elems[i]) {
				return false
			}
		}
		return true
	case KSet:
		if len(v.Elems) != len(o.Elems) {
			return false
		}
		a := canonicalOrder(v.Elems)
		b := canonicalOrder(o.Elems)
		for i := range a {
			if !a[i].Equal(b[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// canonicalOrder returns the elements sorted by their String form, giving
// sets a deterministic comparison order.
func canonicalOrder(elems []Value) []Value {
	out := make([]Value, len(elems))
	copy(out, elems)
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Contains reports whether a set or list value contains elem.
func (v Value) Contains(elem Value) bool {
	for _, e := range v.Elems {
		if e.Equal(elem) {
			return true
		}
	}
	return false
}

func (v Value) String() string {
	switch v.Kind {
	case KNull:
		return "null"
	case KBool:
		return strconv.FormatBool(v.B)
	case KInt:
		return strconv.FormatInt(v.I, 10)
	case KFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KString:
		return strconv.Quote(v.S)
	case KRef:
		return v.R.String()
	case KTuple:
		var b strings.Builder
		b.WriteString(v.TupleType)
		b.WriteByte('[')
		for i, e := range v.Elems {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.String())
		}
		b.WriteByte(']')
		return b.String()
	case KSet:
		parts := make([]string, len(v.Elems))
		for i, e := range canonicalOrder(v.Elems) {
			parts[i] = e.String()
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case KList:
		parts := make([]string, len(v.Elems))
		for i, e := range v.Elems {
			parts[i] = e.String()
		}
		return "<" + strings.Join(parts, ", ") + ">"
	}
	return "?"
}

package object

import (
	"reflect"
	"testing"
)

func relocateFixture(t *testing.T) (*Manager, []OID) {
	t.Helper()
	m, reg := testManager(t)
	if err := reg.Register(NewTupleType("Point",
		AttrDef{Name: "X", Type: "float"}, AttrDef{Name: "Y", Type: "float"})); err != nil {
		t.Fatal(err)
	}
	var oids []OID
	for i := 0; i < 120; i++ {
		oid, err := m.Create("Point", []Value{Float(float64(i)), Float(float64(-i))})
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
	}
	return m, oids
}

func TestManagerRelocateRemapsDirectory(t *testing.T) {
	m, oids := relocateFixture(t)

	// Interleave: evens first, then odds — a placement no insertion order
	// produced, so most records must physically move.
	order := make([]OID, 0, len(oids))
	for i := 0; i < len(oids); i += 2 {
		order = append(order, oids[i])
	}
	for i := 1; i < len(oids); i += 2 {
		order = append(order, oids[i])
	}
	moved, err := m.Relocate(order)
	if err != nil {
		t.Fatalf("relocate: %v", err)
	}
	if moved == 0 {
		t.Fatal("relocation moved nothing")
	}
	for i, oid := range oids {
		o, err := m.Get(oid)
		if err != nil {
			t.Fatalf("get %v after relocate: %v", oid, err)
		}
		if f, _ := o.Attrs[0].AsFloat(); f != float64(i) {
			t.Fatalf("object %v content changed: X=%v", oid, o.Attrs[0])
		}
	}
	if msgs := m.AuditDirectory(); len(msgs) != 0 {
		t.Fatalf("directory audit after relocate: %v", msgs)
	}
	// Extension iteration order is untouched — relocation changes placement,
	// not membership order.
	if got := m.Extension("Point"); !reflect.DeepEqual(got, oids) {
		t.Fatal("relocation disturbed extension order")
	}

	// Order validation.
	if _, err := m.Relocate(order[:len(order)-1]); err == nil {
		t.Fatal("short order accepted")
	}
	bad := append([]OID(nil), order...)
	bad[0] = OID(1 << 40)
	if _, err := m.Relocate(bad); err == nil {
		t.Fatal("unknown OID accepted")
	}
}

// TestDirectoryExportRestoreAfterRelocate covers the durable-recovery shape:
// a directory exported after relocation must restore to the exact relocated
// layout (same RIDs, same extension order), byte-identically re-exportable.
func TestDirectoryExportRestoreAfterRelocate(t *testing.T) {
	m, oids := relocateFixture(t)
	order := make([]OID, len(oids))
	for i, oid := range oids {
		order[len(oids)-1-i] = oid
	}
	if _, err := m.Relocate(order); err != nil {
		t.Fatalf("relocate: %v", err)
	}
	dir := m.ExportDirectory()

	if err := m.RestoreDirectory(m.heap, dir); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if msgs := m.AuditDirectory(); len(msgs) != 0 {
		t.Fatalf("directory audit after restore: %v", msgs)
	}
	dir2 := m.ExportDirectory()
	if !reflect.DeepEqual(dir, dir2) {
		t.Fatal("directory round-trip after relocation is not identical")
	}
	for i, oid := range oids {
		o, err := m.Get(oid)
		if err != nil {
			t.Fatalf("get %v after restore: %v", oid, err)
		}
		if f, _ := o.Attrs[0].AsFloat(); f != float64(i) {
			t.Fatalf("object %v content wrong after restore", oid)
		}
	}
}

func TestAuditDirectoryDetectsCorruption(t *testing.T) {
	m, oids := relocateFixture(t)
	if msgs := m.AuditDirectory(); len(msgs) != 0 {
		t.Fatalf("clean manager audits dirty: %v", msgs)
	}
	// Point two OIDs at the same slot: both the duplicate and the count
	// mismatch (heap count vs directory size stays equal here, so the
	// duplicate check is what must fire).
	m.rids[oids[1]] = m.rids[oids[0]]
	msgs := m.AuditDirectory()
	if len(msgs) == 0 {
		t.Fatal("audit missed a duplicated slot")
	}
	// Dangling entry: directory points at a slot the heap no longer has.
	m, oids = relocateFixture(t)
	rid := m.rids[oids[5]]
	if err := m.heap.Delete(rid); err != nil {
		t.Fatal(err)
	}
	msgs = m.AuditDirectory()
	if len(msgs) == 0 {
		t.Fatal("audit missed a dangling directory entry")
	}
}

package object

import (
	"fmt"
	"sort"

	"gomdb/internal/storage"
)

// Durable directory of the object manager. The heap pages themselves are
// persisted by the storage checkpoint; what the pages do not contain is the
// mapping from OIDs to RIDs, the per-type extensions, and the allocation
// watermark. Directory captures exactly that state, in a canonical order so
// the serialized checkpoint metadata is byte-deterministic.

// DirEntry maps one OID to the RID of its record.
type DirEntry struct {
	O OID         `json:"o"`
	R storage.RID `json:"r"`
}

// ExtentDir is the persisted extension of one exact type. OID order is
// preserved verbatim: extension iteration order is observable (seeded
// benchmarks, extension scans), so a restored manager must reproduce it.
type ExtentDir struct {
	Type string `json:"type"`
	OIDs []OID  `json:"oids"`
}

// Directory is the persistent state of a Manager, minus the heap pages.
type Directory struct {
	NextOID OID             `json:"nextOID"`
	Heap    storage.HeapDir `json:"heap"`
	RIDs    []DirEntry      `json:"rids,omitempty"`
	Extents []ExtentDir     `json:"extents,omitempty"`
}

// ExportDirectory captures the manager's directory for a durable checkpoint.
// Callers must hold the exclusive Database lock.
func (m *Manager) ExportDirectory() Directory {
	dir := Directory{
		NextOID: m.nextOID,
		Heap:    m.heap.Directory(),
	}
	dir.RIDs = make([]DirEntry, 0, len(m.rids))
	for oid, rid := range m.rids {
		dir.RIDs = append(dir.RIDs, DirEntry{O: oid, R: rid})
	}
	sort.Slice(dir.RIDs, func(i, j int) bool { return dir.RIDs[i].O < dir.RIDs[j].O })
	types := make([]string, 0, len(m.extents))
	for tn := range m.extents {
		types = append(types, tn)
	}
	sort.Strings(types)
	for _, tn := range types {
		dir.Extents = append(dir.Extents, ExtentDir{
			Type: tn,
			OIDs: append([]OID(nil), m.extents[tn].order...),
		})
	}
	return dir
}

// RestoreDirectory replaces the manager's directory state with a persisted
// one. heap must be the restored heap file handle (built by the caller with
// storage.RestoreHeapFile over the recovered pages, so the facade — not this
// package — owns the buffer pool plumbing). Lazily-built layout caches are
// left alone: they are derived from the registry, not from stored state.
func (m *Manager) RestoreDirectory(heap *storage.HeapFile, dir Directory) error {
	rids := make(map[OID]storage.RID, len(dir.RIDs))
	for _, e := range dir.RIDs {
		if _, dup := rids[e.O]; dup {
			return fmt.Errorf("object: restore: duplicate OID %v in directory", e.O)
		}
		rids[e.O] = e.R
	}
	extents := make(map[string]*extent, len(dir.Extents))
	for _, ed := range dir.Extents {
		ext := &extent{pos: make(map[OID]int, len(ed.OIDs))}
		for _, oid := range ed.OIDs {
			if _, ok := rids[oid]; !ok {
				return fmt.Errorf("object: restore: extension of %q lists unknown OID %v", ed.Type, oid)
			}
			ext.add(oid)
		}
		extents[ed.Type] = ext
	}
	m.heap = heap
	m.rids = rids
	m.extents = extents
	m.nextOID = dir.NextOID
	return nil
}

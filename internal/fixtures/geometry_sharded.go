package fixtures

import (
	"fmt"
	"math/rand"

	"gomdb"
	"gomdb/internal/shard"
)

// Sharded variants of the geometry fixture. Placement policy:
//
//   - Materials and robots (with their Pos vertices) are REPLICATED — they
//     are shared reference data every cuboid's weight and distance
//     computations read, so each shard keeps a same-OID replica and reads
//     stay local.
//   - Each cuboid and its eight boundary vertices are CO-LOCATED on one
//     shard, chosen by hashing the cuboid id — the whole graph a forward
//     lookup or invalidation sweep touches lives on the owner.
//
// The creation ORDER is identical to the unsharded fixture, so with the
// router's shared OID allocator the same population yields the same OIDs —
// and the same record bytes — at every shard count.

// DefineGeometrySharded installs the geometry schema on every shard.
func DefineGeometrySharded(db *shard.DB, encapsulated bool) error {
	return db.EachShard(func(i int, sh *gomdb.Database) error {
		return DefineGeometry(sh, encapsulated)
	})
}

// ShardedGeometry is a populated sharded Cuboid database.
type ShardedGeometry struct {
	DB        *shard.DB
	Cuboids   []gomdb.OID
	ByID      map[int64]gomdb.OID
	MaterialO []gomdb.OID
	Robots    []gomdb.OID
	NextID    int64
	rng       *rand.Rand
}

// NewCuboidOn creates a Cuboid and its eight boundary vertices on shard sh,
// mirroring NewCuboid's corner order exactly.
func NewCuboidOn(db *shard.DB, sh int, id int64, ox, oy, oz, l, w, h float64, mat gomdb.OID, value float64) (gomdb.OID, error) {
	v := func(x, y, z float64) (gomdb.Value, error) {
		oid, err := db.NewOn(sh, "Vertex", gomdb.Float(x), gomdb.Float(y), gomdb.Float(z))
		return gomdb.Ref(oid), err
	}
	corners := [][3]float64{
		{ox, oy, oz},             // V1
		{ox + l, oy, oz},         // V2
		{ox + l, oy + w, oz},     // V3
		{ox, oy + w, oz},         // V4
		{ox, oy, oz + h},         // V5
		{ox + l, oy, oz + h},     // V6
		{ox + l, oy + w, oz + h}, // V7
		{ox, oy + w, oz + h},     // V8
	}
	attrs := make([]gomdb.Value, 0, 11)
	for _, c := range corners {
		ref, err := v(c[0], c[1], c[2])
		if err != nil {
			return 0, err
		}
		attrs = append(attrs, ref)
	}
	attrs = append(attrs, gomdb.Ref(mat), gomdb.Float(value), gomdb.Int(id))
	return db.NewOn(sh, "Cuboid", attrs...)
}

// PopulateGeometrySharded mirrors PopulateGeometry over the router:
// materials and robots replicate to every shard, cuboid graphs are placed
// by cuboid-id hash.
func PopulateGeometrySharded(db *shard.DB, n int, seed int64) (*ShardedGeometry, error) {
	g := &ShardedGeometry{
		DB:   db,
		ByID: make(map[int64]gomdb.OID, n),
		rng:  rand.New(rand.NewSource(seed)),
	}
	for _, m := range Materials {
		oid, err := db.NewReplicated("Material", gomdb.Str(m.Name), gomdb.Float(m.SpecWeight))
		if err != nil {
			return nil, err
		}
		g.MaterialO = append(g.MaterialO, oid)
	}
	for i := 0; i < 2; i++ {
		pos, err := db.NewReplicated("Vertex", gomdb.Float(float64(100+i*50)), gomdb.Float(0), gomdb.Float(0))
		if err != nil {
			return nil, err
		}
		oid, err := db.NewReplicated("Robot", gomdb.Str(fmt.Sprintf("R%d", i+1)), gomdb.Ref(pos))
		if err != nil {
			return nil, err
		}
		g.Robots = append(g.Robots, oid)
	}
	for i := 0; i < n; i++ {
		if _, err := g.CreateRandomCuboid(); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// CreateRandomCuboid creates one cuboid graph on the shard its id hashes to,
// drawing from the same random stream as the unsharded fixture.
func (g *ShardedGeometry) CreateRandomCuboid() (gomdb.OID, error) {
	g.NextID++
	id := g.NextID
	l := 1 + g.rng.Float64()*9
	w := 1 + g.rng.Float64()*9
	h := 1 + g.rng.Float64()*9
	mat := g.MaterialO[g.rng.Intn(len(g.MaterialO))]
	val := 10 + g.rng.Float64()*90
	sh := g.DB.ShardFor(uint64(id))
	oid, err := NewCuboidOn(g.DB, sh, id, g.rng.Float64()*100, g.rng.Float64()*100, g.rng.Float64()*100, l, w, h, mat, val)
	if err != nil {
		return 0, err
	}
	g.Cuboids = append(g.Cuboids, oid)
	g.ByID[id] = oid
	return oid, nil
}

// RandomCuboid returns a uniformly chosen live cuboid.
func (g *ShardedGeometry) RandomCuboid() gomdb.OID {
	return g.Cuboids[g.rng.Intn(len(g.Cuboids))]
}

// Rng exposes the deterministic random stream.
func (g *ShardedGeometry) Rng() *rand.Rand { return g.rng }

// Package fixtures builds the two benchmark schemas of the paper's
// Section 7 — the computer-geometry Cuboid application and the
// personnel/project administration Company application — as GOM schemas over
// the public gomdb API. Tests, benchmarks, and the gomql shell share them.
package fixtures

import (
	"fmt"
	"math/rand"

	"gomdb"
	"gomdb/internal/lang"
)

// Materials available to the generator; SpecWeight values follow the paper's
// Figure 2 (iron 7.86, gold 19.0).
var Materials = []struct {
	Name       string
	SpecWeight float64
}{
	{"Iron", 7.86},
	{"Gold", 19.0},
	{"Copper", 8.96},
	{"Aluminium", 2.70},
}

// DefineGeometry installs the Cuboid schema of Figure 1: Vertex, Material,
// Robot, Cuboid, Workpieces, Valuables with the operations length, width,
// height, volume, weight, translate, scale, rotate, distance, total_volume,
// total_weight, total_value.
//
// With encapsulated=false every structural detail of Cuboid is public (the
// paper's "full generality" variant); with encapsulated=true the Cuboid
// representation is strictly encapsulated and the InvalidatedFct sets of
// Section 5.3 are declared: scale invalidates volume and weight, translate
// and rotate invalidate nothing.
func DefineGeometry(db *gomdb.Database, encapsulated bool) error {
	vertex := gomdb.NewTupleType("Vertex",
		gomdb.PubAttr("X", "float"),
		gomdb.PubAttr("Y", "float"),
		gomdb.PubAttr("Z", "float"),
	)
	if err := db.DefineType(vertex, "translate", "scale", "rotate", "dist"); err != nil {
		return err
	}
	material := gomdb.NewTupleType("Material",
		gomdb.PubAttr("Name", "string"),
		gomdb.PubAttr("SpecWeight", "float"),
	)
	if err := db.DefineType(material); err != nil {
		return err
	}
	// Robot is "defined elsewhere" in the paper; a position suffices for
	// the distance function.
	robot := gomdb.NewTupleType("Robot",
		gomdb.PubAttr("RName", "string"),
		gomdb.PubAttr("Pos", "Vertex"),
	)
	if err := db.DefineType(robot); err != nil {
		return err
	}
	var cuboidAttrs []gomdb.AttrDef
	mk := gomdb.Attr
	if !encapsulated {
		mk = gomdb.PubAttr
	}
	for i := 1; i <= 8; i++ {
		cuboidAttrs = append(cuboidAttrs, mk(fmt.Sprintf("V%d", i), "Vertex"))
	}
	cuboidAttrs = append(cuboidAttrs,
		mk("Mat", "Material"),
		mk("Value", "decimal"),
		gomdb.PubAttr("CuboidID", "int"),
	)
	cuboid := gomdb.NewTupleType("Cuboid", cuboidAttrs...)
	cuboid.StrictEncapsulated = encapsulated
	if err := db.DefineType(cuboid,
		"length", "width", "height", "volume", "weight",
		"rotate", "scale", "translate", "distance"); err != nil {
		return err
	}
	if err := db.DefineType(gomdb.NewSetType("Workpieces", "Cuboid"),
		"total_volume", "total_weight", "insert", "remove"); err != nil {
		return err
	}
	if err := db.DefineType(gomdb.NewSetType("Valuables", "Cuboid"),
		"total_value", "insert", "remove"); err != nil {
		return err
	}

	if err := defineVertexOps(db); err != nil {
		return err
	}
	if err := defineCuboidOps(db); err != nil {
		return err
	}
	if err := defineAggregateOps(db); err != nil {
		return err
	}

	if encapsulated {
		// Section 5.3: "the only operation that affects a materialized
		// volume is the operation scale. All other operations do not
		// invalidate the precomputed volume."
		db.Schema.DeclareInvalidatedFct("Cuboid", "scale", "Cuboid.volume", "Cuboid.weight",
			"Workpieces.total_volume", "Workpieces.total_weight")
		db.Schema.DeclareInvalidatedFct("Cuboid", "translate")
		db.Schema.DeclareInvalidatedFct("Cuboid", "rotate")
		// distance depends on vertex positions, so all three geometric
		// transformations invalidate it.
		db.Schema.DeclareInvalidatedFct("Cuboid", "scale", "Cuboid.distance")
		db.Schema.DeclareInvalidatedFct("Cuboid", "translate", "Cuboid.distance")
		db.Schema.DeclareInvalidatedFct("Cuboid", "rotate", "Cuboid.distance")
	}
	return nil
}

func defineVertexOps(db *gomdb.Database) error {
	self := lang.Self()
	v := lang.V
	a := lang.A
	// dist: Vertex -> float (Euclidean distance).
	dist := &lang.Function{
		Params:         []lang.Param{lang.Prm("self", "Vertex"), lang.Prm("v", "Vertex")},
		ResultType:     "float",
		SideEffectFree: true,
		Body: []lang.Stmt{
			lang.Let("dx", lang.Sub(a(self, "X"), a(v("v"), "X"))),
			lang.Let("dy", lang.Sub(a(self, "Y"), a(v("v"), "Y"))),
			lang.Let("dz", lang.Sub(a(self, "Z"), a(v("v"), "Z"))),
			lang.Ret(lang.Sqrt(lang.Add(lang.Add(
				lang.Mul(v("dx"), v("dx")),
				lang.Mul(v("dy"), v("dy"))),
				lang.Mul(v("dz"), v("dz"))))),
		},
	}
	if err := db.DefineOp("Vertex", "dist", dist); err != nil {
		return err
	}
	translate := &lang.Function{
		Params: []lang.Param{lang.Prm("self", "Vertex"), lang.Prm("t", "Vertex")},
		Body: []lang.Stmt{
			lang.SetA(self, "X", lang.Add(a(self, "X"), a(v("t"), "X"))),
			lang.SetA(self, "Y", lang.Add(a(self, "Y"), a(v("t"), "Y"))),
			lang.SetA(self, "Z", lang.Add(a(self, "Z"), a(v("t"), "Z"))),
		},
	}
	if err := db.DefineOp("Vertex", "translate", translate); err != nil {
		return err
	}
	scale := &lang.Function{
		Params: []lang.Param{lang.Prm("self", "Vertex"), lang.Prm("s", "Vertex")},
		Body: []lang.Stmt{
			lang.SetA(self, "X", lang.Mul(a(self, "X"), a(v("s"), "X"))),
			lang.SetA(self, "Y", lang.Mul(a(self, "Y"), a(v("s"), "Y"))),
			lang.SetA(self, "Z", lang.Mul(a(self, "Z"), a(v("s"), "Z"))),
		},
	}
	if err := db.DefineOp("Vertex", "scale", scale); err != nil {
		return err
	}
	// rotate: float, char -> void. Rotation about the named axis; all three
	// coordinates are rewritten, so one Cuboid rotation performs 24
	// elementary vertex updates, 12 of which touch the vertices relevant to
	// a materialized volume — matching the paper's "12 (!) invalidations".
	rotate := &lang.Function{
		Params: []lang.Param{lang.Prm("self", "Vertex"), lang.Prm("angle", "float"), lang.Prm("axis", "string")},
		Body: []lang.Stmt{
			lang.Let("c", lang.Cos(v("angle"))),
			lang.Let("s", lang.Sin(v("angle"))),
			lang.Let("x", a(self, "X")),
			lang.Let("y", a(self, "Y")),
			lang.Let("z", a(self, "Z")),
			lang.When(lang.Eq(v("axis"), lang.S("z")),
				[]lang.Stmt{
					lang.SetA(self, "X", lang.Sub(lang.Mul(v("x"), v("c")), lang.Mul(v("y"), v("s")))),
					lang.SetA(self, "Y", lang.Add(lang.Mul(v("x"), v("s")), lang.Mul(v("y"), v("c")))),
					lang.SetA(self, "Z", v("z")),
				},
				lang.When(lang.Eq(v("axis"), lang.S("y")),
					[]lang.Stmt{
						lang.SetA(self, "X", lang.Add(lang.Mul(v("x"), v("c")), lang.Mul(v("z"), v("s")))),
						lang.SetA(self, "Y", v("y")),
						lang.SetA(self, "Z", lang.Sub(lang.Mul(v("z"), v("c")), lang.Mul(v("x"), v("s")))),
					},
					lang.SetA(self, "X", v("x")),
					lang.SetA(self, "Y", lang.Sub(lang.Mul(v("y"), v("c")), lang.Mul(v("z"), v("s")))),
					lang.SetA(self, "Z", lang.Add(lang.Mul(v("y"), v("s")), lang.Mul(v("z"), v("c")))),
				),
			),
		},
	}
	return db.DefineOp("Vertex", "rotate", rotate)
}

func defineCuboidOps(db *gomdb.Database) error {
	self := lang.Self()
	a := lang.A
	v := lang.V
	edge := func(to string) *lang.Function {
		return &lang.Function{
			Params:         []lang.Param{lang.Prm("self", "Cuboid")},
			ResultType:     "float",
			SideEffectFree: true,
			Body: []lang.Stmt{
				// delegate the computation to Vertex V1 (Figure 1).
				lang.Ret(lang.CallFn("Vertex.dist", a(self, "V1"), a(self, to))),
			},
		}
	}
	if err := db.DefineOp("Cuboid", "length", edge("V2")); err != nil {
		return err
	}
	if err := db.DefineOp("Cuboid", "width", edge("V4")); err != nil {
		return err
	}
	if err := db.DefineOp("Cuboid", "height", edge("V5")); err != nil {
		return err
	}
	volume := &lang.Function{
		Params:         []lang.Param{lang.Prm("self", "Cuboid")},
		ResultType:     "float",
		SideEffectFree: true,
		Body: []lang.Stmt{
			lang.Ret(lang.Mul(lang.Mul(
				lang.CallFn("Cuboid.length", self),
				lang.CallFn("Cuboid.width", self)),
				lang.CallFn("Cuboid.height", self))),
		},
	}
	if err := db.DefineOp("Cuboid", "volume", volume); err != nil {
		return err
	}
	weight := &lang.Function{
		Params:         []lang.Param{lang.Prm("self", "Cuboid")},
		ResultType:     "float",
		SideEffectFree: true,
		Body: []lang.Stmt{
			lang.Ret(lang.Mul(lang.CallFn("Cuboid.volume", self), a(self, "Mat", "SpecWeight"))),
		},
	}
	if err := db.DefineOp("Cuboid", "weight", weight); err != nil {
		return err
	}
	// The geometric transformations delegate to the eight boundary vertices.
	delegate := func(op string, extra ...lang.Param) *lang.Function {
		params := append([]lang.Param{lang.Prm("self", "Cuboid")}, extra...)
		var body []lang.Stmt
		for i := 1; i <= 8; i++ {
			args := []lang.Expr{a(self, fmt.Sprintf("V%d", i))}
			for _, p := range extra {
				args = append(args, v(p.Name))
			}
			body = append(body, lang.Do(lang.CallFn("Vertex."+op, args...)))
		}
		return &lang.Function{Params: params, Body: body}
	}
	if err := db.DefineOp("Cuboid", "translate", delegate("translate", lang.Prm("t", "Vertex"))); err != nil {
		return err
	}
	if err := db.DefineOp("Cuboid", "scale", delegate("scale", lang.Prm("s", "Vertex"))); err != nil {
		return err
	}
	if err := db.DefineOp("Cuboid", "rotate", delegate("rotate", lang.Prm("angle", "float"), lang.Prm("axis", "string"))); err != nil {
		return err
	}
	distance := &lang.Function{
		Params:         []lang.Param{lang.Prm("self", "Cuboid"), lang.Prm("r", "Robot")},
		ResultType:     "float",
		SideEffectFree: true,
		Body: []lang.Stmt{
			lang.Ret(lang.CallFn("Vertex.dist", a(self, "V1"), a(v("r"), "Pos"))),
		},
	}
	return db.DefineOp("Cuboid", "distance", distance)
}

func defineAggregateOps(db *gomdb.Database) error {
	self := lang.Self()
	sumOf := func(recvType string, elemExpr func(lang.Expr) lang.Expr) *lang.Function {
		return &lang.Function{
			Params:         []lang.Param{lang.Prm("self", recvType)},
			ResultType:     "float",
			SideEffectFree: true,
			Body: []lang.Stmt{
				lang.Let("s", lang.F(0)),
				lang.Each("c", self,
					lang.Let("s", lang.Add(lang.V("s"), elemExpr(lang.V("c"))))),
				lang.Ret(lang.V("s")),
			},
		}
	}
	if err := db.DefineOp("Workpieces", "total_volume",
		sumOf("Workpieces", func(c lang.Expr) lang.Expr { return lang.CallFn("Cuboid.volume", c) })); err != nil {
		return err
	}
	if err := db.DefineOp("Workpieces", "total_weight",
		sumOf("Workpieces", func(c lang.Expr) lang.Expr { return lang.CallFn("Cuboid.weight", c) })); err != nil {
		return err
	}
	return db.DefineOp("Valuables", "total_value",
		sumOf("Valuables", func(c lang.Expr) lang.Expr { return lang.A(c, "Value") }))
}

// NewVertex creates a Vertex instance.
func NewVertex(db *gomdb.Database, x, y, z float64) gomdb.OID {
	return db.MustNew("Vertex", gomdb.Float(x), gomdb.Float(y), gomdb.Float(z))
}

// NewCuboid creates a Cuboid at origin (ox, oy, oz) with extents (l, w, h),
// its eight boundary vertices, the given material and value, and a
// user-supplied CuboidID. Vertex layout follows the standard corner order:
// V2 = V1 + length·x̂, V4 = V1 + width·ŷ, V5 = V1 + height·ẑ.
func NewCuboid(db *gomdb.Database, id int64, ox, oy, oz, l, w, h float64, mat gomdb.OID, value float64) gomdb.OID {
	v := func(x, y, z float64) gomdb.Value {
		return gomdb.Ref(NewVertex(db, x, y, z))
	}
	attrs := []gomdb.Value{
		v(ox, oy, oz),       // V1
		v(ox+l, oy, oz),     // V2
		v(ox+l, oy+w, oz),   // V3
		v(ox, oy+w, oz),     // V4
		v(ox, oy, oz+h),     // V5
		v(ox+l, oy, oz+h),   // V6
		v(ox+l, oy+w, oz+h), // V7
		v(ox, oy+w, oz+h),   // V8
		gomdb.Ref(mat),      // Mat
		gomdb.Float(value),  // Value
		gomdb.Int(id),       // CuboidID
	}
	return db.MustNew("Cuboid", attrs...)
}

// Geometry is a populated Cuboid database.
type Geometry struct {
	DB        *gomdb.Database
	Cuboids   []gomdb.OID
	ByID      map[int64]gomdb.OID // the CuboidID index of the paper's footnote 8
	MaterialO []gomdb.OID
	Robots    []gomdb.OID
	NextID    int64
	rng       *rand.Rand
}

// PopulateGeometry creates n Cuboid instances (each with 8 vertices and a
// material reference, as in the paper's 8000-cuboid database), two robots,
// and the material catalogue.
func PopulateGeometry(db *gomdb.Database, n int, seed int64) (*Geometry, error) {
	g := &Geometry{
		DB:   db,
		ByID: make(map[int64]gomdb.OID, n),
		rng:  rand.New(rand.NewSource(seed)),
	}
	for _, m := range Materials {
		oid, err := db.New("Material", gomdb.Str(m.Name), gomdb.Float(m.SpecWeight))
		if err != nil {
			return nil, err
		}
		g.MaterialO = append(g.MaterialO, oid)
	}
	for i := 0; i < 2; i++ {
		pos := NewVertex(db, float64(100+i*50), 0, 0)
		oid, err := db.New("Robot", gomdb.Str(fmt.Sprintf("R%d", i+1)), gomdb.Ref(pos))
		if err != nil {
			return nil, err
		}
		g.Robots = append(g.Robots, oid)
	}
	for i := 0; i < n; i++ {
		g.CreateRandomCuboid()
	}
	return g, nil
}

// CreateRandomCuboid creates one Cuboid of randomly chosen dimensions (the
// benchmark's I operation) and registers it in the CuboidID index.
func (g *Geometry) CreateRandomCuboid() gomdb.OID {
	g.NextID++
	id := g.NextID
	l := 1 + g.rng.Float64()*9
	w := 1 + g.rng.Float64()*9
	h := 1 + g.rng.Float64()*9
	mat := g.MaterialO[g.rng.Intn(len(g.MaterialO))]
	val := 10 + g.rng.Float64()*90
	oid := NewCuboid(g.DB, id, g.rng.Float64()*100, g.rng.Float64()*100, g.rng.Float64()*100, l, w, h, mat, val)
	g.Cuboids = append(g.Cuboids, oid)
	g.ByID[id] = oid
	return oid
}

// RandomCuboid returns a uniformly chosen live cuboid.
func (g *Geometry) RandomCuboid() gomdb.OID {
	return g.Cuboids[g.rng.Intn(len(g.Cuboids))]
}

// DeleteRandomCuboid removes a random cuboid (the D operation).
func (g *Geometry) DeleteRandomCuboid() error {
	if len(g.Cuboids) == 0 {
		return nil
	}
	i := g.rng.Intn(len(g.Cuboids))
	oid := g.Cuboids[i]
	g.Cuboids[i] = g.Cuboids[len(g.Cuboids)-1]
	g.Cuboids = g.Cuboids[:len(g.Cuboids)-1]
	o, err := g.DB.Objects.Get(oid)
	if err != nil {
		return err
	}
	idIdx := g.DB.Objects.AttrIndex("Cuboid", "CuboidID")
	delete(g.ByID, o.Attrs[idIdx].I)
	return g.DB.Delete(oid)
}

// Rng exposes the generator's random stream so operation mixes draw from the
// same deterministic sequence.
func (g *Geometry) Rng() *rand.Rand { return g.rng }

// ExampleGeometry builds the exact three-cuboid database of the paper's
// Figure 2 / Section 3.1 example: two iron cuboids with volumes 300 and 200
// (weights 2358 and 1572) and one gold cuboid with volume 100 (weight 1900).
func ExampleGeometry(db *gomdb.Database) (*Geometry, error) {
	g := &Geometry{DB: db, ByID: make(map[int64]gomdb.OID), rng: rand.New(rand.NewSource(1))}
	iron, err := db.New("Material", gomdb.Str("Iron"), gomdb.Float(7.86))
	if err != nil {
		return nil, err
	}
	gold, err := db.New("Material", gomdb.Str("Gold"), gomdb.Float(19.0))
	if err != nil {
		return nil, err
	}
	g.MaterialO = []gomdb.OID{iron, gold}
	dims := []struct {
		l, w, h float64
		mat     gomdb.OID
		value   float64
	}{
		{10, 6, 5, iron, 39.99}, // volume 300, weight 2358
		{10, 5, 4, iron, 19.95}, // volume 200, weight 1572
		{5, 5, 4, gold, 89.90},  // volume 100, weight 1900
	}
	for i, d := range dims {
		g.NextID = int64(i + 1)
		oid := NewCuboid(db, g.NextID, 0, 0, 0, d.l, d.w, d.h, d.mat, d.value)
		g.Cuboids = append(g.Cuboids, oid)
		g.ByID[g.NextID] = oid
	}
	return g, nil
}

package fixtures

import (
	"fmt"
	"math/rand"

	"gomdb"
	"gomdb/internal/lang"
)

// DefineCompany installs the Section 7.2 schema: the matrix organization of
// a company with departments, projects, employees, and job histories.
//
//	Company   [CName, Deps: Departments, Projs: Projects]
//	Department[DName, DepNo, Emps: Employees]
//	Project   [PName, PStatus, Size, Programmers: Employees]
//	Person    [Name]
//	Employee  <: Person [EmpNo, Salary, JobHistory: Jobs]
//	Job       [Proj: Project, Lines: int, OnTime: bool, Good: bool]
//	MatrixLine[Dep, Proj, Emps] and MatrixSet {MatrixLine}
//
// Functions: Job.assessment, Employee.ranking (materialized in Figures
// 13/14), Company.matrix (materialized in Figure 15), and the compensating
// action Company.comp_add_project for the insertion of a new project.
//
// Company is strictly encapsulated with the public updating operation
// add_project, so the Figure 15 compensating action can attach to an
// argument-type operation as Definition 5.4 requires.
func DefineCompany(db *gomdb.Database) error {
	if err := db.DefineType(gomdb.NewTupleType("Person",
		gomdb.PubAttr("Name", "string"))); err != nil {
		return err
	}
	if err := db.DefineType(gomdb.NewTupleType("Project",
		gomdb.PubAttr("PName", "string"),
		gomdb.PubAttr("PStatus", "float"), // -1000 .. 1000
		gomdb.PubAttr("Size", "int"),      // lines of code
		gomdb.PubAttr("Programmers", "Employees"),
	)); err != nil {
		return err
	}
	emp := gomdb.NewTupleType("Employee",
		gomdb.PubAttr("EmpNo", "int"),
		gomdb.PubAttr("Salary", "float"),
		gomdb.PubAttr("JobHistory", "Jobs"),
	)
	emp.Super = "Person"
	if err := db.DefineType(emp, "ranking"); err != nil {
		return err
	}
	if err := db.DefineType(gomdb.NewTupleType("Job",
		gomdb.PubAttr("Proj", "Project"),
		gomdb.PubAttr("Lines", "int"),
		gomdb.PubAttr("OnTime", "bool"),
		gomdb.PubAttr("Good", "bool"),
	), "assessment"); err != nil {
		return err
	}
	if err := db.DefineType(gomdb.NewTupleType("Department",
		gomdb.PubAttr("DName", "string"),
		gomdb.PubAttr("DepNo", "int"),
		gomdb.PubAttr("Emps", "Employees"),
	)); err != nil {
		return err
	}
	if err := db.DefineType(gomdb.NewSetType("Employees", "Employee"), "insert", "remove"); err != nil {
		return err
	}
	if err := db.DefineType(gomdb.NewSetType("Jobs", "Job"), "insert", "remove"); err != nil {
		return err
	}
	if err := db.DefineType(gomdb.NewSetType("Departments", "Department"), "insert", "remove"); err != nil {
		return err
	}
	if err := db.DefineType(gomdb.NewSetType("Projects", "Project"), "insert", "remove"); err != nil {
		return err
	}
	company := gomdb.NewTupleType("Company",
		gomdb.Attr("CName", "string"),
		gomdb.Attr("Deps", "Departments"),
		gomdb.Attr("Projs", "Projects"),
	)
	company.StrictEncapsulated = true
	if err := db.DefineType(company, "matrix", "add_project", "add_department",
		"staff_project", "unstaff_project"); err != nil {
		return err
	}
	if err := db.DefineType(gomdb.NewTupleType("MatrixLine",
		gomdb.PubAttr("Dep", "Department"),
		gomdb.PubAttr("Proj", "Project"),
		gomdb.PubAttr("Emps", "Employees"),
	)); err != nil {
		return err
	}
	if err := db.DefineType(gomdb.NewSetType("MatrixSet", "MatrixLine")); err != nil {
		return err
	}

	self := lang.Self()
	a := lang.A
	v := lang.V

	// assessment: the attributes of a Job yield an assessment value.
	assessment := &lang.Function{
		Params:         []lang.Param{lang.Prm("self", "Job")},
		ResultType:     "float",
		SideEffectFree: true,
		Body: []lang.Stmt{
			lang.Let("base", lang.F(0)),
			lang.When(a(self, "Good"),
				[]lang.Stmt{lang.Let("base", lang.Add(v("base"), lang.F(500)))}),
			lang.When(a(self, "OnTime"),
				[]lang.Stmt{lang.Let("base", lang.Add(v("base"), lang.F(250)))}),
			// Productivity: share of the project written by this employee,
			// scaled; plus a bonus or malus from the project status.
			lang.Let("prod", lang.Div(lang.Mul(a(self, "Lines"), lang.F(250)), a(self, "Proj", "Size"))),
			lang.Ret(lang.Add(lang.Add(v("base"), v("prod")), lang.Div(a(self, "Proj", "PStatus"), lang.F(4)))),
		},
	}
	if err := db.DefineOp("Job", "assessment", assessment); err != nil {
		return err
	}

	// ranking: the average of the assessment values of all jobs in the
	// employee's job history.
	ranking := &lang.Function{
		Params:         []lang.Param{lang.Prm("self", "Employee")},
		ResultType:     "float",
		SideEffectFree: true,
		Body: []lang.Stmt{
			lang.Let("s", lang.F(0)),
			lang.Let("n", lang.F(0)),
			lang.Each("j", a(self, "JobHistory"),
				lang.Let("s", lang.Add(v("s"), lang.CallFn("Job.assessment", v("j")))),
				lang.Let("n", lang.Add(v("n"), lang.F(1)))),
			lang.When(lang.Eq(v("n"), lang.F(0)), []lang.Stmt{lang.Ret(lang.F(0))}),
			lang.Ret(lang.Div(v("s"), v("n"))),
		},
	}
	if err := db.DefineOp("Employee", "ranking", ranking); err != nil {
		return err
	}

	// matrix: the department-project matrix — a set of MatrixLine tuples
	// [Dep, Proj, Emps] with Emps != {} (Section 7.2).
	matrix := &lang.Function{
		Params:         []lang.Param{lang.Prm("self", "Company")},
		ResultType:     "MatrixSet",
		SideEffectFree: true,
		Body: []lang.Stmt{
			lang.Let("lines", lang.EmptySet()),
			lang.Each("d", a(self, "Deps"),
				lang.Each("p", a(self, "Projs"),
					lang.Let("emps", lang.EmptySet()),
					lang.Each("e", a(v("d"), "Emps"),
						lang.When(lang.In(v("e"), a(v("p"), "Programmers")),
							[]lang.Stmt{lang.Let("emps", lang.Union(v("emps"), v("e")))})),
					lang.When(lang.Gt(lang.Count(v("emps")), lang.I(0)),
						[]lang.Stmt{lang.Let("lines", lang.Union(v("lines"),
							lang.Tup("MatrixLine", v("d"), v("p"), v("emps"))))}))),
			lang.Ret(v("lines")),
		},
	}
	if err := db.DefineOp("Company", "matrix", matrix); err != nil {
		return err
	}

	// add_project: the public updating operation through which projects
	// enter the company (strict encapsulation means Projs is not reachable
	// from outside).
	addProject := &lang.Function{
		Params: []lang.Param{lang.Prm("self", "Company"), lang.Prm("p", "Project")},
		Body: []lang.Stmt{
			lang.InsertInto(a(self, "Projs"), v("p")),
		},
	}
	if err := db.DefineOp("Company", "add_project", addProject); err != nil {
		return err
	}
	addDepartment := &lang.Function{
		Params: []lang.Param{lang.Prm("self", "Company"), lang.Prm("d", "Department")},
		Body: []lang.Stmt{
			lang.InsertInto(a(self, "Deps"), v("d")),
		},
	}
	if err := db.DefineOp("Company", "add_department", addDepartment); err != nil {
		return err
	}
	// staff_project / unstaff_project: strict encapsulation means project
	// staffing, which the matrix depends on, is changed through the
	// company's interface, never by direct updates to a Programmers set.
	staff := &lang.Function{
		Params: []lang.Param{lang.Prm("self", "Company"), lang.Prm("p", "Project"), lang.Prm("e", "Employee")},
		Body: []lang.Stmt{
			lang.InsertInto(a(v("p"), "Programmers"), v("e")),
		},
	}
	if err := db.DefineOp("Company", "staff_project", staff); err != nil {
		return err
	}
	unstaff := &lang.Function{
		Params: []lang.Param{lang.Prm("self", "Company"), lang.Prm("p", "Project"), lang.Prm("e", "Employee")},
		Body: []lang.Stmt{
			lang.RemoveFrom(a(v("p"), "Programmers"), v("e")),
		},
	}
	if err := db.DefineOp("Company", "unstaff_project", unstaff); err != nil {
		return err
	}
	// The implementor's analysis: adding a project or department or
	// changing a project's staffing changes the matrix.
	db.Schema.DeclareInvalidatedFct("Company", "add_project", "Company.matrix")
	db.Schema.DeclareInvalidatedFct("Company", "add_department", "Company.matrix")
	db.Schema.DeclareInvalidatedFct("Company", "staff_project", "Company.matrix")
	db.Schema.DeclareInvalidatedFct("Company", "unstaff_project", "Company.matrix")

	// comp_add_project: the Figure 15 compensating action. Instead of
	// recomputing the whole matrix it extends the old result with the lines
	// of the newly inserted project:
	//   new := old ∪ { [d, p, emps(d,p)] | d ∈ self.Deps, emps(d,p) != {} }.
	// Note it runs before the insertion (Section 5.4), so self.Projs does
	// not yet contain p.
	compAddProject := &lang.Function{
		Name:           "Company.comp_add_project",
		Params:         []lang.Param{lang.Prm("self", "Company"), lang.Prm("p", "Project"), lang.Prm("old", "MatrixSet")},
		ResultType:     "MatrixSet",
		SideEffectFree: true,
		Body: []lang.Stmt{
			lang.Let("lines", lang.EmptySet()),
			lang.Each("l", v("old"), lang.Let("lines", lang.Union(v("lines"), v("l")))),
			lang.Each("d", a(self, "Deps"),
				lang.Let("emps", lang.EmptySet()),
				lang.Each("e", a(v("d"), "Emps"),
					lang.When(lang.In(v("e"), a(v("p"), "Programmers")),
						[]lang.Stmt{lang.Let("emps", lang.Union(v("emps"), v("e")))})),
				lang.When(lang.Gt(lang.Count(v("emps")), lang.I(0)),
					[]lang.Stmt{lang.Let("lines", lang.Union(v("lines"),
						lang.Tup("MatrixLine", v("d"), v("p"), v("emps"))))})),
			lang.Ret(v("lines")),
		},
	}
	return db.DefineOp("Company", "comp_add_project", compAddProject)
}

// Company is a populated company database.
type Company struct {
	DB          *gomdb.Database
	Comp        gomdb.OID
	Departments []gomdb.OID
	Employees   []gomdb.OID
	ByEmpNo     map[int64]gomdb.OID
	Projects    []gomdb.OID
	nextEmpNo   int64
	nextProjNo  int64
	rng         *rand.Rand
}

// CompanyConfig sizes the generated database. The paper's Figure 13/14
// configuration is 20 departments x 100 employees, 1000 projects, 10 jobs
// per employee; the Figure 15 (matrix) configuration is 5 departments x 10
// employees, 100 projects, 5 programmers per project.
type CompanyConfig struct {
	Departments  int
	EmpsPerDep   int
	Projects     int
	JobsPerEmp   int
	ProgsPerProj int
	Seed         int64
}

// Figure13Config returns the ranking benchmark sizing.
func Figure13Config() CompanyConfig {
	return CompanyConfig{Departments: 20, EmpsPerDep: 100, Projects: 1000, JobsPerEmp: 10, ProgsPerProj: 20, Seed: 7}
}

// Figure15Config returns the matrix benchmark sizing.
func Figure15Config() CompanyConfig {
	return CompanyConfig{Departments: 5, EmpsPerDep: 10, Projects: 100, JobsPerEmp: 10, ProgsPerProj: 5, Seed: 7}
}

// PopulateCompany creates one Company instance per cfg.
func PopulateCompany(db *gomdb.Database, cfg CompanyConfig) (*Company, error) {
	c := &Company{
		DB:      db,
		ByEmpNo: make(map[int64]gomdb.OID),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	// Projects first (jobs reference them).
	for i := 0; i < cfg.Projects; i++ {
		if _, err := c.newProject(nil); err != nil {
			return nil, err
		}
	}
	// Departments with employees; each employee gets a job history and is
	// registered as programmer of the referenced projects.
	var depRefs []gomdb.Value
	for d := 0; d < cfg.Departments; d++ {
		var empRefs []gomdb.Value
		for e := 0; e < cfg.EmpsPerDep; e++ {
			oid, err := c.newEmployee(cfg.JobsPerEmp)
			if err != nil {
				return nil, err
			}
			empRefs = append(empRefs, gomdb.Ref(oid))
		}
		empsSet, err := db.NewSet("Employees", empRefs...)
		if err != nil {
			return nil, err
		}
		dep, err := db.New("Department",
			gomdb.Str(fmt.Sprintf("D%03d", d+1)),
			gomdb.Int(int64(d+1)),
			gomdb.Ref(empsSet))
		if err != nil {
			return nil, err
		}
		c.Departments = append(c.Departments, dep)
		depRefs = append(depRefs, gomdb.Ref(dep))
	}
	depsSet, err := db.NewSet("Departments", depRefs...)
	if err != nil {
		return nil, err
	}
	projRefs := make([]gomdb.Value, len(c.Projects))
	for i, p := range c.Projects {
		projRefs[i] = gomdb.Ref(p)
	}
	projsSet, err := db.NewSet("Projects", projRefs...)
	if err != nil {
		return nil, err
	}
	c.Comp, err = db.New("Company", gomdb.Str("ACME"), gomdb.Ref(depsSet), gomdb.Ref(projsSet))
	if err != nil {
		return nil, err
	}
	// Assign programmers to projects from the employee population.
	if len(c.Employees) > 0 {
		for _, p := range c.Projects {
			po, err := db.Objects.Get(p)
			if err != nil {
				return nil, err
			}
			progSet := po.Attrs[db.Objects.AttrIndex("Project", "Programmers")].R
			n := cfg.ProgsPerProj
			for k := 0; k < n; k++ {
				e := c.Employees[c.rng.Intn(len(c.Employees))]
				if err := db.Insert(progSet, gomdb.Ref(e)); err != nil {
					return nil, err
				}
			}
		}
	}
	return c, nil
}

// newProject creates a Project with random status and size; programmers may
// be supplied or assigned later.
func (c *Company) newProject(programmers []gomdb.Value) (gomdb.OID, error) {
	c.nextProjNo++
	progSet, err := c.DB.NewSet("Employees", programmers...)
	if err != nil {
		return 0, err
	}
	oid, err := c.DB.New("Project",
		gomdb.Str(fmt.Sprintf("P%04d", c.nextProjNo)),
		gomdb.Float(float64(c.rng.Intn(2001)-1000)),
		gomdb.Int(int64(1000+c.rng.Intn(99000))),
		gomdb.Ref(progSet))
	if err != nil {
		return 0, err
	}
	c.Projects = append(c.Projects, oid)
	return oid, nil
}

// NewProjectWithProgrammers creates a project staffed with n random existing
// employees (the Figure 15 N operation creates the project; the harness then
// calls Company.add_project).
func (c *Company) NewProjectWithProgrammers(n int) (gomdb.OID, error) {
	var progs []gomdb.Value
	for i := 0; i < n && len(c.Employees) > 0; i++ {
		progs = append(progs, gomdb.Ref(c.Employees[c.rng.Intn(len(c.Employees))]))
	}
	return c.newProject(progs)
}

// newEmployee creates an Employee with a job history of jobs random jobs.
func (c *Company) newEmployee(jobs int) (gomdb.OID, error) {
	c.nextEmpNo++
	var jobRefs []gomdb.Value
	for j := 0; j < jobs && len(c.Projects) > 0; j++ {
		proj := c.Projects[c.rng.Intn(len(c.Projects))]
		job, err := c.DB.New("Job",
			gomdb.Ref(proj),
			gomdb.Int(int64(100+c.rng.Intn(9900))),
			gomdb.Bool(c.rng.Intn(2) == 0),
			gomdb.Bool(c.rng.Intn(2) == 0))
		if err != nil {
			return 0, err
		}
		jobRefs = append(jobRefs, gomdb.Ref(job))
	}
	hist, err := c.DB.NewSet("Jobs", jobRefs...)
	if err != nil {
		return 0, err
	}
	oid, err := c.DB.New("Employee",
		gomdb.Str(fmt.Sprintf("E%05d", c.nextEmpNo)), // inherited Person.Name
		gomdb.Int(c.nextEmpNo),
		gomdb.Float(30000+float64(c.rng.Intn(70000))),
		gomdb.Ref(hist))
	if err != nil {
		return 0, err
	}
	c.Employees = append(c.Employees, oid)
	c.ByEmpNo[c.nextEmpNo] = oid
	return oid, nil
}

// HireEmployee creates a new employee (the Figure 13/14 N operation).
func (c *Company) HireEmployee(jobs int) (gomdb.OID, error) {
	return c.newEmployee(jobs)
}

// Promote flips the Good flag on one random job of a random employee — the
// P (promotion/degradation) update of Figures 13/14, affecting the
// employee's ranking.
func (c *Company) Promote() error {
	if len(c.Employees) == 0 {
		return nil
	}
	e := c.Employees[c.rng.Intn(len(c.Employees))]
	eo, err := c.DB.Objects.Get(e)
	if err != nil {
		return err
	}
	hist := eo.Attrs[c.DB.Objects.AttrIndex("Employee", "JobHistory")].R
	ho, err := c.DB.Objects.Get(hist)
	if err != nil {
		return err
	}
	if len(ho.Elems) == 0 {
		return nil
	}
	job := ho.Elems[c.rng.Intn(len(ho.Elems))].R
	jo, err := c.DB.Objects.Get(job)
	if err != nil {
		return err
	}
	good := jo.Attrs[c.DB.Objects.AttrIndex("Job", "Good")]
	return c.DB.Set(job, "Good", gomdb.Bool(!good.B))
}

// RandomEmployee returns a uniformly chosen employee OID.
func (c *Company) RandomEmployee() gomdb.OID {
	return c.Employees[c.rng.Intn(len(c.Employees))]
}

// RandomDepNo returns a uniformly chosen department number.
func (c *Company) RandomDepNo() int64 {
	return int64(1 + c.rng.Intn(len(c.Departments)))
}

// Rng exposes the deterministic random stream.
func (c *Company) Rng() *rand.Rand { return c.rng }

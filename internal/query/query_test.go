package query_test

// GOMql tests over the paper's Cuboid example: parsing, the backward-query
// plan, forward exploitation, aggregates, the materialize statement, and
// restricted-GMR applicability (Section 6).

import (
	"strings"
	"testing"

	"gomdb"
	"gomdb/internal/fixtures"
	"gomdb/internal/query"
)

func geomDB(t *testing.T, n int) (*gomdb.Database, *fixtures.Geometry) {
	t.Helper()
	db := gomdb.Open(gomdb.DefaultConfig())
	if err := fixtures.DefineGeometry(db, false); err != nil {
		t.Fatal(err)
	}
	g, err := fixtures.PopulateGeometry(db, n, 11)
	if err != nil {
		t.Fatal(err)
	}
	return db, g
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"retrieve c",
		"range c Cuboid retrieve c",
		"range c: Cuboid",
		"range c: Cuboid retrieve c where",
		"range c: Cuboid retrieve c where c.volume >",
		"range c: Cuboid retrieve c extra",
		"range c: Cuboid retrieve c where c.volume ! 3",
		`range c: Cuboid retrieve c where c.Mat.Name = "unterminated`,
	}
	for _, src := range bad {
		if _, err := query.Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseShapes(t *testing.T) {
	q, err := query.Parse(`range c: Cuboid retrieve c.volume, sum(c.weight) where c.volume > 20.0 and not (c.Value < 5 or c.CuboidID = $id)`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Ranges) != 1 || q.Ranges[0].Var != "c" || q.Ranges[0].Type != "Cuboid" {
		t.Fatalf("ranges: %+v", q.Ranges)
	}
	if len(q.Targets) != 2 || q.Targets[1].Agg != "sum" {
		t.Fatalf("targets: %+v", q.Targets)
	}
	if q.Where == nil {
		t.Fatalf("where missing")
	}
}

// TestBackwardQueryPlan materializes volume and checks that the paper's
// backward query uses the GMR index and returns the same rows as a scan.
func TestBackwardQueryPlan(t *testing.T) {
	db, _ := geomDB(t, 60)
	// Scan answer before materialization.
	scan, err := db.Query(`range c: Cuboid retrieve c where c.volume > 200.0 and c.weight > 1000.0`, nil)
	if err != nil {
		t.Fatalf("scan query: %v", err)
	}
	if _, err := db.Query(`range c: Cuboid materialize c.volume, c.weight`, nil); err != nil {
		t.Fatalf("materialize: %v", err)
	}
	var plans []string
	db.Queries.Explain = func(s string) { plans = append(plans, s) }
	idx, err := db.Query(`range c: Cuboid retrieve c where c.volume > 200.0 and c.weight > 1000.0`, nil)
	if err != nil {
		t.Fatalf("indexed query: %v", err)
	}
	if len(plans) == 0 || !strings.Contains(plans[0], "backward GMR index") {
		t.Fatalf("expected backward plan, got %v", plans)
	}
	if len(scan.Rows) != len(idx.Rows) {
		t.Fatalf("scan found %d rows, index %d", len(scan.Rows), len(idx.Rows))
	}
	seen := map[gomdb.OID]bool{}
	for _, r := range scan.Rows {
		seen[r[0].R] = true
	}
	for _, r := range idx.Rows {
		if !seen[r[0].R] {
			t.Fatalf("index plan returned extra row %v", r[0])
		}
	}
	if len(scan.Rows) == 0 {
		t.Fatalf("test vacuous: no rows matched; adjust selectivity")
	}
}

// TestAggregateForward runs the forward aggregate of Section 3
// (retrieve sum(c.weight)).
func TestAggregateForward(t *testing.T) {
	db, _ := geomDB(t, 25)
	base, err := db.Query(`range c: Cuboid retrieve sum(c.weight)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`range c: Cuboid materialize c.weight`, nil); err != nil {
		t.Fatal(err)
	}
	mat, err := db.Query(`range c: Cuboid retrieve sum(c.weight)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := base.Rows[0][0].AsFloat()
	m, _ := mat.Rows[0][0].AsFloat()
	if d := b - m; d > 1e-6 || d < -1e-6 {
		t.Fatalf("sum differs: scan %g vs materialized %g", b, m)
	}
	if db.GMRs.Stats.ForwardHits == 0 {
		t.Fatalf("aggregate did not exploit the GMR: %+v", db.GMRs.Stats)
	}
}

// TestParameters binds $id in a forward query.
func TestParameters(t *testing.T) {
	db, g := geomDB(t, 10)
	res, err := db.Query(`range c: Cuboid retrieve c.volume where c.CuboidID = $id`,
		map[string]gomdb.Value{"id": gomdb.Int(3)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(res.Rows))
	}
	fn, _ := db.Schema.LookupFunction("Cuboid.volume")
	want, err := db.Engine.EvalRaw(fn, []gomdb.Value{gomdb.Ref(g.ByID[3])})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0][0].Equal(want) {
		t.Fatalf("volume = %v, want %v", res.Rows[0][0], want)
	}
}

// TestRestrictedApplicability reproduces the Section 6 scenario: volume and
// weight materialized only for iron cuboids. A backward query whose
// selection implies the restriction uses the GMR; one that does not falls
// back to a scan — and both return correct answers.
func TestRestrictedApplicability(t *testing.T) {
	db, _ := geomDB(t, 60)
	if _, err := db.Query(`range c: Cuboid materialize c.volume, c.weight where c.Mat.Name = "Iron"`, nil); err != nil {
		t.Fatalf("restricted materialize: %v", err)
	}
	g, ok := db.GMRs.Get(db.GMRs.GMRs()[0])
	if !ok || g.Restriction == nil {
		t.Fatalf("restricted GMR missing")
	}
	// Count iron cuboids by brute force.
	iron, err := db.Query(`range c: Cuboid retrieve c where c.Mat.Name = "Iron"`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != len(iron.Rows) {
		t.Fatalf("restricted GMR has %d entries, %d iron cuboids exist", g.Len(), len(iron.Rows))
	}

	var plans []string
	db.Queries.Explain = func(s string) { plans = append(plans, s) }

	// σ′ implies p: applicable.
	covered, err := db.Query(`range c: Cuboid retrieve c where c.volume > 100.0 and c.Mat.Name = "Iron"`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 || !strings.Contains(plans[len(plans)-1], "backward GMR index") {
		t.Fatalf("covered query did not use GMR: %v", plans)
	}

	// σ′ does not imply p: must fall back.
	plans = nil
	uncovered, err := db.Query(`range c: Cuboid retrieve c where c.volume > 100.0`, nil)
	if err != nil {
		t.Fatal(err)
	}
	usedIndex := false
	for _, p := range plans {
		if strings.Contains(p, "backward GMR index") {
			usedIndex = true
		}
	}
	if usedIndex {
		t.Fatalf("uncovered query used restricted GMR: %v", plans)
	}
	// Cross-check: covered ⊆ uncovered and covered = brute-force both-conds.
	brute := 0
	all := map[gomdb.OID]bool{}
	for _, r := range uncovered.Rows {
		all[r[0].R] = true
	}
	for _, r := range iron.Rows {
		v, err := db.Call("Cuboid.volume", r[0])
		if err != nil {
			t.Fatal(err)
		}
		if f, _ := v.AsFloat(); f > 100.0 {
			brute++
			if !all[r[0].R] {
				t.Fatalf("iron cuboid %v missing from uncovered result", r[0])
			}
		}
	}
	if len(covered.Rows) != brute {
		t.Fatalf("covered query returned %d rows, brute force %d", len(covered.Rows), brute)
	}
}

// TestMaterializeStmtErrors covers the statement's validation branches.
func TestMaterializeStmtErrors(t *testing.T) {
	db, _ := geomDB(t, 5)
	bad := []string{
		`range c: Cuboid materialize sum(c.volume)`, // aggregate target
		`range c: Cuboid materialize c.nope`,        // unknown function
		`range c: Cuboid materialize c.Mat.Name`,    // multi-segment target
		`range c: Cuboid materialize c.translate`,   // updating operation
	}
	for _, src := range bad {
		if _, err := db.Query(src, nil); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
	// Restriction with a parameter snapshot.
	if _, err := db.Query(`range c: Cuboid materialize c.volume where c.Value > $v`,
		map[string]gomdb.Value{"v": gomdb.Float(50)}); err != nil {
		t.Fatalf("parameterized restriction: %v", err)
	}
	g, ok := db.GMRs.GMRFor("Cuboid.volume")
	if !ok || g.Restriction == nil {
		t.Fatal("restricted GMR missing")
	}
	// Unbound parameter in the restriction fails cleanly.
	if _, err := db.Query(`range c: Cuboid materialize c.weight where c.Value > $missing`, nil); err == nil {
		t.Fatal("unbound restriction parameter accepted")
	}
}

// TestRestrictionWithOperationStep: restriction predicates may call unary
// operations in path notation (c.volume > 100).
func TestRestrictionWithOperationStep(t *testing.T) {
	db, _ := geomDB(t, 20)
	res, err := db.Query(`range c: Cuboid materialize c.weight where c.volume > 100.0`, nil)
	if err != nil {
		t.Fatalf("operation-step restriction: %v", err)
	}
	entries := res.Rows[0][1].I
	// Brute-force count.
	want := int64(0)
	fn, _ := db.Schema.LookupFunction("Cuboid.volume")
	for _, oid := range db.Extension("Cuboid") {
		v, err := db.Engine.EvalRaw(fn, []gomdb.Value{gomdb.Ref(oid)})
		if err != nil {
			t.Fatal(err)
		}
		if f, _ := v.AsFloat(); f > 100 {
			want++
		}
	}
	if entries != want {
		t.Fatalf("restricted entries = %d, want %d", entries, want)
	}
}

// TestMultiRangeQuery exercises the nested-loop fallback with two range
// variables.
func TestMultiRangeQuery(t *testing.T) {
	db, _ := geomDB(t, 6)
	res, err := db.Query(`range a: Cuboid, b: Cuboid retrieve a, b where a.CuboidID < b.CuboidID`, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := 6 * 5 / 2
	if len(res.Rows) != want {
		t.Fatalf("got %d pairs, want %d", len(res.Rows), want)
	}
}

// TestFreeFunctionCall invokes a function application in the predicate.
func TestFreeFunctionCall(t *testing.T) {
	db, g := geomDB(t, 8)
	robot := g.Robots[0]
	res, err := db.Query(`range c: Cuboid retrieve c where distance(c, $r) < 1000.0`,
		map[string]gomdb.Value{"r": gomdb.Ref(robot)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("distance query returned %d rows, want 8", len(res.Rows))
	}
}

package query

import (
	"fmt"
	"strconv"
	"strings"
)

// Query AST.

// RangeDecl binds a variable to a type extension: "range c: Cuboid".
type RangeDecl struct {
	Var  string
	Type string
}

// Target is one retrieval target: a path expression optionally wrapped in an
// aggregate (sum, avg, count, min, max).
type Target struct {
	Agg  string // "" for plain targets
	Path *PathE
}

// QueryKind distinguishes retrieve from materialize statements.
type QueryKind int

const (
	// Retrieve is a query.
	Retrieve QueryKind = iota
	// MaterializeStmt initiates function materialization.
	MaterializeStmt
)

// Query is a parsed GOMql statement.
type Query struct {
	Kind    QueryKind
	Ranges  []RangeDecl
	Targets []Target
	Where   PredE // nil when absent
}

// Predicate and operand expressions.

// PredE is a predicate expression node.
type PredE interface{ predNode() }

// AndE is conjunction.
type AndE struct{ L, R PredE }

// OrE is disjunction.
type OrE struct{ L, R PredE }

// NotE is negation.
type NotE struct{ E PredE }

// CmpE is a comparison between two operands.
type CmpE struct {
	Op string // < <= > >= = !=
	L  OperandE
	R  OperandE
}

// InE is a membership test: operand in operand.
type InE struct {
	Elem OperandE
	Coll OperandE
}

// TruthE tests a boolean-valued operand directly ("where c.Good", "where
// true").
type TruthE struct{ Op OperandE }

func (AndE) predNode()   {}
func (OrE) predNode()    {}
func (NotE) predNode()   {}
func (CmpE) predNode()   {}
func (InE) predNode()    {}
func (TruthE) predNode() {}

// OperandE is an operand: a path expression, a literal, or a parameter.
type OperandE interface{ operandNode() }

// PathE is a path expression rooted at a range variable: c.Mat.Name or
// c.volume; each step may be an attribute or a (nullary) function. A call
// step with explicit arguments is expressed by Call.
type PathE struct {
	Root string
	Segs []string
	// Call is set when the path is a function application with explicit
	// arguments: distance(c, $r).
	Call *CallE
}

// CallE is a function application with explicit argument operands.
type CallE struct {
	Fn   string
	Args []OperandE
}

// LitE is a literal value.
type LitE struct {
	Num   float64
	IsNum bool
	Str   string
	Bool  bool
	IsB   bool
}

// ParamE is a named parameter ($name), bound at execution time.
type ParamE struct{ Name string }

func (*PathE) operandNode() {}
func (LitE) operandNode()   {}
func (ParamE) operandNode() {}

// Parse parses a GOMql statement.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, fmt.Errorf("gomql: %w", err)
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("expected %s, got %v", what, t)
	}
	return t, nil
}

func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && isKeyword(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	if !p.keyword("range") {
		return nil, fmt.Errorf("query must start with 'range', got %v", p.peek())
	}
	for {
		v, err := p.expect(tokIdent, "range variable")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon, "':'"); err != nil {
			return nil, err
		}
		tn, err := p.expect(tokIdent, "type name")
		if err != nil {
			return nil, err
		}
		q.Ranges = append(q.Ranges, RangeDecl{Var: v.text, Type: tn.text})
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	switch {
	case p.keyword("retrieve"):
		q.Kind = Retrieve
	case p.keyword("materialize"):
		q.Kind = MaterializeStmt
	default:
		return nil, fmt.Errorf("expected 'retrieve' or 'materialize', got %v", p.peek())
	}
	for {
		tgt, err := p.parseTarget()
		if err != nil {
			return nil, err
		}
		q.Targets = append(q.Targets, tgt)
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if p.keyword("where") {
		w, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = w
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("trailing input at %v", t)
	}
	return q, nil
}

var aggregates = map[string]bool{"sum": true, "avg": true, "count": true, "min": true, "max": true}

func (p *parser) parseTarget() (Target, error) {
	t := p.peek()
	if t.kind == tokIdent && aggregates[strings.ToLower(t.text)] && p.toks[p.pos+1].kind == tokLParen {
		agg := strings.ToLower(p.next().text)
		p.next() // (
		path, err := p.parsePathOperand()
		if err != nil {
			return Target{}, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return Target{}, err
		}
		pe, ok := path.(*PathE)
		if !ok {
			return Target{}, fmt.Errorf("aggregate argument must be a path expression")
		}
		return Target{Agg: agg, Path: pe}, nil
	}
	op, err := p.parsePathOperand()
	if err != nil {
		return Target{}, err
	}
	pe, ok := op.(*PathE)
	if !ok {
		return Target{}, fmt.Errorf("retrieval target must be a path expression")
	}
	return Target{Path: pe}, nil
}

// Predicate grammar: or := and (OR and)*; and := not (AND not)*;
// not := NOT not | '(' or ')' | comparison.
func (p *parser) parseOr() (PredE, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = OrE{l, r}
	}
	return l, nil
}

func (p *parser) parseAnd() (PredE, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.keyword("and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = AndE{l, r}
	}
	return l, nil
}

func (p *parser) parseNot() (PredE, error) {
	if p.keyword("not") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return NotE{e}, nil
	}
	if p.peek().kind == tokLParen {
		// Could be a parenthesized predicate; try it.
		save := p.pos
		p.next()
		e, err := p.parseOr()
		if err == nil && p.peek().kind == tokRParen {
			p.next()
			return e, nil
		}
		p.pos = save
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (PredE, error) {
	l, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	if p.keyword("in") {
		r, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		return InE{Elem: l, Coll: r}, nil
	}
	if p.peek().kind != tokOp {
		// A bare boolean-valued operand is a truth test.
		return TruthE{Op: l}, nil
	}
	t := p.next()
	r, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return CmpE{Op: t.text, L: l, R: r}, nil
}

func (p *parser) parseOperand() (OperandE, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", t.text)
		}
		return LitE{Num: f, IsNum: true}, nil
	case tokString:
		p.next()
		return LitE{Str: t.text}, nil
	case tokParam:
		p.next()
		return ParamE{Name: t.text}, nil
	case tokIdent:
		switch strings.ToLower(t.text) {
		case "true":
			p.next()
			return LitE{Bool: true, IsB: true}, nil
		case "false":
			p.next()
			return LitE{Bool: false, IsB: true}, nil
		}
		return p.parsePathOperand()
	}
	return nil, fmt.Errorf("expected operand, got %v", t)
}

// parsePathOperand parses IDENT('.'IDENT)* or IDENT '(' operands ')'.
func (p *parser) parsePathOperand() (OperandE, error) {
	id, err := p.expect(tokIdent, "identifier")
	if err != nil {
		return nil, err
	}
	// Free-function application: distance(c, $r).
	if p.peek().kind == tokLParen {
		p.next()
		call := &CallE{Fn: id.text}
		if p.peek().kind != tokRParen {
			for {
				arg, err := p.parseOperand()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if p.peek().kind == tokComma {
					p.next()
					continue
				}
				break
			}
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return &PathE{Call: call}, nil
	}
	path := &PathE{Root: id.text}
	for p.peek().kind == tokDot {
		p.next()
		seg, err := p.expect(tokIdent, "path segment")
		if err != nil {
			return nil, err
		}
		path.Segs = append(path.Segs, seg.text)
	}
	return path, nil
}

// String renders a path for diagnostics.
func (pe *PathE) String() string {
	if pe.Call != nil {
		return pe.Call.Fn + "(...)"
	}
	if len(pe.Segs) == 0 {
		return pe.Root
	}
	return pe.Root + "." + strings.Join(pe.Segs, ".")
}

// Package query implements GOMql, the QUEL-like query language of GOM, for
// the query classes the paper uses: forward and backward queries over
// (materialized) functions, aggregates, and the materialize statement.
//
//	range c: Cuboid retrieve c where c.volume > 20.0 and c.weight > 100.0
//	range c: Cuboid retrieve sum(c.weight) where c.CuboidID = $id
//	range c: Cuboid materialize c.volume, c.weight where c.Mat.Name = "Iron"
//
// The planner recognizes invocations of materialized functions in the
// selection predicate and rewrites them into forward or backward GMR
// retrievals (Section 3.2), checking restricted-GMR applicability with the
// Rosenkrantz–Hunt test of Section 6; everything else falls back to an
// extension scan.
package query

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokParam // $name
	tokDot
	tokComma
	tokColon
	tokLParen
	tokRParen
	tokOp // < <= > >= = != etc.
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

// keywords are case-insensitive.
func isKeyword(s, kw string) bool { return strings.EqualFold(s, kw) }

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "")
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case c == '.':
			l.emit(tokDot, ".")
			l.pos++
		case c == ',':
			l.emit(tokComma, ",")
			l.pos++
		case c == ':':
			l.emit(tokColon, ":")
			l.pos++
		case c == '(':
			l.emit(tokLParen, "(")
			l.pos++
		case c == ')':
			l.emit(tokRParen, ")")
			l.pos++
		case c == '$':
			l.pos++
			start := l.pos
			for l.pos < len(l.src) && isIdentChar(rune(l.src[l.pos])) {
				l.pos++
			}
			if l.pos == start {
				return nil, fmt.Errorf("gomql: empty parameter name at %d", start)
			}
			l.toks = append(l.toks, token{tokParam, l.src[start:l.pos], start})
		case c == '"' || c == '\'':
			s, err := l.lexString(c)
			if err != nil {
				return nil, err
			}
			l.emit(tokString, s)
		case c == '<' || c == '>' || c == '=' || c == '!':
			start := l.pos
			l.pos++
			if l.pos < len(l.src) && l.src[l.pos] == '=' {
				l.pos++
			}
			op := l.src[start:l.pos]
			if op == "!" {
				return nil, fmt.Errorf("gomql: stray '!' at %d", start)
			}
			l.toks = append(l.toks, token{tokOp, op, start})
		case unicode.IsDigit(rune(c)) || (c == '-' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			start := l.pos
			l.pos++
			for l.pos < len(l.src) && (unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '.') {
				l.pos++
			}
			l.toks = append(l.toks, token{tokNumber, l.src[start:l.pos], start})
		case isIdentStart(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && isIdentChar(rune(l.src[l.pos])) {
				l.pos++
			}
			l.toks = append(l.toks, token{tokIdent, l.src[start:l.pos], start})
		default:
			return nil, fmt.Errorf("gomql: unexpected character %q at %d", c, l.pos)
		}
	}
}

func (l *lexer) emit(k tokKind, text string) {
	l.toks = append(l.toks, token{k, text, l.pos})
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func (l *lexer) lexString(quote byte) (string, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			l.pos++
			return b.String(), nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			c = l.src[l.pos]
		}
		b.WriteByte(c)
		l.pos++
	}
	return "", fmt.Errorf("gomql: unterminated string literal")
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentChar(r rune) bool  { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }

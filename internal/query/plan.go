package query

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"gomdb/internal/core"
	"gomdb/internal/lang"
	"gomdb/internal/object"
	"gomdb/internal/pred"
)

// Backward-query planning (Section 3.2) and the materialize statement
// (Sections 3 and 6).

// flattenConjuncts returns the top-level conjunction as a list, or nil if
// the predicate is not a pure conjunction.
func flattenConjuncts(p PredE) []PredE {
	switch n := p.(type) {
	case AndE:
		l := flattenConjuncts(n.L)
		r := flattenConjuncts(n.R)
		if l == nil || r == nil {
			return nil
		}
		return append(l, r...)
	case CmpE, InE, TruthE:
		return []PredE{p}
	}
	return nil
}

// matFnBound describes a conjunct of the form f(...,var,...) ⊙ const over a
// materialized function f: the range variable appears at argument position
// varPos, every other argument is bound to a constant value.
type matFnBound struct {
	fid    string
	op     string
	bound  float64
	varPos int
	fixed  []object.Value // nil at varPos
}

// planKey identifies one (function, fixed-argument) combination so bounds
// on the same invocation intersect.
func (b matFnBound) planKey() string {
	k := b.fid
	for i, v := range b.fixed {
		if i == b.varPos {
			k += "|$"
			continue
		}
		k += "|" + v.String()
	}
	return k
}

// tryBackward attempts to answer a single-variable query via a backward GMR
// range retrieval. It returns done=true if the query was fully answered.
func (ex *Executor) tryBackward(q *Query, params map[string]object.Value, emitRow func(binding) error) (bool, error) {
	conjuncts := flattenConjuncts(q.Where)
	if conjuncts == nil {
		return false, nil
	}
	rv := q.Ranges[0]
	var bounds []matFnBound
	for _, c := range conjuncts {
		cmp, ok := c.(CmpE)
		if !ok {
			continue
		}
		if b, ok := ex.classifyBound(cmp, rv, params); ok {
			bounds = append(bounds, b)
		}
	}
	if len(bounds) == 0 {
		return false, nil
	}
	// Intersect the bounds per (function, fixed arguments) and pick the
	// combination with the tightest (finite) window.
	type window struct {
		lb, ub float64
		bound  matFnBound
	}
	windows := map[string]*window{}
	for _, b := range bounds {
		k := b.planKey()
		w := windows[k]
		if w == nil {
			w = &window{lb: math.Inf(-1), ub: math.Inf(1), bound: b}
			windows[k] = w
		}
		switch b.op {
		case "<", "<=":
			if b.bound < w.ub {
				w.ub = b.bound
			}
		case ">", ">=":
			if b.bound > w.lb {
				w.lb = b.bound
			}
		case "=":
			if b.bound > w.lb {
				w.lb = b.bound
			}
			if b.bound < w.ub {
				w.ub = b.bound
			}
		}
	}
	keys := make([]string, 0, len(windows))
	for k := range windows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	bestKey := ""
	bestSpan := math.Inf(1)
	for _, k := range keys {
		span := windows[k].ub - windows[k].lb
		if bestKey == "" || span < bestSpan {
			bestSpan = span
			bestKey = k
		}
	}
	if bestKey == "" {
		return false, nil
	}
	best := windows[bestKey].bound
	bestFid := best.fid
	g, ok := ex.Mgr.GMRFor(bestFid)
	if !ok {
		return false, nil
	}
	// Restricted GMRs need the applicability test of Section 6: the
	// relevant part σ′ of the selection predicate must imply the
	// restriction predicate p, decided as ¬p ∧ σ′ unsatisfiable.
	if g.Restriction != nil {
		if g.Restriction.Formula == nil {
			ex.explain("plan: GMR %s restricted without formula; falling back", g.Name)
			return false, nil
		}
		sigma, ok := ex.relevantFormula(conjuncts, rv, params)
		if !ok {
			ex.explain("plan: σ′ not expressible in the decidable class; falling back")
			return false, nil
		}
		covered, err := pred.Covers(g.Restriction.Formula, sigma)
		if err != nil || !covered {
			ex.explain("plan: restricted GMR %s not applicable (%v); falling back", g.Name, err)
			return false, nil
		}
	}
	w := windows[bestKey]
	var matches []core.Match
	var err error
	if ex.Snap != nil {
		matches, err = ex.Snap.Backward(bestFid, w.lb, w.ub)
	} else {
		matches, err = ex.Mgr.Backward(bestFid, w.lb, w.ub)
	}
	if err != nil {
		if err == core.ErrIncomplete || strings.Contains(err.Error(), "not complete") {
			return false, nil
		}
		return false, err
	}
	ex.explain("plan: backward GMR index on %s over [%g, %g], %d candidates", bestFid, w.lb, w.ub, len(matches))
	b := binding{}
	for _, m := range matches {
		// For multi-argument functions, the fixed argument positions must
		// match the constants bound in the query.
		if best.fixed != nil {
			ok := true
			for i, fv := range best.fixed {
				if i == best.varPos {
					continue
				}
				if !m.Args[i].Equal(fv) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
		}
		b[rv.Var] = m.Args[best.varPos]
		keep, err := ex.evalPred(q.Where, b, params)
		if err != nil {
			return false, err
		}
		if !keep {
			continue
		}
		if err := emitRow(b); err != nil {
			return false, err
		}
	}
	return true, nil
}

// classifyBound recognizes var.f ⊙ literal and f(..., var, ...) ⊙ literal
// (or their mirrored forms) over a materialized function whose other
// arguments are bound to constants — the paper's backward queries on unary
// functions like volume as well as on multi-argument functions like
// distance(c, r).
func (ex *Executor) classifyBound(cmp CmpE, rv RangeDecl, params map[string]object.Value) (matFnBound, bool) {
	path, lit, op := cmp.L, cmp.R, cmp.Op
	if _, ok := path.(*PathE); !ok {
		path, lit = cmp.R, cmp.L
		op = reverseOp(op)
	}
	pe, ok := path.(*PathE)
	if !ok {
		return matFnBound{}, false
	}
	if op == "!=" {
		return matFnBound{}, false
	}
	f, ok := ex.constFloat(lit, params)
	if !ok {
		return matFnBound{}, false
	}

	if pe.Call != nil {
		return ex.classifyCallBound(pe.Call, op, f, rv, params)
	}
	if pe.Root != rv.Var || len(pe.Segs) != 1 {
		return matFnBound{}, false
	}
	fn, ok := ex.En.Sch.ResolveOp(rv.Type, pe.Segs[0])
	if !ok || len(fn.Params) != 1 {
		return matFnBound{}, false
	}
	if _, ok := ex.Mgr.GMRFor(fn.Name); !ok {
		return matFnBound{}, false
	}
	return matFnBound{fid: fn.Name, op: op, bound: f, varPos: 0}, true
}

// classifyCallBound handles f(args...) ⊙ const where the range variable is
// exactly one bare argument and the rest are constants or parameters.
func (ex *Executor) classifyCallBound(call *CallE, op string, bound float64, rv RangeDecl, params map[string]object.Value) (matFnBound, bool) {
	fn, ok := ex.En.Sch.ResolveStatic(call.Fn)
	if !ok {
		// Unqualified operation name: try the range type.
		fn, ok = ex.En.Sch.ResolveOp(rv.Type, call.Fn)
		if !ok {
			return matFnBound{}, false
		}
	}
	if _, ok := ex.Mgr.GMRFor(fn.Name); !ok {
		return matFnBound{}, false
	}
	if len(call.Args) != len(fn.Params) {
		return matFnBound{}, false
	}
	varPos := -1
	fixed := make([]object.Value, len(call.Args))
	for i, a := range call.Args {
		if p, isPath := a.(*PathE); isPath && p.Call == nil && p.Root == rv.Var && len(p.Segs) == 0 {
			if varPos >= 0 {
				return matFnBound{}, false // variable in two positions
			}
			varPos = i
			continue
		}
		v, err := ex.evalConstOperand(a, params)
		if err != nil {
			return matFnBound{}, false
		}
		fixed[i] = v
	}
	if varPos < 0 {
		return matFnBound{}, false
	}
	return matFnBound{fid: fn.Name, op: op, bound: bound, varPos: varPos, fixed: fixed}, true
}

// constFloat extracts a numeric constant from a literal or parameter.
func (ex *Executor) constFloat(op OperandE, params map[string]object.Value) (float64, bool) {
	switch l := op.(type) {
	case LitE:
		if !l.IsNum {
			return 0, false
		}
		return l.Num, true
	case ParamE:
		v, ok := params[l.Name]
		if !ok {
			return 0, false
		}
		return v.AsFloat()
	}
	return 0, false
}

// evalConstOperand evaluates an operand that must not depend on a range
// variable (literal or parameter).
func (ex *Executor) evalConstOperand(op OperandE, params map[string]object.Value) (object.Value, error) {
	switch l := op.(type) {
	case LitE, ParamE:
		return ex.evalOperand(op, binding{}, params)
	default:
		return object.Null(), fmt.Errorf("gomql: operand %T is not constant", l)
	}
}

func reverseOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

// relevantFormula translates the conjuncts referencing the range variable
// into a pred formula over canonical "O1.<path>" names (the convention the
// restriction formulas use). It fails if any relevant conjunct does not fit
// the decidable class.
func (ex *Executor) relevantFormula(conjuncts []PredE, rv RangeDecl, params map[string]object.Value) (pred.P, bool) {
	var parts []pred.P
	for _, c := range conjuncts {
		if !ex.mentionsVar(c, rv.Var) {
			continue
		}
		p, ok := ex.predToFormula(c, rv, params)
		if !ok {
			return nil, false
		}
		parts = append(parts, p)
	}
	return pred.And(parts...), true
}

func (ex *Executor) mentionsVar(p PredE, v string) bool {
	switch n := p.(type) {
	case AndE:
		return ex.mentionsVar(n.L, v) || ex.mentionsVar(n.R, v)
	case OrE:
		return ex.mentionsVar(n.L, v) || ex.mentionsVar(n.R, v)
	case NotE:
		return ex.mentionsVar(n.E, v)
	case CmpE:
		return operandMentions(n.L, v) || operandMentions(n.R, v)
	case InE:
		return operandMentions(n.Elem, v) || operandMentions(n.Coll, v)
	case TruthE:
		return operandMentions(n.Op, v)
	}
	return false
}

func operandMentions(op OperandE, v string) bool {
	pe, ok := op.(*PathE)
	if !ok {
		return false
	}
	if pe.Call != nil {
		for _, a := range pe.Call.Args {
			if operandMentions(a, v) {
				return true
			}
		}
		return false
	}
	return pe.Root == v
}

// predToFormula translates a predicate into the pred calculus, naming
// variable paths "O1.<segs>". String constants are interned via the shared
// interner so they agree with restriction formulas.
func (ex *Executor) predToFormula(p PredE, rv RangeDecl, params map[string]object.Value) (pred.P, bool) {
	switch n := p.(type) {
	case AndE:
		l, okL := ex.predToFormula(n.L, rv, params)
		r, okR := ex.predToFormula(n.R, rv, params)
		return pred.And(l, r), okL && okR
	case OrE:
		l, okL := ex.predToFormula(n.L, rv, params)
		r, okR := ex.predToFormula(n.R, rv, params)
		return pred.Or(l, r), okL && okR
	case NotE:
		e, ok := ex.predToFormula(n.E, rv, params)
		return pred.Not(e), ok
	case CmpE:
		return ex.cmpToFormula(n, rv, params)
	}
	return nil, false
}

func (ex *Executor) cmpToFormula(n CmpE, rv RangeDecl, params map[string]object.Value) (pred.P, bool) {
	opOf := map[string]pred.CmpOp{
		"=": pred.Eq, "!=": pred.Ne, "<": pred.Lt, "<=": pred.Le, ">": pred.Gt, ">=": pred.Ge,
	}
	op, ok := opOf[n.Op]
	if !ok {
		return nil, false
	}
	name := func(o OperandE) (string, bool) {
		pe, isPath := o.(*PathE)
		if !isPath || pe.Call != nil || pe.Root != rv.Var {
			return "", false
		}
		return "O1." + strings.Join(pe.Segs, "."), true
	}
	constOf := func(o OperandE) (float64, bool) {
		switch l := o.(type) {
		case LitE:
			if l.IsNum {
				return l.Num, true
			}
			if l.IsB {
				if l.Bool {
					return 1, true
				}
				return 0, true
			}
			return ex.Mgr.Intern.Code(l.Str), true
		case ParamE:
			v, ok := params[l.Name]
			if !ok {
				return 0, false
			}
			if f, okF := v.AsFloat(); okF {
				return f, true
			}
			if v.Kind == object.KString {
				return ex.Mgr.Intern.Code(v.S), true
			}
			return 0, false
		}
		return 0, false
	}
	if x, ok := name(n.L); ok {
		if y, ok := name(n.R); ok {
			return pred.CmpVars(x, op, y), true
		}
		if c, ok := constOf(n.R); ok {
			return pred.CmpConst(x, op, c), true
		}
		return nil, false
	}
	if y, ok := name(n.R); ok {
		if c, ok := constOf(n.L); ok {
			// c ⊙ y  ≡  y ⊙⁻¹ c
			return pred.CmpConst(y, opOf[reverseOp(n.Op)], c), true
		}
	}
	return nil, false
}

// runMaterialize executes "range v: T materialize v.f1, v.f2 [where p]".
func (ex *Executor) runMaterialize(q *Query, params map[string]object.Value) (*Result, error) {
	if len(q.Ranges) != 1 {
		return nil, fmt.Errorf("gomql: materialize needs exactly one range variable")
	}
	rv := q.Ranges[0]
	var funcs []string
	for _, t := range q.Targets {
		if t.Agg != "" || t.Path.Call != nil || t.Path.Root != rv.Var || len(t.Path.Segs) != 1 {
			return nil, fmt.Errorf("gomql: materialize target must be %s.<function>", rv.Var)
		}
		fn, ok := ex.En.Sch.ResolveOp(rv.Type, t.Path.Segs[0])
		if !ok {
			return nil, fmt.Errorf("gomql: no function %q on type %q", t.Path.Segs[0], rv.Type)
		}
		funcs = append(funcs, fn.Name)
	}
	opts := core.Options{
		Funcs:    funcs,
		Complete: true,
		Strategy: ex.DefaultStrategy,
		Mode:     ex.DefaultMode,
	}
	if q.Where != nil {
		body, err := ex.predToLang(q.Where, rv, params)
		if err != nil {
			return nil, fmt.Errorf("gomql: restriction predicate: %w", err)
		}
		pfn := &lang.Function{
			Name:           "p$" + strings.Join(funcs, "_"),
			Params:         []lang.Param{lang.Prm(rv.Var, rv.Type)},
			ResultType:     "bool",
			SideEffectFree: true,
			Body:           []lang.Stmt{lang.Ret(body)},
		}
		formula, _ := ex.predToFormula(q.Where, rv, params)
		opts.Restriction = &core.Restriction{Fn: pfn, Formula: formula}
	}
	g, err := ex.Mgr.Materialize(opts)
	if err != nil {
		return nil, err
	}
	return &Result{
		Columns: []string{"gmr", "entries"},
		Rows:    [][]object.Value{{object.String_(g.Name), object.Int(int64(g.Len()))}},
	}, nil
}

// predToLang translates a where clause into a GOMpl boolean expression for
// the executable restriction predicate (Section 6.1 materializes p itself).
func (ex *Executor) predToLang(p PredE, rv RangeDecl, params map[string]object.Value) (lang.Expr, error) {
	switch n := p.(type) {
	case AndE:
		l, err := ex.predToLang(n.L, rv, params)
		if err != nil {
			return nil, err
		}
		r, err := ex.predToLang(n.R, rv, params)
		if err != nil {
			return nil, err
		}
		return lang.And(l, r), nil
	case OrE:
		l, err := ex.predToLang(n.L, rv, params)
		if err != nil {
			return nil, err
		}
		r, err := ex.predToLang(n.R, rv, params)
		if err != nil {
			return nil, err
		}
		return lang.Or(l, r), nil
	case NotE:
		e, err := ex.predToLang(n.E, rv, params)
		if err != nil {
			return nil, err
		}
		return lang.Un{Op: "not", E: e}, nil
	case CmpE:
		l, err := ex.operandToLang(n.L, rv, params)
		if err != nil {
			return nil, err
		}
		r, err := ex.operandToLang(n.R, rv, params)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case "=":
			return lang.Eq(l, r), nil
		case "!=":
			return lang.Ne(l, r), nil
		case "<":
			return lang.Lt(l, r), nil
		case "<=":
			return lang.Le(l, r), nil
		case ">":
			return lang.Gt(l, r), nil
		case ">=":
			return lang.Ge(l, r), nil
		}
		return nil, fmt.Errorf("unknown operator %q", n.Op)
	case InE:
		el, err := ex.operandToLang(n.Elem, rv, params)
		if err != nil {
			return nil, err
		}
		coll, err := ex.operandToLang(n.Coll, rv, params)
		if err != nil {
			return nil, err
		}
		return lang.In(el, coll), nil
	case TruthE:
		return ex.operandToLang(n.Op, rv, params)
	}
	return nil, fmt.Errorf("unsupported predicate form %T", p)
}

func (ex *Executor) operandToLang(op OperandE, rv RangeDecl, params map[string]object.Value) (lang.Expr, error) {
	switch o := op.(type) {
	case LitE:
		switch {
		case o.IsNum:
			return lang.F(o.Num), nil
		case o.IsB:
			return lang.B(o.Bool), nil
		default:
			return lang.S(o.Str), nil
		}
	case ParamE:
		v, ok := params[o.Name]
		if !ok {
			return nil, fmt.Errorf("unbound parameter $%s", o.Name)
		}
		return lang.Lit{Val: v}, nil
	case *PathE:
		if o.Call != nil {
			return nil, fmt.Errorf("function applications are not supported in restriction predicates")
		}
		if o.Root != rv.Var {
			return nil, fmt.Errorf("restriction predicate may only reference %s", rv.Var)
		}
		// Static-type walk: attribute steps become reads, operation steps
		// become calls.
		var cur lang.Expr = lang.V(rv.Var)
		curType := rv.Type
		for _, seg := range o.Segs {
			if at, ok := ex.En.Sch.AttrType(curType, seg); ok {
				cur = lang.A(cur, seg)
				curType = at
				continue
			}
			if fn, ok := ex.En.Sch.ResolveOp(curType, seg); ok && len(fn.Params) == 1 {
				cur = lang.CallFn(curType+"."+seg, cur)
				curType = fn.ResultType
				continue
			}
			return nil, fmt.Errorf("type %q has neither attribute nor unary operation %q", curType, seg)
		}
		return cur, nil
	}
	return nil, fmt.Errorf("unknown operand %T", op)
}

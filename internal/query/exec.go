package query

import (
	"fmt"
	"math"
	"strings"

	"gomdb/internal/core"
	"gomdb/internal/object"
	"gomdb/internal/schema"
)

// Executor runs GOMql statements against an engine and its GMR manager.
type Executor struct {
	En  *schema.Engine
	Mgr *core.Manager

	// Snap, when set, pins the executor to an MVCC snapshot: En is the
	// snapshot's engine (object reads resolve at the pinned version,
	// materialized calls route to the snapshot's forward path) and backward
	// GMR retrievals reconstruct at the version instead of consulting — and
	// possibly rematerializing — the live GMR. Set via Snapshot.
	Snap *core.Snapshot

	// Defaults for the materialize statement.
	DefaultStrategy core.Strategy
	DefaultMode     core.HookMode

	// Explain, when set, receives one line per query describing the chosen
	// plan (backward GMR index vs. extension scan).
	Explain func(string)

	// rangeTypes maps range variables of the executing query to their
	// declared types, enabling static dispatch in path steps. It is
	// query-local state: RunQuery populates it on a per-query shallow copy
	// of the executor, never on the shared receiver, so concurrent
	// read-only queries do not interfere.
	rangeTypes map[string]string
}

// NewExecutor returns an executor with the paper's default maintenance
// configuration (immediate rematerialization, ObjDepFct marking).
func NewExecutor(en *schema.Engine, mgr *core.Manager) *Executor {
	return &Executor{En: en, Mgr: mgr, DefaultStrategy: core.Immediate, DefaultMode: core.ModeObjDep}
}

// Snapshot returns a copy of the executor bound to snap: every object and
// GMR read resolves at the snapshot's pinned version, and nothing the copy
// does mutates engine or GMR state. The caller must only run plans that
// ReadOnlyPlan accepts (a materialize or mutation statement fails with
// schema.ErrShadowMutation).
func (ex *Executor) Snapshot(snap *core.Snapshot) *Executor {
	cp := *ex
	cp.En = snap.Engine()
	cp.Snap = snap
	cp.rangeTypes = nil
	return &cp
}

// Result is a query result: column labels and rows of values.
type Result struct {
	Columns []string
	Rows    [][]object.Value
}

// Run parses and executes a GOMql statement. Parameters referenced as $name
// in the query are taken from params.
func (ex *Executor) Run(src string, params map[string]object.Value) (*Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return ex.RunQuery(q, params)
}

// RunQuery executes a parsed statement. It is safe to call concurrently for
// read-only plans (see ReadOnlyPlan): per-query state lives on a shallow
// copy of the executor, not the shared receiver.
func (ex *Executor) RunQuery(q *Query, params map[string]object.Value) (*Result, error) {
	rt := make(map[string]string, len(q.Ranges))
	for _, r := range q.Ranges {
		if ex.En.Sch.Reg.Lookup(r.Type) == nil {
			return nil, fmt.Errorf("gomql: unknown range type %q", r.Type)
		}
		rt[r.Var] = r.Type
	}
	exq := *ex
	exq.rangeTypes = rt
	if q.Kind == MaterializeStmt {
		return exq.runMaterialize(q, params)
	}
	return exq.runRetrieve(q, params)
}

func (ex *Executor) explain(format string, args ...any) {
	if ex.Explain != nil {
		ex.Explain(fmt.Sprintf(format, args...))
	}
}

// binding maps range variables to their current object.
type binding map[string]object.Value

func (ex *Executor) runRetrieve(q *Query, params map[string]object.Value) (*Result, error) {
	res := &Result{}
	for _, t := range q.Targets {
		label := t.Path.String()
		if t.Agg != "" {
			label = t.Agg + "(" + label + ")"
		}
		res.Columns = append(res.Columns, label)
	}

	emitRow := func(b binding) error {
		row := make([]object.Value, len(q.Targets))
		for i, t := range q.Targets {
			v, err := ex.evalOperand(t.Path, b, params)
			if err != nil {
				return err
			}
			row[i] = v
		}
		res.Rows = append(res.Rows, row)
		return nil
	}

	// Try the backward-query plan for single-variable queries.
	if len(q.Ranges) == 1 && q.Where != nil {
		done, err := ex.tryBackward(q, params, emitRow)
		if err != nil {
			return nil, err
		}
		if done {
			return ex.finish(q, res)
		}
	}

	// Fallback: nested-loop scan over the range extensions.
	ex.explain("plan: extension scan over %v", q.Ranges)
	var rec func(i int, b binding) error
	rec = func(i int, b binding) error {
		if i == len(q.Ranges) {
			if q.Where != nil {
				ok, err := ex.evalPred(q.Where, b, params)
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
			}
			return emitRow(b)
		}
		r := q.Ranges[i]
		for _, oid := range ex.En.ExtensionOf(r.Type) {
			b[r.Var] = object.Ref(oid)
			if err := rec(i+1, b); err != nil {
				return err
			}
		}
		delete(b, r.Var)
		return nil
	}
	if err := rec(0, binding{}); err != nil {
		return nil, err
	}
	return ex.finish(q, res)
}

// finish applies aggregates if all targets are aggregates.
func (ex *Executor) finish(q *Query, res *Result) (*Result, error) {
	hasAgg := false
	for _, t := range q.Targets {
		if t.Agg != "" {
			hasAgg = true
		}
	}
	if !hasAgg {
		return res, nil
	}
	for _, t := range q.Targets {
		if t.Agg == "" {
			return nil, fmt.Errorf("gomql: cannot mix aggregate and plain targets")
		}
	}
	row := make([]object.Value, len(q.Targets))
	for i, t := range q.Targets {
		var sum float64
		lo, hi := math.Inf(1), math.Inf(-1)
		n := 0
		for _, r := range res.Rows {
			f, ok := r[i].AsFloat()
			if !ok && t.Agg != "count" {
				return nil, fmt.Errorf("gomql: %s over non-numeric value %v", t.Agg, r[i])
			}
			sum += f
			if f < lo {
				lo = f
			}
			if f > hi {
				hi = f
			}
			n++
		}
		switch t.Agg {
		case "sum":
			row[i] = object.Float(sum)
		case "avg":
			if n == 0 {
				row[i] = object.Null()
			} else {
				row[i] = object.Float(sum / float64(n))
			}
		case "count":
			row[i] = object.Int(int64(n))
		case "min":
			if n == 0 {
				row[i] = object.Null()
			} else {
				row[i] = object.Float(lo)
			}
		case "max":
			if n == 0 {
				row[i] = object.Null()
			} else {
				row[i] = object.Float(hi)
			}
		}
	}
	res.Rows = [][]object.Value{row}
	return res, nil
}

// evalOperand evaluates an operand under a binding.
func (ex *Executor) evalOperand(op OperandE, b binding, params map[string]object.Value) (object.Value, error) {
	switch o := op.(type) {
	case LitE:
		switch {
		case o.IsNum:
			return object.Float(o.Num), nil
		case o.IsB:
			return object.Bool(o.Bool), nil
		default:
			return object.String_(o.Str), nil
		}
	case ParamE:
		v, ok := params[o.Name]
		if !ok {
			return object.Null(), fmt.Errorf("gomql: unbound parameter $%s", o.Name)
		}
		return v, nil
	case *PathE:
		return ex.evalPath(o, b, params)
	}
	return object.Null(), fmt.Errorf("gomql: unknown operand %T", op)
}

func (ex *Executor) evalPath(p *PathE, b binding, params map[string]object.Value) (object.Value, error) {
	if p.Call != nil {
		args := make([]object.Value, len(p.Call.Args))
		for i, a := range p.Call.Args {
			v, err := ex.evalOperand(a, b, params)
			if err != nil {
				return object.Null(), err
			}
			args[i] = v
		}
		return ex.invoke(p.Call.Fn, args)
	}
	var cur object.Value
	curType := ""
	if v, ok := b[p.Root]; ok {
		cur = v
		if rt, ok := ex.rangeTypes[p.Root]; ok {
			curType = rt
		}
	} else if v, ok := params[p.Root]; ok {
		cur = v
	} else {
		return object.Null(), fmt.Errorf("gomql: unbound variable %q", p.Root)
	}
	for _, seg := range p.Segs {
		v, nt, err := ex.step(cur, curType, seg)
		if err != nil {
			return object.Null(), err
		}
		cur = v
		curType = nt
	}
	return cur, nil
}

// step resolves one path segment: an attribute read, or a (nullary)
// operation invocation — the paper's uniform treatment of stored and
// computed properties. curType is the static type when known; if it has no
// subtypes an operation step dispatches statically without reading the
// receiver object, so a materialized-function step goes straight to the GMR.
// It returns the value and the static type of the result (if derivable).
func (ex *Executor) step(cur object.Value, curType, seg string) (object.Value, string, error) {
	switch cur.Kind {
	case object.KRef:
		dispatch := curType
		if dispatch == "" || ex.En.Sch.Reg.HasSubtypes(dispatch) {
			o, err := ex.En.GetObject(cur.R)
			if err != nil {
				return object.Null(), "", err
			}
			dispatch = o.Type
		}
		if at, ok := ex.En.Sch.AttrType(dispatch, seg); ok {
			v, err := ex.En.ReadAttr(cur, seg)
			return v, at, err
		}
		if fn, ok := ex.En.Sch.ResolveOp(dispatch, seg); ok {
			v, err := ex.En.CallFunction(dispatch+"."+seg, []object.Value{cur})
			return v, fn.ResultType, err
		}
		return object.Null(), "", fmt.Errorf("gomql: type %q has neither attribute nor operation %q", dispatch, seg)
	case object.KTuple:
		v, err := ex.En.ReadAttr(cur, seg)
		at, _ := ex.En.Sch.AttrType(cur.TupleType, seg)
		return v, at, err
	default:
		return object.Null(), "", fmt.Errorf("gomql: path step %q on %v value", seg, cur.Kind)
	}
}

// invoke calls fn, qualifying an unqualified name by the dynamic type of the
// first argument when no free function matches.
func (ex *Executor) invoke(fn string, args []object.Value) (object.Value, error) {
	if !strings.Contains(fn, ".") {
		if _, ok := ex.En.Sch.ResolveStatic(fn); !ok && len(args) > 0 && args[0].Kind == object.KRef {
			o, err := ex.En.GetObject(args[0].R)
			if err != nil {
				return object.Null(), err
			}
			fn = o.Type + "." + fn
		}
	}
	return ex.En.CallFunction(fn, args)
}

// evalPred evaluates a predicate under a binding.
func (ex *Executor) evalPred(p PredE, b binding, params map[string]object.Value) (bool, error) {
	switch n := p.(type) {
	case AndE:
		l, err := ex.evalPred(n.L, b, params)
		if err != nil || !l {
			return false, err
		}
		return ex.evalPred(n.R, b, params)
	case OrE:
		l, err := ex.evalPred(n.L, b, params)
		if err != nil || l {
			return l, err
		}
		return ex.evalPred(n.R, b, params)
	case NotE:
		v, err := ex.evalPred(n.E, b, params)
		return !v, err
	case CmpE:
		l, err := ex.evalOperand(n.L, b, params)
		if err != nil {
			return false, err
		}
		r, err := ex.evalOperand(n.R, b, params)
		if err != nil {
			return false, err
		}
		return compareValues(n.Op, l, r)
	case TruthE:
		v, err := ex.evalOperand(n.Op, b, params)
		if err != nil {
			return false, err
		}
		return v.Truth(), nil
	case InE:
		el, err := ex.evalOperand(n.Elem, b, params)
		if err != nil {
			return false, err
		}
		coll, err := ex.evalOperand(n.Coll, b, params)
		if err != nil {
			return false, err
		}
		if coll.Kind == object.KRef {
			elems, err := ex.En.ReadElems(coll)
			if err != nil {
				return false, err
			}
			coll = object.SetVal(elems...)
		}
		if coll.Kind != object.KSet && coll.Kind != object.KList {
			return false, fmt.Errorf("gomql: 'in' on %v value", coll.Kind)
		}
		return coll.Contains(el), nil
	}
	return false, fmt.Errorf("gomql: unknown predicate %T", p)
}

func compareValues(op string, l, r object.Value) (bool, error) {
	switch op {
	case "=":
		return l.Equal(r), nil
	case "!=":
		return !l.Equal(r), nil
	}
	if l.Kind == object.KString && r.Kind == object.KString {
		switch op {
		case "<":
			return l.S < r.S, nil
		case "<=":
			return l.S <= r.S, nil
		case ">":
			return l.S > r.S, nil
		case ">=":
			return l.S >= r.S, nil
		}
	}
	lf, okL := l.AsFloat()
	rf, okR := r.AsFloat()
	if !okL || !okR {
		return false, fmt.Errorf("gomql: cannot compare %v and %v", l.Kind, r.Kind)
	}
	switch op {
	case "<":
		return lf < rf, nil
	case "<=":
		return lf <= rf, nil
	case ">":
		return lf > rf, nil
	case ">=":
		return lf >= rf, nil
	}
	return false, fmt.Errorf("gomql: unknown comparison %q", op)
}

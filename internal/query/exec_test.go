package query_test

// Executor edge cases: empty aggregates, string comparisons, boolean
// literals, membership over set objects, and lexer details.

import (
	"testing"

	"gomdb"
	"gomdb/internal/query"
)

func TestEmptyAggregates(t *testing.T) {
	db, _ := geomDB(t, 5)
	res, err := db.Query(`range c: Cuboid retrieve count(c.volume), avg(c.volume), min(c.volume), max(c.volume) where c.CuboidID > 1000.0`, nil)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row[0].I != 0 {
		t.Fatalf("count over empty = %v", row[0])
	}
	for i := 1; i <= 3; i++ {
		if !row[i].IsNull() {
			t.Fatalf("aggregate %d over empty = %v, want null", i, row[i])
		}
	}
}

func TestStringAndBoolPredicates(t *testing.T) {
	db, _ := geomDB(t, 12)
	res, err := db.Query(`range c: Cuboid retrieve c where c.Mat.Name = "Iron"`, nil)
	if err != nil {
		t.Fatal(err)
	}
	iron := len(res.Rows)
	res2, err := db.Query(`range c: Cuboid retrieve c where not c.Mat.Name = "Iron"`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if iron+len(res2.Rows) != 12 {
		t.Fatalf("iron %d + non-iron %d != 12", iron, len(res2.Rows))
	}
	// String ordering comparison.
	res3, err := db.Query(`range c: Cuboid retrieve c where c.Mat.Name < "J"`, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res3.Rows {
		name, _ := db.Engine.ReadAttr(r[0], "Mat")
		n, _ := db.Engine.ReadAttr(name, "Name")
		if n.S >= "J" {
			t.Fatalf("string comparison admitted %q", n.S)
		}
	}
	// Boolean literal predicates.
	all, err := db.Query(`range c: Cuboid retrieve c where true`, nil)
	if err != nil || len(all.Rows) != 12 {
		t.Fatalf("where true: %d rows, %v", len(all.Rows), err)
	}
	none, err := db.Query(`range c: Cuboid retrieve c where false`, nil)
	if err != nil || len(none.Rows) != 0 {
		t.Fatalf("where false: %d rows, %v", len(none.Rows), err)
	}
}

func TestMembershipOverSetObject(t *testing.T) {
	db, g := geomDB(t, 6)
	// Build a Workpieces set holding half the cuboids.
	var elems []gomdb.Value
	for i := 0; i < 3; i++ {
		elems = append(elems, gomdb.Ref(g.Cuboids[i]))
	}
	set, err := db.NewSet("Workpieces", elems...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`range c: Cuboid retrieve c where c in $wp`,
		map[string]gomdb.Value{"wp": gomdb.Ref(set)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("membership query returned %d rows", len(res.Rows))
	}
	// not-in via negation.
	res, err = db.Query(`range c: Cuboid retrieve c where not (c in $wp)`,
		map[string]gomdb.Value{"wp": gomdb.Ref(set)})
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("negated membership: %d rows, %v", len(res.Rows), err)
	}
}

func TestLexerDetails(t *testing.T) {
	// Escapes in string literals; single quotes; negative numbers.
	q, err := query.Parse(`range c: Cuboid retrieve c where c.Mat.Name = 'Iro\'n' and c.Value > -2.5`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Where == nil {
		t.Fatal("where missing")
	}
	// Keyword case-insensitivity.
	if _, err := query.Parse(`RANGE c: Cuboid RETRIEVE c WHERE c.Value > 1.0 AND c.Value < 5.0`); err != nil {
		t.Fatalf("case-insensitive keywords: %v", err)
	}
	// Unknown characters rejected.
	if _, err := query.Parse(`range c: Cuboid retrieve c where c.Value @ 3`); err == nil {
		t.Fatal("stray '@' accepted")
	}
	if _, err := query.Parse(`range c: Cuboid retrieve c where $ = 1`); err == nil {
		t.Fatal("empty parameter accepted")
	}
}

// TestAggregateOverMaterializedSubset: the paper's "retrieve sum(c.weight)"
// with a where clause exploits forward lookups per qualifying object.
func TestAggregateOverMaterializedSubset(t *testing.T) {
	db, _ := geomDB(t, 20)
	if _, err := db.Query(`range c: Cuboid materialize c.weight`, nil); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`range c: Cuboid retrieve sum(c.weight) where c.CuboidID <= 10.0`, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := res.Rows[0][0].AsFloat()
	// Brute force.
	want := 0.0
	fn, _ := db.Schema.LookupFunction("Cuboid.weight")
	for _, oid := range db.Extension("Cuboid") {
		id, _ := db.GetAttr(oid, "CuboidID")
		if id.I <= 10 {
			v, err := db.Engine.EvalRaw(fn, []gomdb.Value{gomdb.Ref(oid)})
			if err != nil {
				t.Fatal(err)
			}
			f, _ := v.AsFloat()
			want += f
		}
	}
	if d := got - want; d > 1e-6 || d < -1e-6 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
}

package query_test

// Planner tests: multi-argument backward exploitation, window intersection,
// and plan selection.

import (
	"strings"
	"testing"

	"gomdb"
)

// TestMultiArgBackwardPlan: distance(c, $r) < bound uses the two-argument
// distance GMR as a backward index, filtering the fixed robot position.
func TestMultiArgBackwardPlan(t *testing.T) {
	db, g := geomDB(t, 40)
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.distance"}, Complete: true,
		Strategy: gomdb.Immediate, Mode: gomdb.ModeObjDep,
	}); err != nil {
		t.Fatal(err)
	}
	r0, r1 := g.Robots[0], g.Robots[1]
	var plans []string
	db.Queries.Explain = func(s string) { plans = append(plans, s) }
	res, err := db.Query(`range c: Cuboid retrieve c where distance(c, $r) < $d`,
		map[string]gomdb.Value{"r": gomdb.Ref(r0), "d": gomdb.Float(120)})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 || !strings.Contains(plans[0], "backward GMR index on Cuboid.distance") {
		t.Fatalf("multi-arg backward plan not used: %v", plans)
	}
	// Brute force with the other robot must differ if positions differ, and
	// with the same robot must agree.
	fn, _ := db.Schema.LookupFunction("Cuboid.distance")
	count := func(robot gomdb.OID, d float64) int {
		n := 0
		for _, c := range db.Extension("Cuboid") {
			v, err := db.Engine.EvalRaw(fn, []gomdb.Value{gomdb.Ref(c), gomdb.Ref(robot)})
			if err != nil {
				t.Fatal(err)
			}
			if f, _ := v.AsFloat(); f < d {
				n++
			}
		}
		return n
	}
	if len(res.Rows) != count(r0, 120) {
		t.Fatalf("plan returned %d rows, brute force %d", len(res.Rows), count(r0, 120))
	}
	// Rows for robot 1 via the same GMR.
	res1, err := db.Query(`range c: Cuboid retrieve c where distance(c, $r) < $d`,
		map[string]gomdb.Value{"r": gomdb.Ref(r1), "d": gomdb.Float(120)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Rows) != count(r1, 120) {
		t.Fatalf("robot1: %d rows, brute force %d", len(res1.Rows), count(r1, 120))
	}
}

// TestWindowIntersection: two bounds on the same function intersect into
// one index window.
func TestWindowIntersection(t *testing.T) {
	db, _ := geomDB(t, 50)
	if _, err := db.Query(`range c: Cuboid materialize c.volume`, nil); err != nil {
		t.Fatal(err)
	}
	var plans []string
	db.Queries.Explain = func(s string) { plans = append(plans, s) }
	res, err := db.Query(`range c: Cuboid retrieve c where c.volume > 100.0 and c.volume < 200.0 and c.volume > 120.0`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 || !strings.Contains(plans[0], "[120, 200]") {
		t.Fatalf("bounds not intersected: %v", plans)
	}
	for _, r := range res.Rows {
		v, err := db.Call("Cuboid.volume", r[0])
		if err != nil {
			t.Fatal(err)
		}
		f, _ := v.AsFloat()
		if f <= 120 || f >= 200 {
			t.Fatalf("row %v outside window: %g", r[0], f)
		}
	}
}

// TestEqualityBoundUsesIndex: c.volume = k plans as a degenerate window.
func TestEqualityBoundUsesIndex(t *testing.T) {
	db, g := geomDB(t, 20)
	if _, err := db.Query(`range c: Cuboid materialize c.volume`, nil); err != nil {
		t.Fatal(err)
	}
	v, _ := db.Call("Cuboid.volume", gomdb.Ref(g.Cuboids[4]))
	f, _ := v.AsFloat()
	var plans []string
	db.Queries.Explain = func(s string) { plans = append(plans, s) }
	res, err := db.Query(`range c: Cuboid retrieve c where c.volume = $v`,
		map[string]gomdb.Value{"v": gomdb.Float(f)})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 || !strings.Contains(plans[0], "backward") {
		t.Fatalf("equality bound not planned as index probe: %v", plans)
	}
	if len(res.Rows) < 1 {
		t.Fatalf("equality query found nothing")
	}
}

// TestDisjunctionFallsBack: OR predicates cannot use the single-window
// backward plan and must scan (still correct).
func TestDisjunctionFallsBack(t *testing.T) {
	db, _ := geomDB(t, 30)
	if _, err := db.Query(`range c: Cuboid materialize c.volume`, nil); err != nil {
		t.Fatal(err)
	}
	var plans []string
	db.Queries.Explain = func(s string) { plans = append(plans, s) }
	res, err := db.Query(`range c: Cuboid retrieve c where c.volume < 50.0 or c.volume > 500.0`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 || !strings.Contains(plans[len(plans)-1], "extension scan") {
		t.Fatalf("disjunction did not fall back: %v", plans)
	}
	// Cross-check against forward evaluation.
	n := 0
	for _, c := range db.Extension("Cuboid") {
		v, _ := db.Call("Cuboid.volume", gomdb.Ref(c))
		f, _ := v.AsFloat()
		if f < 50 || f > 500 {
			n++
		}
	}
	if len(res.Rows) != n {
		t.Fatalf("disjunction scan: %d rows, want %d", len(res.Rows), n)
	}
}

// TestNotEqualBoundIgnored: != cannot drive the index but must still filter.
func TestNotEqualBoundIgnored(t *testing.T) {
	db, _ := geomDB(t, 10)
	if _, err := db.Query(`range c: Cuboid materialize c.volume`, nil); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`range c: Cuboid retrieve c where c.volume != 0.0`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("!= filter returned %d rows", len(res.Rows))
	}
}

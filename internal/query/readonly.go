package query

// Static read-only classification of parsed statements: the Database facade
// runs a statement under its shared read lock only when ReadOnlyPlan proves
// that no evaluation step can mutate engine or GMR state. The analysis uses
// schema metadata exclusively — no object reads, no simulated-clock charges —
// so classifying a query does not perturb the deterministic cost accounting
// of single-threaded runs.

// ReadOnlyPlan reports whether executing q can be proven free of side
// effects on the object base. The proof is conservative: any construct the
// analysis cannot resolve statically (parameter-rooted path steps, unknown
// operations, dynamic dispatch with divergent signatures) classifies the
// statement as a write.
//
// A true result is only sufficient for shared-lock execution if the GMR
// manager is additionally quiescent (core.Manager.Quiescent): plan execution
// issues forward and backward GMR queries, which insert or rematerialize
// entries unless every GMR is complete and fully valid. The facade checks
// both conditions.
func (ex *Executor) ReadOnlyPlan(q *Query) bool {
	if q == nil || q.Kind == MaterializeStmt {
		return false
	}
	rt := make(map[string]string, len(q.Ranges))
	for _, r := range q.Ranges {
		if ex.En.Sch.Reg.Lookup(r.Type) == nil {
			return false
		}
		rt[r.Var] = r.Type
	}
	for _, t := range q.Targets {
		if !ex.pathReadOnly(t.Path, rt) {
			return false
		}
	}
	if q.Where != nil && !ex.predReadOnly(q.Where, rt) {
		return false
	}
	return true
}

func (ex *Executor) predReadOnly(p PredE, rt map[string]string) bool {
	switch n := p.(type) {
	case AndE:
		return ex.predReadOnly(n.L, rt) && ex.predReadOnly(n.R, rt)
	case OrE:
		return ex.predReadOnly(n.L, rt) && ex.predReadOnly(n.R, rt)
	case NotE:
		return ex.predReadOnly(n.E, rt)
	case CmpE:
		return ex.operandReadOnly(n.L, rt) && ex.operandReadOnly(n.R, rt)
	case TruthE:
		return ex.operandReadOnly(n.Op, rt)
	case InE:
		return ex.operandReadOnly(n.Elem, rt) && ex.operandReadOnly(n.Coll, rt)
	}
	return false
}

func (ex *Executor) operandReadOnly(op OperandE, rt map[string]string) bool {
	switch o := op.(type) {
	case LitE, ParamE:
		return true
	case *PathE:
		return ex.pathReadOnly(o, rt)
	}
	return false
}

func (ex *Executor) pathReadOnly(p *PathE, rt map[string]string) bool {
	if p == nil {
		return false
	}
	if p.Call != nil {
		for _, a := range p.Call.Args {
			if !ex.operandReadOnly(a, rt) {
				return false
			}
		}
		return ex.callReadOnly(p.Call, rt)
	}
	rootType, ok := rt[p.Root]
	if !ok {
		// Parameter-rooted path: the root's runtime type is unknown, so any
		// further step would dispatch dynamically on it. A bare reference is
		// harmless; anything longer is classified as a write.
		return len(p.Segs) == 0
	}
	curType := rootType
	for _, seg := range p.Segs {
		if at, ok := ex.En.Sch.AttrType(curType, seg); ok {
			// Attribute reads never mutate. Subtypes inherit the attribute
			// with the same declared type, so the runtime dispatch in step()
			// resolves the same way for every instance.
			curType = at
			continue
		}
		if !ex.opReadOnly(curType, seg) {
			return false
		}
		fn, ok := ex.En.Sch.ResolveOp(curType, seg)
		if !ok {
			return false
		}
		// All dynamic-dispatch candidates must agree on the result type so
		// the remainder of the static walk stays valid for every instance.
		for _, tn := range ex.En.Sch.Reg.WithSubtypes(curType) {
			sub, ok := ex.En.Sch.ResolveOp(tn, seg)
			if !ok || sub.ResultType != fn.ResultType {
				return false
			}
		}
		curType = fn.ResultType
	}
	return true
}

// callReadOnly classifies an explicit function application. Qualified names
// check every dynamic-dispatch override; unqualified names must resolve to a
// free function (an unqualified operation dispatches on the runtime type of
// its first argument, which is unknown statically).
func (ex *Executor) callReadOnly(call *CallE, rt map[string]string) bool {
	name := call.Fn
	if i := indexDot(name); i >= 0 {
		return ex.opReadOnly(name[:i], name[i+1:])
	}
	fn, ok := ex.En.Sch.ResolveStatic(name)
	return ok && fn.SideEffectFree
}

// opReadOnly reports whether invoking op on any instance of declType (or a
// subtype) is side-effect free: every override is declared SideEffectFree
// and no update-notification hook is installed for it. Side-effect freedom
// is transitive by contract — a SideEffectFree body only invokes
// SideEffectFree operations — so checking the entry points suffices.
func (ex *Executor) opReadOnly(declType, opName string) bool {
	subs := ex.En.Sch.Reg.WithSubtypes(declType)
	if len(subs) == 0 {
		return false
	}
	for _, tn := range subs {
		fn, ok := ex.En.Sch.ResolveOp(tn, opName)
		if !ok || !fn.SideEffectFree || ex.En.Hooks.Installed(tn, opName) {
			return false
		}
	}
	return true
}

func indexDot(s string) int {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}

// Package gridfile implements a Grid File (Nievergelt, Hinterberger,
// Sevcik: "The Grid File: An Adaptable, Symmetric Multikey File Structure",
// ACM TODS 1984) — the multidimensional storage structure Section 3.3 of
// the paper considers for GMRs of low arity: a single symmetric index over
// the fields O1,...,On, f1,...,fm that supports exact-match and
// hyper-rectangle queries on any combination of dimensions.
//
// The implementation follows the classic design: per-dimension linear
// scales partition the key space into a grid; a directory maps each grid
// cell to a bucket; buckets split by refining one dimension's scale when
// they overflow, and cells may share buckets (the directory is allowed to
// be finer than the bucket partition). Buckets are persisted as records in
// a heap file so every access is charged to the simulated clock, matching
// the cost model of the rest of the system. As the paper notes, grid files
// degrade beyond three or four dimensions — New rejects higher arities, and
// the GMR manager falls back to conventional indexes there.
package gridfile

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"gomdb/internal/storage"
)

// MaxDims is the largest supported dimensionality (Section 3.3: grid files
// "are not well-suited to support more than three or four dimensions").
const MaxDims = 4

// bucketCapacity is the number of entries a bucket holds before splitting.
const bucketCapacity = 32

// Entry is one stored record: a key vector and an opaque payload.
type Entry struct {
	Key []float64
	Val any
}

// bucket is a leaf container. Several directory cells may point to the same
// bucket; region tracks the bucket's covering box in cell coordinates so
// splits can tell whether refining a dimension separates its contents.
type bucket struct {
	entries []Entry
	rid     storage.RID
}

// GridFile is a k-dimensional grid file.
type GridFile struct {
	k int
	// scales[d] holds the interior split points of dimension d, sorted.
	// Cell index i of dimension d covers [scales[d][i-1], scales[d][i]).
	scales [][]float64
	// dir maps flattened cell coordinates to bucket ids.
	dir []int
	// dims[d] = len(scales[d]) + 1 — the number of cells per dimension.
	dims    []int
	buckets []*bucket
	heap    *storage.HeapFile
	size    int
}

// New creates a k-dimensional grid file backed by pool.
func New(pool *storage.BufferPool, name string, k int) (*GridFile, error) {
	if k < 1 || k > MaxDims {
		return nil, fmt.Errorf("gridfile: %d dimensions unsupported (1..%d)", k, MaxDims)
	}
	g := &GridFile{
		k:      k,
		scales: make([][]float64, k),
		dims:   make([]int, k),
		heap:   storage.NewHeapFile(pool, "MDS:"+name),
	}
	for d := 0; d < k; d++ {
		g.dims[d] = 1
	}
	b := &bucket{}
	if err := g.writeBucket(b); err != nil {
		return nil, err
	}
	g.buckets = []*bucket{b}
	g.dir = []int{0}
	return g, nil
}

// Len returns the number of stored entries.
func (g *GridFile) Len() int { return g.size }

// Dims returns the dimensionality.
func (g *GridFile) Dims() int { return g.k }

// writeBucket persists a bucket's entries (payloads are not serialized —
// the record charges the I/O a real bucket write would; contents live in
// memory like the rest of the directory).
func (g *GridFile) writeBucket(b *bucket) error {
	rec := make([]byte, 8+len(b.entries)*8*g.k)
	binary.LittleEndian.PutUint64(rec, uint64(len(b.entries)))
	for i, e := range b.entries {
		for d, f := range e.Key {
			binary.LittleEndian.PutUint64(rec[8+(i*g.k+d)*8:], math.Float64bits(f))
		}
	}
	if b.rid.IsZero() {
		rid, err := g.heap.Insert(rec)
		if err != nil {
			return err
		}
		b.rid = rid
		return nil
	}
	rid, err := g.heap.Update(b.rid, rec)
	if err != nil {
		return err
	}
	b.rid = rid
	return nil
}

// touchBucket charges the read of a bucket page.
func (g *GridFile) touchBucket(b *bucket) {
	if !b.rid.IsZero() {
		_, _ = g.heap.Read(b.rid)
	}
}

// cellOf returns the per-dimension cell coordinates of a key; keys equal to
// a split point belong to the upper cell.
func (g *GridFile) cellOf(key []float64) []int {
	cell := make([]int, g.k)
	for d := 0; d < g.k; d++ {
		cell[d] = upperCell(g.scales[d], key[d])
	}
	return cell
}

// upperCell places key in cell i such that scales[i-1] <= key < scales[i].
func upperCell(scales []float64, key float64) int {
	return sort.Search(len(scales), func(i int) bool { return key < scales[i] })
}

// flatten converts cell coordinates to a directory index.
func (g *GridFile) flatten(cell []int) int {
	idx := 0
	for d := 0; d < g.k; d++ {
		idx = idx*g.dims[d] + cell[d]
	}
	return idx
}

// Insert stores an entry. Duplicate keys are allowed.
func (g *GridFile) Insert(key []float64, val any) error {
	if len(key) != g.k {
		return fmt.Errorf("gridfile: key arity %d, want %d", len(key), g.k)
	}
	kcopy := append([]float64{}, key...)
	for {
		bi := g.dir[g.flatten(g.cellOf(kcopy))]
		b := g.buckets[bi]
		if len(b.entries) < bucketCapacity {
			b.entries = append(b.entries, Entry{Key: kcopy, Val: val})
			g.size++
			return g.writeBucket(b)
		}
		if err := g.split(bi); err != nil {
			return err
		}
	}
}

// split refines the grid to relieve an overflowing bucket. It picks the
// dimension with the widest spread of key values in the bucket, adds the
// median as a split point (doubling the directory along that dimension),
// and redistributes the bucket's entries into two buckets.
func (g *GridFile) split(bi int) error {
	b := g.buckets[bi]
	// Choose the dimension whose values differ most within the bucket.
	bestD, bestSpread := -1, 0.0
	var bestMid float64
	for d := 0; d < g.k; d++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, e := range b.entries {
			if e.Key[d] < lo {
				lo = e.Key[d]
			}
			if e.Key[d] > hi {
				hi = e.Key[d]
			}
		}
		if hi-lo > bestSpread {
			bestSpread = hi - lo
			bestD = d
			vals := make([]float64, len(b.entries))
			for i, e := range b.entries {
				vals[i] = e.Key[d]
			}
			sort.Float64s(vals)
			bestMid = vals[len(vals)/2]
			if bestMid == vals[0] {
				// Median equals the minimum (skew): use the midpoint so the
				// lower part is non-empty.
				bestMid = (vals[0] + vals[len(vals)-1]) / 2
			}
		}
	}
	if bestD < 0 {
		return fmt.Errorf("gridfile: bucket of %d identical keys exceeds capacity", len(b.entries))
	}
	g.refine(bestD, bestMid)
	// Redistribute: create a sibling bucket; entries >= mid move there.
	nb := &bucket{}
	var keep []Entry
	for _, e := range b.entries {
		if e.Key[bestD] >= bestMid {
			nb.entries = append(nb.entries, e)
		} else {
			keep = append(keep, e)
		}
	}
	b.entries = keep
	g.buckets = append(g.buckets, nb)
	nbi := len(g.buckets) - 1
	// Point every cell that (a) currently maps to b and (b) lies at or
	// above mid in dimension bestD to the new bucket.
	splitCell := upperCell(g.scales[bestD], bestMid)
	g.forEachCell(func(cell []int, idx int) {
		if g.dir[idx] == bi && cell[bestD] >= splitCell {
			g.dir[idx] = nbi
		}
	})
	if err := g.writeBucket(b); err != nil {
		return err
	}
	return g.writeBucket(nb)
}

// refine adds a split point to dimension d, rebuilding the directory with
// the new granularity (cells on both sides of the new boundary initially
// share their previous bucket).
func (g *GridFile) refine(d int, split float64) {
	// Insert into the scale (ignore exact duplicates).
	pos := sort.SearchFloat64s(g.scales[d], split)
	if pos < len(g.scales[d]) && g.scales[d][pos] == split {
		return
	}
	g.scales[d] = append(g.scales[d], 0)
	copy(g.scales[d][pos+1:], g.scales[d][pos:])
	g.scales[d][pos] = split

	oldDims := append([]int{}, g.dims...)
	oldDir := g.dir
	g.dims[d]++
	total := 1
	for _, n := range g.dims {
		total *= n
	}
	g.dir = make([]int, total)
	g.forEachCell(func(cell []int, idx int) {
		oldCell := append([]int{}, cell...)
		if oldCell[d] > pos {
			oldCell[d]--
		}
		oldIdx := 0
		for dd := 0; dd < g.k; dd++ {
			oldIdx = oldIdx*oldDims[dd] + oldCell[dd]
		}
		g.dir[idx] = oldDir[oldIdx]
	})
}

// forEachCell iterates every directory cell.
func (g *GridFile) forEachCell(fn func(cell []int, idx int)) {
	cell := make([]int, g.k)
	var rec func(d int)
	idx := 0
	rec = func(d int) {
		if d == g.k {
			fn(cell, idx)
			idx++
			return
		}
		for i := 0; i < g.dims[d]; i++ {
			cell[d] = i
			rec(d + 1)
		}
	}
	rec(0)
}

// Delete removes one entry matching key and predicate ok (nil matches any
// payload). It reports whether an entry was removed.
func (g *GridFile) Delete(key []float64, ok func(any) bool) (bool, error) {
	if len(key) != g.k {
		return false, fmt.Errorf("gridfile: key arity %d, want %d", len(key), g.k)
	}
	bi := g.dir[g.flatten(g.cellOf(key))]
	b := g.buckets[bi]
	for i, e := range b.entries {
		if keysEqual(e.Key, key) && (ok == nil || ok(e.Val)) {
			b.entries = append(b.entries[:i], b.entries[i+1:]...)
			g.size--
			return true, g.writeBucket(b)
		}
	}
	return false, nil
}

func keysEqual(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Range is a per-dimension search interval; the zero value (with Any=true)
// matches everything — the "don't care" of the paper's QBE-style retrieval
// table.
type Range struct {
	Lo, Hi float64
	Any    bool
}

// Exact returns the range matching only v.
func Exact(v float64) Range { return Range{Lo: v, Hi: v} }

// Between returns the inclusive range [lo, hi].
func Between(lo, hi float64) Range { return Range{Lo: lo, Hi: hi} }

// Any matches the whole dimension.
func Any() Range { return Range{Any: true} }

// Search calls fn for every entry inside the hyper-rectangle. Only buckets
// whose grid region intersects the query are visited (and charged).
func (g *GridFile) Search(q []Range, fn func(Entry) bool) error {
	if len(q) != g.k {
		return fmt.Errorf("gridfile: query arity %d, want %d", len(q), g.k)
	}
	// Cell windows per dimension.
	loCell := make([]int, g.k)
	hiCell := make([]int, g.k)
	for d := 0; d < g.k; d++ {
		if q[d].Any {
			loCell[d], hiCell[d] = 0, g.dims[d]-1
			continue
		}
		loCell[d] = upperCell(g.scales[d], q[d].Lo)
		hiCell[d] = upperCell(g.scales[d], q[d].Hi)
	}
	visited := make(map[int]bool)
	cell := make([]int, g.k)
	stop := false
	var rec func(d int) error
	rec = func(d int) error {
		if stop {
			return nil
		}
		if d == g.k {
			bi := g.dir[g.flatten(cell)]
			if visited[bi] {
				return nil
			}
			visited[bi] = true
			b := g.buckets[bi]
			g.touchBucket(b)
			for _, e := range b.entries {
				match := true
				for dd := 0; dd < g.k; dd++ {
					if q[dd].Any {
						continue
					}
					if e.Key[dd] < q[dd].Lo || e.Key[dd] > q[dd].Hi {
						match = false
						break
					}
				}
				if match && !fn(e) {
					stop = true
					return nil
				}
			}
			return nil
		}
		for i := loCell[d]; i <= hiCell[d]; i++ {
			cell[d] = i
			if err := rec(d + 1); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0)
}

// Stats describes the structure for diagnostics.
type Stats struct {
	Entries   int
	Buckets   int
	DirCells  int
	ScaleLens []int
}

// Describe returns structural statistics.
func (g *GridFile) Describe() Stats {
	s := Stats{Entries: g.size, Buckets: len(g.buckets), DirCells: len(g.dir)}
	for d := 0; d < g.k; d++ {
		s.ScaleLens = append(s.ScaleLens, len(g.scales[d]))
	}
	return s
}

package gridfile

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gomdb/internal/storage"
)

func newGrid(t *testing.T, k int) *GridFile {
	t.Helper()
	clock := storage.NewClock()
	disk := storage.NewDisk(clock)
	pool := storage.NewPool(disk, 64)
	g, err := New(pool, "t", k)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDimensionLimits(t *testing.T) {
	clock := storage.NewClock()
	pool := storage.NewPool(storage.NewDisk(clock), 8)
	if _, err := New(pool, "t", 0); err == nil {
		t.Fatal("0 dims accepted")
	}
	if _, err := New(pool, "t", MaxDims+1); err == nil {
		t.Fatal("too many dims accepted (the paper's 3-4 dimension limit)")
	}
	if _, err := New(pool, "t", MaxDims); err != nil {
		t.Fatal(err)
	}
}

func TestInsertSearchExact(t *testing.T) {
	g := newGrid(t, 2)
	for i := 0; i < 500; i++ {
		if err := g.Insert([]float64{float64(i % 25), float64(i / 25)}, i); err != nil {
			t.Fatal(err)
		}
	}
	if g.Len() != 500 {
		t.Fatalf("len = %d", g.Len())
	}
	// Exact-match query.
	found := 0
	err := g.Search([]Range{Exact(7), Exact(3)}, func(e Entry) bool {
		found++
		if e.Val.(int) != 7+3*25 {
			t.Fatalf("wrong payload %v", e.Val)
		}
		return true
	})
	if err != nil || found != 1 {
		t.Fatalf("exact search found %d, err %v", found, err)
	}
	// Partially specified query (the paper's QBE '?' / '-' columns).
	found = 0
	if err := g.Search([]Range{Exact(7), Any()}, func(Entry) bool { found++; return true }); err != nil {
		t.Fatal(err)
	}
	if found != 20 {
		t.Fatalf("column query found %d, want 20", found)
	}
	// Box query.
	found = 0
	if err := g.Search([]Range{Between(5, 9), Between(0, 1)}, func(Entry) bool { found++; return true }); err != nil {
		t.Fatal(err)
	}
	if found != 10 {
		t.Fatalf("box query found %d, want 10", found)
	}
	// Early stop.
	found = 0
	if err := g.Search([]Range{Any(), Any()}, func(Entry) bool { found++; return found < 5 }); err != nil {
		t.Fatal(err)
	}
	if found != 5 {
		t.Fatalf("early stop at %d", found)
	}
	// Structure actually split.
	st := g.Describe()
	if st.Buckets < 2 || st.DirCells < 2 {
		t.Fatalf("no splits happened: %+v", st)
	}
}

func TestDelete(t *testing.T) {
	g := newGrid(t, 2)
	for i := 0; i < 100; i++ {
		if err := g.Insert([]float64{float64(i), 0}, i); err != nil {
			t.Fatal(err)
		}
	}
	ok, err := g.Delete([]float64{42, 0}, nil)
	if err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	ok, _ = g.Delete([]float64{42, 0}, nil)
	if ok {
		t.Fatal("double delete succeeded")
	}
	// Payload-filtered delete among duplicates.
	_ = g.Insert([]float64{1, 0}, "a")
	_ = g.Insert([]float64{1, 0}, "b")
	ok, _ = g.Delete([]float64{1, 0}, func(v any) bool { s, is := v.(string); return is && s == "b" })
	if !ok {
		t.Fatal("filtered delete failed")
	}
	n := 0
	_ = g.Search([]Range{Exact(1), Exact(0)}, func(e Entry) bool {
		if s, is := e.Val.(string); is && s == "b" {
			t.Fatal("wrong duplicate deleted")
		}
		n++
		return true
	})
	if n != 2 { // the int payload 1 and "a"
		t.Fatalf("found %d entries at (1,0)", n)
	}
}

func TestDuplicateKeysOverflowError(t *testing.T) {
	g := newGrid(t, 2)
	var err error
	for i := 0; i < bucketCapacity+1; i++ {
		err = g.Insert([]float64{5, 5}, i)
		if err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("unbounded duplicate key insertion accepted")
	}
}

// TestQuickAgainstReference compares the grid file against a brute-force
// reference under random insert/delete/search workloads in 2 and 3 dims.
func TestQuickAgainstReference(t *testing.T) {
	for _, k := range []int{2, 3, 4} {
		k := k
		check := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			g := newGrid(t, k)
			type refEntry struct {
				key []float64
				val int
			}
			var ref []refEntry
			randKey := func() []float64 {
				key := make([]float64, k)
				for d := range key {
					key[d] = float64(rng.Intn(40))
				}
				return key
			}
			for i := 0; i < 400; i++ {
				switch rng.Intn(5) {
				case 0, 1, 2: // insert
					key := randKey()
					if err := g.Insert(key, i); err != nil {
						return false
					}
					ref = append(ref, refEntry{key, i})
				case 3: // delete
					if len(ref) == 0 {
						continue
					}
					j := rng.Intn(len(ref))
					want := ref[j].val
					ok, err := g.Delete(ref[j].key, func(v any) bool { return v.(int) == want })
					if err != nil || !ok {
						return false
					}
					ref = append(ref[:j], ref[j+1:]...)
				case 4: // box search
					q := make([]Range, k)
					for d := range q {
						switch rng.Intn(3) {
						case 0:
							q[d] = Any()
						case 1:
							q[d] = Exact(float64(rng.Intn(40)))
						default:
							lo := float64(rng.Intn(40))
							q[d] = Between(lo, lo+float64(rng.Intn(10)))
						}
					}
					got := map[int]bool{}
					if err := g.Search(q, func(e Entry) bool { got[e.Val.(int)] = true; return true }); err != nil {
						return false
					}
					want := 0
					for _, re := range ref {
						match := true
						for d := range q {
							if q[d].Any {
								continue
							}
							if re.key[d] < q[d].Lo || re.key[d] > q[d].Hi {
								match = false
								break
							}
						}
						if match {
							want++
							if !got[re.val] {
								return false
							}
						}
					}
					if len(got) != want {
						return false
					}
				}
			}
			return g.Len() == len(ref)
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

func TestSearchArityMismatch(t *testing.T) {
	g := newGrid(t, 2)
	if err := g.Insert([]float64{1}, nil); err == nil {
		t.Fatal("wrong insert arity accepted")
	}
	if err := g.Search([]Range{Any()}, func(Entry) bool { return true }); err == nil {
		t.Fatal("wrong search arity accepted")
	}
	if _, err := g.Delete([]float64{1, 2, 3}, nil); err == nil {
		t.Fatal("wrong delete arity accepted")
	}
}

package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

// The protocol's hostile-input contract, held by fuzzing: the decoders
// never panic, never hang, never allocate unboundedly, and classify every
// malformed input with a structured *Error. Seed corpora live under
// testdata/fuzz/; run the full campaign with `make fuzz-wire`.

// FuzzDecodeFrame throws raw bytes at the frame decoder (slice and stream
// forms) and checks the decode → encode → decode fixed point on success.
func FuzzDecodeFrame(f *testing.F) {
	for _, fx := range fixtureFrames() {
		f.Add(EncodeFrame(fx))
	}
	valid := EncodeFrame(&Frame{Op: OpPing, ReqID: 7})
	f.Add(valid[:10])                       // truncated header
	f.Add(append([]byte("XOMW"), valid...)) // bad magic
	bad := append([]byte(nil), valid...)
	bad[4] = 99 // version skew
	f.Add(bad)
	crc := append([]byte(nil), valid...)
	crc[len(crc)-1] ^= 0xFF // corrupt CRC
	f.Add(crc)
	huge := append([]byte(nil), valid[:headerSize]...)
	huge[14], huge[15], huge[16], huge[17] = 0xFF, 0xFF, 0xFF, 0xFF // hostile length
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		if err != nil {
			var we *Error
			if !errors.As(err, &we) {
				t.Fatalf("DecodeFrame error is not structured: %v", err)
			}
			if fr != nil {
				t.Fatal("frame returned alongside error")
			}
		} else {
			if n <= 0 || n > len(data) {
				t.Fatalf("consumed %d of %d bytes", n, len(data))
			}
			// Fixed point: re-encoding the decoded frame must reproduce the
			// consumed prefix exactly.
			if enc := EncodeFrame(fr); !bytes.Equal(enc, data[:n]) {
				t.Fatalf("re-encode drifted:\n got % x\nwant % x", enc, data[:n])
			}
		}
		// The stream decoder must agree with the slice decoder.
		sf, serr := ReadFrame(bytes.NewReader(data))
		if (err == nil) != (serr == nil) {
			t.Fatalf("DecodeFrame err=%v but ReadFrame err=%v", err, serr)
		}
		if err == nil && (sf.Op != fr.Op || sf.ReqID != fr.ReqID || !bytes.Equal(sf.Payload, fr.Payload)) {
			t.Fatal("stream and slice decoders disagree")
		}
		if serr != nil && serr != io.EOF {
			var we *Error
			if !errors.As(serr, &we) {
				t.Fatalf("ReadFrame error is not structured: %v", serr)
			}
		}
	})
}

// FuzzDecodeRequest throws (opcode, payload) pairs at the payload decoders
// — request and response interpretation both — and checks the decode →
// encode → decode fixed point on success.
func FuzzDecodeRequest(f *testing.F) {
	for _, fx := range fixtureFrames() {
		f.Add(byte(fx.Op), fx.Payload)
	}
	// Hostile 64-bit varint lengths (the class that crashed the object
	// value decoder before its bounds hardening).
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}
	f.Add(byte(OpCall), append([]byte{1, 'f'}, huge...))
	f.Add(byte(OpQuery), append([]byte{0}, huge...))
	f.Add(byte(RespChunk), append([]byte{byte(StreamOIDs)}, huge...))
	f.Add(byte(OpBatchOp), []byte{byte(OpBatchOp)}) // nesting attempt

	f.Fuzz(func(t *testing.T, op byte, payload []byte) {
		done := make(chan struct{})
		go func() {
			defer close(done)
			if req, err := DecodeRequest(Opcode(op), payload); err == nil {
				enc, eerr := EncodeRequest(req)
				if eerr != nil {
					t.Errorf("decoded request does not re-encode: %v", eerr)
					return
				}
				// Canonical fixed point: the re-encoding must decode to the
				// same re-encoding (map key order may legitimately differ
				// from the fuzzer's payload, so compare one step removed).
				req2, derr := DecodeRequest(Opcode(op), enc)
				if derr != nil {
					t.Errorf("canonical encoding does not decode: %v", derr)
					return
				}
				enc2, _ := EncodeRequest(req2)
				if !bytes.Equal(enc, enc2) {
					t.Errorf("canonical encoding not a fixed point:\n got % x\nwant % x", enc2, enc)
				}
			} else {
				var we *Error
				if !errors.As(err, &we) {
					t.Errorf("DecodeRequest error is not structured: %v", err)
				}
			}
			if resp, err := DecodeResponse(Opcode(op), payload); err == nil {
				if _, eerr := EncodeResponse(resp); eerr != nil {
					t.Errorf("decoded response does not re-encode: %v", eerr)
				}
			} else {
				var we *Error
				if !errors.As(err, &we) {
					t.Errorf("DecodeResponse error is not structured: %v", err)
				}
			}
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("payload decoder hung")
		}
	})
}

package wire

import (
	"bytes"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"gomdb/internal/core"
	"gomdb/internal/object"
)

// fixtureFrames is the golden frame set: one frame per interesting payload
// shape. The encodings are pinned byte-for-byte under testdata/golden/ —
// regenerate with GOLDEN_UPDATE=1 after a deliberate protocol change (which
// must also bump Version).
func fixtureFrames() []*Frame {
	f64p := func(v float64) *float64 { return &v }
	valp := func(v object.Value) *object.Value { return &v }
	reqs := []*Request{
		{Op: OpHello, WireVersion: Version, Token: "s3cret"},
		{Op: OpPing},
		{Op: OpQuery, Name: "range c: Cuboid retrieve c where c.volume > $v",
			Params: map[string]object.Value{"v": object.Float(20.0), "w": object.Int(3)}},
		{Op: OpCall, Name: "Cuboid.volume", Args: []object.Value{object.Ref(42)}},
		{Op: OpGetAttr, OID: 7, Attr: "X"},
		{Op: OpSet, OID: 7, Attr: "X", Val: object.Float(1.5)},
		{Op: OpNew, Name: "Vertex", Args: []object.Value{object.Float(0), object.Float(1), object.Float(2)}},
		{Op: OpNewSet, Name: "Workpieces", Args: []object.Value{object.Ref(3), object.Ref(4)}},
		{Op: OpDelete, OID: 99},
		{Op: OpInsert, OID: 5, Val: object.Ref(6)},
		{Op: OpRemove, OID: 5, Val: object.Ref(6)},
		{Op: OpRetrieve, Name: "<<volume,weight>>", Specs: []core.FieldSpec{
			{Exact: valp(object.Ref(11))}, {Lo: f64p(1), Hi: f64p(9)}, {}}},
		{Op: OpBackward, Name: "Cuboid.volume", Lo: 20, Hi: 40},
		{Op: OpSum, Name: "Cuboid.weight", HasOIDs: true, OIDs: []object.OID{2, 3, 5}},
		{Op: OpSum, Name: "Cuboid.weight"},
		{Op: OpExtension, Name: "Cuboid"},
		{Op: OpMaterialize, Mat: MatOptions{Name: "vol", Funcs: []string{"Cuboid.volume"},
			Strategy: uint8(core.Deferred), Mode: uint8(core.ModeInfoHiding),
			Complete: true, UseMDS: true, MaxEntries: 128}},
		{Op: OpDematerialize, Name: "vol"},
		{Op: OpFlush},
		{Op: OpBatchBegin},
		{Op: OpBatchOp, Sub: &Request{Op: OpSet, OID: 8, Attr: "Y", Val: object.Float(2.5)}},
		{Op: OpBatchCommit, Abort: true},
		{Op: OpSimSeconds},
		{Op: OpGoodbye},
	}
	resps := []*Response{
		{Op: RespHello, WireVersion: Version, Shards: 4},
		{Op: RespAck},
		{Op: RespValue, Val: object.TupleVal("Vertex", object.Float(1), object.Float(2), object.Float(3))},
		{Op: RespOID, OID: 123},
		{Op: RespFloat, F: 524.25},
		{Op: RespError, ErrCode: CodeEngine, ErrMsg: "core: not materialized"},
		{Op: RespStreamBegin, Stream: StreamQuery, Columns: []string{"c", "c.volume"}},
		{Op: RespChunk, Stream: StreamQuery, Rows: [][]object.Value{
			{object.Ref(1), object.Float(24)}, {object.Ref(2), object.Float(36)}}},
		{Op: RespChunk, Stream: StreamRows, GRows: []core.Row{
			{Args: []object.Value{object.Ref(1)}, Results: []object.Value{object.Float(24)}, Valid: []bool{true, false}}}},
		{Op: RespChunk, Stream: StreamMatches, Matches: []core.Match{
			{Args: []object.Value{object.Ref(1)}, Result: object.Float(24)}}},
		{Op: RespChunk, Stream: StreamOIDs, OIDs: []object.OID{1, 2, 3}},
		{Op: RespDone, Total: 3},
	}
	var frames []*Frame
	for i, r := range reqs {
		p, err := EncodeRequest(r)
		if err != nil {
			panic(err)
		}
		frames = append(frames, &Frame{Op: r.Op, ReqID: uint64(i + 1), Payload: p})
	}
	for i, r := range resps {
		p, err := EncodeResponse(r)
		if err != nil {
			panic(err)
		}
		frames = append(frames, &Frame{Op: r.Op, ReqID: uint64(100 + i), Payload: p})
	}
	return frames
}

const goldenPath = "testdata/golden/frames.hex"

// TestGoldenFrames pins the byte-level encoding of every fixture frame.
// The golden file is one hex line per frame; GOLDEN_UPDATE=1 regenerates it.
func TestGoldenFrames(t *testing.T) {
	frames := fixtureFrames()
	var lines []string
	for _, f := range frames {
		lines = append(lines, hex.EncodeToString(EncodeFrame(f)))
	}
	got := strings.Join(lines, "\n") + "\n"
	if os.Getenv("GOLDEN_UPDATE") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d frames)", goldenPath, len(frames))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with GOLDEN_UPDATE=1 to create): %v", err)
	}
	wantLines := strings.Split(strings.TrimRight(string(want), "\n"), "\n")
	if len(wantLines) != len(frames) {
		t.Fatalf("golden has %d frames, fixtures have %d — protocol changed without Version bump?", len(wantLines), len(frames))
	}
	for i, f := range frames {
		if lines[i] != wantLines[i] {
			t.Errorf("frame %d (%s) encoding drifted:\n got %s\nwant %s", i, f.Op, lines[i], wantLines[i])
		}
	}
	// And the reverse direction: every golden line must decode back to the
	// fixture frame exactly.
	for i, line := range wantLines {
		raw, err := hex.DecodeString(line)
		if err != nil {
			t.Fatalf("golden line %d: %v", i, err)
		}
		f, n, err := DecodeFrame(raw)
		if err != nil {
			t.Fatalf("golden frame %d does not decode: %v", i, err)
		}
		if n != len(raw) {
			t.Fatalf("golden frame %d: consumed %d of %d bytes", i, n, len(raw))
		}
		if f.Op != frames[i].Op || f.ReqID != frames[i].ReqID || !bytes.Equal(f.Payload, frames[i].Payload) {
			t.Errorf("golden frame %d decoded to %+v, want %+v", i, f, frames[i])
		}
	}
}

// TestRequestRoundTrip: encode → decode is the identity for every request
// fixture (the union fields that matter for the opcode survive).
func TestRequestRoundTrip(t *testing.T) {
	for _, f := range fixtureFrames() {
		if f.Op >= RespHello {
			continue
		}
		r, err := DecodeRequest(f.Op, f.Payload)
		if err != nil {
			t.Fatalf("%s: decode: %v", f.Op, err)
		}
		p2, err := EncodeRequest(r)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", f.Op, err)
		}
		if !bytes.Equal(f.Payload, p2) {
			t.Errorf("%s: round trip drifted:\n got % x\nwant % x", f.Op, p2, f.Payload)
		}
	}
}

// TestResponseRoundTrip: same property for responses, plus struct equality.
func TestResponseRoundTrip(t *testing.T) {
	for _, f := range fixtureFrames() {
		if f.Op < RespHello {
			continue
		}
		r, err := DecodeResponse(f.Op, f.Payload)
		if err != nil {
			t.Fatalf("%s: decode: %v", f.Op, err)
		}
		p2, err := EncodeResponse(r)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", f.Op, err)
		}
		if !bytes.Equal(f.Payload, p2) {
			t.Errorf("%s: round trip drifted:\n got % x\nwant % x", f.Op, p2, f.Payload)
		}
	}
}

// TestFrameViolations: every malformed-frame class is rejected with its
// designated code, via both the slice and the stream decoder.
func TestFrameViolations(t *testing.T) {
	valid := EncodeFrame(&Frame{Op: OpPing, ReqID: 9})
	mut := func(mutate func(b []byte) []byte) []byte {
		b := append([]byte(nil), valid...)
		return mutate(b)
	}
	cases := []struct {
		name string
		buf  []byte
		code Code
	}{
		{"empty", nil, CodeMalformed},
		{"truncated header", valid[:10], CodeMalformed},
		{"truncated payload", EncodeFrame(&Frame{Op: OpHello, ReqID: 1, Payload: []byte("xxxxxxxx")})[:20], CodeMalformed},
		{"bad magic", mut(func(b []byte) []byte { b[0] = 'X'; return b }), CodeBadMagic},
		{"version skew", mut(func(b []byte) []byte { b[4] = Version + 1; return b }), CodeVersion},
		{"unknown opcode", mut(func(b []byte) []byte { b[5] = 0x3F; return b }), CodeUnknownOp},
		{"oversized length", mut(func(b []byte) []byte {
			b[14], b[15], b[16], b[17] = 0xFF, 0xFF, 0xFF, 0xFF
			return b
		}), CodeTooLarge},
		{"corrupt crc", mut(func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }), CodeCRC},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := DecodeFrame(tc.buf)
			if CodeOf(err) != tc.code {
				t.Errorf("DecodeFrame: code %v, want %v (err: %v)", CodeOf(err), tc.code, err)
			}
			_, rerr := ReadFrame(bytes.NewReader(tc.buf))
			if len(tc.buf) == 0 {
				if rerr != io.EOF {
					t.Errorf("ReadFrame(empty) = %v, want io.EOF", rerr)
				}
			} else if CodeOf(rerr) != tc.code {
				t.Errorf("ReadFrame: code %v, want %v (err: %v)", CodeOf(rerr), tc.code, rerr)
			}
		})
	}
}

// TestErrorStructure: wire errors match by code under errors.Is, unwrap
// their cause, and CodeOf classifies foreign errors as engine errors.
func TestErrorStructure(t *testing.T) {
	cause := fmt.Errorf("boom")
	err := Wrap(CodeCRC, "checksum", cause)
	if !errors.Is(err, &Error{Code: CodeCRC}) {
		t.Error("errors.Is by code failed")
	}
	if errors.Is(err, &Error{Code: CodeAuth}) {
		t.Error("errors.Is matched a different code")
	}
	if !errors.Is(err, cause) {
		t.Error("unwrap chain lost the cause")
	}
	if CodeOf(fmt.Errorf("engine said no")) != CodeEngine {
		t.Error("foreign errors must classify as CodeEngine")
	}
	if CodeOf(nil) != CodeOK {
		t.Error("nil must classify as CodeOK")
	}
	resp := ErrResponse(err)
	if resp.ErrCode != CodeCRC {
		t.Errorf("ErrResponse code = %v", resp.ErrCode)
	}
	back := resp.Err()
	if CodeOf(back) != CodeCRC {
		t.Errorf("Err() round trip code = %v", CodeOf(back))
	}
}

// TestStreamChunkBounds: a chunk whose row count exceeds the remaining
// payload fails instead of allocating; regression guard for the count()
// bounds rule.
func TestStreamChunkBounds(t *testing.T) {
	payload := []byte{byte(StreamOIDs), 0xFF, 0xFF, 0x7F} // count 2^21-ish, 0 rows
	if _, err := DecodeResponse(RespChunk, payload); CodeOf(err) != CodeMalformed {
		t.Fatalf("hostile chunk count: %v", err)
	}
	// An overlong varint (more than 64 bits of payload) is malformed; a
	// merely huge OID is well-formed wire-wise and rejected by the engine.
	req := bytes.Repeat([]byte{0xFF}, 11)
	if _, err := DecodeRequest(OpDelete, req); CodeOf(err) != CodeMalformed {
		t.Fatalf("overlong OID varint: %v", err)
	}
}

// TestBatchOpValidation: only elementary updates and calls may ride inside
// a batch, and batch ops do not nest.
func TestBatchOpValidation(t *testing.T) {
	if _, err := EncodeRequest(&Request{Op: OpBatchOp, Sub: &Request{Op: OpFlush}}); CodeOf(err) != CodeBadRequest {
		t.Errorf("encode non-batchable sub-op: %v", err)
	}
	if _, err := EncodeRequest(&Request{Op: OpBatchOp}); CodeOf(err) != CodeBadRequest {
		t.Errorf("encode empty batch op: %v", err)
	}
	payload := []byte{byte(OpBatchOp)} // nested batch op
	if _, err := DecodeRequest(OpBatchOp, payload); err == nil {
		t.Error("nested batch op accepted")
	}
	payload = []byte{byte(OpFlush)}
	if _, err := DecodeRequest(OpBatchOp, payload); CodeOf(err) != CodeBadRequest {
		t.Errorf("decode non-batchable sub-op: %v", err)
	}
}

// TestTrailingGarbage: a payload with trailing bytes after a valid body is
// malformed — the peer disagrees about the encoding and silently ignoring
// the tail would mask it.
func TestTrailingGarbage(t *testing.T) {
	p, err := EncodeRequest(&Request{Op: OpDelete, OID: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRequest(OpDelete, append(p, 0x00)); CodeOf(err) != CodeMalformed {
		t.Errorf("trailing garbage accepted: %v", err)
	}
	rp, err := EncodeResponse(&Response{Op: RespOID, OID: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeResponse(RespOID, append(rp, 0x00)); CodeOf(err) != CodeMalformed {
		t.Errorf("trailing response garbage accepted: %v", err)
	}
}

// TestDecodeFrameDoesNotAliasInput: mutating the input buffer after a
// decode must not change the frame (sessions reuse read buffers).
func TestDecodeFrameDoesNotAliasInput(t *testing.T) {
	raw := EncodeFrame(&Frame{Op: OpHello, ReqID: 1, Payload: []byte("token")})
	f, _, err := DecodeFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	copy(raw, bytes.Repeat([]byte{0xAA}, len(raw)))
	if string(f.Payload) != "token" {
		t.Fatal("decoded frame aliases the input buffer")
	}
}

// TestRequestReflectRoundTrip: decoded requests compare structurally equal
// to the originals (not just byte-equal encodings) for a representative
// subset, catching field-mapping mistakes the encoding identity would hide.
func TestRequestReflectRoundTrip(t *testing.T) {
	orig := &Request{Op: OpSum, Name: "Cuboid.weight", HasOIDs: true, OIDs: []object.OID{2, 3}}
	p, err := EncodeRequest(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRequest(OpSum, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Errorf("got %+v, want %+v", got, orig)
	}
}

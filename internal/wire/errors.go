// Package wire implements the versioned, length-prefixed binary protocol
// spoken between cmd/gomserve and the client package.
//
// A conversation is a sequence of frames. Every frame carries a fixed
// 18-byte header — magic, protocol version, opcode, request id, payload
// length — followed by the payload and a CRC32-C trailer over the payload
// bytes:
//
//	offset  size  field
//	0       4     magic 0x474F4D57 ("GOMW"), big endian
//	4       1     protocol version (Version)
//	5       1     opcode
//	6       8     request id, big endian (echoed verbatim in responses)
//	14      4     payload length, big endian (<= MaxPayload)
//	18      n     payload (opcode-specific, see payload.go)
//	18+n    4     CRC32 (Castagnoli) of the payload bytes, big endian
//
// Malformed input of any shape — bad magic, version skew, oversized or
// truncated frames, corrupt CRCs, unknown opcodes, garbage payloads — is
// answered with a structured *Error carrying a stable machine-readable Code;
// the decoder never panics and never hangs (the frame length is bounded
// before any allocation). The fuzz suite under this package holds it to
// that.
package wire

import (
	"errors"
	"fmt"
)

// Code is a stable, machine-readable protocol error code. Codes travel over
// the wire inside RespError payloads, so their numeric values are part of
// the protocol and must never be reordered — add new codes at the end.
type Code uint16

const (
	// CodeOK is the zero code; it never accompanies an error.
	CodeOK Code = 0
	// CodeMalformed: the frame or payload does not parse (truncated,
	// trailing garbage, bad counts).
	CodeMalformed Code = 1
	// CodeBadMagic: the frame does not start with the protocol magic; the
	// peer is not speaking this protocol at all.
	CodeBadMagic Code = 2
	// CodeVersion: the frame's protocol version is not supported.
	CodeVersion Code = 3
	// CodeTooLarge: the declared payload length exceeds MaxPayload.
	CodeTooLarge Code = 4
	// CodeCRC: the payload checksum does not match.
	CodeCRC Code = 5
	// CodeUnknownOp: the opcode is not part of the protocol.
	CodeUnknownOp Code = 6
	// CodeBadRequest: the payload parses but the request is semantically
	// invalid (e.g. a batch sub-operation outside a batch, a non-batchable
	// opcode inside OpBatchOp).
	CodeBadRequest Code = 7
	// CodeAuth: the handshake token was missing or wrong.
	CodeAuth Code = 8
	// CodeBatch: batch-lifecycle violation (begin while open, op/commit
	// while closed).
	CodeBatch Code = 9
	// CodeShutdown: the server is draining and accepts no new requests.
	CodeShutdown Code = 10
	// CodeEngine: the engine rejected the operation; the message carries
	// the engine error text.
	CodeEngine Code = 11
	// CodeBusy: the server is at its connection limit; try again later.
	CodeBusy Code = 12
)

var codeNames = map[Code]string{
	CodeOK:         "ok",
	CodeMalformed:  "malformed",
	CodeBadMagic:   "bad_magic",
	CodeVersion:    "version",
	CodeTooLarge:   "too_large",
	CodeCRC:        "crc",
	CodeUnknownOp:  "unknown_op",
	CodeBadRequest: "bad_request",
	CodeAuth:       "auth",
	CodeBatch:      "batch",
	CodeShutdown:   "shutdown",
	CodeEngine:     "engine",
	CodeBusy:       "busy",
}

func (c Code) String() string {
	if s, ok := codeNames[c]; ok {
		return s
	}
	return fmt.Sprintf("code(%d)", uint16(c))
}

// Error is the structured protocol error: a stable Code for programmatic
// handling, a human-readable message, and an optional underlying cause.
// Errors with the same Code match under errors.Is, so callers can write
//
//	if errors.Is(err, &wire.Error{Code: wire.CodeCRC}) { ... }
//
// or, more conveniently, compare wire.CodeOf(err).
type Error struct {
	Code Code
	Msg  string
	Err  error
}

func (e *Error) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("wire: [%s] %s: %v", e.Code, e.Msg, e.Err)
	}
	return fmt.Sprintf("wire: [%s] %s", e.Code, e.Msg)
}

// Unwrap returns the underlying cause (may be nil).
func (e *Error) Unwrap() error { return e.Err }

// Is matches any *Error carrying the same Code, so sentinel comparisons
// work without shared pointer identity.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	return ok && t.Code == e.Code
}

// Errf constructs an *Error with a formatted message.
func Errf(code Code, format string, args ...any) *Error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// Wrap constructs an *Error around an underlying cause.
func Wrap(code Code, msg string, err error) *Error {
	return &Error{Code: code, Msg: msg, Err: err}
}

// CodeOf extracts the protocol code from err, or CodeOK when err is nil and
// CodeEngine when err carries no wire code at all (every non-protocol error
// surfaced to a client is an engine error by definition).
func CodeOf(err error) Code {
	if err == nil {
		return CodeOK
	}
	var we *Error
	if errors.As(err, &we) {
		return we.Code
	}
	return CodeEngine
}

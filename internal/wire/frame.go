package wire

import (
	"encoding/binary"
	"hash/crc32"
	"io"
)

const (
	// Magic opens every frame: "GOMW" big endian.
	Magic uint32 = 0x474F4D57
	// Version is the protocol version this package speaks. A frame with a
	// different version is rejected with CodeVersion — there is no
	// negotiation below the Hello handshake.
	Version uint8 = 1
	// MaxPayload bounds a frame payload (16 MiB). The bound is enforced
	// before any payload allocation, so a hostile length prefix cannot make
	// the decoder allocate or hang.
	MaxPayload = 16 << 20

	headerSize  = 18
	trailerSize = 4
)

// castagnoli is the CRC32-C table used for every payload checksum.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Opcode identifies a frame's request or response kind. Opcode values are
// part of the protocol; never reorder, only append.
type Opcode uint8

// Request opcodes (client → server).
const (
	// OpHello opens a session: protocol version + auth token.
	OpHello Opcode = 0x01
	// OpPing is a no-op liveness probe.
	OpPing Opcode = 0x02
	// OpGoodbye announces an orderly client close.
	OpGoodbye Opcode = 0x03
	// OpQuery runs a GOMql statement with named parameters.
	OpQuery Opcode = 0x04
	// OpCall invokes a function or operation (forward query when
	// materialized).
	OpCall Opcode = 0x05
	// OpGetAttr reads one attribute.
	OpGetAttr Opcode = 0x06
	// OpSet performs the elementary update oid.set_attr(v).
	OpSet Opcode = 0x07
	// OpNew creates a tuple-structured instance.
	OpNew Opcode = 0x08
	// OpNewSet creates a set- or list-structured instance.
	OpNewSet Opcode = 0x09
	// OpDelete removes an object.
	OpDelete Opcode = 0x0A
	// OpInsert performs set.insert(elem).
	OpInsert Opcode = 0x0B
	// OpRemove performs set.remove(elem).
	OpRemove Opcode = 0x0C
	// OpRetrieve answers a tabular GMR query (streamed response).
	OpRetrieve Opcode = 0x0D
	// OpBackward answers a backward range query (streamed response).
	OpBackward Opcode = 0x0E
	// OpSum aggregates a materialized function.
	OpSum Opcode = 0x0F
	// OpExtension returns a type extension (streamed response).
	OpExtension Opcode = 0x10
	// OpMaterialize creates a GMR.
	OpMaterialize Opcode = 0x11
	// OpDematerialize drops a GMR.
	OpDematerialize Opcode = 0x12
	// OpFlush drains the deferred-rematerialization queue.
	OpFlush Opcode = 0x13
	// OpBatchBegin opens an interactive update batch (exclusive engine
	// lock held server-side until OpBatchCommit or disconnect).
	OpBatchBegin Opcode = 0x14
	// OpBatchOp routes one sub-operation through the open batch.
	OpBatchOp Opcode = 0x15
	// OpBatchCommit closes the open batch (flush point); the abort flag
	// marks the batch failed without undoing applied updates, matching the
	// embedded Batch contract.
	OpBatchCommit Opcode = 0x16
	// OpSimSeconds reads the simulated-work clock.
	OpSimSeconds Opcode = 0x17
)

// Response opcodes (server → client).
const (
	// RespHello acknowledges the handshake.
	RespHello Opcode = 0x41
	// RespAck acknowledges a request with no result payload.
	RespAck Opcode = 0x42
	// RespValue carries one Value result.
	RespValue Opcode = 0x43
	// RespOID carries one OID result.
	RespOID Opcode = 0x44
	// RespFloat carries one float64 result.
	RespFloat Opcode = 0x45
	// RespError carries a structured error (code + message).
	RespError Opcode = 0x46
	// RespStreamBegin opens a chunked result stream.
	RespStreamBegin Opcode = 0x47
	// RespChunk carries one bounded slice of a result stream.
	RespChunk Opcode = 0x48
	// RespDone closes a result stream with the total row count.
	RespDone Opcode = 0x49
)

var opcodeNames = map[Opcode]string{
	OpHello: "Hello", OpPing: "Ping", OpGoodbye: "Goodbye",
	OpQuery: "Query", OpCall: "Call", OpGetAttr: "GetAttr", OpSet: "Set",
	OpNew: "New", OpNewSet: "NewSet", OpDelete: "Delete",
	OpInsert: "Insert", OpRemove: "Remove",
	OpRetrieve: "Retrieve", OpBackward: "Backward", OpSum: "Sum",
	OpExtension: "Extension", OpMaterialize: "Materialize",
	OpDematerialize: "Dematerialize", OpFlush: "Flush",
	OpBatchBegin: "BatchBegin", OpBatchOp: "BatchOp", OpBatchCommit: "BatchCommit",
	OpSimSeconds: "SimSeconds",
	RespHello:    "RespHello", RespAck: "RespAck", RespValue: "RespValue",
	RespOID: "RespOID", RespFloat: "RespFloat", RespError: "RespError",
	RespStreamBegin: "RespStreamBegin", RespChunk: "RespChunk", RespDone: "RespDone",
}

func (op Opcode) String() string {
	if s, ok := opcodeNames[op]; ok {
		return s
	}
	return "Opcode(" + itoa(uint64(op)) + ")"
}

// Known reports whether op is part of the protocol.
func (op Opcode) Known() bool { _, ok := opcodeNames[op]; return ok }

// itoa avoids strconv in the hot path error strings.
func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// Frame is one protocol frame. Payload is the opcode-specific body; see
// payload.go for its encoding.
type Frame struct {
	Op      Opcode
	ReqID   uint64
	Payload []byte
}

// AppendFrame appends the encoded form of f to dst and returns the extended
// slice.
func AppendFrame(dst []byte, f *Frame) []byte {
	dst = binary.BigEndian.AppendUint32(dst, Magic)
	dst = append(dst, Version, byte(f.Op))
	dst = binary.BigEndian.AppendUint64(dst, f.ReqID)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.Payload)))
	dst = append(dst, f.Payload...)
	return binary.BigEndian.AppendUint32(dst, crc32.Checksum(f.Payload, castagnoli))
}

// EncodeFrame returns the encoded form of f.
func EncodeFrame(f *Frame) []byte {
	return AppendFrame(make([]byte, 0, headerSize+len(f.Payload)+trailerSize), f)
}

// DecodeFrame decodes one frame from the front of buf, returning the frame
// and the number of bytes consumed. It never panics and never allocates
// more than the (bounds-checked) payload length. Errors carry protocol
// codes: CodeMalformed (truncated), CodeBadMagic, CodeVersion,
// CodeTooLarge, CodeCRC, CodeUnknownOp.
func DecodeFrame(buf []byte) (*Frame, int, error) {
	if len(buf) < headerSize {
		return nil, 0, Errf(CodeMalformed, "truncated header: %d of %d bytes", len(buf), headerSize)
	}
	if m := binary.BigEndian.Uint32(buf); m != Magic {
		return nil, 0, Errf(CodeBadMagic, "bad magic 0x%08x", m)
	}
	if v := buf[4]; v != Version {
		return nil, 0, Errf(CodeVersion, "protocol version %d, want %d", v, Version)
	}
	op := Opcode(buf[5])
	if !op.Known() {
		return nil, 0, Errf(CodeUnknownOp, "unknown opcode 0x%02x", byte(op))
	}
	reqID := binary.BigEndian.Uint64(buf[6:])
	n := binary.BigEndian.Uint32(buf[14:])
	if n > MaxPayload {
		return nil, 0, Errf(CodeTooLarge, "payload length %d exceeds %d", n, MaxPayload)
	}
	total := headerSize + int(n) + trailerSize
	if len(buf) < total {
		return nil, 0, Errf(CodeMalformed, "truncated frame: %d of %d bytes", len(buf), total)
	}
	payload := buf[headerSize : headerSize+int(n)]
	want := binary.BigEndian.Uint32(buf[headerSize+int(n):])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, 0, Errf(CodeCRC, "payload checksum 0x%08x, frame says 0x%08x", got, want)
	}
	// Copy the payload out so the frame does not alias the caller's buffer.
	p := make([]byte, n)
	copy(p, payload)
	return &Frame{Op: op, ReqID: reqID, Payload: p}, total, nil
}

// WriteFrame writes f to w in one Write call (one syscall on a socket, and
// atomic with respect to other writers serialized by the caller).
func WriteFrame(w io.Writer, f *Frame) error {
	_, err := w.Write(EncodeFrame(f))
	return err
}

// ReadFrame reads exactly one frame from r. A clean EOF before any header
// byte is returned as io.EOF (the peer closed between frames); any other
// truncation or violation is a structured *Error. The payload allocation is
// bounded by MaxPayload, checked before allocating.
func ReadFrame(r io.Reader) (*Frame, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, Wrap(CodeMalformed, "short header", err)
	}
	if m := binary.BigEndian.Uint32(hdr[:]); m != Magic {
		return nil, Errf(CodeBadMagic, "bad magic 0x%08x", m)
	}
	if v := hdr[4]; v != Version {
		return nil, Errf(CodeVersion, "protocol version %d, want %d", v, Version)
	}
	op := Opcode(hdr[5])
	if !op.Known() {
		return nil, Errf(CodeUnknownOp, "unknown opcode 0x%02x", byte(op))
	}
	reqID := binary.BigEndian.Uint64(hdr[6:])
	n := binary.BigEndian.Uint32(hdr[14:])
	if n > MaxPayload {
		return nil, Errf(CodeTooLarge, "payload length %d exceeds %d", n, MaxPayload)
	}
	body := make([]byte, int(n)+trailerSize)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, Wrap(CodeMalformed, "short payload", err)
	}
	payload := body[:n]
	want := binary.BigEndian.Uint32(body[n:])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, Errf(CodeCRC, "payload checksum 0x%08x, frame says 0x%08x", got, want)
	}
	return &Frame{Op: op, ReqID: reqID, Payload: payload}, nil
}

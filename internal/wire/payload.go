package wire

import (
	"encoding/binary"
	"math"
	"sort"

	"gomdb/internal/core"
	"gomdb/internal/object"
)

// Payload encodings. Primitives follow the storage layer's conventions:
// uvarint/varint for integers, little-endian IEEE 754 for floats,
// length-prefixed strings, and object.EncodeValue for data-model values.
// Every count is bounds-checked against the remaining payload before any
// allocation (each element occupies at least one byte), so a hostile count
// cannot make the decoder allocate unboundedly; the decoder returns
// structured errors and never panics.

// enc is the payload encoder.
type enc struct{ buf []byte }

func (e *enc) u8(v uint8)       { e.buf = append(e.buf, v) }
func (e *enc) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *enc) f64(v float64)    { e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v)) }
func (e *enc) bool(b bool) {
	if b {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *enc) str(s string)       { e.uvarint(uint64(len(s))); e.buf = append(e.buf, s...) }
func (e *enc) val(v object.Value) { e.buf = append(e.buf, object.EncodeValue(v)...) }

func (e *enc) vals(vs []object.Value) {
	e.uvarint(uint64(len(vs)))
	for _, v := range vs {
		e.val(v)
	}
}

// dec is the payload decoder. The first violation latches in err; every
// accessor is a no-op afterwards, so decode paths read straight through.
type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) fail(code Code, format string, args ...any) {
	if d.err == nil {
		d.err = Errf(code, format, args...)
	}
}

func (d *dec) rem() int { return len(d.buf) - d.off }

func (d *dec) u8() uint8 {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail(CodeMalformed, "truncated payload (u8 at %d)", d.off)
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *dec) bool() bool { return d.u8() != 0 }

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail(CodeMalformed, "truncated payload (uvarint at %d)", d.off)
		return 0
	}
	d.off += n
	return v
}

// count decodes a collection count and verifies it fits in the remaining
// bytes (each element is at least one byte).
func (d *dec) count() int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if n > uint64(d.rem()) {
		d.fail(CodeMalformed, "count %d exceeds remaining %d bytes", n, d.rem())
		return 0
	}
	return int(n)
}

func (d *dec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.rem() < 8 {
		d.fail(CodeMalformed, "truncated payload (f64 at %d)", d.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

func (d *dec) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.rem()) {
		d.fail(CodeMalformed, "string length %d exceeds remaining %d bytes", n, d.rem())
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *dec) val() object.Value {
	if d.err != nil {
		return object.Null()
	}
	v, n, err := object.DecodeValue(d.buf[d.off:])
	if err != nil {
		d.fail(CodeMalformed, "bad value at %d: %v", d.off, err)
		return object.Null()
	}
	d.off += n
	return v
}

func (d *dec) vals() []object.Value {
	n := d.count()
	if d.err != nil || n == 0 {
		return nil
	}
	vs := make([]object.Value, n)
	for i := range vs {
		vs[i] = d.val()
	}
	return vs
}

// finish verifies the whole payload was consumed; trailing bytes mean the
// peer and this decoder disagree about the encoding.
func (d *dec) finish() error {
	if d.err == nil && d.off != len(d.buf) {
		d.err = Errf(CodeMalformed, "%d trailing payload bytes", len(d.buf)-d.off)
	}
	return d.err
}

// MatOptions is the serializable subset of gomdb.MaterializeOptions.
// Restriction predicates and atomic-argument restrictions are function
// values — code, not data — so they cannot travel over the wire; restricted
// GMRs stay an embedded-API feature (mirroring the durable store, which
// refuses them for the same reason).
type MatOptions struct {
	Name         string
	Funcs        []string
	Strategy     uint8
	Mode         uint8
	Complete     bool
	SecondChance bool
	UseMDS       bool
	MemoCache    bool
	MaxEntries   uint32
}

const (
	matComplete     = 1 << 0
	matSecondChance = 1 << 1
	matUseMDS       = 1 << 2
	matMemoCache    = 1 << 3
)

// Request is the decoded form of a request payload — a tagged union over
// every request opcode; Op selects which fields are meaningful.
type Request struct {
	Op Opcode

	// WireVersion and Token belong to OpHello.
	WireVersion uint8
	Token       string

	// Name is the opcode's primary string: the GOMql source (OpQuery), the
	// function name (OpCall, OpBackward, OpSum), the type name (OpNew,
	// OpNewSet, OpExtension), the attribute name's owner is OID below, or
	// the GMR name (OpRetrieve, OpDematerialize).
	Name string
	// Attr is the attribute name of OpGetAttr and OpSet.
	Attr string

	OID  object.OID
	Val  object.Value
	Args []object.Value

	// Params are OpQuery's named parameters (encoded in sorted key order,
	// so equal requests encode to equal bytes).
	Params map[string]object.Value

	// Specs are OpRetrieve's column constraints.
	Specs []core.FieldSpec

	// Lo and Hi bound OpBackward.
	Lo, Hi float64

	// OIDs are OpSum's argument objects; HasOIDs distinguishes "nil =
	// every materialized entry" from an explicit empty list.
	OIDs    []object.OID
	HasOIDs bool

	// Mat configures OpMaterialize.
	Mat MatOptions

	// Sub is OpBatchOp's inner operation.
	Sub *Request

	// Abort marks OpBatchCommit as a failed batch.
	Abort bool
}

// batchable reports whether op may appear inside OpBatchOp.
func batchable(op Opcode) bool {
	switch op {
	case OpNew, OpNewSet, OpDelete, OpSet, OpGetAttr, OpInsert, OpRemove, OpCall:
		return true
	}
	return false
}

// EncodeRequest encodes r's payload (the frame body for r.Op).
func EncodeRequest(r *Request) ([]byte, error) {
	var e enc
	if err := encodeRequest(&e, r); err != nil {
		return nil, err
	}
	return e.buf, nil
}

func encodeRequest(e *enc, r *Request) error {
	switch r.Op {
	case OpHello:
		e.u8(r.WireVersion)
		e.str(r.Token)
	case OpPing, OpGoodbye, OpFlush, OpBatchBegin, OpSimSeconds:
		// empty payload
	case OpQuery:
		e.str(r.Name)
		keys := make([]string, 0, len(r.Params))
		for k := range r.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		e.uvarint(uint64(len(keys)))
		for _, k := range keys {
			e.str(k)
			e.val(r.Params[k])
		}
	case OpCall:
		e.str(r.Name)
		e.vals(r.Args)
	case OpGetAttr:
		e.uvarint(uint64(r.OID))
		e.str(r.Attr)
	case OpSet:
		e.uvarint(uint64(r.OID))
		e.str(r.Attr)
		e.val(r.Val)
	case OpNew, OpNewSet:
		e.str(r.Name)
		e.vals(r.Args)
	case OpDelete:
		e.uvarint(uint64(r.OID))
	case OpInsert, OpRemove:
		e.uvarint(uint64(r.OID))
		e.val(r.Val)
	case OpRetrieve:
		e.str(r.Name)
		e.uvarint(uint64(len(r.Specs)))
		for _, s := range r.Specs {
			var flags uint8
			if s.Exact != nil {
				flags |= 1
			}
			if s.Lo != nil {
				flags |= 2
			}
			if s.Hi != nil {
				flags |= 4
			}
			e.u8(flags)
			if s.Exact != nil {
				e.val(*s.Exact)
			}
			if s.Lo != nil {
				e.f64(*s.Lo)
			}
			if s.Hi != nil {
				e.f64(*s.Hi)
			}
		}
	case OpBackward:
		e.str(r.Name)
		e.f64(r.Lo)
		e.f64(r.Hi)
	case OpSum:
		e.str(r.Name)
		e.bool(r.HasOIDs)
		e.uvarint(uint64(len(r.OIDs)))
		for _, o := range r.OIDs {
			e.uvarint(uint64(o))
		}
	case OpExtension, OpDematerialize:
		e.str(r.Name)
	case OpMaterialize:
		m := &r.Mat
		e.str(m.Name)
		e.uvarint(uint64(len(m.Funcs)))
		for _, f := range m.Funcs {
			e.str(f)
		}
		e.u8(m.Strategy)
		e.u8(m.Mode)
		var flags uint8
		if m.Complete {
			flags |= matComplete
		}
		if m.SecondChance {
			flags |= matSecondChance
		}
		if m.UseMDS {
			flags |= matUseMDS
		}
		if m.MemoCache {
			flags |= matMemoCache
		}
		e.u8(flags)
		e.uvarint(uint64(m.MaxEntries))
	case OpBatchOp:
		if r.Sub == nil {
			return Errf(CodeBadRequest, "batch op without sub-operation")
		}
		if !batchable(r.Sub.Op) {
			return Errf(CodeBadRequest, "opcode %s is not batchable", r.Sub.Op)
		}
		e.u8(byte(r.Sub.Op))
		return encodeRequest(e, r.Sub)
	case OpBatchCommit:
		e.bool(r.Abort)
	default:
		return Errf(CodeUnknownOp, "opcode %s is not a request", r.Op)
	}
	return nil
}

// DecodeRequest decodes the payload of a request frame with opcode op. The
// entire payload must be consumed. Errors are structured *Errors; the
// decoder never panics.
func DecodeRequest(op Opcode, payload []byte) (*Request, error) {
	d := &dec{buf: payload}
	r, err := decodeRequest(d, op, true)
	if err != nil {
		return nil, err
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return r, nil
}

func decodeRequest(d *dec, op Opcode, outer bool) (*Request, error) {
	r := &Request{Op: op}
	switch op {
	case OpHello:
		r.WireVersion = d.u8()
		r.Token = d.str()
	case OpPing, OpGoodbye, OpFlush, OpBatchBegin, OpSimSeconds:
		// empty payload
	case OpQuery:
		r.Name = d.str()
		n := d.count()
		if n > 0 {
			r.Params = make(map[string]object.Value, n)
			for i := 0; i < n && d.err == nil; i++ {
				k := d.str()
				r.Params[k] = d.val()
			}
		}
	case OpCall:
		r.Name = d.str()
		r.Args = d.vals()
	case OpGetAttr:
		r.OID = object.OID(d.uvarint())
		r.Attr = d.str()
	case OpSet:
		r.OID = object.OID(d.uvarint())
		r.Attr = d.str()
		r.Val = d.val()
	case OpNew, OpNewSet:
		r.Name = d.str()
		r.Args = d.vals()
	case OpDelete:
		r.OID = object.OID(d.uvarint())
	case OpInsert, OpRemove:
		r.OID = object.OID(d.uvarint())
		r.Val = d.val()
	case OpRetrieve:
		r.Name = d.str()
		n := d.count()
		if n > 0 {
			r.Specs = make([]core.FieldSpec, n)
			for i := 0; i < n && d.err == nil; i++ {
				flags := d.u8()
				if flags&^uint8(7) != 0 {
					d.fail(CodeMalformed, "bad field-spec flags 0x%02x", flags)
					break
				}
				if flags&1 != 0 {
					v := d.val()
					r.Specs[i].Exact = &v
				}
				if flags&2 != 0 {
					lo := d.f64()
					r.Specs[i].Lo = &lo
				}
				if flags&4 != 0 {
					hi := d.f64()
					r.Specs[i].Hi = &hi
				}
			}
		}
	case OpBackward:
		r.Name = d.str()
		r.Lo = d.f64()
		r.Hi = d.f64()
	case OpSum:
		r.Name = d.str()
		r.HasOIDs = d.bool()
		n := d.count()
		if n > 0 {
			r.OIDs = make([]object.OID, n)
			for i := 0; i < n && d.err == nil; i++ {
				r.OIDs[i] = object.OID(d.uvarint())
			}
		}
	case OpExtension, OpDematerialize:
		r.Name = d.str()
	case OpMaterialize:
		m := &r.Mat
		m.Name = d.str()
		n := d.count()
		if n > 0 {
			m.Funcs = make([]string, n)
			for i := 0; i < n && d.err == nil; i++ {
				m.Funcs[i] = d.str()
			}
		}
		m.Strategy = d.u8()
		m.Mode = d.u8()
		flags := d.u8()
		if flags&^uint8(matComplete|matSecondChance|matUseMDS|matMemoCache) != 0 {
			d.fail(CodeMalformed, "bad materialize flags 0x%02x", flags)
		}
		m.Complete = flags&matComplete != 0
		m.SecondChance = flags&matSecondChance != 0
		m.UseMDS = flags&matUseMDS != 0
		m.MemoCache = flags&matMemoCache != 0
		max := d.uvarint()
		if max > math.MaxUint32 {
			d.fail(CodeMalformed, "max entries %d out of range", max)
		}
		m.MaxEntries = uint32(max)
	case OpBatchOp:
		if !outer {
			d.fail(CodeMalformed, "nested batch op")
			break
		}
		sub := Opcode(d.u8())
		if d.err == nil && !batchable(sub) {
			return nil, Errf(CodeBadRequest, "opcode %s is not batchable", sub)
		}
		if d.err == nil {
			inner, err := decodeRequest(d, sub, false)
			if err != nil {
				return nil, err
			}
			r.Sub = inner
		}
	case OpBatchCommit:
		r.Abort = d.bool()
	default:
		return nil, Errf(CodeUnknownOp, "opcode %s is not a request", op)
	}
	if d.err != nil {
		return nil, d.err
	}
	return r, nil
}

// StreamKind selects the row encoding of a chunked result stream.
type StreamKind uint8

const (
	// StreamQuery rows are plain value tuples (GOMql results).
	StreamQuery StreamKind = 1
	// StreamRows rows are tabular GMR rows (args, results, validity).
	StreamRows StreamKind = 2
	// StreamMatches rows are backward-query matches (args, result).
	StreamMatches StreamKind = 3
	// StreamOIDs rows are bare object identifiers (extensions).
	StreamOIDs StreamKind = 4
)

func (k StreamKind) valid() bool { return k >= StreamQuery && k <= StreamOIDs }

// Response is the decoded form of a response payload — a tagged union over
// every response opcode.
type Response struct {
	Op Opcode

	// WireVersion and Shards belong to RespHello: the server's protocol
	// version and its backend shard count (1 for a plain engine).
	WireVersion uint8
	Shards      uint32

	Val object.Value // RespValue
	OID object.OID   // RespOID
	F   float64      // RespFloat

	// ErrCode and ErrMsg belong to RespError.
	ErrCode Code
	ErrMsg  string

	// Stream tags RespStreamBegin and RespChunk with the row encoding.
	Stream StreamKind
	// Columns are the result labels of a StreamQuery stream.
	Columns []string

	Rows    [][]object.Value // RespChunk, StreamQuery
	GRows   []core.Row       // RespChunk, StreamRows
	Matches []core.Match     // RespChunk, StreamMatches
	OIDs    []object.OID     // RespChunk, StreamOIDs

	// Total closes a stream (RespDone): the total row count across all
	// chunks, so the client can verify it lost nothing.
	Total uint64
}

// ErrResponse builds the RespError response for err.
func ErrResponse(err error) *Response {
	return &Response{Op: RespError, ErrCode: CodeOf(err), ErrMsg: err.Error()}
}

// Err converts a RespError response back into a structured error (nil for
// any other opcode).
func (r *Response) Err() error {
	if r.Op != RespError {
		return nil
	}
	return &Error{Code: r.ErrCode, Msg: r.ErrMsg}
}

// EncodeResponse encodes r's payload (the frame body for r.Op).
func EncodeResponse(r *Response) ([]byte, error) {
	var e enc
	switch r.Op {
	case RespHello:
		e.u8(r.WireVersion)
		e.uvarint(uint64(r.Shards))
	case RespAck:
		// empty payload
	case RespValue:
		e.val(r.Val)
	case RespOID:
		e.uvarint(uint64(r.OID))
	case RespFloat:
		e.f64(r.F)
	case RespError:
		e.uvarint(uint64(r.ErrCode))
		e.str(r.ErrMsg)
	case RespStreamBegin:
		e.u8(uint8(r.Stream))
		e.uvarint(uint64(len(r.Columns)))
		for _, c := range r.Columns {
			e.str(c)
		}
	case RespChunk:
		e.u8(uint8(r.Stream))
		switch r.Stream {
		case StreamQuery:
			e.uvarint(uint64(len(r.Rows)))
			for _, row := range r.Rows {
				e.vals(row)
			}
		case StreamRows:
			e.uvarint(uint64(len(r.GRows)))
			for _, row := range r.GRows {
				e.vals(row.Args)
				e.vals(row.Results)
				e.uvarint(uint64(len(row.Valid)))
				for _, b := range row.Valid {
					e.bool(b)
				}
			}
		case StreamMatches:
			e.uvarint(uint64(len(r.Matches)))
			for _, m := range r.Matches {
				e.vals(m.Args)
				e.val(m.Result)
			}
		case StreamOIDs:
			e.uvarint(uint64(len(r.OIDs)))
			for _, o := range r.OIDs {
				e.uvarint(uint64(o))
			}
		default:
			return nil, Errf(CodeMalformed, "bad stream kind %d", r.Stream)
		}
	case RespDone:
		e.uvarint(r.Total)
	default:
		return nil, Errf(CodeUnknownOp, "opcode %s is not a response", r.Op)
	}
	return e.buf, nil
}

// DecodeResponse decodes the payload of a response frame with opcode op.
// The entire payload must be consumed; errors are structured and the
// decoder never panics.
func DecodeResponse(op Opcode, payload []byte) (*Response, error) {
	d := &dec{buf: payload}
	r := &Response{Op: op}
	switch op {
	case RespHello:
		r.WireVersion = d.u8()
		sh := d.uvarint()
		if sh > math.MaxUint32 {
			d.fail(CodeMalformed, "shard count %d out of range", sh)
		}
		r.Shards = uint32(sh)
	case RespAck:
		// empty payload
	case RespValue:
		r.Val = d.val()
	case RespOID:
		r.OID = object.OID(d.uvarint())
	case RespFloat:
		r.F = d.f64()
	case RespError:
		c := d.uvarint()
		if c > math.MaxUint16 {
			d.fail(CodeMalformed, "error code %d out of range", c)
		}
		r.ErrCode = Code(c)
		r.ErrMsg = d.str()
	case RespStreamBegin:
		r.Stream = StreamKind(d.u8())
		if d.err == nil && !r.Stream.valid() {
			d.fail(CodeMalformed, "bad stream kind %d", r.Stream)
		}
		n := d.count()
		if n > 0 {
			r.Columns = make([]string, n)
			for i := 0; i < n && d.err == nil; i++ {
				r.Columns[i] = d.str()
			}
		}
	case RespChunk:
		r.Stream = StreamKind(d.u8())
		switch r.Stream {
		case StreamQuery:
			n := d.count()
			if n > 0 {
				r.Rows = make([][]object.Value, n)
				for i := 0; i < n && d.err == nil; i++ {
					r.Rows[i] = d.vals()
				}
			}
		case StreamRows:
			n := d.count()
			if n > 0 {
				r.GRows = make([]core.Row, n)
				for i := 0; i < n && d.err == nil; i++ {
					r.GRows[i].Args = d.vals()
					r.GRows[i].Results = d.vals()
					nv := d.count()
					if nv > 0 {
						r.GRows[i].Valid = make([]bool, nv)
						for j := 0; j < nv && d.err == nil; j++ {
							r.GRows[i].Valid[j] = d.bool()
						}
					}
				}
			}
		case StreamMatches:
			n := d.count()
			if n > 0 {
				r.Matches = make([]core.Match, n)
				for i := 0; i < n && d.err == nil; i++ {
					r.Matches[i].Args = d.vals()
					r.Matches[i].Result = d.val()
				}
			}
		case StreamOIDs:
			n := d.count()
			if n > 0 {
				r.OIDs = make([]object.OID, n)
				for i := 0; i < n && d.err == nil; i++ {
					r.OIDs[i] = object.OID(d.uvarint())
				}
			}
		default:
			if d.err == nil {
				d.fail(CodeMalformed, "bad stream kind %d", r.Stream)
			}
		}
	case RespDone:
		r.Total = d.uvarint()
	default:
		return nil, Errf(CodeUnknownOp, "opcode %s is not a response", op)
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return r, nil
}

// Package pred implements the predicate calculus Section 6 of the paper
// needs for restricted GMRs: Boolean combinations of the three comparison
// types of Rosenkrantz and Hunt ("Processing Conjunctive Predicates and
// Queries", VLDB 1980) —
//
//	Type 1: x ⊙ c        (comparison with a constant)
//	Type 2: x ⊙ y        (comparison between variables)
//	Type 3: x ⊙ y + c    (comparison with an offset)
//
// with ⊙ ∈ {=, ≠, <, ≤, >, ≥} — plus disjunctive normal form conversion,
// the polynomial (O(k³), Floyd–Warshall based) satisfiability test for
// conjunctions in the decidable class, and the GMR applicability test: a
// p-restricted GMR can evaluate a backward query with relevant selection
// part σ′ iff ¬p ∧ σ′ is unsatisfiable.
//
// Variables are identified by canonical strings (the query layer uses path
// expressions such as "c.volume"); string constants are interned to distinct
// numeric codes so equality predicates over strings participate in the same
// machinery.
package pred

import (
	"fmt"
	"sort"
	"sync"
)

// CmpOp enumerates comparison operators.
type CmpOp uint8

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	}
	return "?"
}

// Negate returns the complement operator.
func (op CmpOp) Negate() CmpOp {
	switch op {
	case Eq:
		return Ne
	case Ne:
		return Eq
	case Lt:
		return Ge
	case Le:
		return Gt
	case Gt:
		return Le
	case Ge:
		return Lt
	}
	return op
}

// Atom is one comparison. If Y is empty the atom is Type 1 (x ⊙ C);
// otherwise it is Type 3 (x ⊙ y + C), with C == 0 giving Type 2.
type Atom struct {
	X  string
	Op CmpOp
	Y  string
	C  float64
}

// IsConst reports whether the atom compares against a constant (Type 1).
func (a Atom) IsConst() bool { return a.Y == "" }

func (a Atom) String() string {
	if a.IsConst() {
		return fmt.Sprintf("%s %s %g", a.X, a.Op, a.C)
	}
	if a.C == 0 {
		return fmt.Sprintf("%s %s %s", a.X, a.Op, a.Y)
	}
	return fmt.Sprintf("%s %s %s + %g", a.X, a.Op, a.Y, a.C)
}

// negated returns the complemented atom.
func (a Atom) negated() Atom {
	a.Op = a.Op.Negate()
	return a
}

// P is a predicate formula.
type P interface {
	fmt.Stringer
	isPred()
}

// TrueP is the always-true predicate.
type TrueP struct{}

// FalseP is the always-false predicate.
type FalseP struct{}

// AtomP wraps a comparison atom.
type AtomP struct{ A Atom }

// AndP is conjunction.
type AndP struct{ L, R P }

// OrP is disjunction.
type OrP struct{ L, R P }

// NotP is negation.
type NotP struct{ E P }

func (TrueP) isPred()  {}
func (FalseP) isPred() {}
func (AtomP) isPred()  {}
func (AndP) isPred()   {}
func (OrP) isPred()    {}
func (NotP) isPred()   {}

func (TrueP) String() string   { return "true" }
func (FalseP) String() string  { return "false" }
func (p AtomP) String() string { return p.A.String() }
func (p AndP) String() string  { return "(" + p.L.String() + " and " + p.R.String() + ")" }
func (p OrP) String() string   { return "(" + p.L.String() + " or " + p.R.String() + ")" }
func (p NotP) String() string  { return "not(" + p.E.String() + ")" }

// Constructors.

// CmpConst builds the Type 1 atom x ⊙ c.
func CmpConst(x string, op CmpOp, c float64) P { return AtomP{Atom{X: x, Op: op, C: c}} }

// CmpVars builds the Type 2 atom x ⊙ y.
func CmpVars(x string, op CmpOp, y string) P { return AtomP{Atom{X: x, Op: op, Y: y}} }

// CmpOffset builds the Type 3 atom x ⊙ y + c.
func CmpOffset(x string, op CmpOp, y string, c float64) P {
	return AtomP{Atom{X: x, Op: op, Y: y, C: c}}
}

// Between builds lb ≤ x ≤ ub.
func Between(x string, lb, ub float64) P {
	return And(CmpConst(x, Ge, lb), CmpConst(x, Le, ub))
}

// And conjoins predicates (variadic; empty is true).
func And(ps ...P) P {
	return fold(ps, TrueP{}, func(l, r P) P { return AndP{l, r} })
}

// Or disjoins predicates (variadic; empty is false).
func Or(ps ...P) P {
	return fold(ps, FalseP{}, func(l, r P) P { return OrP{l, r} })
}

// Not negates a predicate.
func Not(p P) P { return NotP{p} }

func fold(ps []P, zero P, f func(l, r P) P) P {
	if len(ps) == 0 {
		return zero
	}
	out := ps[0]
	for _, p := range ps[1:] {
		out = f(out, p)
	}
	return out
}

// Vars returns the sorted variable names referenced by p.
func Vars(p P) []string {
	set := make(map[string]bool)
	var walk func(P)
	walk = func(q P) {
		switch n := q.(type) {
		case AtomP:
			set[n.A.X] = true
			if n.A.Y != "" {
				set[n.A.Y] = true
			}
		case AndP:
			walk(n.L)
			walk(n.R)
		case OrP:
			walk(n.L)
			walk(n.R)
		case NotP:
			walk(n.E)
		}
	}
	walk(p)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Eval evaluates p under a variable assignment; used by brute-force
// property tests and by the query fallback path.
func Eval(p P, env map[string]float64) bool {
	switch n := p.(type) {
	case TrueP:
		return true
	case FalseP:
		return false
	case AtomP:
		x := env[n.A.X]
		rhs := n.A.C
		if n.A.Y != "" {
			rhs += env[n.A.Y]
		}
		switch n.A.Op {
		case Eq:
			return x == rhs
		case Ne:
			return x != rhs
		case Lt:
			return x < rhs
		case Le:
			return x <= rhs
		case Gt:
			return x > rhs
		case Ge:
			return x >= rhs
		}
	case AndP:
		return Eval(n.L, env) && Eval(n.R, env)
	case OrP:
		return Eval(n.L, env) || Eval(n.R, env)
	case NotP:
		return !Eval(n.E, env)
	}
	return false
}

// Interner maps string constants to distinct numeric codes so string
// equality predicates fit the numeric solver: distinct strings get distinct
// codes, making x = "Iron" ∧ x = "Gold" correctly unsatisfiable.
type Interner struct {
	mu    sync.Mutex
	codes map[string]float64
	next  float64
}

// NewInterner returns an empty interner.
func NewInterner() *Interner { return &Interner{codes: make(map[string]float64), next: 1} }

// Code returns the stable numeric code for s. Safe for concurrent use: the
// query planner interns string constants while translating predicates, which
// happens on the read path.
func (in *Interner) Code(s string) float64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	if c, ok := in.codes[s]; ok {
		return c
	}
	c := in.next
	in.next++
	in.codes[s] = c
	return c
}

package pred

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOpNegation(t *testing.T) {
	pairs := map[CmpOp]CmpOp{Eq: Ne, Lt: Ge, Le: Gt, Gt: Le, Ge: Lt, Ne: Eq}
	for op, want := range pairs {
		if op.Negate() != want {
			t.Errorf("negate(%v) = %v, want %v", op, op.Negate(), want)
		}
		if op.Negate().Negate() != op {
			t.Errorf("double negation of %v", op)
		}
	}
}

func TestDNFShapes(t *testing.T) {
	a := CmpConst("x", Lt, 1)
	b := CmpConst("y", Gt, 2)
	c := CmpConst("z", Eq, 3)
	// (a or b) and c  ->  (a and c) or (b and c)
	conjs := DNF(And(Or(a, b), c))
	if len(conjs) != 2 || len(conjs[0]) != 2 || len(conjs[1]) != 2 {
		t.Fatalf("DNF = %v", conjs)
	}
	// not (a and b) -> not a or not b
	conjs = DNF(Not(And(a, b)))
	if len(conjs) != 2 || len(conjs[0]) != 1 {
		t.Fatalf("DNF(¬∧) = %v", conjs)
	}
	if conjs[0][0].Op != Ge {
		t.Fatalf("negation not pushed: %v", conjs[0][0])
	}
	if len(DNF(FalseP{})) != 0 {
		t.Fatal("DNF(false) not empty")
	}
	if conjs := DNF(TrueP{}); len(conjs) != 1 || len(conjs[0]) != 0 {
		t.Fatalf("DNF(true) = %v", conjs)
	}
	// Double negation.
	conjs = DNF(Not(Not(a)))
	if len(conjs) != 1 || conjs[0][0].Op != Lt {
		t.Fatalf("DNF(¬¬a) = %v", conjs)
	}
}

func TestInClass(t *testing.T) {
	if !InClass(And(CmpConst("x", Ne, 3), CmpVars("x", Le, "y"))) {
		t.Fatal("x != const should be in class")
	}
	if InClass(CmpVars("x", Ne, "y")) {
		t.Fatal("x != y should be outside the class")
	}
	// Negation can push ≠ into a variable comparison.
	if InClass(Not(CmpVars("x", Eq, "y"))) {
		t.Fatal("not(x = y) should be outside the class")
	}
	if !InClass(Not(CmpVars("x", Le, "y"))) {
		t.Fatal("not(x <= y) is x > y, in class")
	}
}

func TestSatisfiableConjCases(t *testing.T) {
	cases := []struct {
		name string
		conj []Atom
		want bool
	}{
		{"empty", nil, true},
		{"x<1 and x>0", []Atom{{X: "x", Op: Lt, C: 1}, {X: "x", Op: Gt, C: 0}}, true},
		{"x<1 and x>1", []Atom{{X: "x", Op: Lt, C: 1}, {X: "x", Op: Gt, C: 1}}, false},
		{"x<=1 and x>=1", []Atom{{X: "x", Op: Le, C: 1}, {X: "x", Op: Ge, C: 1}}, true},
		{"x<1 and x>=1", []Atom{{X: "x", Op: Lt, C: 1}, {X: "x", Op: Ge, C: 1}}, false},
		{"x=1 and x=2", []Atom{{X: "x", Op: Eq, C: 1}, {X: "x", Op: Eq, C: 2}}, false},
		{"x=1 and x!=1", []Atom{{X: "x", Op: Eq, C: 1}, {X: "x", Op: Ne, C: 1}}, false},
		{"x<=1 and x>=1 and x!=1", []Atom{{X: "x", Op: Le, C: 1}, {X: "x", Op: Ge, C: 1}, {X: "x", Op: Ne, C: 1}}, false},
		{"x<=2 and x>=1 and x!=1", []Atom{{X: "x", Op: Le, C: 2}, {X: "x", Op: Ge, C: 1}, {X: "x", Op: Ne, C: 1}}, true},
		// Variable chains: x <= y, y <= z, z <= x - 1 is a negative cycle.
		{"neg cycle", []Atom{{X: "x", Op: Le, Y: "y"}, {X: "y", Op: Le, Y: "z"}, {X: "z", Op: Le, Y: "x", C: -1}}, false},
		{"zero cycle ok", []Atom{{X: "x", Op: Le, Y: "y"}, {X: "y", Op: Le, Y: "x"}}, true},
		{"zero cycle strict", []Atom{{X: "x", Op: Lt, Y: "y"}, {X: "y", Op: Le, Y: "x"}}, false},
		// Offsets (Type 3): x = y + 5, x <= 3, y >= 0.
		{"offset unsat", []Atom{{X: "x", Op: Eq, Y: "y", C: 5}, {X: "x", Op: Le, C: 3}, {X: "y", Op: Ge, C: 0}}, false},
		{"offset sat", []Atom{{X: "x", Op: Eq, Y: "y", C: 5}, {X: "x", Op: Le, C: 8}, {X: "y", Op: Ge, C: 0}}, true},
		// Forced variable equality with disequality.
		{"x=y forced, x!=y", []Atom{{X: "x", Op: Le, Y: "y"}, {X: "y", Op: Le, Y: "x"}, {X: "x", Op: Ne, Y: "y"}}, false},
		{"x<=y, x!=y", []Atom{{X: "x", Op: Le, Y: "y"}, {X: "x", Op: Ne, Y: "y"}}, true},
	}
	for _, c := range cases {
		if got := SatisfiableConj(c.conj); got != c.want {
			t.Errorf("%s: SatisfiableConj = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSatisfiableFormula(t *testing.T) {
	// (x < 0 and x > 1) or x = 5 — second disjunct satisfiable.
	p := Or(And(CmpConst("x", Lt, 0), CmpConst("x", Gt, 1)), CmpConst("x", Eq, 5))
	sat, err := Satisfiable(p)
	if err != nil || !sat {
		t.Fatalf("sat = %v, %v", sat, err)
	}
	sat, err = Satisfiable(And(CmpConst("x", Lt, 0), CmpConst("x", Gt, 1)))
	if err != nil || sat {
		t.Fatalf("unsat formula reported sat")
	}
	if _, err := Satisfiable(CmpVars("x", Ne, "y")); err == nil {
		t.Fatal("out-of-class formula accepted")
	}
}

// TestCoversPaperExample reproduces the Section 6 scenario: the restriction
// p = (Mat.Name = "Iron") covers σ' = (volume > 100 ∧ Mat.Name = "Iron")
// but not σ' = (volume > 100).
func TestCoversPaperExample(t *testing.T) {
	in := NewInterner()
	iron := in.Code("Iron")
	gold := in.Code("Gold")
	p := CmpConst("O1.Mat.Name", Eq, iron)

	covered, err := Covers(p, And(CmpConst("O1.volume", Gt, 100), CmpConst("O1.Mat.Name", Eq, iron)))
	if err != nil || !covered {
		t.Fatalf("covered = %v, %v", covered, err)
	}
	covered, err = Covers(p, CmpConst("O1.volume", Gt, 100))
	if err != nil || covered {
		t.Fatalf("uncovered query reported covered")
	}
	covered, err = Covers(p, CmpConst("O1.Mat.Name", Eq, gold))
	if err != nil || covered {
		t.Fatalf("gold query covered by iron restriction")
	}
	// Interner stability.
	if in.Code("Iron") != iron {
		t.Fatal("interner not stable")
	}
}

// TestCoversRange: a range restriction covers contained query ranges.
func TestCoversRange(t *testing.T) {
	p := Between("O1.f", 0, 100)
	if ok, err := Covers(p, Between("O1.f", 10, 20)); err != nil || !ok {
		t.Fatalf("contained range not covered: %v, %v", ok, err)
	}
	if ok, err := Covers(p, Between("O1.f", 50, 150)); err != nil || ok {
		t.Fatalf("overflowing range covered")
	}
}

// TestCoversRejectsOutOfClass: ¬p must be in the decidable class — a
// restriction with x = y would negate to x ≠ y.
func TestCoversRejectsOutOfClass(t *testing.T) {
	p := CmpVars("O1.a", Eq, "O1.b")
	if _, err := Covers(p, CmpConst("O1.a", Gt, 0)); err == nil {
		t.Fatal("restriction with variable equality accepted")
	}
}

// randomAtom generates atoms over a small variable/constant domain so that
// brute force over integer assignments is exact (all constants integral, so
// real satisfiability over the convex closure matches integer satisfiability
// for difference constraints).
func randomAtom(rng *rand.Rand, vars []string) Atom {
	ops := []CmpOp{Eq, Lt, Le, Gt, Ge, Ne}
	a := Atom{
		X:  vars[rng.Intn(len(vars))],
		Op: ops[rng.Intn(len(ops))],
		C:  float64(rng.Intn(7) - 3),
	}
	if rng.Intn(2) == 0 {
		a.Y = vars[rng.Intn(len(vars))]
		if a.Op == Ne {
			a.Op = Le // keep in class
		}
	}
	return a
}

func evalAtom(a Atom, env map[string]float64) bool {
	return Eval(AtomP{a}, env)
}

// TestQuickSatisfiabilityAgainstBruteForce compares SatisfiableConj with
// exhaustive search over integer assignments in [-6, 6]. Difference
// constraints with integer constants are integrally solvable whenever they
// are real-solvable, and all our bounds fit the search box.
func TestQuickSatisfiabilityAgainstBruteForce(t *testing.T) {
	vars := []string{"x", "y", "z"}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		conj := make([]Atom, n)
		for i := range conj {
			conj[i] = randomAtom(rng, vars)
		}
		got := SatisfiableConj(conj)
		want := false
		env := map[string]float64{}
	search:
		for x := -6; x <= 6; x++ {
			for y := -6; y <= 6; y++ {
				for z := -6; z <= 6; z++ {
					env["x"], env["y"], env["z"] = float64(x), float64(y), float64(z)
					all := true
					for _, a := range conj {
						if !evalAtom(a, env) {
							all = false
							break
						}
					}
					if all {
						want = true
						break search
					}
				}
			}
		}
		// Strict inequalities can make the only solutions non-integral
		// (e.g. 0 < x < 1): the solver may say sat where integer brute
		// force finds nothing. That direction is fine; the solver must
		// never say UNSAT when an integer solution exists.
		if want && !got {
			return false
		}
		// When the solver says unsat, brute force must agree.
		if !got && want {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCoversSoundness: if Covers says the restriction covers σ, then no
// integer assignment may satisfy σ while violating p.
func TestQuickCoversSoundness(t *testing.T) {
	vars := []string{"x", "y"}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(n int) P {
			var ps []P
			for i := 0; i < n; i++ {
				a := randomAtom(rng, vars)
				if a.Op == Ne { // keep ¬p in class too
					a.Op = Le
				}
				ps = append(ps, AtomP{a})
			}
			return And(ps...)
		}
		p := mk(1 + rng.Intn(2))
		sigma := mk(1 + rng.Intn(3))
		covered, err := Covers(p, sigma)
		if err != nil || !covered {
			return true // nothing to verify
		}
		env := map[string]float64{}
		for x := -6; x <= 6; x++ {
			for y := -6; y <= 6; y++ {
				env["x"], env["y"] = float64(x), float64(y)
				if Eval(sigma, env) && !Eval(p, env) {
					return false // counterexample to coverage
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestVarsAndEval(t *testing.T) {
	p := And(CmpConst("b", Gt, 0), Or(CmpVars("a", Le, "c"), Not(CmpConst("a", Eq, 1))))
	vs := Vars(p)
	if len(vs) != 3 || vs[0] != "a" || vs[1] != "b" || vs[2] != "c" {
		t.Fatalf("Vars = %v", vs)
	}
	env := map[string]float64{"a": 1, "b": 1, "c": 0}
	if Eval(p, env) {
		t.Fatal("Eval wrong: a>c and a=1")
	}
	env["c"] = 5
	if !Eval(p, env) {
		t.Fatal("Eval wrong: a<=c")
	}
}

package pred

import (
	"fmt"
	"math"
)

// DNF conversion and the Rosenkrantz–Hunt satisfiability test.

// DNF returns the disjunctive normal form of p as a list of conjunctions of
// atoms, with all negations pushed into the comparison operators. An empty
// result means p is unsatisfiable by construction (false); a conjunct of
// length zero means true.
func DNF(p P) [][]Atom {
	switch n := p.(type) {
	case TrueP:
		return [][]Atom{{}}
	case FalseP:
		return nil
	case AtomP:
		return [][]Atom{{n.A}}
	case NotP:
		return dnfNeg(n.E)
	case AndP:
		return crossProduct(DNF(n.L), DNF(n.R))
	case OrP:
		return append(DNF(n.L), DNF(n.R)...)
	}
	return nil
}

// dnfNeg returns DNF(¬p).
func dnfNeg(p P) [][]Atom {
	switch n := p.(type) {
	case TrueP:
		return nil
	case FalseP:
		return [][]Atom{{}}
	case AtomP:
		return [][]Atom{{n.A.negated()}}
	case NotP:
		return DNF(n.E)
	case AndP: // ¬(L ∧ R) = ¬L ∨ ¬R
		return append(dnfNeg(n.L), dnfNeg(n.R)...)
	case OrP: // ¬(L ∨ R) = ¬L ∧ ¬R
		return crossProduct(dnfNeg(n.L), dnfNeg(n.R))
	}
	return nil
}

func crossProduct(a, b [][]Atom) [][]Atom {
	out := make([][]Atom, 0, len(a)*len(b))
	for _, ca := range a {
		for _, cb := range b {
			conj := make([]Atom, 0, len(ca)+len(cb))
			conj = append(conj, ca...)
			conj = append(conj, cb...)
			out = append(out, conj)
		}
	}
	return out
}

// InClass reports whether p belongs to the decidable subclass of
// Rosenkrantz and Hunt as the paper states it: p is a Boolean combination of
// Type 1/2/3 comparisons and the DNF of p after eliminating negations does
// not contain ≠ in any Type 2 or Type 3 comparison. (≠ against constants is
// allowed; with it included on variables the problem becomes NP-hard.)
func InClass(p P) bool {
	for _, conj := range DNF(p) {
		for _, a := range conj {
			if a.Op == Ne && !a.IsConst() {
				return false
			}
		}
	}
	return true
}

// bound is a difference bound x - y ≤ C (strict if S).
type bound struct {
	c      float64
	strict bool
}

func (b bound) tighter(o bound) bool {
	if b.c != o.c {
		return b.c < o.c
	}
	return b.strict && !o.strict
}

func addBounds(a, b bound) bound {
	return bound{c: a.c + b.c, strict: a.strict || b.strict}
}

// SatisfiableConj decides whether a conjunction of atoms in the decidable
// class has a solution over the reals. The test builds the difference-bound
// graph over the variables plus a constant anchor node and runs
// Floyd–Warshall shortest paths — O(k³) in the number of variables, matching
// the complexity the paper cites. Atoms of the form x ≠ c (and, as an
// extension, x ≠ y + c) are verified after closure: they only fail when the
// closure pins the difference to exactly the excluded value.
func SatisfiableConj(conj []Atom) bool {
	// Collect variables; index 0 is the anchor ("zero") node.
	idx := map[string]int{"": 0}
	var names []string
	nodeOf := func(v string) int {
		if i, ok := idx[v]; ok {
			return i
		}
		i := len(idx)
		idx[v] = i
		names = append(names, v)
		return i
	}
	for _, a := range conj {
		nodeOf(a.X)
		if a.Y != "" {
			nodeOf(a.Y)
		}
	}
	_ = names
	n := len(idx)
	inf := bound{c: math.Inf(1)}
	dist := make([][]bound, n)
	for i := range dist {
		dist[i] = make([]bound, n)
		for j := range dist[i] {
			if i == j {
				dist[i][j] = bound{c: 0}
			} else {
				dist[i][j] = inf
			}
		}
	}
	addEdge := func(from, to int, b bound) {
		if b.tighter(dist[from][to]) {
			dist[from][to] = b
		}
	}
	var disequalities []Atom
	for _, a := range conj {
		x := idx[a.X]
		y := idx[a.Y] // anchor when a.Y == ""
		switch a.Op {
		case Le: // x - y <= c
			addEdge(x, y, bound{c: a.C})
		case Lt:
			addEdge(x, y, bound{c: a.C, strict: true})
		case Ge: // y - x <= -c
			addEdge(y, x, bound{c: -a.C})
		case Gt:
			addEdge(y, x, bound{c: -a.C, strict: true})
		case Eq:
			addEdge(x, y, bound{c: a.C})
			addEdge(y, x, bound{c: -a.C})
		case Ne:
			disequalities = append(disequalities, a)
		}
	}
	// Floyd–Warshall closure with strictness propagation.
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if math.IsInf(dist[i][k].c, 1) {
				continue
			}
			for j := 0; j < n; j++ {
				if math.IsInf(dist[k][j].c, 1) {
					continue
				}
				cand := addBounds(dist[i][k], dist[k][j])
				if cand.tighter(dist[i][j]) {
					dist[i][j] = cand
				}
			}
		}
	}
	// A negative cycle — or a zero-weight cycle containing a strict edge —
	// is a contradiction.
	for i := 0; i < n; i++ {
		d := dist[i][i]
		if d.c < 0 || (d.c == 0 && d.strict) {
			return false
		}
	}
	// Disequality post-check: x ≠ y + c fails only if the closure forces
	// x - y = c exactly (upper bound c non-strict and lower bound c
	// non-strict).
	for _, a := range disequalities {
		x := idx[a.X]
		y := idx[a.Y]
		up := dist[x][y]   // x - y <= up
		down := dist[y][x] // y - x <= down, i.e. x - y >= -down
		if !up.strict && !down.strict && up.c == a.C && -down.c == a.C {
			return false
		}
	}
	return true
}

// Satisfiable decides satisfiability of an arbitrary predicate in the
// decidable class by testing each DNF conjunct. It returns an error if p
// falls outside the class.
func Satisfiable(p P) (bool, error) {
	if !InClass(p) {
		return false, fmt.Errorf("pred: %v is outside the decidable class (≠ between variables)", p)
	}
	for _, conj := range DNF(p) {
		if SatisfiableConj(conj) {
			return true, nil
		}
	}
	return false, nil
}

// Covers decides the GMR applicability condition of Section 6: the
// p-restricted GMR can evaluate a backward query whose relevant selection
// part is sigma iff σ′ ⇒ p, i.e. ¬p ∧ σ′ is unsatisfiable. Following the
// paper it additionally requires (1) ¬p in the decidable class and (2) σ′ in
// the decidable class, and returns an error naming the violated condition
// otherwise.
func Covers(p, sigma P) (bool, error) {
	notP := Not(p)
	if !InClass(notP) {
		return false, fmt.Errorf("pred: ¬p = %v is outside the decidable class", notP)
	}
	if !InClass(sigma) {
		return false, fmt.Errorf("pred: σ′ = %v is outside the decidable class", sigma)
	}
	sat, err := Satisfiable(And(notP, sigma))
	if err != nil {
		return false, err
	}
	return !sat, nil
}

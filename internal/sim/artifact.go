package sim

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Artifact is a self-contained, replayable failure reproducer: the engine
// configuration, the initial-population parameters, and the (usually shrunk)
// op list that triggers the violation. Artifacts are plain JSON so they can
// be committed under testdata/sim/, attached to CI runs, and replayed with
// `gomsim -replay <file>` or sim.Replay.
type Artifact struct {
	// Seed derives the initial object base (Init cuboids); the op list is
	// stored explicitly, so Seed is NOT re-expanded into ops on replay.
	Seed   int64        `json:"seed"`
	Init   int          `json:"init"`
	Config EngineConfig `json:"config"`
	Ops    []Op         `json:"ops"`
	// Violation is the failure the artifact reproduces, as observed when it
	// was written (informational; replay re-derives it).
	Violation string `json:"violation,omitempty"`
	// Note says where the artifact came from (test name, CI job).
	Note string `json:"note,omitempty"`
}

// Plan returns the replay plan encoded in the artifact.
func (a *Artifact) Plan() Plan {
	return Plan{Seed: a.Seed, Init: a.Init, Ops: a.Ops}
}

// Save writes the artifact as indented JSON, creating the directory if
// needed.
func (a *Artifact) Save(path string) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadArtifact reads an artifact written by Save.
func LoadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("sim: artifact %s: %w", path, err)
	}
	return &a, nil
}

// Replay executes an artifact's op list against its recorded configuration.
func Replay(a *Artifact) *Result {
	return Run(a.Config, a.Plan())
}

// ShrinkToArtifact shrinks a failing plan to a minimal reproducer and wraps
// it as an artifact. The predicate for shrinking is "Run still reports a
// violation" under cfg; the recorded Violation is the shrunk run's.
func ShrinkToArtifact(cfg EngineConfig, plan Plan, note string) *Artifact {
	ops := Shrink(plan.Ops, func(sub []Op) bool {
		return Run(cfg, Plan{Seed: plan.Seed, Init: plan.Init, Ops: sub}).Violation != nil
	})
	res := Run(cfg, Plan{Seed: plan.Seed, Init: plan.Init, Ops: ops})
	a := &Artifact{Seed: plan.Seed, Init: plan.Init, Config: cfg, Ops: ops, Note: note}
	if res.Violation != nil {
		a.Violation = res.Violation.String()
	}
	return a
}

package sim

import (
	"fmt"

	"gomdb"
	"gomdb/internal/object"
)

// auditTol is the relative tolerance for comparing stored results against
// fresh recomputations. Recomputation replays the identical float operations
// against the identical object state, so results must match essentially
// bit-for-bit; the tolerance only absorbs non-associativity in aggregate
// functions.
const auditTol = 1e-9

// Audit runs every invariant auditor against a quiescent database and
// returns the violations found (empty for a healthy engine). The caller must
// have drained the deferred queue first — a pending rematerialization is not
// an inconsistency, it is scheduled work.
//
// The auditors:
//
//  1. Definition 3.2 congruence — every valid GMR entry equals a fresh
//     recomputation of its function (core.CheckConsistency), and, for
//     complete GMRs, Definition 3.4 completeness against the current type
//     extensions.
//  2. RRR soundness — every valid entry's argument objects carry supporting
//     RRR tuples, so a future update of those objects can find and
//     invalidate the entry. (Left-over tuples in the other direction are
//     legitimate: Section 4.2's blind references are cleaned lazily.)
//  3. Pin-leak accounting — no buffer frame is left pinned at a quiescent
//     point; a leaked pin would eventually wedge the pool.
//  4. Deferred-queue emptiness — after a flush the pending queue must be
//     empty, or Flush is silently dropping work.
//  5. MVCC quiescence — no snapshot pin is active at a quiescent point, and
//     every version capture has been reclaimed (the flush preceding the audit
//     published a version with no pinned reader below it, so the overlays
//     must be empty; a surviving capture is a reclamation leak).
//  6. Directory ↔ heap correspondence — every directory entry resolves to
//     exactly one live, decodable heap slot and every extent member has a
//     directory entry (object.Manager.AuditDirectory). An aborted or buggy
//     relocation would surface here as a dangling or shared slot.
func Audit(db *gomdb.Database) []string {
	var out []string
	out = append(out, db.Objects.AuditDirectory()...)
	if n := db.GMRs.PendingLen(); n != 0 {
		out = append(out, fmt.Sprintf("deferred queue: %d items pending after flush", n))
	}
	if n := db.Pool.PinnedCount(); n != 0 {
		out = append(out, fmt.Sprintf("pin leak: %d frames pinned at quiescent point", n))
	}
	if st := db.MVCCStats(); st.Enabled {
		if st.ActivePins != 0 {
			out = append(out, fmt.Sprintf("mvcc: %d snapshot pins active at quiescent point", st.ActivePins))
		}
		if st.PageCaptures != 0 || st.ObjectCaptures != 0 || st.EntryCaptures != 0 {
			out = append(out, fmt.Sprintf(
				"mvcc: captures leaked at quiescent point (pages=%d objects=%d entries=%d)",
				st.PageCaptures, st.ObjectCaptures, st.EntryCaptures))
		}
	}
	for _, name := range db.GMRs.GMRs() {
		g, ok := db.GMRs.Get(name)
		if !ok {
			continue
		}
		rep, err := db.CheckConsistency(name, auditTol, g.Complete)
		if err != nil {
			out = append(out, "consistency check "+name+": "+err.Error())
			continue
		}
		for _, v := range rep.Violations {
			out = append(out, name+": "+v)
		}
		out = append(out, auditRRRSupport(db, name, g)...)
	}
	return out
}

// auditRRRSupport verifies invariant 2: for every fully- or partially-valid
// entry of g, every argument object still referenced by the entry has at
// least one RRR tuple per valid materialized function. Without that tuple an
// update of the argument object could never invalidate the entry — exactly
// the failure mode the deliberately-broken invalidation hook simulates
// upstream of the RRR (and which auditor 1 catches as stale results).
func auditRRRSupport(db *gomdb.Database, name string, g *gomdb.GMR) []string {
	var out []string
	rrr := db.GMRs.RRR()
	g.Entries(func(args, results []object.Value, valid []bool) bool {
		for i, fn := range g.Funcs {
			if !valid[i] {
				continue
			}
			for _, a := range args {
				if a.Kind != object.KRef {
					continue
				}
				if rrr.FctCount(a.R, fn.Name) == 0 {
					out = append(out, fmt.Sprintf(
						"%s: valid entry for %s lacks RRR support on argument %s",
						name, fn.Name, a.R))
				}
			}
		}
		return true
	})
	return out
}

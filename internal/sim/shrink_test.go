package sim

import "testing"

// TestShrinkMinimal drives ddmin with a synthetic predicate: the failure
// needs ops at positions carrying markers 3, 17, and 40 (by value, so the
// predicate is position-independent like a real replay). Shrink must reduce
// 50 ops to exactly those 3.
func TestShrinkMinimal(t *testing.T) {
	var ops []Op
	for i := 0; i < 50; i++ {
		ops = append(ops, Op{Kind: OpForward, X: i})
	}
	needs := map[int]bool{3: true, 17: true, 40: true}
	fails := func(sub []Op) bool {
		seen := 0
		for _, op := range sub {
			if needs[op.X] {
				seen++
			}
		}
		return seen == len(needs)
	}
	got := Shrink(ops, fails)
	if len(got) != 3 {
		t.Fatalf("shrunk to %d ops, want 3: %+v", len(got), got)
	}
	for _, op := range got {
		if !needs[op.X] {
			t.Fatalf("kept irrelevant op %+v", op)
		}
	}
}

// TestShrinkNonFailing: a predicate that never fails returns the input
// unchanged (nothing to minimize).
func TestShrinkNonFailing(t *testing.T) {
	ops := []Op{{Kind: OpFlush}, {Kind: OpGC}}
	got := Shrink(ops, func([]Op) bool { return false })
	if len(got) != len(ops) {
		t.Fatalf("non-failing input was modified: %d ops", len(got))
	}
}

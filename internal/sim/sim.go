// Package sim is a deterministic simulation harness for the GMR engine: it
// generates seeded random workloads (object creation and deletion, elementary
// updates, geometric transformations, materializations, forward/backward/
// tabular lookups, batches, flushes, garbage collection), executes them
// against a chosen engine configuration, audits the paper's invariants at
// every quiescent point, and — when an invariant breaks — shrinks the op
// trace to a minimal reproducer and writes a replayable artifact.
//
// Determinism is the load-bearing property: a plan is fully parameterized at
// generation time (applying an op consumes no randomness), every engine path
// the simulator drives iterates in canonical order, and the cost model
// charges identically for every buffer-shard and remat-worker count. The
// pinned consequence, verified by TestChargeDeterminism: same seed + same
// strategy produces a byte-identical op trace and a byte-identical Clock
// snapshot across shard counts {1,4,16} and worker counts {1,4,8}.
//
// Operational errors (a backward query against a dropped GMR, an injected
// disk fault) are workload outcomes: they are recorded in the trace, and the
// invariant auditors — not error-freedom — decide whether the engine
// misbehaved. A panic, however, is always a violation: the engine's contract
// under fault injection is "typed error or intact invariants", never a crash.
package sim

import (
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strings"

	"gomdb"
	"gomdb/internal/fixtures"
	"gomdb/internal/ocb"
	"gomdb/internal/storage"
)

// EngineConfig selects one cell of the engine-configuration matrix a plan is
// executed against. The zero value is immediate rematerialization with every
// optional mechanism off and default pool geometry.
type EngineConfig struct {
	// Strategy is "immediate", "lazy", or "deferred".
	Strategy string `json:"strategy"`
	// Memo enables the forward-lookup memo cache on every materialized GMR.
	Memo bool `json:"memo,omitempty"`
	// SecondChance enables the second-chance immediate(o) variant.
	SecondChance bool `json:"secondChance,omitempty"`
	// UseMDS maintains the multidimensional index on every GMR.
	UseMDS bool `json:"useMDS,omitempty"`
	// BufferShards is the buffer pool's lock-stripe count (0 = default).
	BufferShards int `json:"bufferShards,omitempty"`
	// Shards runs the plan against a horizontally sharded router
	// (internal/shard) over this many engine instances instead of a single
	// database. 0 means the legacy single-engine path; Shards >= 1
	// exercises the scatter-gather router, including at 1 where it must
	// behave like a plain engine.
	Shards int `json:"shards,omitempty"`
	// RematWorkers bounds the deferred-flush worker pool (0 = GOMAXPROCS).
	RematWorkers int `json:"rematWorkers,omitempty"`
	// BufferPages is the pool capacity (0 = the paper's 150 pages).
	BufferPages int `json:"bufferPages,omitempty"`
	// Broken arms the deliberately-broken invalidation path
	// (core.Manager.TestingBreakInvalidation): updates stop notifying
	// dependent GMR entries, so audits MUST report Definition 3.2
	// violations. Exists so the mutation smoke test can prove the auditors
	// have teeth.
	Broken bool `json:"broken,omitempty"`
	// DisableMVCC turns off the versioned snapshot read path, so plans
	// exercise the blocking reader/writer lock instead. Reclustering must
	// hold its invariants in both modes.
	DisableMVCC bool `json:"disableMVCC,omitempty"`
	// Durable runs the plan against a file-backed database (gomdb.OpenAt):
	// checkpoints become real I/O and OpCrash ops kill + reopen the store.
	// The simulated Clock is unaffected by durability, so traces and cost
	// snapshots stay comparable with in-memory runs of the same plan.
	Durable bool `json:"durable,omitempty"`
	// CrashDir, when set, is the directory the durable store lives in; its
	// previous contents are wiped at run start and the files are left behind
	// at run end (so a violating run's on-disk state can be attached to its
	// reproducer). When empty, a temp directory is used and removed.
	CrashDir string `json:"-"`
	// OCB switches the run from the hand-built geometry fixture to a
	// synthetic object base generated from these parameters and the plan's
	// seed (internal/ocb). Plans for this axis come from GenerateOCB; the
	// auditors are unchanged — they are fixture-agnostic. Not combinable
	// with Shards (the router's OCB parity is pinned in the ocb package's
	// own tests instead).
	OCB *ocb.Params `json:"ocb,omitempty"`
}

func (c EngineConfig) strategy() gomdb.Strategy {
	switch c.Strategy {
	case "lazy":
		return gomdb.Lazy
	case "deferred":
		return gomdb.Deferred
	}
	return gomdb.Immediate
}

// String renders the configuration compactly for test names and artifacts.
func (c EngineConfig) String() string {
	s := c.Strategy
	if s == "" {
		s = "immediate"
	}
	if c.Memo {
		s += "+memo"
	}
	if c.SecondChance {
		s += "+2c"
	}
	if c.UseMDS {
		s += "+mds"
	}
	if c.BufferShards != 0 {
		s += fmt.Sprintf("+shards%d", c.BufferShards)
	}
	if c.Shards != 0 {
		s += fmt.Sprintf("+sharded%d", c.Shards)
	}
	if c.RematWorkers != 0 {
		s += fmt.Sprintf("+workers%d", c.RematWorkers)
	}
	if c.DisableMVCC {
		s += "+nomvcc"
	}
	if c.Durable {
		s += "+durable"
	}
	if c.OCB != nil {
		s += "+ocb"
	}
	if c.Broken {
		s += "+BROKEN"
	}
	return s
}

// Violation reports the first audit failure (or panic) of a run.
type Violation struct {
	// OpIndex is the index into Plan.Ops at which the violation surfaced
	// (len(ops) for the implicit final audit).
	OpIndex int `json:"opIndex"`
	// Msgs are the auditor messages.
	Msgs []string `json:"msgs"`
}

func (v *Violation) String() string {
	return fmt.Sprintf("op %d: %s", v.OpIndex, strings.Join(v.Msgs, "; "))
}

// Result is the outcome of one simulated run.
type Result struct {
	// Trace is one canonical line per applied op (plus audit outcomes). Two
	// runs are equivalent iff their traces are byte-identical.
	Trace []string
	// TraceHash is the FNV-1a hash of Trace.
	TraceHash uint64
	// Clock is the final simulated-cost snapshot.
	Clock storage.Clock
	// Violation is the first invariant failure, or nil for a clean run.
	Violation *Violation
	// FaultsInjected counts disk failures injected across all fault windows.
	FaultsInjected int
}

// api is the operation surface shared by *gomdb.Database (per-op locking)
// and *gomdb.Tx (inside one Batch critical section), so the same op applier
// serves both paths.
type api interface {
	New(typeName string, attrs ...gomdb.Value) (gomdb.OID, error)
	Delete(oid gomdb.OID) error
	Set(oid gomdb.OID, attr string, v gomdb.Value) error
	GetAttr(oid gomdb.OID, attr string) (gomdb.Value, error)
	Call(fn string, args ...gomdb.Value) (gomdb.Value, error)
}

// world is the mutable execution state of one run.
type world struct {
	db  *gomdb.Database
	cfg EngineConfig
	// dir is the durable store's directory ("" on in-memory runs); OpCrash
	// reopens it.
	dir string

	cuboids []gomdb.OID
	robots  []gomdb.OID
	mats    []gomdb.OID
	nextID  int64

	matted     map[int]bool // catalog index -> currently materialized
	faultsOpen bool
	faults     int // total faults injected across closed windows
}

// openSim opens the database one run (or one post-crash recovery) executes
// against: in-memory when dir is empty, file-backed (gomdb.OpenAt) otherwise.
// The geometry schema is defined either way — durable opens run it through
// Config.DefineSchema so recovery can fingerprint-check it.
func openSim(cfg EngineConfig, dir string) (*gomdb.Database, error) {
	gc := gomdb.Config{
		BufferPages:  cfg.BufferPages,
		BufferShards: cfg.BufferShards,
		RematWorkers: cfg.RematWorkers,
		DisableMVCC:  cfg.DisableMVCC,
	}
	if dir == "" {
		db := gomdb.Open(gc)
		if err := fixtures.DefineGeometry(db, false); err != nil {
			return nil, fmt.Errorf("schema: %w", err)
		}
		return db, nil
	}
	gc.Path = dir
	gc.DefineSchema = func(db *gomdb.Database) error { return fixtures.DefineGeometry(db, false) }
	return gomdb.OpenAt(gc)
}

// Run executes plan against cfg and returns the trace, cost snapshot, and
// first invariant violation (if any).
func Run(cfg EngineConfig, plan Plan) (res *Result) {
	if cfg.OCB != nil {
		return runOCB(cfg, plan)
	}
	if cfg.Shards > 0 {
		return RunSharded(cfg, plan)
	}
	res = &Result{}
	var w *world
	var db *gomdb.Database
	removeDir := ""
	cur := -1
	defer func() {
		if r := recover(); r != nil {
			res.Violation = &Violation{OpIndex: cur, Msgs: []string{fmt.Sprintf("panic: %v", r)}}
		}
		if w != nil {
			res.Clock = w.db.Clock.Snapshot()
			res.FaultsInjected = w.faults + w.db.Disk.FaultsInjected()
			db = w.db
		}
		if db != nil {
			db.Crash() // release the durable store's file handles (no-op in-memory)
		}
		if removeDir != "" {
			os.RemoveAll(removeDir)
		}
		h := fnv.New64a()
		for _, line := range res.Trace {
			h.Write([]byte(line))
			h.Write([]byte{'\n'})
		}
		res.TraceHash = h.Sum64()
	}()

	dir := ""
	if cfg.Durable {
		dir = cfg.CrashDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "gomsim-durable-")
			if err != nil {
				res.Violation = &Violation{OpIndex: -1, Msgs: []string{"durable dir: " + err.Error()}}
				return res
			}
			dir, removeDir = tmp, tmp
		} else if err := os.RemoveAll(dir); err != nil {
			// A stale store from a previous run of the same artifact directory
			// must not leak into this one.
			res.Violation = &Violation{OpIndex: -1, Msgs: []string{"durable dir: " + err.Error()}}
			return res
		}
	}

	var err error
	db, err = openSim(cfg, dir)
	if err != nil {
		res.Violation = &Violation{OpIndex: -1, Msgs: []string{"open: " + err.Error()}}
		return res
	}
	geo, err := fixtures.PopulateGeometry(db, plan.Init, plan.Seed)
	if err != nil {
		res.Violation = &Violation{OpIndex: -1, Msgs: []string{"populate: " + err.Error()}}
		return res
	}
	// Make the initial object base durable so the earliest possible crash
	// still recovers a populated world.
	if err := db.Checkpoint(); err != nil {
		res.Violation = &Violation{OpIndex: -1, Msgs: []string{"populate checkpoint: " + err.Error()}}
		return res
	}
	db.GMRs.TestingBreakInvalidation(cfg.Broken)
	w = &world{
		db:      db,
		cfg:     cfg,
		dir:     dir,
		cuboids: append([]gomdb.OID(nil), geo.Cuboids...),
		robots:  append([]gomdb.OID(nil), geo.Robots...),
		mats:    append([]gomdb.OID(nil), geo.MaterialO...),
		nextID:  geo.NextID,
		matted:  make(map[int]bool),
	}

	for i, op := range plan.Ops {
		cur = i
		detail, bad := w.apply(op)
		res.Trace = append(res.Trace, fmt.Sprintf("%04d %-10s %s", i, op.Kind, detail))
		if bad != nil {
			bad.OpIndex = i
			res.Violation = bad
			return res
		}
	}

	// Implicit final quiescent point: close any window the plan (or
	// shrinking) left open, then audit.
	cur = len(plan.Ops)
	if w.faultsOpen {
		detail, bad := w.applyFaultClear()
		res.Trace = append(res.Trace, fmt.Sprintf("%04d %-10s %s", cur, OpFaultClear, detail))
		if bad != nil {
			bad.OpIndex = cur
			res.Violation = bad
			return res
		}
	}
	detail, bad := w.applyAudit()
	res.Trace = append(res.Trace, fmt.Sprintf("%04d %-10s %s", cur, "final-audit", detail))
	if bad != nil {
		bad.OpIndex = cur
		res.Violation = bad
	}
	return res
}

// cuboid resolves an op's object selector against the live cuboid list.
func (w *world) cuboid(x int) (gomdb.OID, bool) {
	if len(w.cuboids) == 0 {
		return 0, false
	}
	return w.cuboids[x%len(w.cuboids)], true
}

// apply executes one op, returning the canonical trace detail and a
// violation if an invariant broke at this op. Operational errors are
// recorded in the detail, not escalated — the auditors decide what counts as
// engine misbehavior.
func (w *world) apply(op Op) (string, *Violation) {
	switch op.Kind {
	case OpMat:
		return w.applyMat(op), nil
	case OpDemat:
		spec := catalog[op.X%len(catalog)]
		err := w.db.Dematerialize(spec.Name)
		if err == nil {
			delete(w.matted, op.X%len(catalog))
		}
		return spec.Name + " " + errStr(err), nil
	case OpCreate:
		oid, err := w.createCuboid(w.db, op)
		if err != nil {
			return "ERR " + err.Error(), nil
		}
		return fmt.Sprintf("cuboid %s (n=%d)", oid, len(w.cuboids)), nil
	case OpDelete:
		oid, ok := w.cuboid(op.X)
		if !ok {
			return "skip (no cuboids)", nil
		}
		err := w.db.Delete(oid)
		if !w.db.Objects.Exists(oid) {
			w.dropCuboid(oid)
		}
		return fmt.Sprintf("cuboid %s (n=%d) %s", oid, len(w.cuboids), errStr(err)), nil
	case OpSetValue, OpSetVertex, OpScale, OpTranslate, OpRotate:
		detail, err := w.applyUpdate(w.db, op)
		if err != nil {
			detail += " ERR " + err.Error()
		}
		return detail, nil
	case OpForward:
		oid, ok := w.cuboid(op.X)
		if !ok {
			return "skip (no cuboids)", nil
		}
		args := []gomdb.Value{gomdb.Ref(oid)}
		if op.S == "Cuboid.distance" {
			args = append(args, gomdb.Ref(w.robots[op.N%len(w.robots)]))
		}
		v, err := w.db.Call(op.S, args...)
		if err != nil {
			return op.S + " ERR " + err.Error(), nil
		}
		return fmt.Sprintf("%s(%s) = %s", op.S, oid, v), nil
	case OpBackward:
		ms, err := w.db.Backward(op.S, op.F[0], op.F[1])
		if err != nil {
			return op.S + " ERR " + err.Error(), nil
		}
		return fmt.Sprintf("%s[%g,%g] %s", op.S, op.F[0], op.F[1], matchStr(ms)), nil
	case OpSum:
		if len(w.cuboids) == 0 {
			return "skip (no cuboids)", nil
		}
		k := 1 + op.N%len(w.cuboids)
		oids := append([]gomdb.OID(nil), w.cuboids[:k]...)
		s, err := w.db.Sum(op.S, oids)
		if err != nil {
			return op.S + " ERR " + err.Error(), nil
		}
		return fmt.Sprintf("%s over %d = %g", op.S, k, s), nil
	case OpRetrieve:
		spec := catalog[op.X%len(catalog)]
		specs := make([]gomdb.FieldSpec, spec.NumArgs+len(spec.Funcs))
		for i := range specs {
			specs[i] = gomdb.AnySpec()
		}
		specs[spec.NumArgs] = gomdb.RangeSpec(op.F[0], op.F[1])
		rows, err := w.db.Retrieve(spec.Name, specs)
		if err != nil {
			return spec.Name + " ERR " + err.Error(), nil
		}
		return fmt.Sprintf("%s[%g,%g] %s", spec.Name, op.F[0], op.F[1], rowStr(rows)), nil
	case OpFlush:
		return errStr(w.db.Flush()), nil
	case OpBatch:
		return w.applyBatch(op), nil
	case OpGC:
		ngc, err := w.db.GMRs.CollectResultGarbage()
		if err != nil {
			return "ERR " + err.Error(), nil
		}
		nrr, err := w.db.GMRs.ReorganizeRRR()
		if err != nil {
			return "ERR " + err.Error(), nil
		}
		return fmt.Sprintf("collected %d, reorganized %d", ngc, nrr), nil
	case OpAudit:
		if w.faultsOpen {
			return "skipped (faults armed)", nil
		}
		return w.applyAudit()
	case OpSnapRead:
		return w.applySnapRead(op)
	case OpFault:
		w.db.Disk.SetFaultPlan(storage.FaultPlan{Rules: op.Rule})
		w.faultsOpen = true
		return storage.FaultPlan{Rules: op.Rule}.String(), nil
	case OpFaultClear:
		return w.applyFaultClear()
	case OpRecluster:
		rep, err := w.db.Recluster()
		if err != nil {
			// Inside a fault window a relocation may abort; the abort is
			// all-or-nothing, so the auditors — not error-freedom — judge it.
			return "ERR " + err.Error(), nil
		}
		return fmt.Sprintf("moved %d/%d (hot=%d chains=%d traces=%d)",
			rep.Moved, rep.Objects, rep.HotObjects, rep.Chains, rep.Traces), nil
	case OpCrash:
		return w.applyCrash(op)
	}
	return "unknown op", &Violation{Msgs: []string{"unknown op kind " + string(op.Kind)}}
}

// applyCrash kills the durable database at the op's chosen point and reopens
// it. A recovery error is a violation — crash-safety is the invariant under
// test — and the recovered state is audited immediately, so a recovery that
// resurrects stale GMR entries or loses committed objects fails at this op,
// not at some later audit. On in-memory runs the op is a recorded no-op
// (plans stay portable across the durability axis).
func (w *world) applyCrash(op Op) (string, *Violation) {
	if w.dir == "" {
		return op.S + " skip (in-memory)", nil
	}
	var trigger string
	switch op.S {
	case "mid-batch":
		w.db.TestingFailNextCheckpoint(int64(op.N))
		trigger = fmt.Sprintf("mid-batch@%d %s", op.N, w.applyBatch(Op{Kind: OpBatch, Sub: op.Sub}))
	case "mid-flush":
		w.db.TestingFailNextCheckpoint(int64(op.N))
		trigger = fmt.Sprintf("mid-flush@%d %s", op.N, errStr(w.db.Flush()))
	case "mid-mat":
		w.db.TestingFailNextCheckpoint(int64(op.N))
		trigger = fmt.Sprintf("mid-mat@%d %s", op.N, w.applyMat(Op{Kind: OpMat, X: op.X}))
	case "torn":
		w.db.Disk.SetFaultPlan(storage.FaultPlan{Rules: op.Rule})
		trigger = "torn " + w.applyBatch(Op{Kind: OpBatch, Sub: op.Sub})
	default:
		trigger = "now"
	}
	w.faults += w.db.Disk.FaultsInjected()
	w.db.Crash()
	w.faultsOpen = false // the crash wiped any armed fault plan
	db, err := openSim(w.cfg, w.dir)
	if err != nil {
		return trigger + " -> recovery FAILED", &Violation{Msgs: []string{"recovery: " + err.Error()}}
	}
	w.db = db
	db.GMRs.TestingBreakInvalidation(w.cfg.Broken)
	w.resync()
	rec := "fresh"
	if info := db.Recovery; info != nil && info.Recovered {
		rec = fmt.Sprintf("objs=%d gmrs=%d pend=%d wal=%d torn=%d",
			info.ObjectsRestored, info.GMRsRebuilt, info.PendingDiscarded,
			info.WALPagesReplayed, info.TornPagesRepaired)
	}
	detail, bad := w.applyAudit()
	return fmt.Sprintf("%s -> recovered(%s); audit %s", trigger, rec, detail), bad
}

// resync rebuilds the world's object and GMR bookkeeping from the recovered
// database: work after the last committed checkpoint is gone (created
// cuboids vanish, deletes un-happen) and only checkpointed GMRs come back.
// Extent order is insertion order, preserved verbatim through checkpoint and
// recovery, so the resynced lists are deterministic.
func (w *world) resync() {
	w.cuboids = w.db.Objects.Extension("Cuboid")
	w.robots = w.db.Objects.Extension("Robot")
	w.mats = w.db.Objects.Extension("Material")
	w.matted = make(map[int]bool)
	for ci, spec := range catalog {
		if _, ok := w.db.GMRs.Get(spec.Name); ok {
			w.matted[ci] = true
		}
	}
}

func (w *world) applyMat(op Op) string {
	ci := op.X % len(catalog)
	spec := catalog[ci]
	_, err := w.db.Materialize(gomdb.MaterializeOptions{
		Name:         spec.Name,
		Funcs:        spec.Funcs,
		Strategy:     w.cfg.strategy(),
		Complete:     spec.Complete,
		MaxEntries:   spec.MaxEntries,
		SecondChance: w.cfg.SecondChance,
		UseMDS:       w.cfg.UseMDS,
		MemoCache:    w.cfg.Memo,
	})
	if err == nil {
		w.matted[ci] = true
	}
	return spec.Name + " " + errStr(err)
}

func (w *world) applyUpdate(a api, op Op) (string, error) {
	oid, ok := w.cuboid(op.X)
	if !ok {
		return "skip (no cuboids)", nil
	}
	switch op.Kind {
	case OpSetValue:
		return fmt.Sprintf("%s.Value=%g", oid, op.F[0]),
			a.Set(oid, "Value", gomdb.Float(op.F[0]))
	case OpSetVertex:
		attr := fmt.Sprintf("V%d", 1+op.N%8)
		vref, err := a.GetAttr(oid, attr)
		if err != nil {
			return oid.String() + "." + attr, err
		}
		return fmt.Sprintf("%s.%s.%s=%g", oid, attr, op.S, op.F[0]),
			a.Set(vref.R, op.S, gomdb.Float(op.F[0]))
	case OpScale, OpTranslate:
		vec, err := a.New("Vertex", gomdb.Float(op.F[0]), gomdb.Float(op.F[1]), gomdb.Float(op.F[2]))
		if err != nil {
			return "new vertex", err
		}
		opName := "Cuboid.scale"
		if op.Kind == OpTranslate {
			opName = "Cuboid.translate"
		}
		_, err = a.Call(opName, gomdb.Ref(oid), gomdb.Ref(vec))
		return fmt.Sprintf("%s(%s, [%g %g %g])", opName, oid, op.F[0], op.F[1], op.F[2]), err
	case OpRotate:
		_, err := a.Call("Cuboid.rotate", gomdb.Ref(oid), gomdb.Float(op.F[0]), gomdb.Str(op.S))
		return fmt.Sprintf("rotate(%s, %g, %s)", oid, op.F[0], op.S), err
	}
	return "", fmt.Errorf("sim: %s is not an update op", op.Kind)
}

func (w *world) applyBatch(op Op) string {
	var parts []string
	err := w.db.Batch(func(tx *gomdb.Tx) error {
		for _, sub := range op.Sub {
			var detail string
			var serr error
			switch sub.Kind {
			case OpCreate:
				var oid gomdb.OID
				oid, serr = w.createCuboid(tx, sub)
				detail = "create " + oid.String()
			case OpDelete:
				oid, ok := w.cuboid(sub.X)
				if !ok {
					parts = append(parts, "delete skip")
					continue
				}
				serr = tx.Delete(oid)
				if !w.db.Objects.Exists(oid) {
					w.dropCuboid(oid)
				}
				detail = "delete " + oid.String()
			default:
				detail, serr = w.applyUpdate(tx, sub)
			}
			if serr != nil {
				detail += " ERR " + serr.Error()
			}
			parts = append(parts, detail)
		}
		return nil
	})
	out := fmt.Sprintf("{%s}", strings.Join(parts, "; "))
	if err != nil {
		out += " ERR " + err.Error()
	}
	return out
}

// applySnapRead pins a snapshot view, reads through it, and optionally audits
// one materialized GMR for Definition 3.2 congruence at the pinned version.
// Read errors are workload outcomes (a fault window may be open); a stale
// snapshot result or a leaked pin is a violation. All view reads charge a
// throwaway clock, so this op never perturbs the run's cost snapshot.
func (w *world) applySnapRead(op Op) (string, *Violation) {
	view, err := w.db.SnapshotView()
	if err != nil {
		return "ERR " + err.Error(), nil
	}
	defer view.Release()
	// The pinned version itself stays out of the trace: durable runs publish
	// extra versions (checkpoints), and trace parity across the durability
	// axis is part of the determinism contract.
	parts := []string{"pinned"}

	if oid, ok := w.cuboid(op.X); ok {
		args := []gomdb.Value{gomdb.Ref(oid)}
		if op.S == "Cuboid.distance" {
			args = append(args, gomdb.Ref(w.robots[op.N%len(w.robots)]))
		}
		if v, err := view.Call(op.S, args...); err != nil {
			parts = append(parts, op.S+" ERR "+err.Error())
		} else {
			parts = append(parts, fmt.Sprintf("%s(%s)=%s", op.S, oid, v))
		}
	}
	parts = append(parts, fmt.Sprintf("ext=%d", len(view.Extension("Cuboid"))))

	// Congruence at the pinned version for one materialized catalog entry.
	// Skipped inside fault windows, like OpAudit: invariants may legitimately
	// be broken until the window's recovery. Completeness is not checked —
	// mid-plan the extension moves with every create/delete; congruence of
	// the stored results is the snapshot-level invariant.
	ci := op.X % len(catalog)
	if w.matted[ci] && !w.faultsOpen {
		spec := catalog[ci]
		rep, err := view.CheckConsistency(spec.Name, auditTol, false)
		switch {
		case err != nil:
			parts = append(parts, "audit "+spec.Name+" ERR "+err.Error())
		case rep.Err() != nil:
			return strings.Join(parts, " "),
				&Violation{Msgs: []string{"snapshot audit " + spec.Name + ": " + rep.Err().Error()}}
		default:
			parts = append(parts, "audit "+spec.Name+" ok")
		}
	}

	view.Release()
	if n := w.db.MVCCStats().ActivePins; n != 0 {
		return strings.Join(parts, " "),
			&Violation{Msgs: []string{fmt.Sprintf("snapshot pin leak: %d active after release", n)}}
	}
	return strings.Join(parts, " "), nil
}

// applyFaultClear closes the fault window: disarm injection, then recover —
// drain the deferred queue and rebuild every materialized GMR from scratch,
// so the engine returns to a state the auditors are entitled to judge.
// Recovery errors (with injection disarmed) are violations: a fault must
// never wedge the engine.
func (w *world) applyFaultClear() (string, *Violation) {
	w.faults += w.db.Disk.FaultsInjected()
	w.db.Disk.ClearFaults()
	w.faultsOpen = false
	var msgs []string
	if err := w.db.Flush(); err != nil {
		msgs = append(msgs, "recovery flush: "+err.Error())
	}
	rebuilt := 0
	for _, ci := range w.mattedIndices() {
		spec := catalog[ci]
		if err := w.db.Dematerialize(spec.Name); err != nil {
			msgs = append(msgs, "recovery demat "+spec.Name+": "+err.Error())
			continue
		}
		delete(w.matted, ci)
		if s := w.applyMat(Op{Kind: OpMat, X: ci}); !strings.HasSuffix(s, " ok") {
			msgs = append(msgs, "recovery remat "+s)
			continue
		}
		rebuilt++
	}
	if len(msgs) > 0 {
		return "recovery FAILED", &Violation{Msgs: msgs}
	}
	return fmt.Sprintf("recovered (%d GMRs rebuilt, %d faults so far)", rebuilt, w.faults), nil
}

func (w *world) mattedIndices() []int {
	out := make([]int, 0, len(w.matted))
	for ci := range w.matted {
		out = append(out, ci)
	}
	sort.Ints(out)
	return out
}

// applyAudit is a quiescent point: drain the deferred queue, then run every
// invariant auditor.
func (w *world) applyAudit() (string, *Violation) {
	if err := w.db.Flush(); err != nil {
		return "flush ERR", &Violation{Msgs: []string{"audit flush: " + err.Error()}}
	}
	msgs := Audit(w.db)
	if len(msgs) > 0 {
		return fmt.Sprintf("FAILED (%d violations)", len(msgs)), &Violation{Msgs: msgs}
	}
	return fmt.Sprintf("ok (%d gmrs, %d cuboids)", len(w.matted), len(w.cuboids)), nil
}

// createCuboid builds one cuboid through the error-checked path (the fixture
// helper panics on failure, which a fault window must not).
func (w *world) createCuboid(a api, op Op) (gomdb.OID, error) {
	ox, oy, oz := op.F[0], op.F[1], op.F[2]
	l, wd, h := op.F[3], op.F[4], op.F[5]
	corners := [8][3]float64{
		{ox, oy, oz}, {ox + l, oy, oz}, {ox + l, oy + wd, oz}, {ox, oy + wd, oz},
		{ox, oy, oz + h}, {ox + l, oy, oz + h}, {ox + l, oy + wd, oz + h}, {ox, oy + wd, oz + h},
	}
	attrs := make([]gomdb.Value, 0, 11)
	for _, c := range corners {
		v, err := a.New("Vertex", gomdb.Float(c[0]), gomdb.Float(c[1]), gomdb.Float(c[2]))
		if err != nil {
			return 0, err
		}
		attrs = append(attrs, gomdb.Ref(v))
	}
	w.nextID++
	attrs = append(attrs,
		gomdb.Ref(w.mats[op.N%len(w.mats)]),
		gomdb.Float(op.F[6]),
		gomdb.Int(w.nextID),
	)
	oid, err := a.New("Cuboid", attrs...)
	if err != nil {
		return 0, err
	}
	w.cuboids = append(w.cuboids, oid)
	return oid, nil
}

func (w *world) dropCuboid(oid gomdb.OID) {
	for i, c := range w.cuboids {
		if c == oid {
			w.cuboids = append(w.cuboids[:i], w.cuboids[i+1:]...)
			return
		}
	}
}

func errStr(err error) string {
	if err == nil {
		return "ok"
	}
	return "ERR " + err.Error()
}

func matchStr(ms []gomdb.Match) string {
	parts := make([]string, len(ms))
	for i, m := range ms {
		args := make([]string, len(m.Args))
		for j, a := range m.Args {
			args[j] = a.String()
		}
		parts[i] = strings.Join(args, ",") + "=" + m.Result.String()
	}
	return fmt.Sprintf("%d matches [%s]", len(ms), strings.Join(parts, " "))
}

func rowStr(rows []gomdb.Row) string {
	parts := make([]string, len(rows))
	for i, r := range rows {
		cols := make([]string, 0, len(r.Args)+len(r.Results))
		for _, a := range r.Args {
			cols = append(cols, a.String())
		}
		for _, v := range r.Results {
			cols = append(cols, v.String())
		}
		parts[i] = strings.Join(cols, ",")
	}
	return fmt.Sprintf("%d rows [%s]", len(rows), strings.Join(parts, " "))
}

package sim

import (
	"math/rand"

	"gomdb/internal/storage"
)

// OpKind names one simulated operation.
type OpKind string

// The operation vocabulary of the simulator. Every op is fully parameterized
// at generation time: applying an op consumes no randomness, so a recorded op
// list can be replayed, truncated, or shrunk without shifting the meaning of
// the ops that remain.
const (
	// OpMat materializes catalog entry X%len(catalog) with the run's engine
	// configuration (strategy, memo, second chance, MDS).
	OpMat OpKind = "mat"
	// OpDemat drops catalog entry X%len(catalog) if materialized.
	OpDemat OpKind = "demat"
	// OpCreate creates a Cuboid (8 vertices, material N, value F[6]) at
	// origin F[0..2] with extents F[3..5].
	OpCreate OpKind = "create"
	// OpDelete deletes live cuboid X%live.
	OpDelete OpKind = "delete"
	// OpSetValue performs the elementary update cuboid.set_Value(F[0]).
	OpSetValue OpKind = "set-value"
	// OpSetVertex sets coordinate S ("X"/"Y"/"Z") of vertex V<1+N%8> of
	// cuboid X%live to F[0] — an elementary update two references deep.
	OpSetVertex OpKind = "set-vertex"
	// OpScale calls Cuboid.scale with factors F[0..2] (a fresh transient
	// Vertex instance carries them).
	OpScale OpKind = "scale"
	// OpTranslate calls Cuboid.translate with offsets F[0..2].
	OpTranslate OpKind = "translate"
	// OpRotate calls Cuboid.rotate(F[0], S) with S an axis name.
	OpRotate OpKind = "rotate"
	// OpForward calls function S on cuboid X%live (Cuboid.distance also
	// takes robot N%2) — a forward lookup when S is materialized.
	OpForward OpKind = "forward"
	// OpBackward runs the backward range query S in [F[0], F[1]].
	OpBackward OpKind = "backward"
	// OpSum computes the aggregate Sum of S over the first 1+N%live cuboids.
	OpSum OpKind = "sum"
	// OpRetrieve runs a tabular retrieval against catalog entry
	// X%len(catalog), constraining its first result column to [F[0], F[1]].
	OpRetrieve OpKind = "retrieve"
	// OpFlush drains the deferred-rematerialization queue.
	OpFlush OpKind = "flush"
	// OpBatch applies Sub as one Database.Batch.
	OpBatch OpKind = "batch"
	// OpGC runs CollectResultGarbage and ReorganizeRRR.
	OpGC OpKind = "gc"
	// OpAudit is a quiescent point: flush, then run every invariant auditor.
	// Skipped while a fault window is open (invariants may legitimately be
	// broken until recovery).
	OpAudit OpKind = "audit"
	// OpFault arms the scriptable fault plan Rules on the simulated disk and
	// opens a fault window: subsequent op errors are tolerated and recorded.
	OpFault OpKind = "fault"
	// OpFaultClear disarms fault injection, closes the window, and runs
	// recovery (flush + rebuild of every materialized GMR) so the next audit
	// must pass.
	OpFaultClear OpKind = "fault-clear"
	// OpSnapRead pins an MVCC snapshot view and reads through it: a forward
	// call of S on cuboid X%live at the pinned version, the Cuboid extension,
	// and — when catalog entry X%len(catalog) is materialized and no fault
	// window is open — a Definition 3.2 congruence audit of that GMR at the
	// pinned version. The pin must be fully released afterwards (a leaked pin
	// is a violation), and snapshot reads charge a throwaway clock, so plans
	// with and without snap-read ops produce identical cost snapshots.
	OpSnapRead OpKind = "snap-read"
	// OpRecluster runs the trace-driven reclustering pass (Database.Recluster):
	// the object base is physically rewritten in affinity order and the OID
	// directory remapped. Errors inside a fault window are workload outcomes
	// (the relocation aborts all-or-nothing); outside one they are violations.
	// Every subsequent audit additionally verifies the directory <-> heap
	// correspondence, so a botched relocation cannot hide.
	OpRecluster OpKind = "recluster"
	// OpCrash kills and reopens a durable database (a no-op on in-memory
	// runs). S selects the crash point: "now" crashes between operations;
	// "mid-batch" cuts the WAL append of the end-of-batch checkpoint after N
	// bytes while committing Sub; "mid-flush" and "mid-mat" cut the
	// checkpoint of a Flush or of materializing catalog entry X the same
	// way; "torn" arms the Rule fault plan (FaultTornWrite) so the batch
	// checkpoint's data-file apply tears a page write in half. After the
	// trigger the database is crashed and reopened: a recovery error is a
	// violation, and the recovered state is audited immediately.
	OpCrash OpKind = "crash"
)

// Op is one fully-parameterized simulated operation. The field meanings
// depend on Kind (see the OpKind constants); unused fields stay zero so the
// JSON encoding of an op list (the replay artifact) stays compact.
type Op struct {
	Kind OpKind              `json:"kind"`
	X    int                 `json:"x,omitempty"`
	N    int                 `json:"n,omitempty"`
	S    string              `json:"s,omitempty"`
	F    []float64           `json:"f,omitempty"`
	Sub  []Op                `json:"sub,omitempty"`
	Rule []storage.FaultRule `json:"rule,omitempty"`
}

// Plan is a complete, self-contained workload: the seed that derives the
// initial object base, the initial cuboid count, and the op list. Two runs of
// the same plan against the same engine configuration produce byte-identical
// traces and clock snapshots.
type Plan struct {
	Seed int64 `json:"seed"`
	Init int   `json:"init"`
	Ops  []Op  `json:"ops"`
}

// gmrSpec is one entry of the fixed GMR catalog the generator draws from.
// The catalog spans the shapes the paper distinguishes: a two-function GMR,
// single-function GMRs, a binary-argument GMR (Cuboid x Robot), and an
// incomplete bounded GMR acting as a result cache.
type gmrSpec struct {
	Name       string
	Funcs      []string
	Complete   bool
	MaxEntries int
	NumArgs    int
}

var catalog = []gmrSpec{
	{Name: "Gvw", Funcs: []string{"Cuboid.volume", "Cuboid.weight"}, Complete: true, NumArgs: 1},
	{Name: "Glen", Funcs: []string{"Cuboid.length"}, Complete: true, NumArgs: 1},
	{Name: "Gdist", Funcs: []string{"Cuboid.distance"}, Complete: true, NumArgs: 2},
	{Name: "Gcache", Funcs: []string{"Cuboid.height"}, Complete: false, MaxEntries: 24, NumArgs: 1},
}

// forwardFuncs are the side-effect-free functions OpForward draws from —
// a mix of materialized-catalog functions and never-materialized ones.
var forwardFuncs = []string{
	"Cuboid.volume", "Cuboid.weight", "Cuboid.length", "Cuboid.width",
	"Cuboid.height", "Cuboid.distance",
}

// backwardFuncs are the numeric functions backward queries target.
var backwardFuncs = []string{"Cuboid.volume", "Cuboid.weight", "Cuboid.length", "Cuboid.height"}

// GenOptions tunes Generate.
type GenOptions struct {
	// Ops is the target op count (audits included). Default 150.
	Ops int
	// Faults inserts 1-2 scripted fault windows into the plan.
	Faults bool
	// Crashes inserts 1-3 crash-restart points into the plan. Crash ops are
	// no-ops unless the run's EngineConfig is Durable.
	Crashes bool
	// Recluster inserts 1-3 reclustering passes into the plan — after fault
	// and crash injection, so passes can land inside fault windows and
	// adjacent to crash points.
	Recluster bool
}

// Generate derives a complete workload plan from seed. All randomness is
// consumed here: the returned plan is a pure value, so the same seed always
// yields the same plan regardless of how (or how often) it is executed.
func Generate(seed int64, opt GenOptions) Plan {
	n := opt.Ops
	if n <= 0 {
		n = 150
	}
	rng := rand.New(rand.NewSource(seed))
	p := Plan{Seed: seed, Init: 6 + rng.Intn(8)}

	// Materialize the two-function GMR up front (the workload's center of
	// gravity), plus one random other catalog entry half the time.
	p.Ops = append(p.Ops, Op{Kind: OpMat, X: 0})
	if rng.Intn(2) == 0 {
		p.Ops = append(p.Ops, Op{Kind: OpMat, X: 1 + rng.Intn(len(catalog)-1)})
	}

	sinceAudit := 0
	for len(p.Ops) < n {
		if sinceAudit >= 20 {
			p.Ops = append(p.Ops, Op{Kind: OpAudit})
			sinceAudit = 0
			continue
		}
		p.Ops = append(p.Ops, genOp(rng))
		sinceAudit++
	}

	if opt.Faults {
		injectFaultWindows(rng, &p)
	}
	if opt.Crashes {
		injectCrashes(rng, &p)
	}
	if opt.Recluster {
		injectReclusters(rng, &p)
	}
	return p
}

// genOp draws one weighted operation.
func genOp(rng *rand.Rand) Op {
	switch w := rng.Intn(100); {
	case w < 16: // forward lookups dominate, as in the paper's workloads
		return Op{Kind: OpForward, X: rng.Intn(1 << 16), N: rng.Intn(2),
			S: forwardFuncs[rng.Intn(len(forwardFuncs))]}
	case w < 25:
		return genUpdateOp(rng)
	case w < 33:
		return Op{Kind: OpScale, X: rng.Intn(1 << 16),
			F: []float64{0.8 + rng.Float64()*0.45, 0.8 + rng.Float64()*0.45, 0.8 + rng.Float64()*0.45}}
	case w < 39:
		return Op{Kind: OpTranslate, X: rng.Intn(1 << 16),
			F: []float64{rng.Float64()*20 - 10, rng.Float64()*20 - 10, rng.Float64()*20 - 10}}
	case w < 45:
		return Op{Kind: OpRotate, X: rng.Intn(1 << 16), S: []string{"x", "y", "z"}[rng.Intn(3)],
			F: []float64{rng.Float64() * 3.14159}}
	case w < 53:
		return genCreate(rng)
	case w < 57:
		return Op{Kind: OpDelete, X: rng.Intn(1 << 16)}
	case w < 64:
		lo := rng.Float64() * 400
		return Op{Kind: OpBackward, S: backwardFuncs[rng.Intn(len(backwardFuncs))],
			F: []float64{lo, lo + rng.Float64()*600}}
	case w < 68:
		return Op{Kind: OpSum, S: "Cuboid.volume", N: rng.Intn(1 << 16)}
	case w < 73:
		lo := rng.Float64() * 400
		return Op{Kind: OpRetrieve, X: rng.Intn(len(catalog)), F: []float64{lo, lo + rng.Float64()*600}}
	case w < 79:
		return Op{Kind: OpFlush}
	case w < 85:
		sub := make([]Op, 2+rng.Intn(4))
		for i := range sub {
			sub[i] = genUpdateOp(rng)
		}
		return Op{Kind: OpBatch, Sub: sub}
	case w < 88:
		return Op{Kind: OpGC}
	case w < 92:
		return Op{Kind: OpDemat, X: rng.Intn(len(catalog))}
	case w < 95:
		return Op{Kind: OpMat, X: rng.Intn(len(catalog))}
	case w < 98:
		return Op{Kind: OpSnapRead, X: rng.Intn(1 << 16), N: rng.Intn(2),
			S: forwardFuncs[rng.Intn(len(forwardFuncs))]}
	default:
		return Op{Kind: OpAudit}
	}
}

// genUpdateOp draws one elementary-update op — the subset allowed inside a
// batch body.
func genUpdateOp(rng *rand.Rand) Op {
	switch rng.Intn(4) {
	case 0:
		return Op{Kind: OpSetValue, X: rng.Intn(1 << 16), F: []float64{10 + rng.Float64()*90}}
	case 1:
		return Op{Kind: OpSetVertex, X: rng.Intn(1 << 16), N: rng.Intn(8),
			S: []string{"X", "Y", "Z"}[rng.Intn(3)], F: []float64{rng.Float64()*100 - 50}}
	case 2:
		return genCreate(rng)
	default:
		return Op{Kind: OpDelete, X: rng.Intn(1 << 16)}
	}
}

func genCreate(rng *rand.Rand) Op {
	return Op{Kind: OpCreate, N: rng.Intn(4), F: []float64{
		rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100, // origin
		1 + rng.Float64()*9, 1 + rng.Float64()*9, 1 + rng.Float64()*9, // extents
		10 + rng.Float64()*90, // value
	}}
}

// genCrash draws one fully-parameterized crash-restart op. The WAL cut
// offsets (N) span zero to well past a typical checkpoint batch, so crashes
// land before the first record, mid-record, between records, and after the
// commit (in which case the trigger succeeds and the crash is merely
// post-commit).
func genCrash(rng *rand.Rand) Op {
	batch := func() []Op {
		sub := make([]Op, 1+rng.Intn(4))
		for i := range sub {
			sub[i] = genUpdateOp(rng)
		}
		return sub
	}
	switch rng.Intn(5) {
	case 0:
		return Op{Kind: OpCrash, S: "now"}
	case 1:
		return Op{Kind: OpCrash, S: "mid-batch", N: rng.Intn(20000), Sub: batch()}
	case 2:
		return Op{Kind: OpCrash, S: "mid-flush", N: rng.Intn(20000)}
	case 3:
		return Op{Kind: OpCrash, S: "mid-mat", X: rng.Intn(len(catalog)), N: rng.Intn(20000)}
	default:
		return Op{Kind: OpCrash, S: "torn", Sub: batch(), Rule: []storage.FaultRule{
			{Op: storage.FaultTornWrite, After: rng.Intn(3), Count: 1},
		}}
	}
}

// injectCrashes inserts one to three crash-restart points into the plan at
// random positions.
func injectCrashes(rng *rand.Rand, p *Plan) {
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		at := rng.Intn(len(p.Ops) + 1)
		op := genCrash(rng)
		p.Ops = append(p.Ops[:at], append([]Op{op}, p.Ops[at:]...)...)
	}
}

// injectReclusters inserts one to three reclustering passes at random
// positions. It runs after fault/crash injection on purpose: a pass may land
// inside an open fault window (the relocation must abort cleanly) or right
// next to a crash point (recovery must come back in exactly one layout).
// genOp's weights are untouched, so plans generated without the option are
// byte-identical to what earlier generator versions produced.
func injectReclusters(rng *rand.Rand, p *Plan) {
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		at := rng.Intn(len(p.Ops) + 1)
		p.Ops = append(p.Ops[:at], append([]Op{{Kind: OpRecluster}}, p.Ops[at:]...)...)
	}
}

// injectFaultWindows inserts one or two [OpFault ... OpFaultClear] windows
// into the plan at random positions. Rules are transient or persistent (a
// persistent rule lives until the window's OpFaultClear), target reads,
// writes, or both, and optionally a single heap file.
func injectFaultWindows(rng *rand.Rand, p *Plan) {
	windows := 1 + rng.Intn(2)
	for w := 0; w < windows; w++ {
		rules := make([]storage.FaultRule, 1+rng.Intn(2))
		for i := range rules {
			r := storage.FaultRule{
				Op:    []storage.FaultOp{storage.FaultAny, storage.FaultRead, storage.FaultWrite}[rng.Intn(3)],
				After: rng.Intn(6),
			}
			if rng.Intn(2) == 0 {
				r.Count = 1 + rng.Intn(3) // transient
			}
			if f := rng.Intn(5); f > 0 {
				r.File = []string{"objects", "GMR:", "RRR", "IDX:"}[f-1]
			}
			rules[i] = r
		}
		at := rng.Intn(len(p.Ops))
		span := 4 + rng.Intn(10)
		end := at + 1 + span
		if end > len(p.Ops) {
			end = len(p.Ops)
		}
		// Insert the clear first so the arm index stays valid.
		p.Ops = append(p.Ops[:end], append([]Op{{Kind: OpFaultClear}}, p.Ops[end:]...)...)
		p.Ops = append(p.Ops[:at], append([]Op{{Kind: OpFault, Rule: rules}}, p.Ops[at:]...)...)
	}
}

package sim

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"gomdb/internal/ocb"
)

// ocbTestParams is the sim harness's generated-base fixture: deep enough for
// Omid/Odeep to exist, small enough that every matrix cell stays fast.
var ocbTestParams = ocb.Params{Classes: 4, FanOut: 2, Depth: 2, NumAttrs: 3,
	Instances: 12, HotFraction: 0.25, Skew: 0.8}

// TestOCBMatrix crosses the OCB fixture with the axes the hand-built fixture
// already covers: strategies x {base, durable, durable+crashes, faults,
// recluster, MVCC-off}. The auditors are the same fixture-agnostic ones —
// Def 3.2 congruence, RRR support, pins, directory — now judging object
// bases nobody hand-designed.
func TestOCBMatrix(t *testing.T) {
	type cell struct {
		name string
		cfg  EngineConfig
		opt  GenOptions
	}
	cells := []cell{
		{"base", EngineConfig{}, GenOptions{Ops: 120}},
		{"durable", EngineConfig{Durable: true}, GenOptions{Ops: 120}},
		{"durable+crashes", EngineConfig{Durable: true}, GenOptions{Ops: 120, Crashes: true}},
		{"faults", EngineConfig{}, GenOptions{Ops: 120, Faults: true}},
		{"recluster", EngineConfig{}, GenOptions{Ops: 120, Recluster: true}},
		{"nomvcc", EngineConfig{DisableMVCC: true}, GenOptions{Ops: 120}},
	}
	for _, strat := range []string{"immediate", "lazy", "deferred"} {
		for _, c := range cells {
			cfg := c.cfg
			cfg.Strategy = strat
			cfg.OCB = &ocbTestParams
			opt := c.opt
			name := strat + "/" + c.name
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				seeds := int64(3)
				if testing.Short() {
					seeds = 1
				}
				for seed := int64(300); seed < 300+seeds; seed++ {
					run := cfg
					if run.Durable {
						run.CrashDir = filepath.Join(t.TempDir(), fmt.Sprintf("seed%d", seed))
					}
					plan := GenerateOCB(seed, ocbTestParams, opt)
					res := requireClean(t, run, plan)
					if opt.Crashes && !traceContains(res.Trace, "crash") {
						t.Fatal("crash cell generated no crash ops (vacuous)")
					}
					if opt.Recluster && !traceContains(res.Trace, "recluster") {
						t.Fatal("recluster cell generated no recluster ops (vacuous)")
					}
					if opt.Faults && !traceContains(res.Trace, "fault") {
						t.Fatal("fault cell generated no fault windows (vacuous)")
					}
				}
			})
		}
	}
}

func traceContains(trace []string, substr string) bool {
	for _, line := range trace {
		if strings.Contains(line, substr) {
			return true
		}
	}
	return false
}

// TestOCBChargeDeterminism extends the charge-parity pin to the generated
// fixture: same plan, same strategy — byte-identical trace and Clock across
// buffer-shard counts {1,4} and remat-worker counts {1,4}.
func TestOCBChargeDeterminism(t *testing.T) {
	for _, strat := range []string{"immediate", "lazy", "deferred"} {
		strat := strat
		t.Run(strat, func(t *testing.T) {
			t.Parallel()
			plan := GenerateOCB(42, ocbTestParams, GenOptions{Ops: 120})
			base := requireClean(t, EngineConfig{Strategy: strat, BufferShards: 1, RematWorkers: 1, OCB: &ocbTestParams}, plan)
			for _, shards := range []int{1, 4} {
				for _, workers := range []int{1, 4} {
					cfg := EngineConfig{Strategy: strat, BufferShards: shards, RematWorkers: workers, OCB: &ocbTestParams}
					res := requireClean(t, cfg, plan)
					if res.TraceHash != base.TraceHash {
						t.Fatalf("%s: trace diverges from shards=1,workers=1 baseline:\n%s",
							cfg, firstTraceDiff(base.Trace, res.Trace))
					}
					if res.Clock != base.Clock {
						t.Fatalf("%s: clock snapshot diverges:\nbase: %+v\n got: %+v", cfg, base.Clock, res.Clock)
					}
				}
			}
		})
	}
}

// TestOCBSeedStability: GenerateOCB is pure — the same seed expands to the
// same plan, and the plan replays to the same trace hash.
func TestOCBSeedStability(t *testing.T) {
	a := GenerateOCB(7, ocbTestParams, GenOptions{Ops: 100, Faults: true})
	b := GenerateOCB(7, ocbTestParams, GenOptions{Ops: 100, Faults: true})
	if len(a.Ops) != len(b.Ops) {
		t.Fatalf("plan shape differs: %d vs %d ops", len(a.Ops), len(b.Ops))
	}
	for i := range a.Ops {
		if fmt.Sprint(a.Ops[i]) != fmt.Sprint(b.Ops[i]) {
			t.Fatalf("op %d differs: %+v vs %+v", i, a.Ops[i], b.Ops[i])
		}
	}
	cfg := EngineConfig{Strategy: "deferred", OCB: &ocbTestParams}
	r1 := requireClean(t, cfg, a)
	r2 := requireClean(t, cfg, b)
	if r1.TraceHash != r2.TraceHash {
		t.Fatalf("identical plans produced different traces:\n%s", firstTraceDiff(r1.Trace, r2.Trace))
	}
}

// TestOCBFaultWindowsBite sums injected faults across a seed window; zero
// would mean the OCB fault cells are vacuous.
func TestOCBFaultWindowsBite(t *testing.T) {
	total := 0
	for seed := int64(1); seed <= 8; seed++ {
		plan := GenerateOCB(seed, ocbTestParams, GenOptions{Ops: 120, Faults: true})
		res := requireClean(t, EngineConfig{Strategy: "lazy", OCB: &ocbTestParams}, plan)
		total += res.FaultsInjected
	}
	if total == 0 {
		t.Fatal("8 seeds of OCB fault plans injected zero faults")
	}
	t.Logf("faults injected across 8 seeds: %d", total)
}

// TestOCBMutationSmoke proves the auditors keep their teeth on generated
// bases: broken invalidation must be caught, the reproducer must shrink, and
// the artifact must replay — the OCB axis rides the existing Artifact
// machinery because EngineConfig (with its OCB field) is embedded in it.
func TestOCBMutationSmoke(t *testing.T) {
	cfg := EngineConfig{Strategy: "immediate", Broken: true, OCB: &ocbTestParams}
	var failing Plan
	found := false
	for seed := int64(1); seed <= 5 && !found; seed++ {
		plan := GenerateOCB(seed, ocbTestParams, GenOptions{Ops: 120})
		if Run(cfg, plan).Violation != nil {
			failing, found = plan, true
		}
	}
	if !found {
		t.Fatal("broken invalidation survived 5 OCB seeds undetected: auditors have no teeth on generated bases")
	}
	a := ShrinkToArtifact(cfg, failing, t.Name())
	if len(a.Ops) >= len(failing.Ops) {
		t.Errorf("shrink did not reduce: %d -> %d ops", len(failing.Ops), len(a.Ops))
	}
	path := filepath.Join(t.TempDir(), "repro.json")
	if err := a.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Config.OCB == nil {
		t.Fatal("artifact round-trip dropped the OCB params")
	}
	if res := Replay(loaded); res.Violation == nil {
		t.Fatal("replayed OCB artifact no longer reproduces the violation")
	}
}

// TestOCBShardedRejected: the OCB axis refuses the sharded sim path with a
// typed violation instead of misbehaving (router parity for generated bases
// is pinned in internal/ocb).
func TestOCBShardedRejected(t *testing.T) {
	cfg := EngineConfig{Strategy: "lazy", Shards: 2, OCB: &ocbTestParams}
	res := Run(cfg, GenerateOCB(1, ocbTestParams, GenOptions{Ops: 20}))
	if res.Violation == nil || !strings.Contains(res.Violation.String(), "not supported") {
		t.Fatalf("sharded OCB run should be rejected, got %v", res.Violation)
	}
}

package sim

// Shrink reduces an op list to a (locally) minimal sub-list that still makes
// fails return true, using the classic ddmin delta-debugging loop: try
// removing ever-finer chunks, restarting at coarse granularity after every
// successful reduction. The result is 1-minimal with respect to chunk
// removal — dropping any single remaining op stops the failure.
//
// Shrinking relies on the op encoding being position-independent: ops select
// objects by index modulo the live population and tolerate "object missing"
// outcomes, so removing earlier ops never makes a later op meaningless, only
// different. fails must be deterministic (run the plan through Run with a
// fixed config).
func Shrink(ops []Op, fails func([]Op) bool) []Op {
	if !fails(ops) {
		return ops
	}
	n := 2
	for len(ops) >= 2 {
		chunk := (len(ops) + n - 1) / n
		reduced := false
		for start := 0; start < len(ops); start += chunk {
			end := start + chunk
			if end > len(ops) {
				end = len(ops)
			}
			candidate := make([]Op, 0, len(ops)-(end-start))
			candidate = append(candidate, ops[:start]...)
			candidate = append(candidate, ops[end:]...)
			if len(candidate) > 0 && fails(candidate) {
				ops = candidate
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if reduced {
			continue
		}
		if n >= len(ops) {
			break
		}
		n = min(2*n, len(ops))
	}
	// Final singleton pass: with 1-op chunks the loop above already tried
	// removing each op, but a last sweep after the final granularity bump
	// catches ops whose removal only became safe late.
	for i := 0; i < len(ops) && len(ops) > 1; {
		candidate := make([]Op, 0, len(ops)-1)
		candidate = append(candidate, ops[:i]...)
		candidate = append(candidate, ops[i+1:]...)
		if fails(candidate) {
			ops = candidate
		} else {
			i++
		}
	}
	return ops
}

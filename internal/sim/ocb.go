package sim

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"sort"
	"strings"

	"gomdb"
	"gomdb/internal/ocb"
	"gomdb/internal/storage"
)

// GenerateOCB derives a complete workload plan over a synthetic OCB base:
// the op stream comes from ocb.GenStream (all randomness consumed at
// generation time, targets resolved to indices), and the injectors — fault
// windows, crash-restart points, reclustering passes — are the same ones the
// geometry generator uses, appended after generation so base plans stay
// byte-identical whether or not an option is on. Run the plan with an
// EngineConfig whose OCB field carries the same Params.
func GenerateOCB(seed int64, p ocb.Params, opt GenOptions) Plan {
	n := opt.Ops
	if n <= 0 {
		n = 150
	}
	plan := Plan{Seed: seed, Ops: convertOCBOps(ocb.GenStream(p, seed, ocb.StreamOptions{Ops: n}))}
	rng := rand.New(rand.NewSource(seed))
	if opt.Faults {
		injectFaultWindows(rng, &plan)
	}
	if opt.Crashes {
		injectOCBCrashes(rng, &plan, p)
	}
	if opt.Recluster {
		injectReclusters(rng, &plan)
	}
	return plan
}

func convertOCBOps(stream []ocb.Op) []Op {
	ops := make([]Op, len(stream))
	for i, o := range stream {
		ops[i] = Op{Kind: OpKind(o.Kind), X: o.X, N: o.N, S: o.S, F: o.F}
		if len(o.Sub) > 0 {
			ops[i].Sub = convertOCBOps(o.Sub)
		}
	}
	return ops
}

// genOCBUpdate draws one OCB elementary update — the batch-body vocabulary
// (streams over a generated base never create or delete objects).
func genOCBUpdate(rng *rand.Rand, p ocb.Params) Op {
	return Op{Kind: OpSetValue, X: rng.Intn(1 << 16), N: rng.Intn(p.Classes),
		S: fmt.Sprintf("N%d", rng.Intn(p.NumAttrs)), F: []float64{10 + rng.Float64()*90}}
}

// genOCBCrash mirrors genCrash with OCB-safe batch bodies.
func genOCBCrash(rng *rand.Rand, p ocb.Params) Op {
	batch := func() []Op {
		sub := make([]Op, 1+rng.Intn(4))
		for i := range sub {
			sub[i] = genOCBUpdate(rng, p)
		}
		return sub
	}
	switch rng.Intn(5) {
	case 0:
		return Op{Kind: OpCrash, S: "now"}
	case 1:
		return Op{Kind: OpCrash, S: "mid-batch", N: rng.Intn(20000), Sub: batch()}
	case 2:
		return Op{Kind: OpCrash, S: "mid-flush", N: rng.Intn(20000)}
	case 3:
		return Op{Kind: OpCrash, S: "mid-mat", X: rng.Intn(len(ocb.Catalog(p))), N: rng.Intn(20000)}
	default:
		return Op{Kind: OpCrash, S: "torn", Sub: batch(), Rule: []storage.FaultRule{
			{Op: storage.FaultTornWrite, After: rng.Intn(3), Count: 1},
		}}
	}
}

func injectOCBCrashes(rng *rand.Rand, p *Plan, params ocb.Params) {
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		at := rng.Intn(len(p.Ops) + 1)
		op := genOCBCrash(rng, params)
		p.Ops = append(p.Ops[:at], append([]Op{op}, p.Ops[at:]...)...)
	}
}

// ocbWorld is the mutable execution state of one OCB-fixture run. Streams
// contain no creates or deletes, so the per-class OID lists are stable; crash
// recovery still re-reads them from the extensions (work after the last
// checkpoint is gone either way for GMRs).
type ocbWorld struct {
	db  *gomdb.Database
	cfg EngineConfig
	dir string
	p   ocb.Params

	classes [][]gomdb.OID
	cat     []ocb.GMRSpec

	matted     map[int]bool
	faultsOpen bool
	faults     int
}

// openSimOCB opens the database an OCB run executes against. The schema is a
// pure function of Params, so the durable DefineSchema closure re-derives it
// identically on recovery.
func openSimOCB(cfg EngineConfig, dir string) (*gomdb.Database, error) {
	p := *cfg.OCB
	gc := gomdb.Config{
		BufferPages:  cfg.BufferPages,
		BufferShards: cfg.BufferShards,
		RematWorkers: cfg.RematWorkers,
		DisableMVCC:  cfg.DisableMVCC,
	}
	if dir == "" {
		db := gomdb.Open(gc)
		if err := ocb.Define(db, p); err != nil {
			return nil, fmt.Errorf("schema: %w", err)
		}
		return db, nil
	}
	gc.Path = dir
	gc.DefineSchema = func(db *gomdb.Database) error { return ocb.Define(db, p) }
	return gomdb.OpenAt(gc)
}

// runOCB executes plan against a generated OCB base. It mirrors Run — same
// trace format, same durable-directory protocol, same implicit final
// fault-clear and audit — with the fixture swapped; the invariant auditors
// (Audit) are untouched, since they walk whatever GMR catalog is live.
func runOCB(cfg EngineConfig, plan Plan) (res *Result) {
	res = &Result{}
	var w *ocbWorld
	var db *gomdb.Database
	removeDir := ""
	cur := -1
	defer func() {
		if r := recover(); r != nil {
			res.Violation = &Violation{OpIndex: cur, Msgs: []string{fmt.Sprintf("panic: %v", r)}}
		}
		if w != nil {
			res.Clock = w.db.Clock.Snapshot()
			res.FaultsInjected = w.faults + w.db.Disk.FaultsInjected()
			db = w.db
		}
		if db != nil {
			db.Crash()
		}
		if removeDir != "" {
			os.RemoveAll(removeDir)
		}
		h := fnv.New64a()
		for _, line := range res.Trace {
			h.Write([]byte(line))
			h.Write([]byte{'\n'})
		}
		res.TraceHash = h.Sum64()
	}()

	if cfg.Shards > 0 {
		res.Violation = &Violation{OpIndex: -1, Msgs: []string{"ocb: sharded sim runs are not supported (router parity is pinned in internal/ocb)"}}
		return res
	}
	if err := cfg.OCB.Validate(); err != nil {
		res.Violation = &Violation{OpIndex: -1, Msgs: []string{"params: " + err.Error()}}
		return res
	}

	dir := ""
	if cfg.Durable {
		dir = cfg.CrashDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "gomsim-ocb-")
			if err != nil {
				res.Violation = &Violation{OpIndex: -1, Msgs: []string{"durable dir: " + err.Error()}}
				return res
			}
			dir, removeDir = tmp, tmp
		} else if err := os.RemoveAll(dir); err != nil {
			res.Violation = &Violation{OpIndex: -1, Msgs: []string{"durable dir: " + err.Error()}}
			return res
		}
	}

	var err error
	db, err = openSimOCB(cfg, dir)
	if err != nil {
		res.Violation = &Violation{OpIndex: -1, Msgs: []string{"open: " + err.Error()}}
		return res
	}
	base, err := ocb.Gen(*cfg.OCB, plan.Seed)
	if err != nil {
		res.Violation = &Violation{OpIndex: -1, Msgs: []string{"gen: " + err.Error()}}
		return res
	}
	world, err := ocb.Populate(db, base)
	if err != nil {
		res.Violation = &Violation{OpIndex: -1, Msgs: []string{"populate: " + err.Error()}}
		return res
	}
	if err := db.Checkpoint(); err != nil {
		res.Violation = &Violation{OpIndex: -1, Msgs: []string{"populate checkpoint: " + err.Error()}}
		return res
	}
	db.GMRs.TestingBreakInvalidation(cfg.Broken)
	w = &ocbWorld{
		db:      db,
		cfg:     cfg,
		dir:     dir,
		p:       *cfg.OCB,
		classes: world.Classes,
		cat:     ocb.Catalog(*cfg.OCB),
		matted:  make(map[int]bool),
	}

	for i, op := range plan.Ops {
		cur = i
		detail, bad := w.apply(op)
		res.Trace = append(res.Trace, fmt.Sprintf("%04d %-10s %s", i, op.Kind, detail))
		if bad != nil {
			bad.OpIndex = i
			res.Violation = bad
			return res
		}
	}

	cur = len(plan.Ops)
	if w.faultsOpen {
		detail, bad := w.applyFaultClear()
		res.Trace = append(res.Trace, fmt.Sprintf("%04d %-10s %s", cur, OpFaultClear, detail))
		if bad != nil {
			bad.OpIndex = cur
			res.Violation = bad
			return res
		}
	}
	detail, bad := w.applyAudit()
	res.Trace = append(res.Trace, fmt.Sprintf("%04d %-10s %s", cur, "final-audit", detail))
	if bad != nil {
		bad.OpIndex = cur
		res.Violation = bad
	}
	return res
}

// inst resolves an op's (class, index) selector to a live OID.
func (w *ocbWorld) inst(class, x int) gomdb.OID {
	list := w.classes[class%len(w.classes)]
	return list[x%len(list)]
}

func (w *ocbWorld) apply(op Op) (string, *Violation) {
	switch op.Kind {
	case OpMat:
		return w.applyMat(op), nil
	case OpDemat:
		spec := w.cat[op.X%len(w.cat)]
		err := w.db.Dematerialize(spec.Name)
		if err == nil {
			delete(w.matted, op.X%len(w.cat))
		}
		return spec.Name + " " + errStr(err), nil
	case OpSetValue:
		detail, err := w.applyUpdate(w.db, op)
		if err != nil {
			detail += " ERR " + err.Error()
		}
		return detail, nil
	case OpForward:
		oid := w.inst(0, op.X)
		v, err := w.db.Call(op.S, gomdb.Ref(oid))
		if err != nil {
			return op.S + " ERR " + err.Error(), nil
		}
		return fmt.Sprintf("%s(%s) = %s", op.S, oid, v), nil
	case OpBackward:
		ms, err := w.db.Backward(op.S, op.F[0], op.F[1])
		if err != nil {
			return op.S + " ERR " + err.Error(), nil
		}
		return fmt.Sprintf("%s[%g,%g] %s", op.S, op.F[0], op.F[1], matchStr(ms)), nil
	case OpSum:
		c0 := w.classes[0]
		k := 1 + op.N%len(c0)
		s, err := w.db.Sum(op.S, append([]gomdb.OID(nil), c0[:k]...))
		if err != nil {
			return op.S + " ERR " + err.Error(), nil
		}
		return fmt.Sprintf("%s over %d = %g", op.S, k, s), nil
	case OpRetrieve:
		spec := w.cat[op.X%len(w.cat)]
		specs := []gomdb.FieldSpec{gomdb.AnySpec(), gomdb.RangeSpec(op.F[0], op.F[1])}
		rows, err := w.db.Retrieve(spec.Name, specs)
		if err != nil {
			return spec.Name + " ERR " + err.Error(), nil
		}
		return fmt.Sprintf("%s[%g,%g] %s", spec.Name, op.F[0], op.F[1], rowStr(rows)), nil
	case OpFlush:
		return errStr(w.db.Flush()), nil
	case OpBatch:
		return w.applyBatch(op), nil
	case OpGC:
		ngc, err := w.db.GMRs.CollectResultGarbage()
		if err != nil {
			return "ERR " + err.Error(), nil
		}
		nrr, err := w.db.GMRs.ReorganizeRRR()
		if err != nil {
			return "ERR " + err.Error(), nil
		}
		return fmt.Sprintf("collected %d, reorganized %d", ngc, nrr), nil
	case OpAudit:
		if w.faultsOpen {
			return "skipped (faults armed)", nil
		}
		return w.applyAudit()
	case OpSnapRead:
		return w.applySnapRead(op)
	case OpFault:
		w.db.Disk.SetFaultPlan(storage.FaultPlan{Rules: op.Rule})
		w.faultsOpen = true
		return storage.FaultPlan{Rules: op.Rule}.String(), nil
	case OpFaultClear:
		return w.applyFaultClear()
	case OpRecluster:
		rep, err := w.db.Recluster()
		if err != nil {
			return "ERR " + err.Error(), nil
		}
		return fmt.Sprintf("moved %d/%d (hot=%d chains=%d traces=%d)",
			rep.Moved, rep.Objects, rep.HotObjects, rep.Chains, rep.Traces), nil
	case OpCrash:
		return w.applyCrash(op)
	}
	return "unknown op", &Violation{Msgs: []string{"unknown op kind " + string(op.Kind)}}
}

func (w *ocbWorld) applyMat(op Op) string {
	ci := op.X % len(w.cat)
	spec := w.cat[ci]
	_, err := w.db.Materialize(gomdb.MaterializeOptions{
		Name:         spec.Name,
		Funcs:        spec.Funcs,
		Strategy:     w.cfg.strategy(),
		Complete:     spec.Complete,
		MaxEntries:   spec.MaxEntries,
		SecondChance: w.cfg.SecondChance,
		UseMDS:       w.cfg.UseMDS,
		MemoCache:    w.cfg.Memo,
	})
	if err == nil {
		w.matted[ci] = true
	}
	return spec.Name + " " + errStr(err)
}

func (w *ocbWorld) applyUpdate(a api, op Op) (string, error) {
	class := op.N % w.p.Classes
	oid := w.inst(class, op.X)
	return fmt.Sprintf("%s.%s=%g", oid, op.S, op.F[0]),
		a.Set(oid, op.S, gomdb.Float(op.F[0]))
}

func (w *ocbWorld) applyBatch(op Op) string {
	var parts []string
	err := w.db.Batch(func(tx *gomdb.Tx) error {
		for _, sub := range op.Sub {
			if sub.Kind != OpSetValue {
				parts = append(parts, "skip "+string(sub.Kind))
				continue
			}
			detail, serr := w.applyUpdate(tx, sub)
			if serr != nil {
				detail += " ERR " + serr.Error()
			}
			parts = append(parts, detail)
		}
		return nil
	})
	out := fmt.Sprintf("{%s}", strings.Join(parts, "; "))
	if err != nil {
		out += " ERR " + err.Error()
	}
	return out
}

func (w *ocbWorld) applySnapRead(op Op) (string, *Violation) {
	view, err := w.db.SnapshotView()
	if err != nil {
		return "ERR " + err.Error(), nil
	}
	defer view.Release()
	parts := []string{"pinned"}

	oid := w.inst(0, op.X)
	if v, err := view.Call(op.S, gomdb.Ref(oid)); err != nil {
		parts = append(parts, op.S+" ERR "+err.Error())
	} else {
		parts = append(parts, fmt.Sprintf("%s(%s)=%s", op.S, oid, v))
	}
	parts = append(parts, fmt.Sprintf("ext=%d", len(view.Extension("C0"))))

	ci := op.X % len(w.cat)
	if w.matted[ci] && !w.faultsOpen {
		spec := w.cat[ci]
		rep, err := view.CheckConsistency(spec.Name, auditTol, false)
		switch {
		case err != nil:
			parts = append(parts, "audit "+spec.Name+" ERR "+err.Error())
		case rep.Err() != nil:
			return strings.Join(parts, " "),
				&Violation{Msgs: []string{"snapshot audit " + spec.Name + ": " + rep.Err().Error()}}
		default:
			parts = append(parts, "audit "+spec.Name+" ok")
		}
	}

	view.Release()
	if n := w.db.MVCCStats().ActivePins; n != 0 {
		return strings.Join(parts, " "),
			&Violation{Msgs: []string{fmt.Sprintf("snapshot pin leak: %d active after release", n)}}
	}
	return strings.Join(parts, " "), nil
}

func (w *ocbWorld) applyFaultClear() (string, *Violation) {
	w.faults += w.db.Disk.FaultsInjected()
	w.db.Disk.ClearFaults()
	w.faultsOpen = false
	var msgs []string
	if err := w.db.Flush(); err != nil {
		msgs = append(msgs, "recovery flush: "+err.Error())
	}
	rebuilt := 0
	for _, ci := range w.mattedIndices() {
		spec := w.cat[ci]
		if err := w.db.Dematerialize(spec.Name); err != nil {
			msgs = append(msgs, "recovery demat "+spec.Name+": "+err.Error())
			continue
		}
		delete(w.matted, ci)
		if s := w.applyMat(Op{Kind: OpMat, X: ci}); !strings.HasSuffix(s, " ok") {
			msgs = append(msgs, "recovery remat "+s)
			continue
		}
		rebuilt++
	}
	if len(msgs) > 0 {
		return "recovery FAILED", &Violation{Msgs: msgs}
	}
	return fmt.Sprintf("recovered (%d GMRs rebuilt, %d faults so far)", rebuilt, w.faults), nil
}

func (w *ocbWorld) mattedIndices() []int {
	out := make([]int, 0, len(w.matted))
	for ci := range w.matted {
		out = append(out, ci)
	}
	sort.Ints(out)
	return out
}

func (w *ocbWorld) applyAudit() (string, *Violation) {
	if err := w.db.Flush(); err != nil {
		return "flush ERR", &Violation{Msgs: []string{"audit flush: " + err.Error()}}
	}
	msgs := Audit(w.db)
	if len(msgs) > 0 {
		return fmt.Sprintf("FAILED (%d violations)", len(msgs)), &Violation{Msgs: msgs}
	}
	total := 0
	for _, list := range w.classes {
		total += len(list)
	}
	return fmt.Sprintf("ok (%d gmrs, %d objects)", len(w.matted), total), nil
}

func (w *ocbWorld) applyCrash(op Op) (string, *Violation) {
	if w.dir == "" {
		return op.S + " skip (in-memory)", nil
	}
	var trigger string
	switch op.S {
	case "mid-batch":
		w.db.TestingFailNextCheckpoint(int64(op.N))
		trigger = fmt.Sprintf("mid-batch@%d %s", op.N, w.applyBatch(Op{Kind: OpBatch, Sub: op.Sub}))
	case "mid-flush":
		w.db.TestingFailNextCheckpoint(int64(op.N))
		trigger = fmt.Sprintf("mid-flush@%d %s", op.N, errStr(w.db.Flush()))
	case "mid-mat":
		w.db.TestingFailNextCheckpoint(int64(op.N))
		trigger = fmt.Sprintf("mid-mat@%d %s", op.N, w.applyMat(Op{Kind: OpMat, X: op.X}))
	case "torn":
		w.db.Disk.SetFaultPlan(storage.FaultPlan{Rules: op.Rule})
		trigger = "torn " + w.applyBatch(Op{Kind: OpBatch, Sub: op.Sub})
	default:
		trigger = "now"
	}
	w.faults += w.db.Disk.FaultsInjected()
	w.db.Crash()
	w.faultsOpen = false
	db, err := openSimOCB(w.cfg, w.dir)
	if err != nil {
		return trigger + " -> recovery FAILED", &Violation{Msgs: []string{"recovery: " + err.Error()}}
	}
	w.db = db
	db.GMRs.TestingBreakInvalidation(w.cfg.Broken)
	w.resync()
	rec := "fresh"
	if info := db.Recovery; info != nil && info.Recovered {
		rec = fmt.Sprintf("objs=%d gmrs=%d pend=%d wal=%d torn=%d",
			info.ObjectsRestored, info.GMRsRebuilt, info.PendingDiscarded,
			info.WALPagesReplayed, info.TornPagesRepaired)
	}
	detail, bad := w.applyAudit()
	return fmt.Sprintf("%s -> recovered(%s); audit %s", trigger, rec, detail), bad
}

// resync rebuilds the per-class OID lists and the matted set from the
// recovered database. Extent order is insertion order, preserved through
// checkpoint and recovery, and OCB streams never create or delete, so the
// lists come back exactly as Populate built them.
func (w *ocbWorld) resync() {
	for c := range w.classes {
		w.classes[c] = w.db.Objects.Extension(ocb.ClassName(c))
	}
	w.matted = make(map[int]bool)
	for ci, spec := range w.cat {
		if _, ok := w.db.GMRs.Get(spec.Name); ok {
			w.matted[ci] = true
		}
	}
}

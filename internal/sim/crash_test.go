package sim

import (
	"encoding/json"
	"path/filepath"
	"testing"
)

// countCrashes reports how many crash-restart points a plan contains, so the
// crash campaigns can assert they are not vacuously green.
func countCrashes(p Plan) int {
	n := 0
	for _, op := range p.Ops {
		if op.Kind == OpCrash {
			n++
		}
	}
	return n
}

// TestCrashRecoveryMatrix is the durability acceptance sweep: seeded
// workloads with generated crash-restart points (crash now, mid-batch WAL
// cut, mid-flush, mid-materialize, torn data-file write) run against every
// strategy on a file-backed database, and every post-recovery and scheduled
// audit must pass. A recovery error — or a recovered state that violates
// Definition 3.2, loses committed objects, or resurrects discarded deferred
// work — fails here with a shrunk replayable artifact.
func TestCrashRecoveryMatrix(t *testing.T) {
	for _, strat := range []string{"immediate", "lazy", "deferred"} {
		strat := strat
		t.Run(strat, func(t *testing.T) {
			t.Parallel()
			seeds := int64(8)
			if testing.Short() {
				seeds = 3
			}
			crashes := 0
			for seed := int64(900); seed < 900+seeds; seed++ {
				plan := Generate(seed, GenOptions{Ops: 100, Crashes: true})
				crashes += countCrashes(plan)
				requireClean(t, EngineConfig{Strategy: strat, Durable: true}, plan)
			}
			if crashes == 0 {
				t.Fatal("no crash ops generated across any seed; the campaign is vacuous")
			}
		})
	}
}

// TestCrashUnderFaultWindows combines the two failure axes: scripted disk
// faults AND crash-restart points in the same plan. A crash inside an open
// fault window implicitly closes it (the fault plan dies with the process),
// and the recovered engine must still audit clean.
func TestCrashUnderFaultWindows(t *testing.T) {
	for _, strat := range []string{"immediate", "deferred"} {
		strat := strat
		t.Run(strat, func(t *testing.T) {
			t.Parallel()
			seeds := int64(4)
			if testing.Short() {
				seeds = 2
			}
			for seed := int64(1300); seed < 1300+seeds; seed++ {
				plan := Generate(seed, GenOptions{Ops: 90, Faults: true, Crashes: true})
				requireClean(t, EngineConfig{Strategy: strat, Durable: true}, plan)
			}
		})
	}
}

// TestDurableTraceParity pins the "simulated Clock is bit-identical whether
// durability is on or off" guarantee end to end: the same crash-free plan,
// run in-memory and file-backed, must produce byte-identical traces and
// byte-identical Clock snapshots. Checkpoint I/O is real but charge-free.
func TestDurableTraceParity(t *testing.T) {
	for _, strat := range []string{"immediate", "lazy", "deferred"} {
		strat := strat
		t.Run(strat, func(t *testing.T) {
			t.Parallel()
			plan := Generate(77, GenOptions{Ops: 120})
			mem := requireClean(t, EngineConfig{Strategy: strat}, plan)
			dur := requireClean(t, EngineConfig{Strategy: strat, Durable: true}, plan)
			if mem.TraceHash != dur.TraceHash {
				t.Fatalf("durable trace diverges from in-memory:\n%s", firstTraceDiff(mem.Trace, dur.Trace))
			}
			if mem.Clock != dur.Clock {
				t.Fatalf("durable Clock diverges from in-memory:\nmem: %+v\ndur: %+v", mem.Clock, dur.Clock)
			}
		})
	}
}

// TestCrashDeterminism extends the charge-determinism contract across the
// crash-recovery path: the same durable crash plan must produce a
// byte-identical trace (including recovery counters: WAL pages replayed,
// torn pages repaired, objects restored) and Clock snapshot across
// buffer-shard and remat-worker counts. Recovery is replay plus
// rematerialization, both of which iterate in canonical order.
func TestCrashDeterminism(t *testing.T) {
	for _, strat := range []string{"immediate", "deferred"} {
		strat := strat
		t.Run(strat, func(t *testing.T) {
			t.Parallel()
			plan := Generate(911, GenOptions{Ops: 90, Crashes: true})
			if countCrashes(plan) == 0 {
				t.Fatal("seed 911 generated no crash ops; pick another seed")
			}
			base := requireClean(t, EngineConfig{Strategy: strat, Durable: true, BufferShards: 1, RematWorkers: 1}, plan)
			for _, shards := range []int{1, 4} {
				for _, workers := range []int{1, 4} {
					cfg := EngineConfig{Strategy: strat, Durable: true, BufferShards: shards, RematWorkers: workers}
					res := requireClean(t, cfg, plan)
					if res.TraceHash != base.TraceHash {
						t.Fatalf("%s: trace diverges:\n%s", cfg, firstTraceDiff(base.Trace, res.Trace))
					}
					if res.Clock != base.Clock {
						t.Fatalf("%s: clock diverges:\nbase: %+v\n got: %+v", cfg, base.Clock, res.Clock)
					}
				}
			}
		})
	}
}

// TestCrashViolationShrinksAndReplays proves a failure on the durable path
// flows through the whole reproducer pipeline: with the broken-invalidation
// hook armed, a crash plan still violates (the crash heals stale entries,
// but post-recovery updates re-break them), the trace shrinks, the artifact
// round-trips through JSON with its Durable flag intact, and the replay
// reproduces the violation on a fresh store.
func TestCrashViolationShrinksAndReplays(t *testing.T) {
	cfg := EngineConfig{Strategy: "immediate", Durable: true, Broken: true}
	var failing Plan
	found := false
	for seed := int64(1); seed <= 5 && !found; seed++ {
		plan := Generate(seed, GenOptions{Ops: 80, Crashes: true})
		if Run(cfg, plan).Violation != nil {
			failing, found = plan, true
		}
	}
	if !found {
		t.Fatal("broken invalidation survived 5 durable crash seeds undetected")
	}
	a := ShrinkToArtifact(cfg, failing, t.Name())
	if a.Violation == "" {
		t.Fatal("shrunk artifact lost the violation")
	}
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "repro.json")
	if err := a.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Config.Durable {
		t.Fatalf("artifact dropped the Durable flag: %s", data)
	}
	if res := Replay(loaded); res.Violation == nil {
		t.Fatal("replayed durable artifact no longer reproduces the violation")
	}
}

package sim

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// baseConfigs are the clean (non-broken, default-geometry) cells of the
// engine matrix the smoke sweeps cover.
func baseConfigs() []EngineConfig {
	var out []EngineConfig
	for _, strat := range []string{"immediate", "lazy", "deferred"} {
		for _, memo := range []bool{false, true} {
			for _, sc := range []bool{false, true} {
				out = append(out, EngineConfig{Strategy: strat, Memo: memo, SecondChance: sc})
			}
		}
	}
	return out
}

func requireClean(t *testing.T, cfg EngineConfig, plan Plan) *Result {
	t.Helper()
	res := Run(cfg, plan)
	if res.Violation != nil {
		a := ShrinkToArtifact(cfg, plan, t.Name())
		path := filepath.Join("testdata", "sim", "repro-"+t.Name()+".json")
		if err := a.Save(path); err != nil {
			t.Logf("saving reproducer: %v", err)
		} else {
			t.Logf("shrunk reproducer (%d ops) written to %s", len(a.Ops), path)
		}
		t.Fatalf("config %s seed %d: %s", cfg, plan.Seed, res.Violation)
	}
	return res
}

// TestSimShortSeeds runs a batch of seeded workloads against every strategy
// and expects every invariant audit to pass. On failure the trace is shrunk
// and a replayable artifact lands in testdata/sim/.
func TestSimShortSeeds(t *testing.T) {
	for _, cfg := range []EngineConfig{
		{Strategy: "immediate"},
		{Strategy: "lazy"},
		{Strategy: "deferred"},
	} {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			t.Parallel()
			seeds := int64(10)
			if testing.Short() {
				seeds = 4
			}
			for seed := int64(1); seed <= seeds; seed++ {
				plan := Generate(seed, GenOptions{Ops: 120})
				requireClean(t, cfg, plan)
			}
		})
	}
}

// TestMatrixSweep smokes the full strategy x memo x second-chance matrix
// (plus an MDS column) on a couple of seeds each.
func TestMatrixSweep(t *testing.T) {
	cfgs := baseConfigs()
	cfgs = append(cfgs,
		EngineConfig{Strategy: "immediate", UseMDS: true},
		EngineConfig{Strategy: "deferred", UseMDS: true, Memo: true},
	)
	for _, cfg := range cfgs {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(100); seed < 102; seed++ {
				plan := Generate(seed, GenOptions{Ops: 80})
				requireClean(t, cfg, plan)
			}
		})
	}
}

// TestChargeDeterminism pins the acceptance criterion: the same seed and
// strategy produce a byte-identical op trace and a byte-identical simulated
// Clock snapshot across buffer-shard counts {1,4,16} and remat-worker counts
// {1,4,8}. Shards affect only locking; workers affect only wall-clock — the
// simulated cost model must not notice either.
func TestChargeDeterminism(t *testing.T) {
	for _, strat := range []string{"immediate", "lazy", "deferred"} {
		strat := strat
		t.Run(strat, func(t *testing.T) {
			t.Parallel()
			plan := Generate(42, GenOptions{Ops: 150})
			base := requireClean(t, EngineConfig{Strategy: strat, BufferShards: 1, RematWorkers: 1}, plan)
			for _, shards := range []int{1, 4, 16} {
				for _, workers := range []int{1, 4, 8} {
					cfg := EngineConfig{Strategy: strat, BufferShards: shards, RematWorkers: workers}
					res := requireClean(t, cfg, plan)
					if res.TraceHash != base.TraceHash {
						diff := firstTraceDiff(base.Trace, res.Trace)
						t.Fatalf("%s: trace diverges from shards=1,workers=1 baseline:\n%s", cfg, diff)
					}
					if res.Clock != base.Clock {
						t.Fatalf("%s: clock snapshot diverges:\nbase: %+v\n got: %+v", cfg, base.Clock, res.Clock)
					}
				}
			}
		})
	}
}

func firstTraceDiff(a, b []string) string {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return "base: " + a[i] + "\n got: " + b[i]
		}
	}
	return "traces differ in length: " + itoa(len(a)) + " vs " + itoa(len(b))
}

func itoa(n int) string { return strings.TrimSpace(string(rune('0' + n%10))) }

// TestSeedStability: the same seed must expand to the same plan — the
// generator is the other half of the determinism contract.
func TestSeedStability(t *testing.T) {
	a := Generate(7, GenOptions{Ops: 100, Faults: true})
	b := Generate(7, GenOptions{Ops: 100, Faults: true})
	if len(a.Ops) != len(b.Ops) || a.Init != b.Init {
		t.Fatalf("plan shape differs: %d/%d ops, init %d/%d", len(a.Ops), len(b.Ops), a.Init, b.Init)
	}
	ra := Run(EngineConfig{Strategy: "deferred"}, a)
	rb := Run(EngineConfig{Strategy: "deferred"}, b)
	if ra.TraceHash != rb.TraceHash {
		t.Fatal("same seed produced diverging traces")
	}
}

// TestFaultWindows runs seeds whose plans include scripted fault windows:
// the engine must survive injected read/write failures (typed errors, no
// panic), and after recovery every audit must pass. At least one seed must
// actually inject a fault, or the windows are vacuous.
func TestFaultWindows(t *testing.T) {
	for _, strat := range []string{"immediate", "lazy", "deferred"} {
		strat := strat
		t.Run(strat, func(t *testing.T) {
			t.Parallel()
			injected := 0
			seeds := int64(8)
			if testing.Short() {
				seeds = 3
			}
			for seed := int64(500); seed < 500+seeds; seed++ {
				plan := Generate(seed, GenOptions{Ops: 100, Faults: true})
				res := requireClean(t, EngineConfig{Strategy: strat}, plan)
				injected += res.FaultsInjected
			}
			if injected == 0 {
				t.Fatal("no faults injected across any seed; fault windows are vacuous")
			}
		})
	}
}

// TestMutationSmoke proves the auditors have teeth: with the deliberately
// broken invalidation path armed, updates leave stale valid entries behind,
// and the Definition 3.2 auditor MUST report a violation. The failing trace
// is then shrunk to a minimal reproducer, saved, reloaded, and replayed.
func TestMutationSmoke(t *testing.T) {
	for _, strat := range []string{"immediate", "lazy", "deferred"} {
		strat := strat
		t.Run(strat, func(t *testing.T) {
			t.Parallel()
			cfg := EngineConfig{Strategy: strat, Broken: true}
			var failing Plan
			found := false
			for seed := int64(1); seed <= 5 && !found; seed++ {
				plan := Generate(seed, GenOptions{Ops: 120})
				if Run(cfg, plan).Violation != nil {
					failing, found = plan, true
				}
			}
			if !found {
				t.Fatal("broken invalidation survived 5 seeds undetected: auditors have no teeth")
			}

			a := ShrinkToArtifact(cfg, failing, t.Name())
			if len(a.Ops) >= len(failing.Ops) {
				t.Errorf("shrink did not reduce: %d -> %d ops", len(failing.Ops), len(a.Ops))
			}
			if a.Violation == "" {
				t.Fatal("shrunk artifact lost the violation")
			}

			path := filepath.Join(t.TempDir(), "repro.json")
			if err := a.Save(path); err != nil {
				t.Fatal(err)
			}
			loaded, err := LoadArtifact(path)
			if err != nil {
				t.Fatal(err)
			}
			res := Replay(loaded)
			if res.Violation == nil {
				t.Fatal("replayed artifact no longer reproduces the violation")
			}
			t.Logf("shrunk %d -> %d ops; violation: %s", len(failing.Ops), len(a.Ops), res.Violation)
		})
	}
}

// TestBrokenHookOffIsClean is the other half of the mutation smoke test:
// with the hook disarmed the very same seeds pass, so the violations above
// are attributable to the sabotage, not the workload.
func TestBrokenHookOffIsClean(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		plan := Generate(seed, GenOptions{Ops: 120})
		requireClean(t, EngineConfig{Strategy: "immediate"}, plan)
	}
}

// TestReplayCommittedArtifacts replays every artifact committed under
// testdata/sim and expects each to reproduce its recorded outcome: a
// violation when one was recorded, a clean run otherwise.
func TestReplayCommittedArtifacts(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "sim", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Skip("no committed artifacts")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			a, err := LoadArtifact(path)
			if err != nil {
				t.Fatal(err)
			}
			res := Replay(a)
			if a.Violation != "" && res.Violation == nil {
				t.Fatalf("artifact records violation %q but replay is clean", a.Violation)
			}
			if a.Violation == "" && res.Violation != nil {
				t.Fatalf("artifact records a clean run but replay violates: %s", res.Violation)
			}
		})
	}
}

// TestSnapshotReadsDontPerturbCharges pins the MVCC cost contract: snapshot
// reads charge a throwaway clock, so a plan runs to the same trace (snap-read
// lines aside) and the byte-identical Clock snapshot with its snap-read ops
// stripped. The generated plan must actually contain snap-reads, or the
// comparison is vacuous.
func TestSnapshotReadsDontPerturbCharges(t *testing.T) {
	for _, strat := range []string{"immediate", "lazy", "deferred"} {
		strat := strat
		t.Run(strat, func(t *testing.T) {
			t.Parallel()
			plan := Generate(1234, GenOptions{Ops: 140})
			snaps := 0
			stripped := Plan{Seed: plan.Seed, Init: plan.Init}
			for _, op := range plan.Ops {
				if op.Kind == OpSnapRead {
					snaps++
					continue
				}
				stripped.Ops = append(stripped.Ops, op)
			}
			if snaps == 0 {
				t.Fatal("plan contains no snap-read ops; the comparison is vacuous")
			}
			cfg := EngineConfig{Strategy: strat, Memo: true}
			full := requireClean(t, cfg, plan)
			base := requireClean(t, cfg, stripped)
			if full.Clock != base.Clock {
				t.Fatalf("snapshot reads perturbed the cost snapshot:\nwith:    %+v\nwithout: %+v",
					full.Clock, base.Clock)
			}
			// The non-snap portion of the trace must be identical op for op
			// (indices shift when ops are stripped, so compare kind+detail).
			var fullOps []string
			for _, line := range full.Trace {
				if len(line) > 5 && !strings.HasPrefix(line[5:], string(OpSnapRead)) {
					fullOps = append(fullOps, line[5:])
				}
			}
			for i, line := range base.Trace {
				if i >= len(fullOps) || fullOps[i] != line[5:] {
					t.Fatalf("trace diverges at stripped op %d:\nwith:    %s\nwithout: %s",
						i, fullOps[i], line[5:])
				}
			}
		})
	}
}

// TestReclusterMatrix runs plans with injected reclustering passes across
// the full strategy x durability x MVCC matrix. Every quiescent audit —
// including the directory <-> heap correspondence auditor — must pass in
// every cell, and at least one pass per cell must actually move objects, or
// the coverage is vacuous.
func TestReclusterMatrix(t *testing.T) {
	for _, strat := range []string{"immediate", "lazy", "deferred"} {
		for _, durable := range []bool{false, true} {
			for _, nomvcc := range []bool{false, true} {
				cfg := EngineConfig{Strategy: strat, Durable: durable, DisableMVCC: nomvcc}
				t.Run(cfg.String(), func(t *testing.T) {
					t.Parallel()
					seeds := int64(3)
					if testing.Short() {
						seeds = 1
					}
					moved := false
					for seed := int64(7000); seed < 7000+seeds; seed++ {
						plan := Generate(seed, GenOptions{Ops: 90, Recluster: true})
						reclusters := 0
						for _, op := range plan.Ops {
							if op.Kind == OpRecluster {
								reclusters++
							}
						}
						if reclusters == 0 {
							t.Fatalf("seed %d: generator injected no recluster ops", seed)
						}
						res := requireClean(t, cfg, plan)
						for _, line := range res.Trace {
							if strings.Contains(line, string(OpRecluster)) && strings.Contains(line, "moved") &&
								!strings.Contains(line, "moved 0/") {
								moved = true
							}
						}
					}
					if !moved {
						t.Fatal("no reclustering pass moved anything in any seed; coverage is vacuous")
					}
				})
			}
		}
	}
}

// TestReclusterUnderFaultsAndCrashes: reclustering passes must coexist with
// fault windows (the relocation aborts all-or-nothing on an injected failure)
// and crash-restart points (recovery comes back in exactly one layout). Every
// post-recovery and quiescent audit must pass.
func TestReclusterUnderFaultsAndCrashes(t *testing.T) {
	dir := t.TempDir()
	seeds := int64(5)
	if testing.Short() {
		seeds = 2
	}
	reclusters := 0
	for seed := int64(7700); seed < 7700+seeds; seed++ {
		plan := Generate(seed, GenOptions{Ops: 90, Faults: true, Crashes: true, Recluster: true})
		for _, op := range plan.Ops {
			if op.Kind == OpRecluster {
				reclusters++
			}
		}
		cfg := EngineConfig{Strategy: "lazy", Durable: true,
			CrashDir: filepath.Join(dir, fmt.Sprintf("seed%d", seed))}
		requireClean(t, cfg, plan)
	}
	if reclusters == 0 {
		t.Fatal("no recluster ops across any fault/crash plan; coverage is vacuous")
	}
}

// TestSnapshotReadsUnderFaultsAndCrashes: snap-read ops must coexist with
// scripted fault windows and crash-restart points — reads may fail inside a
// window (tolerated, recorded), pins never leak across a crash, and every
// post-recovery audit still passes.
func TestSnapshotReadsUnderFaultsAndCrashes(t *testing.T) {
	dir := t.TempDir()
	seeds := int64(6)
	if testing.Short() {
		seeds = 2
	}
	snaps := 0
	for seed := int64(900); seed < 900+seeds; seed++ {
		plan := Generate(seed, GenOptions{Ops: 100, Faults: true, Crashes: true})
		for _, op := range plan.Ops {
			if op.Kind == OpSnapRead {
				snaps++
			}
		}
		cfg := EngineConfig{Strategy: "lazy", Memo: true, Durable: true,
			CrashDir: filepath.Join(dir, fmt.Sprintf("seed%d", seed))}
		requireClean(t, cfg, plan)
	}
	if snaps == 0 {
		t.Fatal("no snap-read ops across any fault/crash plan; coverage is vacuous")
	}
}

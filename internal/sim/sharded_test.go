package sim

import (
	"strings"
	"testing"
)

// TestShardedMatrix sweeps the multi-shard cell: every strategy at 1, 2,
// and 4 shards, auditing per-shard invariants (Definition 3.2, RRR support,
// directory <-> heap) and the cross-shard routing invariants at every
// quiescent point.
func TestShardedMatrix(t *testing.T) {
	for _, strat := range []string{"immediate", "lazy", "deferred"} {
		for _, shards := range []int{1, 2, 4} {
			cfg := EngineConfig{Strategy: strat, Shards: shards}
			t.Run(cfg.String(), func(t *testing.T) {
				t.Parallel()
				seeds := int64(4)
				if testing.Short() {
					seeds = 2
				}
				for seed := int64(1); seed <= seeds; seed++ {
					plan := Generate(seed, GenOptions{Ops: 80})
					requireClean(t, cfg, plan)
				}
			})
		}
	}
}

// TestShardedDeterminism: the same plan at the same shard count is
// trace-identical run to run (the parallel scatter must not leak goroutine
// scheduling into the merge order).
func TestShardedDeterminism(t *testing.T) {
	cfg := EngineConfig{Strategy: "deferred", Shards: 4, UseMDS: true}
	plan := Generate(7, GenOptions{Ops: 100})
	first := requireClean(t, cfg, plan)
	for i := 0; i < 2; i++ {
		again := requireClean(t, cfg, plan)
		if again.TraceHash != first.TraceHash {
			t.Fatalf("run %d diverged: hash %x vs %x", i+2, again.TraceHash, first.TraceHash)
		}
	}
}

// TestShardedDurableCrashes: the crash campaign against a 2-shard durable
// router — mid-checkpoint failures are armed on one shard only, so recovery
// must rebuild a coherent routing table from shards at different checkpoint
// horizons.
func TestShardedDurableCrashes(t *testing.T) {
	if testing.Short() {
		t.Skip("durable sharded crash campaign skipped in -short")
	}
	cfg := EngineConfig{Strategy: "immediate", Shards: 2, Durable: true}
	for seed := int64(1); seed <= 3; seed++ {
		plan := Generate(seed, GenOptions{Ops: 60, Crashes: true})
		requireClean(t, cfg, plan)
	}
}

// TestShardedFaults: a fault window armed on one shard's disk must leave the
// other shards untouched and recover cleanly at the window close.
func TestShardedFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded fault campaign skipped in -short")
	}
	cfg := EngineConfig{Strategy: "deferred", Shards: 4}
	for seed := int64(1); seed <= 3; seed++ {
		plan := Generate(seed, GenOptions{Ops: 60, Faults: true})
		requireClean(t, cfg, plan)
	}
}

// TestShardedBrokenInvalidationCaught proves the sharded auditors have
// teeth: with the invalidation path deliberately broken on every shard, some
// audit must fail.
func TestShardedBrokenInvalidationCaught(t *testing.T) {
	cfg := EngineConfig{Strategy: "immediate", Shards: 2, Broken: true}
	for seed := int64(1); seed <= 8; seed++ {
		plan := Generate(seed, GenOptions{Ops: 100})
		res := Run(cfg, plan)
		if res.Violation != nil {
			if !strings.Contains(res.Violation.String(), "shard") {
				t.Fatalf("violation lacks shard attribution: %s", res.Violation)
			}
			return
		}
	}
	t.Fatal("broken invalidation survived 8 sharded seeds without an audit failure")
}

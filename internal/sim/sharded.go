package sim

// The multi-shard simulation cell: the same seeded plans the single-engine
// runner executes, applied through the internal/shard scatter-gather router.
// Per shard the full auditor battery runs (Definition 3.2 congruence, RRR
// support, directory <-> heap correspondence, pin/queue/MVCC quiescence);
// across shards the router's own invariants are audited at every quiescent
// point: no non-replicated OID lives on two shards, every routing-table
// entry resolves to a live object on its owner, and a replicated OID is
// present on every shard.
//
// Placement mirrors the sharded fixture: materials and robots replicate,
// each cuboid graph (cuboid + 8 vertices + any transient scale/translate
// vector) is co-located on the shard its cuboid id hashes to. Fault windows
// target one shard's disk (X mod shards); crash points kill every shard at
// once, with the mid-checkpoint injections armed on one shard so recovery
// sees shards at different checkpoint horizons — exactly the divergence the
// router's recovery contract must tolerate.

import (
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strings"

	"gomdb"
	"gomdb/internal/fixtures"
	"gomdb/internal/shard"
	"gomdb/internal/storage"
)

// shardAPI is the op surface shared by *shard.DB (per-op routing) and
// *shard.Tx (inside one coordinated batch).
type shardAPI interface {
	NewOn(sh int, typeName string, attrs ...gomdb.Value) (gomdb.OID, error)
	Delete(oid gomdb.OID) error
	Set(oid gomdb.OID, attr string, v gomdb.Value) error
	GetAttr(oid gomdb.OID, attr string) (gomdb.Value, error)
	Call(fn string, args ...gomdb.Value) (gomdb.Value, error)
	Owner(oid gomdb.OID) (int, bool)
}

type shardWorld struct {
	db  *shard.DB
	cfg EngineConfig
	dir string

	cuboids []gomdb.OID
	robots  []gomdb.OID
	mats    []gomdb.OID
	nextID  int64

	matted     map[int]bool
	faultsOpen bool
	faultShard int
	faults     int
}

func openSimSharded(cfg EngineConfig, dir string) (*shard.DB, error) {
	gc := gomdb.Config{
		BufferPages:  cfg.BufferPages,
		BufferShards: cfg.BufferShards,
		RematWorkers: cfg.RematWorkers,
		DisableMVCC:  cfg.DisableMVCC,
	}
	scfg := shard.Config{Shards: cfg.Shards, Engine: gc}
	if dir == "" {
		db := shard.Open(scfg)
		if err := fixtures.DefineGeometrySharded(db, false); err != nil {
			return nil, fmt.Errorf("schema: %w", err)
		}
		return db, nil
	}
	scfg.Engine.Path = dir
	scfg.Engine.DefineSchema = func(db *gomdb.Database) error {
		return fixtures.DefineGeometry(db, false)
	}
	return shard.OpenAt(scfg)
}

// RunSharded executes plan against a cfg.Shards-way router. Run dispatches
// here when the Shards axis is set.
func RunSharded(cfg EngineConfig, plan Plan) (res *Result) {
	res = &Result{}
	var w *shardWorld
	removeDir := ""
	cur := -1
	defer func() {
		if r := recover(); r != nil {
			res.Violation = &Violation{OpIndex: cur, Msgs: []string{fmt.Sprintf("panic: %v", r)}}
		}
		if w != nil {
			res.Clock = w.db.Snapshot()
			res.FaultsInjected = w.faults + w.faultsNow()
			w.db.Crash() // release durable file handles (no-op in-memory)
		}
		if removeDir != "" {
			os.RemoveAll(removeDir)
		}
		h := fnv.New64a()
		for _, line := range res.Trace {
			h.Write([]byte(line))
			h.Write([]byte{'\n'})
		}
		res.TraceHash = h.Sum64()
	}()

	dir := ""
	if cfg.Durable {
		dir = cfg.CrashDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "gomsim-sharded-")
			if err != nil {
				res.Violation = &Violation{OpIndex: -1, Msgs: []string{"durable dir: " + err.Error()}}
				return res
			}
			dir, removeDir = tmp, tmp
		} else if err := os.RemoveAll(dir); err != nil {
			res.Violation = &Violation{OpIndex: -1, Msgs: []string{"durable dir: " + err.Error()}}
			return res
		}
	}

	db, err := openSimSharded(cfg, dir)
	if err != nil {
		res.Violation = &Violation{OpIndex: -1, Msgs: []string{"open: " + err.Error()}}
		return res
	}
	geo, err := fixtures.PopulateGeometrySharded(db, plan.Init, plan.Seed)
	if err != nil {
		db.Crash()
		res.Violation = &Violation{OpIndex: -1, Msgs: []string{"populate: " + err.Error()}}
		return res
	}
	if err := db.Checkpoint(); err != nil {
		db.Crash()
		res.Violation = &Violation{OpIndex: -1, Msgs: []string{"populate checkpoint: " + err.Error()}}
		return res
	}
	db.EachShard(func(_ int, sh *gomdb.Database) error {
		sh.GMRs.TestingBreakInvalidation(cfg.Broken)
		return nil
	})
	w = &shardWorld{
		db:      db,
		cfg:     cfg,
		dir:     dir,
		cuboids: append([]gomdb.OID(nil), geo.Cuboids...),
		robots:  append([]gomdb.OID(nil), geo.Robots...),
		mats:    append([]gomdb.OID(nil), geo.MaterialO...),
		nextID:  geo.NextID,
		matted:  make(map[int]bool),
	}

	for i, op := range plan.Ops {
		cur = i
		detail, bad := w.apply(op)
		res.Trace = append(res.Trace, fmt.Sprintf("%04d %-10s %s", i, op.Kind, detail))
		if bad != nil {
			bad.OpIndex = i
			res.Violation = bad
			return res
		}
	}

	cur = len(plan.Ops)
	if w.faultsOpen {
		detail, bad := w.applyFaultClear()
		res.Trace = append(res.Trace, fmt.Sprintf("%04d %-10s %s", cur, OpFaultClear, detail))
		if bad != nil {
			bad.OpIndex = cur
			res.Violation = bad
			return res
		}
	}
	detail, bad := w.applyAudit()
	res.Trace = append(res.Trace, fmt.Sprintf("%04d %-10s %s", cur, "final-audit", detail))
	if bad != nil {
		bad.OpIndex = cur
		res.Violation = bad
	}
	return res
}

func (w *shardWorld) faultsNow() int {
	total := 0
	w.db.EachShard(func(_ int, sh *gomdb.Database) error {
		total += sh.Disk.FaultsInjected()
		return nil
	})
	return total
}

func (w *shardWorld) cuboid(x int) (gomdb.OID, bool) {
	if len(w.cuboids) == 0 {
		return 0, false
	}
	return w.cuboids[x%len(w.cuboids)], true
}

func (w *shardWorld) apply(op Op) (string, *Violation) {
	switch op.Kind {
	case OpMat:
		return w.applyMat(op), nil
	case OpDemat:
		spec := catalog[op.X%len(catalog)]
		err := w.db.Dematerialize(spec.Name)
		if err == nil {
			delete(w.matted, op.X%len(catalog))
		}
		return spec.Name + " " + errStr(err), nil
	case OpCreate:
		oid, err := w.createCuboid(w.db, op)
		if err != nil {
			return "ERR " + err.Error(), nil
		}
		return fmt.Sprintf("cuboid %s (n=%d)", oid, len(w.cuboids)), nil
	case OpDelete:
		oid, ok := w.cuboid(op.X)
		if !ok {
			return "skip (no cuboids)", nil
		}
		err := w.db.Delete(oid)
		if _, live := w.db.Owner(oid); !live {
			w.dropCuboid(oid)
		}
		return fmt.Sprintf("cuboid %s (n=%d) %s", oid, len(w.cuboids), errStr(err)), nil
	case OpSetValue, OpSetVertex, OpScale, OpTranslate, OpRotate:
		detail, err := w.applyUpdate(w.db, op)
		if err != nil {
			detail += " ERR " + err.Error()
		}
		return detail, nil
	case OpForward:
		oid, ok := w.cuboid(op.X)
		if !ok {
			return "skip (no cuboids)", nil
		}
		args := []gomdb.Value{gomdb.Ref(oid)}
		if op.S == "Cuboid.distance" {
			args = append(args, gomdb.Ref(w.robots[op.N%len(w.robots)]))
		}
		v, err := w.db.Call(op.S, args...)
		if err != nil {
			return op.S + " ERR " + err.Error(), nil
		}
		return fmt.Sprintf("%s(%s) = %s", op.S, oid, v), nil
	case OpBackward:
		ms, err := w.db.Backward(op.S, op.F[0], op.F[1])
		if err != nil {
			return op.S + " ERR " + err.Error(), nil
		}
		return fmt.Sprintf("%s[%g,%g] %s", op.S, op.F[0], op.F[1], matchStr(ms)), nil
	case OpSum:
		if len(w.cuboids) == 0 {
			return "skip (no cuboids)", nil
		}
		k := 1 + op.N%len(w.cuboids)
		oids := append([]gomdb.OID(nil), w.cuboids[:k]...)
		s, err := w.db.Sum(op.S, oids)
		if err != nil {
			return op.S + " ERR " + err.Error(), nil
		}
		return fmt.Sprintf("%s over %d = %g", op.S, k, s), nil
	case OpRetrieve:
		spec := catalog[op.X%len(catalog)]
		specs := make([]gomdb.FieldSpec, spec.NumArgs+len(spec.Funcs))
		for i := range specs {
			specs[i] = gomdb.AnySpec()
		}
		specs[spec.NumArgs] = gomdb.RangeSpec(op.F[0], op.F[1])
		rows, err := w.db.Retrieve(spec.Name, specs)
		if err != nil {
			return spec.Name + " ERR " + err.Error(), nil
		}
		return fmt.Sprintf("%s[%g,%g] %s", spec.Name, op.F[0], op.F[1], rowStr(rows)), nil
	case OpFlush:
		return errStr(w.db.Flush()), nil
	case OpBatch:
		return w.applyBatch(op), nil
	case OpGC:
		ngc, nrr := 0, 0
		err := w.db.EachShard(func(_ int, sh *gomdb.Database) error {
			n, err := sh.GMRs.CollectResultGarbage()
			if err != nil {
				return err
			}
			ngc += n
			m, err := sh.GMRs.ReorganizeRRR()
			if err != nil {
				return err
			}
			nrr += m
			return nil
		})
		if err != nil {
			return "ERR " + err.Error(), nil
		}
		return fmt.Sprintf("collected %d, reorganized %d", ngc, nrr), nil
	case OpAudit:
		if w.faultsOpen {
			return "skipped (faults armed)", nil
		}
		return w.applyAudit()
	case OpSnapRead:
		// The router has no cross-shard snapshot view; per-shard MVCC is
		// exercised through the engines' own suites.
		return "skip (sharded)", nil
	case OpFault:
		w.faultShard = op.X % w.db.Shards()
		w.db.Shard(w.faultShard).Disk.SetFaultPlan(storage.FaultPlan{Rules: op.Rule})
		w.faultsOpen = true
		return fmt.Sprintf("shard %d %s", w.faultShard, storage.FaultPlan{Rules: op.Rule}), nil
	case OpFaultClear:
		return w.applyFaultClear()
	case OpRecluster:
		rep, err := w.db.Recluster()
		if err != nil {
			return "ERR " + err.Error(), nil
		}
		return fmt.Sprintf("moved %d/%d (hot=%d chains=%d traces=%d)",
			rep.Moved, rep.Objects, rep.HotObjects, rep.Chains, rep.Traces), nil
	case OpCrash:
		return w.applyCrash(op)
	}
	return "unknown op", &Violation{Msgs: []string{"unknown op kind " + string(op.Kind)}}
}

// applyCrash kills every shard at the op's chosen point and reopens the
// router. The mid-checkpoint injections are armed on ONE shard (X mod
// shards), so the surviving checkpoint horizons diverge across shards —
// recovery must rebuild a coherent routing table from that divergence.
func (w *shardWorld) applyCrash(op Op) (string, *Violation) {
	if w.dir == "" {
		return op.S + " skip (in-memory)", nil
	}
	target := w.db.Shard(op.X % w.db.Shards())
	var trigger string
	switch op.S {
	case "mid-batch":
		target.TestingFailNextCheckpoint(int64(op.N))
		trigger = fmt.Sprintf("mid-batch@%d %s", op.N, w.applyBatch(Op{Kind: OpBatch, Sub: op.Sub}))
	case "mid-flush":
		target.TestingFailNextCheckpoint(int64(op.N))
		trigger = fmt.Sprintf("mid-flush@%d %s", op.N, errStr(w.db.Flush()))
	case "mid-mat":
		target.TestingFailNextCheckpoint(int64(op.N))
		trigger = fmt.Sprintf("mid-mat@%d %s", op.N, w.applyMat(Op{Kind: OpMat, X: op.X}))
	case "torn":
		target.Disk.SetFaultPlan(storage.FaultPlan{Rules: op.Rule})
		trigger = "torn " + w.applyBatch(Op{Kind: OpBatch, Sub: op.Sub})
	default:
		trigger = "now"
	}
	w.faults += w.faultsNow()
	w.db.Crash()
	w.faultsOpen = false
	db, err := openSimSharded(w.cfg, w.dir)
	if err != nil {
		return trigger + " -> recovery FAILED", &Violation{Msgs: []string{"recovery: " + err.Error()}}
	}
	w.db = db
	db.EachShard(func(_ int, sh *gomdb.Database) error {
		sh.GMRs.TestingBreakInvalidation(w.cfg.Broken)
		return nil
	})
	w.resync()
	detail, bad := w.applyAudit()
	return fmt.Sprintf("%s -> recovered(cuboids=%d); audit %s", trigger, len(w.cuboids), detail), bad
}

// resync rebuilds bookkeeping from the recovered router: the merged
// extension (shard-order concatenation, replicas deduplicated) is the
// canonical post-recovery object list.
func (w *shardWorld) resync() {
	w.cuboids = w.db.Extension("Cuboid")
	w.robots = w.db.Extension("Robot")
	w.mats = w.db.Extension("Material")
	w.matted = make(map[int]bool)
	for ci, spec := range catalog {
		if _, ok := w.db.Shard(0).GMRs.Get(spec.Name); ok {
			w.matted[ci] = true
		}
	}
}

func (w *shardWorld) applyMat(op Op) string {
	ci := op.X % len(catalog)
	spec := catalog[ci]
	err := w.db.Materialize(gomdb.MaterializeOptions{
		Name:         spec.Name,
		Funcs:        spec.Funcs,
		Strategy:     w.cfg.strategy(),
		Complete:     spec.Complete,
		MaxEntries:   spec.MaxEntries,
		SecondChance: w.cfg.SecondChance,
		UseMDS:       w.cfg.UseMDS,
		MemoCache:    w.cfg.Memo,
	})
	if err == nil {
		w.matted[ci] = true
	}
	return spec.Name + " " + errStr(err)
}

func (w *shardWorld) applyUpdate(a shardAPI, op Op) (string, error) {
	oid, ok := w.cuboid(op.X)
	if !ok {
		return "skip (no cuboids)", nil
	}
	switch op.Kind {
	case OpSetValue:
		return fmt.Sprintf("%s.Value=%g", oid, op.F[0]),
			a.Set(oid, "Value", gomdb.Float(op.F[0]))
	case OpSetVertex:
		attr := fmt.Sprintf("V%d", 1+op.N%8)
		vref, err := a.GetAttr(oid, attr)
		if err != nil {
			return oid.String() + "." + attr, err
		}
		return fmt.Sprintf("%s.%s.%s=%g", oid, attr, op.S, op.F[0]),
			a.Set(vref.R, op.S, gomdb.Float(op.F[0]))
	case OpScale, OpTranslate:
		// The transient argument vertex must be co-located with the cuboid,
		// or the call's references would span shards.
		sh, ok := a.Owner(oid)
		if !ok {
			return "owner of " + oid.String(), shard.ErrUnknownOID
		}
		vec, err := a.NewOn(sh, "Vertex", gomdb.Float(op.F[0]), gomdb.Float(op.F[1]), gomdb.Float(op.F[2]))
		if err != nil {
			return "new vertex", err
		}
		opName := "Cuboid.scale"
		if op.Kind == OpTranslate {
			opName = "Cuboid.translate"
		}
		_, err = a.Call(opName, gomdb.Ref(oid), gomdb.Ref(vec))
		return fmt.Sprintf("%s(%s, [%g %g %g])", opName, oid, op.F[0], op.F[1], op.F[2]), err
	case OpRotate:
		_, err := a.Call("Cuboid.rotate", gomdb.Ref(oid), gomdb.Float(op.F[0]), gomdb.Str(op.S))
		return fmt.Sprintf("rotate(%s, %g, %s)", oid, op.F[0], op.S), err
	}
	return "", fmt.Errorf("sim: %s is not an update op", op.Kind)
}

func (w *shardWorld) applyBatch(op Op) string {
	var parts []string
	err := w.db.Batch(func(tx *shard.Tx) error {
		for _, sub := range op.Sub {
			var detail string
			var serr error
			switch sub.Kind {
			case OpCreate:
				var oid gomdb.OID
				oid, serr = w.createCuboid(tx, sub)
				detail = "create " + oid.String()
			case OpDelete:
				oid, ok := w.cuboid(sub.X)
				if !ok {
					parts = append(parts, "delete skip")
					continue
				}
				serr = tx.Delete(oid)
				if _, live := tx.Owner(oid); !live {
					w.dropCuboid(oid)
				}
				detail = "delete " + oid.String()
			default:
				detail, serr = w.applyUpdate(tx, sub)
			}
			if serr != nil {
				detail += " ERR " + serr.Error()
			}
			parts = append(parts, detail)
		}
		return nil
	})
	out := fmt.Sprintf("{%s}", strings.Join(parts, "; "))
	if err != nil {
		out += " ERR " + err.Error()
	}
	return out
}

func (w *shardWorld) applyFaultClear() (string, *Violation) {
	w.faults += w.faultsNow()
	w.db.EachShard(func(_ int, sh *gomdb.Database) error {
		sh.Disk.ClearFaults()
		return nil
	})
	w.faultsOpen = false
	var msgs []string
	if err := w.db.Flush(); err != nil {
		msgs = append(msgs, "recovery flush: "+err.Error())
	}
	rebuilt := 0
	for _, ci := range w.mattedIndices() {
		spec := catalog[ci]
		if err := w.db.Dematerialize(spec.Name); err != nil {
			msgs = append(msgs, "recovery demat "+spec.Name+": "+err.Error())
			continue
		}
		delete(w.matted, ci)
		if s := w.applyMat(Op{Kind: OpMat, X: ci}); !strings.HasSuffix(s, " ok") {
			msgs = append(msgs, "recovery remat "+s)
			continue
		}
		rebuilt++
	}
	if len(msgs) > 0 {
		return "recovery FAILED", &Violation{Msgs: msgs}
	}
	return fmt.Sprintf("recovered (%d GMRs rebuilt, %d faults so far)", rebuilt, w.faults), nil
}

func (w *shardWorld) mattedIndices() []int {
	out := make([]int, 0, len(w.matted))
	for ci := range w.matted {
		out = append(out, ci)
	}
	sort.Ints(out)
	return out
}

// applyAudit is a quiescent point: drain every shard's deferred queue, run
// the full single-engine auditor battery per shard, then the cross-shard
// routing audits.
func (w *shardWorld) applyAudit() (string, *Violation) {
	if err := w.db.Flush(); err != nil {
		return "flush ERR", &Violation{Msgs: []string{"audit flush: " + err.Error()}}
	}
	msgs := AuditSharded(w.db)
	if len(msgs) > 0 {
		return fmt.Sprintf("FAILED (%d violations)", len(msgs)), &Violation{Msgs: msgs}
	}
	return fmt.Sprintf("ok (%d gmrs, %d cuboids, %d shards)",
		len(w.matted), len(w.cuboids), w.db.Shards()), nil
}

func (w *shardWorld) createCuboid(a shardAPI, op Op) (gomdb.OID, error) {
	w.nextID++
	sh := w.db.ShardFor(uint64(w.nextID))
	ox, oy, oz := op.F[0], op.F[1], op.F[2]
	l, wd, h := op.F[3], op.F[4], op.F[5]
	corners := [8][3]float64{
		{ox, oy, oz}, {ox + l, oy, oz}, {ox + l, oy + wd, oz}, {ox, oy + wd, oz},
		{ox, oy, oz + h}, {ox + l, oy, oz + h}, {ox + l, oy + wd, oz + h}, {ox, oy + wd, oz + h},
	}
	attrs := make([]gomdb.Value, 0, 11)
	for _, c := range corners {
		v, err := a.NewOn(sh, "Vertex", gomdb.Float(c[0]), gomdb.Float(c[1]), gomdb.Float(c[2]))
		if err != nil {
			return 0, err
		}
		attrs = append(attrs, gomdb.Ref(v))
	}
	attrs = append(attrs,
		gomdb.Ref(w.mats[op.N%len(w.mats)]),
		gomdb.Float(op.F[6]),
		gomdb.Int(w.nextID),
	)
	oid, err := a.NewOn(sh, "Cuboid", attrs...)
	if err != nil {
		return 0, err
	}
	w.cuboids = append(w.cuboids, oid)
	return oid, nil
}

func (w *shardWorld) dropCuboid(oid gomdb.OID) {
	for i, c := range w.cuboids {
		if c == oid {
			w.cuboids = append(w.cuboids[:i], w.cuboids[i+1:]...)
			return
		}
	}
}

// AuditSharded runs the single-engine auditor battery on every shard
// (messages prefixed with the shard index) and then checks the router's
// cross-shard invariants:
//
//  1. Ownership residence — every routing-table entry resolves to a live
//     object on its owning shard, and a replicated entry resolves on EVERY
//     shard.
//  2. Placement exclusivity — a non-replicated OID lives on exactly the one
//     shard the routing table names; an OID on multiple shards must be a
//     registered replica.
//  3. Extension completeness — the union of the per-shard type extensions
//     is exactly the routed population: no object is missing from the merge
//     and none appears under two owners.
func AuditSharded(db *shard.DB) []string {
	var out []string
	db.EachShard(func(i int, sh *gomdb.Database) error {
		for _, m := range Audit(sh) {
			out = append(out, fmt.Sprintf("shard %d: %s", i, m))
		}
		return nil
	})

	n := db.Shards()
	present := make(map[gomdb.OID]int) // OID -> count of shards holding it
	where := make(map[gomdb.OID]int)   // OID -> some shard holding it
	db.EachShard(func(i int, sh *gomdb.Database) error {
		for _, oid := range sh.Objects.AllOIDs() {
			present[oid]++
			where[oid] = i
		}
		return nil
	})
	for oid, cnt := range present {
		own, ok := db.Owner(oid)
		if !ok {
			out = append(out, fmt.Sprintf("router: object %v on shard %d has no routing entry", oid, where[oid]))
			continue
		}
		switch {
		case own == -1 && cnt != n:
			out = append(out, fmt.Sprintf("router: replicated %v present on %d/%d shards", oid, cnt, n))
		case own >= 0 && cnt != 1:
			out = append(out, fmt.Sprintf("router: %v owned by shard %d but present on %d shards", oid, own, cnt))
		case own >= 0 && where[oid] != own:
			out = append(out, fmt.Sprintf("router: %v routed to shard %d but lives on shard %d", oid, own, where[oid]))
		}
	}
	// Every routing entry must resolve to a live object.
	for _, oid := range db.RoutedOIDs() {
		if present[oid] == 0 {
			own, _ := db.Owner(oid)
			out = append(out, fmt.Sprintf("router: routing entry %v -> %d resolves to no live object", oid, own))
		}
	}
	return out
}

package lang_test

// Tests of the Appendix path-extraction analysis against hand-computed
// RelAttr sets, including the rewriting semantics of Definition 8.1.

import (
	"errors"
	"sort"
	"strings"
	"testing"

	"gomdb/internal/lang"
)

// mockWorld is a standalone TypeInfo + FuncResolver for extraction tests.
type mockWorld struct {
	attrs map[string]map[string]string // type -> attr -> type
	elems map[string]string            // set type -> elem type
	funcs map[string]*lang.Function
}

func (w *mockWorld) AttrType(tn, a string) (string, bool) {
	t, ok := w.attrs[tn][a]
	return t, ok
}
func (w *mockWorld) ElemType(tn string) (string, bool) {
	t, ok := w.elems[tn]
	return t, ok
}
func (w *mockWorld) ResolveStatic(fn string) (*lang.Function, bool) {
	f, ok := w.funcs[fn]
	return f, ok
}

// geometryWorld mirrors the paper's Cuboid schema.
func geometryWorld() *mockWorld {
	w := &mockWorld{
		attrs: map[string]map[string]string{
			"Vertex":   {"X": "float", "Y": "float", "Z": "float"},
			"Material": {"Name": "string", "SpecWeight": "float"},
			"Cuboid": {
				"V1": "Vertex", "V2": "Vertex", "V3": "Vertex", "V4": "Vertex",
				"V5": "Vertex", "V6": "Vertex", "V7": "Vertex", "V8": "Vertex",
				"Mat": "Material", "Value": "decimal",
			},
		},
		elems: map[string]string{"Workpieces": "Cuboid"},
		funcs: map[string]*lang.Function{},
	}
	self := lang.Self()
	w.funcs["Vertex.dist"] = &lang.Function{
		Name:   "Vertex.dist",
		Params: []lang.Param{lang.Prm("self", "Vertex"), lang.Prm("v", "Vertex")},
		Body: []lang.Stmt{
			lang.Let("dx", lang.Sub(lang.A(self, "X"), lang.A(lang.V("v"), "X"))),
			lang.Let("dy", lang.Sub(lang.A(self, "Y"), lang.A(lang.V("v"), "Y"))),
			lang.Let("dz", lang.Sub(lang.A(self, "Z"), lang.A(lang.V("v"), "Z"))),
			lang.Ret(lang.Sqrt(lang.Add(lang.Add(
				lang.Mul(lang.V("dx"), lang.V("dx")),
				lang.Mul(lang.V("dy"), lang.V("dy"))),
				lang.Mul(lang.V("dz"), lang.V("dz"))))),
		},
	}
	edge := func(name, to string) *lang.Function {
		return &lang.Function{
			Name:   "Cuboid." + name,
			Params: []lang.Param{lang.Prm("self", "Cuboid")},
			Body: []lang.Stmt{
				lang.Ret(lang.CallFn("Vertex.dist", lang.A(self, "V1"), lang.A(self, to))),
			},
		}
	}
	w.funcs["Cuboid.length"] = edge("length", "V2")
	w.funcs["Cuboid.width"] = edge("width", "V4")
	w.funcs["Cuboid.height"] = edge("height", "V5")
	w.funcs["Cuboid.volume"] = &lang.Function{
		Name:   "Cuboid.volume",
		Params: []lang.Param{lang.Prm("self", "Cuboid")},
		Body: []lang.Stmt{
			lang.Ret(lang.Mul(lang.Mul(
				lang.CallFn("Cuboid.length", self),
				lang.CallFn("Cuboid.width", self)),
				lang.CallFn("Cuboid.height", self))),
		},
	}
	w.funcs["Cuboid.weight"] = &lang.Function{
		Name:   "Cuboid.weight",
		Params: []lang.Param{lang.Prm("self", "Cuboid")},
		Body: []lang.Stmt{
			lang.Ret(lang.Mul(lang.CallFn("Cuboid.volume", self), lang.A(self, "Mat", "SpecWeight"))),
		},
	}
	w.funcs["Workpieces.total_volume"] = &lang.Function{
		Name:   "Workpieces.total_volume",
		Params: []lang.Param{lang.Prm("self", "Workpieces")},
		Body: []lang.Stmt{
			lang.Let("s", lang.F(0)),
			lang.Each("c", self,
				lang.Let("s", lang.Add(lang.V("s"), lang.CallFn("Cuboid.volume", lang.V("c"))))),
			lang.Ret(lang.V("s")),
		},
	}
	return w
}

func relAttrStrings(t *testing.T, w *mockWorld, fn *lang.Function) []string {
	t.Helper()
	x := lang.NewExtractor(w, w)
	attrs, err := x.RelAttrs(fn)
	if err != nil {
		t.Fatalf("RelAttrs(%s): %v", fn.Name, err)
	}
	out := make([]string, len(attrs))
	for i, a := range attrs {
		out[i] = a.String()
	}
	sort.Strings(out)
	return out
}

// TestRelAttrVolume checks the paper's Section 5.1 example:
// RelAttr(volume) = {Cuboid.V1, Cuboid.V2, Cuboid.V4, Cuboid.V5,
// Vertex.X, Vertex.Y, Vertex.Z}.
func TestRelAttrVolume(t *testing.T) {
	w := geometryWorld()
	got := relAttrStrings(t, w, w.funcs["Cuboid.volume"])
	want := []string{
		"Cuboid.V1", "Cuboid.V2", "Cuboid.V4", "Cuboid.V5",
		"Vertex.X", "Vertex.Y", "Vertex.Z",
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("RelAttr(volume) = %v, want %v", got, want)
	}
}

func TestRelAttrWeightAddsMaterial(t *testing.T) {
	w := geometryWorld()
	got := relAttrStrings(t, w, w.funcs["Cuboid.weight"])
	want := []string{
		"Cuboid.Mat", "Cuboid.V1", "Cuboid.V2", "Cuboid.V4", "Cuboid.V5",
		"Material.SpecWeight", "Vertex.X", "Vertex.Y", "Vertex.Z",
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("RelAttr(weight) = %v, want %v", got, want)
	}
}

// TestRelAttrTotalVolume checks element dependencies: total_volume depends
// on the membership of the Workpieces set plus everything volume needs.
func TestRelAttrTotalVolume(t *testing.T) {
	w := geometryWorld()
	got := relAttrStrings(t, w, w.funcs["Workpieces.total_volume"])
	want := []string{
		"Cuboid.V1", "Cuboid.V2", "Cuboid.V4", "Cuboid.V5",
		"Vertex.X", "Vertex.Y", "Vertex.Z",
		"Workpieces." + lang.ElemSeg,
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("RelAttr(total_volume) = %v, want %v", got, want)
	}
}

// TestAssignmentReplacesRules verifies the ⊗ semantics of Definition 8.1:
// re-assignment replaces a variable's rewriting rules, so paths read through
// the variable's *old* value do not leak into later reads.
func TestAssignmentReplacesRules(t *testing.T) {
	w := geometryWorld()
	fn := &lang.Function{
		Name:   "f",
		Params: []lang.Param{lang.Prm("self", "Cuboid")},
		Body: []lang.Stmt{
			lang.Let("v", lang.A(lang.Self(), "V1")),
			lang.Let("v", lang.A(lang.Self(), "V2")), // replaces the rule v -> self.V1
			lang.Ret(lang.A(lang.V("v"), "X")),
		},
	}
	got := relAttrStrings(t, w, fn)
	// self.V1 is still accessed (the first assignment evaluated it) but
	// v.X after the second assignment must resolve to V2.X only: the set
	// contains Cuboid.V1 and Cuboid.V2 but Vertex.X must come via V2.
	x := lang.NewExtractor(w, w)
	paths, err := x.RelevantPaths(fn)
	if err != nil {
		t.Fatal(err)
	}
	var pathStrs []string
	for _, p := range paths {
		pathStrs = append(pathStrs, p.String())
	}
	joined := strings.Join(pathStrs, ",")
	if strings.Contains(joined, "self.V1.X") {
		t.Fatalf("stale rule survived re-assignment: %v", pathStrs)
	}
	if !strings.Contains(joined, "self.V2.X") {
		t.Fatalf("missing path through new rule: %v", pathStrs)
	}
	_ = got
}

// TestIfMergesBranchRules verifies that conditionals keep the rules of both
// branches (the sound over-approximation).
func TestIfMergesBranchRules(t *testing.T) {
	w := geometryWorld()
	fn := &lang.Function{
		Name:   "g",
		Params: []lang.Param{lang.Prm("self", "Cuboid")},
		Body: []lang.Stmt{
			lang.Let("v", lang.A(lang.Self(), "V1")),
			lang.When(lang.Gt(lang.A(lang.Self(), "Value"), lang.F(10)),
				[]lang.Stmt{lang.Let("v", lang.A(lang.Self(), "V2"))}),
			lang.Ret(lang.A(lang.V("v"), "X")),
		},
	}
	x := lang.NewExtractor(w, w)
	paths, err := x.RelevantPaths(fn)
	if err != nil {
		t.Fatal(err)
	}
	var joined []string
	for _, p := range paths {
		joined = append(joined, p.String())
	}
	all := strings.Join(joined, ",")
	for _, want := range []string{"self.V1.X", "self.V2.X", "self.Value"} {
		if !strings.Contains(all, want) {
			t.Fatalf("missing %s in %v", want, joined)
		}
	}
}

// TestRecursionUnanalyzable: recursive functions fall back to conservative
// invalidation.
func TestRecursionUnanalyzable(t *testing.T) {
	w := geometryWorld()
	w.funcs["rec"] = &lang.Function{
		Name:   "rec",
		Params: []lang.Param{lang.Prm("self", "Cuboid")},
		Body:   []lang.Stmt{lang.Ret(lang.CallFn("rec", lang.Self()))},
	}
	x := lang.NewExtractor(w, w)
	_, err := x.RelAttrs(w.funcs["rec"])
	if !errors.Is(err, lang.ErrUnanalyzable) {
		t.Fatalf("err = %v, want ErrUnanalyzable", err)
	}
}

// TestUnresolvableCallUnanalyzable: a call that cannot be statically
// resolved is unanalyzable.
func TestUnresolvableCallUnanalyzable(t *testing.T) {
	w := geometryWorld()
	fn := &lang.Function{
		Name:   "h",
		Params: []lang.Param{lang.Prm("self", "Cuboid")},
		Body:   []lang.Stmt{lang.Ret(lang.CallFn("no.such", lang.Self()))},
	}
	x := lang.NewExtractor(w, w)
	if _, err := x.RelAttrs(fn); !errors.Is(err, lang.ErrUnanalyzable) {
		t.Fatalf("err = %v", err)
	}
}

// TestLoopChasePathsBounded: a loop that chases an unbounded path must be
// rejected rather than diverge.
func TestLoopChasePathsBounded(t *testing.T) {
	w := geometryWorld()
	w.attrs["Node"] = map[string]string{"Next": "Node", "Val": "float"}
	w.elems["Nodes"] = "Node"
	fn := &lang.Function{
		Name:   "chase",
		Params: []lang.Param{lang.Prm("self", "Nodes"), lang.Prm("start", "Node")},
		Body: []lang.Stmt{
			lang.Let("n", lang.V("start")),
			lang.Each("x", lang.Self(),
				lang.Let("n", lang.A(lang.V("n"), "Next"))),
			lang.Ret(lang.A(lang.V("n"), "Val")),
		},
	}
	x := lang.NewExtractor(w, w)
	if _, err := x.RelAttrs(fn); !errors.Is(err, lang.ErrUnanalyzable) {
		t.Fatalf("err = %v, want ErrUnanalyzable", err)
	}
}

// TestTypedPathsRoots verifies the per-path root typing the hook planner
// relies on.
func TestTypedPathsRoots(t *testing.T) {
	w := geometryWorld()
	x := lang.NewExtractor(w, w)
	typed, err := x.TypedPaths(w.funcs["Workpieces.total_volume"])
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range typed {
		if tp.RootType != "Workpieces" {
			t.Fatalf("path %v rooted at %s, want Workpieces", tp, tp.RootType)
		}
	}
	if len(typed) == 0 {
		t.Fatal("no typed paths")
	}
}

// TestMultiArgumentPaths: paths through every parameter are extracted.
func TestMultiArgumentPaths(t *testing.T) {
	w := geometryWorld()
	got := relAttrStrings(t, w, w.funcs["Vertex.dist"])
	want := []string{"Vertex.X", "Vertex.Y", "Vertex.Z"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("RelAttr(dist) = %v", got)
	}
}

// TestInMembershipDependency: the 'in' operator adds an element dependency
// on the collection.
func TestInMembershipDependency(t *testing.T) {
	w := geometryWorld()
	fn := &lang.Function{
		Name:   "member",
		Params: []lang.Param{lang.Prm("self", "Workpieces"), lang.Prm("c", "Cuboid")},
		Body: []lang.Stmt{
			lang.Ret(lang.In(lang.V("c"), lang.Self())),
		},
	}
	got := relAttrStrings(t, w, fn)
	want := "Workpieces." + lang.ElemSeg
	if len(got) != 1 || got[0] != want {
		t.Fatalf("RelAttr(member) = %v, want [%s]", got, want)
	}
}

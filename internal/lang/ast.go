// Package lang implements GOMpl, the small operation-body language of this
// GOM reproduction. Operation and function bodies are abstract syntax trees
// built programmatically (the schema layer attaches them to types); the
// package provides
//
//   - an evaluator (eval.go) that executes bodies against the object base
//     through a Runtime interface, recording every accessed object so the
//     GMR manager can maintain the Reverse Reference Relation, and
//   - the static path-extraction analysis of the paper's Appendix
//     (extract.go) that computes the relevant path expressions — and from
//     them RelAttr(f) (Definition 5.1) — directly from function bodies.
//
// Interpreting bodies instead of compiling them is the reproduction's
// substitute for GOM's schema compiler; it is what makes both dynamic access
// tracking and static analysis possible in one place.
package lang

import (
	"fmt"
	"strings"

	"gomdb/internal/object"
)

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpIn // set/list membership
)

func (op BinOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	case OpIn:
		return "in"
	}
	return "?"
}

// Expr is a GOMpl expression.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// Stmt is a GOMpl statement.
type Stmt interface {
	fmt.Stringer
	stmtNode()
}

// Lit is a literal value.
type Lit struct{ Val object.Value }

// Var references a parameter or local variable. The receiver of a
// type-associated operation is the variable "self".
type Var struct{ Name string }

// Attr reads attribute Attr of the object denoted by Recv — the implicit
// built-in read operation A of Section 2.
type Attr struct {
	Recv Expr
	Name string
}

// Call invokes a declared function or operation. Fn is either a qualified
// name "Type.op" or an unqualified global function name; for type-associated
// operations Args[0] is the receiver.
type Call struct {
	Fn   string
	Args []Expr
}

// Builtin invokes a built-in pure function (sqrt, abs, min, max, len, count).
type Builtin struct {
	Name string
	Args []Expr
}

// Bin is a binary operation.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// Un is unary negation (arithmetic "-" or boolean "not").
type Un struct {
	Op string // "-" or "not"
	E  Expr
}

// MkTuple constructs a transient tuple value of a named tuple type; the
// company benchmark's matrix function builds MatrixLine tuples this way.
type MkTuple struct {
	TypeName string
	Fields   []Expr
}

// MkSet constructs a transient set value from element expressions.
type MkSet struct{ Elems []Expr }

// Elems evaluates to the transient set of elements of a set- or
// list-structured object (dereferencing a Ref); on transient collections it
// is the identity. Reading the elements counts as an access to the
// collection object for RRR purposes.
type Elems struct{ Coll Expr }

func (Lit) exprNode()     {}
func (Var) exprNode()     {}
func (Attr) exprNode()    {}
func (Call) exprNode()    {}
func (Builtin) exprNode() {}
func (Bin) exprNode()     {}
func (Un) exprNode()      {}
func (MkTuple) exprNode() {}
func (MkSet) exprNode()   {}
func (Elems) exprNode()   {}

func (e Lit) String() string  { return e.Val.String() }
func (e Var) String() string  { return e.Name }
func (e Attr) String() string { return e.Recv.String() + "." + e.Name }
func (e Call) String() string {
	return e.Fn + "(" + joinExprs(e.Args) + ")"
}
func (e Builtin) String() string { return e.Name + "(" + joinExprs(e.Args) + ")" }
func (e Bin) String() string {
	return "(" + e.L.String() + " " + e.Op.String() + " " + e.R.String() + ")"
}
func (e Un) String() string      { return e.Op + "(" + e.E.String() + ")" }
func (e MkTuple) String() string { return e.TypeName + "[" + joinExprs(e.Fields) + "]" }
func (e MkSet) String() string   { return "{" + joinExprs(e.Elems) + "}" }
func (e Elems) String() string   { return "elems(" + e.Coll.String() + ")" }

func joinExprs(es []Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.String()
	}
	return strings.Join(parts, ", ")
}

// Assign binds a local variable: v := e.
type Assign struct {
	Var string
	E   Expr
}

// SetAttr is the elementary update operation t.set_A: recv.A := e.
type SetAttr struct {
	Recv Expr
	Name string
	E    Expr
}

// Insert is the elementary update t.insert on a set-structured object.
type Insert struct {
	Recv Expr
	E    Expr
}

// Remove is the elementary update t.remove on a set-structured object.
type Remove struct {
	Recv Expr
	E    Expr
}

// If is a conditional statement.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// ForEach iterates the elements of a set- or list-structured object or a
// transient collection, binding each element to Var.
type ForEach struct {
	Var  string
	Coll Expr
	Body []Stmt
}

// Return terminates the function with the value of E (nil E returns null).
type Return struct{ E Expr }

// ExprStmt evaluates E for its effects (typically a Call on an updating
// operation).
type ExprStmt struct{ E Expr }

func (Assign) stmtNode()   {}
func (SetAttr) stmtNode()  {}
func (Insert) stmtNode()   {}
func (Remove) stmtNode()   {}
func (If) stmtNode()       {}
func (ForEach) stmtNode()  {}
func (Return) stmtNode()   {}
func (ExprStmt) stmtNode() {}

func (s Assign) String() string { return s.Var + " := " + s.E.String() }
func (s SetAttr) String() string {
	return s.Recv.String() + ".set_" + s.Name + "(" + s.E.String() + ")"
}
func (s Insert) String() string { return s.Recv.String() + ".insert(" + s.E.String() + ")" }
func (s Remove) String() string { return s.Recv.String() + ".remove(" + s.E.String() + ")" }
func (s If) String() string {
	out := "if " + s.Cond.String() + " then " + joinStmts(s.Then)
	if len(s.Else) > 0 {
		out += " else " + joinStmts(s.Else)
	}
	return out
}
func (s ForEach) String() string {
	return "foreach " + s.Var + " in " + s.Coll.String() + " do " + joinStmts(s.Body)
}
func (s Return) String() string {
	if s.E == nil {
		return "return"
	}
	return "return " + s.E.String()
}
func (s ExprStmt) String() string { return s.E.String() }

func joinStmts(ss []Stmt) string {
	parts := make([]string, len(ss))
	for i, s := range ss {
		parts[i] = s.String()
	}
	return strings.Join(parts, "; ")
}

// Param is a formal parameter of a function.
type Param struct {
	Name string
	Type string
}

// Function is a declared GOMpl function or type-associated operation.
// Type-associated operations take the receiver as first parameter, named
// "self" by convention (the schema layer enforces it).
type Function struct {
	// Name is the qualified identifier, e.g. "Cuboid.volume" for operations
	// or a plain name for free functions.
	Name       string
	Params     []Param
	ResultType string
	Body       []Stmt

	// SideEffectFree declares the function free of updates; only such
	// functions are materializable (Definition 3.1 requires it).
	SideEffectFree bool
}

// ParamTypes returns the parameter type names.
func (f *Function) ParamTypes() []string {
	out := make([]string, len(f.Params))
	for i, p := range f.Params {
		out[i] = p.Type
	}
	return out
}

// Convenience constructors keep programmatically built bodies readable.

// Self returns the receiver variable.
func Self() Expr { return Var{Name: "self"} }

// V returns a variable reference.
func V(name string) Expr { return Var{Name: name} }

// A returns self.attr... chained attribute access over a base expression.
func A(recv Expr, attrs ...string) Expr {
	e := recv
	for _, a := range attrs {
		e = Attr{Recv: e, Name: a}
	}
	return e
}

// F returns a float literal.
func F(f float64) Expr { return Lit{Val: object.Float(f)} }

// I returns an int literal.
func I(i int64) Expr { return Lit{Val: object.Int(i)} }

// S returns a string literal.
func S(s string) Expr { return Lit{Val: object.String_(s)} }

// B returns a bool literal.
func B(b bool) Expr { return Lit{Val: object.Bool(b)} }

// Mul builds a multiplication node.
func Mul(l, r Expr) Expr { return Bin{Op: OpMul, L: l, R: r} }

// Add builds an addition node.
func Add(l, r Expr) Expr { return Bin{Op: OpAdd, L: l, R: r} }

// Sub builds a subtraction node.
func Sub(l, r Expr) Expr { return Bin{Op: OpSub, L: l, R: r} }

// Div builds a division node.
func Div(l, r Expr) Expr { return Bin{Op: OpDiv, L: l, R: r} }

// Lt builds a less-than comparison.
func Lt(l, r Expr) Expr { return Bin{Op: OpLt, L: l, R: r} }

// Le builds a less-or-equal comparison.
func Le(l, r Expr) Expr { return Bin{Op: OpLe, L: l, R: r} }

// Gt builds a greater-than comparison.
func Gt(l, r Expr) Expr { return Bin{Op: OpGt, L: l, R: r} }

// Ge builds a greater-or-equal comparison.
func Ge(l, r Expr) Expr { return Bin{Op: OpGe, L: l, R: r} }

// Eq builds an equality comparison.
func Eq(l, r Expr) Expr { return Bin{Op: OpEq, L: l, R: r} }

// Ne builds a disequality comparison.
func Ne(l, r Expr) Expr { return Bin{Op: OpNe, L: l, R: r} }

// And builds a short-circuit conjunction.
func And(l, r Expr) Expr { return Bin{Op: OpAnd, L: l, R: r} }

// Or builds a short-circuit disjunction.
func Or(l, r Expr) Expr { return Bin{Op: OpOr, L: l, R: r} }

// CallFn builds a call node.
func CallFn(fn string, args ...Expr) Expr { return Call{Fn: fn, Args: args} }

// Sqrt builds a sqrt builtin call.
func Sqrt(e Expr) Expr { return Builtin{Name: "sqrt", Args: []Expr{e}} }

// Sin builds a sin builtin call.
func Sin(e Expr) Expr { return Builtin{Name: "sin", Args: []Expr{e}} }

// Cos builds a cos builtin call.
func Cos(e Expr) Expr { return Builtin{Name: "cos", Args: []Expr{e}} }

// Count builds a count builtin call.
func Count(e Expr) Expr { return Builtin{Name: "count", Args: []Expr{e}} }

// Union builds a union builtin call: union(set, elem).
func Union(set, elem Expr) Expr { return Builtin{Name: "union", Args: []Expr{set, elem}} }

// In builds a membership test: elem in coll.
func In(elem, coll Expr) Expr { return Bin{Op: OpIn, L: elem, R: coll} }

// ElemsOf builds an Elems node: the element set of a collection object.
func ElemsOf(coll Expr) Expr { return Elems{Coll: coll} }

// Tup builds a MkTuple node.
func Tup(typeName string, fields ...Expr) Expr { return MkTuple{TypeName: typeName, Fields: fields} }

// EmptySet builds an empty transient set literal.
func EmptySet() Expr { return MkSet{} }

// Prm declares a formal parameter.
func Prm(name, typ string) Param { return Param{Name: name, Type: typ} }

// Let builds an assignment statement: name := e.
func Let(name string, e Expr) Stmt { return Assign{Var: name, E: e} }

// SetA builds the elementary update statement recv.set_attr(e).
func SetA(recv Expr, attr string, e Expr) Stmt { return SetAttr{Recv: recv, Name: attr, E: e} }

// InsertInto builds the elementary update statement recv.insert(e).
func InsertInto(recv, e Expr) Stmt { return Insert{Recv: recv, E: e} }

// RemoveFrom builds the elementary update statement recv.remove(e).
func RemoveFrom(recv, e Expr) Stmt { return Remove{Recv: recv, E: e} }

// Ret builds a return statement.
func Ret(e Expr) Stmt { return Return{E: e} }

// Do builds an expression statement (evaluate for effect).
func Do(e Expr) Stmt { return ExprStmt{E: e} }

// Each builds a foreach statement.
func Each(v string, coll Expr, body ...Stmt) Stmt {
	return ForEach{Var: v, Coll: coll, Body: body}
}

// When builds a conditional statement.
func When(cond Expr, then []Stmt, els ...Stmt) Stmt {
	return If{Cond: cond, Then: then, Else: els}
}

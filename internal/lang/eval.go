package lang

import (
	"fmt"
	"math"

	"gomdb/internal/object"
)

// Runtime is the interface through which GOMpl bodies touch the object base.
// The schema engine implements it; the GMR manager wraps it with access
// tracking during (re)materialization and with update hooks on the mutating
// operations (the schema rewrite of Section 4.3).
type Runtime interface {
	// ReadAttr performs the built-in read operation A on a tuple object.
	ReadAttr(recv object.Value, attr string) (object.Value, error)
	// ReadElems returns the elements of a set/list object or transient
	// collection value.
	ReadElems(coll object.Value) ([]object.Value, error)
	// CallFunction invokes a declared function. fn may be qualified
	// ("Type.op") or a free-function name; for operations args[0] is the
	// receiver and dispatch follows its dynamic type.
	CallFunction(fn string, args []object.Value) (object.Value, error)
	// SetAttr performs the elementary update t.set_A.
	SetAttr(recv object.Value, attr string, v object.Value) error
	// InsertElem performs the elementary update t.insert.
	InsertElem(coll, elem object.Value) error
	// RemoveElem performs the elementary update t.remove.
	RemoveElem(coll, elem object.Value) error
	// Charge adds CPU work to the simulated clock.
	Charge(n int64)
}

// Eval executes fn with the given arguments and returns its result.
func Eval(rt Runtime, fn *Function, args []object.Value) (object.Value, error) {
	if len(args) != len(fn.Params) {
		return object.Null(), fmt.Errorf("lang: %s expects %d arguments, got %d", fn.Name, len(fn.Params), len(args))
	}
	env := make(map[string]object.Value, len(args)+4)
	for i, p := range fn.Params {
		env[p.Name] = args[i]
	}
	val, returned, err := evalStmts(rt, fn.Body, env)
	if err != nil {
		return object.Null(), fmt.Errorf("lang: in %s: %w", fn.Name, err)
	}
	if !returned {
		return object.Null(), nil
	}
	return val, nil
}

func evalStmts(rt Runtime, stmts []Stmt, env map[string]object.Value) (object.Value, bool, error) {
	for _, s := range stmts {
		rt.Charge(1)
		switch st := s.(type) {
		case Assign:
			v, err := evalExpr(rt, st.E, env)
			if err != nil {
				return object.Null(), false, err
			}
			env[st.Var] = v
		case SetAttr:
			recv, err := evalExpr(rt, st.Recv, env)
			if err != nil {
				return object.Null(), false, err
			}
			v, err := evalExpr(rt, st.E, env)
			if err != nil {
				return object.Null(), false, err
			}
			if err := rt.SetAttr(recv, st.Name, v); err != nil {
				return object.Null(), false, err
			}
		case Insert:
			recv, err := evalExpr(rt, st.Recv, env)
			if err != nil {
				return object.Null(), false, err
			}
			v, err := evalExpr(rt, st.E, env)
			if err != nil {
				return object.Null(), false, err
			}
			if err := rt.InsertElem(recv, v); err != nil {
				return object.Null(), false, err
			}
		case Remove:
			recv, err := evalExpr(rt, st.Recv, env)
			if err != nil {
				return object.Null(), false, err
			}
			v, err := evalExpr(rt, st.E, env)
			if err != nil {
				return object.Null(), false, err
			}
			if err := rt.RemoveElem(recv, v); err != nil {
				return object.Null(), false, err
			}
		case If:
			cond, err := evalExpr(rt, st.Cond, env)
			if err != nil {
				return object.Null(), false, err
			}
			branch := st.Else
			if cond.Truth() {
				branch = st.Then
			}
			if v, ret, err := evalStmts(rt, branch, env); err != nil || ret {
				return v, ret, err
			}
		case ForEach:
			coll, err := evalExpr(rt, st.Coll, env)
			if err != nil {
				return object.Null(), false, err
			}
			elems, err := rt.ReadElems(coll)
			if err != nil {
				return object.Null(), false, err
			}
			saved, had := env[st.Var]
			for _, e := range elems {
				env[st.Var] = e
				if v, ret, err := evalStmts(rt, st.Body, env); err != nil || ret {
					return v, ret, err
				}
			}
			if had {
				env[st.Var] = saved
			} else {
				delete(env, st.Var)
			}
		case Return:
			if st.E == nil {
				return object.Null(), true, nil
			}
			v, err := evalExpr(rt, st.E, env)
			return v, true, err
		case ExprStmt:
			if _, err := evalExpr(rt, st.E, env); err != nil {
				return object.Null(), false, err
			}
		default:
			return object.Null(), false, fmt.Errorf("unknown statement %T", s)
		}
	}
	return object.Null(), false, nil
}

func evalExpr(rt Runtime, e Expr, env map[string]object.Value) (object.Value, error) {
	rt.Charge(1)
	switch ex := e.(type) {
	case Lit:
		return ex.Val, nil
	case Var:
		v, ok := env[ex.Name]
		if !ok {
			return object.Null(), fmt.Errorf("unbound variable %q", ex.Name)
		}
		return v, nil
	case Attr:
		recv, err := evalExpr(rt, ex.Recv, env)
		if err != nil {
			return object.Null(), err
		}
		return rt.ReadAttr(recv, ex.Name)
	case Call:
		args := make([]object.Value, len(ex.Args))
		for i, a := range ex.Args {
			v, err := evalExpr(rt, a, env)
			if err != nil {
				return object.Null(), err
			}
			args[i] = v
		}
		return rt.CallFunction(ex.Fn, args)
	case Builtin:
		args := make([]object.Value, len(ex.Args))
		for i, a := range ex.Args {
			v, err := evalExpr(rt, a, env)
			if err != nil {
				return object.Null(), err
			}
			args[i] = v
		}
		return evalBuiltin(rt, ex.Name, args)
	case Bin:
		return evalBin(rt, ex, env)
	case Un:
		v, err := evalExpr(rt, ex.E, env)
		if err != nil {
			return object.Null(), err
		}
		switch ex.Op {
		case "-":
			switch v.Kind {
			case object.KInt:
				return object.Int(-v.I), nil
			case object.KFloat:
				return object.Float(-v.F), nil
			}
			return object.Null(), fmt.Errorf("unary - on %v", v.Kind)
		case "not":
			return object.Bool(!v.Truth()), nil
		}
		return object.Null(), fmt.Errorf("unknown unary operator %q", ex.Op)
	case MkTuple:
		fields := make([]object.Value, len(ex.Fields))
		for i, f := range ex.Fields {
			v, err := evalExpr(rt, f, env)
			if err != nil {
				return object.Null(), err
			}
			fields[i] = v
		}
		return object.TupleVal(ex.TypeName, fields...), nil
	case MkSet:
		elems := make([]object.Value, 0, len(ex.Elems))
		for _, el := range ex.Elems {
			v, err := evalExpr(rt, el, env)
			if err != nil {
				return object.Null(), err
			}
			elems = append(elems, v)
		}
		return object.SetVal(elems...), nil
	case Elems:
		coll, err := evalExpr(rt, ex.Coll, env)
		if err != nil {
			return object.Null(), err
		}
		elems, err := rt.ReadElems(coll)
		if err != nil {
			return object.Null(), err
		}
		return object.SetVal(elems...), nil
	}
	return object.Null(), fmt.Errorf("unknown expression %T", e)
}

func evalBin(rt Runtime, ex Bin, env map[string]object.Value) (object.Value, error) {
	// Short-circuit boolean operators.
	if ex.Op == OpAnd || ex.Op == OpOr {
		l, err := evalExpr(rt, ex.L, env)
		if err != nil {
			return object.Null(), err
		}
		if ex.Op == OpAnd && !l.Truth() {
			return object.Bool(false), nil
		}
		if ex.Op == OpOr && l.Truth() {
			return object.Bool(true), nil
		}
		r, err := evalExpr(rt, ex.R, env)
		if err != nil {
			return object.Null(), err
		}
		return object.Bool(r.Truth()), nil
	}
	l, err := evalExpr(rt, ex.L, env)
	if err != nil {
		return object.Null(), err
	}
	r, err := evalExpr(rt, ex.R, env)
	if err != nil {
		return object.Null(), err
	}
	switch ex.Op {
	case OpAdd, OpSub, OpMul, OpDiv:
		return evalArith(ex.Op, l, r)
	case OpEq:
		return object.Bool(l.Equal(r)), nil
	case OpNe:
		return object.Bool(!l.Equal(r)), nil
	case OpLt, OpLe, OpGt, OpGe:
		return evalCompare(ex.Op, l, r)
	case OpIn:
		if r.Kind == object.KRef {
			elems, err := rt.ReadElems(r)
			if err != nil {
				return object.Null(), err
			}
			r = object.SetVal(elems...)
		}
		if r.Kind != object.KSet && r.Kind != object.KList {
			return object.Null(), fmt.Errorf("'in' on non-collection %v", r.Kind)
		}
		return object.Bool(r.Contains(l)), nil
	}
	return object.Null(), fmt.Errorf("unknown binary operator %v", ex.Op)
}

func evalArith(op BinOp, l, r object.Value) (object.Value, error) {
	if l.Kind == object.KInt && r.Kind == object.KInt {
		switch op {
		case OpAdd:
			return object.Int(l.I + r.I), nil
		case OpSub:
			return object.Int(l.I - r.I), nil
		case OpMul:
			return object.Int(l.I * r.I), nil
		case OpDiv:
			if r.I == 0 {
				return object.Null(), fmt.Errorf("integer division by zero")
			}
			return object.Int(l.I / r.I), nil
		}
	}
	lf, okL := l.AsFloat()
	rf, okR := r.AsFloat()
	if !okL || !okR {
		return object.Null(), fmt.Errorf("arithmetic on %v and %v", l.Kind, r.Kind)
	}
	switch op {
	case OpAdd:
		return object.Float(lf + rf), nil
	case OpSub:
		return object.Float(lf - rf), nil
	case OpMul:
		return object.Float(lf * rf), nil
	case OpDiv:
		if rf == 0 {
			return object.Null(), fmt.Errorf("division by zero")
		}
		return object.Float(lf / rf), nil
	}
	return object.Null(), fmt.Errorf("bad arithmetic operator %v", op)
}

func evalCompare(op BinOp, l, r object.Value) (object.Value, error) {
	if l.Kind == object.KString && r.Kind == object.KString {
		switch op {
		case OpLt:
			return object.Bool(l.S < r.S), nil
		case OpLe:
			return object.Bool(l.S <= r.S), nil
		case OpGt:
			return object.Bool(l.S > r.S), nil
		case OpGe:
			return object.Bool(l.S >= r.S), nil
		}
	}
	lf, okL := l.AsFloat()
	rf, okR := r.AsFloat()
	if !okL || !okR {
		return object.Null(), fmt.Errorf("comparison of %v and %v", l.Kind, r.Kind)
	}
	switch op {
	case OpLt:
		return object.Bool(lf < rf), nil
	case OpLe:
		return object.Bool(lf <= rf), nil
	case OpGt:
		return object.Bool(lf > rf), nil
	case OpGe:
		return object.Bool(lf >= rf), nil
	}
	return object.Null(), fmt.Errorf("bad comparison operator %v", op)
}

func evalBuiltin(rt Runtime, name string, args []object.Value) (object.Value, error) {
	arity := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("builtin %s expects %d arguments, got %d", name, n, len(args))
		}
		return nil
	}
	switch name {
	case "sqrt":
		if err := arity(1); err != nil {
			return object.Null(), err
		}
		f, ok := args[0].AsFloat()
		if !ok {
			return object.Null(), fmt.Errorf("sqrt of %v", args[0].Kind)
		}
		if f < 0 {
			return object.Null(), fmt.Errorf("sqrt of negative %g", f)
		}
		return object.Float(math.Sqrt(f)), nil
	case "abs":
		if err := arity(1); err != nil {
			return object.Null(), err
		}
		switch args[0].Kind {
		case object.KInt:
			if args[0].I < 0 {
				return object.Int(-args[0].I), nil
			}
			return args[0], nil
		case object.KFloat:
			return object.Float(math.Abs(args[0].F)), nil
		}
		return object.Null(), fmt.Errorf("abs of %v", args[0].Kind)
	case "min", "max":
		if err := arity(2); err != nil {
			return object.Null(), err
		}
		a, okA := args[0].AsFloat()
		b, okB := args[1].AsFloat()
		if !okA || !okB {
			return object.Null(), fmt.Errorf("%s of %v and %v", name, args[0].Kind, args[1].Kind)
		}
		pickFirst := (a <= b) == (name == "min")
		if pickFirst {
			return args[0], nil
		}
		return args[1], nil
	case "sin", "cos":
		if err := arity(1); err != nil {
			return object.Null(), err
		}
		f, ok := args[0].AsFloat()
		if !ok {
			return object.Null(), fmt.Errorf("%s of %v", name, args[0].Kind)
		}
		if name == "sin" {
			return object.Float(math.Sin(f)), nil
		}
		return object.Float(math.Cos(f)), nil
	case "union":
		// union(set, elem) returns the set extended by elem (pure; the
		// accumulator idiom for building transient collections in loops).
		if err := arity(2); err != nil {
			return object.Null(), err
		}
		s := args[0]
		if s.Kind == object.KNull {
			s = object.SetVal()
		}
		if s.Kind != object.KSet && s.Kind != object.KList {
			return object.Null(), fmt.Errorf("union on %v", s.Kind)
		}
		if s.Kind == object.KSet && s.Contains(args[1]) {
			return s, nil
		}
		elems := make([]object.Value, 0, len(s.Elems)+1)
		elems = append(elems, s.Elems...)
		elems = append(elems, args[1])
		return object.Value{Kind: s.Kind, Elems: elems}, nil
	case "count", "len":
		if err := arity(1); err != nil {
			return object.Null(), err
		}
		v := args[0]
		if v.Kind == object.KRef {
			elems, err := rt.ReadElems(v)
			if err != nil {
				return object.Null(), err
			}
			return object.Int(int64(len(elems))), nil
		}
		if v.Kind == object.KSet || v.Kind == object.KList {
			return object.Int(int64(len(v.Elems))), nil
		}
		if v.Kind == object.KString {
			return object.Int(int64(len(v.S))), nil
		}
		return object.Null(), fmt.Errorf("count of %v", v.Kind)
	}
	return object.Null(), fmt.Errorf("unknown builtin %q", name)
}

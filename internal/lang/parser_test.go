package lang_test

// Tests of the textual GOMpl parser and the schema binder, including an
// end-to-end equivalence check: the paper's Cuboid functions defined
// textually behave identically to the programmatically built fixture
// bodies and yield the same RelAttr sets.

import (
	"sort"
	"strings"
	"testing"

	"gomdb/internal/lang"
	"gomdb/internal/object"
	"gomdb/internal/schema"
	"gomdb/internal/storage"
)

func newBoundEngine(t *testing.T) *schema.Engine {
	t.Helper()
	clock := storage.NewClock()
	pool := storage.NewPool(storage.NewDisk(clock), 64)
	sch := schema.New()
	objs := object.NewManager(sch.Reg, pool, clock)
	en := schema.NewEngine(sch, objs, clock)
	mustDef := func(tp *object.Type, pub ...string) {
		if err := sch.DefineType(tp, pub...); err != nil {
			t.Fatal(err)
		}
	}
	mustDef(object.NewTupleType("Vertex",
		object.AttrDef{Name: "X", Type: "float", Public: true},
		object.AttrDef{Name: "Y", Type: "float", Public: true},
		object.AttrDef{Name: "Z", Type: "float", Public: true}), "dist", "translate")
	mustDef(object.NewTupleType("Material",
		object.AttrDef{Name: "Name", Type: "string", Public: true},
		object.AttrDef{Name: "SpecWeight", Type: "float", Public: true}))
	mustDef(object.NewTupleType("Cuboid",
		object.AttrDef{Name: "V1", Type: "Vertex", Public: true},
		object.AttrDef{Name: "V2", Type: "Vertex", Public: true},
		object.AttrDef{Name: "V4", Type: "Vertex", Public: true},
		object.AttrDef{Name: "V5", Type: "Vertex", Public: true},
		object.AttrDef{Name: "Mat", Type: "Material", Public: true}),
		"length", "width", "height", "volume", "weight")
	mustDef(object.NewSetType("Workpieces", "Cuboid"), "total_volume", "insert", "remove")
	return en
}

// defineTextualGeometry installs the paper's functions from their textual
// form (Figure 1's definitions, with "!!" comments).
func defineTextualGeometry(t *testing.T, en *schema.Engine) {
	t.Helper()
	sch := en.Sch
	defs := []struct {
		typeName string
		src      string
	}{
		{"Vertex", `define dist(v: Vertex): float is
			dx := self.X - v.X
			dy := self.Y - v.Y
			dz := self.Z - v.Z
			return sqrt(dx*dx + dy*dy + dz*dz)
		end`},
		{"Vertex", `define translate(tr: Vertex) is
			self.set_X(self.X + tr.X)   !! elementary updates in call syntax
			self.set_Y(self.Y + tr.Y)
			self.set_Z(self.Z + tr.Z)
		end`},
		{"Cuboid", `define length: float is
			return self.V1.dist(self.V2)  !! delegate the computation to Vertex V1
		end`},
		{"Cuboid", `define width: float is
			return self.V1.dist(self.V4)
		end`},
		{"Cuboid", `define height: float is
			return self.V1.dist(self.V5)
		end`},
		{"Cuboid", `define volume: float is
			return self.length * self.width * self.height
		end`},
		{"Cuboid", `define weight: float is
			return self.volume * self.Mat.SpecWeight
		end`},
		{"Workpieces", `define total_volume: float is
			s := 0.0
			foreach c in self do
				s := s + c.volume
			end
			return s
		end`},
	}
	for _, d := range defs {
		if _, err := sch.DefineOpSrc(d.typeName, d.src, d.typeName != "Vertex" || !strings.Contains(d.src, "translate")); err != nil {
			t.Fatalf("DefineOpSrc %s: %v\n%s", d.typeName, err, d.src)
		}
	}
}

func TestTextualDefinitionsEvaluate(t *testing.T) {
	en := newBoundEngine(t)
	defineTextualGeometry(t, en)

	v := func(x, y, z float64) object.Value {
		oid, err := en.Create("Vertex", []object.Value{object.Float(x), object.Float(y), object.Float(z)})
		if err != nil {
			t.Fatal(err)
		}
		return object.Ref(oid)
	}
	iron, err := en.Create("Material", []object.Value{object.String_("Iron"), object.Float(7.86)})
	if err != nil {
		t.Fatal(err)
	}
	// 10 x 6 x 5 cuboid: volume 300, weight 2358 (the paper's id1).
	cub, err := en.Create("Cuboid", []object.Value{
		v(0, 0, 0), v(10, 0, 0), v(0, 6, 0), v(0, 0, 5), object.Ref(iron),
	})
	if err != nil {
		t.Fatal(err)
	}
	vol, err := en.Invoke("Cuboid.volume", object.Ref(cub))
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := vol.AsFloat(); f != 300 {
		t.Fatalf("textual volume = %v, want 300", vol)
	}
	w, err := en.Invoke("Cuboid.weight", object.Ref(cub))
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := w.AsFloat(); f != 2358 {
		t.Fatalf("textual weight = %v, want 2358", w)
	}
	// Mutating op from call syntax.
	if _, err := en.Invoke("Vertex.translate", v(1, 1, 1), v(2, 0, 0)); err != nil {
		t.Fatalf("translate: %v", err)
	}
	// total_volume over a set object.
	set, err := en.CreateCollection("Workpieces", []object.Value{object.Ref(cub)})
	if err != nil {
		t.Fatal(err)
	}
	tv, err := en.Invoke("Workpieces.total_volume", object.Ref(set))
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := tv.AsFloat(); f != 300 {
		t.Fatalf("total_volume = %v", tv)
	}
}

// TestTextualRelAttrMatchesPaper: the extractor computes the Section 5.1
// RelAttr set from the textually defined volume.
func TestTextualRelAttrMatchesPaper(t *testing.T) {
	en := newBoundEngine(t)
	defineTextualGeometry(t, en)
	fn, ok := en.Sch.ResolveOp("Cuboid", "volume")
	if !ok {
		t.Fatal("volume not defined")
	}
	x := lang.NewExtractor(en.Sch, en.Sch)
	attrs, err := x.RelAttrs(fn)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, a := range attrs {
		got = append(got, a.String())
	}
	sort.Strings(got)
	want := "Cuboid.V1,Cuboid.V2,Cuboid.V4,Cuboid.V5,Vertex.X,Vertex.Y,Vertex.Z"
	if strings.Join(got, ",") != want {
		t.Fatalf("RelAttr(textual volume) = %v", got)
	}
}

func TestParseErrorsGompl(t *testing.T) {
	bad := []string{
		``,
		`define is end`,
		`define f( is end`,
		`define f(x) is end`,               // missing param type
		`define f is return`,               // missing end
		`define f is if true then end`,     // fine actually? if without end... has end for if but not define
		`define f is x := end`,             // missing expr
		`define f is return 1 end extra`,   // trailing
		`define f is return "unclosed end`, // unterminated string
		`define f is foreach x in s end`,   // missing do
		`define f is return (1 + 2 end`,    // unbalanced paren
	}
	for _, src := range bad {
		if _, err := lang.ParseDefine(src); err == nil {
			t.Errorf("ParseDefine(%q) succeeded", src)
		}
	}
}

func TestParsePrecedenceAndComments(t *testing.T) {
	pf, err := lang.ParseDefine(`define f(a: float, b: float, c: float): float is
		!! precedence: * binds tighter than +, comparisons loosest
		return a + b * c
	end`)
	if err != nil {
		t.Fatal(err)
	}
	ret := pf.Body[0].(lang.Return)
	bin, ok := ret.E.(lang.Bin)
	if !ok || bin.Op != lang.OpAdd {
		t.Fatalf("top operator = %v", ret.E)
	}
	if inner, ok := bin.R.(lang.Bin); !ok || inner.Op != lang.OpMul {
		t.Fatalf("right operand = %v", bin.R)
	}
}

func TestBinderRejections(t *testing.T) {
	en := newBoundEngine(t)
	defineTextualGeometry(t, en)
	bad := []struct {
		typeName, src string
	}{
		{"Cuboid", `define f1: float is return self.Nope end`},
		{"Cuboid", `define f2: float is return self.V1.dist() end`},         // arity
		{"Cuboid", `define f3: float is return nosuchfn(self) end`},         // unknown fn
		{"Cuboid", `define f4: float is return x end`},                      // unbound var
		{"Cuboid", `define f5: string is return self.volume end`},           // return type
		{"Cuboid", `define f6(v: Nope): float is return 0.0 end`},           // unknown param type
		{"Cuboid", `define f7 is self.V1.set_W(1.0) end`},                   // unknown attr in set_
		{"Cuboid", `define f8 is self.insert(self) end`},                    // insert on tuple type
		{"Cuboid", `define f9: float is return self.Mat + 1.0 end`},         // arithmetic on object
		{"Cuboid", `define f10: float is foreach x in self.Mat do end end`}, // foreach over tuple
	}
	for _, c := range bad {
		if _, err := en.Sch.DefineOpSrc(c.typeName, c.src, true); err == nil {
			t.Errorf("binder accepted %s", c.src)
		}
	}
}

// TestBinderInheritedAttributes: a textual body on a subtype may read
// attributes inherited from the supertype.
func TestBinderInheritedAttributes(t *testing.T) {
	en := newBoundEngine(t)
	base := object.NewTupleType("Named", object.AttrDef{Name: "Tag", Type: "string", Public: true})
	if err := en.Sch.DefineType(base); err != nil {
		t.Fatal(err)
	}
	sub := object.NewTupleType("Scored", object.AttrDef{Name: "Score", Type: "float", Public: true})
	sub.Super = "Named"
	if err := en.Sch.DefineType(sub); err != nil {
		t.Fatal(err)
	}
	if _, err := en.Sch.DefineOpSrc("Scored", `define describe: string is
		return self.Tag
	end`, true); err != nil {
		t.Fatalf("inherited attribute not resolved: %v", err)
	}
	oid, err := en.Create("Scored", []object.Value{object.String_("hello"), object.Float(1)})
	if err != nil {
		t.Fatal(err)
	}
	v, err := en.Invoke("Scored.describe", object.Ref(oid))
	if err != nil || v.S != "hello" {
		t.Fatalf("describe = %v, %v", v, err)
	}
}

func TestQualifiedDefineForm(t *testing.T) {
	en := newBoundEngine(t)
	defineTextualGeometry(t, en)
	if _, err := en.Sch.DefineFuncSrc(`define Cuboid.halfvol: float is
		return self.volume / 2.0
	end`, true); err != nil {
		t.Fatal(err)
	}
	if _, ok := en.Sch.ResolveOp("Cuboid", "halfvol"); !ok {
		t.Fatal("qualified define did not attach the op")
	}
	// Mismatched type in DefineOpSrc.
	if _, err := en.Sch.DefineOpSrc("Vertex", `define Cuboid.wrong: float is return 0.0 end`, true); err == nil {
		t.Fatal("mismatched receiver accepted")
	}
}

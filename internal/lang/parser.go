package lang

// A parser for textual GOMpl, the concrete syntax the paper uses in its
// type definition frames:
//
//	define volume is
//	    return self.length * self.width * self.height
//	end
//
//	define translate(t: Vertex) is
//	    self.V1.translate(t);
//	    ...
//	end
//
//	define total_volume: float is
//	    s := 0.0
//	    foreach c in self do s := s + c.volume end
//	    return s
//	end
//
// Grammar (statements separated by ';' or newline):
//
//	function := 'define' name ['(' params ')'] [':' type] 'is' block 'end'
//	params   := name ':' type (',' name ':' type)*
//	block    := { stmt }
//	stmt     := 'return' [expr]
//	          | name ':=' expr
//	          | 'if' expr 'then' block ['else' block] 'end'
//	          | 'foreach' name 'in' expr 'do' block 'end'
//	          | expr                       (call / elementary update)
//	expr     := or; or := and ('or' and)*; and := cmp ('and' cmp)*
//	cmp      := ['not'] add [(= != < <= > >= in) add]
//	add      := mul (('+'|'-') mul)*; mul := unary (('*'|'/') unary)*
//	unary    := '-' unary | postfix
//	postfix  := primary { '.' name [ '(' args ')' ] }
//	primary  := number | string | true | false | name ['(' args ')']
//	          | '(' expr ')' | '{' [args] '}'
//
// Method calls (recv.op(args)), attribute reads (recv.attr), and the
// elementary updates recv.set_A(e) / recv.insert(e) / recv.remove(e) are
// distinguished by the binder (bind.go), which type-checks the body against
// a schema and qualifies operation names — the static knowledge the paper's
// schema compiler had.

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type srcTok struct {
	kind srcTokKind
	text string
	line int
}

type srcTokKind int

const (
	sEOF srcTokKind = iota
	sIdent
	sNumber
	sString
	sPunct // ( ) { } , . ; :=
	sOp    // + - * / = != < <= > >=
	sNewline
)

func lexSrc(src string) ([]srcTok, error) {
	var toks []srcTok
	line := 1
	i := 0
	emit := func(k srcTokKind, text string) { toks = append(toks, srcTok{k, text, line}) }
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			emit(sNewline, "\n")
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '!' && i+1 < len(src) && src[i+1] == '!':
			// "!!" comment to end of line (the paper's comment syntax).
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == ':' && i+1 < len(src) && src[i+1] == '=':
			emit(sPunct, ":=")
			i += 2
		case strings.IndexByte("(){},.;:", c) >= 0:
			emit(sPunct, string(c))
			i++
		case c == '!' && i+1 < len(src) && src[i+1] == '=':
			emit(sOp, "!=")
			i += 2
		case c == '<' || c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				emit(sOp, string(c)+"=")
				i += 2
			} else {
				emit(sOp, string(c))
				i++
			}
		case c == '=' || c == '+' || c == '-' || c == '*' || c == '/':
			emit(sOp, string(c))
			i++
		case c == '"' || c == '\'':
			quote := c
			i++
			var b strings.Builder
			for i < len(src) && src[i] != quote {
				if src[i] == '\n' {
					return nil, fmt.Errorf("line %d: unterminated string", line)
				}
				if src[i] == '\\' && i+1 < len(src) {
					i++
				}
				b.WriteByte(src[i])
				i++
			}
			if i >= len(src) {
				return nil, fmt.Errorf("line %d: unterminated string", line)
			}
			i++
			emit(sString, b.String())
		case unicode.IsDigit(rune(c)):
			start := i
			for i < len(src) && (unicode.IsDigit(rune(src[i])) || src[i] == '.') {
				// A '.' followed by a non-digit is a path separator, not a
				// decimal point.
				if src[i] == '.' && (i+1 >= len(src) || !unicode.IsDigit(rune(src[i+1]))) {
					break
				}
				i++
			}
			emit(sNumber, src[start:i])
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < len(src) && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				i++
			}
			emit(sIdent, src[start:i])
		default:
			return nil, fmt.Errorf("line %d: unexpected character %q", line, c)
		}
	}
	emit(sEOF, "")
	return toks, nil
}

type srcParser struct {
	toks []srcTok
	pos  int
}

func (p *srcParser) peek() srcTok { return p.toks[p.pos] }

func (p *srcParser) next() srcTok {
	t := p.toks[p.pos]
	if t.kind != sEOF {
		p.pos++
	}
	return t
}

func (p *srcParser) skipNewlines() {
	for p.peek().kind == sNewline {
		p.pos++
	}
}

func (p *srcParser) errf(t srcTok, format string, args ...any) error {
	return fmt.Errorf("line %d: %s", t.line, fmt.Sprintf(format, args...))
}

func (p *srcParser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == sIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *srcParser) expectPunct(s string) error {
	t := p.next()
	if t.kind != sPunct || t.text != s {
		return p.errf(t, "expected %q, got %q", s, t.text)
	}
	return nil
}

// ParsedFunction is the unbound result of parsing a define block: the
// receiver parameter is added by the binder (for type-associated
// operations) or declared explicitly (for free functions).
type ParsedFunction struct {
	Name string
	// RecvType is set when the define used the qualified form
	// "define Type.op ...".
	RecvType   string
	Params     []Param
	ResultType string
	Body       []Stmt
}

// ParseDefine parses one "define ... end" block.
func ParseDefine(src string) (*ParsedFunction, error) {
	toks, err := lexSrc(src)
	if err != nil {
		return nil, fmt.Errorf("gompl: %w", err)
	}
	p := &srcParser{toks: toks}
	p.skipNewlines()
	if !p.keyword("define") {
		return nil, p.errf(p.peek(), "expected 'define', got %q", p.peek().text)
	}
	nameTok := p.next()
	if nameTok.kind != sIdent {
		return nil, p.errf(nameTok, "expected function name")
	}
	fn := &ParsedFunction{Name: nameTok.text}
	if p.peek().kind == sPunct && p.peek().text == "." {
		p.next()
		opTok := p.next()
		if opTok.kind != sIdent {
			return nil, p.errf(opTok, "expected operation name after %q.", nameTok.text)
		}
		fn.RecvType = nameTok.text
		fn.Name = opTok.text
	}
	if p.peek().kind == sPunct && p.peek().text == "(" {
		p.next()
		for {
			if p.peek().kind == sPunct && p.peek().text == ")" {
				p.next()
				break
			}
			pn := p.next()
			if pn.kind != sIdent {
				return nil, p.errf(pn, "expected parameter name")
			}
			if err := p.expectPunct(":"); err != nil {
				return nil, err
			}
			pt := p.next()
			if pt.kind != sIdent {
				return nil, p.errf(pt, "expected parameter type")
			}
			fn.Params = append(fn.Params, Param{Name: pn.text, Type: pt.text})
			if p.peek().kind == sPunct && p.peek().text == "," {
				p.next()
			}
		}
	}
	if p.peek().kind == sPunct && p.peek().text == ":" {
		p.next()
		rt := p.next()
		if rt.kind != sIdent {
			return nil, p.errf(rt, "expected result type")
		}
		fn.ResultType = rt.text
	}
	if !p.keyword("is") {
		return nil, p.errf(p.peek(), "expected 'is', got %q", p.peek().text)
	}
	body, err := p.parseBlock("end")
	if err != nil {
		return nil, fmt.Errorf("gompl: %w", err)
	}
	fn.Body = body
	if !p.keyword("end") {
		return nil, p.errf(p.peek(), "expected 'end', got %q", p.peek().text)
	}
	p.skipNewlines()
	if p.peek().kind != sEOF {
		return nil, p.errf(p.peek(), "trailing input after 'end'")
	}
	return fn, nil
}

// parseBlock parses statements until one of the terminator keywords.
func (p *srcParser) parseBlock(terminators ...string) ([]Stmt, error) {
	var stmts []Stmt
	for {
		p.skipNewlines()
		t := p.peek()
		if t.kind == sEOF {
			return nil, p.errf(t, "unexpected end of input (missing 'end'?)")
		}
		if t.kind == sIdent {
			for _, term := range terminators {
				if strings.EqualFold(t.text, term) {
					return stmts, nil
				}
			}
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		// Optional ';' between statements.
		if p.peek().kind == sPunct && p.peek().text == ";" {
			p.next()
		}
	}
}

func (p *srcParser) parseStmt() (Stmt, error) {
	switch {
	case p.keyword("return"):
		p.skipInlineSpace()
		t := p.peek()
		if t.kind == sNewline || t.kind == sEOF ||
			(t.kind == sPunct && t.text == ";") ||
			(t.kind == sIdent && strings.EqualFold(t.text, "end")) {
			return Return{}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return Return{E: e}, nil
	case p.keyword("if"):
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.keyword("then") {
			return nil, p.errf(p.peek(), "expected 'then'")
		}
		thenB, err := p.parseBlock("else", "end")
		if err != nil {
			return nil, err
		}
		var elseB []Stmt
		if p.keyword("else") {
			elseB, err = p.parseBlock("end")
			if err != nil {
				return nil, err
			}
		}
		if !p.keyword("end") {
			return nil, p.errf(p.peek(), "expected 'end' after if")
		}
		return If{Cond: cond, Then: thenB, Else: elseB}, nil
	case p.keyword("foreach"):
		v := p.next()
		if v.kind != sIdent {
			return nil, p.errf(v, "expected loop variable")
		}
		if !p.keyword("in") {
			return nil, p.errf(p.peek(), "expected 'in'")
		}
		coll, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.keyword("do") {
			return nil, p.errf(p.peek(), "expected 'do'")
		}
		body, err := p.parseBlock("end")
		if err != nil {
			return nil, err
		}
		if !p.keyword("end") {
			return nil, p.errf(p.peek(), "expected 'end' after foreach")
		}
		return ForEach{Var: v.text, Coll: coll, Body: body}, nil
	}
	// Assignment or expression statement.
	if p.peek().kind == sIdent && p.toks[p.pos+1].kind == sPunct && p.toks[p.pos+1].text == ":=" {
		v := p.next()
		p.next() // :=
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return Assign{Var: v.text, E: e}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return ExprStmt{E: e}, nil
}

func (p *srcParser) skipInlineSpace() {} // newlines are significant; nothing to do

// Expression precedence climbing.

func (p *srcParser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *srcParser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Bin{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *srcParser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.keyword("and") {
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = Bin{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

var cmpOps = map[string]BinOp{
	"=": OpEq, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *srcParser) parseCmp() (Expr, error) {
	if p.keyword("not") {
		e, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		return Un{Op: "not", E: e}, nil
	}
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == sOp {
		if op, ok := cmpOps[t.text]; ok {
			p.next()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return Bin{Op: op, L: l, R: r}, nil
		}
	}
	if p.keyword("in") {
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return Bin{Op: OpIn, L: l, R: r}, nil
	}
	return l, nil
}

func (p *srcParser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != sOp || (t.text != "+" && t.text != "-") {
			return l, nil
		}
		p.next()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		if t.text == "+" {
			l = Bin{Op: OpAdd, L: l, R: r}
		} else {
			l = Bin{Op: OpSub, L: l, R: r}
		}
	}
}

func (p *srcParser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != sOp || (t.text != "*" && t.text != "/") {
			return l, nil
		}
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if t.text == "*" {
			l = Bin{Op: OpMul, L: l, R: r}
		} else {
			l = Bin{Op: OpDiv, L: l, R: r}
		}
	}
}

func (p *srcParser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.kind == sOp && t.text == "-" {
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Un{Op: "-", E: e}, nil
	}
	return p.parsePostfix()
}

// rawCall is an unresolved method application recv.name(args); the binder
// rewrites it into Call/SetAttr/Insert/Remove based on static types.
type rawCall struct {
	Recv Expr
	Name string
	Args []Expr
}

func (rawCall) exprNode() {}
func (r rawCall) String() string {
	return r.Recv.String() + "." + r.Name + "(" + joinExprs(r.Args) + ")"
}

func (p *srcParser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == sPunct && p.peek().text == "." {
		p.next()
		seg := p.next()
		if seg.kind != sIdent {
			return nil, p.errf(seg, "expected attribute or operation name after '.'")
		}
		if p.peek().kind == sPunct && p.peek().text == "(" {
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			e = rawCall{Recv: e, Name: seg.text, Args: args}
			continue
		}
		e = Attr{Recv: e, Name: seg.text}
	}
	return e, nil
}

func (p *srcParser) parseArgs() ([]Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []Expr
	p.skipNewlines()
	if p.peek().kind == sPunct && p.peek().text == ")" {
		p.next()
		return args, nil
	}
	for {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		p.skipNewlines()
		t := p.next()
		if t.kind == sPunct && t.text == ")" {
			return args, nil
		}
		if t.kind != sPunct || t.text != "," {
			return nil, p.errf(t, "expected ',' or ')', got %q", t.text)
		}
	}
}

func (p *srcParser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.kind {
	case sNumber:
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf(t, "bad number %q", t.text)
			}
			return F(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf(t, "bad number %q", t.text)
		}
		return I(n), nil
	case sString:
		return S(t.text), nil
	case sIdent:
		switch strings.ToLower(t.text) {
		case "true":
			return B(true), nil
		case "false":
			return B(false), nil
		}
		if p.peek().kind == sPunct && p.peek().text == "(" {
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			// Free function or builtin; the binder decides.
			return Call{Fn: t.text, Args: args}, nil
		}
		return V(t.text), nil
	case sPunct:
		switch t.text {
		case "(":
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		case "{":
			var elems []Expr
			p.skipNewlines()
			if p.peek().kind == sPunct && p.peek().text == "}" {
				p.next()
				return MkSet{}, nil
			}
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
				nt := p.next()
				if nt.kind == sPunct && nt.text == "}" {
					return MkSet{Elems: elems}, nil
				}
				if nt.kind != sPunct || nt.text != "," {
					return nil, p.errf(nt, "expected ',' or '}'")
				}
			}
		}
	}
	return nil, p.errf(t, "unexpected token %q", t.text)
}

package lang

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// This file implements the paper's Appendix: "Extracting the Relevant Path
// Expressions". A path expression t.A1.....Ak is relevant to a function f if
// f uses the value of v.A1.....Ak for some variable v of type t. The
// extraction assigns to every syntactic structure S a path extraction
// structure E(S) = (P, R) where P is a set of path expressions and R a term
// rewriting system of rules v -> p; sequences combine with the operator ⊗ of
// Definition 8.1.
//
// Operationally we thread the rewriting system through the statement list as
// an environment mapping each variable to the set of paths it may denote —
// exactly the fixpoint the repeated ⊗ application computes — and collect the
// accessed paths P on the side. Conditionals merge branch environments by
// union (a sound over-approximation of ⊗, which models straight-line code);
// loops iterate the body analysis to a bounded fixpoint.
//
// The resulting relevant paths are finally cut into length-two segments and
// typed against the schema, yielding RelAttr(f) of Definition 5.1.

// ElemSeg is the pseudo-attribute denoting element access on a set- or
// list-structured type; a relevant pair (t, ElemSeg) means the function
// depends on the membership of t instances, so t.insert and t.remove
// invalidate it.
const ElemSeg = "∈"

// Path is a path expression: a root variable (or, after typing, a type name)
// followed by attribute segments.
type Path struct {
	Root string
	Segs []string
}

func (p Path) String() string {
	if len(p.Segs) == 0 {
		return p.Root
	}
	return p.Root + "." + strings.Join(p.Segs, ".")
}

func (p Path) extend(seg string) Path {
	segs := make([]string, len(p.Segs)+1)
	copy(segs, p.Segs)
	segs[len(p.Segs)] = seg
	return Path{Root: p.Root, Segs: segs}
}

func (p Path) key() string { return p.String() }

// maxPathLen bounds extracted path lengths; exceeding it (e.g. a recursive
// structure walked in a loop) makes the function unanalyzable and the caller
// must fall back to conservative invalidation.
const maxPathLen = 12

// ErrUnanalyzable is returned when the static analysis cannot bound the set
// of relevant paths (recursion, dynamic dispatch it cannot resolve, or
// unbounded path growth). The GMR manager then treats every update operation
// as potentially invalidating (the Section 4 baseline behaviour).
var ErrUnanalyzable = errors.New("lang: function is not statically analyzable")

// TypeAttr is one element of RelAttr(f): attribute Attr of type Type
// (Definition 5.1), or element membership when Attr == ElemSeg.
type TypeAttr struct {
	Type string
	Attr string
}

func (ta TypeAttr) String() string { return ta.Type + "." + ta.Attr }

// TypeInfo resolves attribute and element types; the schema implements it.
type TypeInfo interface {
	// AttrType returns the declared type of attr on (tuple) type name.
	AttrType(typeName, attr string) (string, bool)
	// ElemType returns the element type of a set/list type name.
	ElemType(typeName string) (string, bool)
}

// FuncResolver resolves statically known callees; the schema implements it.
type FuncResolver interface {
	// ResolveStatic returns the declared function for a (qualified or free)
	// name as written in a Call node.
	ResolveStatic(fn string) (*Function, bool)
}

// pathSet is a deduplicated set of paths.
type pathSet struct {
	m    map[string]Path
	keys []string // insertion order for determinism
}

func newPathSet() *pathSet { return &pathSet{m: make(map[string]Path)} }

func (s *pathSet) add(p Path) {
	k := p.key()
	if _, ok := s.m[k]; ok {
		return
	}
	s.m[k] = p
	s.keys = append(s.keys, k)
}

func (s *pathSet) addAll(ps []Path) {
	for _, p := range ps {
		s.add(p)
	}
}

func (s *pathSet) list() []Path {
	out := make([]Path, 0, len(s.keys))
	for _, k := range s.keys {
		out = append(out, s.m[k])
	}
	return out
}

// env is the rewriting state at a program point: variable -> value paths.
type env map[string][]Path

func (e env) clone() env {
	out := make(env, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// equalPathSlices compares two rule sets for the loop fixpoint test.
func equalEnv(a, b env) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || len(av) != len(bv) {
			return false
		}
		am := make(map[string]bool, len(av))
		for _, p := range av {
			am[p.key()] = true
		}
		for _, p := range bv {
			if !am[p.key()] {
				return false
			}
		}
	}
	return true
}

// funcSummary is the memoized analysis of one function: accessed and value
// paths expressed over the function's own parameter names.
type funcSummary struct {
	accessed []Path
	value    []Path
}

// Extractor runs the Appendix analysis. It memoizes per-function summaries.
type Extractor struct {
	Types TypeInfo
	Funcs FuncResolver

	summaries  map[string]*funcSummary
	inProgress map[string]bool
}

// NewExtractor returns an extractor over the given schema views.
func NewExtractor(types TypeInfo, funcs FuncResolver) *Extractor {
	return &Extractor{
		Types:      types,
		Funcs:      funcs,
		summaries:  make(map[string]*funcSummary),
		inProgress: make(map[string]bool),
	}
}

// RelevantPaths returns P(f): the relevant path expressions of fn, rooted at
// its parameter names.
func (x *Extractor) RelevantPaths(fn *Function) ([]Path, error) {
	sum, err := x.analyze(fn)
	if err != nil {
		return nil, err
	}
	return sum.accessed, nil
}

// TypedPath is a relevant path expression typed against the schema: the
// static type of its root parameter and the (type, attribute) pair of every
// step along the path.
type TypedPath struct {
	RootType string
	Pairs    []TypeAttr
}

func (tp TypedPath) String() string {
	parts := make([]string, 0, len(tp.Pairs)+1)
	parts = append(parts, tp.RootType)
	for _, p := range tp.Pairs {
		parts = append(parts, p.Attr)
	}
	return strings.Join(parts, ".")
}

// TypedPaths types every relevant path of fn against the schema. The GMR
// manager uses the per-path grouping to decide where invalidation hooks go:
// a path whose root type is strictly encapsulated is covered by that type's
// public operations, any other path needs hooks on each of its steps.
func (x *Extractor) TypedPaths(fn *Function) ([]TypedPath, error) {
	paths, err := x.RelevantPaths(fn)
	if err != nil {
		return nil, err
	}
	paramType := make(map[string]string, len(fn.Params))
	for _, p := range fn.Params {
		paramType[p.Name] = p.Type
	}
	var out []TypedPath
	for _, p := range paths {
		cur, ok := paramType[p.Root]
		if !ok {
			return nil, fmt.Errorf("%w: path %v rooted at unknown parameter", ErrUnanalyzable, p)
		}
		tp := TypedPath{RootType: cur}
		for _, seg := range p.Segs {
			if seg == ElemSeg {
				next, ok := x.Types.ElemType(cur)
				if !ok {
					// An element step on a non-collection type arises from
					// the union-accumulator idiom, where a variable's value
					// paths already denote elements; element-of-element is
					// the identity, and the underlying collection
					// memberships were recorded when the elements were
					// drawn. Skip the step.
					continue
				}
				tp.Pairs = append(tp.Pairs, TypeAttr{Type: cur, Attr: ElemSeg})
				cur = next
				continue
			}
			tp.Pairs = append(tp.Pairs, TypeAttr{Type: cur, Attr: seg})
			next, ok := x.Types.AttrType(cur, seg)
			if !ok {
				return nil, fmt.Errorf("%w: no attribute %q on %q in path %v", ErrUnanalyzable, seg, cur, p)
			}
			cur = next
		}
		out = append(out, tp)
	}
	return out, nil
}

// RelAttrs computes RelAttr(fn) (Definition 5.1): the typed (type, attribute)
// pairs whose modification may invalidate a materialized result of fn. Paths
// are typed against the schema and cut into length-two pieces as the
// Appendix prescribes.
func (x *Extractor) RelAttrs(fn *Function) ([]TypeAttr, error) {
	typed, err := x.TypedPaths(fn)
	if err != nil {
		return nil, err
	}
	seen := make(map[TypeAttr]bool)
	var out []TypeAttr
	for _, tp := range typed {
		for _, pair := range tp.Pairs {
			if !seen[pair] {
				seen[pair] = true
				out = append(out, pair)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Type != out[j].Type {
			return out[i].Type < out[j].Type
		}
		return out[i].Attr < out[j].Attr
	})
	return out, nil
}

func (x *Extractor) analyze(fn *Function) (*funcSummary, error) {
	if sum, ok := x.summaries[fn.Name]; ok {
		return sum, nil
	}
	if x.inProgress[fn.Name] {
		return nil, fmt.Errorf("%w: recursive function %s", ErrUnanalyzable, fn.Name)
	}
	x.inProgress[fn.Name] = true
	defer delete(x.inProgress, fn.Name)

	e := make(env, len(fn.Params))
	for _, p := range fn.Params {
		e[p.Name] = []Path{{Root: p.Name}}
	}
	acc := newPathSet()
	val := newPathSet()
	if err := x.stmts(fn.Body, e, acc, val); err != nil {
		return nil, err
	}
	sum := &funcSummary{accessed: acc.list(), value: val.list()}
	x.summaries[fn.Name] = sum
	return sum, nil
}

// stmts analyzes a statement list, mutating e and accumulating accessed
// paths in acc and returned value paths in val.
func (x *Extractor) stmts(body []Stmt, e env, acc, val *pathSet) error {
	for _, s := range body {
		switch st := s.(type) {
		case Assign:
			v, err := x.expr(st.E, e, acc)
			if err != nil {
				return err
			}
			// Definition 8.1: re-assignment replaces the rules for the
			// variable; previous rules with this left-hand side are dropped.
			e[st.Var] = v
		case SetAttr:
			if _, err := x.expr(st.Recv, e, acc); err != nil {
				return err
			}
			if _, err := x.expr(st.E, e, acc); err != nil {
				return err
			}
		case Insert:
			if _, err := x.expr(st.Recv, e, acc); err != nil {
				return err
			}
			if _, err := x.expr(st.E, e, acc); err != nil {
				return err
			}
		case Remove:
			if _, err := x.expr(st.Recv, e, acc); err != nil {
				return err
			}
			if _, err := x.expr(st.E, e, acc); err != nil {
				return err
			}
		case If:
			if _, err := x.expr(st.Cond, e, acc); err != nil {
				return err
			}
			thenEnv := e.clone()
			elseEnv := e.clone()
			if err := x.stmts(st.Then, thenEnv, acc, val); err != nil {
				return err
			}
			if err := x.stmts(st.Else, elseEnv, acc, val); err != nil {
				return err
			}
			mergeEnv(e, thenEnv)
			mergeEnv(e, elseEnv)
		case ForEach:
			collVal, err := x.expr(st.Coll, e, acc)
			if err != nil {
				return err
			}
			var elemPaths []Path
			for _, p := range collVal {
				if len(p.Segs)+1 > maxPathLen {
					return fmt.Errorf("%w: path %v too long", ErrUnanalyzable, p)
				}
				ep := p.extend(ElemSeg)
				elemPaths = append(elemPaths, ep)
				acc.add(ep)
			}
			// Iterate the body to a fixpoint: rules established in one
			// iteration flow into the next.
			saved, had := e[st.Var]
			e[st.Var] = elemPaths
			for iter := 0; iter < 6; iter++ {
				before := e.clone()
				loopEnv := e.clone()
				if err := x.stmts(st.Body, loopEnv, acc, val); err != nil {
					return err
				}
				mergeEnv(e, loopEnv)
				mergePaths(e, st.Var, elemPaths)
				if equalEnv(before, e) {
					break
				}
				if iter == 5 {
					return fmt.Errorf("%w: loop analysis did not converge", ErrUnanalyzable)
				}
			}
			if had {
				e[st.Var] = saved
			} else {
				delete(e, st.Var)
			}
		case Return:
			if st.E != nil {
				v, err := x.expr(st.E, e, acc)
				if err != nil {
					return err
				}
				val.addAll(v)
			}
		case ExprStmt:
			if _, err := x.expr(st.E, e, acc); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: unknown statement %T", ErrUnanalyzable, s)
		}
	}
	return nil
}

func mergeEnv(dst, src env) {
	for k, v := range src {
		mergePaths(dst, k, v)
	}
}

func mergePaths(e env, key string, paths []Path) {
	have := make(map[string]bool, len(e[key]))
	for _, p := range e[key] {
		have[p.key()] = true
	}
	for _, p := range paths {
		if !have[p.key()] {
			e[key] = append(e[key], p)
			have[p.key()] = true
		}
	}
}

// expr analyzes an expression, returning its value paths (the paths the
// expression's result may denote) and accumulating every accessed path.
func (x *Extractor) expr(ex Expr, e env, acc *pathSet) ([]Path, error) {
	switch n := ex.(type) {
	case Lit:
		return nil, nil
	case Var:
		paths, ok := e[n.Name]
		if !ok {
			return nil, fmt.Errorf("%w: unbound variable %q", ErrUnanalyzable, n.Name)
		}
		return paths, nil
	case Attr:
		recvPaths, err := x.expr(n.Recv, e, acc)
		if err != nil {
			return nil, err
		}
		if len(recvPaths) == 0 {
			return nil, fmt.Errorf("%w: attribute %q read on untracked value %v", ErrUnanalyzable, n.Name, n.Recv)
		}
		var out []Path
		for _, p := range recvPaths {
			if len(p.Segs)+1 > maxPathLen {
				return nil, fmt.Errorf("%w: path %v too long", ErrUnanalyzable, p)
			}
			np := p.extend(n.Name)
			acc.add(np)
			out = append(out, np)
		}
		return out, nil
	case Call:
		return x.call(n, e, acc)
	case Builtin:
		var argPaths [][]Path
		for _, a := range n.Args {
			v, err := x.expr(a, e, acc)
			if err != nil {
				return nil, err
			}
			argPaths = append(argPaths, v)
		}
		switch n.Name {
		case "count", "len":
			// The cardinality depends on the collection's membership.
			for _, v := range argPaths {
				for _, p := range v {
					if len(p.Segs)+1 <= maxPathLen {
						acc.add(p.extend(ElemSeg))
					}
				}
			}
		case "union":
			// The result may denote the set's elements or the new element:
			// element provenance flows through the accumulator idiom.
			var out []Path
			for _, v := range argPaths {
				out = append(out, v...)
			}
			return out, nil
		}
		return nil, nil
	case Bin:
		lv, err := x.expr(n.L, e, acc)
		if err != nil {
			return nil, err
		}
		rv, err := x.expr(n.R, e, acc)
		if err != nil {
			return nil, err
		}
		if n.Op == OpIn {
			// Membership reads the collection's element set.
			for _, p := range rv {
				if len(p.Segs)+1 <= maxPathLen {
					acc.add(p.extend(ElemSeg))
				}
			}
		}
		_ = lv
		return nil, nil
	case Un:
		if _, err := x.expr(n.E, e, acc); err != nil {
			return nil, err
		}
		return nil, nil
	case MkTuple:
		for _, f := range n.Fields {
			if _, err := x.expr(f, e, acc); err != nil {
				return nil, err
			}
		}
		// A freshly built tuple carries no further object state of its own;
		// its field sources are already in acc.
		return nil, nil
	case MkSet:
		for _, el := range n.Elems {
			if _, err := x.expr(el, e, acc); err != nil {
				return nil, err
			}
		}
		return nil, nil
	case Elems:
		collPaths, err := x.expr(n.Coll, e, acc)
		if err != nil {
			return nil, err
		}
		var out []Path
		for _, p := range collPaths {
			if len(p.Segs)+1 > maxPathLen {
				return nil, fmt.Errorf("%w: path %v too long", ErrUnanalyzable, p)
			}
			np := p.extend(ElemSeg)
			acc.add(np)
			out = append(out, np)
		}
		return out, nil
	}
	return nil, fmt.Errorf("%w: unknown expression %T", ErrUnanalyzable, ex)
}

// call inlines the summary of a statically resolved callee, substituting the
// callee's parameter roots with the argument value paths.
func (x *Extractor) call(n Call, e env, acc *pathSet) ([]Path, error) {
	callee, ok := x.Funcs.ResolveStatic(n.Fn)
	if !ok {
		return nil, fmt.Errorf("%w: cannot statically resolve call %q", ErrUnanalyzable, n.Fn)
	}
	if len(n.Args) != len(callee.Params) {
		return nil, fmt.Errorf("%w: call %q with %d args, %d declared", ErrUnanalyzable, n.Fn, len(n.Args), len(callee.Params))
	}
	argPaths := make([][]Path, len(n.Args))
	for i, a := range n.Args {
		v, err := x.expr(a, e, acc)
		if err != nil {
			return nil, err
		}
		argPaths[i] = v
	}
	sum, err := x.analyze(callee)
	if err != nil {
		return nil, err
	}
	subst := func(paths []Path, requireRoot bool) ([]Path, error) {
		var out []Path
		for _, p := range paths {
			idx := -1
			for i, param := range callee.Params {
				if param.Name == p.Root {
					idx = i
					break
				}
			}
			if idx < 0 {
				return nil, fmt.Errorf("%w: summary path %v of %s has non-parameter root", ErrUnanalyzable, p, callee.Name)
			}
			roots := argPaths[idx]
			if len(roots) == 0 {
				// The argument is a computed atomic value: it carries no
				// object state, so paths through it vanish — unless the
				// callee dereferences it, which cannot happen for atomics.
				if len(p.Segs) > 0 && requireRoot {
					return nil, fmt.Errorf("%w: call %q dereferences untracked argument %d", ErrUnanalyzable, n.Fn, idx)
				}
				continue
			}
			for _, r := range roots {
				if len(r.Segs)+len(p.Segs) > maxPathLen {
					return nil, fmt.Errorf("%w: path %v.%v too long", ErrUnanalyzable, r, p)
				}
				np := Path{Root: r.Root, Segs: append(append([]string{}, r.Segs...), p.Segs...)}
				out = append(out, np)
			}
		}
		return out, nil
	}
	accessed, err := subst(sum.accessed, true)
	if err != nil {
		return nil, err
	}
	acc.addAll(accessed)
	value, err := subst(sum.value, false)
	if err != nil {
		return nil, err
	}
	return value, nil
}

package lang

// The binder turns a parsed GOMpl function into an executable, analyzable
// one: it type-checks the body against the schema, qualifies method calls
// with the receiver's static type (so the extractor can resolve them), and
// rewrites the elementary-update call syntax (recv.set_A(e), recv.insert(e),
// recv.remove(e)) into the corresponding update statements. This is the
// static knowledge GOM's schema compiler applied when a type was compiled.

import (
	"fmt"
	"strings"

	"gomdb/internal/object"
)

// Binder resolves parsed functions against a schema.
type Binder struct {
	Types TypeInfo
	Funcs FuncResolver
	// Kinds reports the structural kind of a named type; the schema
	// implements it via its registry.
	Kinds TypeKinder
}

// TypeKinder answers structural questions about named types.
type TypeKinder interface {
	// IsCollection reports whether the named type is set- or
	// list-structured.
	IsCollection(typeName string) bool
	// IsKnownType reports whether the name denotes a registered type or a
	// built-in atomic type.
	IsKnownType(typeName string) bool
}

// builtinResult gives the result type of each pure builtin ("" = depends on
// arguments or unknown).
var builtinResult = map[string]string{
	"sqrt": "float", "abs": "", "min": "", "max": "",
	"sin": "float", "cos": "float",
	"count": "int", "len": "int",
	"union": "",
}

// Bind type-checks and resolves pf. If recvType is non-empty the function
// becomes a type-associated operation with the implicit receiver parameter
// self: recvType prepended (unless a self parameter was declared
// explicitly).
func (b *Binder) Bind(pf *ParsedFunction, recvType string, sideEffectFree bool) (*Function, error) {
	fn := &Function{
		Name:           pf.Name,
		ResultType:     pf.ResultType,
		SideEffectFree: sideEffectFree,
	}
	if recvType != "" {
		fn.Name = recvType + "." + pf.Name
		if len(pf.Params) == 0 || pf.Params[0].Name != "self" {
			fn.Params = append(fn.Params, Param{Name: "self", Type: recvType})
		}
	}
	fn.Params = append(fn.Params, pf.Params...)
	env := map[string]string{}
	for _, p := range fn.Params {
		if !b.Kinds.IsKnownType(p.Type) {
			return nil, fmt.Errorf("gompl: %s: unknown parameter type %q", fn.Name, p.Type)
		}
		env[p.Name] = p.Type
	}
	body, err := b.bindStmts(fn, pf.Body, env)
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (b *Binder) bindStmts(fn *Function, stmts []Stmt, env map[string]string) ([]Stmt, error) {
	out := make([]Stmt, 0, len(stmts))
	for _, s := range stmts {
		bs, err := b.bindStmt(fn, s, env)
		if err != nil {
			return nil, err
		}
		out = append(out, bs)
	}
	return out, nil
}

func (b *Binder) bindStmt(fn *Function, s Stmt, env map[string]string) (Stmt, error) {
	switch st := s.(type) {
	case Assign:
		e, t, err := b.bindExpr(fn, st.E, env)
		if err != nil {
			return nil, err
		}
		env[st.Var] = t
		return Assign{Var: st.Var, E: e}, nil
	case Return:
		if st.E == nil {
			return st, nil
		}
		e, t, err := b.bindExpr(fn, st.E, env)
		if err != nil {
			return nil, err
		}
		if err := b.checkAssignable(fn.ResultType, t); err != nil {
			return nil, fmt.Errorf("gompl: %s: return %w", fn.Name, err)
		}
		return Return{E: e}, nil
	case If:
		cond, _, err := b.bindExpr(fn, st.Cond, env)
		if err != nil {
			return nil, err
		}
		thenEnv := copyEnv(env)
		thenB, err := b.bindStmts(fn, st.Then, thenEnv)
		if err != nil {
			return nil, err
		}
		elseEnv := copyEnv(env)
		elseB, err := b.bindStmts(fn, st.Else, elseEnv)
		if err != nil {
			return nil, err
		}
		mergeTypeEnv(env, thenEnv)
		mergeTypeEnv(env, elseEnv)
		return If{Cond: cond, Then: thenB, Else: elseB}, nil
	case ForEach:
		coll, ct, err := b.bindExpr(fn, st.Coll, env)
		if err != nil {
			return nil, err
		}
		elemType := ""
		if ct != "" {
			et, ok := b.Types.ElemType(ct)
			if !ok {
				return nil, fmt.Errorf("gompl: %s: foreach over non-collection type %q", fn.Name, ct)
			}
			elemType = et
		}
		saved, had := env[st.Var]
		env[st.Var] = elemType
		body, err := b.bindStmts(fn, st.Body, env)
		if err != nil {
			return nil, err
		}
		if had {
			env[st.Var] = saved
		} else {
			delete(env, st.Var)
		}
		return ForEach{Var: st.Var, Coll: coll, Body: body}, nil
	case ExprStmt:
		// Elementary updates appear as call syntax at statement level.
		if rc, ok := st.E.(rawCall); ok {
			if upd, handled, err := b.bindUpdate(fn, rc, env); handled || err != nil {
				return upd, err
			}
		}
		e, _, err := b.bindExpr(fn, st.E, env)
		if err != nil {
			return nil, err
		}
		return ExprStmt{E: e}, nil
	default:
		return nil, fmt.Errorf("gompl: %s: unexpected statement %T from parser", fn.Name, s)
	}
}

// bindUpdate recognizes recv.set_A(e), recv.insert(e), recv.remove(e).
func (b *Binder) bindUpdate(fn *Function, rc rawCall, env map[string]string) (Stmt, bool, error) {
	recv, rt, err := b.bindExpr(fn, rc.Recv, env)
	if err != nil {
		return nil, true, err
	}
	switch {
	case strings.HasPrefix(rc.Name, "set_"):
		attr := strings.TrimPrefix(rc.Name, "set_")
		if rt != "" {
			if _, ok := b.Types.AttrType(rt, attr); !ok {
				return nil, true, fmt.Errorf("gompl: %s: type %q has no attribute %q", fn.Name, rt, attr)
			}
		}
		if len(rc.Args) != 1 {
			return nil, true, fmt.Errorf("gompl: %s: set_%s takes one argument", fn.Name, attr)
		}
		v, vt, err := b.bindExpr(fn, rc.Args[0], env)
		if err != nil {
			return nil, true, err
		}
		if rt != "" {
			if at, _ := b.Types.AttrType(rt, attr); at != "" {
				if err := b.checkAssignable(at, vt); err != nil {
					return nil, true, fmt.Errorf("gompl: %s: set_%s %w", fn.Name, attr, err)
				}
			}
		}
		return SetAttr{Recv: recv, Name: attr, E: v}, true, nil
	case rc.Name == "insert" || rc.Name == "remove":
		if rt != "" && !b.Kinds.IsCollection(rt) {
			// A user-defined insert/remove operation may exist; fall back
			// to a method call.
			if _, ok := b.Funcs.ResolveStatic(rt + "." + rc.Name); ok {
				return nil, false, nil
			}
			return nil, true, fmt.Errorf("gompl: %s: %s on non-collection type %q", fn.Name, rc.Name, rt)
		}
		if len(rc.Args) != 1 {
			return nil, true, fmt.Errorf("gompl: %s: %s takes one argument", fn.Name, rc.Name)
		}
		v, _, err := b.bindExpr(fn, rc.Args[0], env)
		if err != nil {
			return nil, true, err
		}
		if rc.Name == "insert" {
			return Insert{Recv: recv, E: v}, true, nil
		}
		return Remove{Recv: recv, E: v}, true, nil
	}
	return nil, false, nil
}

// bindExpr resolves an expression and returns its static type ("" when
// unknown).
func (b *Binder) bindExpr(fn *Function, e Expr, env map[string]string) (Expr, string, error) {
	switch ex := e.(type) {
	case Lit:
		switch ex.Val.Kind {
		case object.KFloat:
			return ex, "float", nil
		case object.KInt:
			return ex, "int", nil
		case object.KString:
			return ex, "string", nil
		case object.KBool:
			return ex, "bool", nil
		}
		return ex, "", nil
	case Var:
		t, ok := env[ex.Name]
		if !ok {
			return nil, "", fmt.Errorf("gompl: %s: unbound variable %q", fn.Name, ex.Name)
		}
		return ex, t, nil
	case Attr:
		recv, rt, err := b.bindExpr(fn, ex.Recv, env)
		if err != nil {
			return nil, "", err
		}
		at := ""
		if rt != "" {
			var ok bool
			at, ok = b.Types.AttrType(rt, ex.Name)
			if !ok {
				// A nullary operation used in path notation: self.length.
				if opFn, okOp := b.Funcs.ResolveStatic(rt + "." + ex.Name); okOp && len(opFn.Params) == 1 {
					return Call{Fn: rt + "." + ex.Name, Args: []Expr{recv}}, opFn.ResultType, nil
				}
				return nil, "", fmt.Errorf("gompl: %s: type %q has no attribute or nullary operation %q", fn.Name, rt, ex.Name)
			}
		}
		return Attr{Recv: recv, Name: ex.Name}, at, nil
	case rawCall:
		recv, rt, err := b.bindExpr(fn, ex.Recv, env)
		if err != nil {
			return nil, "", err
		}
		if rt == "" {
			return nil, "", fmt.Errorf("gompl: %s: cannot resolve method %q on value of unknown type", fn.Name, ex.Name)
		}
		callee, ok := b.Funcs.ResolveStatic(rt + "." + ex.Name)
		if !ok {
			return nil, "", fmt.Errorf("gompl: %s: type %q has no operation %q", fn.Name, rt, ex.Name)
		}
		args := []Expr{recv}
		for _, a := range ex.Args {
			ba, _, err := b.bindExpr(fn, a, env)
			if err != nil {
				return nil, "", err
			}
			args = append(args, ba)
		}
		if len(args) != len(callee.Params) {
			return nil, "", fmt.Errorf("gompl: %s: %s.%s expects %d arguments, got %d",
				fn.Name, rt, ex.Name, len(callee.Params)-1, len(args)-1)
		}
		return Call{Fn: rt + "." + ex.Name, Args: args}, callee.ResultType, nil
	case Call: // free function or builtin, from primary parsing
		if res, isBuiltin := builtinResult[ex.Fn]; isBuiltin {
			args := make([]Expr, len(ex.Args))
			var argTypes []string
			for i, a := range ex.Args {
				ba, t, err := b.bindExpr(fn, a, env)
				if err != nil {
					return nil, "", err
				}
				args[i] = ba
				argTypes = append(argTypes, t)
			}
			if res == "" && len(argTypes) > 0 {
				res = argTypes[0]
			}
			return Builtin{Name: ex.Fn, Args: args}, res, nil
		}
		callee, ok := b.Funcs.ResolveStatic(ex.Fn)
		if !ok {
			return nil, "", fmt.Errorf("gompl: %s: unknown function %q", fn.Name, ex.Fn)
		}
		args := make([]Expr, len(ex.Args))
		for i, a := range ex.Args {
			ba, _, err := b.bindExpr(fn, a, env)
			if err != nil {
				return nil, "", err
			}
			args[i] = ba
		}
		if len(args) != len(callee.Params) {
			return nil, "", fmt.Errorf("gompl: %s: %s expects %d arguments, got %d",
				fn.Name, ex.Fn, len(callee.Params), len(args))
		}
		return Call{Fn: ex.Fn, Args: args}, callee.ResultType, nil
	case Bin:
		l, lt, err := b.bindExpr(fn, ex.L, env)
		if err != nil {
			return nil, "", err
		}
		r, rt, err := b.bindExpr(fn, ex.R, env)
		if err != nil {
			return nil, "", err
		}
		out := Bin{Op: ex.Op, L: l, R: r}
		switch ex.Op {
		case OpAdd, OpSub, OpMul, OpDiv:
			if !isNumericOrUnknown(lt) || !isNumericOrUnknown(rt) {
				return nil, "", fmt.Errorf("gompl: %s: arithmetic on %q and %q", fn.Name, lt, rt)
			}
			if lt == "float" || rt == "float" || lt == "decimal" || rt == "decimal" {
				return out, "float", nil
			}
			if lt == "int" && rt == "int" {
				return out, "int", nil
			}
			return out, "", nil
		default:
			return out, "bool", nil
		}
	case Un:
		inner, t, err := b.bindExpr(fn, ex.E, env)
		if err != nil {
			return nil, "", err
		}
		if ex.Op == "not" {
			t = "bool"
		}
		return Un{Op: ex.Op, E: inner}, t, nil
	case MkSet:
		elems := make([]Expr, len(ex.Elems))
		for i, el := range ex.Elems {
			be, _, err := b.bindExpr(fn, el, env)
			if err != nil {
				return nil, "", err
			}
			elems[i] = be
		}
		return MkSet{Elems: elems}, "", nil
	case MkTuple:
		fields := make([]Expr, len(ex.Fields))
		for i, f := range ex.Fields {
			bf, _, err := b.bindExpr(fn, f, env)
			if err != nil {
				return nil, "", err
			}
			fields[i] = bf
		}
		return MkTuple{TypeName: ex.TypeName, Fields: fields}, ex.TypeName, nil
	case Elems:
		coll, ct, err := b.bindExpr(fn, ex.Coll, env)
		if err != nil {
			return nil, "", err
		}
		_ = ct
		return Elems{Coll: coll}, "", nil
	}
	return nil, "", fmt.Errorf("gompl: %s: unexpected expression %T", fn.Name, e)
}

func isNumericOrUnknown(t string) bool {
	return t == "" || t == "int" || t == "float" || t == "decimal"
}

// checkAssignable verifies t is usable where want is declared; unknown
// types on either side pass (dynamic checking applies at evaluation).
func (b *Binder) checkAssignable(want, t string) error {
	if want == "" || t == "" || want == t {
		return nil
	}
	if isNumericOrUnknown(want) && isNumericOrUnknown(t) {
		return nil
	}
	if object.IsAtomicName(want) != object.IsAtomicName(t) {
		return fmt.Errorf("type %q is not assignable to %q", t, want)
	}
	if object.IsAtomicName(want) {
		return fmt.Errorf("type %q is not assignable to %q", t, want)
	}
	// Complex types: subtype substitutability is checked dynamically (the
	// binder has no registry view of the supertype chain).
	return nil
}

func copyEnv(env map[string]string) map[string]string {
	out := make(map[string]string, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

// mergeTypeEnv merges variable types from a branch env: conflicting types
// degrade to unknown.
func mergeTypeEnv(dst, src map[string]string) {
	for k, v := range src {
		if cur, ok := dst[k]; ok && cur != v {
			dst[k] = ""
			continue
		}
		dst[k] = v
	}
}

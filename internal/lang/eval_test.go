package lang_test

// Evaluator tests run GOMpl bodies through a real schema engine over an
// in-memory object base.

import (
	"strings"
	"testing"

	"gomdb/internal/lang"
	"gomdb/internal/object"
	"gomdb/internal/schema"
	"gomdb/internal/storage"
)

func newEngine(t *testing.T) *schema.Engine {
	t.Helper()
	clock := storage.NewClock()
	disk := storage.NewDisk(clock)
	pool := storage.NewPool(disk, 50)
	sch := schema.New()
	objs := object.NewManager(sch.Reg, pool, clock)
	return schema.NewEngine(sch, objs, clock)
}

// evalExpr evaluates a single expression as the body of a parameterless
// function.
func evalExpr(t *testing.T, en *schema.Engine, e lang.Expr) (object.Value, error) {
	t.Helper()
	fn := &lang.Function{Name: "test", Body: []lang.Stmt{lang.Ret(e)}}
	return lang.Eval(en, fn, nil)
}

func TestArithmeticAndComparison(t *testing.T) {
	en := newEngine(t)
	cases := []struct {
		e    lang.Expr
		want object.Value
	}{
		{lang.Add(lang.I(2), lang.I(3)), object.Int(5)},
		{lang.Sub(lang.I(2), lang.I(3)), object.Int(-1)},
		{lang.Mul(lang.I(4), lang.I(3)), object.Int(12)},
		{lang.Div(lang.I(7), lang.I(2)), object.Int(3)},
		{lang.Add(lang.F(2.5), lang.I(1)), object.Float(3.5)},
		{lang.Div(lang.F(7), lang.F(2)), object.Float(3.5)},
		{lang.Lt(lang.I(1), lang.F(1.5)), object.Bool(true)},
		{lang.Ge(lang.F(2), lang.F(2)), object.Bool(true)},
		{lang.Eq(lang.S("a"), lang.S("a")), object.Bool(true)},
		{lang.Ne(lang.S("a"), lang.S("b")), object.Bool(true)},
		{lang.Lt(lang.S("a"), lang.S("b")), object.Bool(true)},
		{lang.And(lang.B(true), lang.B(false)), object.Bool(false)},
		{lang.Or(lang.B(false), lang.B(true)), object.Bool(true)},
		{lang.Un{Op: "-", E: lang.F(3)}, object.Float(-3)},
		{lang.Un{Op: "not", E: lang.B(false)}, object.Bool(true)},
		{lang.Sqrt(lang.F(16)), object.Float(4)},
		{lang.Cos(lang.F(0)), object.Float(1)},
		{lang.Sin(lang.F(0)), object.Float(0)},
		{lang.Builtin{Name: "abs", Args: []lang.Expr{lang.F(-2)}}, object.Float(2)},
		{lang.Builtin{Name: "abs", Args: []lang.Expr{lang.I(-2)}}, object.Int(2)},
		{lang.Builtin{Name: "min", Args: []lang.Expr{lang.I(2), lang.I(5)}}, object.Int(2)},
		{lang.Builtin{Name: "max", Args: []lang.Expr{lang.I(2), lang.I(5)}}, object.Int(5)},
		{lang.Count(lang.MkSet{Elems: []lang.Expr{lang.I(1), lang.I(2)}}), object.Int(2)},
		{lang.In(lang.I(2), lang.MkSet{Elems: []lang.Expr{lang.I(1), lang.I(2)}}), object.Bool(true)},
		{lang.In(lang.I(9), lang.MkSet{Elems: []lang.Expr{lang.I(1)}}), object.Bool(false)},
	}
	for i, c := range cases {
		got, err := evalExpr(t, en, c.e)
		if err != nil {
			t.Errorf("case %d (%v): %v", i, c.e, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("case %d: %v = %v, want %v", i, c.e, got, c.want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	en := newEngine(t)
	// The right side would fail (unbound variable); short-circuit must skip it.
	if v, err := evalExpr(t, en, lang.And(lang.B(false), lang.V("boom"))); err != nil || v.Truth() {
		t.Fatalf("and: %v, %v", v, err)
	}
	if v, err := evalExpr(t, en, lang.Or(lang.B(true), lang.V("boom"))); err != nil || !v.Truth() {
		t.Fatalf("or: %v, %v", v, err)
	}
}

func TestEvalErrors(t *testing.T) {
	en := newEngine(t)
	bad := []lang.Expr{
		lang.Div(lang.I(1), lang.I(0)),
		lang.Div(lang.F(1), lang.F(0)),
		lang.V("nope"),
		lang.Sqrt(lang.F(-1)),
		lang.Sqrt(lang.S("x")),
		lang.Add(lang.S("a"), lang.I(1)),
		lang.Lt(lang.S("a"), lang.I(1)),
		lang.Builtin{Name: "wat", Args: nil},
		lang.In(lang.I(1), lang.I(2)),
		lang.A(lang.Lit{Val: object.Null()}, "X"),
	}
	for i, e := range bad {
		if _, err := evalExpr(t, en, e); err == nil {
			t.Errorf("case %d (%v): expected error", i, e)
		}
	}
}

func TestControlFlow(t *testing.T) {
	en := newEngine(t)
	// sum of 1..n via foreach over a literal set; early return inside if.
	fn := &lang.Function{
		Name:   "sum",
		Params: []lang.Param{lang.Prm("limit", "int")},
		Body: []lang.Stmt{
			lang.Let("s", lang.I(0)),
			lang.Each("x", lang.MkSet{Elems: []lang.Expr{lang.I(1), lang.I(2), lang.I(3), lang.I(4)}},
				lang.When(lang.Gt(lang.V("x"), lang.V("limit")),
					[]lang.Stmt{lang.Ret(lang.S("over"))}),
				lang.Let("s", lang.Add(lang.V("s"), lang.V("x")))),
			lang.Ret(lang.V("s")),
		},
	}
	v, err := lang.Eval(en, fn, []object.Value{object.Int(10)})
	if err != nil || !v.Equal(object.Int(10)) {
		t.Fatalf("sum(10) = %v, %v", v, err)
	}
	v, err = lang.Eval(en, fn, []object.Value{object.Int(2)})
	if err != nil || !v.Equal(object.String_("over")) {
		t.Fatalf("sum(2) = %v, %v", v, err)
	}
	// Missing return yields null; wrong arity errors.
	noRet := &lang.Function{Name: "n", Body: []lang.Stmt{lang.Let("x", lang.I(1))}}
	if v, err := lang.Eval(en, noRet, nil); err != nil || !v.IsNull() {
		t.Fatalf("no-return = %v, %v", v, err)
	}
	if _, err := lang.Eval(en, fn, nil); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestUnionAccumulator(t *testing.T) {
	en := newEngine(t)
	fn := &lang.Function{
		Name: "acc",
		Body: []lang.Stmt{
			lang.Let("s", lang.EmptySet()),
			lang.Each("x", lang.MkSet{Elems: []lang.Expr{lang.I(1), lang.I(2), lang.I(2), lang.I(3)}},
				lang.Let("s", lang.Union(lang.V("s"), lang.V("x")))),
			lang.Ret(lang.V("s")),
		},
	}
	v, err := lang.Eval(en, fn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != object.KSet || len(v.Elems) != 3 {
		t.Fatalf("union result = %v", v)
	}
}

func TestAttrAccessAndElementaryUpdates(t *testing.T) {
	en := newEngine(t)
	if err := en.Sch.DefineType(object.NewTupleType("P",
		object.AttrDef{Name: "X", Type: "float", Public: true})); err != nil {
		t.Fatal(err)
	}
	if err := en.Sch.DefineType(object.NewSetType("Ps", "P"), "insert", "remove"); err != nil {
		t.Fatal(err)
	}
	oid, err := en.Create("P", []object.Value{object.Float(1)})
	if err != nil {
		t.Fatal(err)
	}
	set, err := en.CreateCollection("Ps", nil)
	if err != nil {
		t.Fatal(err)
	}
	fn := &lang.Function{
		Name:   "bump",
		Params: []lang.Param{lang.Prm("p", "P"), lang.Prm("s", "Ps")},
		Body: []lang.Stmt{
			lang.SetA(lang.V("p"), "X", lang.Add(lang.A(lang.V("p"), "X"), lang.F(1))),
			lang.InsertInto(lang.V("s"), lang.V("p")),
			lang.InsertInto(lang.V("s"), lang.V("p")), // set semantics: no dup
			lang.Ret(lang.Count(lang.ElemsOf(lang.V("s")))),
		},
	}
	v, err := lang.Eval(en, fn, []object.Value{object.Ref(oid), object.Ref(set)})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(object.Int(1)) {
		t.Fatalf("set size = %v, want 1 (duplicate insert must be a no-op)", v)
	}
	x, err := en.ReadAttr(object.Ref(oid), "X")
	if err != nil || !x.Equal(object.Float(2)) {
		t.Fatalf("X = %v, %v", x, err)
	}
	// remove
	rm := &lang.Function{
		Name:   "rm",
		Params: []lang.Param{lang.Prm("p", "P"), lang.Prm("s", "Ps")},
		Body: []lang.Stmt{
			lang.RemoveFrom(lang.V("s"), lang.V("p")),
			lang.RemoveFrom(lang.V("s"), lang.V("p")), // absent: no-op
			lang.Ret(lang.Count(lang.ElemsOf(lang.V("s")))),
		},
	}
	v, err = lang.Eval(en, rm, []object.Value{object.Ref(oid), object.Ref(set)})
	if err != nil || !v.Equal(object.Int(0)) {
		t.Fatalf("after remove: %v, %v", v, err)
	}
}

func TestStringRendering(t *testing.T) {
	e := lang.Mul(lang.A(lang.Self(), "Width"), lang.A(lang.Self(), "Height"))
	if got := e.String(); got != "(self.Width * self.Height)" {
		t.Fatalf("String = %q", got)
	}
	s := lang.Each("c", lang.Self(), lang.Let("s", lang.Add(lang.V("s"), lang.V("c"))))
	if !strings.Contains(s.String(), "foreach c in self") {
		t.Fatalf("String = %q", s.String())
	}
}

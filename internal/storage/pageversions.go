package storage

import (
	"sort"
	"sync"

	"gomdb/internal/mvcc"
)

// pageVersions is the copy-on-write page overlay of the MVCC snapshot read
// path. Writers (which run one at a time, under the exclusive Database
// lock) capture a page's pre-image the first time they mutate it in the
// current epoch, tagged with the current stable version; pinned readers
// reconstruct the page state at their version from the captures, falling
// through to the live page when no capture covers it.
//
// The overlay is striped by page id. A stripe's RWMutex serializes the
// writer's capture-and-mutate regions (MutatePage) against readers copying
// the live bytes (ReadVersioned): without it a reader could see a torn,
// half-compacted slotted page. Lock order: stripe mutex before any pool
// shard mutex or missMu (MutatePage runs after Pin has released the shard
// mutex; ReadVersioned acquires pool locks while holding the stripe lock).
type pageVersions struct {
	st      *mvcc.State
	stripes [64]pvStripe
}

type pvStripe struct {
	mu sync.RWMutex
	m  map[PageID][]pageCapture
}

// pageCapture is one pre-image: the page bytes as of publish ver. Captures
// for a page are kept sorted by ascending ver.
type pageCapture struct {
	ver  uint64
	data [PageSize]byte
}

func newPageVersions(st *mvcc.State) *pageVersions {
	pv := &pageVersions{st: st}
	for i := range pv.stripes {
		pv.stripes[i].m = make(map[PageID][]pageCapture)
	}
	return pv
}

func (pv *pageVersions) stripe(id PageID) *pvStripe {
	return &pv.stripes[uint64(id)%uint64(len(pv.stripes))]
}

// mutate runs fn (the caller's in-place mutation of f.Data) under the
// page's stripe write lock, capturing the pre-image first if this is the
// page's first mutation of the current epoch.
func (pv *pageVersions) mutate(f *Frame, fn func()) {
	s := pv.stripe(f.id)
	stable := pv.st.Stable()
	s.mu.Lock()
	caps := s.m[f.id]
	if n := len(caps); n == 0 || caps[n-1].ver < stable {
		caps = append(caps, pageCapture{ver: stable, data: f.Data})
		s.m[f.id] = caps
	}
	fn()
	s.mu.Unlock()
}

// readAt copies the state of page id as of version ver into dst: the
// capture with the smallest tag >= ver when one exists, the live page
// otherwise (nothing has mutated it since ver). The live fall-through runs
// under the stripe read lock so a concurrent capture-and-mutate cannot
// tear it.
func (pv *pageVersions) readAt(bp *BufferPool, id PageID, ver uint64, dst *[PageSize]byte) error {
	s := pv.stripe(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	caps := s.m[id]
	i := sort.Search(len(caps), func(i int) bool { return caps[i].ver >= ver })
	if i < len(caps) {
		*dst = caps[i].data
		return nil
	}
	return bp.ReadSnapshot(id, dst)
}

// dropBelow reclaims every capture tagged below floor — no pinned reader
// can reach them. Called from the facade's publish point.
func (pv *pageVersions) dropBelow(floor uint64) {
	for i := range pv.stripes {
		s := &pv.stripes[i]
		s.mu.Lock()
		for id, caps := range s.m {
			j := 0
			for j < len(caps) && caps[j].ver < floor {
				j++
			}
			if j == len(caps) {
				delete(s.m, id)
			} else if j > 0 {
				s.m[id] = append([]pageCapture(nil), caps[j:]...)
			}
		}
		s.mu.Unlock()
	}
}

// captureCount returns the total number of live page captures (audits).
func (pv *pageVersions) captureCount() int {
	n := 0
	for i := range pv.stripes {
		s := &pv.stripes[i]
		s.mu.RLock()
		for _, caps := range s.m {
			n += len(caps)
		}
		s.mu.RUnlock()
	}
	return n
}

// SetMVCC attaches the shared version state to the pool, enabling the
// copy-on-write page overlay. Must be called before any concurrent use.
func (bp *BufferPool) SetMVCC(st *mvcc.State) {
	if st == nil {
		bp.pv = nil
		return
	}
	bp.pv = newPageVersions(st)
}

// MutatePage runs fn, which mutates f.Data in place, under the MVCC page
// overlay's capture-and-mutate protocol. Without MVCC state attached it
// simply runs fn. The caller must hold the frame pinned.
func (bp *BufferPool) MutatePage(f *Frame, fn func()) {
	if bp.pv == nil {
		fn()
		return
	}
	bp.pv.mutate(f, fn)
}

// ReadVersioned copies the state of page id as of version ver into dst.
// It charges nothing, like ReadSnapshot, but unlike ReadSnapshot it is safe
// concurrently with a writer that mutates pages through MutatePage.
func (bp *BufferPool) ReadVersioned(id PageID, ver uint64, dst *[PageSize]byte) error {
	if bp.pv == nil {
		return bp.ReadSnapshot(id, dst)
	}
	return bp.pv.readAt(bp, id, ver, dst)
}

// ReclaimVersions drops page captures no pinned reader can reach (tags
// below floor).
func (bp *BufferPool) ReclaimVersions(floor uint64) {
	if bp.pv != nil {
		bp.pv.dropBelow(floor)
	}
}

// VersionCaptureCount reports the number of retained page pre-images.
func (bp *BufferPool) VersionCaptureCount() int {
	if bp.pv == nil {
		return 0
	}
	return bp.pv.captureCount()
}

package storage

import (
	"container/list"
	"fmt"
	"sync"
)

// Frame is a buffer-pool frame holding a cached page.
type Frame struct {
	id    PageID
	Data  [PageSize]byte
	dirty bool
	pins  int
	lru   *list.Element
}

// ID returns the page id cached in the frame.
func (f *Frame) ID() PageID { return f.id }

// MarkDirty records that the frame's contents diverge from disk and must be
// written back on eviction or flush. Callers that mutate Data (and therefore
// call MarkDirty) must hold the frame pinned and run under the Database
// write lock; concurrent readers only ever read pinned frames.
func (f *Frame) MarkDirty() { f.dirty = true }

// BufferPool caches disk pages in a fixed number of frames with LRU
// replacement. The paper deliberately ran with a small 600 KB buffer
// (150 frames of 4 KB) to make I/O behaviour visible at benchmark scale;
// NewPool(disk, 150) reproduces that configuration.
//
// All pool operations are serialized by an internal mutex, so concurrent
// read-path queries can pin, unpin, and fault pages without corrupting the
// LRU list or the hit/miss accounting. The mutex also guards the underlying
// Disk, which is only reachable through the pool.
type BufferPool struct {
	mu     sync.Mutex
	disk   *Disk
	frames map[PageID]*Frame
	lru    *list.List // front = most recently used; holds *Frame
	cap    int
	clock  *Clock

	// Hits and Misses count logical page requests served from the pool vs.
	// requiring a physical read. Guarded by mu; read them only when no
	// other goroutine is using the pool.
	Hits   int64
	Misses int64
}

// NewPool returns a buffer pool over disk with capacity frames.
func NewPool(disk *Disk, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		disk:   disk,
		frames: make(map[PageID]*Frame, capacity),
		lru:    list.New(),
		cap:    capacity,
		clock:  disk.clock,
	}
}

// Capacity returns the number of frames in the pool.
func (bp *BufferPool) Capacity() int { return bp.cap }

// Pin fetches page id into the pool (reading from disk on a miss), pins it,
// and returns its frame. Every Pin must be matched by an Unpin.
func (bp *BufferPool) Pin(id PageID) (*Frame, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.clock.addLogRead()
	if f, ok := bp.frames[id]; ok {
		bp.Hits++
		f.pins++
		bp.lru.MoveToFront(f.lru)
		return f, nil
	}
	bp.Misses++
	if err := bp.evictIfFull(); err != nil {
		return nil, err
	}
	f := &Frame{id: id, pins: 1}
	if err := bp.disk.read(id, &f.Data); err != nil {
		return nil, err
	}
	f.lru = bp.lru.PushFront(f)
	bp.frames[id] = f
	return f, nil
}

// PinNew allocates a fresh disk page, installs a zeroed dirty frame for it
// without a physical read, and returns the pinned frame.
func (bp *BufferPool) PinNew() (*Frame, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if err := bp.evictIfFull(); err != nil {
		return nil, err
	}
	id := bp.disk.Allocate()
	f := &Frame{id: id, pins: 1, dirty: true}
	f.lru = bp.lru.PushFront(f)
	bp.frames[id] = f
	bp.clock.addLogWrite()
	return f, nil
}

// Unpin releases one pin on page id. If dirty is true the frame is marked
// for write-back. Unpinning a page that is not buffered, or whose pin count
// is already zero, reports an error (it indicates a caller bug, but must not
// take the process down in a server setting).
func (bp *BufferPool) Unpin(id PageID, dirty bool) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, ok := bp.frames[id]
	if !ok {
		return fmt.Errorf("storage: unpin of unbuffered page %d", id)
	}
	if f.pins <= 0 {
		return fmt.Errorf("storage: unpin of unpinned page %d", id)
	}
	f.pins--
	if dirty {
		f.dirty = true
		bp.clock.addLogWrite()
	}
	return nil
}

// evictIfFull frees one frame using LRU, writing it back if dirty.
// Caller holds bp.mu.
func (bp *BufferPool) evictIfFull() error {
	if len(bp.frames) < bp.cap {
		return nil
	}
	for e := bp.lru.Back(); e != nil; e = e.Prev() {
		f := e.Value.(*Frame)
		if f.pins > 0 {
			continue
		}
		if f.dirty {
			if err := bp.disk.write(f.id, &f.Data); err != nil {
				return err
			}
		}
		bp.lru.Remove(e)
		delete(bp.frames, f.id)
		return nil
	}
	return fmt.Errorf("storage: buffer pool exhausted: all %d frames pinned", bp.cap)
}

// FlushPage forces page id to disk now and marks its frame clean — the
// FORCE write policy applied to auxiliary structures (GMR extensions,
// backward indexes, RRR) whose consistency a 1991-era system guaranteed by
// writing through. A miss is a no-op.
func (bp *BufferPool) FlushPage(id PageID) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, ok := bp.frames[id]
	if !ok || !f.dirty {
		return nil
	}
	if err := bp.disk.write(id, &f.Data); err != nil {
		return err
	}
	f.dirty = false
	return nil
}

// Flush writes all dirty frames back to disk without evicting them.
func (bp *BufferPool) Flush() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, f := range bp.frames {
		if f.dirty {
			if err := bp.disk.write(f.id, &f.Data); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	return nil
}

// Resident reports whether page id is currently buffered. Used by tests.
func (bp *BufferPool) Resident(id PageID) bool {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	_, ok := bp.frames[id]
	return ok
}

// PinnedCount returns the number of frames with a nonzero pin count.
func (bp *BufferPool) PinnedCount() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	n := 0
	for _, f := range bp.frames {
		if f.pins > 0 {
			n++
		}
	}
	return n
}

package storage

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// PinDebug, when enabled, makes Frame.MarkDirty assert that the frame is
// pinned. Dirtying an unpinned frame is always a caller bug — the frame may
// be evicted (and the write lost) at any moment — but the check costs an
// atomic load on a hot path, so it is off by default and switched on by
// tests.
var PinDebug atomic.Bool

// Frame is a buffer-pool frame holding a cached page.
type Frame struct {
	id    PageID
	Data  [PageSize]byte
	dirty bool
	// durDirty tracks divergence from the last durable checkpoint rather
	// than from the simulated disk: set together with dirty, cleared only by
	// BufferPool.ClearDurableDirty (after a checkpoint commits), never by
	// simulated write-back. Durable checkpoints capture exactly the frames
	// with durDirty set, so a page whose content is unchanged since the last
	// checkpoint is not rewritten. Unused (set but never read) without
	// durability.
	durDirty bool
	// pins is the pin count. Atomic because concurrent readers pin and
	// unpin under different shard lock acquisitions and MarkDirty's debug
	// assertion reads it without any lock.
	pins atomic.Int32
	// stamp is the global recency stamp of the last Pin; guarded by the
	// owning shard's mutex.
	stamp uint64
}

// ID returns the page id cached in the frame.
func (f *Frame) ID() PageID { return f.id }

// MarkDirty records that the frame's contents diverge from disk and must be
// written back on eviction or flush. Callers that mutate Data (and therefore
// call MarkDirty) must hold the frame pinned and run under the Database
// write lock; concurrent readers only ever read pinned frames.
func (f *Frame) MarkDirty() {
	if PinDebug.Load() && f.pins.Load() <= 0 {
		panic(fmt.Sprintf("storage: MarkDirty on unpinned page %d", f.id))
	}
	f.dirty = true
	f.durDirty = true
}

// shard is one lock stripe of the pool: a mutex and the frames whose page
// ids hash to it.
type shard struct {
	mu     sync.Mutex
	frames map[PageID]*Frame
	_      [40]byte // pad to a cache line so neighboring stripes don't false-share
}

// BufferPool caches disk pages in a fixed number of frames with LRU
// replacement. The paper deliberately ran with a small 600 KB buffer
// (150 frames of 4 KB) to make I/O behaviour visible at benchmark scale;
// NewPool(disk, 150) reproduces that configuration.
//
// # Lock striping
//
// The resident-page table is striped: page ids map to one of a power-of-two
// number of shards (default: the next power of two >= GOMAXPROCS), each with
// its own mutex and frame map, so concurrent read-path hits on different
// pages proceed in parallel. The miss path — eviction, disk I/O, and frame
// installation — serializes on a single missMu, which also guards the
// underlying Disk; misses are the slow path by construction (each one
// charges a 25 ms simulated I/O), so their serialization does not limit
// read scalability.
//
// # Exact global LRU
//
// Replacement is deliberately NOT per-shard. Every Pin stamps its frame from
// a global atomic counter, and eviction selects the minimum-stamp unpinned
// frame across all shards — exactly the frame the previous single-mutex
// implementation's global LRU list would have chosen. Partitioning capacity
// across shards would make eviction (and therefore the physical-I/O count
// and the simulated clock) depend on the shard count and thus on GOMAXPROCS;
// with the global stamp the victim sequence of a single-threaded run is
// bit-identical to the historical pool for any shard count. The O(capacity)
// victim scan is charged against a path that already pays a simulated disk
// I/O and is negligible at realistic pool sizes.
type BufferPool struct {
	disk  *Disk
	cap   int
	clock *Clock

	shards []shard
	mask   uint32

	// missMu serializes the miss path (capacity check, eviction, disk I/O,
	// installation) and all other disk access. Lock order: missMu before
	// any shard mutex; the hit path takes only its shard mutex.
	missMu sync.Mutex

	// count is the number of resident frames; tick is the global recency
	// stamp source.
	count atomic.Int64
	tick  atomic.Uint64

	// hits and misses count logical page requests served from the pool vs.
	// requiring a physical read; read them through HitStats.
	hits   atomic.Int64
	misses atomic.Int64

	// pv, when non-nil, is the MVCC copy-on-write page overlay (see
	// pageversions.go) attached by SetMVCC.
	pv *pageVersions
}

// NewPool returns a buffer pool over disk with capacity frames and the
// default shard count (the next power of two >= GOMAXPROCS).
func NewPool(disk *Disk, capacity int) *BufferPool {
	return NewPoolShards(disk, capacity, 0)
}

// NewPoolShards returns a buffer pool with an explicit lock-stripe count
// (rounded up to a power of two; 0 selects the default). shards = 1
// reproduces the historical single-mutex pool and serves as the contended
// baseline in the throughput benchmarks.
func NewPoolShards(disk *Disk, capacity, shards int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	n := 1
	for n < shards && n < 256 {
		n <<= 1
	}
	bp := &BufferPool{
		disk:   disk,
		cap:    capacity,
		clock:  disk.clock,
		shards: make([]shard, n),
		mask:   uint32(n - 1),
	}
	for i := range bp.shards {
		bp.shards[i].frames = make(map[PageID]*Frame)
	}
	return bp
}

// Capacity returns the number of frames in the pool.
func (bp *BufferPool) Capacity() int { return bp.cap }

// NumShards returns the number of lock stripes.
func (bp *BufferPool) NumShards() int { return len(bp.shards) }

// HitStats returns the number of logical page requests served from the pool
// and the number that required a physical read. The counters are atomic, so
// this is safe to call while other goroutines use the pool; an in-flight
// request may or may not be included.
func (bp *BufferPool) HitStats() (hits, misses int64) {
	return bp.hits.Load(), bp.misses.Load()
}

// shardFor returns the lock stripe owning page id.
func (bp *BufferPool) shardFor(id PageID) *shard {
	return &bp.shards[uint32(id)&bp.mask]
}

// Pin fetches page id into the pool (reading from disk on a miss), pins it,
// and returns its frame. Every Pin must be matched by an Unpin. Hits touch
// only the page's shard; misses fall into the serialized miss path.
func (bp *BufferPool) Pin(id PageID) (*Frame, error) {
	bp.clock.addLogRead()
	sh := bp.shardFor(id)
	sh.mu.Lock()
	if f, ok := sh.frames[id]; ok {
		bp.hits.Add(1)
		f.pins.Add(1)
		f.stamp = bp.tick.Add(1)
		sh.mu.Unlock()
		return f, nil
	}
	sh.mu.Unlock()
	return bp.pinMiss(id)
}

// pinMiss faults page id in under missMu. Because only missMu holders insert
// or evict frames, the second lookup is authoritative: a concurrent miss on
// the same page that won the race has already installed the frame.
func (bp *BufferPool) pinMiss(id PageID) (*Frame, error) {
	bp.missMu.Lock()
	defer bp.missMu.Unlock()
	sh := bp.shardFor(id)
	sh.mu.Lock()
	if f, ok := sh.frames[id]; ok {
		bp.hits.Add(1)
		f.pins.Add(1)
		f.stamp = bp.tick.Add(1)
		sh.mu.Unlock()
		return f, nil
	}
	sh.mu.Unlock()
	bp.misses.Add(1)
	if err := bp.evictIfFull(); err != nil {
		return nil, err
	}
	f := &Frame{id: id}
	f.pins.Store(1)
	if err := bp.disk.read(id, &f.Data); err != nil {
		return nil, err
	}
	sh.mu.Lock()
	f.stamp = bp.tick.Add(1)
	sh.frames[id] = f
	sh.mu.Unlock()
	bp.count.Add(1)
	return f, nil
}

// PinNew allocates a fresh disk page, installs a zeroed dirty frame for it
// without a physical read, and returns the pinned frame.
func (bp *BufferPool) PinNew() (*Frame, error) { return bp.PinNewOwned("") }

// PinNewOwned is PinNew with the page tagged as owned by the named heap
// file, so fault plans (storage/fault.go) can target I/O on a single file.
func (bp *BufferPool) PinNewOwned(owner string) (*Frame, error) {
	bp.missMu.Lock()
	defer bp.missMu.Unlock()
	if err := bp.evictIfFull(); err != nil {
		return nil, err
	}
	id := bp.disk.Allocate()
	bp.disk.tagOwner(id, owner)
	f := &Frame{id: id, dirty: true, durDirty: true}
	f.pins.Store(1)
	sh := bp.shardFor(id)
	sh.mu.Lock()
	f.stamp = bp.tick.Add(1)
	sh.frames[id] = f
	sh.mu.Unlock()
	bp.count.Add(1)
	bp.clock.addLogWrite()
	return f, nil
}

// Unpin releases one pin on page id. If dirty is true the frame is marked
// for write-back. Unpinning a page that is not buffered, or whose pin count
// is already zero, reports an error (it indicates a caller bug, but must not
// take the process down in a server setting).
func (bp *BufferPool) Unpin(id PageID, dirty bool) error {
	sh := bp.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f, ok := sh.frames[id]
	if !ok {
		return fmt.Errorf("storage: unpin of unbuffered page %d", id)
	}
	if f.pins.Load() <= 0 {
		return fmt.Errorf("storage: unpin of unpinned page %d", id)
	}
	f.pins.Add(-1)
	if dirty {
		f.dirty = true
		f.durDirty = true
		bp.clock.addLogWrite()
	}
	return nil
}

// evictIfFull frees one frame using exact global LRU (minimum recency stamp
// over all unpinned frames), writing it back if dirty. Caller holds missMu,
// so no frame is concurrently inserted or removed; concurrent hits may pin
// or re-stamp frames, which the second, locked check below accounts for.
func (bp *BufferPool) evictIfFull() error {
	for int(bp.count.Load()) >= bp.cap {
		var victim *Frame
		var vsh *shard
		for i := range bp.shards {
			sh := &bp.shards[i]
			sh.mu.Lock()
			for _, f := range sh.frames {
				if f.pins.Load() > 0 {
					continue
				}
				if victim == nil || f.stamp < victim.stamp {
					victim, vsh = f, sh
				}
			}
			sh.mu.Unlock()
		}
		if victim == nil {
			return fmt.Errorf("storage: buffer pool exhausted: all %d frames pinned", bp.cap)
		}
		vsh.mu.Lock()
		if f, ok := vsh.frames[victim.id]; !ok || f != victim || f.pins.Load() > 0 {
			// A reader pinned the chosen victim between the scan and the
			// lock; rescan for the next-oldest frame.
			vsh.mu.Unlock()
			continue
		}
		if victim.dirty {
			if err := bp.disk.write(victim.id, &victim.Data); err != nil {
				vsh.mu.Unlock()
				return err
			}
		}
		delete(vsh.frames, victim.id)
		vsh.mu.Unlock()
		bp.count.Add(-1)
		return nil
	}
	return nil
}

// FreePage drops page id from the pool (without write-back — the content is
// being discarded, not persisted) and returns it to the disk's free list.
// The page must be unpinned; callers run under the exclusive Database lock
// (heap relocation holds the MVCC barrier), so no reader can race the drop.
// Nothing is charged: deallocation is bookkeeping, not I/O.
func (bp *BufferPool) FreePage(id PageID) error {
	bp.missMu.Lock()
	defer bp.missMu.Unlock()
	sh := bp.shardFor(id)
	sh.mu.Lock()
	if f, ok := sh.frames[id]; ok {
		if f.pins.Load() > 0 {
			sh.mu.Unlock()
			return fmt.Errorf("storage: free of pinned page %d", id)
		}
		delete(sh.frames, id)
		bp.count.Add(-1)
	}
	sh.mu.Unlock()
	return bp.disk.Free(id)
}

// FlushPage forces page id to disk now and marks its frame clean — the
// FORCE write policy applied to auxiliary structures (GMR extensions,
// backward indexes, RRR) whose consistency a 1991-era system guaranteed by
// writing through. A miss is a no-op.
func (bp *BufferPool) FlushPage(id PageID) error {
	bp.missMu.Lock()
	defer bp.missMu.Unlock()
	sh := bp.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f, ok := sh.frames[id]
	if !ok || !f.dirty {
		return nil
	}
	if err := bp.disk.write(id, &f.Data); err != nil {
		return err
	}
	f.dirty = false
	return nil
}

// Flush writes all dirty frames back to disk without evicting them.
func (bp *BufferPool) Flush() error {
	bp.missMu.Lock()
	defer bp.missMu.Unlock()
	for i := range bp.shards {
		sh := &bp.shards[i]
		sh.mu.Lock()
		for _, f := range sh.frames {
			if f.dirty {
				if err := bp.disk.write(f.id, &f.Data); err != nil {
					sh.mu.Unlock()
					return err
				}
				f.dirty = false
			}
		}
		sh.mu.Unlock()
	}
	return nil
}

// ReadSnapshot copies the current contents of page id into dst — the
// buffered frame when the page is resident, the disk image otherwise —
// without pinning, without touching replacement state, and without charging
// the simulated clock or the hit/miss counters. It is the read path of the
// deferred-rematerialization workers: they evaluate concurrently against a
// stable snapshot while the simulated charges of their reads are replayed
// serially (and therefore deterministically) afterwards. Callers must
// guarantee that no writer mutates the page bytes concurrently: the GMR
// manager's flush holds the Database write lock for the whole drain, and
// the MVCC read path wraps this call in the page's stripe lock
// (ReadVersioned), which excludes MutatePage writers. The disk fall-through
// serializes on missMu because the Disk itself has no interior lock.
func (bp *BufferPool) ReadSnapshot(id PageID, dst *[PageSize]byte) error {
	sh := bp.shardFor(id)
	sh.mu.Lock()
	if f, ok := sh.frames[id]; ok {
		*dst = f.Data
		sh.mu.Unlock()
		return nil
	}
	sh.mu.Unlock()
	bp.missMu.Lock()
	defer bp.missMu.Unlock()
	return bp.disk.readSnapshot(id, dst)
}

// DirtyPageIDs returns the sorted ids of all frames whose contents changed
// since the last durable checkpoint (the durDirty flag). The durable
// checkpoint unions them with Disk.DurableDirty to find every page it must
// capture; the frames' simulated dirty flags are left untouched so the
// simulated write-back accounting (eviction and Flush charges) is unchanged
// by durability.
func (bp *BufferPool) DirtyPageIDs() []PageID {
	var out []PageID
	for i := range bp.shards {
		sh := &bp.shards[i]
		sh.mu.Lock()
		for _, f := range sh.frames {
			if f.durDirty {
				out = append(out, f.id)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ClearDurableDirty resets every frame's durDirty flag; called after a
// durable checkpoint commits. The simulated dirty flags are untouched.
func (bp *BufferPool) ClearDurableDirty() {
	for i := range bp.shards {
		sh := &bp.shards[i]
		sh.mu.Lock()
		for _, f := range sh.frames {
			f.durDirty = false
		}
		sh.mu.Unlock()
	}
}

// Resident reports whether page id is currently buffered. Used by tests.
func (bp *BufferPool) Resident(id PageID) bool {
	sh := bp.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.frames[id]
	return ok
}

// PinnedCount returns the number of frames with a nonzero pin count.
func (bp *BufferPool) PinnedCount() int {
	n := 0
	for i := range bp.shards {
		sh := &bp.shards[i]
		sh.mu.Lock()
		for _, f := range sh.frames {
			if f.pins.Load() > 0 {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// fillPage returns a page image with a recognizable deterministic pattern.
func fillPage(seed byte) *[PageSize]byte {
	p := new([PageSize]byte)
	for i := range p {
		p[i] = seed + byte(i%251)
	}
	return p
}

// memReader adapts a map of page images to the Checkpoint read callback.
func memReader(pages map[PageID]*[PageSize]byte) func(PageID, *[PageSize]byte) error {
	return func(id PageID, dst *[PageSize]byte) error {
		p, ok := pages[id]
		if !ok {
			return errors.New("missing page")
		}
		*dst = *p
		return nil
	}
}

func mustOpenStore(t *testing.T, dir string) (*PageStore, *RecoveredImage) {
	t.Helper()
	ps, img, err := OpenPageStore(dir)
	if err != nil {
		t.Fatalf("OpenPageStore(%s): %v", dir, err)
	}
	return ps, img
}

func TestPageStoreFreshDirectory(t *testing.T) {
	ps, img, err := OpenPageStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenPageStore: %v", err)
	}
	defer ps.Close()
	if img.Exists {
		t.Fatalf("fresh directory reported an existing checkpoint: %+v", img)
	}
	if len(img.Pages) != 0 || img.Meta != nil {
		t.Fatalf("fresh directory returned state: %+v", img)
	}
}

func TestPageStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ps, _ := mustOpenStore(t, dir)
	pages := map[PageID]*[PageSize]byte{1: fillPage(3), 2: fillPage(7), 5: fillPage(11)}
	meta := []byte(`{"hello":"durable world"}`)
	if err := ps.Checkpoint([]PageID{1, 2, 5}, memReader(pages), meta); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := ps.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	ps2, img := mustOpenStore(t, dir)
	defer ps2.Close()
	if !img.Exists {
		t.Fatal("reopen found no checkpoint")
	}
	if !bytes.Equal(img.Meta, meta) {
		t.Fatalf("meta round trip: got %q want %q", img.Meta, meta)
	}
	if len(img.Pages) != 3 {
		t.Fatalf("recovered %d pages, want 3", len(img.Pages))
	}
	for id, want := range pages {
		got, ok := img.Pages[id]
		if !ok {
			t.Fatalf("page %d missing after reopen", id)
		}
		if *got != *want {
			t.Fatalf("page %d content mismatch", id)
		}
	}
	if img.WALPagesReplayed != 0 || img.TornPagesRepaired != 0 || img.WALTailDiscarded {
		t.Fatalf("clean reopen reported repair work: %+v", img)
	}
}

// A second checkpoint overwrites pages and meta; absent pages keep their old
// content.
func TestPageStoreIncrementalCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ps, _ := mustOpenStore(t, dir)
	if err := ps.Checkpoint([]PageID{1, 2}, memReader(map[PageID]*[PageSize]byte{1: fillPage(1), 2: fillPage(2)}), []byte("v1")); err != nil {
		t.Fatalf("Checkpoint 1: %v", err)
	}
	if err := ps.Checkpoint([]PageID{2, 3}, memReader(map[PageID]*[PageSize]byte{2: fillPage(20), 3: fillPage(30)}), []byte("v2")); err != nil {
		t.Fatalf("Checkpoint 2: %v", err)
	}
	ps.Close()

	ps2, img := mustOpenStore(t, dir)
	defer ps2.Close()
	if string(img.Meta) != "v2" {
		t.Fatalf("meta = %q, want v2", img.Meta)
	}
	if *img.Pages[1] != *fillPage(1) || *img.Pages[2] != *fillPage(20) || *img.Pages[3] != *fillPage(30) {
		t.Fatal("incremental checkpoint content mismatch")
	}
}

// A crash during the WAL append (batch cut off before the commit record)
// must roll back to the previous checkpoint: the tail is discarded.
func TestPageStoreWALTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	ps, _ := mustOpenStore(t, dir)
	if err := ps.Checkpoint([]PageID{1}, memReader(map[PageID]*[PageSize]byte{1: fillPage(1)}), []byte("base")); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	ps.FailNextCheckpointAfter(100) // far before the commit record
	err := ps.Checkpoint([]PageID{1, 2}, memReader(map[PageID]*[PageSize]byte{1: fillPage(99), 2: fillPage(98)}), []byte("new"))
	if !errors.Is(err, ErrSimulatedCrash) {
		t.Fatalf("cut-off checkpoint: err=%v, want ErrSimulatedCrash", err)
	}
	ps.Abandon()

	ps2, img := mustOpenStore(t, dir)
	defer ps2.Close()
	if !img.WALTailDiscarded {
		t.Fatal("recovery did not report the discarded WAL tail")
	}
	if string(img.Meta) != "base" {
		t.Fatalf("meta = %q, want the pre-crash checkpoint", img.Meta)
	}
	if len(img.Pages) != 1 || *img.Pages[1] != *fillPage(1) {
		t.Fatal("recovered state is not the pre-crash checkpoint")
	}
	// The discarded tail must not resurface on a second reopen.
	ps2.Close()
	ps3, img3 := mustOpenStore(t, dir)
	defer ps3.Close()
	if img3.WALTailDiscarded {
		t.Fatal("tail reported again after it was already discarded")
	}
}

// A torn data-file write after the WAL batch committed must be repaired from
// the WAL copy: recovery detects the bad checksum and replays.
func TestPageStoreTornWriteRepairedFromWAL(t *testing.T) {
	dir := t.TempDir()
	ps, _ := mustOpenStore(t, dir)
	if err := ps.Checkpoint([]PageID{1, 2}, memReader(map[PageID]*[PageSize]byte{1: fillPage(1), 2: fillPage(2)}), []byte("base")); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	tearNext := true
	ps.SetTornWriteHook(func(id PageID) bool {
		if id == 2 && tearNext {
			tearNext = false
			return true
		}
		return false
	})
	err := ps.Checkpoint([]PageID{1, 2}, memReader(map[PageID]*[PageSize]byte{1: fillPage(10), 2: fillPage(20)}), []byte("new"))
	if !errors.Is(err, ErrSimulatedCrash) {
		t.Fatalf("torn checkpoint: err=%v, want ErrSimulatedCrash", err)
	}
	ps.Abandon()

	ps2, img := mustOpenStore(t, dir)
	defer ps2.Close()
	// The WAL batch committed before the apply, so recovery must land on the
	// NEW checkpoint, repairing the torn record.
	if string(img.Meta) != "new" {
		t.Fatalf("meta = %q, want the committed (torn-apply) checkpoint", img.Meta)
	}
	if img.WALPagesReplayed == 0 {
		t.Fatal("recovery reported no WAL replay despite unfinished apply")
	}
	if img.TornPagesRepaired != 1 {
		t.Fatalf("TornPagesRepaired = %d, want 1", img.TornPagesRepaired)
	}
	if *img.Pages[1] != *fillPage(10) || *img.Pages[2] != *fillPage(20) {
		t.Fatal("recovered pages are not the committed checkpoint's content")
	}
}

// The torn-write hook wired to a Disk fault plan: a FaultTornWrite rule
// targets the owner-tagged page and fires exactly Count times.
func TestTornWriteFaultPlan(t *testing.T) {
	clock := NewClock()
	d := NewDisk(clock)
	id1 := d.Allocate()
	id2 := d.Allocate()
	d.tagOwner(id1, "objects")
	d.tagOwner(id2, "GMR:Gvw")
	d.SetFaultPlan(FaultPlan{Rules: []FaultRule{{Op: FaultTornWrite, File: "GMR:", After: 0, Count: 1}}})

	if d.CheckTornWrite(id1) {
		t.Fatal("rule with File=GMR: fired for an objects page")
	}
	if !d.CheckTornWrite(id2) {
		t.Fatal("rule did not fire for the targeted GMR page")
	}
	if d.CheckTornWrite(id2) {
		t.Fatal("transient rule fired twice")
	}
	if d.FaultsInjected() != 1 {
		t.Fatalf("FaultsInjected = %d, want 1", d.FaultsInjected())
	}

	// FaultAny must NOT include torn writes, and FaultTornWrite rules must
	// not fail ordinary simulated I/O.
	d.SetFaultPlan(FaultPlan{Rules: []FaultRule{{Op: FaultAny, After: 0}}})
	if d.CheckTornWrite(id1) {
		t.Fatal("FaultAny rule tore a durable write")
	}
	d.SetFaultPlan(FaultPlan{Rules: []FaultRule{{Op: FaultTornWrite, After: 0}}})
	var buf [PageSize]byte
	if err := d.write(id1, &buf); err != nil {
		t.Fatalf("FaultTornWrite rule failed a simulated write: %v", err)
	}
	if err := d.read(id1, &buf); err != nil {
		t.Fatalf("FaultTornWrite rule failed a simulated read: %v", err)
	}
}

// goldenScript drives a deterministic checkpoint sequence against dir and
// abandons the store mid-crash, leaving all three files in a state that
// exercises every on-disk structure: applied records, a committed WAL batch,
// a torn data record, and a stale meta file.
func goldenScript(t *testing.T, dir string) {
	t.Helper()
	ps, img := mustOpenStore(t, dir)
	if img.Exists {
		t.Fatal("golden script needs a fresh directory")
	}
	if err := ps.Checkpoint([]PageID{1, 2}, memReader(map[PageID]*[PageSize]byte{1: fillPage(1), 2: fillPage(2)}), []byte(`{"golden":1}`)); err != nil {
		t.Fatalf("golden checkpoint 1: %v", err)
	}
	ps.SetTornWriteHook(func(id PageID) bool { return id == 2 })
	err := ps.Checkpoint([]PageID{2, 3}, memReader(map[PageID]*[PageSize]byte{2: fillPage(22), 3: fillPage(33)}), []byte(`{"golden":2}`))
	if !errors.Is(err, ErrSimulatedCrash) {
		t.Fatalf("golden checkpoint 2: err=%v, want ErrSimulatedCrash", err)
	}
	ps.Abandon()
}

var goldenFiles = []string{"data.gomdb", "wal.gomdb", "meta.gomdb"}

// TestGoldenOnDiskFormat locks the on-disk format: the byte-exact files the
// golden script produces are committed under testdata/golden. A failure here
// means the format changed — if that is intentional, bump FormatVersion and
// regenerate with GOLDEN_UPDATE=1 go test ./internal/storage -run Golden.
func TestGoldenOnDiskFormat(t *testing.T) {
	if FormatVersion != 1 {
		t.Fatalf("FormatVersion = %d: regenerate testdata/golden and update this check", FormatVersion)
	}
	goldenDir := filepath.Join("testdata", "golden")
	dir := t.TempDir()
	goldenScript(t, dir)

	if os.Getenv("GOLDEN_UPDATE") != "" {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for _, name := range goldenFiles {
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(goldenDir, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Log("golden files regenerated")
		return
	}
	for _, name := range goldenFiles {
		want, err := os.ReadFile(filepath.Join(goldenDir, name))
		if err != nil {
			t.Fatalf("missing golden file (run with GOLDEN_UPDATE=1 to create): %v", err)
		}
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s differs from golden copy (%d vs %d bytes): on-disk format changed", name, len(got), len(want))
		}
	}
}

// TestGoldenRecovery proves a current build recovers a database written in
// the committed format: the golden directory (which ends mid-torn-write with
// a committed WAL batch) must recover to checkpoint 2's state.
func TestGoldenRecovery(t *testing.T) {
	goldenDir := filepath.Join("testdata", "golden")
	if _, err := os.Stat(goldenDir); err != nil {
		t.Skipf("golden files not present: %v", err)
	}
	// Recovery mutates the files (finishes the interrupted checkpoint), so
	// work on a copy.
	dir := t.TempDir()
	for _, name := range goldenFiles {
		data, err := os.ReadFile(filepath.Join(goldenDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ps, img := mustOpenStore(t, dir)
	defer ps.Close()
	if !img.Exists {
		t.Fatal("golden directory recovered as empty")
	}
	if string(img.Meta) != `{"golden":2}` {
		t.Fatalf("recovered meta %q, want golden checkpoint 2", img.Meta)
	}
	if img.TornPagesRepaired != 1 {
		t.Fatalf("TornPagesRepaired = %d, want 1", img.TornPagesRepaired)
	}
	if *img.Pages[1] != *fillPage(1) || *img.Pages[2] != *fillPage(22) || *img.Pages[3] != *fillPage(33) {
		t.Fatal("golden recovery produced wrong page content")
	}
}

package storage

import (
	"bytes"
	"fmt"
	"testing"
)

// fillHeap inserts n records of the given size into h and returns their RIDs
// in insertion order.
func fillHeap(t *testing.T, h *HeapFile, n, size int) []RID {
	t.Helper()
	rids := make([]RID, n)
	for i := 0; i < n; i++ {
		rec := bytes.Repeat([]byte{byte(i)}, size)
		rec = append(rec, []byte(fmt.Sprintf("#%d", i))...)
		rid, err := h.Insert(rec)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		rids[i] = rid
	}
	return rids
}

func TestHeapRelocateReordersAndPreservesRecords(t *testing.T) {
	pool, _ := newPool(64)
	h := NewHeapFile(pool, "objects")
	rids := fillHeap(t, h, 40, 200)

	want := make(map[RID][]byte, len(rids))
	for _, rid := range rids {
		rec, err := h.Read(rid)
		if err != nil {
			t.Fatalf("read %v: %v", rid, err)
		}
		want[rid] = rec
	}

	// Relocate into reverse insertion order.
	order := make([]RID, len(rids))
	for i, rid := range rids {
		order[len(rids)-1-i] = rid
	}
	remap, err := h.Relocate(order)
	if err != nil {
		t.Fatalf("relocate: %v", err)
	}
	if len(remap) != len(rids) {
		t.Fatalf("remap has %d entries, want %d", len(remap), len(rids))
	}
	if h.Count() != len(rids) {
		t.Fatalf("count = %d after relocate, want %d", h.Count(), len(rids))
	}
	for old, rec := range want {
		got, err := h.Read(remap[old])
		if err != nil {
			t.Fatalf("read relocated %v -> %v: %v", old, remap[old], err)
		}
		if !bytes.Equal(got, rec) {
			t.Fatalf("record %v changed across relocation", old)
		}
	}
	// The new physical order is the requested order: scanning the file
	// yields the records of `order` front to back.
	i := 0
	if err := h.Scan(func(rid RID, rec []byte) bool {
		if rid != remap[order[i]] {
			t.Fatalf("scan position %d: got %v, want %v (record of %v)", i, rid, remap[order[i]], order[i])
		}
		i++
		return true
	}); err != nil {
		t.Fatalf("scan: %v", err)
	}
	if i != len(order) {
		t.Fatalf("scan visited %d records, want %d", i, len(order))
	}
}

func TestHeapRelocateValidatesOrder(t *testing.T) {
	pool, _ := newPool(16)
	h := NewHeapFile(pool, "objects")
	rids := fillHeap(t, h, 5, 100)

	if _, err := h.Relocate(rids[:4]); err == nil {
		t.Fatal("relocate with a missing record succeeded")
	}
	dup := append(append([]RID(nil), rids[:4]...), rids[0])
	if _, err := h.Relocate(dup); err == nil {
		t.Fatal("relocate with a duplicate record succeeded")
	}
}

// TestHeapCompactReclaimsPagesAndCoalescesFreeExtents pins the reclaimed-space
// accounting after a bulk delete: compaction must return the emptied pages to
// the disk as coalesced free extents, and subsequent allocations must reuse
// them lowest-first instead of growing the address space.
func TestHeapCompactReclaimsPagesAndCoalescesFreeExtents(t *testing.T) {
	pool, _ := newPool(64)
	disk := pool.disk
	h := NewHeapFile(pool, "objects")
	rids := fillHeap(t, h, 60, 400)
	pagesBefore := h.NumPages()
	if pagesBefore < 6 {
		t.Fatalf("want several pages before delete, got %d", pagesBefore)
	}

	// Bulk delete: keep every sixth record. The pages stay allocated —
	// deleted space is stranded slack until compaction.
	kept := 0
	for i, rid := range rids {
		if i%6 == 0 {
			kept++
			continue
		}
		if err := h.Delete(rid); err != nil {
			t.Fatalf("delete %v: %v", rid, err)
		}
	}
	if h.NumPages() != pagesBefore {
		t.Fatalf("delete alone changed page count: %d -> %d", pagesBefore, h.NumPages())
	}
	if disk.FreePageCount() != 0 {
		t.Fatalf("free pages before compaction: %d, want 0", disk.FreePageCount())
	}

	remap, err := h.Compact()
	if err != nil {
		t.Fatalf("compact: %v", err)
	}
	if len(remap) != kept {
		t.Fatalf("compact remapped %d records, want %d", len(remap), kept)
	}
	if h.NumPages() >= pagesBefore {
		t.Fatalf("compaction did not shrink the file: %d pages -> %d", pagesBefore, h.NumPages())
	}
	freed := disk.FreePageCount()
	if want := pagesBefore; freed != want {
		// Every pre-compaction page is freed (records moved to fresh pages);
		// the new pages came from the grown address space, so the freed count
		// is exactly the old page count.
		t.Fatalf("free pages after compaction: %d, want %d", freed, want)
	}
	// The old pages were allocated consecutively, so freeing them must
	// coalesce into a single extent — fragmented accounting is the regression
	// this test pins.
	if got := disk.FreeExtentCount(); got != 1 {
		t.Fatalf("free extents after compaction: %d, want 1 (coalesced)", got)
	}

	// Reuse: new inserts consume the reclaimed ids before growing next.
	next := disk.NextPage()
	fillHeap(t, h, 30, 400)
	if disk.NextPage() != next {
		t.Fatalf("address space grew (next %d -> %d) while %d pages were free",
			next, disk.NextPage(), freed)
	}
	if disk.FreePageCount() >= freed {
		t.Fatalf("reclaimed pages were not reused: %d free before, %d after inserts",
			freed, disk.FreePageCount())
	}
}

// TestHeapRelocateAbortsCleanlyOnFault verifies the all-or-nothing contract:
// an injected fault during either relocation phase leaves the file exactly as
// it was, with no leaked pages.
func TestHeapRelocateAbortsCleanlyOnFault(t *testing.T) {
	for _, phase := range []struct {
		name string
		rule FaultRule
	}{
		{"read-phase", FaultRule{Op: FaultRead, Count: 1}},
		{"write-phase", FaultRule{Op: FaultWrite, Count: 1}},
	} {
		t.Run(phase.name, func(t *testing.T) {
			// A 4-frame pool over more pages than fit forces physical I/O
			// during relocation, giving the fault rules something to hit.
			pool, _ := newPool(4)
			disk := pool.disk
			h := NewHeapFile(pool, "objects")
			rids := fillHeap(t, h, 30, 500)
			want := make([][]byte, len(rids))
			for i, rid := range rids {
				rec, err := h.Read(rid)
				if err != nil {
					t.Fatalf("read %v: %v", rid, err)
				}
				want[i] = rec
			}
			pages, count, allocated := h.NumPages(), h.Count(), disk.NumPages()

			disk.SetFaultPlan(FaultPlan{Rules: []FaultRule{phase.rule}})
			order := make([]RID, len(rids))
			for i, rid := range rids {
				order[len(rids)-1-i] = rid
			}
			_, err := h.Relocate(order)
			disk.ClearFaults()
			if err == nil {
				t.Fatal("relocate under fault injection succeeded")
			}
			if h.NumPages() != pages || h.Count() != count {
				t.Fatalf("aborted relocate changed the file: %d pages/%d records, want %d/%d",
					h.NumPages(), h.Count(), pages, count)
			}
			if disk.NumPages() != allocated {
				t.Fatalf("aborted relocate leaked pages: disk has %d, want %d",
					disk.NumPages(), allocated)
			}
			if n := pool.PinnedCount(); n != 0 {
				t.Fatalf("aborted relocate leaked %d pins", n)
			}
			for i, rid := range rids {
				rec, err := h.Read(rid)
				if err != nil {
					t.Fatalf("read %v after abort: %v", rid, err)
				}
				if !bytes.Equal(rec, want[i]) {
					t.Fatalf("record %d changed after aborted relocate", i)
				}
			}
		})
	}
}

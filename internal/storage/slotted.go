package storage

import (
	"encoding/binary"
	"fmt"
)

// Slotted page layout (within a 4096-byte page):
//
//	offset 0: numSlots  uint16 — number of slot directory entries
//	offset 2: freeLow   uint16 — first byte after the slot directory
//	offset 4: freeHigh  uint16 — first byte of the record heap (records grow
//	                             downward from the end of the page)
//	offset 6: slot directory — numSlots entries of {recOff uint16, recLen uint16}
//
// A slot with recOff == 0 is free (a deleted record); slot indices are stable
// so record ids remain valid across other insertions and deletions.

const (
	pageHeaderSize = 6
	slotSize       = 4
)

// RID identifies a record: a page and a slot within it.
type RID struct {
	Page PageID
	Slot uint16
}

// IsZero reports whether the RID is the zero value (no record).
func (r RID) IsZero() bool { return r.Page == 0 && r.Slot == 0 }

func (r RID) String() string { return fmt.Sprintf("%d.%d", r.Page, r.Slot) }

type slotted struct{ data *[PageSize]byte }

func (p slotted) numSlots() uint16     { return binary.LittleEndian.Uint16(p.data[0:]) }
func (p slotted) freeLow() uint16      { return binary.LittleEndian.Uint16(p.data[2:]) }
func (p slotted) freeHigh() uint16     { return binary.LittleEndian.Uint16(p.data[4:]) }
func (p slotted) setNumSlots(v uint16) { binary.LittleEndian.PutUint16(p.data[0:], v) }
func (p slotted) setFreeLow(v uint16)  { binary.LittleEndian.PutUint16(p.data[2:], v) }
func (p slotted) setFreeHigh(v uint16) { binary.LittleEndian.PutUint16(p.data[4:], v) }

func (p slotted) slot(i uint16) (off, length uint16) {
	base := pageHeaderSize + int(i)*slotSize
	return binary.LittleEndian.Uint16(p.data[base:]), binary.LittleEndian.Uint16(p.data[base+2:])
}

func (p slotted) setSlot(i uint16, off, length uint16) {
	base := pageHeaderSize + int(i)*slotSize
	binary.LittleEndian.PutUint16(p.data[base:], off)
	binary.LittleEndian.PutUint16(p.data[base+2:], length)
}

// initIfNeeded lazily formats a zeroed page as an empty slotted page.
func (p slotted) initIfNeeded() {
	if p.freeHigh() == 0 {
		p.setNumSlots(0)
		p.setFreeLow(pageHeaderSize)
		p.setFreeHigh(PageSize)
	}
}

// freeSpace returns the bytes available for a new record, accounting for the
// possible need of a fresh slot directory entry.
func (p slotted) freeSpace() int {
	space := int(p.freeHigh()) - int(p.freeLow())
	// Assume a new slot entry is needed; a reusable free slot only makes the
	// estimate conservative.
	space -= slotSize
	if space < 0 {
		return 0
	}
	return space
}

// insert places rec in the page and returns its slot. The caller must have
// verified freeSpace() >= len(rec) after a compact().
func (p slotted) insert(rec []byte) (uint16, bool) {
	n := p.numSlots()
	slot := n
	needSlot := true
	for i := uint16(0); i < n; i++ {
		if off, _ := p.slot(i); off == 0 {
			slot = i
			needSlot = false
			break
		}
	}
	low, high := int(p.freeLow()), int(p.freeHigh())
	need := len(rec)
	if needSlot {
		need += slotSize
	}
	if high-low < need {
		return 0, false
	}
	newHigh := high - len(rec)
	copy(p.data[newHigh:high], rec)
	p.setFreeHigh(uint16(newHigh))
	if needSlot {
		p.setNumSlots(n + 1)
		p.setFreeLow(uint16(low + slotSize))
	}
	p.setSlot(slot, uint16(newHigh), uint16(len(rec)))
	return slot, true
}

// read returns the record bytes stored in slot i (aliasing the page buffer).
func (p slotted) read(i uint16) ([]byte, bool) {
	if i >= p.numSlots() {
		return nil, false
	}
	off, length := p.slot(i)
	if off == 0 {
		return nil, false
	}
	return p.data[off : off+length], true
}

// del frees slot i. The record space is reclaimed on the next compact.
func (p slotted) del(i uint16) bool {
	if i >= p.numSlots() {
		return false
	}
	if off, _ := p.slot(i); off == 0 {
		return false
	}
	p.setSlot(i, 0, 0)
	return true
}

// update rewrites slot i with rec, compacting if necessary. It reports
// whether the record fit in place.
func (p slotted) update(i uint16, rec []byte) bool {
	off, length := p.slot(i)
	if off == 0 {
		return false
	}
	if int(length) >= len(rec) {
		copy(p.data[off:int(off)+len(rec)], rec)
		p.setSlot(i, off, uint16(len(rec)))
		return true
	}
	// Free the old copy, compact, and retry in place.
	p.setSlot(i, 0, 0)
	p.compact()
	low, high := int(p.freeLow()), int(p.freeHigh())
	if high-low < len(rec) {
		return false
	}
	newHigh := high - len(rec)
	copy(p.data[newHigh:high], rec)
	p.setFreeHigh(uint16(newHigh))
	p.setSlot(i, uint16(newHigh), uint16(len(rec)))
	return true
}

// compact slides all live records to the high end of the page, squeezing out
// holes left by deletions and updates.
func (p slotted) compact() {
	n := p.numSlots()
	type rec struct {
		slot uint16
		data []byte
	}
	var live []rec
	for i := uint16(0); i < n; i++ {
		off, length := p.slot(i)
		if off == 0 {
			continue
		}
		cp := make([]byte, length)
		copy(cp, p.data[off:off+length])
		live = append(live, rec{i, cp})
	}
	high := PageSize
	for _, r := range live {
		high -= len(r.data)
		copy(p.data[high:high+len(r.data)], r.data)
		p.setSlot(r.slot, uint16(high), uint16(len(r.data)))
	}
	p.setFreeHigh(uint16(high))
}

// liveBytes returns the total size of live records; used for page selection.
func (p slotted) liveBytes() int {
	total := 0
	for i := uint16(0); i < p.numSlots(); i++ {
		if off, length := p.slot(i); off != 0 {
			total += int(length)
		}
	}
	return total
}

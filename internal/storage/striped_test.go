package storage

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// driveWorkload runs a deterministic pin/unpin/new/flush mix against a pool
// and returns the resulting clock counters and hit statistics.
func driveWorkload(pool *BufferPool, clock *Clock, seed int64) (Clock, int64, int64, error) {
	rng := rand.New(rand.NewSource(seed))
	var ids []PageID
	for i := 0; i < 40; i++ {
		f, err := pool.PinNew()
		if err != nil {
			return Clock{}, 0, 0, err
		}
		f.Data[0] = byte(i)
		ids = append(ids, f.ID())
		if err := pool.Unpin(f.ID(), true); err != nil {
			return Clock{}, 0, 0, err
		}
	}
	for i := 0; i < 2000; i++ {
		id := ids[rng.Intn(len(ids))]
		f, err := pool.Pin(id)
		if err != nil {
			return Clock{}, 0, 0, err
		}
		dirty := rng.Intn(4) == 0
		if dirty {
			f.MarkDirty()
		}
		if err := pool.Unpin(id, dirty); err != nil {
			return Clock{}, 0, 0, err
		}
		if rng.Intn(100) == 0 {
			if err := pool.FlushPage(id); err != nil {
				return Clock{}, 0, 0, err
			}
		}
	}
	if err := pool.Flush(); err != nil {
		return Clock{}, 0, 0, err
	}
	h, m := pool.HitStats()
	return clock.Snapshot(), h, m, nil
}

// TestStripedPoolChargeEquivalence pins the load-bearing property of the
// lock-striped pool: the victim sequence (and therefore every simulated-clock
// counter) is identical for any shard count, because replacement uses a
// global recency stamp rather than per-shard LRU state. A single-threaded
// run over 1, 2, 4, and 16 stripes must produce bit-identical accounting.
func TestStripedPoolChargeEquivalence(t *testing.T) {
	type result struct {
		snap         Clock
		hits, misses int64
	}
	var base *result
	for _, shards := range []int{1, 2, 4, 16} {
		clock := NewClock()
		pool := NewPoolShards(NewDisk(clock), 12, shards)
		snap, h, m, err := driveWorkload(pool, clock, 7)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		r := &result{snap, h, m}
		if base == nil {
			base = r
			if base.misses == 0 || base.snap.PhysReads == 0 {
				t.Fatalf("workload never missed (misses=%d physReads=%d); eviction untested", base.misses, base.snap.PhysReads)
			}
			continue
		}
		if *r != *base {
			t.Fatalf("shards=%d diverged: got %+v, want %+v", shards, r, base)
		}
	}
}

// TestStripedPoolConcurrentHits hammers a resident working set from many
// goroutines; with the race detector this verifies the striped hit path, and
// the final accounting must balance (hits+misses == logical reads, no pins
// left).
func TestStripedPoolConcurrentHits(t *testing.T) {
	clock := NewClock()
	pool := NewPoolShards(NewDisk(clock), 64, 8)
	var ids []PageID
	for i := 0; i < 32; i++ {
		f, err := pool.PinNew()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, f.ID())
		if err := pool.Unpin(f.ID(), true); err != nil {
			t.Fatal(err)
		}
	}
	const goroutines, ops = 8, 3000
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < ops; i++ {
				id := ids[rng.Intn(len(ids))]
				if _, err := pool.Pin(id); err != nil {
					errs <- err
					return
				}
				if err := pool.Unpin(id, false); err != nil {
					errs <- err
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := pool.PinnedCount(); n != 0 {
		t.Fatalf("%d frames left pinned", n)
	}
	hits, misses := pool.HitStats()
	if hits+misses != clock.Snapshot().LogReads {
		t.Fatalf("hits(%d)+misses(%d) != logical reads(%d)", hits, misses, clock.Snapshot().LogReads)
	}
}

// TestMarkDirtyRequiresPin is the regression test for the PinDebug
// assertion: dirtying an unpinned frame must panic when the check is armed.
func TestMarkDirtyRequiresPin(t *testing.T) {
	PinDebug.Store(true)
	defer PinDebug.Store(false)
	pool, _ := newPool(4)
	f, err := pool.PinNew()
	if err != nil {
		t.Fatal(err)
	}
	f.MarkDirty() // pinned: must not fire
	if err := pool.Unpin(f.ID(), true); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MarkDirty on an unpinned frame did not panic under PinDebug")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "MarkDirty on unpinned page") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	f.MarkDirty()
}

package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive, non-blocking flock on a LOCK file inside dir.
// A second opener — another process, or a second OpenPageStore in this one —
// gets an immediate error instead of silently interleaving WAL writes with
// the first. The lock is advisory and tied to the returned descriptor, so
// it vanishes with the process however it dies; a stale LOCK file from a
// crash is harmless.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: %s is locked by another process: %w", dir, err)
	}
	return f, nil
}

// unlockDir releases a lock taken by lockDir. Closing the descriptor drops
// the flock.
func unlockDir(f *os.File) {
	if f != nil {
		f.Close()
	}
}

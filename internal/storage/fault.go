package storage

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// Scriptable fault injection. The simulated disk can be armed with a fault
// plan — a list of rules that make selected physical I/Os fail — so tests and
// the simulation harness (internal/sim) can verify that storage errors
// surface cleanly through every layer: the engine must either propagate a
// typed error or leave all invariants intact, never a partially-applied GMR
// mutation that wedges the system.
//
// Rules distinguish reads from writes, fail after the Nth matching I/O, can
// target a single heap file (pages are tagged with the name of the file that
// allocated them), and are either transient (fail a fixed number of times,
// then disarm) or persistent (fail until the plan is cleared). The historical
// Disk.FailAfter(n) hook is now a one-rule persistent plan.
//
// Snapshot reads (Disk.readSnapshot / BufferPool.ReadSnapshot) deliberately
// bypass fault injection: they model reading already-resident state, charge
// nothing, and are the read path of the deferred-rematerialization workers —
// whose faults must surface in the charged phase-2 replay so the failure is
// attributable to a deterministic I/O sequence.

// ErrInjectedFault is the typed error every injected disk failure wraps;
// tests and the simulator match it with errors.Is instead of string
// comparison.
var ErrInjectedFault = errors.New("storage: injected disk failure")

// FaultOp selects which physical I/O direction a fault rule applies to.
type FaultOp uint8

const (
	// FaultAny matches both reads and writes.
	FaultAny FaultOp = iota
	// FaultRead matches physical page reads only.
	FaultRead
	// FaultWrite matches physical page writes only.
	FaultWrite
	// FaultTornWrite matches durable data-file page writes during a
	// checkpoint apply: when it fires, the page store writes only the first
	// half of the page record (simulating a power loss mid-sector-train) and
	// reports a simulated crash. It never matches simulated in-memory I/O,
	// and FaultAny does not include it — tearing is requested explicitly.
	FaultTornWrite
)

func (op FaultOp) String() string {
	switch op {
	case FaultRead:
		return "read"
	case FaultWrite:
		return "write"
	case FaultTornWrite:
		return "torn-write"
	}
	return "any"
}

func (op FaultOp) matches(actual FaultOp) bool {
	if op == FaultTornWrite || actual == FaultTornWrite {
		return op == actual
	}
	return op == FaultAny || op == actual
}

// FaultRule makes matching physical I/Os fail. A rule observes every
// matching I/O: the first After of them succeed, every one from then on
// fails — Count times for a transient rule, indefinitely for a persistent
// one (Count == 0).
type FaultRule struct {
	// Op restricts the rule to reads or writes (FaultAny matches both).
	Op FaultOp
	// File, when non-empty, restricts the rule to pages allocated by heap
	// files whose name starts with this prefix ("RRR", "GMR:", "IDX:",
	// "objects"). Pages not owned by any heap file never match a non-empty
	// File.
	File string
	// After is the number of matching I/Os that succeed before the rule
	// starts failing.
	After int
	// Count is the number of failures a transient rule injects before
	// disarming itself; 0 makes the rule persistent until ClearFaults.
	Count int
}

func (r FaultRule) String() string {
	file := r.File
	if file == "" {
		file = "*"
	}
	life := "persistent"
	if r.Count > 0 {
		life = fmt.Sprintf("x%d", r.Count)
	}
	return fmt.Sprintf("fail-%s(file=%s after=%d %s)", r.Op, file, r.After, life)
}

// FaultPlan is a script of fault rules armed together.
type FaultPlan struct {
	Rules []FaultRule
}

func (p FaultPlan) String() string {
	parts := make([]string, len(p.Rules))
	for i, r := range p.Rules {
		parts[i] = r.String()
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// faultRule is the armed runtime state of one FaultRule.
type faultRule struct {
	FaultRule
	remaining int // matching I/Os left before the rule starts failing
	fired     int // failures injected so far
}

func (r *faultRule) expired() bool { return r.Count > 0 && r.fired >= r.Count }

// faultState is the disk's fault-injection state: the armed rules plus the
// page-owner tags per-file targeting matches against. It has its own mutex —
// physical I/O is serialized under the buffer pool's miss lock, but plans are
// armed and cleared from test code that does not hold it.
type faultState struct {
	mu     sync.Mutex
	rules  []*faultRule
	owners map[PageID]string
	// injected counts the failures injected since the last ClearFaults;
	// tests use it to verify a plan actually fired.
	injected int
}

// SetFaultPlan arms a fault plan, replacing any previous plan. An empty plan
// disarms injection.
func (d *Disk) SetFaultPlan(p FaultPlan) {
	d.faults.mu.Lock()
	defer d.faults.mu.Unlock()
	d.faults.rules = d.faults.rules[:0]
	for _, r := range p.Rules {
		d.faults.rules = append(d.faults.rules, &faultRule{FaultRule: r, remaining: r.After})
	}
	d.faults.injected = 0
}

// ClearFaults disarms every fault rule.
func (d *Disk) ClearFaults() {
	d.faults.mu.Lock()
	defer d.faults.mu.Unlock()
	d.faults.rules = d.faults.rules[:0]
	d.faults.injected = 0
}

// FaultsInjected returns the number of failures injected since the current
// plan was armed.
func (d *Disk) FaultsInjected() int {
	d.faults.mu.Lock()
	defer d.faults.mu.Unlock()
	return d.faults.injected
}

// FaultsArmed reports whether any non-expired fault rule is armed.
func (d *Disk) FaultsArmed() bool {
	d.faults.mu.Lock()
	defer d.faults.mu.Unlock()
	for _, r := range d.faults.rules {
		if !r.expired() {
			return true
		}
	}
	return false
}

// FailAfter arms the historical whole-disk fault: the next n physical I/Os
// succeed, then every subsequent read and write fails until ClearFailure.
func (d *Disk) FailAfter(n int) {
	d.SetFaultPlan(FaultPlan{Rules: []FaultRule{{Op: FaultAny, After: n}}})
}

// ClearFailure disarms fault injection (alias of ClearFaults, kept for the
// historical FailAfter pairing).
func (d *Disk) ClearFailure() { d.ClearFaults() }

// tagOwner records which heap file allocated page id, for per-file fault
// targeting.
func (d *Disk) tagOwner(id PageID, owner string) {
	if owner == "" {
		return
	}
	d.faults.mu.Lock()
	d.faults.owners[id] = owner
	d.faults.mu.Unlock()
}

// PageOwner returns the name of the heap file that allocated page id ("" if
// untagged); used by diagnostics and tests.
func (d *Disk) PageOwner(id PageID) string {
	d.faults.mu.Lock()
	defer d.faults.mu.Unlock()
	return d.faults.owners[id]
}

// CheckTornWrite consults the armed FaultTornWrite rules for one durable
// data-file page write and reports whether the write should be torn. It uses
// the same After/Count accounting as checkFault, counts a firing as an
// injected fault, and matches File prefixes against the page's heap-file
// owner tag. The page store's checkpoint apply calls it per page.
func (d *Disk) CheckTornWrite(id PageID) bool {
	d.faults.mu.Lock()
	defer d.faults.mu.Unlock()
	owner := d.faults.owners[id]
	var failing *faultRule
	for _, r := range d.faults.rules {
		if r.expired() || r.Op != FaultTornWrite {
			continue
		}
		if r.File != "" && !strings.HasPrefix(owner, r.File) {
			continue
		}
		if r.remaining > 0 {
			r.remaining--
			continue
		}
		if failing == nil {
			failing = r
		}
	}
	if failing == nil {
		return false
	}
	failing.fired++
	d.faults.injected++
	return true
}

// checkFault consults the armed fault rules for one physical I/O. Every rule
// observes every I/O it matches, so independent rules count down their After
// budgets concurrently; the first rule that has exhausted its budget injects
// the failure.
func (d *Disk) checkFault(op FaultOp, id PageID) error {
	d.faults.mu.Lock()
	defer d.faults.mu.Unlock()
	if len(d.faults.rules) == 0 {
		return nil
	}
	owner := d.faults.owners[id]
	var failing *faultRule
	for _, r := range d.faults.rules {
		if r.expired() || !r.Op.matches(op) {
			continue
		}
		if r.File != "" && !strings.HasPrefix(owner, r.File) {
			continue
		}
		if r.remaining > 0 {
			r.remaining--
			continue
		}
		if failing == nil {
			failing = r
		}
	}
	if failing == nil {
		return nil
	}
	failing.fired++
	d.faults.injected++
	if owner == "" {
		owner = "<untagged>"
	}
	return fmt.Errorf("%w: %s of page %d (%s)", ErrInjectedFault, op, id, owner)
}

package storage

import "fmt"

// HeapFile is an unordered file of variable-length records stored in slotted
// pages. Records are addressed by stable RIDs. Object extensions, GMR
// extensions, and the RRR are all heap files, so every access to them flows
// through the buffer pool and is charged to the simulated clock.
type HeapFile struct {
	pool  *BufferPool
	pages []PageID
	name  string

	// writeThrough applies the FORCE policy: every mutation is written to
	// disk immediately (NewForcedHeapFile). Used for the GMR manager's
	// auxiliary structures, whose update cost the paper measures.
	writeThrough bool

	// freeHint caches the index into pages of the last page an insert
	// succeeded on, so sequential loads cluster records — the paper relies
	// on a Cuboid and its Vertex instances being created together landing
	// on the same page.
	freeHint int
	count    int
}

// NewHeapFile creates an empty heap file named name (for diagnostics) backed
// by pool.
func NewHeapFile(pool *BufferPool, name string) *HeapFile {
	return &HeapFile{pool: pool, name: name, freeHint: -1}
}

// NewForcedHeapFile creates a heap file with the FORCE write policy: every
// mutating operation flushes the touched page to disk.
func NewForcedHeapFile(pool *BufferPool, name string) *HeapFile {
	return &HeapFile{pool: pool, name: name, freeHint: -1, writeThrough: true}
}

// HeapDir is the persistent directory of a heap file: everything needed to
// reconstruct the HeapFile handle over already-restored pages. It is part of
// the durable checkpoint's metadata blob.
type HeapDir struct {
	Name     string   `json:"name"`
	Pages    []PageID `json:"pages,omitempty"`
	FreeHint int      `json:"freeHint"`
	Count    int      `json:"count"`
}

// Directory captures the heap file's persistent directory.
func (h *HeapFile) Directory() HeapDir {
	return HeapDir{
		Name:     h.name,
		Pages:    append([]PageID(nil), h.pages...),
		FreeHint: h.freeHint,
		Count:    h.count,
	}
}

// RestoreHeapFile reconstructs a heap file from its persisted directory. The
// pages themselves must already be present on the (restored) disk; the pages
// are re-tagged with the file's owner name so per-file fault targeting keeps
// working after recovery.
func RestoreHeapFile(pool *BufferPool, dir HeapDir, writeThrough bool) *HeapFile {
	h := &HeapFile{
		pool:         pool,
		pages:        append([]PageID(nil), dir.Pages...),
		name:         dir.Name,
		writeThrough: writeThrough,
		freeHint:     dir.FreeHint,
		count:        dir.Count,
	}
	for _, id := range h.pages {
		pool.disk.tagOwner(id, h.name)
	}
	return h
}

// unpinDirty releases a dirtied page, forcing it to disk under the FORCE
// policy.
func (h *HeapFile) unpinDirty(id PageID) error {
	if err := h.pool.Unpin(id, true); err != nil {
		return err
	}
	if h.writeThrough {
		return h.pool.FlushPage(id)
	}
	return nil
}

// Name returns the diagnostic name of the file.
func (h *HeapFile) Name() string { return h.name }

// Count returns the number of live records.
func (h *HeapFile) Count() int { return h.count }

// NumPages returns the number of pages owned by the file.
func (h *HeapFile) NumPages() int { return len(h.pages) }

// maxRecordSize is the largest record a heap file accepts: one page minus
// header and one slot entry.
const maxRecordSize = PageSize - pageHeaderSize - slotSize

// Insert stores rec and returns its RID.
func (h *HeapFile) Insert(rec []byte) (RID, error) {
	if len(rec) > maxRecordSize {
		return RID{}, fmt.Errorf("storage: record of %d bytes exceeds page capacity in %s", len(rec), h.name)
	}
	// Try the hinted page first, then fall back to a fresh page. Trying
	// every existing page would both thrash the buffer pool and destroy the
	// creation-order clustering the cost model depends on. insertSlack
	// bytes are left free on each page so records that later grow (e.g. by
	// an ObjDepFct mark) can be updated in place instead of relocating —
	// relocation would decluster objects from their subobjects.
	const insertSlack = PageSize / 8
	if h.freeHint >= 0 && h.freeHint < len(h.pages) {
		id := h.pages[h.freeHint]
		f, err := h.pool.Pin(id)
		if err != nil {
			return RID{}, err
		}
		var slot uint16
		inserted := false
		h.pool.MutatePage(f, func() {
			p := slotted{&f.Data}
			p.initIfNeeded()
			if p.freeSpace() >= len(rec)+insertSlack {
				p.compact()
				slot, inserted = p.insert(rec)
			}
		})
		if inserted {
			if err := h.unpinDirty(id); err != nil {
				return RID{}, err
			}
			h.count++
			return RID{Page: id, Slot: slot}, nil
		}
		if err := h.pool.Unpin(id, false); err != nil {
			return RID{}, err
		}
	}
	f, err := h.pool.PinNewOwned(h.name)
	if err != nil {
		return RID{}, err
	}
	var slot uint16
	var ok bool
	h.pool.MutatePage(f, func() {
		p := slotted{&f.Data}
		p.initIfNeeded()
		slot, ok = p.insert(rec)
	})
	if !ok {
		if err := h.pool.Unpin(f.ID(), false); err != nil {
			return RID{}, err
		}
		return RID{}, fmt.Errorf("storage: record of %d bytes does not fit fresh page in %s", len(rec), h.name)
	}
	if err := h.unpinDirty(f.ID()); err != nil {
		return RID{}, err
	}
	h.pages = append(h.pages, f.ID())
	h.freeHint = len(h.pages) - 1
	h.count++
	return RID{Page: f.ID(), Slot: slot}, nil
}

// Read returns a copy of the record stored at rid.
func (h *HeapFile) Read(rid RID) ([]byte, error) {
	f, err := h.pool.Pin(rid.Page)
	if err != nil {
		return nil, err
	}
	p := slotted{&f.Data}
	data, ok := p.read(rid.Slot)
	var out []byte
	if ok {
		out = make([]byte, len(data))
		copy(out, data)
	}
	if err := h.pool.Unpin(rid.Page, false); err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("storage: no record at %v in %s", rid, h.name)
	}
	return out, nil
}

// ReadSnapshot returns a copy of the record stored at rid without pinning,
// charging, or disturbing the buffer pool — the charge-free read path of the
// deferred-rematerialization workers (see BufferPool.ReadSnapshot for the
// no-concurrent-writer contract).
func (h *HeapFile) ReadSnapshot(rid RID) ([]byte, error) {
	var page [PageSize]byte
	if err := h.pool.ReadSnapshot(rid.Page, &page); err != nil {
		return nil, err
	}
	p := slotted{&page}
	data, ok := p.read(rid.Slot)
	if !ok {
		return nil, fmt.Errorf("storage: no record at %v in %s", rid, h.name)
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// ReadVersioned returns a copy of the record stored at rid as of MVCC
// version ver — charge-free like ReadSnapshot, but safe concurrently with a
// writer: the page state is reconstructed from the copy-on-write page
// overlay (see BufferPool.ReadVersioned).
func (h *HeapFile) ReadVersioned(rid RID, ver uint64) ([]byte, error) {
	var page [PageSize]byte
	if err := h.pool.ReadVersioned(rid.Page, ver, &page); err != nil {
		return nil, err
	}
	p := slotted{&page}
	data, ok := p.read(rid.Slot)
	if !ok {
		return nil, fmt.Errorf("storage: no record at %v in %s", rid, h.name)
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// Update rewrites the record at rid. If the new record no longer fits on its
// page the record moves and the new RID is returned; the caller must update
// any mapping it keeps.
func (h *HeapFile) Update(rid RID, rec []byte) (RID, error) {
	if len(rec) > maxRecordSize {
		return RID{}, fmt.Errorf("storage: record of %d bytes exceeds page capacity in %s", len(rec), h.name)
	}
	f, err := h.pool.Pin(rid.Page)
	if err != nil {
		return RID{}, err
	}
	updated := false
	h.pool.MutatePage(f, func() {
		p := slotted{&f.Data}
		if p.update(rid.Slot, rec) {
			updated = true
			return
		}
		// Does not fit: delete here, insert elsewhere (below).
		p.del(rid.Slot)
	})
	if updated {
		if err := h.unpinDirty(rid.Page); err != nil {
			return RID{}, err
		}
		return rid, nil
	}
	if err := h.unpinDirty(rid.Page); err != nil {
		return RID{}, err
	}
	h.count--
	return h.Insert(rec)
}

// Delete removes the record at rid.
func (h *HeapFile) Delete(rid RID) error {
	f, err := h.pool.Pin(rid.Page)
	if err != nil {
		return err
	}
	var ok bool
	h.pool.MutatePage(f, func() {
		p := slotted{&f.Data}
		ok = p.del(rid.Slot)
	})
	if !ok {
		if err := h.pool.Unpin(rid.Page, false); err != nil {
			return err
		}
		return fmt.Errorf("storage: delete of missing record %v in %s", rid, h.name)
	}
	if err := h.unpinDirty(rid.Page); err != nil {
		return err
	}
	h.count--
	return nil
}

// Relocate rewrites the file's records into fresh pages in exactly the given
// order and returns the old-RID → new-RID mapping. order must name every
// live record exactly once — relocation is a whole-file operation, so the
// caller (the clustering pass) decides the complete placement. The move is
// all-or-nothing: phase 1 reads every record through the charged buffer-pool
// path (in order, so the simulated cost is deterministic); phase 2 packs the
// records into freshly allocated pages with the same insertSlack headroom
// the insert path leaves. Only after both phases succeed are the old pages
// freed and the page list swapped; a fault in either phase aborts with the
// file unchanged (phase-2 pages allocated so far are returned to the disk).
func (h *HeapFile) Relocate(order []RID) (map[RID]RID, error) {
	if len(order) != h.count {
		return nil, fmt.Errorf("storage: relocate order names %d records, %s holds %d",
			len(order), h.name, h.count)
	}
	// Phase 1: read everything in target order (charged).
	recs := make([][]byte, len(order))
	seen := make(map[RID]struct{}, len(order))
	for i, rid := range order {
		if _, dup := seen[rid]; dup {
			return nil, fmt.Errorf("storage: relocate order repeats record %v in %s", rid, h.name)
		}
		seen[rid] = struct{}{}
		rec, err := h.Read(rid)
		if err != nil {
			return nil, err
		}
		recs[i] = rec
	}
	// Phase 2: pack into fresh pages. abort unwinds every new page on error.
	var newPages []PageID
	var cur *Frame
	abort := func(err error) (map[RID]RID, error) {
		if cur != nil {
			_ = h.pool.Unpin(cur.ID(), true)
		}
		for _, id := range newPages {
			_ = h.pool.FreePage(id)
		}
		return nil, err
	}
	const insertSlack = PageSize / 8
	remap := make(map[RID]RID, len(order))
	for i, rec := range recs {
		var slot uint16
		inserted := false
		if cur != nil {
			h.pool.MutatePage(cur, func() {
				p := slotted{&cur.Data}
				if p.freeSpace() >= len(rec)+insertSlack {
					slot, inserted = p.insert(rec)
				}
			})
		}
		if !inserted {
			if cur != nil {
				if err := h.unpinDirty(cur.ID()); err != nil {
					cur = nil
					return abort(err)
				}
				cur = nil
			}
			f, err := h.pool.PinNewOwned(h.name)
			if err != nil {
				return abort(err)
			}
			cur = f
			newPages = append(newPages, f.ID())
			h.pool.MutatePage(cur, func() {
				p := slotted{&cur.Data}
				p.initIfNeeded()
				slot, inserted = p.insert(rec)
			})
			if !inserted {
				return abort(fmt.Errorf("storage: record of %d bytes does not fit fresh page in %s",
					len(rec), h.name))
			}
		}
		remap[order[i]] = RID{Page: cur.ID(), Slot: slot}
	}
	if cur != nil {
		if err := h.unpinDirty(cur.ID()); err != nil {
			cur = nil
			return abort(err)
		}
		cur = nil
	}
	// Commit: release the old pages and adopt the new layout.
	old := h.pages
	h.pages = newPages
	h.freeHint = len(h.pages) - 1
	for _, id := range old {
		if err := h.pool.FreePage(id); err != nil {
			return nil, err
		}
	}
	return remap, nil
}

// Compact rewrites the file's records in their current scan order — a
// relocation that preserves placement but squeezes out the slack deleted
// records left behind, returning emptied pages to the disk's free list. The
// scan that discovers the order is charged like any other scan.
func (h *HeapFile) Compact() (map[RID]RID, error) {
	order := make([]RID, 0, h.count)
	if err := h.Scan(func(rid RID, _ []byte) bool {
		order = append(order, rid)
		return true
	}); err != nil {
		return nil, err
	}
	return h.Relocate(order)
}

// ProbePage models a hashed-access probe: it reads the bucket page selected
// by hash (charging the page access) without interpreting its contents. The
// RRR uses it to charge lookups that find nothing — the paper's point in
// Section 5.2 is precisely that such probes are not free.
func (h *HeapFile) ProbePage(hash uint64) error {
	if len(h.pages) == 0 {
		return nil
	}
	id := h.pages[hash%uint64(len(h.pages))]
	if _, err := h.pool.Pin(id); err != nil {
		return err
	}
	return h.pool.Unpin(id, false)
}

// Scan calls fn for every live record in page order. The record slice is
// only valid during the callback. Iteration stops early if fn returns false.
func (h *HeapFile) Scan(fn func(RID, []byte) bool) error {
	for _, id := range h.pages {
		f, err := h.pool.Pin(id)
		if err != nil {
			return err
		}
		p := slotted{&f.Data}
		n := p.numSlots()
		stop := false
		for i := uint16(0); i < n && !stop; i++ {
			if data, ok := p.read(i); ok {
				if !fn(RID{Page: id, Slot: i}, data) {
					stop = true
				}
			}
		}
		if err := h.pool.Unpin(id, false); err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// Package storage implements the paged storage substrate underneath the
// object base: a simulated disk, an LRU buffer pool, slotted pages, and heap
// files of variable-length records.
//
// It stands in for the EXODUS storage manager the paper's GOM prototype was
// built on. The disk is simulated: pages live in memory, but every physical
// read and write is counted and charged to a simulated clock (25 ms per I/O
// by default, the paper's DEC disk figure). All benchmark "times" reported by
// this reproduction are simulated seconds derived from those counters, so the
// cost model — a small buffer pool in front of a slow disk — matches the
// paper's measurement setup without requiring real hardware.
package storage

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// PageSize is the size of a disk page in bytes.
const PageSize = 4096

// PageID identifies a page on the simulated disk. Zero is never allocated.
type PageID uint32

// Default cost-model constants. The I/O cost follows the paper's 25 ms
// average access time; the CPU cost charges the interpreter and record
// (de)serialization work that would otherwise be free in a simulation.
const (
	DefaultIOCostMicros  = 25_000 // 25 ms per physical page read or write
	DefaultCPUCostMicros = 2      // 2 us per charged CPU operation
)

// Clock accumulates simulated work. The buffer pool charges physical I/Os;
// higher layers charge CPU operations (interpreter steps, comparisons,
// serialization). SimSeconds converts the counters into simulated time.
//
// The counters are mutated with atomic adds so that concurrent read-path
// queries (which charge CPU and logical-read work under the Database read
// lock) keep the accounting exact. The fields stay plain int64 so that
// snapshots remain value copies; Snapshot, SimMicros, and Sub use atomic
// loads so they are safe to call while other goroutines are charging.
type Clock struct {
	PhysReads  int64
	PhysWrites int64
	LogReads   int64
	LogWrites  int64
	CPUOps     int64

	IOCostMicros  int64
	CPUCostMicros int64
}

// NewClock returns a clock with the default cost constants.
func NewClock() *Clock {
	return &Clock{IOCostMicros: DefaultIOCostMicros, CPUCostMicros: DefaultCPUCostMicros}
}

// AddCPU charges n CPU operations.
func (c *Clock) AddCPU(n int64) { atomic.AddInt64(&c.CPUOps, n) }

func (c *Clock) addPhysRead()  { atomic.AddInt64(&c.PhysReads, 1) }
func (c *Clock) addPhysWrite() { atomic.AddInt64(&c.PhysWrites, 1) }
func (c *Clock) addLogRead()   { atomic.AddInt64(&c.LogReads, 1) }
func (c *Clock) addLogWrite()  { atomic.AddInt64(&c.LogWrites, 1) }

// SimMicros returns the total simulated microseconds of work charged so far.
func (c *Clock) SimMicros() int64 {
	ios := atomic.LoadInt64(&c.PhysReads) + atomic.LoadInt64(&c.PhysWrites)
	return ios*c.IOCostMicros + atomic.LoadInt64(&c.CPUOps)*c.CPUCostMicros
}

// SimSeconds returns the total simulated seconds of work charged so far.
func (c *Clock) SimSeconds() float64 { return float64(c.SimMicros()) / 1e6 }

// Snapshot returns a copy of the current counters.
func (c *Clock) Snapshot() Clock {
	return Clock{
		PhysReads:     atomic.LoadInt64(&c.PhysReads),
		PhysWrites:    atomic.LoadInt64(&c.PhysWrites),
		LogReads:      atomic.LoadInt64(&c.LogReads),
		LogWrites:     atomic.LoadInt64(&c.LogWrites),
		CPUOps:        atomic.LoadInt64(&c.CPUOps),
		IOCostMicros:  c.IOCostMicros,
		CPUCostMicros: c.CPUCostMicros,
	}
}

// Sub returns the work performed since an earlier snapshot.
func (c *Clock) Sub(earlier Clock) Clock {
	d := c.Snapshot()
	d.PhysReads -= earlier.PhysReads
	d.PhysWrites -= earlier.PhysWrites
	d.LogReads -= earlier.LogReads
	d.LogWrites -= earlier.LogWrites
	d.CPUOps -= earlier.CPUOps
	return d
}

// Disk is the simulated disk: a growable array of pages plus I/O counters.
// It is only accessed through a BufferPool. Fault injection — scriptable
// plans that make selected physical I/Os fail — lives in fault.go.
//
// With durability enabled (EnableDurability, done by gomdb.OpenAt) the disk
// additionally tracks which pages have been written since the last durable
// checkpoint, and recycles page ids freed by a recovery restore. Neither
// mechanism charges the simulated clock or changes the allocation sequence of
// a fresh database, so the cost model is bit-identical whether durability is
// on or off.
type Disk struct {
	pages map[PageID]*[PageSize]byte
	next  PageID
	clock *Clock

	// free holds the page ids below next that are currently unallocated:
	// ids a recovery restore reclaimed (pages of dropped GMR/RRR/index
	// incarnations) and ids returned through Free (pages a heap relocation
	// or compaction released). Kept as coalesced extents sorted ascending
	// by start and consumed lowest-id-first, so allocation stays
	// deterministic and adjacent frees collapse into one extent instead of
	// fragmenting the accounting forever.
	free []freeExtent

	// durDirty, non-nil only when durability is enabled, is the set of pages
	// allocated or physically written since the last checkpoint — the pages
	// the next checkpoint must capture. Mutated under the buffer pool's miss
	// lock (all physical I/O is) and drained under the exclusive Database
	// lock.
	durDirty map[PageID]struct{}

	faults faultState
}

// NewDisk returns an empty disk charging I/O to clock.
func NewDisk(clock *Clock) *Disk {
	return &Disk{
		pages:  make(map[PageID]*[PageSize]byte),
		next:   1,
		clock:  clock,
		faults: faultState{owners: make(map[PageID]string)},
	}
}

// EnableDurability switches on dirty-page tracking for durable checkpoints.
func (d *Disk) EnableDurability() {
	if d.durDirty == nil {
		d.durDirty = make(map[PageID]struct{})
	}
}

// freeExtent is a run of Len consecutive unallocated page ids starting at
// Start. The free list keeps extents sorted and maximally coalesced: no two
// extents touch or overlap.
type freeExtent struct {
	Start PageID
	Len   PageID
}

// Allocate reserves a fresh zeroed page and returns its id, reusing freed ids
// (recovery restores, heap relocations) lowest-first before growing the
// address space. Allocation itself is not charged; the first write is.
func (d *Disk) Allocate() PageID {
	var id PageID
	if len(d.free) > 0 {
		id = d.free[0].Start
		d.free[0].Start++
		d.free[0].Len--
		if d.free[0].Len == 0 {
			d.free = d.free[1:]
		}
	} else {
		id = d.next
		d.next++
	}
	d.pages[id] = new([PageSize]byte)
	if d.durDirty != nil {
		d.durDirty[id] = struct{}{}
	}
	return id
}

// Free returns an allocated page to the free list, coalescing it with
// adjacent free extents. The page's content is discarded and the id becomes
// eligible for reuse by the next Allocate; a freed page is also dropped from
// the durable dirty set, so a checkpoint never tries to capture it. Freeing
// is bookkeeping, not I/O — nothing is charged to the simulated clock.
func (d *Disk) Free(id PageID) error {
	if _, ok := d.pages[id]; !ok {
		return fmt.Errorf("storage: free of unallocated page %d", id)
	}
	delete(d.pages, id)
	if d.durDirty != nil {
		delete(d.durDirty, id)
	}
	// Find the first extent starting after id, then merge with the
	// neighbors when they touch.
	i := sort.Search(len(d.free), func(i int) bool { return d.free[i].Start > id })
	mergePrev := i > 0 && d.free[i-1].Start+d.free[i-1].Len == id
	mergeNext := i < len(d.free) && id+1 == d.free[i].Start
	switch {
	case mergePrev && mergeNext:
		d.free[i-1].Len += 1 + d.free[i].Len
		d.free = append(d.free[:i], d.free[i+1:]...)
	case mergePrev:
		d.free[i-1].Len++
	case mergeNext:
		d.free[i].Start--
		d.free[i].Len++
	default:
		d.free = append(d.free, freeExtent{})
		copy(d.free[i+1:], d.free[i:])
		d.free[i] = freeExtent{Start: id, Len: 1}
	}
	return nil
}

// FreePageCount returns the total number of unallocated page ids below next
// — the reclaimed address space available for reuse.
func (d *Disk) FreePageCount() int {
	n := PageID(0)
	for _, e := range d.free {
		n += e.Len
	}
	return int(n)
}

// FreeExtentCount returns the number of maximal free extents. A delete-heavy
// workload followed by compaction should leave few, large extents; the
// fragmentation regression test pins this.
func (d *Disk) FreeExtentCount() int { return len(d.free) }

// NumPages returns the number of allocated pages.
func (d *Disk) NumPages() int { return len(d.pages) }

func (d *Disk) read(id PageID, dst *[PageSize]byte) error {
	if err := d.checkFault(FaultRead, id); err != nil {
		return err
	}
	p, ok := d.pages[id]
	if !ok {
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	d.clock.addPhysRead()
	*dst = *p
	return nil
}

// readSnapshot copies a page without charging the clock, counting the I/O,
// or consulting fault injection — the un-simulated read underneath
// BufferPool.ReadSnapshot. Safe for concurrent readers as long as no writer
// runs (snapshot reads happen under the Database write lock).
func (d *Disk) readSnapshot(id PageID, dst *[PageSize]byte) error {
	p, ok := d.pages[id]
	if !ok {
		return fmt.Errorf("storage: snapshot read of unallocated page %d", id)
	}
	*dst = *p
	return nil
}

func (d *Disk) write(id PageID, src *[PageSize]byte) error {
	if err := d.checkFault(FaultWrite, id); err != nil {
		return err
	}
	p, ok := d.pages[id]
	if !ok {
		return fmt.Errorf("storage: write of unallocated page %d", id)
	}
	d.clock.addPhysWrite()
	*p = *src
	if d.durDirty != nil {
		d.durDirty[id] = struct{}{}
	}
	return nil
}

// NextPage returns the id the next fresh allocation would receive when the
// free list is empty — the durable checkpoint records it so a restored disk
// continues the same id sequence.
func (d *Disk) NextPage() PageID { return d.next }

// DurableDirty returns the sorted ids of pages written or allocated since the
// last checkpoint. Callers must hold the exclusive Database lock (no
// concurrent physical I/O).
func (d *Disk) DurableDirty() []PageID {
	out := make([]PageID, 0, len(d.durDirty))
	for id := range d.durDirty {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ClearDurableDirty resets the dirty set after a checkpoint committed.
func (d *Disk) ClearDurableDirty() {
	for id := range d.durDirty {
		delete(d.durDirty, id)
	}
}

// Restore replaces the disk's contents with the live pages of a recovered
// image: every id in live is copied from img, next continues the persisted
// allocation sequence, and ids below next that are not live (pages of the
// previous incarnation's derived structures) become the free list, so the
// data file's address space is reclaimed instead of growing forever. The
// restored pages are not marked durably dirty — they are already in the data
// file.
func (d *Disk) Restore(img map[PageID]*[PageSize]byte, live []PageID, next PageID) error {
	pages := make(map[PageID]*[PageSize]byte, len(live))
	for _, id := range live {
		src, ok := img[id]
		if !ok {
			return fmt.Errorf("storage: restore: live page %d missing from recovered image", id)
		}
		cp := new([PageSize]byte)
		*cp = *src
		pages[id] = cp
	}
	var free []freeExtent
	for id := PageID(1); id < next; id++ {
		if _, ok := pages[id]; !ok {
			if n := len(free); n > 0 && free[n-1].Start+free[n-1].Len == id {
				free[n-1].Len++
			} else {
				free = append(free, freeExtent{Start: id, Len: 1})
			}
		}
	}
	d.pages = pages
	d.next = next
	d.free = free
	if d.durDirty != nil {
		d.ClearDurableDirty()
	}
	return nil
}

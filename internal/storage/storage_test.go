package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func newPool(frames int) (*BufferPool, *Clock) {
	clock := NewClock()
	disk := NewDisk(clock)
	return NewPool(disk, frames), clock
}

func TestSlottedPageBasics(t *testing.T) {
	var data [PageSize]byte
	p := slotted{&data}
	p.initIfNeeded()
	s1, ok := p.insert([]byte("hello"))
	if !ok {
		t.Fatal("insert failed")
	}
	s2, ok := p.insert([]byte("world!"))
	if !ok {
		t.Fatal("insert failed")
	}
	if b, _ := p.read(s1); string(b) != "hello" {
		t.Fatalf("read s1 = %q", b)
	}
	if b, _ := p.read(s2); string(b) != "world!" {
		t.Fatalf("read s2 = %q", b)
	}
	// Delete frees the slot for reuse.
	if !p.del(s1) {
		t.Fatal("del failed")
	}
	if _, ok := p.read(s1); ok {
		t.Fatal("read of deleted slot succeeded")
	}
	if p.del(s1) {
		t.Fatal("double delete succeeded")
	}
	s3, ok := p.insert([]byte("x"))
	if !ok || s3 != s1 {
		t.Fatalf("slot not reused: got %d, want %d", s3, s1)
	}
	// In-place update, shrink and grow.
	if !p.update(s2, []byte("hi")) {
		t.Fatal("shrinking update failed")
	}
	if b, _ := p.read(s2); string(b) != "hi" {
		t.Fatalf("after shrink: %q", b)
	}
	if !p.update(s2, bytes.Repeat([]byte("y"), 100)) {
		t.Fatal("growing update failed")
	}
	if b, _ := p.read(s2); len(b) != 100 {
		t.Fatalf("after grow: %d bytes", len(b))
	}
}

func TestSlottedPageCompaction(t *testing.T) {
	var data [PageSize]byte
	p := slotted{&data}
	p.initIfNeeded()
	var slots []uint16
	rec := bytes.Repeat([]byte("z"), 100)
	for {
		s, ok := p.insert(rec)
		if !ok {
			break
		}
		slots = append(slots, s)
	}
	if len(slots) < 30 {
		t.Fatalf("only %d records fit", len(slots))
	}
	// Delete every other record; compaction should make room again.
	for i := 0; i < len(slots); i += 2 {
		p.del(slots[i])
	}
	p.compact()
	n := 0
	for {
		if _, ok := p.insert(rec); !ok {
			break
		}
		n++
	}
	if n < len(slots)/2-1 {
		t.Fatalf("after compaction only %d inserts fit", n)
	}
	// Survivors intact.
	for i := 1; i < len(slots); i += 2 {
		if b, ok := p.read(slots[i]); !ok || !bytes.Equal(b, rec) {
			t.Fatalf("survivor %d damaged", slots[i])
		}
	}
}

func TestHeapFileCRUD(t *testing.T) {
	pool, _ := newPool(10)
	h := NewHeapFile(pool, "t")
	var rids []RID
	for i := 0; i < 500; i++ {
		rid, err := h.Insert([]byte(fmt.Sprintf("record-%04d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if h.Count() != 500 {
		t.Fatalf("count = %d", h.Count())
	}
	for i, rid := range rids {
		b, err := h.Read(rid)
		if err != nil || string(b) != fmt.Sprintf("record-%04d", i) {
			t.Fatalf("read %d: %q, %v", i, b, err)
		}
	}
	// Update that grows beyond the page moves the record.
	big := bytes.Repeat([]byte("B"), 3000)
	newRID, err := h.Update(rids[0], big)
	if err != nil {
		t.Fatal(err)
	}
	if b, err := h.Read(newRID); err != nil || len(b) != 3000 {
		t.Fatalf("moved record: %d bytes, %v", len(b), err)
	}
	// Delete and scan.
	if err := h.Delete(rids[1]); err != nil {
		t.Fatal(err)
	}
	if err := h.Delete(rids[1]); err == nil {
		t.Fatal("double delete succeeded")
	}
	seen := 0
	if err := h.Scan(func(RID, []byte) bool { seen++; return true }); err != nil {
		t.Fatal(err)
	}
	if seen != 499 {
		t.Fatalf("scan saw %d records, want 499", seen)
	}
}

func TestHeapFileRejectsOversizeRecord(t *testing.T) {
	pool, _ := newPool(4)
	h := NewHeapFile(pool, "t")
	if _, err := h.Insert(make([]byte, PageSize)); err == nil {
		t.Fatal("oversize insert succeeded")
	}
	rid, err := h.Insert([]byte("ok"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Update(rid, make([]byte, PageSize)); err == nil {
		t.Fatal("oversize update succeeded")
	}
}

func TestBufferPoolLRUAndCounters(t *testing.T) {
	clock := NewClock()
	disk := NewDisk(clock)
	pool := NewPool(disk, 3)
	var ids []PageID
	for i := 0; i < 5; i++ {
		f, err := pool.PinNew()
		if err != nil {
			t.Fatal(err)
		}
		f.Data[0] = byte(i)
		pool.Unpin(f.ID(), true)
		ids = append(ids, f.ID())
	}
	// Pages 0 and 1 must have been evicted (written back).
	if pool.Resident(ids[0]) || pool.Resident(ids[1]) {
		t.Fatal("LRU did not evict oldest pages")
	}
	if clock.PhysWrites != 2 {
		t.Fatalf("expected 2 write-backs, got %d", clock.PhysWrites)
	}
	// Re-reading an evicted page is a physical read with intact contents.
	f, err := pool.Pin(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if f.Data[0] != 0 {
		t.Fatalf("page contents lost: %d", f.Data[0])
	}
	pool.Unpin(ids[0], false)
	if clock.PhysReads != 1 {
		t.Fatalf("expected 1 physical read, got %d", clock.PhysReads)
	}
	if hits, misses := pool.HitStats(); hits == 0 && misses == 0 {
		t.Fatal("hit/miss counters not maintained")
	}
}

func TestBufferPoolPinnedPagesNotEvicted(t *testing.T) {
	pool, _ := newPool(2)
	f1, _ := pool.PinNew()
	f2, _ := pool.PinNew()
	// Both frames pinned: a third pin must fail.
	if _, err := pool.PinNew(); err == nil {
		t.Fatal("pool allowed eviction of pinned page")
	}
	pool.Unpin(f1.ID(), false)
	f3, err := pool.PinNew()
	if err != nil {
		t.Fatal(err)
	}
	if pool.Resident(f1.ID()) {
		t.Fatal("unpinned page not chosen for eviction")
	}
	if !pool.Resident(f2.ID()) || !pool.Resident(f3.ID()) {
		t.Fatal("wrong page evicted")
	}
	if pool.PinnedCount() != 2 {
		t.Fatalf("pinned count = %d", pool.PinnedCount())
	}
}

func TestUnpinErrorsOnMisuse(t *testing.T) {
	pool, _ := newPool(2)
	f, _ := pool.PinNew()
	if err := pool.Unpin(f.ID(), false); err != nil {
		t.Fatal(err)
	}
	if err := pool.Unpin(f.ID(), false); err == nil {
		t.Fatal("double unpin did not report an error")
	}
	if err := pool.Unpin(PageID(9999), false); err == nil {
		t.Fatal("unpin of unbuffered page did not report an error")
	}
	// Misuse must not corrupt the pool: the frame stays resident and usable.
	if !pool.Resident(f.ID()) {
		t.Fatal("frame lost after unpin misuse")
	}
	if pool.PinnedCount() != 0 {
		t.Fatalf("pinned count = %d after misuse", pool.PinnedCount())
	}
}

func TestWriteThroughForcesPages(t *testing.T) {
	clock := NewClock()
	disk := NewDisk(clock)
	pool := NewPool(disk, 10)
	forced := NewForcedHeapFile(pool, "forced")
	buffered := NewHeapFile(pool, "buffered")

	if _, err := forced.Insert([]byte("a")); err != nil {
		t.Fatal(err)
	}
	forcedWrites := clock.PhysWrites
	if forcedWrites == 0 {
		t.Fatal("forced insert did not write through")
	}
	if _, err := buffered.Insert([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if clock.PhysWrites != forcedWrites {
		t.Fatal("buffered insert wrote through")
	}
}

func TestClockAccounting(t *testing.T) {
	clock := NewClock()
	clock.PhysReads = 4
	clock.PhysWrites = 2
	clock.AddCPU(1000)
	wantMicros := int64(6*DefaultIOCostMicros + 1000*DefaultCPUCostMicros)
	if clock.SimMicros() != wantMicros {
		t.Fatalf("SimMicros = %d, want %d", clock.SimMicros(), wantMicros)
	}
	snap := clock.Snapshot()
	clock.PhysReads += 10
	d := clock.Sub(snap)
	if d.PhysReads != 10 || d.PhysWrites != 0 || d.CPUOps != 0 {
		t.Fatalf("Sub = %+v", d)
	}
}

func TestProbePageChargesRead(t *testing.T) {
	clock := NewClock()
	disk := NewDisk(clock)
	pool := NewPool(disk, 2)
	h := NewHeapFile(pool, "p")
	// Empty file: probe is a no-op.
	if err := h.ProbePage(7); err != nil {
		t.Fatal(err)
	}
	if clock.LogReads != 0 {
		t.Fatal("probe of empty file charged a read")
	}
	for i := 0; i < 200; i++ {
		if _, err := h.Insert(make([]byte, 300)); err != nil {
			t.Fatal(err)
		}
	}
	before := clock.LogReads
	if err := h.ProbePage(12345); err != nil {
		t.Fatal(err)
	}
	if clock.LogReads != before+1 {
		t.Fatalf("probe charged %d logical reads", clock.LogReads-before)
	}
}

func TestFaultInjectionAtStorageLevel(t *testing.T) {
	clock := NewClock()
	disk := NewDisk(clock)
	pool := NewPool(disk, 1) // single frame: every access is physical
	h := NewHeapFile(pool, "f")
	rid1, err := h.Insert([]byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	rid2, err := h.Insert(make([]byte, 4000)) // forces a second page
	if err != nil {
		t.Fatal(err)
	}
	disk.FailAfter(1)
	// First physical I/O still succeeds, then everything fails.
	sawErr := false
	for i := 0; i < 4; i++ {
		if _, err := h.Read(rid1); err != nil {
			sawErr = true
			break
		}
		if _, err := h.Read(rid2); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("injected failure never surfaced")
	}
	disk.ClearFailure()
	if _, err := h.Read(rid1); err != nil {
		t.Fatalf("read after recovery: %v", err)
	}
}

// TestQuickHeapAgainstReference drives random heap operations against a map
// reference.
func TestQuickHeapAgainstReference(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pool, _ := newPool(5)
		h := NewHeapFile(pool, "q")
		ref := map[RID][]byte{}
		var rids []RID
		for i := 0; i < 300; i++ {
			switch rng.Intn(4) {
			case 0, 1: // insert
				rec := make([]byte, 1+rng.Intn(400))
				rng.Read(rec)
				rid, err := h.Insert(rec)
				if err != nil {
					return false
				}
				ref[rid] = rec
				rids = append(rids, rid)
			case 2: // update
				if len(rids) == 0 {
					continue
				}
				rid := rids[rng.Intn(len(rids))]
				if _, ok := ref[rid]; !ok {
					continue
				}
				rec := make([]byte, 1+rng.Intn(800))
				rng.Read(rec)
				newRID, err := h.Update(rid, rec)
				if err != nil {
					return false
				}
				if newRID != rid {
					delete(ref, rid)
					rids = append(rids, newRID)
				}
				ref[newRID] = rec
			case 3: // delete
				if len(rids) == 0 {
					continue
				}
				rid := rids[rng.Intn(len(rids))]
				if _, ok := ref[rid]; !ok {
					continue
				}
				if err := h.Delete(rid); err != nil {
					return false
				}
				delete(ref, rid)
			}
		}
		if h.Count() != len(ref) {
			return false
		}
		for rid, want := range ref {
			got, err := h.Read(rid)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		seen := 0
		_ = h.Scan(func(rid RID, rec []byte) bool {
			want, ok := ref[rid]
			if !ok || !bytes.Equal(rec, want) {
				seen = -1 << 30
			}
			seen++
			return true
		})
		return seen == len(ref)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

package storage

import (
	"errors"
	"strings"
	"testing"
)

// The scriptable fault plans must (a) expose a typed error matched by
// errors.Is, (b) distinguish reads from writes, (c) target a single heap
// file by page-owner tag, and (d) honor transient vs. persistent lifetimes.
// FailAfter must keep its historical whole-disk semantics as a one-rule
// persistent plan.

func newFaultWorld(t *testing.T) (*Disk, *BufferPool, *HeapFile, *HeapFile) {
	t.Helper()
	clock := NewClock()
	disk := NewDisk(clock)
	pool := NewPool(disk, 2) // tiny: nearly every access does physical I/O
	// FORCE policy: every mutation is a physical write, so write rules fire
	// deterministically at the mutating operation.
	a := NewForcedHeapFile(pool, "A")
	b := NewForcedHeapFile(pool, "B")
	return disk, pool, a, b
}

func TestErrInjectedFaultIsTyped(t *testing.T) {
	disk, _, a, _ := newFaultWorld(t)
	disk.FailAfter(0)
	_, err := a.Insert([]byte("x"))
	if err == nil {
		t.Fatal("insert succeeded on a failing disk")
	}
	if !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("errors.Is(ErrInjectedFault) = false for %v", err)
	}
	// The historical message survives for log readers.
	if !strings.Contains(err.Error(), "injected disk failure") {
		t.Fatalf("error %q lost the historical message", err)
	}
	disk.ClearFailure()
	if _, err := a.Insert([]byte("x")); err != nil {
		t.Fatalf("insert after ClearFailure: %v", err)
	}
}

func TestFaultRuleReadVsWrite(t *testing.T) {
	disk, _, a, _ := newFaultWorld(t)
	rid, err := a.Insert([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	disk.SetFaultPlan(FaultPlan{Rules: []FaultRule{{Op: FaultRead}}})
	// Writes still succeed (the insert below lands on the hinted resident
	// page, no physical read needed).
	if _, err := a.Insert([]byte("w")); err != nil {
		t.Fatalf("write failed under a read-only fault rule: %v", err)
	}
	// Force the page out so the next Read needs a physical read.
	disk.ClearFaults()
	var spill []RID
	for i := 0; i < 4; i++ {
		r, err := a.Insert(make([]byte, PageSize/2))
		if err != nil {
			t.Fatal(err)
		}
		spill = append(spill, r)
	}
	_ = spill
	disk.SetFaultPlan(FaultPlan{Rules: []FaultRule{{Op: FaultRead}}})
	if _, err := a.Read(rid); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("read under fail-read rule: %v", err)
	}
}

func TestFaultRulePerFileTargeting(t *testing.T) {
	disk, _, a, b := newFaultWorld(t)
	disk.SetFaultPlan(FaultPlan{Rules: []FaultRule{{Op: FaultAny, File: "B"}}})
	if _, err := a.Insert([]byte("a")); err != nil {
		t.Fatalf("file A failed under a file-B rule: %v", err)
	}
	if _, err := b.Insert([]byte("b")); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("file B insert: %v", err)
	}
	if got := disk.FaultsInjected(); got != 1 {
		t.Fatalf("FaultsInjected = %d, want 1", got)
	}
}

func TestFaultRuleTransientExpires(t *testing.T) {
	disk, _, a, _ := newFaultWorld(t)
	disk.SetFaultPlan(FaultPlan{Rules: []FaultRule{{Op: FaultWrite, Count: 2}}})
	fails := 0
	for i := 0; i < 10; i++ {
		if _, err := a.Insert([]byte("x")); err != nil {
			if !errors.Is(err, ErrInjectedFault) {
				t.Fatalf("unexpected error: %v", err)
			}
			fails++
		}
	}
	if fails != 2 {
		t.Fatalf("transient rule injected %d failures, want 2", fails)
	}
	if disk.FaultsArmed() {
		t.Fatal("expired transient rule still reports armed")
	}
}

func TestFaultRuleAfterBudget(t *testing.T) {
	disk, _, a, _ := newFaultWorld(t)
	// Fill one page so inserts stay on the resident hinted page: each
	// write-through insert is exactly one physical write.
	if _, err := a.Insert([]byte("seed")); err != nil {
		t.Fatal(err)
	}
	forced := NewForcedHeapFile(a.pool, "F")
	if _, err := forced.Insert([]byte("seed")); err != nil {
		t.Fatal(err)
	}
	disk.SetFaultPlan(FaultPlan{Rules: []FaultRule{{Op: FaultWrite, File: "F", After: 2}}})
	ok := 0
	var firstErr error
	for i := 0; i < 6 && firstErr == nil; i++ {
		if _, err := forced.Insert([]byte("x")); err != nil {
			firstErr = err
		} else {
			ok++
		}
	}
	if firstErr == nil {
		t.Fatal("after-budget rule never fired")
	}
	if !errors.Is(firstErr, ErrInjectedFault) {
		t.Fatalf("unexpected error: %v", firstErr)
	}
	if ok != 2 {
		t.Fatalf("%d inserts succeeded before the fault, want 2 (After budget)", ok)
	}
}

func TestPageOwnerTags(t *testing.T) {
	_, pool, a, _ := newFaultWorld(t)
	rid, err := a.Insert([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if owner := pool.disk.PageOwner(rid.Page); owner != "A" {
		t.Fatalf("PageOwner = %q, want A", owner)
	}
}

package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// PageStore is the optional durable backend behind the simulated Disk: a
// file-backed page store plus a physical write-ahead log with page-level redo
// records and checksums. The paper's GOM prototype inherited durability from
// the EXODUS storage manager; this reproduction gets it from three files in a
// directory:
//
//	data.gomdb  page records, one fixed-size slot per page id
//	wal.gomdb   the redo log of the checkpoint in flight (or last applied)
//	meta.gomdb  the engine metadata blob of the last committed checkpoint
//
// The durable unit is the checkpoint: the engine (gomdb facade) collects
// every page written since the last checkpoint plus a metadata blob and calls
// Checkpoint, which makes the transition atomic via the WAL:
//
//	 1. append all page records + the meta record + a commit record to the
//	    WAL and fsync it    (crash before/during: tail is discarded, the
//	    previous checkpoint remains the durable state)
//	 2. apply the page records to the data file and fsync it (crash during:
//	    the committed WAL is replayed on recovery, repairing torn records)
//	 3. replace meta.gomdb atomically (tmp + rename)
//	 4. truncate the WAL
//
// Recovery (OpenPageStore) therefore always returns exactly the state of the
// last committed checkpoint: it scans the WAL, discards an uncommitted tail,
// re-applies a committed batch (finishing the interrupted steps 2-4), and
// validates every data-file record's checksum, preferring the WAL copy for a
// record a torn write corrupted.
//
// All PageStore I/O is real file I/O and is deliberately NEVER charged to the
// simulated Clock: the cost model of the paper's figures must be bit-identical
// whether durability is on or off.
type PageStore struct {
	dir   string
	dataF *os.File
	walF  *os.File
	// lockF holds an exclusive flock on LOCK for the store's lifetime so two
	// processes (or two Opens in one process) cannot write the same
	// directory concurrently. Released by Close and Abandon.
	lockF *os.File

	// walEnd is the append offset of the WAL (header-only after a completed
	// checkpoint).
	walEnd int64

	// failAfter, when >= 0, cuts the next checkpoint's WAL batch off after
	// that many bytes and reports ErrSimulatedCrash — the crash-mid-flush
	// injection hook of the simulation harness. Disarmed after one
	// checkpoint regardless of whether it fired.
	failAfter int64

	// torn, when set, is consulted once per page during the data-file apply;
	// a true return tears that page's record (half of it is written) and the
	// checkpoint reports ErrSimulatedCrash, leaving the committed WAL in
	// place. Wired to Disk.CheckTornWrite so FaultPlan rules with
	// Op: FaultTornWrite script it.
	torn func(PageID) bool

	closed bool
}

// FormatVersion is the on-disk format version tag of all three files. Tests
// pin it; bump it (and regenerate the golden files under testdata/golden)
// only for a deliberate format change.
const FormatVersion = 1

const (
	dataMagic = "GOMDBPG1"
	walMagic  = "GOMDBWAL"
	metaMagic = "GOMDBMET"

	fileHeaderSize = 16
	// pageRecSize is one data-file record: the page image, the page id, and
	// a CRC32-Castagnoli checksum over both.
	pageRecSize = PageSize + 8

	walPageRec   = 1
	walMetaRec   = 2
	walCommitRec = 3
)

// ErrSimulatedCrash marks an injected crash point: a checkpoint that was
// deliberately cut short (FailNextCheckpointAfter) or torn (a FaultTornWrite
// rule). The store must be abandoned afterwards, exactly as after a real
// crash; reopening the directory runs recovery.
var ErrSimulatedCrash = errors.New("storage: simulated crash")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// RecoveredImage is what OpenPageStore recovered from the directory: the page
// images and metadata blob of the last committed checkpoint, plus counters
// describing the repair work recovery performed.
type RecoveredImage struct {
	// Exists reports whether any committed checkpoint was found; false means
	// the directory is fresh (Pages and Meta are empty).
	Exists bool
	// Meta is the engine metadata blob of the last committed checkpoint.
	Meta []byte
	// Pages maps page id to the recovered page image.
	Pages map[PageID]*[PageSize]byte
	// WALPagesReplayed counts page records re-applied from a committed WAL
	// batch (nonzero when the crash hit between WAL commit and data-file
	// apply).
	WALPagesReplayed int
	// TornPagesRepaired counts data-file records whose checksum was invalid
	// and whose content was recovered from the WAL copy.
	TornPagesRepaired int
	// WALTailDiscarded reports whether an uncommitted (or torn) WAL tail was
	// thrown away — the crash hit mid-append, so the previous checkpoint is
	// the durable state.
	WALTailDiscarded bool
}

// OpenPageStore opens (creating if necessary) the durable page store in dir
// and runs recovery, returning the store and the recovered image.
func OpenPageStore(dir string) (*PageStore, *RecoveredImage, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	ps := &PageStore{dir: dir, failAfter: -1}
	var err error
	if ps.lockF, err = lockDir(dir); err != nil {
		return nil, nil, err
	}
	if ps.dataF, err = openWithHeader(filepath.Join(dir, "data.gomdb"), dataMagic, uint32(pageRecSize)); err != nil {
		unlockDir(ps.lockF)
		return nil, nil, err
	}
	if ps.walF, err = openWithHeader(filepath.Join(dir, "wal.gomdb"), walMagic, 0); err != nil {
		ps.dataF.Close()
		unlockDir(ps.lockF)
		return nil, nil, err
	}
	img, err := ps.recover()
	if err != nil {
		ps.Abandon()
		return nil, nil, err
	}
	return ps, img, nil
}

// Dir returns the directory the store lives in.
func (ps *PageStore) Dir() string { return ps.dir }

// openWithHeader opens path read-write, writing the 16-byte header if the
// file is fresh and verifying magic and version otherwise.
func openWithHeader(path, magic string, extra uint32) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		hdr := make([]byte, fileHeaderSize)
		copy(hdr, magic)
		binary.LittleEndian.PutUint32(hdr[8:], FormatVersion)
		binary.LittleEndian.PutUint32(hdr[12:], extra)
		if _, err := f.WriteAt(hdr, 0); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
		return f, nil
	}
	hdr := make([]byte, fileHeaderSize)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, fileHeaderSize), hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: %s: short header: %w", path, err)
	}
	if string(hdr[:8]) != magic {
		f.Close()
		return nil, fmt.Errorf("storage: %s: bad magic %q (want %q)", path, hdr[:8], magic)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != FormatVersion {
		f.Close()
		return nil, fmt.Errorf("storage: %s: format version %d, this build reads version %d", path, v, FormatVersion)
	}
	return f, nil
}

// FailNextCheckpointAfter arms the crash-mid-checkpoint injection: the next
// checkpoint writes only the first n bytes of its WAL batch, fsyncs, and
// reports ErrSimulatedCrash. If the batch turns out shorter than n the
// checkpoint completes normally; either way the hook disarms.
func (ps *PageStore) FailNextCheckpointAfter(n int64) { ps.failAfter = n }

// SetTornWriteHook installs the per-page torn-write oracle consulted during
// the data-file apply (see PageStore.torn).
func (ps *PageStore) SetTornWriteHook(fn func(PageID) bool) { ps.torn = fn }

// pageRecord encodes the data-file record for page id.
func pageRecord(id PageID, data *[PageSize]byte) []byte {
	rec := make([]byte, pageRecSize)
	copy(rec, data[:])
	binary.LittleEndian.PutUint32(rec[PageSize:], uint32(id))
	crc := crc32.Checksum(rec[:PageSize+4], castagnoli)
	binary.LittleEndian.PutUint32(rec[PageSize+4:], crc)
	return rec
}

// walRecord encodes one WAL record.
func walRecord(kind byte, payload []byte) []byte {
	rec := make([]byte, 5+len(payload)+4)
	rec[0] = kind
	binary.LittleEndian.PutUint32(rec[1:], uint32(len(payload)))
	copy(rec[5:], payload)
	crc := crc32.Checksum(rec[:5+len(payload)], castagnoli)
	binary.LittleEndian.PutUint32(rec[5+len(payload):], crc)
	return rec
}

// Checkpoint atomically advances the durable state: pages (the ids dirty
// since the last checkpoint) are snapshotted through read, logged to the WAL
// together with meta, applied to the data file, and committed. On success the
// durable state is exactly the caller's current state; on error (including
// the injected ErrSimulatedCrash) the store must be abandoned and reopened —
// recovery then yields either the previous or, if the WAL batch committed,
// the new checkpoint.
func (ps *PageStore) Checkpoint(pages []PageID, read func(PageID, *[PageSize]byte) error, meta []byte) error {
	if ps.closed {
		return errors.New("storage: checkpoint on closed page store")
	}
	// Assemble the WAL batch: every page record, the meta record, commit.
	var batch []byte
	images := make(map[PageID]*[PageSize]byte, len(pages))
	for _, id := range pages {
		var buf [PageSize]byte
		if err := read(id, &buf); err != nil {
			return fmt.Errorf("storage: checkpoint snapshot of page %d: %w", id, err)
		}
		img := buf
		images[id] = &img
		payload := make([]byte, 4+PageSize)
		binary.LittleEndian.PutUint32(payload, uint32(id))
		copy(payload[4:], buf[:])
		batch = append(batch, walRecord(walPageRec, payload)...)
	}
	batch = append(batch, walRecord(walMetaRec, meta)...)
	var commitPayload [4]byte
	binary.LittleEndian.PutUint32(commitPayload[:], uint32(len(pages)))
	batch = append(batch, walRecord(walCommitRec, commitPayload[:])...)

	// Step 1: append the batch, honoring the injected crash point.
	if fa := ps.failAfter; fa >= 0 {
		ps.failAfter = -1
		if fa < int64(len(batch)) {
			if _, err := ps.walF.WriteAt(batch[:fa], ps.walEnd); err != nil {
				return err
			}
			if err := ps.walF.Sync(); err != nil {
				return err
			}
			ps.walEnd += fa
			return fmt.Errorf("storage: checkpoint WAL append cut off after %d bytes: %w", fa, ErrSimulatedCrash)
		}
	}
	if _, err := ps.walF.WriteAt(batch, ps.walEnd); err != nil {
		return err
	}
	if err := ps.walF.Sync(); err != nil {
		return err
	}
	ps.walEnd += int64(len(batch))

	// Steps 2-4.
	return ps.applyCommitted(pages, images, meta)
}

// applyCommitted performs checkpoint steps 2-4 (data-file apply, meta
// replace, WAL truncate) for a batch that is already committed in the WAL.
func (ps *PageStore) applyCommitted(order []PageID, images map[PageID]*[PageSize]byte, meta []byte) error {
	for _, id := range order {
		rec := pageRecord(id, images[id])
		off := fileHeaderSize + int64(id-1)*pageRecSize
		if ps.torn != nil && ps.torn(id) {
			if _, err := ps.dataF.WriteAt(rec[:pageRecSize/2], off); err != nil {
				return err
			}
			if err := ps.dataF.Sync(); err != nil {
				return err
			}
			return fmt.Errorf("storage: torn write of page %d during checkpoint apply: %w", id, ErrSimulatedCrash)
		}
		if _, err := ps.dataF.WriteAt(rec, off); err != nil {
			return err
		}
	}
	if err := ps.dataF.Sync(); err != nil {
		return err
	}
	if err := ps.writeMetaFile(meta); err != nil {
		return err
	}
	if err := ps.walF.Truncate(fileHeaderSize); err != nil {
		return err
	}
	if err := ps.walF.Sync(); err != nil {
		return err
	}
	ps.walEnd = fileHeaderSize
	return nil
}

// writeMetaFile atomically replaces meta.gomdb (tmp + rename).
func (ps *PageStore) writeMetaFile(meta []byte) error {
	buf := make([]byte, fileHeaderSize+4+len(meta)+4)
	copy(buf, metaMagic)
	binary.LittleEndian.PutUint32(buf[8:], FormatVersion)
	binary.LittleEndian.PutUint32(buf[fileHeaderSize:], uint32(len(meta)))
	copy(buf[fileHeaderSize+4:], meta)
	crc := crc32.Checksum(meta, castagnoli)
	binary.LittleEndian.PutUint32(buf[fileHeaderSize+4+len(meta):], crc)
	tmp := filepath.Join(ps.dir, "meta.gomdb.tmp")
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(ps.dir, "meta.gomdb"))
}

// readMetaFile reads and validates meta.gomdb; a missing file returns
// (nil, false, nil).
func (ps *PageStore) readMetaFile() ([]byte, bool, error) {
	buf, err := os.ReadFile(filepath.Join(ps.dir, "meta.gomdb"))
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	if len(buf) < fileHeaderSize+8 {
		return nil, false, fmt.Errorf("storage: meta.gomdb truncated (%d bytes)", len(buf))
	}
	if string(buf[:8]) != metaMagic {
		return nil, false, fmt.Errorf("storage: meta.gomdb: bad magic %q", buf[:8])
	}
	if v := binary.LittleEndian.Uint32(buf[8:]); v != FormatVersion {
		return nil, false, fmt.Errorf("storage: meta.gomdb: format version %d, this build reads version %d", v, FormatVersion)
	}
	n := int(binary.LittleEndian.Uint32(buf[fileHeaderSize:]))
	if len(buf) < fileHeaderSize+4+n+4 {
		return nil, false, fmt.Errorf("storage: meta.gomdb truncated (blob wants %d bytes)", n)
	}
	blob := buf[fileHeaderSize+4 : fileHeaderSize+4+n]
	want := binary.LittleEndian.Uint32(buf[fileHeaderSize+4+n:])
	if crc32.Checksum(blob, castagnoli) != want {
		return nil, false, errors.New("storage: meta.gomdb: checksum mismatch")
	}
	out := make([]byte, n)
	copy(out, blob)
	return out, true, nil
}

// scanWAL parses the WAL, returning the page images and meta blob of all
// committed batches (in append order, later batches overriding earlier ones)
// and whether an uncommitted/torn tail was found. Only records up to the last
// valid commit record count.
func (ps *PageStore) scanWAL() (pages map[PageID]*[PageSize]byte, order []PageID, meta []byte, tail bool, err error) {
	st, err := ps.walF.Stat()
	if err != nil {
		return nil, nil, nil, false, err
	}
	size := st.Size()
	buf := make([]byte, size-fileHeaderSize)
	if len(buf) > 0 {
		if _, err := io.ReadFull(io.NewSectionReader(ps.walF, fileHeaderSize, size-fileHeaderSize), buf); err != nil {
			return nil, nil, nil, false, err
		}
	}
	committed := make(map[PageID]*[PageSize]byte)
	var committedOrder []PageID
	var committedMeta []byte
	// One batch in flight.
	batch := make(map[PageID]*[PageSize]byte)
	var batchOrder []PageID
	var batchMeta []byte
	off := 0
	for {
		if off == len(buf) {
			break
		}
		if off+5 > len(buf) {
			tail = true
			break
		}
		kind := buf[off]
		n := int(binary.LittleEndian.Uint32(buf[off+1:]))
		if kind < walPageRec || kind > walCommitRec || off+5+n+4 > len(buf) {
			tail = true
			break
		}
		payload := buf[off+5 : off+5+n]
		want := binary.LittleEndian.Uint32(buf[off+5+n:])
		if crc32.Checksum(buf[off:off+5+n], castagnoli) != want {
			tail = true
			break
		}
		switch kind {
		case walPageRec:
			if n != 4+PageSize {
				tail = true
			} else {
				id := PageID(binary.LittleEndian.Uint32(payload))
				img := new([PageSize]byte)
				copy(img[:], payload[4:])
				if _, seen := batch[id]; !seen {
					batchOrder = append(batchOrder, id)
				}
				batch[id] = img
			}
		case walMetaRec:
			batchMeta = append([]byte(nil), payload...)
		case walCommitRec:
			for _, id := range batchOrder {
				if _, seen := committed[id]; !seen {
					committedOrder = append(committedOrder, id)
				}
				committed[id] = batch[id]
			}
			if batchMeta != nil {
				committedMeta = batchMeta
			}
			batch = make(map[PageID]*[PageSize]byte)
			batchOrder = nil
			batchMeta = nil
		}
		if tail {
			break
		}
		off += 5 + n + 4
	}
	if len(batch) > 0 || batchMeta != nil {
		tail = true // records after the last commit: an unfinished batch
	}
	return committed, committedOrder, committedMeta, tail, nil
}

// recover implements the OpenPageStore recovery path; see the type comment.
func (ps *PageStore) recover() (*RecoveredImage, error) {
	img := &RecoveredImage{Pages: make(map[PageID]*[PageSize]byte)}

	metaBlob, haveMeta, err := ps.readMetaFile()
	if err != nil {
		return nil, err
	}
	walPages, walOrder, walMeta, tail, err := ps.scanWAL()
	if err != nil {
		return nil, err
	}
	img.WALTailDiscarded = tail

	// Validate every data-file record.
	st, err := ps.dataF.Stat()
	if err != nil {
		return nil, err
	}
	numRecs := (st.Size() - fileHeaderSize) / pageRecSize
	torn := make(map[PageID]bool)
	rec := make([]byte, pageRecSize)
	for i := int64(1); i <= numRecs; i++ {
		off := fileHeaderSize + (i-1)*pageRecSize
		if _, err := io.ReadFull(io.NewSectionReader(ps.dataF, off, pageRecSize), rec); err != nil {
			torn[PageID(i)] = true
			continue
		}
		id := PageID(binary.LittleEndian.Uint32(rec[PageSize:]))
		if id == 0 {
			continue // never written
		}
		if id != PageID(i) ||
			crc32.Checksum(rec[:PageSize+4], castagnoli) != binary.LittleEndian.Uint32(rec[PageSize+4:]) {
			torn[PageID(i)] = true
			continue
		}
		p := new([PageSize]byte)
		copy(p[:], rec[:PageSize])
		img.Pages[id] = p
	}
	// A trailing partial record (file size not a multiple of pageRecSize) is
	// a torn append of the next page id.
	if rem := (st.Size() - fileHeaderSize) % pageRecSize; rem > 0 {
		torn[PageID(numRecs+1)] = true
	}

	if len(walPages) > 0 || walMeta != nil {
		// A committed batch outlived the crash: its apply (or meta replace or
		// WAL truncate) did not finish. Replay it — the WAL copy supersedes
		// whatever the data file holds, including records a torn write
		// corrupted — and finish the interrupted checkpoint so the store is
		// clean again.
		for id, p := range walPages {
			if torn[id] {
				img.TornPagesRepaired++
				delete(torn, id)
			}
			img.Pages[id] = p
			img.WALPagesReplayed++
		}
		if walMeta != nil {
			metaBlob, haveMeta = walMeta, true
		}
		if !haveMeta {
			return nil, errors.New("storage: committed WAL batch without any metadata record or meta file")
		}
		hook := ps.torn
		ps.torn = nil // recovery re-applies without re-injecting tears
		err := ps.applyCommitted(walOrder, walPages, metaBlob)
		ps.torn = hook
		if err != nil {
			return nil, fmt.Errorf("storage: finishing interrupted checkpoint: %w", err)
		}
	} else {
		ps.walEnd = fileHeaderSize
		if tail {
			// Only an uncommitted tail: discard it so the next checkpoint
			// appends to a clean log.
			if err := ps.walF.Truncate(fileHeaderSize); err != nil {
				return nil, err
			}
			if err := ps.walF.Sync(); err != nil {
				return nil, err
			}
		}
	}

	// Any record still torn was not healed by the WAL. That is only legal if
	// the metadata does not reference it (e.g. a record of a long-freed page);
	// the engine validates its live page set against img.Pages.
	for id := range torn {
		delete(img.Pages, id)
	}

	img.Exists = haveMeta
	img.Meta = metaBlob
	return img, nil
}

// Close closes the store's files. It does NOT checkpoint; callers that want
// the current state durable checkpoint first (gomdb's Close does).
func (ps *PageStore) Close() error {
	if ps.closed {
		return nil
	}
	ps.closed = true
	err1 := ps.dataF.Close()
	err2 := ps.walF.Close()
	unlockDir(ps.lockF)
	if err1 != nil {
		return err1
	}
	return err2
}

// Abandon closes the underlying files without any syncing or checkpointing —
// the programmatic equivalent of the process dying. The on-disk state remains
// whatever the last fsync established; reopening the directory runs recovery.
func (ps *PageStore) Abandon() {
	if ps.closed {
		return
	}
	ps.closed = true
	ps.dataF.Close()
	ps.walF.Close()
	unlockDir(ps.lockF)
}

package schema_test

import (
	"testing"

	"gomdb/internal/lang"
	"gomdb/internal/object"
	"gomdb/internal/schema"
	"gomdb/internal/storage"
)

func newEngine(t *testing.T) *schema.Engine {
	t.Helper()
	clock := storage.NewClock()
	disk := storage.NewDisk(clock)
	pool := storage.NewPool(disk, 50)
	sch := schema.New()
	objs := object.NewManager(sch.Reg, pool, clock)
	return schema.NewEngine(sch, objs, clock)
}

func defineShape(t *testing.T, en *schema.Engine, encapsulated bool) {
	t.Helper()
	sch := en.Sch
	point := object.NewTupleType("Point",
		object.AttrDef{Name: "X", Type: "float", Public: !encapsulated},
		object.AttrDef{Name: "Y", Type: "float", Public: !encapsulated})
	if err := sch.DefineType(point, "norm2", "move"); err != nil {
		t.Fatal(err)
	}
	shape := object.NewTupleType("Shape",
		object.AttrDef{Name: "P", Type: "Point"},
		object.AttrDef{Name: "Tag", Type: "string", Public: true})
	shape.StrictEncapsulated = encapsulated
	if err := sch.DefineType(shape, "size", "grow"); err != nil {
		t.Fatal(err)
	}
	norm2 := &lang.Function{
		Params:         []lang.Param{lang.Prm("self", "Point")},
		ResultType:     "float",
		SideEffectFree: true,
		Body: []lang.Stmt{lang.Ret(lang.Add(
			lang.Mul(lang.A(lang.Self(), "X"), lang.A(lang.Self(), "X")),
			lang.Mul(lang.A(lang.Self(), "Y"), lang.A(lang.Self(), "Y"))))},
	}
	if err := sch.DefineOp("Point", "norm2", norm2); err != nil {
		t.Fatal(err)
	}
	move := &lang.Function{
		Params: []lang.Param{lang.Prm("self", "Point"), lang.Prm("d", "float")},
		Body: []lang.Stmt{
			lang.SetA(lang.Self(), "X", lang.Add(lang.A(lang.Self(), "X"), lang.V("d"))),
			lang.SetA(lang.Self(), "Y", lang.Add(lang.A(lang.Self(), "Y"), lang.V("d"))),
		},
	}
	if err := sch.DefineOp("Point", "move", move); err != nil {
		t.Fatal(err)
	}
	size := &lang.Function{
		Params:         []lang.Param{lang.Prm("self", "Shape")},
		ResultType:     "float",
		SideEffectFree: true,
		Body:           []lang.Stmt{lang.Ret(lang.CallFn("Point.norm2", lang.A(lang.Self(), "P")))},
	}
	if err := sch.DefineOp("Shape", "size", size); err != nil {
		t.Fatal(err)
	}
	grow := &lang.Function{
		Params: []lang.Param{lang.Prm("self", "Shape"), lang.Prm("d", "float")},
		Body:   []lang.Stmt{lang.Do(lang.CallFn("Point.move", lang.A(lang.Self(), "P"), lang.V("d")))},
	}
	if err := sch.DefineOp("Shape", "grow", grow); err != nil {
		t.Fatal(err)
	}
	if encapsulated {
		sch.DeclareInvalidatedFct("Shape", "grow", "Shape.size")
	}
}

func newShape(t *testing.T, en *schema.Engine, x, y float64) object.OID {
	t.Helper()
	p, err := en.Create("Point", []object.Value{object.Float(x), object.Float(y)})
	if err != nil {
		t.Fatal(err)
	}
	s, err := en.Create("Shape", []object.Value{object.Ref(p), object.String_("s")})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaDefinitionErrors(t *testing.T) {
	en := newEngine(t)
	defineShape(t, en, false)
	sch := en.Sch
	if err := sch.DefineOp("Nope", "f", &lang.Function{Params: []lang.Param{lang.Prm("self", "Nope")}}); err == nil {
		t.Fatal("op on unknown type accepted")
	}
	if err := sch.DefineOp("Point", "norm2", &lang.Function{Params: []lang.Param{lang.Prm("self", "Point")}}); err == nil {
		t.Fatal("duplicate op accepted")
	}
	if err := sch.DefineOp("Point", "zzz", &lang.Function{}); err == nil {
		t.Fatal("op without receiver accepted")
	}
	if err := sch.DefineFunc(&lang.Function{Name: "Point.bad"}); err == nil {
		t.Fatal("qualified free function accepted")
	}
	if err := sch.DefineFunc(&lang.Function{Name: "free1"}); err != nil {
		t.Fatal(err)
	}
	if err := sch.DefineFunc(&lang.Function{Name: "free1"}); err == nil {
		t.Fatal("duplicate free function accepted")
	}
}

func TestResolutionAndPublicClause(t *testing.T) {
	en := newEngine(t)
	defineShape(t, en, false)
	sch := en.Sch
	if _, ok := sch.ResolveOp("Shape", "size"); !ok {
		t.Fatal("size not resolved")
	}
	if _, ok := sch.ResolveStatic("Shape.size"); !ok {
		t.Fatal("qualified resolution failed")
	}
	if _, ok := sch.ResolveStatic("free_missing"); ok {
		t.Fatal("missing free function resolved")
	}
	if !sch.IsPublic("Point", "X") || !sch.IsPublic("Point", "set_X") {
		t.Fatal("public attribute ops missing")
	}
	if !sch.IsPublic("Shape", "size") || sch.IsPublic("Shape", "P") {
		t.Fatal("public clause wrong")
	}
	// lang.TypeInfo implementation.
	if at, ok := sch.AttrType("Shape", "P"); !ok || at != "Point" {
		t.Fatalf("AttrType = %v, %v", at, ok)
	}
	if _, ok := sch.AttrType("Shape", "Q"); ok {
		t.Fatal("missing attribute resolved")
	}
}

func TestInheritedOperationDispatch(t *testing.T) {
	en := newEngine(t)
	defineShape(t, en, false)
	sch := en.Sch
	sub := object.NewTupleType("Square", object.AttrDef{Name: "Side", Type: "float", Public: true})
	sub.Super = "Shape"
	if err := sch.DefineType(sub); err != nil {
		t.Fatal(err)
	}
	// Override size on Square.
	size2 := &lang.Function{
		Params:         []lang.Param{lang.Prm("self", "Square")},
		ResultType:     "float",
		SideEffectFree: true,
		Body:           []lang.Stmt{lang.Ret(lang.Mul(lang.A(lang.Self(), "Side"), lang.A(lang.Self(), "Side")))},
	}
	if err := sch.DefineOp("Square", "size", size2); err != nil {
		t.Fatal(err)
	}
	p, _ := en.Create("Point", []object.Value{object.Float(3), object.Float(4)})
	sq, err := en.Create("Square", []object.Value{object.Ref(p), object.String_("sq"), object.Float(6)})
	if err != nil {
		t.Fatal(err)
	}
	// Declared type Shape, dynamic type Square: the override must win.
	v, err := en.CallFunction("Shape.size", []object.Value{object.Ref(sq)})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(object.Float(36)) {
		t.Fatalf("dispatched size = %v, want 36", v)
	}
	// Inherited op: grow resolves on Square via the supertype.
	if _, err := en.CallFunction("Square.grow", []object.Value{object.Ref(sq), object.Float(1)}); err != nil {
		t.Fatalf("inherited grow: %v", err)
	}
}

func TestUpdateHookOrderAndUninstall(t *testing.T) {
	en := newEngine(t)
	defineShape(t, en, false)
	s := newShape(t, en, 1, 2)
	so, _ := en.Objs.Get(s)
	p := so.Attrs[0].R

	var events []string
	undo := en.Hooks.Install("Point", "set_X", &schema.UpdateHook{
		Name: "t",
		Before: func(_ *schema.Engine, recv *object.Obj, args []object.Value) error {
			// Before must observe the pre-update state.
			if f, _ := recv.Attrs[0].AsFloat(); f != 1 {
				t.Errorf("before-hook sees X=%v, want 1", recv.Attrs[0])
			}
			events = append(events, "before")
			return nil
		},
		After: func(_ *schema.Engine, recv *object.Obj, args []object.Value) error {
			if f, _ := recv.Attrs[0].AsFloat(); f != 42 {
				t.Errorf("after-hook sees X=%v, want 42", recv.Attrs[0])
			}
			events = append(events, "after")
			return nil
		},
	})
	if err := en.SetAttrByName(p, "X", object.Float(42)); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0] != "before" || events[1] != "after" {
		t.Fatalf("hook order = %v", events)
	}
	if !en.Hooks.Installed("Point", "set_X") {
		t.Fatal("Installed = false")
	}
	undo()
	if en.Hooks.Installed("Point", "set_X") {
		t.Fatal("hook survived uninstall")
	}
	events = nil
	if err := en.SetAttrByName(p, "X", object.Float(1)); err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatal("uninstalled hook fired")
	}
}

func TestPublicOpHooks(t *testing.T) {
	en := newEngine(t)
	defineShape(t, en, true)
	s := newShape(t, en, 1, 2)
	fired := 0
	en.Hooks.Install("Shape", "grow", &schema.UpdateHook{
		Name:  "t",
		After: func(*schema.Engine, *object.Obj, []object.Value) error { fired++; return nil },
	})
	if _, err := en.CallFunction("Shape.grow", []object.Value{object.Ref(s), object.Float(1)}); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("public op hook fired %d times", fired)
	}
}

func TestTrackingAndEncapsulationBoundary(t *testing.T) {
	// Open schema: EvalTracked marks the subobjects.
	en := newEngine(t)
	defineShape(t, en, false)
	s := newShape(t, en, 3, 4)
	so, _ := en.Objs.Get(s)
	p := so.Attrs[0].R
	fn, _ := en.Sch.ResolveOp("Shape", "size")
	v, accessed, err := en.EvalTracked(fn, []object.Value{object.Ref(s)})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(object.Float(25)) {
		t.Fatalf("size = %v", v)
	}
	if _, ok := accessed[s]; !ok {
		t.Fatal("receiver not tracked")
	}
	if _, ok := accessed[p]; !ok {
		t.Fatal("subobject not tracked in open schema")
	}

	// Encapsulated schema with declarations: only the receiver is marked.
	en2 := newEngine(t)
	defineShape(t, en2, true)
	s2 := newShape(t, en2, 3, 4)
	so2, _ := en2.Objs.Get(s2)
	p2 := so2.Attrs[0].R
	fn2, _ := en2.Sch.ResolveOp("Shape", "size")
	_, accessed2, err := en2.EvalTracked(fn2, []object.Value{object.Ref(s2)})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := accessed2[s2]; !ok {
		t.Fatal("receiver not tracked (encapsulated)")
	}
	if _, ok := accessed2[p2]; ok {
		t.Fatal("subobject tracked across the encapsulation boundary")
	}
}

func TestEvalRawBypassesInterceptor(t *testing.T) {
	en := newEngine(t)
	defineShape(t, en, false)
	s := newShape(t, en, 1, 0)
	intercepted := 0
	en.SetInterceptor(func(fn *lang.Function, args []object.Value) (object.Value, bool, error) {
		intercepted++
		return object.Float(-1), true, nil
	})
	// Normal call path is intercepted.
	v, err := en.CallFunction("Shape.size", []object.Value{object.Ref(s)})
	if err != nil || !v.Equal(object.Float(-1)) {
		t.Fatalf("intercepted call = %v, %v", v, err)
	}
	// EvalRaw must not be.
	fn, _ := en.Sch.ResolveOp("Shape", "size")
	v, err = en.EvalRaw(fn, []object.Value{object.Ref(s)})
	if err != nil || !v.Equal(object.Float(1)) {
		t.Fatalf("EvalRaw = %v, %v", v, err)
	}
	if intercepted != 1 {
		t.Fatalf("interceptor fired %d times", intercepted)
	}
}

func TestEngineErrors(t *testing.T) {
	en := newEngine(t)
	defineShape(t, en, false)
	if _, err := en.CallFunction("Shape.nothere", []object.Value{object.Null()}); err == nil {
		t.Fatal("unknown op call succeeded")
	}
	if err := en.SetAttr(object.Int(1), "X", object.Null()); err == nil {
		t.Fatal("set_attr on non-ref succeeded")
	}
	if err := en.InsertElem(object.Null(), object.Int(1)); err == nil {
		t.Fatal("insert on null succeeded")
	}
	s := newShape(t, en, 0, 0)
	if err := en.SetAttrByName(s, "Nope", object.Null()); err == nil {
		t.Fatal("set of unknown attribute succeeded")
	}
	if err := en.InsertElem(object.Ref(s), object.Int(1)); err == nil {
		t.Fatal("insert on tuple object succeeded")
	}
	if _, err := en.ReadAttr(object.Ref(object.OID(9999)), "X"); err == nil {
		t.Fatal("read through dangling reference succeeded")
	}
}

func TestCreateDeleteHooks(t *testing.T) {
	en := newEngine(t)
	defineShape(t, en, false)
	var created, deleted []object.OID
	en.Hooks.Install("Point", "create", &schema.UpdateHook{
		Name: "t",
		After: func(_ *schema.Engine, recv *object.Obj, _ []object.Value) error {
			created = append(created, recv.OID)
			return nil
		},
	})
	en.Hooks.Install("Point", "delete", &schema.UpdateHook{
		Name: "t",
		Before: func(_ *schema.Engine, recv *object.Obj, _ []object.Value) error {
			deleted = append(deleted, recv.OID)
			return nil
		},
	})
	p, err := en.Create("Point", []object.Value{object.Float(0), object.Float(0)})
	if err != nil {
		t.Fatal(err)
	}
	if err := en.Delete(p); err != nil {
		t.Fatal(err)
	}
	if len(created) != 1 || created[0] != p || len(deleted) != 1 || deleted[0] != p {
		t.Fatalf("create/delete hooks: %v / %v", created, deleted)
	}
}

package schema

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Fingerprint returns a stable hash of the schema's structure: types (with
// attribute layouts, supertypes, element types, encapsulation), public
// clauses, operation and free-function signatures, and InvalidatedFct
// declarations.
//
// The durable checkpoint stores the fingerprint, and OpenAt compares it
// against the schema the application's DefineSchema callback rebuilt: GOMpl
// function bodies are Go ASTs and closures, so the schema itself is code, not
// data — what is persisted is only the check that the code reopening the base
// is congruent with the code that wrote it. A mismatch fails recovery rather
// than silently decoding records against the wrong layout.
func (s *Schema) Fingerprint() uint64 {
	var b strings.Builder
	for _, tn := range s.Reg.Types() {
		t := s.Reg.Lookup(tn)
		fmt.Fprintf(&b, "type %s kind=%d super=%q elem=%q strict=%t\n",
			t.Name, t.Kind, t.Super, t.Elem, t.StrictEncapsulated)
		for _, a := range t.Attrs {
			fmt.Fprintf(&b, "  attr %s:%s public=%t\n", a.Name, a.Type, a.Public)
		}
		for _, n := range sortedKeys(s.public[tn]) {
			fmt.Fprintf(&b, "  public %s\n", n)
		}
		ops := make([]string, 0, len(s.ops[tn]))
		for op := range s.ops[tn] {
			ops = append(ops, op)
		}
		sort.Strings(ops)
		for _, op := range ops {
			fn := s.ops[tn][op]
			fmt.Fprintf(&b, "  op %s(%s):%s sef=%t\n",
				op, strings.Join(fn.ParamTypes(), ","), fn.ResultType, fn.SideEffectFree)
		}
		byOp := s.invalidatedFct[tn]
		invOps := make([]string, 0, len(byOp))
		for op := range byOp {
			invOps = append(invOps, op)
		}
		sort.Strings(invOps)
		for _, op := range invOps {
			fmt.Fprintf(&b, "  invalidatedFct %s -> %s\n",
				op, strings.Join(sortedKeys(byOp[op]), ","))
		}
	}
	free := make([]string, 0, len(s.free))
	for n := range s.free {
		free = append(free, n)
	}
	sort.Strings(free)
	for _, n := range free {
		fn := s.free[n]
		fmt.Fprintf(&b, "func %s(%s):%s sef=%t\n",
			n, strings.Join(fn.ParamTypes(), ","), fn.ResultType, fn.SideEffectFree)
	}
	h := fnv.New64a()
	h.Write([]byte(b.String()))
	return h.Sum64()
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

package schema

import (
	"fmt"
	"strings"
	"sync/atomic"

	"gomdb/internal/lang"
	"gomdb/internal/object"
	"gomdb/internal/storage"
)

// CallInterceptor lets the GMR manager short-circuit invocations of
// materialized functions into forward GMR lookups (Section 3.2: "every
// invocation of a materialized function is mapped to a forward query").
// It returns handled=false to fall through to normal evaluation.
type CallInterceptor func(fn *lang.Function, args []object.Value) (v object.Value, handled bool, err error)

// Engine executes GOMpl operations against an object manager. It implements
// lang.Runtime and carries the update-hook table the GMR manager installs
// (the schema rewrite) plus the access-tracking used to build the RRR.
type Engine struct {
	Sch   *Schema
	Objs  *object.Manager
	Clock *storage.Clock
	Hooks *HookTable

	interceptor CallInterceptor

	// trackers is a stack of access recorders; (re)materialization pushes
	// one to collect the objects a computation visits. Tracking only runs
	// during (re)materialization, which executes under the exclusive
	// Database lock, so the stack needs no further synchronization.
	trackers []*accessTracker
	// suspend > 0 disables tracking: inside a public operation of a
	// strictly encapsulated type only the receiver is recorded, its
	// subobjects are not (Section 5.3). Write-path-only, like trackers.
	suspend int
	// noIntercept > 0 disables the GMR interceptor: rematerialization must
	// recompute from base objects, not from (possibly stale) GMR entries.
	// Counted atomically because EvalRaw runs on the concurrent read path
	// (consistency checks, non-materialized function evaluation).
	noIntercept atomic.Int64

	// shadow, when non-nil, marks this engine as a read-only evaluation
	// clone created by Shadow: object reads take the charge-free snapshot
	// path and are recorded here for later charged replay; mutations are
	// refused with ErrShadowMutation. See shadow.go.
	shadow *shadowTrace
}

// NewEngine wires an engine over a schema and object manager.
func NewEngine(sch *Schema, objs *object.Manager, clock *storage.Clock) *Engine {
	return &Engine{Sch: sch, Objs: objs, Clock: clock, Hooks: NewHookTable()}
}

// SetInterceptor installs (or clears, with nil) the materialized-call
// interceptor.
func (en *Engine) SetInterceptor(ic CallInterceptor) { en.interceptor = ic }

// Charge implements lang.Runtime.
func (en *Engine) Charge(n int64) { en.Clock.AddCPU(n) }

// accessTracker records the objects a tracked evaluation visits: the set
// feeds RRR maintenance, the first-access order feeds the clustering pass
// (objects read together should live together, in the order they are read).
type accessTracker struct {
	set   map[object.OID]struct{}
	order []object.OID
}

// PushTracker starts recording accessed objects; the returned set fills as
// evaluation proceeds until PopTracker.
func (en *Engine) PushTracker() map[object.OID]struct{} {
	t := &accessTracker{set: make(map[object.OID]struct{})}
	en.trackers = append(en.trackers, t)
	return t.set
}

// PopTracker stops the most recent tracker.
func (en *Engine) PopTracker() {
	en.trackers = en.trackers[:len(en.trackers)-1]
}

func (en *Engine) track(oid object.OID) {
	if en.suspend > 0 || len(en.trackers) == 0 {
		return
	}
	for _, t := range en.trackers {
		if _, seen := t.set[oid]; !seen {
			t.set[oid] = struct{}{}
			t.order = append(t.order, oid)
		}
	}
}

// Tracking reports whether any access tracker is active (and not suspended).
func (en *Engine) Tracking() bool { return len(en.trackers) > 0 && en.suspend == 0 }

// ReadAttr implements lang.Runtime.
func (en *Engine) ReadAttr(recv object.Value, attr string) (object.Value, error) {
	switch recv.Kind {
	case object.KRef:
		o, err := en.getObject(recv.R)
		if err != nil {
			return object.Null(), err
		}
		en.track(o.OID)
		i := en.Objs.AttrIndex(o.Type, attr)
		if i < 0 {
			return object.Null(), fmt.Errorf("schema: type %q has no attribute %q", o.Type, attr)
		}
		return o.Attrs[i], nil
	case object.KTuple:
		layout := en.Objs.Layout(recv.TupleType)
		for i, a := range layout {
			if a.Name == attr && i < len(recv.Elems) {
				return recv.Elems[i], nil
			}
		}
		return object.Null(), fmt.Errorf("schema: tuple type %q has no attribute %q", recv.TupleType, attr)
	case object.KNull:
		return object.Null(), fmt.Errorf("schema: attribute %q read on null", attr)
	default:
		return object.Null(), fmt.Errorf("schema: attribute %q read on %v value", attr, recv.Kind)
	}
}

// ReadElems implements lang.Runtime.
func (en *Engine) ReadElems(coll object.Value) ([]object.Value, error) {
	switch coll.Kind {
	case object.KRef:
		o, err := en.getObject(coll.R)
		if err != nil {
			return nil, err
		}
		en.track(o.OID)
		out := make([]object.Value, len(o.Elems))
		copy(out, o.Elems)
		return out, nil
	case object.KSet, object.KList:
		return coll.Elems, nil
	case object.KNull:
		return nil, nil
	default:
		return nil, fmt.Errorf("schema: element read on %v value", coll.Kind)
	}
}

// resolveCall determines the function and dispatch type for a Call name.
func (en *Engine) resolveCall(name string, args []object.Value) (*lang.Function, string, error) {
	dot := strings.IndexByte(name, '.')
	if dot < 0 {
		fn, ok := en.Sch.ResolveStatic(name)
		if !ok {
			return nil, "", fmt.Errorf("schema: unknown function %q", name)
		}
		return fn, "", nil
	}
	declType, opName := name[:dot], name[dot+1:]
	dispatchType := declType
	// Dynamic dispatch needs the receiver's type tag, which costs an object
	// read. When the declared type has no subtypes the dispatch is static —
	// in particular, invoking a materialized function then reaches the GMR
	// without touching the argument object, as the paper's rewrite into a
	// forward query implies.
	if len(args) > 0 && args[0].Kind == object.KRef && en.Sch.Reg.HasSubtypes(declType) {
		o, err := en.getObject(args[0].R)
		if err != nil {
			return nil, "", err
		}
		dispatchType = o.Type
	}
	fn, ok := en.Sch.ResolveOp(dispatchType, opName)
	if !ok {
		return nil, "", fmt.Errorf("schema: no operation %q on type %q", opName, dispatchType)
	}
	return fn, dispatchType, nil
}

// CallFunction implements lang.Runtime: dynamic dispatch, GMR interception,
// information-hiding atomicity, and public-operation update hooks.
func (en *Engine) CallFunction(name string, args []object.Value) (object.Value, error) {
	fn, dispatchType, err := en.resolveCall(name, args)
	if err != nil {
		return object.Null(), err
	}
	if en.interceptor != nil && en.noIntercept.Load() == 0 {
		v, handled, err := en.interceptor(fn, args)
		if handled || err != nil {
			return v, err
		}
	}
	opName := name
	if i := strings.IndexByte(name, '.'); i >= 0 {
		opName = name[i+1:]
	}

	// Section 5.3: a public operation of a strictly encapsulated type is
	// atomic with respect to materialization tracking — record the receiver
	// and suspend tracking for the subobjects it touches.
	restoreTracking := false
	if dispatchType != "" {
		t := en.Sch.Reg.Lookup(dispatchType)
		if t != nil && t.StrictEncapsulated && en.Sch.HasInvalidatedFctDecl(dispatchType) &&
			en.Sch.IsPublic(dispatchType, opName) && en.Tracking() {
			if args[0].Kind == object.KRef {
				en.track(args[0].R)
			}
			en.suspend++
			restoreTracking = true
		}
	}
	if restoreTracking {
		defer func() { en.suspend-- }()
	}

	// Public-operation update hooks (installed only for ops with a
	// non-empty InvalidatedFct or CompensatedFct under information hiding).
	var recvObj *object.Obj
	var hooks []*UpdateHook
	if dispatchType != "" && len(args) > 0 && args[0].Kind == object.KRef {
		hooks = en.Hooks.lookup(dispatchType, opName)
		if len(hooks) > 0 && en.shadow != nil {
			// A hooked public operation mutates the receiver (and cascades
			// into GMR maintenance) — not allowed under shadow evaluation.
			return object.Null(), ErrShadowMutation
		}
		if len(hooks) > 0 {
			recvObj, err = en.Objs.Get(args[0].R)
			if err != nil {
				return object.Null(), err
			}
			for _, h := range hooks {
				if h.Before != nil {
					if err := h.Before(en, recvObj, args[1:]); err != nil {
						return object.Null(), err
					}
				}
			}
		}
	}

	v, err := lang.Eval(en, fn, args)
	if err != nil {
		return object.Null(), err
	}

	if len(hooks) > 0 {
		// Re-read: the body may have changed the receiver.
		recvObj, err = en.Objs.Get(args[0].R)
		if err != nil {
			return object.Null(), err
		}
		for _, h := range hooks {
			if h.After != nil {
				if err := h.After(en, recvObj, args[1:]); err != nil {
					return object.Null(), err
				}
			}
		}
	}
	return v, nil
}

// EvalTracked evaluates fn(args) with access tracking and without GMR
// interception — the (re)materialization entry point. It returns the result
// and the set of accessed objects for RRR maintenance.
func (en *Engine) EvalTracked(fn *lang.Function, args []object.Value) (object.Value, map[object.OID]struct{}, error) {
	v, set, _, err := en.EvalTrackedOrdered(fn, args)
	return v, set, err
}

// EvalTrackedOrdered is EvalTracked plus the forward trace: the accessed
// objects in first-access order. The trace is the input to trace-driven
// clustering — consecutive positions are objects the computation touched
// back-to-back, so co-locating them turns the function's read pattern into
// sequential page access.
func (en *Engine) EvalTrackedOrdered(fn *lang.Function, args []object.Value) (object.Value, map[object.OID]struct{}, []object.OID, error) {
	tracker := &accessTracker{set: make(map[object.OID]struct{})}
	en.trackers = append(en.trackers, tracker)
	en.noIntercept.Add(1)
	// Track argument objects themselves: the paper's RRR examples include
	// the argument objects (e.g. [id1, volume, <id1>]).
	for _, a := range args {
		if a.Kind == object.KRef {
			en.track(a.R)
		}
	}
	// The Section 5.3 atomicity rule applies to the materialized function
	// itself: if it is a public operation of a strictly encapsulated type,
	// only the argument objects are marked, none of their subobjects.
	if dot := strings.IndexByte(fn.Name, '.'); dot >= 0 && len(args) > 0 && args[0].Kind == object.KRef {
		if o, err := en.getObject(args[0].R); err == nil {
			t := en.Sch.Reg.Lookup(o.Type)
			if t != nil && t.StrictEncapsulated && en.Sch.HasInvalidatedFctDecl(o.Type) &&
				en.Sch.IsPublic(o.Type, fn.Name[dot+1:]) {
				en.suspend++
				defer func() { en.suspend-- }()
			}
		}
	}
	v, err := lang.Eval(en, fn, args)
	en.noIntercept.Add(-1)
	en.PopTracker()
	if err != nil {
		return object.Null(), nil, nil, err
	}
	return v, tracker.set, tracker.order, nil
}

// EvalRaw evaluates fn(args) without access tracking and without GMR
// interception — the "normal" function of Section 6, used when a result is
// not (or may not be) materialized.
func (en *Engine) EvalRaw(fn *lang.Function, args []object.Value) (object.Value, error) {
	en.noIntercept.Add(1)
	defer en.noIntercept.Add(-1)
	return lang.Eval(en, fn, args)
}

// SetAttr implements lang.Runtime: the elementary update t.set_A with its
// rewritten hook pipeline (Figure 4 / Figure 5 of the paper). Compensation
// hooks run before the store, invalidation hooks after.
func (en *Engine) SetAttr(recv object.Value, attr string, v object.Value) error {
	if recv.Kind != object.KRef {
		return fmt.Errorf("schema: set_%s on %v value", attr, recv.Kind)
	}
	if en.shadow != nil {
		return ErrShadowMutation
	}
	o, err := en.Objs.Get(recv.R)
	if err != nil {
		return err
	}
	i := en.Objs.AttrIndex(o.Type, attr)
	if i < 0 {
		return fmt.Errorf("schema: type %q has no attribute %q", o.Type, attr)
	}
	hooks := en.Hooks.lookup(o.Type, "set_"+attr)
	for _, h := range hooks {
		if h.Before != nil {
			if err := h.Before(en, o, []object.Value{v}); err != nil {
				return err
			}
		}
	}
	o.Attrs[i] = v
	if err := en.Objs.Put(o); err != nil {
		return err
	}
	for _, h := range hooks {
		if h.After != nil {
			if err := h.After(en, o, []object.Value{v}); err != nil {
				return err
			}
		}
	}
	return nil
}

// InsertElem implements lang.Runtime: the elementary update t.insert.
// Inserting an element already present in a set-structured object is a
// no-op and triggers no hooks.
func (en *Engine) InsertElem(coll, elem object.Value) error {
	if coll.Kind != object.KRef {
		return fmt.Errorf("schema: insert on %v value", coll.Kind)
	}
	if en.shadow != nil {
		return ErrShadowMutation
	}
	o, err := en.Objs.Get(coll.R)
	if err != nil {
		return err
	}
	t := en.Sch.Reg.Lookup(o.Type)
	if t == nil || (t.Kind != object.SetType && t.Kind != object.ListType) {
		return fmt.Errorf("schema: insert on non-collection type %q", o.Type)
	}
	if t.Kind == object.SetType {
		for _, e := range o.Elems {
			if e.Equal(elem) {
				return nil
			}
		}
	}
	hooks := en.Hooks.lookup(o.Type, "insert")
	for _, h := range hooks {
		if h.Before != nil {
			if err := h.Before(en, o, []object.Value{elem}); err != nil {
				return err
			}
		}
	}
	o.Elems = append(o.Elems, elem)
	if err := en.Objs.Put(o); err != nil {
		return err
	}
	for _, h := range hooks {
		if h.After != nil {
			if err := h.After(en, o, []object.Value{elem}); err != nil {
				return err
			}
		}
	}
	return nil
}

// RemoveElem implements lang.Runtime: the elementary update t.remove.
// Removing an absent element is a no-op and triggers no hooks.
func (en *Engine) RemoveElem(coll, elem object.Value) error {
	if coll.Kind != object.KRef {
		return fmt.Errorf("schema: remove on %v value", coll.Kind)
	}
	if en.shadow != nil {
		return ErrShadowMutation
	}
	o, err := en.Objs.Get(coll.R)
	if err != nil {
		return err
	}
	idx := -1
	for i, e := range o.Elems {
		if e.Equal(elem) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	hooks := en.Hooks.lookup(o.Type, "remove")
	for _, h := range hooks {
		if h.Before != nil {
			if err := h.Before(en, o, []object.Value{elem}); err != nil {
				return err
			}
		}
	}
	o.Elems = append(o.Elems[:idx], o.Elems[idx+1:]...)
	if err := en.Objs.Put(o); err != nil {
		return err
	}
	for _, h := range hooks {
		if h.After != nil {
			if err := h.After(en, o, []object.Value{elem}); err != nil {
				return err
			}
		}
	}
	return nil
}

// Create stores a new tuple instance and fires the t.create hooks
// (GMR_Manager.new_object, Section 4.2).
func (en *Engine) Create(typeName string, attrs []object.Value) (object.OID, error) {
	oid, err := en.Objs.Create(typeName, attrs)
	if err != nil {
		return object.NilOID, err
	}
	if hooks := en.Hooks.lookup(typeName, "create"); len(hooks) > 0 {
		o, err := en.Objs.Get(oid)
		if err != nil {
			return object.NilOID, err
		}
		for _, h := range hooks {
			if h.After != nil {
				if err := h.After(en, o, nil); err != nil {
					return object.NilOID, err
				}
			}
		}
	}
	return oid, nil
}

// CreateCollection stores a new set/list instance and fires create hooks.
func (en *Engine) CreateCollection(typeName string, elems []object.Value) (object.OID, error) {
	oid, err := en.Objs.CreateCollection(typeName, elems)
	if err != nil {
		return object.NilOID, err
	}
	if hooks := en.Hooks.lookup(typeName, "create"); len(hooks) > 0 {
		o, err := en.Objs.Get(oid)
		if err != nil {
			return object.NilOID, err
		}
		for _, h := range hooks {
			if h.After != nil {
				if err := h.After(en, o, nil); err != nil {
					return object.NilOID, err
				}
			}
		}
	}
	return oid, nil
}

// Delete removes an object after firing the t.delete hooks
// (GMR_Manager.forget_object runs before the object disappears, Figure 4).
func (en *Engine) Delete(oid object.OID) error {
	o, err := en.Objs.Get(oid)
	if err != nil {
		return err
	}
	for _, h := range en.Hooks.lookup(o.Type, "delete") {
		if h.Before != nil {
			if err := h.Before(en, o, nil); err != nil {
				return err
			}
		}
	}
	return en.Objs.Delete(oid)
}

// SetAttrByName is a convenience wrapper for host code (benchmark drivers,
// examples): oid.set_attr(v).
func (en *Engine) SetAttrByName(oid object.OID, attr string, v object.Value) error {
	return en.SetAttr(object.Ref(oid), attr, v)
}

// Invoke calls a declared function by name with the given arguments.
func (en *Engine) Invoke(name string, args ...object.Value) (object.Value, error) {
	return en.CallFunction(name, args)
}

package schema

import "gomdb/internal/object"

// This file models the schema rewrite of Section 4.3. In GOM the elementary
// update operations (t.set_A, t.insert, t.remove, t.create, t.delete) of
// every type involved in a materialization are modified and recompiled so
// that each invocation also notifies the GMR manager. Here the "recompiled"
// operation is the hook pipeline attached to the (type, operation) pair:
// installing a hook is the rewrite, removing it restores the original
// operation, and types without hooks run the unmodified fast path — the
// remainder of the object system stays invariant, exactly the modularity
// argument the paper makes.

// UpdateHook is one notification inserted into a rewritten update operation.
// Before runs before the update is applied (compensating actions must see
// the pre-update state, Section 5.4); After runs after it (invalidation must
// see the post-update state, Section 4.3).
type UpdateHook struct {
	// Name identifies the hook for diagnostics (typically the GMR name).
	Name string
	// Before is invoked with the receiver object in its pre-update state and
	// the update's arguments (the new attribute value, or the inserted/
	// removed element).
	Before func(en *Engine, recv *object.Obj, args []object.Value) error
	// After is invoked with the receiver in its post-update state.
	After func(en *Engine, recv *object.Obj, args []object.Value) error
}

type hookKey struct {
	Type string
	Op   string // "set_<A>", "insert", "remove", "create", "delete", or a public op name
}

// HookTable holds the installed update hooks per (type, operation).
type HookTable struct {
	m map[hookKey][]*UpdateHook
}

// NewHookTable returns an empty table.
func NewHookTable() *HookTable { return &HookTable{m: make(map[hookKey][]*UpdateHook)} }

// Install rewrites operation op of typeName to additionally run hook, and
// returns a function that undoes the rewrite (used when a GMR is dropped).
func (ht *HookTable) Install(typeName, op string, hook *UpdateHook) func() {
	k := hookKey{typeName, op}
	ht.m[k] = append(ht.m[k], hook)
	return func() {
		hooks := ht.m[k]
		for i, h := range hooks {
			if h == hook {
				ht.m[k] = append(hooks[:i], hooks[i+1:]...)
				break
			}
		}
		if len(ht.m[k]) == 0 {
			delete(ht.m, k)
		}
	}
}

func (ht *HookTable) lookup(typeName, op string) []*UpdateHook {
	return ht.m[hookKey{typeName, op}]
}

// Installed reports whether any hook rewrites (typeName, op); tests use it
// to verify that uninvolved types remain unmodified.
func (ht *HookTable) Installed(typeName, op string) bool {
	return len(ht.m[hookKey{typeName, op}]) > 0
}

// Count returns the total number of installed hooks.
func (ht *HookTable) Count() int {
	n := 0
	for _, hs := range ht.m {
		n += len(hs)
	}
	return n
}

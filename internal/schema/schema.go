// Package schema implements GOM type definition frames and the execution
// engine for type-associated operations. It owns the two mechanisms the
// GMR manager plugs into:
//
//   - the schema rewrite of Section 4.3: elementary update operations
//     (set_A, insert, remove, create, delete) and — for strictly
//     encapsulated types — public updating operations carry hook pipelines
//     that are rebuilt ("recompiled") whenever a GMR is created or dropped,
//     so only involved types pay any overhead; and
//   - the evaluation of GOMpl bodies with optional access tracking, which
//     feeds the Reverse Reference Relation during (re)materialization.
package schema

import (
	"fmt"
	"strings"

	"gomdb/internal/lang"
	"gomdb/internal/object"
)

// Schema holds the type definitions and declared functions of an object
// base.
type Schema struct {
	Reg *object.Registry

	// ops maps typeName -> opName -> function for type-associated
	// operations (receiver is Params[0]).
	ops map[string]map[string]*lang.Function
	// free maps free-function names to declarations.
	free map[string]*lang.Function
	// public maps typeName -> exported member names (operations and the
	// built-in A / set_A attribute operations listed in the public clause).
	public map[string]map[string]bool
	// invalidatedFct holds the data-type implementor's InvalidatedFct sets
	// (Definition 5.3): typeName -> public op -> materialized function ids
	// whose results the op may affect. Ops of strictly encapsulated types
	// that do not appear here are declared result-invariant (e.g. rotate
	// for volume).
	invalidatedFct map[string]map[string]map[string]bool
}

// New returns an empty schema.
func New() *Schema {
	return &Schema{
		Reg:            object.NewRegistry(),
		ops:            make(map[string]map[string]*lang.Function),
		free:           make(map[string]*lang.Function),
		public:         make(map[string]map[string]bool),
		invalidatedFct: make(map[string]map[string]map[string]bool),
	}
}

// DefineType registers a type with its public clause. Attribute operations
// A and set_A are exported if the attribute is listed in publicNames or
// marked Public in its AttrDef.
func (s *Schema) DefineType(t *object.Type, publicNames ...string) error {
	if err := s.Reg.Register(t); err != nil {
		return err
	}
	pub := make(map[string]bool)
	for _, n := range publicNames {
		pub[n] = true
	}
	for _, a := range t.Attrs {
		if a.Public {
			pub[a.Name] = true
			pub["set_"+a.Name] = true
		}
	}
	s.public[t.Name] = pub
	return nil
}

// DefineOp attaches a type-associated operation. The function's first
// parameter is the receiver and must be declared with the type's name (or a
// supertype for inherited redefinitions).
func (s *Schema) DefineOp(typeName string, opName string, fn *lang.Function) error {
	if s.Reg.Lookup(typeName) == nil {
		return fmt.Errorf("schema: operation %s on unknown type %q", opName, typeName)
	}
	if len(fn.Params) == 0 {
		return fmt.Errorf("schema: operation %s.%s needs a receiver parameter", typeName, opName)
	}
	if fn.Name == "" {
		fn.Name = typeName + "." + opName
	}
	m := s.ops[typeName]
	if m == nil {
		m = make(map[string]*lang.Function)
		s.ops[typeName] = m
	}
	if _, dup := m[opName]; dup {
		return fmt.Errorf("schema: duplicate operation %s.%s", typeName, opName)
	}
	m[opName] = fn
	return nil
}

// DefineFunc registers a free function (e.g. a multi-argument function such
// as distance: Cuboid, Robot -> float).
func (s *Schema) DefineFunc(fn *lang.Function) error {
	if fn.Name == "" || strings.Contains(fn.Name, ".") {
		return fmt.Errorf("schema: free function needs an unqualified name, got %q", fn.Name)
	}
	if _, dup := s.free[fn.Name]; dup {
		return fmt.Errorf("schema: duplicate function %q", fn.Name)
	}
	s.free[fn.Name] = fn
	return nil
}

// MakePublic adds names to a type's public clause after definition.
func (s *Schema) MakePublic(typeName string, names ...string) {
	pub := s.public[typeName]
	if pub == nil {
		pub = make(map[string]bool)
		s.public[typeName] = pub
	}
	for _, n := range names {
		pub[n] = true
	}
}

// IsPublic reports whether member name is in typeName's public clause
// (searching supertypes for inherited operations).
func (s *Schema) IsPublic(typeName, name string) bool {
	for tn := typeName; tn != ""; {
		if s.public[tn][name] {
			return true
		}
		t := s.Reg.Lookup(tn)
		if t == nil {
			break
		}
		tn = t.Super
	}
	return false
}

// DeclareInvalidatedFct records the implementor-supplied InvalidatedFct set
// for a public operation of a strictly encapsulated type (Definition 5.3).
func (s *Schema) DeclareInvalidatedFct(typeName, opName string, materializedFns ...string) {
	byOp := s.invalidatedFct[typeName]
	if byOp == nil {
		byOp = make(map[string]map[string]bool)
		s.invalidatedFct[typeName] = byOp
	}
	set := byOp[opName]
	if set == nil {
		set = make(map[string]bool)
		byOp[opName] = set
	}
	for _, f := range materializedFns {
		set[f] = true
	}
}

// InvalidatedFct returns the declared InvalidatedFct(typeName.opName) set
// and whether any declaration exists for the operation.
func (s *Schema) InvalidatedFct(typeName, opName string) (map[string]bool, bool) {
	set, ok := s.invalidatedFct[typeName][opName]
	return set, ok
}

// HasInvalidatedFctDecl reports whether the type has any InvalidatedFct
// declarations at all; used to decide whether information hiding can be
// exploited for it.
func (s *Schema) HasInvalidatedFctDecl(typeName string) bool {
	return len(s.invalidatedFct[typeName]) > 0
}

// ResolveOp resolves opName against typeName's operation table, walking the
// supertype chain (single inheritance with substitutability).
func (s *Schema) ResolveOp(typeName, opName string) (*lang.Function, bool) {
	for tn := typeName; tn != ""; {
		if fn, ok := s.ops[tn][opName]; ok {
			return fn, true
		}
		t := s.Reg.Lookup(tn)
		if t == nil {
			break
		}
		tn = t.Super
	}
	return nil, false
}

// ResolveStatic implements lang.FuncResolver: it resolves a name as written
// in a Call node ("Type.op" or free name).
func (s *Schema) ResolveStatic(fn string) (*lang.Function, bool) {
	if i := strings.IndexByte(fn, '.'); i >= 0 {
		return s.ResolveOp(fn[:i], fn[i+1:])
	}
	f, ok := s.free[fn]
	return f, ok
}

// LookupFunction resolves a possibly qualified function name like
// ResolveStatic, returning an error with context on failure.
func (s *Schema) LookupFunction(fn string) (*lang.Function, error) {
	f, ok := s.ResolveStatic(fn)
	if !ok {
		return nil, fmt.Errorf("schema: unknown function %q", fn)
	}
	return f, nil
}

// AttrType implements lang.TypeInfo over the flattened (inherited) layout.
func (s *Schema) AttrType(typeName, attr string) (string, bool) {
	for _, a := range s.Reg.InheritedAttrs(typeName) {
		if a.Name == attr {
			return a.Type, true
		}
	}
	return "", false
}

// ElemType implements lang.TypeInfo.
func (s *Schema) ElemType(typeName string) (string, bool) {
	t := s.Reg.Lookup(typeName)
	if t == nil || (t.Kind != object.SetType && t.Kind != object.ListType) {
		return "", false
	}
	return t.Elem, true
}

// IsCollection implements lang.TypeKinder.
func (s *Schema) IsCollection(typeName string) bool {
	t := s.Reg.Lookup(typeName)
	return t != nil && (t.Kind == object.SetType || t.Kind == object.ListType)
}

// IsKnownType implements lang.TypeKinder.
func (s *Schema) IsKnownType(typeName string) bool {
	return object.IsAtomicName(typeName) || s.Reg.Lookup(typeName) != nil
}

// Binder returns a GOMpl binder resolving against this schema.
func (s *Schema) Binder() *lang.Binder {
	return &lang.Binder{Types: s, Funcs: s, Kinds: s}
}

// DefineOpSrc parses and type-checks a textual GOMpl definition and
// attaches it as an operation of typeName — the concrete syntax of the
// paper's type definition frames:
//
//	define volume: float is
//	    return self.length * self.width * self.height
//	end
//
// The receiver parameter self: typeName is implicit. sideEffectFree marks
// the function materializable (Definition 3.1).
func (s *Schema) DefineOpSrc(typeName, src string, sideEffectFree bool) (*lang.Function, error) {
	pf, err := lang.ParseDefine(src)
	if err != nil {
		return nil, err
	}
	if pf.RecvType != "" && pf.RecvType != typeName {
		return nil, fmt.Errorf("schema: define %s.%s attached to type %q", pf.RecvType, pf.Name, typeName)
	}
	fn, err := s.Binder().Bind(pf, typeName, sideEffectFree)
	if err != nil {
		return nil, err
	}
	if err := s.DefineOp(typeName, pf.Name, fn); err != nil {
		return nil, err
	}
	return fn, nil
}

// DefineFuncSrc parses, type-checks, and registers a textual free-function
// definition (all parameters explicit).
func (s *Schema) DefineFuncSrc(src string, sideEffectFree bool) (*lang.Function, error) {
	pf, err := lang.ParseDefine(src)
	if err != nil {
		return nil, err
	}
	if pf.RecvType != "" {
		fn, err := s.Binder().Bind(pf, pf.RecvType, sideEffectFree)
		if err != nil {
			return nil, err
		}
		if err := s.DefineOp(pf.RecvType, pf.Name, fn); err != nil {
			return nil, err
		}
		return fn, nil
	}
	fn, err := s.Binder().Bind(pf, "", sideEffectFree)
	if err != nil {
		return nil, err
	}
	if err := s.DefineFunc(fn); err != nil {
		return nil, err
	}
	return fn, nil
}

// Functions returns all declared functions (operations and free functions),
// for diagnostics and documentation tools.
func (s *Schema) Functions() []*lang.Function {
	var out []*lang.Function
	for _, byOp := range s.ops {
		for _, fn := range byOp {
			out = append(out, fn)
		}
	}
	for _, fn := range s.free {
		out = append(out, fn)
	}
	return out
}

// OpNames returns the operation names defined directly on typeName.
func (s *Schema) OpNames(typeName string) []string {
	var out []string
	for n := range s.ops[typeName] {
		out = append(out, n)
	}
	return out
}

package schema

import (
	"errors"

	"gomdb/internal/object"
	"gomdb/internal/storage"
)

// ErrShadowMutation is returned when an evaluation running in a shadow engine
// attempts an elementary update or a hooked public operation. Shadow
// evaluation is strictly read-only: the deferred-rematerialization workers use
// it to compute GMR results in parallel, and any mutation (or hook cascade,
// which mutates GMR state) would break the charge-determinism argument. The
// caller reacts by falling back to a serial, fully charged rematerialization.
var ErrShadowMutation = errors.New("schema: mutation attempted during shadow evaluation")

// shadowTrace records, in evaluation order, every object the shadow
// evaluation fetched. The deferred flush replays the trace through the
// charged object-read path afterwards, so the simulated cost of a parallel
// drain is identical to a serial one (see DESIGN.md, "Update path").
type shadowTrace struct {
	oids []object.OID

	// versioned marks an MVCC snapshot clone (SnapshotAt): object reads are
	// served at the pinned version through the copy-on-write overlays, and
	// no trace is recorded (nothing replays it — snapshot reads are
	// charge-free by design and stay so).
	versioned bool
	ver       uint64
}

// Shadow returns a read-only evaluation clone of the engine. The clone shares
// the schema, object manager, clock, hook table, and interceptor with its
// parent but has private tracking state, so multiple shadows may evaluate
// concurrently (under the no-concurrent-writer contract of
// storage.BufferPool.ReadSnapshot). Object reads go through the charge-free
// snapshot path and are recorded in the shadow trace; elementary updates
// return ErrShadowMutation.
//
// The clone is built field-by-field rather than by copying the struct: Engine
// embeds an atomic counter that must not be copied.
func (en *Engine) Shadow() *Engine {
	return &Engine{
		Sch:         en.Sch,
		Objs:        en.Objs,
		Clock:       en.Clock,
		Hooks:       en.Hooks,
		interceptor: en.interceptor,
		shadow:      &shadowTrace{},
	}
}

// SnapshotAt returns a read-only evaluation clone bound to MVCC version
// ver. Like Shadow it refuses mutations with ErrShadowMutation, but its
// object reads resolve through the versioned overlays (safe concurrently
// with a writer) and its simulated charges land on the caller-supplied
// throwaway clock, so a pinned reader never perturbs the engine's clock.
// The interceptor is cleared; the caller installs a snapshot-aware one.
func (en *Engine) SnapshotAt(ver uint64, clock *storage.Clock) *Engine {
	return &Engine{
		Sch:    en.Sch,
		Objs:   en.Objs,
		Clock:  clock,
		Hooks:  en.Hooks,
		shadow: &shadowTrace{versioned: true, ver: ver},
	}
}

// SnapshotVersion returns the pinned MVCC version of a SnapshotAt clone and
// whether the engine is one.
func (en *Engine) SnapshotVersion() (uint64, bool) {
	if en.shadow == nil || !en.shadow.versioned {
		return 0, false
	}
	return en.shadow.ver, true
}

// IsShadow reports whether the engine is a shadow clone.
func (en *Engine) IsShadow() bool { return en.shadow != nil }

// ShadowTrace returns the ordered object accesses recorded so far. Only
// meaningful on engines returned by Shadow.
func (en *Engine) ShadowTrace() []object.OID {
	if en.shadow == nil {
		return nil
	}
	return en.shadow.oids
}

// TraceObject appends an object access to the shadow trace without reading
// the object. The deferred drain uses it to mirror charged reads the manager
// performs outside evaluation proper (dynamic-dispatch receiver reads).
func (en *Engine) TraceObject(oid object.OID) {
	if en.shadow != nil {
		en.shadow.oids = append(en.shadow.oids, oid)
	}
}

// GetObject fetches an object through the engine's evaluation read path:
// charged on a normal engine, snapshot/versioned on a shadow clone. Callers
// outside the package (the query executor) use it so the same code runs
// against live and pinned-snapshot engines.
func (en *Engine) GetObject(oid object.OID) (*object.Obj, error) {
	return en.getObject(oid)
}

// ExtensionOf returns the extension of typeName through the engine's read
// path: a versioned snapshot clone reads it as of its pinned version, any
// other engine reads the live extent directly.
func (en *Engine) ExtensionOf(typeName string) []object.OID {
	if en.shadow != nil && en.shadow.versioned {
		return en.Objs.ExtensionVersioned(typeName, en.shadow.ver)
	}
	return en.Objs.Extension(typeName)
}

// getObject is the single object-fetch point of the evaluation path. A normal
// engine reads through the buffer pool, charging the simulated clock; a
// shadow engine reads a charge-free snapshot and records the access for later
// replay.
func (en *Engine) getObject(oid object.OID) (*object.Obj, error) {
	if en.shadow == nil {
		return en.Objs.Get(oid)
	}
	if en.shadow.versioned {
		return en.Objs.GetVersioned(oid, en.shadow.ver)
	}
	o, err := en.Objs.GetSnapshot(oid)
	if err != nil {
		return nil, err
	}
	en.shadow.oids = append(en.shadow.oids, oid)
	return o, nil
}

package schema_test

// Additional engine coverage: list semantics, free functions, textual
// definitions at the schema level, and the public-clause helpers.

import (
	"testing"

	"gomdb/internal/lang"
	"gomdb/internal/object"
)

func TestListSemanticsAllowDuplicates(t *testing.T) {
	en := newEngine(t)
	if err := en.Sch.DefineType(object.NewTupleType("Item",
		object.AttrDef{Name: "N", Type: "int", Public: true})); err != nil {
		t.Fatal(err)
	}
	if err := en.Sch.DefineType(object.NewListType("Items", "Item"), "insert", "remove"); err != nil {
		t.Fatal(err)
	}
	a, _ := en.Create("Item", []object.Value{object.Int(1)})
	list, err := en.CreateCollection("Items", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Lists preserve order and allow duplicates (Section 2), unlike sets.
	for i := 0; i < 3; i++ {
		if err := en.InsertElem(object.Ref(list), object.Ref(a)); err != nil {
			t.Fatal(err)
		}
	}
	elems, err := en.ReadElems(object.Ref(list))
	if err != nil {
		t.Fatal(err)
	}
	if len(elems) != 3 {
		t.Fatalf("list has %d elements, want 3 (duplicates allowed)", len(elems))
	}
	// Remove takes out one occurrence.
	if err := en.RemoveElem(object.Ref(list), object.Ref(a)); err != nil {
		t.Fatal(err)
	}
	elems, _ = en.ReadElems(object.Ref(list))
	if len(elems) != 2 {
		t.Fatalf("after remove: %d elements", len(elems))
	}
}

func TestFreeFunctionInvocation(t *testing.T) {
	en := newEngine(t)
	defineShape(t, en, false)
	twice := &lang.Function{
		Name:           "twice",
		Params:         []lang.Param{lang.Prm("x", "float")},
		ResultType:     "float",
		SideEffectFree: true,
		Body:           []lang.Stmt{lang.Ret(lang.Mul(lang.F(2), lang.V("x")))},
	}
	if err := en.Sch.DefineFunc(twice); err != nil {
		t.Fatal(err)
	}
	v, err := en.Invoke("twice", object.Float(21))
	if err != nil || !v.Equal(object.Float(42)) {
		t.Fatalf("twice(21) = %v, %v", v, err)
	}
	if fn, err := en.Sch.LookupFunction("twice"); err != nil || fn.Name != "twice" {
		t.Fatalf("LookupFunction: %v, %v", fn, err)
	}
	if _, err := en.Sch.LookupFunction("missing"); err == nil {
		t.Fatal("missing function resolved")
	}
}

func TestSchemaLevelTextualDefinition(t *testing.T) {
	en := newEngine(t)
	defineShape(t, en, false)
	fn, err := en.Sch.DefineOpSrc("Point", `define norm: float is
		return sqrt(self.norm2)
	end`, true)
	if err != nil {
		t.Fatal(err)
	}
	if fn.Name != "Point.norm" || !fn.SideEffectFree {
		t.Fatalf("bound function: %+v", fn)
	}
	p, _ := en.Create("Point", []object.Value{object.Float(3), object.Float(4)})
	v, err := en.Invoke("Point.norm", object.Ref(p))
	if err != nil || !v.Equal(object.Float(5)) {
		t.Fatalf("norm = %v, %v", v, err)
	}
	// DefineFuncSrc with a free function.
	if _, err := en.Sch.DefineFuncSrc(`define half(x: float): float is
		return x / 2.0
	end`, true); err != nil {
		t.Fatal(err)
	}
	v, err = en.Invoke("half", object.Float(10))
	if err != nil || !v.Equal(object.Float(5)) {
		t.Fatalf("half = %v, %v", v, err)
	}
	// Parse errors surface.
	if _, err := en.Sch.DefineOpSrc("Point", `define broken is return`, true); err == nil {
		t.Fatal("broken definition accepted")
	}
}

func TestMakePublicAndOpNames(t *testing.T) {
	en := newEngine(t)
	defineShape(t, en, true) // encapsulated: Point attrs private
	if en.Sch.IsPublic("Point", "X") {
		t.Fatal("private attribute public")
	}
	en.Sch.MakePublic("Point", "X")
	if !en.Sch.IsPublic("Point", "X") {
		t.Fatal("MakePublic had no effect")
	}
	names := en.Sch.OpNames("Point")
	if len(names) != 2 { // norm2, move
		t.Fatalf("OpNames = %v", names)
	}
	// Inherited public clause: a subtype sees the supertype's public ops.
	sq := object.NewTupleType("Square2", object.AttrDef{Name: "Side", Type: "float"})
	sq.Super = "Shape"
	if err := en.Sch.DefineType(sq); err != nil {
		t.Fatal(err)
	}
	if !en.Sch.IsPublic("Square2", "size") {
		t.Fatal("inherited public operation not visible on subtype")
	}
}

func TestKindQueries(t *testing.T) {
	en := newEngine(t)
	defineShape(t, en, false)
	if err := en.Sch.DefineType(object.NewSetType("Shapes", "Shape")); err != nil {
		t.Fatal(err)
	}
	if !en.Sch.IsCollection("Shapes") || en.Sch.IsCollection("Shape") || en.Sch.IsCollection("float") {
		t.Fatal("IsCollection wrong")
	}
	if !en.Sch.IsKnownType("float") || !en.Sch.IsKnownType("Shape") || en.Sch.IsKnownType("Nope") {
		t.Fatal("IsKnownType wrong")
	}
	if et, ok := en.Sch.ElemType("Shapes"); !ok || et != "Shape" {
		t.Fatalf("ElemType = %v, %v", et, ok)
	}
	if _, ok := en.Sch.ElemType("Shape"); ok {
		t.Fatal("ElemType on tuple type succeeded")
	}
}

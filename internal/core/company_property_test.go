package core_test

// Cross-cutting property test over the company application: two GMRs with
// different argument types (Employee.ranking scalar, Company.matrix
// complex) maintained simultaneously — one with a compensating action —
// under random hires, promotions, project insertions, staffing changes, and
// queries. After every operation both extensions must satisfy
// Definition 3.2.

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"gomdb"
	"gomdb/internal/fixtures"
)

type companyWorld struct {
	t        *testing.T
	db       *gomdb.Database
	c        *fixtures.Company
	ranking  *gomdb.GMR
	matrix   *gomdb.GMR
	rng      *rand.Rand
	strategy gomdb.MaterializeOptions
}

func newCompanyWorld(t *testing.T, seed int64, lazyRanking bool, compensate bool) *companyWorld {
	t.Helper()
	db := gomdb.Open(gomdb.DefaultConfig())
	if err := fixtures.DefineCompany(db); err != nil {
		t.Fatal(err)
	}
	c, err := fixtures.PopulateCompany(db, fixtures.CompanyConfig{
		Departments: 3, EmpsPerDep: 4, Projects: 8, JobsPerEmp: 3, ProgsPerProj: 3, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	strat := gomdb.Immediate
	if lazyRanking {
		strat = gomdb.Lazy
	}
	ranking, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Employee.ranking"}, Complete: true,
		Strategy: strat, Mode: gomdb.ModeObjDep,
	})
	if err != nil {
		t.Fatal(err)
	}
	matrix, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Company.matrix"}, Complete: true,
		Strategy: gomdb.Immediate, Mode: gomdb.ModeInfoHiding,
	})
	if err != nil {
		t.Fatal(err)
	}
	if compensate {
		comp, err := db.Schema.LookupFunction("Company.comp_add_project")
		if err != nil {
			t.Fatal(err)
		}
		if err := db.GMRs.DefineCompensation("Company", "add_project", "Company.matrix", comp); err != nil {
			t.Fatal(err)
		}
	}
	return &companyWorld{
		t: t, db: db, c: c, ranking: ranking, matrix: matrix,
		rng: rand.New(rand.NewSource(seed * 7)),
	}
}

func (w *companyWorld) randomOp() error {
	switch w.rng.Intn(7) {
	case 0, 1: // promotion (affects ranking)
		return w.c.Promote()
	case 2: // hire (new argument object for ranking)
		_, err := w.c.HireEmployee(2)
		return err
	case 3: // new project via add_project (affects matrix)
		p, err := w.c.NewProjectWithProgrammers(2)
		if err != nil {
			return err
		}
		_, err = w.db.Call("Company.add_project", gomdb.Ref(w.c.Comp), gomdb.Ref(p))
		return err
	case 4: // restaff a project through the company's interface (strict
		// encapsulation: matrix-relevant state only changes via public ops)
		p := w.c.Projects[w.rng.Intn(len(w.c.Projects))]
		e := w.c.Employees[w.rng.Intn(len(w.c.Employees))]
		op := "Company.staff_project"
		if w.rng.Intn(2) == 0 {
			op = "Company.unstaff_project"
		}
		_, err := w.db.Call(op, gomdb.Ref(w.c.Comp), gomdb.Ref(p), gomdb.Ref(e))
		return err
	case 5: // forward ranking query (revalidates under lazy)
		_, err := w.db.Call("Employee.ranking", gomdb.Ref(w.c.RandomEmployee()))
		return err
	default: // salary change: irrelevant to both functions
		e := w.c.RandomEmployee()
		return w.db.Set(e, "Salary", gomdb.Float(30000+w.rng.Float64()*50000))
	}
}

func (w *companyWorld) checkInvariants() error {
	// ranking: one entry per employee, valid entries consistent.
	n := 0
	var err error
	w.ranking.Entries(func(args, results []gomdb.Value, valid []bool) bool {
		n++
		if !valid[0] {
			return true
		}
		fn, _ := w.db.Schema.LookupFunction("Employee.ranking")
		fresh, e := w.db.Engine.EvalRaw(fn, args)
		if e != nil {
			err = e
			return false
		}
		if !valuesClose(fresh, results[0]) {
			err = fmt.Errorf("ranking(%v): stored %v, fresh %v", args[0], results[0], fresh)
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	if n != len(w.c.Employees) {
		return fmt.Errorf("ranking GMR has %d entries for %d employees", n, len(w.c.Employees))
	}
	// matrix: the single entry must canonically equal a recomputation.
	var stored gomdb.Value
	anyValid := false
	w.matrix.Entries(func(_, results []gomdb.Value, valid []bool) bool {
		stored = results[0]
		anyValid = valid[0]
		return false
	})
	if !anyValid {
		// Lazy path: acceptable only if the matrix GMR is lazy — it is
		// immediate here, so an invalid entry is a bug.
		return fmt.Errorf("matrix entry invalid under immediate maintenance")
	}
	fn, _ := w.db.Schema.LookupFunction("Company.matrix")
	fresh, e := w.db.Engine.EvalRaw(fn, []gomdb.Value{gomdb.Ref(w.c.Comp)})
	if e != nil {
		return e
	}
	a := canonValue(w.db, stored, 0, map[gomdb.OID]bool{})
	b := canonValue(w.db, fresh, 0, map[gomdb.OID]bool{})
	if a != b {
		return fmt.Errorf("matrix diverged from recomputation")
	}
	return nil
}

func TestPropertyCompanyTwoGMRs(t *testing.T) {
	for _, cfg := range []struct {
		name        string
		lazyRanking bool
		compensate  bool
	}{
		{"immediate/no-ca", false, false},
		{"lazy-ranking/no-ca", true, false},
		{"immediate/with-ca", false, true},
		{"lazy-ranking/with-ca", true, true},
	} {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			check := func(seed int64) bool {
				w := newCompanyWorld(t, seed%500+1, cfg.lazyRanking, cfg.compensate)
				for i := 0; i < 15; i++ {
					if err := w.randomOp(); err != nil {
						t.Logf("seed %d op %d: %v", seed, i, err)
						return false
					}
					if err := w.checkInvariants(); err != nil {
						t.Logf("seed %d after op %d: %v", seed, i, err)
						return false
					}
				}
				return true
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 6}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCompensationEquivalenceProperty: Definition 5.4's equivalence — for
// random project insertions, the compensated matrix equals the matrix
// recomputed from scratch.
func TestCompensationEquivalenceProperty(t *testing.T) {
	check := func(seed int64) bool {
		w := newCompanyWorld(t, seed%500+1, false, true)
		for i := 0; i < 6; i++ {
			n := 1 + w.rng.Intn(4)
			p, err := w.c.NewProjectWithProgrammers(n)
			if err != nil {
				return false
			}
			if _, err := w.db.Call("Company.add_project", gomdb.Ref(w.c.Comp), gomdb.Ref(p)); err != nil {
				return false
			}
			if err := w.checkInvariants(); err != nil {
				t.Logf("seed %d insert %d: %v", seed, i, err)
				return false
			}
		}
		// All updates must have gone through compensation, none through
		// full rematerialization of the matrix.
		if w.db.GMRs.Stats.Compensations != 6 {
			t.Logf("seed %d: %d compensations", seed, w.db.GMRs.Stats.Compensations)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

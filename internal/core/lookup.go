package core

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"gomdb/internal/btree"
	"gomdb/internal/lang"
	"gomdb/internal/object"
)

// Retrieval operations on GMRs (Section 3.2): forward queries that probe a
// known argument combination and backward range queries over the result
// columns, plus the interceptor that rewrites ordinary invocations of
// materialized functions into forward queries.

// ErrNotMaterialized reports a lookup on a function with no GMR.
var ErrNotMaterialized = errors.New("core: function is not materialized")

// ErrIncomplete reports a backward query on an incomplete GMR extension; a
// complete answer would require computing the missing combinations, so the
// planner falls back to an extension scan instead.
var ErrIncomplete = errors.New("core: GMR extension is not complete")

// intercept is the CallInterceptor installed into the engine: "an invocation
// f(o1,...,on) would be transformed to [a selection on] <<f1,...,fm>> if the
// GMR is present".
func (m *Manager) intercept(fn *lang.Function, args []object.Value) (object.Value, bool, error) {
	if _, ok := m.byFunc[fn.Name]; !ok {
		return object.Null(), false, nil
	}
	v, err := m.Forward(fn.Name, args)
	return v, true, err
}

// Forward answers a forward query: the result of fid for the given argument
// combination. Invalid or missing results are (re)computed; computed results
// refresh or extend the GMR where the restriction and completeness rules
// allow it (Section 3.2).
func (m *Manager) Forward(fid string, args []object.Value) (object.Value, error) {
	g, ok := m.byFunc[fid]
	if !ok {
		return object.Null(), fmt.Errorf("%w: %s", ErrNotMaterialized, fid)
	}
	// Memo fast path: a repeat hit whose epoch is still current is answered
	// without touching the extension heap or the buffer pool. Only the
	// valid-hit exit below fills the cache, so a cached value is always the
	// stored result of a valid entry as of its epoch; any GMR mutation since
	// then has bumped the epoch and the entry is ignored.
	var epoch uint64
	var mkey string
	if g.Memo {
		epoch = m.writeEpoch.Load()
		mkey = memoKey(fid, args)
		if v, ok := m.memo.get(mkey, epoch); ok {
			atomic.AddInt64(&m.Stats.ForwardHits, 1)
			atomic.AddInt64(&m.Stats.MemoHits, 1)
			return v, nil
		}
	}
	i := g.funcIndex(fid)
	if !g.admitsArgs(args) {
		// Outside the restricted atomic domain: compute with the "normal"
		// function, do not store.
		atomic.AddInt64(&m.Stats.ForwardMisses, 1)
		return m.computeRaw(g.Funcs[i], args)
	}
	if e, ok := g.lookup(args); ok {
		if e.Valid[i] {
			m.noteForward(g, e, fid, true)
			if err := g.touch(e); err != nil {
				return object.Null(), err
			}
			if g.Memo {
				m.memo.put(mkey, epoch, e.Results[i])
			}
			return e.Results[i], nil
		}
		// Lazy rematerialization: "at the latest at the next time the
		// function result is needed".
		if err := m.rematerialize(g, e, i); err != nil {
			return object.Null(), err
		}
		m.noteForward(g, e, fid, false)
		return e.Results[i], nil
	}
	if g.Complete {
		// A complete extension misses an argument combination only when the
		// restriction predicate excludes it.
		atomic.AddInt64(&m.Stats.ForwardMisses, 1)
		return m.computeRaw(g.Funcs[i], args)
	}
	// Incremental GMR: cache the freshly computed result (Section 3.2,
	// "missing GMR entries whose results are computed during the evaluation
	// of some query may be inserted").
	if g.Restriction != nil {
		holds, err := m.evalPredicate(g, args)
		if err != nil {
			return object.Null(), err
		}
		if !holds {
			atomic.AddInt64(&m.Stats.ForwardMisses, 1)
			return m.computeRaw(g.Funcs[i], args)
		}
	}
	if err := m.computeEntry(g, args); err != nil {
		return object.Null(), err
	}
	e, _ := g.lookup(args)
	if e == nil {
		return object.Null(), fmt.Errorf("core: entry vanished after insert in %s", g.Name)
	}
	m.noteForward(g, e, fid, false)
	return e.Results[i], nil
}

// noteForward records one forward access to entry e uniformly across the
// three exits of Forward — valid hit, lazy rematerialization, and
// incremental insert: the hit/miss counter, the trace event, and the entry's
// reference bit consulted by second-chance cache eviction. The physical
// tuple access is charged elsewhere (the hit path reads the record via
// touch; the other two exits pay the rematerialization itself), so this
// bookkeeping is deliberately free of simulated-clock charges.
func (m *Manager) noteForward(g *GMR, e *entry, fid string, hit bool) {
	op := "forward_miss"
	if hit {
		atomic.AddInt64(&m.Stats.ForwardHits, 1)
		op = "forward_hit"
	} else {
		atomic.AddInt64(&m.Stats.ForwardMisses, 1)
	}
	e.ref.Store(true)
	m.emit(op, g.Name, fid, object.NilOID)
}

// computeRaw evaluates the plain function (dynamically dispatched) without
// tracking, interception, or GMR bookkeeping.
func (m *Manager) computeRaw(fn *lang.Function, args []object.Value) (object.Value, error) {
	return m.En.EvalRaw(m.dispatch(fn, args), args)
}

// Match is one backward-query result row.
type Match struct {
	Args   []object.Value
	Result object.Value
}

// Backward answers a backward range query: all argument combinations whose
// materialized fid result lies in [lb, ub]. Backward queries need the whole
// column valid (an invalid result might lie in the range), so invalid
// entries are rematerialized first — this is where lazy GMRs pay their debt.
func (m *Manager) Backward(fid string, lb, ub float64) ([]Match, error) {
	g, ok := m.byFunc[fid]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotMaterialized, fid)
	}
	if !g.Complete {
		return nil, fmt.Errorf("%w: %s", ErrIncomplete, g.Name)
	}
	i := g.funcIndex(fid)
	if g.resIdx[i] == nil {
		return nil, fmt.Errorf("core: %s has a non-numeric result; no backward index", fid)
	}
	atomic.AddInt64(&m.Stats.BackwardQueries, 1)
	m.emit("backward", g.Name, fid, object.NilOID)
	if err := m.revalidateColumn(g, i); err != nil {
		return nil, err
	}
	var out []Match
	var scanErr error
	g.resIdx[i].Range(lb, ub, func(_ btree.Key, v any) bool {
		e := v.(*entry)
		if err := g.touchIdx(e, i); err != nil {
			scanErr = err
			return false
		}
		if err := g.touch(e); err != nil {
			scanErr = err
			return false
		}
		out = append(out, Match{Args: e.Args, Result: e.Results[i]})
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	return out, nil
}

// All returns every (args, result) pair of column fid with all results
// valid — the access path for aggregate queries over materialized results.
func (m *Manager) All(fid string) ([]Match, error) {
	g, ok := m.byFunc[fid]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotMaterialized, fid)
	}
	if !g.Complete {
		return nil, fmt.Errorf("%w: %s", ErrIncomplete, g.Name)
	}
	i := g.funcIndex(fid)
	if err := m.revalidateColumn(g, i); err != nil {
		return nil, err
	}
	out := make([]Match, 0, len(g.entries))
	for _, k := range g.order {
		e := g.entries[k]
		if err := g.touch(e); err != nil {
			return nil, err
		}
		out = append(out, Match{Args: e.Args, Result: e.Results[i]})
	}
	return out, nil
}

// BackwardAny returns one argument combination whose fid result lies in
// [lb, ub] if one can be found among the currently valid entries, without
// recomputing anything — the paper's counterweight example: "if such a
// Cuboid can be found by inspecting the (incomplete) GMR no invalidated or
// missing results need be (re-)computed".
func (m *Manager) BackwardAny(fid string, lb, ub float64) (Match, bool, error) {
	g, ok := m.byFunc[fid]
	if !ok {
		return Match{}, false, fmt.Errorf("%w: %s", ErrNotMaterialized, fid)
	}
	i := g.funcIndex(fid)
	if g.resIdx[i] == nil {
		return Match{}, false, fmt.Errorf("core: %s has a non-numeric result; no backward index", fid)
	}
	atomic.AddInt64(&m.Stats.BackwardQueries, 1)
	m.emit("backward", g.Name, fid, object.NilOID)
	var found *Match
	var scanErr error
	g.resIdx[i].Range(lb, ub, func(_ btree.Key, v any) bool {
		e := v.(*entry)
		if !e.Valid[i] {
			return true
		}
		if err := g.touch(e); err != nil {
			scanErr = err
			return false
		}
		found = &Match{Args: e.Args, Result: e.Results[i]}
		return false
	})
	if scanErr != nil {
		return Match{}, false, scanErr
	}
	if found == nil {
		return Match{}, false, nil
	}
	return *found, true, nil
}

// Sum aggregates a valid numeric column (the forward aggregate query
// "retrieve sum(c.weight)" over a set of argument objects, or over the full
// extension when oids is nil).
func (m *Manager) Sum(fid string, oids []object.OID) (float64, error) {
	if oids == nil {
		all, err := m.All(fid)
		if err != nil {
			return 0, err
		}
		sum := 0.0
		for _, mt := range all {
			f, ok := mt.Result.AsFloat()
			if !ok {
				return 0, fmt.Errorf("core: non-numeric result %v from %s", mt.Result, fid)
			}
			sum += f
		}
		return sum, nil
	}
	sum := 0.0
	for _, oid := range oids {
		v, err := m.Forward(fid, []object.Value{object.Ref(oid)})
		if err != nil {
			return 0, err
		}
		f, ok := v.AsFloat()
		if !ok {
			return 0, fmt.Errorf("core: non-numeric result %v from %s", v, fid)
		}
		sum += f
	}
	return sum, nil
}

// FullRange is the (-inf, +inf) backward range.
var FullRange = [2]float64{math.Inf(-1), math.Inf(1)}

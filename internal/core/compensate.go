package core

import (
	"fmt"
	"sync/atomic"

	"gomdb/internal/lang"
	"gomdb/internal/object"
	"gomdb/internal/schema"
)

// Compensating actions (Section 5.4): instead of recomputing an invalidated
// result from scratch, a database-programmer-supplied action c computes the
// new result from the update's parameters and the old result. The manager
// keeps the CA table [Upd_Op, Mat_Fct, Comp_Act] (Definition 5.5) and
// invokes GMR_Manager.compensate *before* the update executes, so actions
// see the pre-update object base.

// CATable is the CA relation.
type CATable struct {
	m map[opKey]map[string]*lang.Function
}

func newCATable() *CATable { return &CATable{m: make(map[opKey]map[string]*lang.Function)} }

// fctsFor returns CompensatedFct(t.u) (Definition 5.5), resolving typeName
// through its supertype chain so an action declared on a supertype covers
// subtype receivers.
func (ca *CATable) fctsFor(reg *object.Registry, typeName, op string) map[string]bool {
	var out map[string]bool
	for tn := typeName; tn != ""; {
		if byFct, ok := ca.m[opKey{tn, op}]; ok {
			if out == nil {
				out = make(map[string]bool, len(byFct))
			}
			for f := range byFct {
				out[f] = true
			}
		}
		t := reg.Lookup(tn)
		if t == nil {
			break
		}
		tn = t.Super
	}
	return out
}

func (ca *CATable) action(reg *object.Registry, typeName, op, fid string) *lang.Function {
	for tn := typeName; tn != ""; {
		if c, ok := ca.m[opKey{tn, op}][fid]; ok {
			return c
		}
		t := reg.Lookup(tn)
		if t == nil {
			break
		}
		tn = t.Super
	}
	return nil
}

// dropGMR removes all actions for a dropped GMR's functions.
func (ca *CATable) dropGMR(g *GMR) {
	for k, byFct := range ca.m {
		for _, fn := range g.Funcs {
			delete(byFct, fn.Name)
		}
		if len(byFct) == 0 {
			delete(ca.m, k)
		}
	}
}

// DefineCompensation registers compensating action c for the materialized
// function fid and the update operation typeName.opName, and rewrites the
// operation to call GMR_Manager.compensate before executing. Per
// Definition 5.4 the operation must belong to an *argument type* of fid
// (compensating a non-argument type's update can make the GMR inconsistent,
// as the paper's Cuboid.scale example shows) and must already be a modified
// (hook-carrying) update operation.
func (m *Manager) DefineCompensation(typeName, opName, fid string, c *lang.Function) error {
	g, ok := m.byFunc[fid]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotMaterialized, fid)
	}
	i := g.funcIndex(fid)
	argOK := false
	for _, at := range g.ArgTypes {
		if m.Sch.Reg.IsSubtypeOf(typeName, at) || m.Sch.Reg.IsSubtypeOf(at, typeName) {
			argOK = true
			break
		}
	}
	if !argOK {
		return fmt.Errorf("core: compensating action for %s may only be attached to an argument type of the function, not %q", fid, typeName)
	}
	modified := m.En.Hooks.Installed(typeName, opName)
	if !modified {
		return fmt.Errorf("core: %s.%s is not a modified update operation; compensating actions may only compensate modified operations", typeName, opName)
	}
	// Arity check: c : ti || t1',...,tk', tn+1 -> tn+1.
	if len(c.Params) < 2 {
		return fmt.Errorf("core: compensating action %s needs at least a receiver and the old result", c.Name)
	}
	k := opKey{typeName, opName}
	if m.ca.m[k] == nil {
		m.ca.m[k] = make(map[string]*lang.Function)
	}
	if _, dup := m.ca.m[k][fid]; dup {
		return fmt.Errorf("core: duplicate compensating action for %s.%s / %s", typeName, opName, fid)
	}
	m.ca.m[k][fid] = c

	gi := i
	op := opName
	hook := &schema.UpdateHook{
		Name: "CA:" + g.Name,
		Before: func(_ *schema.Engine, recv *object.Obj, args []object.Value) error {
			if !recv.HasDepFct(fid) {
				return nil
			}
			return m.Compensate(recv, fid, gi, op, args)
		},
	}
	var undo []func()
	for _, tn := range m.Sch.Reg.WithSubtypes(typeName) {
		undo = append(undo, m.En.Hooks.Install(tn, opName, hook))
	}
	undo = append(undo, func() { delete(m.ca.m[k], fid) })
	m.uninstall[g.Name] = append(m.uninstall[g.Name], undo...)
	return nil
}

// Compensate applies the compensating action for fid and update operation
// opName to every valid GMR entry whose argument list contains recv, invoked
// before the update with the update's arguments:
// new := recv.c(args..., old).
func (m *Manager) Compensate(recv *object.Obj, fid string, col int, opName string, updArgs []object.Value) error {
	// Bumped after the mutation completes — see GMR.insertEntry.
	defer m.BumpWriteEpoch()
	g := m.byFunc[fid]
	if g == nil {
		return nil
	}
	tuples, err := m.rrr.Lookup(recv.OID)
	if err != nil {
		return err
	}
	for _, t := range tuples {
		if t.F != fid {
			continue
		}
		inArgs := false
		for _, a := range t.Args {
			if a.Kind == object.KRef && a.R == recv.OID {
				inArgs = true
				break
			}
		}
		if !inArgs {
			continue
		}
		e, ok := g.lookup(t.Args)
		if !ok {
			// Blind reference; clean lazily.
			if err := m.removeRRR(t.O, t.F, t.Args); err != nil {
				return err
			}
			continue
		}
		if !e.Valid[col] {
			// An already-invalid result cannot be compensated (the old
			// value is unusable); it stays invalid.
			continue
		}
		c := m.ca.action(m.Sch.Reg, recv.Type, opName, fid)
		if c == nil {
			continue
		}
		cargs := make([]object.Value, 0, len(updArgs)+2)
		cargs = append(cargs, object.Ref(recv.OID))
		cargs = append(cargs, updArgs...)
		cargs = append(cargs, e.Results[col])
		// The action is evaluated with access tracking and its accesses are
		// added to the RRR: the compensated result now also depends on the
		// objects the action read (e.g. increase_total reads the inserted
		// cuboid's volume, so a later scale of that cuboid must invalidate
		// the total). The paper leaves the RRR untouched here, which would
		// let updates to the newly involved objects go unnoticed until the
		// next full rematerialization.
		v, accessed, err := m.En.EvalTracked(c, cargs)
		if err != nil {
			return fmt.Errorf("core: compensating action %s: %w", c.Name, err)
		}
		if err := g.setResult(e, col, v); err != nil {
			return err
		}
		for _, oid := range sortedOIDs(accessed) {
			if oid == recv.OID {
				continue // the receiver's own tuples are already maintained
			}
			if err := m.addRRR(oid, fid, t.Args); err != nil {
				return err
			}
		}
		atomic.AddInt64(&m.Stats.Compensations, 1)
		m.emit("compensate", g.Name, fid, recv.OID)
	}
	return nil
}

package core_test

// Property-based tests of the Definition 3.2 consistency invariant: random
// operation sequences are driven through every maintenance mode and
// strategy, and after every step each valid GMR entry must equal a fresh
// recomputation, completeness (Definition 3.4) must hold, and the RRR must
// agree with the ObjDepFct markings.

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"gomdb"
	"gomdb/internal/core"
	"gomdb/internal/fixtures"
)

// geomWorld is a small mutable world for the property tests.
type geomWorld struct {
	t   *testing.T
	db  *gomdb.Database
	g   *fixtures.Geometry
	gmr *gomdb.GMR
	rng *rand.Rand
	enc bool
}

func newGeomWorld(t *testing.T, seed int64, mode core.HookMode, strategy core.Strategy) *geomWorld {
	t.Helper()
	enc := mode == core.ModeInfoHiding
	db := gomdb.Open(gomdb.DefaultConfig())
	if err := fixtures.DefineGeometry(db, enc); err != nil {
		t.Fatal(err)
	}
	g, err := fixtures.PopulateGeometry(db, 6, seed)
	if err != nil {
		t.Fatal(err)
	}
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs:    []string{"Cuboid.volume", "Cuboid.weight"},
		Complete: true,
		Strategy: strategy,
		Mode:     mode,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &geomWorld{t: t, db: db, g: g, gmr: gmr, rng: rand.New(rand.NewSource(seed * 31)), enc: enc}
}

// randomOp applies one random update. Under the encapsulated schema only
// public operations are used (strict encapsulation is the contract the
// information-hiding machinery depends on).
func (w *geomWorld) randomOp() error {
	if len(w.g.Cuboids) == 0 {
		w.g.CreateRandomCuboid()
		return nil
	}
	c := w.g.RandomCuboid()
	ops := 8
	if w.enc {
		ops = 6
	}
	switch w.rng.Intn(ops) {
	case 0: // scale
		s := fixtures.NewVertex(w.db, 0.5+w.rng.Float64(), 0.5+w.rng.Float64(), 0.5+w.rng.Float64())
		_, err := w.db.Call("Cuboid.scale", gomdb.Ref(c), gomdb.Ref(s))
		return err
	case 1: // rotate
		_, err := w.db.Call("Cuboid.rotate", gomdb.Ref(c), gomdb.Float(w.rng.Float64()*3),
			gomdb.Str([]string{"x", "y", "z"}[w.rng.Intn(3)]))
		return err
	case 2: // translate
		d := fixtures.NewVertex(w.db, w.rng.Float64()*5, 0, 0)
		_, err := w.db.Call("Cuboid.translate", gomdb.Ref(c), gomdb.Ref(d))
		return err
	case 3: // create
		w.g.CreateRandomCuboid()
		return nil
	case 4: // delete
		return w.g.DeleteRandomCuboid()
	case 5: // forward query (may rematerialize under lazy)
		_, err := w.db.Call("Cuboid.volume", gomdb.Ref(c))
		return err
	case 6: // raw vertex update (open schema only)
		o, err := w.db.Objects.Get(c)
		if err != nil {
			return err
		}
		vi := w.db.Objects.AttrIndex("Cuboid", fmt.Sprintf("V%d", 1+w.rng.Intn(8)))
		v := o.Attrs[vi].R
		attr := []string{"X", "Y", "Z"}[w.rng.Intn(3)]
		return w.db.Set(v, attr, gomdb.Float(w.rng.Float64()*20))
	default: // set Value / set Mat (open schema only)
		if w.rng.Intn(2) == 0 {
			return w.db.Set(c, "Value", gomdb.Float(w.rng.Float64()*100))
		}
		mat := w.g.MaterialO[w.rng.Intn(len(w.g.MaterialO))]
		return w.db.Set(c, "Mat", gomdb.Ref(mat))
	}
}

// checkInvariants verifies Definition 3.2 consistency, Definition 3.4
// completeness, and RRR/ObjDepFct agreement.
func (w *geomWorld) checkInvariants() error {
	// Consistency.
	type row struct {
		args    []gomdb.Value
		results []gomdb.Value
		valid   []bool
	}
	var rows []row
	w.gmr.Entries(func(args, results []gomdb.Value, valid []bool) bool {
		rows = append(rows, row{
			append([]gomdb.Value{}, args...),
			append([]gomdb.Value{}, results...),
			append([]bool{}, valid...),
		})
		return true
	})
	fids := w.gmr.FuncIDs()
	for _, r := range rows {
		for i, fid := range fids {
			if !r.valid[i] {
				continue
			}
			fn, err := w.db.Schema.LookupFunction(fid)
			if err != nil {
				return err
			}
			fresh, err := w.db.Engine.EvalRaw(fn, r.args)
			if err != nil {
				return fmt.Errorf("recompute %s(%v): %w", fid, r.args, err)
			}
			// InvalidatedFct declarations assert *mathematical* invariance
			// (rotation preserves volume); numerically the coordinates
			// change in the last ulps, so float results compare with a
			// relative epsilon.
			if !valuesClose(fresh, r.results[i]) {
				return fmt.Errorf("inconsistent: %s(%v) stored %v, fresh %v", fid, r.args, r.results[i], fresh)
			}
		}
	}
	// Completeness: exactly one entry per live cuboid.
	ext := w.db.Extension("Cuboid")
	if len(rows) != len(ext) {
		return fmt.Errorf("incomplete: %d entries for %d cuboids", len(rows), len(ext))
	}
	seen := map[gomdb.OID]bool{}
	for _, r := range rows {
		seen[r.args[0].R] = true
	}
	for _, oid := range ext {
		if !seen[oid] {
			return fmt.Errorf("missing entry for %v", oid)
		}
	}
	// RRR / ObjDepFct agreement: every object with an RRR tuple for f must
	// carry f in its marking (if it still exists).
	var agreeErr error
	_ = w.db.GMRs.RRR().Scan(func(tp core.Tuple) bool {
		if !w.db.Objects.Exists(tp.O) {
			return true
		}
		o, err := w.db.Objects.Get(tp.O)
		if err != nil {
			agreeErr = err
			return false
		}
		if !o.HasDepFct(tp.F) {
			agreeErr = fmt.Errorf("RRR tuple %v but %v not marked", tp, tp.O)
			return false
		}
		return true
	})
	return agreeErr
}

func TestPropertyConsistencyAllModes(t *testing.T) {
	configs := []struct {
		name     string
		mode     core.HookMode
		strategy core.Strategy
	}{
		{"basic/immediate", core.ModeBasic, core.Immediate},
		{"basic/lazy", core.ModeBasic, core.Lazy},
		{"schemadep/immediate", core.ModeSchemaDep, core.Immediate},
		{"schemadep/lazy", core.ModeSchemaDep, core.Lazy},
		{"objdep/immediate", core.ModeObjDep, core.Immediate},
		{"objdep/lazy", core.ModeObjDep, core.Lazy},
		{"infohiding/immediate", core.ModeInfoHiding, core.Immediate},
		{"infohiding/lazy", core.ModeInfoHiding, core.Lazy},
		{"basic/deferred", core.ModeBasic, core.Deferred},
		{"objdep/deferred", core.ModeObjDep, core.Deferred},
		{"infohiding/deferred", core.ModeInfoHiding, core.Deferred},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			check := func(seed int64) bool {
				w := newGeomWorld(t, seed%1000+1, cfg.mode, cfg.strategy)
				for i := 0; i < 25; i++ {
					if err := w.randomOp(); err != nil {
						t.Logf("seed %d op %d: %v", seed, i, err)
						return false
					}
					// Every fifth op is a flush point, so the deferred
					// configurations exercise both the pending window (valid
					// entries must still be consistent while siblings wait)
					// and the parallel drain. A no-op for the other
					// strategies.
					if i%5 == 4 {
						if err := w.db.Flush(); err != nil {
							t.Logf("seed %d flush after op %d: %v", seed, i, err)
							return false
						}
					}
					if err := w.checkInvariants(); err != nil {
						t.Logf("seed %d after op %d: %v", seed, i, err)
						return false
					}
				}
				return true
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPropertyImmediateKeepsAllValid: under immediate rematerialization no
// entry is ever left invalid.
func TestPropertyImmediateKeepsAllValid(t *testing.T) {
	check := func(seed int64) bool {
		w := newGeomWorld(t, seed%1000+1, core.ModeObjDep, core.Immediate)
		for i := 0; i < 25; i++ {
			if err := w.randomOp(); err != nil {
				return false
			}
			for _, fid := range w.gmr.FuncIDs() {
				if w.gmr.InvalidCount(fid) != 0 {
					t.Logf("seed %d: %d invalid %s entries under immediate", seed, w.gmr.InvalidCount(fid), fid)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyBackwardMatchesBruteForce: backward queries agree with brute
// force after arbitrary updates (forcing revalidation under lazy).
func TestPropertyBackwardMatchesBruteForce(t *testing.T) {
	check := func(seed int64) bool {
		w := newGeomWorld(t, seed%1000+1, core.ModeObjDep, core.Lazy)
		for i := 0; i < 15; i++ {
			if err := w.randomOp(); err != nil {
				return false
			}
		}
		lo := 50 + w.rng.Float64()*100
		hi := lo + 200
		matches, err := w.db.GMRs.Backward("Cuboid.volume", lo, hi)
		if err != nil {
			return false
		}
		got := map[gomdb.OID]bool{}
		for _, m := range matches {
			got[m.Args[0].R] = true
		}
		fn, _ := w.db.Schema.LookupFunction("Cuboid.volume")
		want := 0
		for _, oid := range w.db.Extension("Cuboid") {
			v, err := w.db.Engine.EvalRaw(fn, []gomdb.Value{gomdb.Ref(oid)})
			if err != nil {
				return false
			}
			f, _ := v.AsFloat()
			if f >= lo && f <= hi {
				want++
				if !got[oid] {
					t.Logf("seed %d: missing %v (volume %g)", seed, oid, f)
					return false
				}
			}
		}
		return want == len(got)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// valuesClose compares values exactly, except numeric values which compare
// with a relative tolerance of 1e-9.
func valuesClose(a, b gomdb.Value) bool {
	if a.Equal(b) {
		return true
	}
	af, okA := a.AsFloat()
	bf, okB := b.AsFloat()
	if !okA || !okB {
		return false
	}
	diff := af - bf
	if diff < 0 {
		diff = -diff
	}
	scale := 1.0
	if s := af; s < 0 {
		s = -s
		if s > scale {
			scale = s
		}
	} else if af > scale {
		scale = af
	}
	return diff <= 1e-9*scale
}

package core_test

// The Section 6 worked example: a symmetric two-argument distance function
// materialized under the restriction
//
//	p(c1, c2) ≡ (c1 ≠ c2) ∧ (c1.V1.X ≤ c2.V1.X)
//
// which halves the cross product (distance is symmetric and zero on the
// diagonal). The backward query of the paper ORs both argument orders, each
// conjunct implying p for its order.

import (
	"testing"

	"gomdb"
	"gomdb/internal/fixtures"
	"gomdb/internal/lang"
	"gomdb/internal/pred"
)

// defineCuboidDistance2 registers the free function
// distance2: Cuboid, Cuboid -> float of the Section 6 example.
func defineCuboidDistance2(t *testing.T, db *gomdb.Database) {
	t.Helper()
	d2 := &lang.Function{
		Name:           "distance2",
		Params:         []lang.Param{lang.Prm("c1", "Cuboid"), lang.Prm("c2", "Cuboid")},
		ResultType:     "float",
		SideEffectFree: true,
		Body: []lang.Stmt{
			lang.Ret(lang.CallFn("Vertex.dist", lang.A(lang.V("c1"), "V1"), lang.A(lang.V("c2"), "V1"))),
		},
	}
	if err := db.Schema.DefineFunc(d2); err != nil {
		t.Fatal(err)
	}
}

func materializeDistance2(t *testing.T, db *gomdb.Database) *gomdb.GMR {
	t.Helper()
	pfn := &lang.Function{
		Name:           "p_dist",
		Params:         []lang.Param{lang.Prm("c1", "Cuboid"), lang.Prm("c2", "Cuboid")},
		ResultType:     "bool",
		SideEffectFree: true,
		Body: []lang.Stmt{
			lang.Ret(lang.And(
				lang.Ne(lang.V("c1"), lang.V("c2")),
				lang.Le(lang.A(lang.V("c1"), "V1", "X"), lang.A(lang.V("c2"), "V1", "X")))),
		},
	}
	// Declarative form over canonical names; the object-identity
	// disequality is a variable comparison in p — allowed, because the
	// class condition applies to ¬p (where it becomes equality) and to σ′.
	formula := pred.And(
		pred.CmpVars("O1", pred.Ne, "O2"),
		pred.CmpVars("O1.V1.X", pred.Le, "O2.V1.X"),
	)
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs:       []string{"distance2"},
		Complete:    true,
		Strategy:    gomdb.Immediate,
		Mode:        gomdb.ModeObjDep,
		Restriction: &gomdb.Restriction{Fn: pfn, Formula: formula},
	})
	if err != nil {
		t.Fatalf("materialize distance2: %v", err)
	}
	return gmr
}

func TestSection6DistanceRestriction(t *testing.T) {
	db := gomdb.Open(gomdb.DefaultConfig())
	if err := fixtures.DefineGeometry(db, false); err != nil {
		t.Fatal(err)
	}
	g, err := fixtures.PopulateGeometry(db, 12, 31)
	if err != nil {
		t.Fatal(err)
	}
	defineCuboidDistance2(t, db)
	gmr := materializeDistance2(t, db)

	// Completeness per Definition 6.1: exactly the ordered pairs with
	// distinct cuboids and V1.X(c1) <= V1.X(c2).
	x1 := func(c gomdb.OID) float64 {
		v, err := db.GetAttr(c, "V1")
		if err != nil {
			t.Fatal(err)
		}
		xv, err := db.GetAttr(v.R, "X")
		if err != nil {
			t.Fatal(err)
		}
		f, _ := xv.AsFloat()
		return f
	}
	want := 0
	for _, a := range g.Cuboids {
		for _, b := range g.Cuboids {
			if a != b && x1(a) <= x1(b) {
				want++
			}
		}
	}
	if gmr.Len() != want {
		t.Fatalf("restricted distance GMR has %d entries, want %d", gmr.Len(), want)
	}
	gmr.Entries(func(args, results []gomdb.Value, valid []bool) bool {
		if args[0].R == args[1].R {
			t.Fatalf("diagonal pair %v in restricted GMR", args[0])
		}
		if x1(args[0].R) > x1(args[1].R) {
			t.Fatalf("unordered pair (%v, %v) in restricted GMR", args[0], args[1])
		}
		return true
	})

	// The symmetric answer can be reconstructed: distance2(b, a) for a
	// stored (a, b) computes via the normal function, with the same value.
	var a0, b0 gomdb.Value
	gmr.Entries(func(args, _ []gomdb.Value, _ []bool) bool {
		a0, b0 = args[0], args[1]
		return false
	})
	d1, err := db.Call("distance2", a0, b0)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := db.Call("distance2", b0, a0)
	if err != nil {
		t.Fatal(err)
	}
	if !valuesClose(d1, d2) {
		t.Fatalf("distance not symmetric: %v vs %v", d1, d2)
	}

	// Moving a cuboid may flip pair orders: the predicate maintenance must
	// keep Definition 6.1 intact.
	if _, err := db.Call("Cuboid.translate", gomdb.Ref(g.Cuboids[0]),
		gomdb.Ref(fixtures.NewVertex(db, 500, 0, 0))); err != nil {
		t.Fatal(err)
	}
	want = 0
	for _, a := range g.Cuboids {
		for _, b := range g.Cuboids {
			if a != b && x1(a) <= x1(b) {
				want++
			}
		}
	}
	if gmr.Len() != want {
		t.Fatalf("after translate: %d entries, want %d", gmr.Len(), want)
	}
	checkConsistent(t, db, gmr)
}

// TestSection6Applicability reproduces the paper's applicability reasoning
// for the backward query: each disjunct of
//
//	(distance(c, id99) < 100 ∧ c ≠ id99 ∧ c.V1.X ≤ id99.V1.X)
//	∨ (distance(id99, c) < 100 ∧ c ≠ id99 ∧ id99.V1.X ≤ c.V1.X)
//
// has a relevant part σ′ implying p for its argument order.
func TestSection6Applicability(t *testing.T) {
	// p over canonical names for the order (O1 = c, O2 = id99).
	id99 := 99.0 // the constant's numeric code (OIDs map to their number)
	p := pred.And(
		pred.CmpVars("O1", pred.Ne, "O2"),
		pred.CmpVars("O1.V1.X", pred.Le, "O2.V1.X"),
	)
	// σ′ of the first disjunct: c ≠ id99 ∧ c.V1.X ≤ id99.V1.X, expressed
	// with O2 bound to the constant id99.
	sigma := pred.And(
		pred.CmpConst("O1", pred.Ne, id99),
		pred.CmpVars("O1.V1.X", pred.Le, "O2.V1.X"),
		pred.CmpConst("O2", pred.Eq, id99),
	)
	covered, err := pred.Covers(p, sigma)
	if err != nil {
		t.Fatalf("Covers: %v", err)
	}
	if !covered {
		t.Fatal("first disjunct's σ′ does not imply p")
	}
	// Without the ordering conjunct the restriction is not implied.
	sigmaNoOrder := pred.And(
		pred.CmpConst("O1", pred.Ne, id99),
		pred.CmpConst("O2", pred.Eq, id99),
	)
	covered, err = pred.Covers(p, sigmaNoOrder)
	if err != nil || covered {
		t.Fatalf("unordered σ′ wrongly covered (err %v)", err)
	}
	// Without the disequality it is not implied either (the diagonal pair
	// would be missing from the GMR).
	sigmaNoNe := pred.And(
		pred.CmpVars("O1.V1.X", pred.Le, "O2.V1.X"),
		pred.CmpConst("O2", pred.Eq, id99),
	)
	covered, err = pred.Covers(p, sigmaNoNe)
	if err != nil || covered {
		t.Fatalf("σ′ without ≠ wrongly covered (err %v)", err)
	}
}

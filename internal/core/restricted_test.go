package core_test

// Tests of Section 6: p-restricted GMRs, the predicate(o) maintenance
// algorithm, incremental (cache) GMRs, and atomic argument restrictions.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gomdb"
	"gomdb/internal/core"
	"gomdb/internal/fixtures"
	"gomdb/internal/lang"
	"gomdb/internal/pred"
)

// materializeIronOnly creates the Section 6 restricted GMR
// <<volume, weight>>_p with p ≡ (c.Mat.Name = "Iron").
func materializeIronOnly(t *testing.T, db *gomdb.Database, strategy core.Strategy) *gomdb.GMR {
	t.Helper()
	pfn := &lang.Function{
		Name:           "p_iron",
		Params:         []lang.Param{lang.Prm("c", "Cuboid")},
		ResultType:     "bool",
		SideEffectFree: true,
		Body: []lang.Stmt{
			lang.Ret(lang.Eq(lang.A(lang.V("c"), "Mat", "Name"), lang.S("Iron"))),
		},
	}
	formula := pred.CmpConst("O1.Mat.Name", pred.Eq, db.GMRs.Intern.Code("Iron"))
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs:       []string{"Cuboid.volume", "Cuboid.weight"},
		Complete:    true,
		Strategy:    strategy,
		Mode:        gomdb.ModeObjDep,
		Restriction: &gomdb.Restriction{Fn: pfn, Formula: formula},
	})
	if err != nil {
		t.Fatalf("restricted Materialize: %v", err)
	}
	return gmr
}

// ironCount counts cuboids whose material is named "Iron".
func ironCount(t *testing.T, db *gomdb.Database) int {
	t.Helper()
	n := 0
	for _, oid := range db.Extension("Cuboid") {
		mat, err := db.GetAttr(oid, "Mat")
		if err != nil {
			t.Fatal(err)
		}
		name, err := db.GetAttr(mat.R, "Name")
		if err != nil {
			t.Fatal(err)
		}
		if name.S == "Iron" {
			n++
		}
	}
	return n
}

// checkRestrictedComplete verifies Definition 6.1 completeness: one entry
// per argument combination satisfying p, no others.
func checkRestrictedComplete(t *testing.T, db *gomdb.Database, g *gomdb.GMR) {
	t.Helper()
	want := ironCount(t, db)
	if g.Len() != want {
		t.Fatalf("restricted GMR has %d entries, %d iron cuboids exist", g.Len(), want)
	}
	g.Entries(func(args, _ []gomdb.Value, _ []bool) bool {
		mat, _ := db.GetAttr(args[0].R, "Mat")
		name, _ := db.GetAttr(mat.R, "Name")
		if name.S != "Iron" {
			t.Fatalf("non-iron cuboid %v in restricted GMR", args[0])
		}
		return true
	})
}

func restrictedDB(t *testing.T, n int) (*gomdb.Database, *fixtures.Geometry) {
	t.Helper()
	db := gomdb.Open(gomdb.DefaultConfig())
	if err := fixtures.DefineGeometry(db, false); err != nil {
		t.Fatal(err)
	}
	g, err := fixtures.PopulateGeometry(db, n, 5)
	if err != nil {
		t.Fatal(err)
	}
	return db, g
}

// TestRestrictedMaterialization checks initial Definition 6.1 completeness.
func TestRestrictedMaterialization(t *testing.T) {
	db, _ := restrictedDB(t, 40)
	gmr := materializeIronOnly(t, db, core.Immediate)
	checkRestrictedComplete(t, db, gmr)
	if gmr.Len() == 0 {
		t.Fatal("vacuous test: no iron cuboids generated")
	}
}

// TestPredicateFlipViaSetMat changes a cuboid's material reference and
// expects the entry to be admitted/expelled by the predicate(o) algorithm.
func TestPredicateFlipViaSetMat(t *testing.T) {
	db, g := restrictedDB(t, 30)
	gmr := materializeIronOnly(t, db, core.Immediate)
	iron := g.MaterialO[0]
	gold := g.MaterialO[1]

	// Find one iron cuboid.
	var ironC gomdb.OID
	gmr.Entries(func(args, _ []gomdb.Value, _ []bool) bool {
		ironC = args[0].R
		return false
	})
	before := gmr.Len()
	if err := db.Set(ironC, "Mat", gomdb.Ref(gold)); err != nil {
		t.Fatal(err)
	}
	if gmr.Len() != before-1 {
		t.Fatalf("entry not expelled: %d -> %d", before, gmr.Len())
	}
	checkRestrictedComplete(t, db, gmr)
	if err := db.Set(ironC, "Mat", gomdb.Ref(iron)); err != nil {
		t.Fatal(err)
	}
	if gmr.Len() != before {
		t.Fatalf("entry not admitted back: %d", gmr.Len())
	}
	checkRestrictedComplete(t, db, gmr)
}

// TestPredicateFlipViaMaterialRename renames a Material: every cuboid made
// of it flips in or out of the restricted extension at once (the predicate
// depends on Material.Name through a shared subobject).
func TestPredicateFlipViaMaterialRename(t *testing.T) {
	db, g := restrictedDB(t, 30)
	gmr := materializeIronOnly(t, db, core.Immediate)
	iron := g.MaterialO[0]
	before := gmr.Len()
	if before == 0 {
		t.Fatal("vacuous")
	}
	if err := db.Set(iron, "Name", gomdb.Str("Steel")); err != nil {
		t.Fatal(err)
	}
	if gmr.Len() != 0 {
		t.Fatalf("rename left %d entries (iron cuboids no longer match)", gmr.Len())
	}
	checkRestrictedComplete(t, db, gmr)
	if err := db.Set(iron, "Name", gomdb.Str("Iron")); err != nil {
		t.Fatal(err)
	}
	if gmr.Len() != before {
		t.Fatalf("rename back restored %d entries, want %d", gmr.Len(), before)
	}
	checkRestrictedComplete(t, db, gmr)
}

// TestRestrictedCreateDelete: new iron cuboids enter the restricted
// extension, new gold ones do not; deletion removes entries.
func TestRestrictedCreateDelete(t *testing.T) {
	db, g := restrictedDB(t, 20)
	gmr := materializeIronOnly(t, db, core.Immediate)
	before := gmr.Len()
	ironC := fixtures.NewCuboid(db, 900, 0, 0, 0, 2, 2, 2, g.MaterialO[0], 1)
	if gmr.Len() != before+1 {
		t.Fatalf("iron create: %d -> %d", before, gmr.Len())
	}
	goldC := fixtures.NewCuboid(db, 901, 0, 0, 0, 2, 2, 2, g.MaterialO[1], 1)
	if gmr.Len() != before+1 {
		t.Fatalf("gold create changed the restricted extension")
	}
	checkRestrictedComplete(t, db, gmr)
	if err := db.Delete(ironC); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(goldC); err != nil {
		t.Fatal(err)
	}
	if gmr.Len() != before {
		t.Fatalf("after deletes: %d, want %d", gmr.Len(), before)
	}
	checkRestrictedComplete(t, db, gmr)
}

// TestRestrictedForwardOutsideDomain: results for excluded combinations are
// computed with the normal function and not stored.
func TestRestrictedForwardOutsideDomain(t *testing.T) {
	db, g := restrictedDB(t, 20)
	gmr := materializeIronOnly(t, db, core.Immediate)
	var goldC gomdb.OID
	for _, oid := range db.Extension("Cuboid") {
		mat, _ := db.GetAttr(oid, "Mat")
		if mat.R != g.MaterialO[0] {
			goldC = oid
			break
		}
	}
	if goldC == 0 {
		t.Skip("no non-iron cuboid generated")
	}
	before := gmr.Len()
	v, err := db.Call("Cuboid.volume", gomdb.Ref(goldC))
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := db.Schema.LookupFunction("Cuboid.volume")
	want, _ := db.Engine.EvalRaw(fn, []gomdb.Value{gomdb.Ref(goldC)})
	if !v.Equal(want) {
		t.Fatalf("forward outside domain = %v, want %v", v, want)
	}
	if gmr.Len() != before {
		t.Fatalf("excluded combination was stored")
	}
}

// TestPropertyRestrictedConsistency drives random material/geometry updates
// and re-verifies Definition 6.1 completeness and Definition 3.2
// consistency after each.
func TestPropertyRestrictedConsistency(t *testing.T) {
	check := func(seed int64) bool {
		db, g := restrictedDB(t, 10)
		gmr := materializeIronOnly(t, db, core.Immediate)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 20; i++ {
			switch rng.Intn(5) {
			case 0:
				c := g.Cuboids[rng.Intn(len(g.Cuboids))]
				mat := g.MaterialO[rng.Intn(len(g.MaterialO))]
				if err := db.Set(c, "Mat", gomdb.Ref(mat)); err != nil {
					return false
				}
			case 1:
				mat := g.MaterialO[rng.Intn(2)]
				names := []string{"Iron", "Gold", "Steel"}
				if err := db.Set(mat, "Name", gomdb.Str(names[rng.Intn(3)])); err != nil {
					return false
				}
			case 2:
				c := g.Cuboids[rng.Intn(len(g.Cuboids))]
				s := fixtures.NewVertex(db, 0.5+rng.Float64(), 1, 1)
				if _, err := db.Call("Cuboid.scale", gomdb.Ref(c), gomdb.Ref(s)); err != nil {
					return false
				}
			case 3:
				g.CreateRandomCuboid()
			case 4:
				if err := g.DeleteRandomCuboid(); err != nil {
					return false
				}
			}
			// Completeness per Definition 6.1.
			want := ironCount(t, db)
			if gmr.Len() != want {
				t.Logf("seed %d op %d: %d entries, %d iron cuboids", seed, i, gmr.Len(), want)
				return false
			}
			// Consistency of valid results.
			bad := false
			gmr.Entries(func(args, results []gomdb.Value, valid []bool) bool {
				for fi, fid := range gmr.FuncIDs() {
					if !valid[fi] {
						continue
					}
					fn, _ := db.Schema.LookupFunction(fid)
					fresh, err := db.Engine.EvalRaw(fn, args)
					if err != nil || !valuesClose(fresh, results[fi]) {
						bad = true
						return false
					}
				}
				return true
			})
			if bad {
				t.Logf("seed %d op %d: inconsistent restricted GMR", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalCacheGMR: a non-complete GMR fills as queries compute
// results (Section 3.2's cache) and evicts beyond MaxEntries.
func TestIncrementalCacheGMR(t *testing.T) {
	db, g := restrictedDB(t, 30)
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs:      []string{"Cuboid.volume"},
		Complete:   false,
		MaxEntries: 10,
		Strategy:   gomdb.Immediate,
		Mode:       gomdb.ModeObjDep,
	})
	if err != nil {
		t.Fatal(err)
	}
	if gmr.Len() != 0 {
		t.Fatalf("incremental GMR starts with %d entries", gmr.Len())
	}
	// Forward queries populate the cache.
	for i := 0; i < 5; i++ {
		if _, err := db.Call("Cuboid.volume", gomdb.Ref(g.Cuboids[i])); err != nil {
			t.Fatal(err)
		}
	}
	if gmr.Len() != 5 {
		t.Fatalf("cache has %d entries after 5 queries", gmr.Len())
	}
	// Repeat queries hit.
	db.GMRs.Stats = core.Stats{}
	if _, err := db.Call("Cuboid.volume", gomdb.Ref(g.Cuboids[0])); err != nil {
		t.Fatal(err)
	}
	if db.GMRs.Stats.ForwardHits != 1 {
		t.Fatalf("cache hit not recorded: %+v", db.GMRs.Stats)
	}
	// Overflow evicts the oldest entries.
	for i := 5; i < 20; i++ {
		if _, err := db.Call("Cuboid.volume", gomdb.Ref(g.Cuboids[i])); err != nil {
			t.Fatal(err)
		}
	}
	if gmr.Len() != 10 {
		t.Fatalf("cache size = %d, want cap 10", gmr.Len())
	}
	// Backward queries refuse incomplete extensions.
	if _, err := db.GMRs.Backward("Cuboid.volume", 0, 1e9); err == nil {
		t.Fatal("backward query over incomplete GMR succeeded")
	}
	// Cached entries stay consistent under updates.
	s := fixtures.NewVertex(db, 2, 1, 1)
	if _, err := db.Call("Cuboid.scale", gomdb.Ref(g.Cuboids[19]), gomdb.Ref(s)); err != nil {
		t.Fatal(err)
	}
	fn, _ := db.Schema.LookupFunction("Cuboid.volume")
	gmr.Entries(func(args, results []gomdb.Value, valid []bool) bool {
		if !valid[0] {
			return true
		}
		fresh, err := db.Engine.EvalRaw(fn, args)
		if err != nil || !valuesClose(fresh, results[0]) {
			t.Fatalf("stale cache entry for %v", args)
		}
		return true
	})
}

// TestBackwardAnyFindsWithoutRecomputing: the paper's counterweight example
// (Section 3.2) — BackwardAny may answer from valid entries without
// recomputing invalid ones.
func TestBackwardAnyFindsWithoutRecomputing(t *testing.T) {
	db, g := restrictedDB(t, 20)
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs:    []string{"Cuboid.weight"},
		Complete: true,
		Strategy: gomdb.Lazy,
		Mode:     gomdb.ModeObjDep,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Invalidate one cuboid's weight.
	s := fixtures.NewVertex(db, 2, 1, 1)
	if _, err := db.Call("Cuboid.scale", gomdb.Ref(g.Cuboids[0]), gomdb.Ref(s)); err != nil {
		t.Fatal(err)
	}
	invalid := gmr.InvalidCount("Cuboid.weight")
	if invalid == 0 {
		t.Fatal("scale did not invalidate")
	}
	remBefore := db.GMRs.Stats.Rematerializations
	m, found, err := db.GMRs.BackwardAny("Cuboid.weight", 100, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("no heavy cuboid found")
	}
	if db.GMRs.Stats.Rematerializations != remBefore {
		t.Fatal("BackwardAny recomputed results")
	}
	if gmr.InvalidCount("Cuboid.weight") != invalid {
		t.Fatal("BackwardAny changed validity state")
	}
	if f, _ := m.Result.AsFloat(); f < 100 {
		t.Fatalf("match %v out of range", m.Result)
	}
}

// TestAtomicArgValidation: float arguments must be value-restricted.
func TestAtomicArgValidation(t *testing.T) {
	db, _ := restrictedDB(t, 5)
	wg := &lang.Function{
		Name:           "wgrav",
		Params:         []lang.Param{lang.Prm("c", "Cuboid"), lang.Prm("g", "float")},
		ResultType:     "float",
		SideEffectFree: true,
		Body: []lang.Stmt{
			lang.Ret(lang.Mul(lang.CallFn("Cuboid.weight", lang.V("c")), lang.V("g"))),
		},
	}
	if err := db.Schema.DefineFunc(wg); err != nil {
		t.Fatal(err)
	}
	// Missing restriction.
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"wgrav"}, Complete: true,
	}); err == nil {
		t.Fatal("unrestricted float argument accepted")
	}
	// Range restriction on float is rejected.
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"wgrav"}, Complete: true,
		AtomicArgs: map[int]gomdb.ArgRestriction{1: {IsRange: true, Lo: 0, Hi: 5}},
	}); err == nil {
		t.Fatal("range-restricted float argument accepted")
	}
	// Value restriction works; combinations = cuboids x values.
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"wgrav"}, Complete: true,
		Strategy: gomdb.Immediate, Mode: gomdb.ModeObjDep,
		AtomicArgs: map[int]gomdb.ArgRestriction{1: {Values: []gomdb.Value{gomdb.Float(1), gomdb.Float(9.81)}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if gmr.Len() != 2*len(db.Extension("Cuboid")) {
		t.Fatalf("entries = %d, want %d", gmr.Len(), 2*len(db.Extension("Cuboid")))
	}
	// Outside the domain: computed, not stored; inside: forward hit.
	c := db.Extension("Cuboid")[0]
	before := gmr.Len()
	if _, err := db.Call("wgrav", gomdb.Ref(c), gomdb.Float(3.3)); err != nil {
		t.Fatal(err)
	}
	if gmr.Len() != before {
		t.Fatal("out-of-domain combination stored")
	}
	db.GMRs.Stats = core.Stats{}
	if _, err := db.Call("wgrav", gomdb.Ref(c), gomdb.Float(9.81)); err != nil {
		t.Fatal(err)
	}
	if db.GMRs.Stats.ForwardHits != 1 {
		t.Fatalf("in-domain lookup missed: %+v", db.GMRs.Stats)
	}
	// Geometry updates keep the atomic-arg GMR consistent.
	s := fixtures.NewVertex(db, 2, 1, 1)
	if _, err := db.Call("Cuboid.scale", gomdb.Ref(c), gomdb.Ref(s)); err != nil {
		t.Fatal(err)
	}
	fn, _ := db.Schema.LookupFunction("wgrav")
	gmr.Entries(func(args, results []gomdb.Value, valid []bool) bool {
		if !valid[0] {
			return true
		}
		fresh, err := db.Engine.EvalRaw(fn, args)
		if err != nil || !valuesClose(fresh, results[0]) {
			t.Fatalf("stale atomic-arg entry for %v", args)
		}
		return true
	})
}

// TestRangeRestrictedIntArg: int arguments may be range-restricted
// (Section 6.2).
func TestRangeRestrictedIntArg(t *testing.T) {
	db, _ := restrictedDB(t, 4)
	fn := &lang.Function{
		Name:           "scaled_volume",
		Params:         []lang.Param{lang.Prm("c", "Cuboid"), lang.Prm("k", "int")},
		ResultType:     "float",
		SideEffectFree: true,
		Body: []lang.Stmt{
			lang.Ret(lang.Mul(lang.CallFn("Cuboid.volume", lang.V("c")), lang.V("k"))),
		},
	}
	if err := db.Schema.DefineFunc(fn); err != nil {
		t.Fatal(err)
	}
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"scaled_volume"}, Complete: true,
		Strategy: gomdb.Immediate, Mode: gomdb.ModeObjDep,
		AtomicArgs: map[int]gomdb.ArgRestriction{1: {IsRange: true, Lo: 1, Hi: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if gmr.Len() != 3*len(db.Extension("Cuboid")) {
		t.Fatalf("entries = %d", gmr.Len())
	}
	v, err := db.Call("scaled_volume", gomdb.Ref(db.Extension("Cuboid")[0]), gomdb.Int(2))
	if err != nil {
		t.Fatal(err)
	}
	vol, err := db.Call("Cuboid.volume", gomdb.Ref(db.Extension("Cuboid")[0]))
	if err != nil {
		t.Fatal(err)
	}
	f1, _ := v.AsFloat()
	f2, _ := vol.AsFloat()
	if !valuesClose(gomdb.Float(f1), gomdb.Float(2*f2)) {
		t.Fatalf("scaled_volume = %v, volume = %v", v, vol)
	}
}

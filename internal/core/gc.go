package core

import (
	"sort"

	"gomdb/internal/object"
)

// Maintenance sweeps the paper sketches as alternatives to fully lazy
// cleanup (Section 4.1/4.2): a periodic reorganization of the RRR that
// removes left-over and blind-reference tuples eagerly, and a garbage
// collection for result objects of complex-valued materialized functions
// that were superseded by rematerializations ("a garbage collection
// mechanism can be employed to remove unreferenced objects").

// ReorganizeRRR removes every tuple whose materialized result no longer
// exists: left-overs from earlier materializations that visited different
// objects, blind references to removed entries, and tuples of dropped GMRs.
// It returns the number of tuples removed.
func (m *Manager) ReorganizeRRR() (int, error) {
	var victims []Tuple
	err := m.rrr.Scan(func(t Tuple) bool {
		g := m.gmrByFctID(t.F)
		if g == nil {
			victims = append(victims, t)
			return true
		}
		if _, ok := g.lookup(t.Args); !ok {
			victims = append(victims, t)
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	for _, t := range victims {
		if err := m.removeRRR(t.O, t.F, t.Args); err != nil {
			return 0, err
		}
	}
	return len(victims), nil
}

// gmrByFctID resolves a function id or predicate pseudo-id to its GMR.
func (m *Manager) gmrByFctID(fid string) *GMR {
	if g, ok := m.byFunc[fid]; ok {
		return g
	}
	if len(fid) > 2 && fid[:2] == "p:" {
		return m.gmrs[fid[2:]]
	}
	return nil
}

// trackResultObjects records the objects created while materializing a
// complex result; CollectResultGarbage may reclaim them once unreferenced.
// The [from, to) OID window is filtered against this engine's own directory:
// with a shared OID allocator (internal/shard) the window may contain OIDs
// handed to other engine instances, and marking a foreign OID here would
// leak it into this engine's result-object set — and, on a durable database,
// into the persisted ResultObjs metadata. The Exists check is a charge-free
// map lookup, so single-engine accounting is unchanged.
func (m *Manager) trackResultObjects(from, to object.OID) {
	if m.resultObjs == nil {
		m.resultObjs = make(map[object.OID]bool)
	}
	for oid := from; oid < to; oid++ {
		if m.Objs.Exists(oid) {
			m.resultObjs[oid] = true
		}
	}
}

// CollectResultGarbage deletes result objects that are no longer reachable
// from any non-result object or any GMR result column. Invalidated entries
// keep their (stale) result objects alive until rematerialization replaces
// them. Returns the number of objects reclaimed.
//
// Only objects created by the GMR manager while storing complex results are
// candidates; ordinary object-base contents are never touched, which is why
// the paper cannot simply delete superseded results — "they may be
// referenced in other contexts independently of the materialization".
func (m *Manager) CollectResultGarbage() (int, error) {
	// Bumped after the mutation completes — see GMR.insertEntry.
	defer m.BumpWriteEpoch()
	if len(m.resultObjs) == 0 {
		return 0, nil
	}
	reachable := make(map[object.OID]bool)
	var stack []object.OID
	push := func(oid object.OID) {
		if m.resultObjs[oid] && !reachable[oid] && m.Objs.Exists(oid) {
			reachable[oid] = true
			stack = append(stack, oid)
		}
	}
	pushValue := func(v object.Value) {
		if v.Kind == object.KRef {
			push(v.R)
		}
	}
	// Roots: GMR result columns. Iterate GMRs by sorted name and entries in
	// insertion order so the traversal (and hence the charged page-access
	// sequence) is deterministic for a given history.
	for _, name := range m.GMRs() {
		g := m.gmrs[name]
		for _, k := range g.order {
			for _, r := range g.entries[k].Results {
				pushValue(r)
			}
		}
	}
	// Roots: references from non-result objects anywhere in the base.
	for _, tn := range m.Sch.Reg.Types() {
		for _, oid := range m.Objs.Extension(tn) {
			if m.resultObjs[oid] {
				continue
			}
			o, err := m.Objs.Get(oid)
			if err != nil {
				return 0, err
			}
			for _, v := range o.Attrs {
				pushValue(v)
			}
			for _, v := range o.Elems {
				pushValue(v)
			}
		}
	}
	// Traverse within the result-object graph.
	for len(stack) > 0 {
		oid := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		o, err := m.Objs.Get(oid)
		if err != nil {
			return 0, err
		}
		for _, v := range o.Attrs {
			pushValue(v)
		}
		for _, v := range o.Elems {
			pushValue(v)
		}
	}
	// Sweep in ascending OID order so deletions hit pages deterministically.
	collected := 0
	candidates := make([]object.OID, 0, len(m.resultObjs))
	for oid := range m.resultObjs {
		candidates = append(candidates, oid)
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	for _, oid := range candidates {
		if reachable[oid] {
			continue
		}
		if m.Objs.Exists(oid) {
			if err := m.En.Delete(oid); err != nil {
				return collected, err
			}
			collected++
		}
		delete(m.resultObjs, oid)
	}
	return collected, nil
}

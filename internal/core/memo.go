package core

import (
	"hash/maphash"
	"sync"

	"gomdb/internal/object"
)

// memoCache is the opt-in forward-lookup memo layer above Manager.Forward:
// a sharded map from (function id, argument combination) to the materialized
// result, serving repeat forward hits against quiescent GMRs without
// touching the buffer pool or the simulated clock.
//
// Consistency is epoch-based rather than entry-based. The Database facade
// bumps the manager's write epoch under its exclusive lock before every
// write-classified operation (the manager's own mutation entry points bump
// it too, for single-threaded tooling that bypasses the facade), and every
// cached value records the epoch it was read under. A lookup only answers
// when the entry's epoch equals the current one, so any intervening write —
// whether or not it touched this particular GMR — invalidates the whole
// cache wholesale at the cost of one atomic increment. Fills happen on the
// shared-lock read path, where the engine only serves valid entries of
// complete GMRs (Database.readOnlyCall requires quiescence), so a cached
// value is always a Definition 3.2-consistent result as of its epoch.
//
// Because only valid hits are cached, the cache is bounded by the extension
// sizes of the memo-enabled GMRs; stale-epoch entries are overwritten in
// place on the next fill of the same key.
type memoCache struct {
	shards [memoShardCount]memoShard
	seed   maphash.Seed
}

const memoShardCount = 64

type memoShard struct {
	mu sync.RWMutex
	m  map[string]memoEntry
}

type memoEntry struct {
	epoch uint64
	val   object.Value
}

func newMemoCache() *memoCache {
	c := &memoCache{seed: maphash.MakeSeed()}
	for i := range c.shards {
		c.shards[i].m = make(map[string]memoEntry)
	}
	return c
}

// memoKey encodes (fid, args); the fid prefix is length-tagged implicitly by
// the 0 byte, which cannot occur inside a function name.
func memoKey(fid string, args []object.Value) string {
	b := make([]byte, 0, len(fid)+1+16*len(args))
	b = append(b, fid...)
	b = append(b, 0)
	for _, a := range args {
		b = append(b, object.EncodeValue(a)...)
	}
	return string(b)
}

func (c *memoCache) shardFor(key string) *memoShard {
	return &c.shards[maphash.String(c.seed, key)&(memoShardCount-1)]
}

// get returns the cached result for key if it was filled under the current
// epoch.
func (c *memoCache) get(key string, epoch uint64) (object.Value, bool) {
	sh := c.shardFor(key)
	sh.mu.RLock()
	e, ok := sh.m[key]
	sh.mu.RUnlock()
	if !ok || e.epoch != epoch {
		return object.Value{}, false
	}
	return e.val, true
}

// put records the result read for key under epoch.
func (c *memoCache) put(key string, epoch uint64, v object.Value) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	sh.m[key] = memoEntry{epoch: epoch, val: v}
	sh.mu.Unlock()
}

// Len returns the number of cached entries (current and stale); used by
// tests.
func (c *memoCache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// BumpWriteEpoch invalidates every memo-cached forward result. The Database
// facade calls it under its exclusive lock when classifying an operation as
// a write; the manager's own mutation entry points call it as well so that
// single-threaded tooling driving the manager directly keeps the cache
// coherent.
// The mutation entry points bump *after* publishing their mutation (not
// before), so a reader that raced the mutation can only have cached the
// fresh value under the already-stale previous epoch — never a stale value
// under the current one.
func (m *Manager) BumpWriteEpoch() {
	m.writeEpoch.Add(1)
	if m.testEpochHook != nil {
		m.testEpochHook()
	}
}

// TestingSetEpochBumpHook installs (or clears, with nil) a callback run
// synchronously after every write-epoch bump. Test-only: the memo-ordering
// regression test uses it to interleave a reader at the bump point
// deterministically.
func (m *Manager) TestingSetEpochBumpHook(fn func()) { m.testEpochHook = fn }

// WriteEpoch returns the current write epoch; used by tests.
func (m *Manager) WriteEpoch() uint64 { return m.writeEpoch.Load() }

// MemoLen returns the number of memo-cached forward results; used by tests.
func (m *Manager) MemoLen() int { return m.memo.Len() }

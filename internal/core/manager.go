package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"gomdb/internal/btree"
	"gomdb/internal/lang"
	"gomdb/internal/mvcc"
	"gomdb/internal/object"
	"gomdb/internal/pred"
	"gomdb/internal/schema"
	"gomdb/internal/storage"
)

// Stats counts the maintenance work the manager performs; benchmarks and
// tests read them to verify, e.g., that rotate under information hiding
// triggers no invalidations while the basic mechanism triggers twelve.
// Counters are incremented atomically (forward/backward counters are bumped
// on the concurrent read path); read them when the database is idle, or via
// atomic loads.
type Stats struct {
	RRRLookups         int64 // GMR_Manager.invalidate invocations that consulted the RRR
	Invalidations      int64 // materialized results invalidated (marked or recomputed)
	Rematerializations int64 // function recomputations for GMR maintenance
	Compensations      int64 // compensating-action applications
	ForwardHits        int64 // forward lookups answered from a valid entry
	ForwardMisses      int64 // forward lookups that had to compute
	MemoHits           int64 // forward lookups answered by the memo cache (counted in ForwardHits too)
	BackwardQueries    int64
	NewObjects         int64
	ForgottenObjects   int64
	PredicateUpdates   int64

	// Forward-trace accounting (see access_trace.go): every recorded trace
	// bumps these, so benchmarks can see how much access history the
	// clustering pass has to work with.
	ForwardTraces int64 // forward computations whose access trace was recorded
	TraceObjects  int64 // objects across recorded traces (first accesses only)
	TracePages    int64 // distinct object-heap pages across recorded traces

	// Deferred-rematerialization accounting (see deferred.go).
	DeferredUpdates  int64 // invalidations routed to the pending queue
	CoalescedUpdates int64 // deferred invalidations absorbed by an already-pending recomputation
	DeferredForces   int64 // pending recomputations forced individually by a lookup before the flush
	Flushes          int64 // Flush calls that found work
	FlushedItems     int64 // pending recomputations performed by flushes
	QueueHighWater   int64 // maximum pending-queue depth observed
	FlushEvalNanos   int64 // cumulative per-item wall time of parallel flush evaluations
	FlushWallNanos   int64 // cumulative wall time of the parallel phase of flushes
}

// Manager is the GMR manager: it owns all GMR extensions and the RRR, and is
// notified of updates through the hooks it installs into the schema (the
// update notification mechanism of Section 4.3).
type Manager struct {
	En    *schema.Engine
	Sch   *schema.Schema
	Objs  *object.Manager
	Clock *storage.Clock
	Pool  *storage.BufferPool

	gmrs      map[string]*GMR
	byFunc    map[string]*GMR
	rrr       *RRR
	ca        *CATable
	uninstall map[string][]func()
	extractor *lang.Extractor

	// Intern maps string constants to numeric codes shared between
	// restriction formulas and query predicates, so the Section 6
	// applicability test can reason about string equality.
	Intern *pred.Interner

	// resultObjs tracks objects created to store complex materialized
	// results, the garbage-collection candidates of CollectResultGarbage.
	resultObjs map[object.OID]bool

	// trace receives maintenance events when set (SetTrace). Held through
	// an atomic pointer because read-path lookups emit events while other
	// goroutines may install or clear the hook.
	trace atomic.Pointer[func(TraceEvent)]

	// memo is the opt-in forward-lookup memo cache (see memo.go);
	// writeEpoch is the wholesale-invalidation counter every cached value
	// is tagged with.
	memo       *memoCache
	writeEpoch atomic.Uint64

	// testEpochHook, when set, runs synchronously after every write-epoch
	// bump. Test-only: it lets the memo-ordering regression test inject a
	// concurrent reader deterministically at the exact bump point.
	testEpochHook func()

	// MVCC snapshot-read state (see snapshot.go). snapSt is the shared
	// version source; entryVers holds copy-on-write pre-images of GMR
	// entries keyed by (GMR name, argument key); snapMu serializes the
	// entry mutators against pinned snapshot readers reconstructing entry
	// state. snapMu is always locked by the mutators (cheap, uncontended
	// without MVCC); captures are only taken once snapSt is attached.
	snapSt    *mvcc.State
	snapMu    sync.RWMutex
	entryVers map[string]map[string][]entryCapture

	// accessTraces holds the ordered forward trace of each materialized
	// result column; accessStats aggregates them per GMR (access_trace.go).
	// Mutated only under the exclusive Database lock, like the extensions
	// the traces describe.
	accessTraces map[traceKey][]object.OID
	accessStats  map[string]*AccessStats

	// pending is the coalescing queue of deferred rematerializations, keyed
	// by (GMR, entry, column) so repeated invalidations of one result fold
	// into a single recomputation. Mutated only under the exclusive Database
	// lock (deferred GMRs are never quiescent while work is pending, so
	// every path that touches the queue is write-classified); drained by
	// Flush. rematWorkers bounds the flush worker pool (<= 0 selects
	// GOMAXPROCS). See deferred.go.
	pending      map[pendingKey]*pendingItem
	rematWorkers int

	// breakInvalidation, when set, makes Invalidate silently drop every
	// notification. It exists solely so the simulation harness
	// (internal/sim) can prove its invariant auditors have teeth: with the
	// hook armed, stale GMR entries must be reported as Def. 3.2
	// violations. Never set outside tests.
	breakInvalidation bool

	Stats Stats
}

// TestingBreakInvalidation arms or disarms the deliberate invalidation bug
// used by the simulator's mutation smoke test. See breakInvalidation.
func (m *Manager) TestingBreakInvalidation(broken bool) { m.breakInvalidation = broken }

// Quiescent reports whether no retrieval operation can mutate GMR state:
// every GMR is complete (so forward misses never insert entries) and no
// result column has invalid entries (so nothing triggers lazy
// rematerialization or column revalidation). The Database facade uses this
// to decide whether a retrieval may run under the shared read lock; it is
// evaluated without charging the simulated clock.
func (m *Manager) Quiescent() bool {
	if len(m.pending) > 0 {
		return false
	}
	for _, g := range m.gmrs {
		if !g.Complete {
			return false
		}
		for i := range g.invalid {
			if len(g.invalid[i]) > 0 {
				return false
			}
		}
	}
	return true
}

// NewManager creates a GMR manager over an engine and registers the
// materialized-call interceptor that maps invocations of materialized
// functions to forward GMR queries.
func NewManager(en *schema.Engine, pool *storage.BufferPool) *Manager {
	m := &Manager{
		En:           en,
		Sch:          en.Sch,
		Objs:         en.Objs,
		Clock:        en.Clock,
		Pool:         pool,
		gmrs:         make(map[string]*GMR),
		byFunc:       make(map[string]*GMR),
		rrr:          NewRRR(pool),
		ca:           newCATable(),
		uninstall:    make(map[string][]func()),
		extractor:    lang.NewExtractor(en.Sch, en.Sch),
		Intern:       pred.NewInterner(),
		memo:         newMemoCache(),
		pending:      make(map[pendingKey]*pendingItem),
		accessTraces: make(map[traceKey][]object.OID),
		accessStats:  make(map[string]*AccessStats),
	}
	en.SetInterceptor(m.intercept)
	return m
}

// RRR exposes the reverse reference relation for tests and diagnostics.
func (m *Manager) RRR() *RRR { return m.rrr }

// GMRs returns the names of all existing GMRs.
func (m *Manager) GMRs() []string {
	out := make([]string, 0, len(m.gmrs))
	for n := range m.gmrs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Get returns the GMR with the given name.
func (m *Manager) Get(name string) (*GMR, bool) {
	g, ok := m.gmrs[name]
	return g, ok
}

// GMRFor returns the GMR materializing function fid, if any.
func (m *Manager) GMRFor(fid string) (*GMR, bool) {
	g, ok := m.byFunc[fid]
	return g, ok
}

// Materialize creates a GMR per opts, precomputes its extension if Complete,
// and performs the schema rewrite installing the update notification hooks.
// This is the runtime of the GOMql statement
//
//	range c: Cuboid materialize c.volume, c.weight [where p]
func (m *Manager) Materialize(opts Options) (*GMR, error) {
	// Bumped after the mutation completes — see GMR.insertEntry.
	defer m.BumpWriteEpoch()
	if len(opts.Funcs) == 0 {
		return nil, errors.New("core: materialize needs at least one function")
	}
	fns := make([]*lang.Function, len(opts.Funcs))
	for i, name := range opts.Funcs {
		fn, err := m.Sch.LookupFunction(name)
		if err != nil {
			return nil, err
		}
		if !fn.SideEffectFree {
			return nil, fmt.Errorf("core: %s is not declared side-effect free and cannot be materialized", fn.Name)
		}
		if _, dup := m.byFunc[fn.Name]; dup {
			return nil, fmt.Errorf("core: %s is already materialized", fn.Name)
		}
		fns[i] = fn
	}
	argTypes := fns[0].ParamTypes()
	for _, fn := range fns[1:] {
		ts := fn.ParamTypes()
		if len(ts) != len(argTypes) {
			return nil, fmt.Errorf("core: %s and %s do not share argument types", fns[0].Name, fn.Name)
		}
		for i := range ts {
			if ts[i] != argTypes[i] {
				return nil, fmt.Errorf("core: %s and %s do not share argument types", fns[0].Name, fn.Name)
			}
		}
	}
	for i, t := range argTypes {
		if object.IsAtomicName(t) {
			r, ok := opts.AtomicArgs[i]
			if !ok {
				return nil, fmt.Errorf("core: atomic argument %d (%s) must be value- or range-restricted (Section 6.2)", i, t)
			}
			if t == "float" && r.IsRange {
				return nil, fmt.Errorf("core: float argument %d must be value-restricted, not range-restricted", i)
			}
		} else if m.Sch.Reg.Lookup(t) == nil {
			return nil, fmt.Errorf("core: unknown argument type %q", t)
		}
	}
	if opts.Restriction != nil {
		p := opts.Restriction.Fn
		if p == nil {
			return nil, errors.New("core: restricted GMR needs an executable predicate")
		}
		if len(p.Params) != len(argTypes) {
			return nil, fmt.Errorf("core: restriction predicate arity %d does not match %d argument types", len(p.Params), len(argTypes))
		}
	}
	if opts.Complete && opts.MaxEntries > 0 {
		return nil, errors.New("core: MaxEntries applies to incremental (cache) GMRs only; a complete extension cannot evict entries")
	}
	name := opts.Name
	if name == "" {
		name = "<<" + strings.Join(opts.Funcs, ",") + ">>"
	}
	if _, dup := m.gmrs[name]; dup {
		return nil, fmt.Errorf("core: GMR %q already exists", name)
	}

	g := &GMR{
		Name:         name,
		Funcs:        fns,
		ArgTypes:     argTypes,
		Strategy:     opts.Strategy,
		Mode:         opts.Mode,
		Complete:     opts.Complete,
		MaxEntries:   opts.MaxEntries,
		Restriction:  opts.Restriction,
		AtomicArgs:   opts.AtomicArgs,
		SecondChance: opts.SecondChance,
		Memo:         opts.MemoCache,
		entries:      make(map[string]*entry),
		argIndex:     make(map[object.OID]map[string]bool),
		heap:         storage.NewForcedHeapFile(m.Pool, "GMR:"+name),
		resIdx:       make([]*btree.Tree, len(fns)),
		invalid:      make([]map[string]bool, len(fns)),
		mgr:          m,
	}
	if opts.UseMDS {
		if err := m.initMDS(g); err != nil {
			return nil, err
		}
	}
	g.idxHeap = make([]*storage.HeapFile, len(fns))
	for i, fn := range fns {
		g.invalid[i] = make(map[string]bool)
		if isNumericType(fn.ResultType) {
			g.resIdx[i] = btree.New()
			g.idxHeap[i] = storage.NewHeapFile(m.Pool, "IDX:"+name+":"+fn.Name)
		}
	}

	m.gmrs[name] = g
	g.colFid = make(map[string]int, len(fns))
	g.variants = make(map[int][]*lang.Function)
	for i, fn := range fns {
		m.byFunc[fn.Name] = g
		g.colFid[fn.Name] = i
		// Substitutability: the extension of the argument type includes
		// subtype instances, and the materialized invocation dispatches
		// dynamically. Register every subtype override of the operation so
		// (a) the interceptor catches calls that resolve to the override,
		// (b) the hook planner analyzes the override's relevant paths, and
		// (c) funcIndex maps the override to the right column.
		for _, variant := range m.overridesOf(fn) {
			if other, dup := m.byFunc[variant.Name]; dup && other != g {
				m.dropState(g)
				return nil, fmt.Errorf("core: override %s is already materialized in %s", variant.Name, other.Name)
			}
			m.byFunc[variant.Name] = g
			g.colFid[variant.Name] = i
			g.variants[i] = append(g.variants[i], variant)
		}
	}

	if opts.Complete {
		if err := m.populate(g); err != nil {
			m.dropState(g)
			return nil, err
		}
	}
	if err := m.installHooks(g); err != nil {
		m.dropState(g)
		return nil, err
	}
	return g, nil
}

func isNumericType(t string) bool {
	return t == "float" || t == "int" || t == "decimal"
}

// Drop deletes a GMR: its extension, its RRR tuples and ObjDepFct marks, and
// the hook rewrites — restoring the unmodified schema.
func (m *Manager) Drop(name string) error {
	defer m.BumpWriteEpoch()
	g, ok := m.gmrs[name]
	if !ok {
		return fmt.Errorf("core: no GMR %q", name)
	}
	// Remove RRR tuples and markings belonging to this GMR's functions.
	fids := make(map[string]bool, len(g.Funcs)+1)
	for _, f := range g.Funcs {
		fids[f.Name] = true
	}
	fids[g.predID()] = true
	var victims []Tuple
	_ = m.rrr.Scan(func(t Tuple) bool {
		if fids[t.F] {
			victims = append(victims, t)
		}
		return true
	})
	for _, t := range victims {
		if err := m.removeRRR(t.O, t.F, t.Args); err != nil {
			return err
		}
	}
	m.dropState(g)
	return nil
}

func (m *Manager) dropState(g *GMR) {
	m.clearPendingGMR(g.Name)
	m.dropTraces(g.Name)
	for _, undo := range m.uninstall[g.Name] {
		undo()
	}
	delete(m.uninstall, g.Name)
	for fid, owner := range m.byFunc {
		if owner == g {
			delete(m.byFunc, fid)
		}
	}
	delete(m.gmrs, g.Name)
	m.ca.dropGMR(g)
}

// populate computes the complete extension (Definition 3.4 / 6.1): one entry
// per argument combination drawn from the type extensions (and restricted
// atomic values), filtered by the restriction predicate.
func (m *Manager) populate(g *GMR) error {
	combos, err := m.argCombinations(g, -1, object.Null())
	if err != nil {
		return err
	}
	for _, args := range combos {
		if err := m.considerEntry(g, args); err != nil {
			return err
		}
	}
	return nil
}

// argCombinations enumerates the cross product of the argument domains,
// optionally pinning position fixedPos to fixedVal (used by new_object).
func (m *Manager) argCombinations(g *GMR, fixedPos int, fixedVal object.Value) ([][]object.Value, error) {
	return m.argCombinationsVia(m.Objs.Extension, g, fixedPos, fixedVal)
}

// argCombinationsVia is argCombinations parameterized over the extension
// reader, so the MVCC snapshot completeness audit can enumerate the domains
// at a pinned version (snapshot.go).
func (m *Manager) argCombinationsVia(ext func(string) []object.OID, g *GMR, fixedPos int, fixedVal object.Value) ([][]object.Value, error) {
	domains := make([][]object.Value, len(g.ArgTypes))
	for i, t := range g.ArgTypes {
		if i == fixedPos {
			domains[i] = []object.Value{fixedVal}
			continue
		}
		if object.IsAtomicName(t) {
			r := g.AtomicArgs[i]
			if r.IsRange {
				for v := r.Lo; v <= r.Hi; v++ {
					domains[i] = append(domains[i], object.Int(v))
				}
			} else {
				domains[i] = append(domains[i], r.Values...)
			}
			continue
		}
		for _, oid := range ext(t) {
			domains[i] = append(domains[i], object.Ref(oid))
		}
	}
	var out [][]object.Value
	cur := make([]object.Value, len(domains))
	var rec func(int)
	rec = func(i int) {
		if i == len(domains) {
			args := make([]object.Value, len(cur))
			copy(args, cur)
			out = append(out, args)
			return
		}
		for _, v := range domains[i] {
			cur[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return out, nil
}

// considerEntry evaluates the restriction predicate (if any) for args and
// computes an entry when it admits them. Predicate evaluation is tracked and
// recorded in the RRR under the pseudo-function id p:<gmr> (Section 6.1).
func (m *Manager) considerEntry(g *GMR, args []object.Value) error {
	if _, exists := g.lookup(args); exists {
		return nil
	}
	if !g.admitsArgs(args) {
		return nil
	}
	if g.Restriction != nil {
		ok, err := m.evalPredicate(g, args)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
	return m.computeEntry(g, args)
}

// evalPredicate evaluates p(args) with tracking and refreshes the RRR tuples
// of the predicate materialization.
func (m *Manager) evalPredicate(g *GMR, args []object.Value) (bool, error) {
	v, accessed, err := m.En.EvalTracked(g.Restriction.Fn, args)
	if err != nil {
		return false, err
	}
	pid := g.predID()
	for _, oid := range sortedOIDs(accessed) {
		if err := m.addRRR(oid, pid, args); err != nil {
			return false, err
		}
	}
	return v.Truth(), nil
}

// dispatch resolves the variant of a materialized operation that a dynamic
// invocation on args would execute (subtype overrides win); free functions
// and non-reference receivers dispatch statically.
func (m *Manager) dispatch(fn *lang.Function, args []object.Value) *lang.Function {
	dot := strings.IndexByte(fn.Name, '.')
	if dot < 0 || len(args) == 0 || args[0].Kind != object.KRef {
		return fn
	}
	o, err := m.Objs.Get(args[0].R)
	if err != nil {
		return fn
	}
	if variant, ok := m.Sch.ResolveOp(o.Type, fn.Name[dot+1:]); ok {
		return variant
	}
	return fn
}

// overridesOf returns the subtype overrides of a type-associated operation.
func (m *Manager) overridesOf(fn *lang.Function) []*lang.Function {
	dot := strings.IndexByte(fn.Name, '.')
	if dot < 0 {
		return nil
	}
	declType, opName := fn.Name[:dot], fn.Name[dot+1:]
	var out []*lang.Function
	for _, sub := range m.Sch.Reg.WithSubtypes(declType)[1:] {
		if v, ok := m.Sch.ResolveOp(sub, opName); ok && v != fn {
			dup := false
			for _, seen := range out {
				if seen == v {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, v)
			}
		}
	}
	return out
}

// computeEntry materializes all function columns for args and inserts the
// entry plus its RRR tuples and ObjDepFct marks.
func (m *Manager) computeEntry(g *GMR, args []object.Value) error {
	results := make([]object.Value, len(g.Funcs))
	valid := make([]bool, len(g.Funcs))
	accessedPer := make([]map[object.OID]struct{}, len(g.Funcs))
	tracePer := make([][]object.OID, len(g.Funcs))
	for i, fn := range g.Funcs {
		v, accessed, trace, err := m.En.EvalTrackedOrdered(m.dispatch(fn, args), args)
		if err != nil {
			return fmt.Errorf("core: materializing %s: %w", fn.Name, err)
		}
		v, err = m.storeComplexResult(fn, v)
		if err != nil {
			return err
		}
		results[i] = v
		valid[i] = true
		accessedPer[i] = accessed
		tracePer[i] = trace
		atomic.AddInt64(&m.Stats.Rematerializations, 1)
	}
	e := &entry{Args: args, Results: results, Valid: valid}
	if err := g.insertEntry(e); err != nil {
		return err
	}
	k := argKey(args)
	for i, fn := range g.Funcs {
		for _, oid := range sortedOIDs(accessedPer[i]) {
			if err := m.addRRR(oid, fn.Name, args); err != nil {
				return err
			}
		}
		m.recordTrace(g, k, i, tracePer[i])
	}
	return nil
}

// storeComplexResult persists a complex (tuple/set/list) result as objects
// and returns the reference stored in the GMR (Section 3.1: the attributes
// store "references to the result objects").
func (m *Manager) storeComplexResult(fn *lang.Function, v object.Value) (object.Value, error) {
	switch v.Kind {
	case object.KTuple, object.KSet, object.KList:
		watermark := m.Objs.NextOID()
		out, err := m.Objs.MaterializeValue(v, fn.ResultType)
		if err != nil {
			return object.Null(), err
		}
		m.trackResultObjects(watermark, m.Objs.NextOID())
		return out, nil
	}
	return v, nil
}

// sortedOIDs returns the keys of an accessed-object set in ascending order,
// so RRR tuples are inserted (and thus physically placed) deterministically.
func sortedOIDs(set map[object.OID]struct{}) []object.OID {
	out := make([]object.OID, 0, len(set))
	for oid := range set {
		out = append(out, oid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// addRRR inserts an RRR tuple and maintains the object's ObjDepFct marking.
func (m *Manager) addRRR(oid object.OID, fid string, args []object.Value) error {
	isNew, first, err := m.rrr.Insert(oid, fid, args)
	if err != nil {
		return err
	}
	if isNew {
		m.BumpWriteEpoch()
	}
	if isNew && first {
		o, err := m.Objs.Get(oid)
		if err != nil {
			return err
		}
		if o.AddDepFct(fid) {
			if err := m.Objs.Put(o); err != nil {
				return err
			}
		}
	}
	return nil
}

// removeRRR removes an RRR tuple and demotes the ObjDepFct marking when the
// last tuple for (oid, fid) disappears. A vanished object is fine — its
// marking died with it.
func (m *Manager) removeRRR(oid object.OID, fid string, args []object.Value) error {
	return m.finishRemove(oid, fid)(m.rrr.Remove(oid, fid, args))
}

// removeTuple removes a looked-up RRR tuple, reusing its stored relation key
// instead of re-encoding the argument combination (tuples obtained by Scan
// carry no key and fall back to the encoding path).
func (m *Manager) removeTuple(t Tuple) error {
	if t.key == "" {
		return m.removeRRR(t.O, t.F, t.Args)
	}
	return m.finishRemove(t.O, t.F)(m.rrr.RemoveByKey(t.O, t.F, t.key))
}

// finishRemove performs the post-removal bookkeeping shared by removeRRR and
// removeTuple: the memo epoch bump and the ObjDepFct demotion.
func (m *Manager) finishRemove(oid object.OID, fid string) func(existed, last bool, err error) error {
	return func(existed, last bool, err error) error {
		if err != nil {
			return err
		}
		if existed {
			m.BumpWriteEpoch()
		}
		if existed && last && m.Objs.Exists(oid) {
			o, err := m.Objs.Get(oid)
			if err != nil {
				return err
			}
			if o.RemoveDepFct(fid) {
				if err := m.Objs.Put(o); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// Invalidate is GMR_Manager.invalidate(o[, RelevFct]): called by the
// rewritten update operations after an object was modified. relev == nil
// means "check everything" (the Figure 4 version); otherwise only tuples
// whose function is in relev are processed (Sections 5.1/5.2/5.3).
//
// The memo-cache write epoch is NOT bumped here: every state change the loop
// can cause — marking an entry invalid, rewriting a result, removing an RRR
// tuple, predicate admission/expulsion — bumps at its own mutation point, so
// an update that turns out to be irrelevant (no surviving tuples) leaves the
// memo cache valid.
func (m *Manager) Invalidate(o *object.Obj, relev map[string]bool) error {
	if m.breakInvalidation {
		// Deliberately-broken mode for the simulator's mutation smoke test:
		// drop the notification so dependent entries go stale undetected.
		return nil
	}
	atomic.AddInt64(&m.Stats.RRRLookups, 1)
	tuples, err := m.rrr.Lookup(o.OID)
	if err != nil {
		return err
	}
	for _, t := range tuples {
		if relev != nil && !relev[t.F] {
			continue
		}
		if strings.HasPrefix(t.F, "p:") {
			if err := m.predicateUpdate(t); err != nil {
				return err
			}
			continue
		}
		g, ok := m.byFunc[t.F]
		if !ok {
			// The GMR was dropped; stale tuple.
			if err := m.removeTuple(t); err != nil {
				return err
			}
			continue
		}
		k := t.argSuffix()
		e, ok := g.entries[k]
		if !ok {
			// Blind reference (Section 4.2): the entry is gone; clean up
			// lazily.
			if err := m.removeTuple(t); err != nil {
				return err
			}
			continue
		}
		i := g.funcIndex(t.F)
		atomic.AddInt64(&m.Stats.Invalidations, 1)
		m.emit("invalidate", g.Name, t.F, o.OID)
		switch g.Strategy {
		case Lazy:
			// lazy(o): (1) set Vi := false, (2) remove the RRR tuple so a
			// repeated update of o does not pay the GMR access again.
			if err := g.markInvalid(k, i); err != nil {
				return err
			}
			if err := m.removeTuple(t); err != nil {
				return err
			}
		case Deferred:
			// deferred(o): like lazy(o), but additionally enqueue the entry
			// on the coalescing recomputation queue drained by Flush. Under
			// the second-chance variant the RRR tuple stays put and the
			// triggering object is remembered, so the flush can prune
			// tuples the recomputation no longer justifies.
			if err := g.markInvalid(k, i); err != nil {
				return err
			}
			if !g.SecondChance {
				if err := m.removeTuple(t); err != nil {
					return err
				}
			}
			m.enqueue(g, k, i, t.Args, o.OID)
		case Immediate:
			if g.SecondChance {
				// Second-chance variant (Section 4.1): keep the tuple
				// through the rematerialization; remove it only if the
				// recomputation no longer visited the object.
				visited, err := m.rematerializeTracked(g, e, i)
				if err != nil {
					return err
				}
				if _, ok := visited[t.O]; !ok {
					if err := m.removeTuple(t); err != nil {
						return err
					}
				}
				break
			}
			// immediate(o): (1) remove the RRR tuple, (2) recompute and
			// replace, (3) re-insert tuples for all accessed objects.
			if err := m.removeTuple(t); err != nil {
				return err
			}
			if err := m.rematerialize(g, e, i); err != nil {
				return err
			}
		}
	}
	return nil
}

// rematerialize recomputes column i of entry e and refreshes the RRR.
func (m *Manager) rematerialize(g *GMR, e *entry, i int) error {
	_, err := m.rematerializeTracked(g, e, i)
	return err
}

// rematerializeTracked recomputes column i of entry e, refreshes the RRR,
// and returns the set of objects the recomputation visited. If the entry had
// a pending deferred recomputation this serial path retires it (via
// setResult) and counts the force; under the deferred second-chance variant
// the pending item's trigger objects whose RRR tuples the recomputation no
// longer justifies are pruned.
func (m *Manager) rematerializeTracked(g *GMR, e *entry, i int) (map[object.OID]struct{}, error) {
	var triggers map[object.OID]struct{}
	if g.Strategy == Deferred {
		if it, ok := m.pending[pendingKey{g.Name, argKey(e.Args), i}]; ok {
			triggers = it.triggers
			atomic.AddInt64(&m.Stats.DeferredForces, 1)
		}
	}
	return m.rematerializeWith(g, e, i, triggers)
}

// rematerializeWith is the serial, fully charged recomputation shared by the
// immediate strategy, lazy/deferred forcing, and the flush fallback path.
func (m *Manager) rematerializeWith(g *GMR, e *entry, i int, triggers map[object.OID]struct{}) (map[object.OID]struct{}, error) {
	fn := g.Funcs[i]
	v, accessed, trace, err := m.En.EvalTrackedOrdered(m.dispatch(fn, e.Args), e.Args)
	if err != nil {
		return nil, fmt.Errorf("core: rematerializing %s: %w", fn.Name, err)
	}
	v, err = m.storeComplexResult(fn, v)
	if err != nil {
		return nil, err
	}
	if err := g.setResult(e, i, v); err != nil {
		return nil, err
	}
	atomic.AddInt64(&m.Stats.Rematerializations, 1)
	m.emit("rematerialize", g.Name, fn.Name, object.NilOID)
	for _, oid := range sortedOIDs(accessed) {
		if err := m.addRRR(oid, fn.Name, e.Args); err != nil {
			return nil, err
		}
	}
	for _, trig := range sortedOIDs(triggers) {
		if _, ok := accessed[trig]; !ok {
			if err := m.removeRRR(trig, fn.Name, e.Args); err != nil {
				return nil, err
			}
		}
	}
	m.recordTrace(g, argKey(e.Args), i, trace)
	return accessed, nil
}

// predicateUpdate implements the predicate(o) algorithm of Section 6.1: the
// update may have changed the restriction predicate's value for the
// argument combination, so the entry is admitted or expelled accordingly.
func (m *Manager) predicateUpdate(t Tuple) error {
	gname := strings.TrimPrefix(t.F, "p:")
	g, ok := m.gmrs[gname]
	if !ok || g.Restriction == nil {
		return m.removeTuple(t)
	}
	atomic.AddInt64(&m.Stats.PredicateUpdates, 1)
	m.emit("predicate", g.Name, t.F, t.O)
	k := t.argSuffix()
	// (1) remove the triple.
	if err := m.removeTuple(t); err != nil {
		return err
	}
	// Dangling argument objects mean the combination is being deleted.
	for _, a := range t.Args {
		if a.Kind == object.KRef && !m.Objs.Exists(a.R) {
			return g.removeEntry(k)
		}
	}
	// (2) recompute p and admit/expel; (3) re-insert predicate tuples —
	// evalPredicate performs (3) as a side effect.
	holds, err := m.evalPredicate(g, t.Args)
	if err != nil {
		return err
	}
	if holds {
		if _, exists := g.entries[k]; !exists {
			return m.computeEntry(g, t.Args)
		}
		return nil
	}
	return g.removeEntry(k)
}

// NewObject is GMR_Manager.new_object(o, t) (Section 4.2): extends every
// complete GMR with entries for all argument combinations containing o.
func (m *Manager) NewObject(o *object.Obj) error {
	defer m.BumpWriteEpoch()
	atomic.AddInt64(&m.Stats.NewObjects, 1)
	m.emit("new_object", "", "", o.OID)
	for _, name := range m.GMRs() {
		g := m.gmrs[name]
		if !g.Complete {
			continue
		}
		for i, at := range g.ArgTypes {
			if object.IsAtomicName(at) || !m.Sch.Reg.IsSubtypeOf(o.Type, at) {
				continue
			}
			combos, err := m.argCombinations(g, i, object.Ref(o.OID))
			if err != nil {
				return err
			}
			for _, args := range combos {
				if err := m.considerEntry(g, args); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// ForgetObject is GMR_Manager.forget_object(o) (Section 4.2): removes the
// GMR entries whose argument list contains the object about to be deleted,
// plus the deleted object's own RRR tuples. Affected entries are found via
// each GMR's supplementary argument index — lazy invalidation may already
// have consumed the RRR tuple that step 1 of the paper's algorithm relies
// on. RRR tuples of *other* objects that still reference the removed
// entries become blind references, cleaned lazily on their next access.
func (m *Manager) ForgetObject(o *object.Obj) error {
	defer m.BumpWriteEpoch()
	atomic.AddInt64(&m.Stats.ForgottenObjects, 1)
	m.emit("forget_object", "", "", o.OID)
	for _, name := range m.GMRs() {
		g := m.gmrs[name]
		for _, k := range g.entryKeysWithArg(o.OID) {
			if err := g.removeEntry(k); err != nil {
				return err
			}
		}
	}
	tuples, err := m.rrr.Lookup(o.OID)
	if err != nil {
		return err
	}
	for _, t := range tuples {
		if err := m.removeRRR(t.O, t.F, t.Args); err != nil {
			return err
		}
	}
	return nil
}

// hasEntriesWithArg reports whether any GMR has an entry whose argument
// list contains oid.
func (m *Manager) hasEntriesWithArg(oid object.OID) bool {
	for _, g := range m.gmrs {
		if len(g.argIndex[oid]) > 0 {
			return true
		}
	}
	return false
}

// InvalidateAll marks every result of the named GMR invalid and removes all
// of its RRR tuples and ObjDepFct marks — the starting state of the paper's
// Figure 10 "Lazy" configuration ("all materialized volume results had been
// invalidated before the benchmark was started — this causes the RRR and
// the sets ObjDepFct to be empty with respect to <<volume>>").
func (m *Manager) InvalidateAll(name string) error {
	defer m.BumpWriteEpoch()
	g, ok := m.gmrs[name]
	if !ok {
		return fmt.Errorf("core: no GMR %q", name)
	}
	fids := make(map[string]bool, len(g.Funcs)+1)
	for _, f := range g.Funcs {
		fids[f.Name] = true
	}
	fids[g.predID()] = true
	var victims []Tuple
	_ = m.rrr.Scan(func(t Tuple) bool {
		if fids[t.F] {
			victims = append(victims, t)
		}
		return true
	})
	for _, t := range victims {
		if err := m.removeRRR(t.O, t.F, t.Args); err != nil {
			return err
		}
	}
	for _, k := range g.order {
		for i := range g.Funcs {
			if err := g.markInvalid(k, i); err != nil {
				return err
			}
		}
	}
	return nil
}

// Revalidate recomputes every invalid result of the named GMR — the
// background sweep lazy rematerialization performs "as soon as the load ...
// falls below a predetermined threshold".
func (m *Manager) Revalidate(name string) error {
	defer m.BumpWriteEpoch()
	g, ok := m.gmrs[name]
	if !ok {
		return fmt.Errorf("core: no GMR %q", name)
	}
	for i := range g.Funcs {
		if err := m.revalidateColumn(g, i); err != nil {
			return err
		}
	}
	return nil
}

func (m *Manager) revalidateColumn(g *GMR, i int) error {
	keys := make([]string, 0, len(g.invalid[i]))
	for k := range g.invalid[i] {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e, ok := g.entries[k]
		if !ok {
			delete(g.invalid[i], k)
			continue
		}
		if err := m.rematerialize(g, e, i); err != nil {
			return err
		}
	}
	return nil
}

package core_test

// Column independence within a multi-function GMR: invalidation, backward
// revalidation, and indexes operate per function column.

import (
	"testing"

	"gomdb"
)

func TestColumnsRevalidateIndependently(t *testing.T) {
	db, g := exampleDB(t, false)
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.volume", "Cuboid.weight"}, Complete: true,
		Strategy: gomdb.Lazy, Mode: gomdb.ModeObjDep,
	})
	if err != nil {
		t.Fatal(err)
	}
	// set_Mat invalidates weight only.
	copper, err := db.New("Material", gomdb.Str("Copper"), gomdb.Float(8.96))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Set(g.Cuboids[0], "Mat", gomdb.Ref(copper)); err != nil {
		t.Fatal(err)
	}
	if gmr.InvalidCount("Cuboid.weight") != 1 || gmr.InvalidCount("Cuboid.volume") != 0 {
		t.Fatalf("invalid counts: weight=%d volume=%d",
			gmr.InvalidCount("Cuboid.weight"), gmr.InvalidCount("Cuboid.volume"))
	}
	// A backward query on volume must not pay weight's rematerialization.
	rem := db.GMRs.Stats.Rematerializations
	if _, err := db.GMRs.Backward("Cuboid.volume", 0, 1e9); err != nil {
		t.Fatal(err)
	}
	if db.GMRs.Stats.Rematerializations != rem {
		t.Fatalf("volume backward query rematerialized %d results",
			db.GMRs.Stats.Rematerializations-rem)
	}
	if gmr.InvalidCount("Cuboid.weight") != 1 {
		t.Fatal("weight column was revalidated by a volume query")
	}
	// A backward query on weight pays exactly its own debt.
	if _, err := db.GMRs.Backward("Cuboid.weight", 0, 1e9); err != nil {
		t.Fatal(err)
	}
	if db.GMRs.Stats.Rematerializations != rem+1 {
		t.Fatalf("weight revalidation recomputed %d results, want 1",
			db.GMRs.Stats.Rematerializations-rem)
	}
	if gmr.InvalidCount("Cuboid.weight") != 0 {
		t.Fatal("weight column still invalid")
	}
	checkConsistent(t, db, gmr)
}

func TestSharedGMRAnswersBothColumns(t *testing.T) {
	db, g := exampleDB(t, false)
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.volume", "Cuboid.weight"}, Complete: true,
		Mode: gomdb.ModeObjDep,
	}); err != nil {
		t.Fatal(err)
	}
	db.GMRs.Stats.ForwardHits = 0
	wantFloat(t, db, "Cuboid.volume", g.Cuboids[2], 100)
	wantFloat(t, db, "Cuboid.weight", g.Cuboids[2], 1900)
	if db.GMRs.Stats.ForwardHits != 2 {
		t.Fatalf("shared GMR hits = %d, want 2", db.GMRs.Stats.ForwardHits)
	}
}

func TestQueryDefaultsRespectedByMaterializeStmt(t *testing.T) {
	db, _ := exampleDB(t, false)
	db.Queries.DefaultStrategy = gomdb.Lazy
	if _, err := db.Query(`range c: Cuboid materialize c.volume`, nil); err != nil {
		t.Fatal(err)
	}
	gmr, ok := db.GMRs.GMRFor("Cuboid.volume")
	if !ok {
		t.Fatal("GMR missing")
	}
	if gmr.Strategy != gomdb.Lazy {
		t.Fatalf("strategy = %v, want lazy", gmr.Strategy)
	}
	if gmr.Mode != gomdb.ModeObjDep {
		t.Fatalf("mode = %v, want objdep default", gmr.Mode)
	}
}

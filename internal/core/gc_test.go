package core_test

// Tests of the optional maintenance sweeps: second-chance immediate
// rematerialization, RRR reorganization, and result-object garbage
// collection.

import (
	"testing"

	"gomdb"
	"gomdb/internal/core"
	"gomdb/internal/fixtures"
)

// TestSecondChanceAvoidsRRRChurn: with second chance, a scale that re-uses
// the same objects performs no RRR deletions/insertions; the results stay
// identical to the standard algorithm.
func TestSecondChanceAvoidsRRRChurn(t *testing.T) {
	run := func(secondChance bool) (rrrLen int, simIO int64, db *gomdb.Database, gmr *gomdb.GMR, g *fixtures.Geometry) {
		db = gomdb.Open(gomdb.DefaultConfig())
		if err := fixtures.DefineGeometry(db, false); err != nil {
			t.Fatal(err)
		}
		var err error
		g, err = fixtures.ExampleGeometry(db)
		if err != nil {
			t.Fatal(err)
		}
		gmr, err = db.Materialize(gomdb.MaterializeOptions{
			Funcs: []string{"Cuboid.volume"}, Complete: true,
			Strategy: gomdb.Immediate, Mode: gomdb.ModeObjDep,
			SecondChance: secondChance,
		})
		if err != nil {
			t.Fatal(err)
		}
		before := db.Clock.Snapshot()
		s := fixtures.NewVertex(db, 2, 1, 1)
		if _, err := db.Call("Cuboid.scale", gomdb.Ref(g.Cuboids[0]), gomdb.Ref(s)); err != nil {
			t.Fatal(err)
		}
		d := db.Clock.Sub(before)
		return db.GMRs.RRR().Len(), d.LogWrites, db, gmr, g
	}
	lenStd, ioStd, dbStd, gmrStd, _ := run(false)
	lenSC, ioSC, dbSC, gmrSC, _ := run(true)
	if lenStd != lenSC {
		t.Fatalf("RRR sizes diverge: std %d, second-chance %d", lenStd, lenSC)
	}
	if ioSC >= ioStd {
		t.Fatalf("second chance did not save writes: std %d, sc %d", ioStd, ioSC)
	}
	checkConsistent(t, dbStd, gmrStd)
	checkConsistent(t, dbSC, gmrSC)
}

// TestSecondChanceRemovesStaleTuples: when the recomputation stops visiting
// an object, its tuple is removed even under second chance.
func TestSecondChanceRemovesStaleTuples(t *testing.T) {
	db := gomdb.Open(gomdb.DefaultConfig())
	if err := fixtures.DefineGeometry(db, false); err != nil {
		t.Fatal(err)
	}
	g, err := fixtures.ExampleGeometry(db)
	if err != nil {
		t.Fatal(err)
	}
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.weight"}, Complete: true,
		Strategy: gomdb.Immediate, Mode: gomdb.ModeObjDep,
		SecondChance: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	iron, gold := g.MaterialO[0], g.MaterialO[1]
	// Rewriting the material reference makes weight stop visiting iron.
	if err := db.Set(g.Cuboids[0], "Mat", gomdb.Ref(gold)); err != nil {
		t.Fatal(err)
	}
	args := []gomdb.Value{gomdb.Ref(g.Cuboids[0])}
	_ = args
	// Now update iron's SpecWeight: cuboid 0 no longer depends on it, but
	// cuboid 1 does. The recomputation of cuboid 1's weight revisits iron;
	// the stale tuple for cuboid 0 must disappear.
	if err := db.Set(iron, "SpecWeight", gomdb.Float(8)); err != nil {
		t.Fatal(err)
	}
	if n := db.GMRs.RRR().FctCount(iron, "Cuboid.weight"); n != 1 {
		t.Fatalf("iron still has %d weight tuples, want 1", n)
	}
	checkConsistent(t, db, gmr)
}

// TestReorganizeRRR removes blind references eagerly.
func TestReorganizeRRR(t *testing.T) {
	db, g := exampleDB(t, false)
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.weight"}, Complete: true,
		Strategy: gomdb.Immediate, Mode: gomdb.ModeObjDep,
	}); err != nil {
		t.Fatal(err)
	}
	// Deleting a cuboid leaves blind references from shared objects (the
	// material) to the removed entry.
	if err := db.Delete(g.Cuboids[1]); err != nil {
		t.Fatal(err)
	}
	removed, err := db.GMRs.ReorganizeRRR()
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("reorganization found nothing despite blind references")
	}
	// Every remaining tuple now points at an existing entry.
	bad := 0
	_ = db.GMRs.RRR().Scan(func(tp core.Tuple) bool {
		g, _ := db.GMRs.GMRFor(tp.F)
		if g == nil {
			bad++
		}
		return true
	})
	if bad != 0 {
		t.Fatalf("%d tuples without GMR after reorganization", bad)
	}
	// Idempotent.
	removed, err = db.GMRs.ReorganizeRRR()
	if err != nil || removed != 0 {
		t.Fatalf("second reorganization removed %d, err %v", removed, err)
	}
}

// TestCollectResultGarbage: rematerializing a complex result strands the old
// result objects; the collector reclaims exactly those.
func TestCollectResultGarbage(t *testing.T) {
	db := gomdb.Open(gomdb.DefaultConfig())
	if err := fixtures.DefineCompany(db); err != nil {
		t.Fatal(err)
	}
	c, err := fixtures.PopulateCompany(db, fixtures.CompanyConfig{
		Departments: 2, EmpsPerDep: 4, Projects: 6, JobsPerEmp: 3, ProgsPerProj: 3, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Company.matrix"}, Complete: true,
		Strategy: gomdb.Immediate, Mode: gomdb.ModeInfoHiding,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Nothing to collect yet: the only result is current.
	n, err := db.GMRs.CollectResultGarbage()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("fresh materialization: collected %d", n)
	}
	objsBefore := db.Objects.NumObjects()
	// Force three rematerializations.
	for i := 0; i < 3; i++ {
		p, err := c.NewProjectWithProgrammers(2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.Call("Company.add_project", gomdb.Ref(c.Comp), gomdb.Ref(p)); err != nil {
			t.Fatal(err)
		}
	}
	n, err = db.GMRs.CollectResultGarbage()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no superseded result objects collected")
	}
	// The current result must survive and remain readable.
	var cur gomdb.Value
	gmr.Entries(func(_, results []gomdb.Value, valid []bool) bool {
		cur = results[0]
		if !valid[0] {
			t.Fatal("entry invalid")
		}
		return false
	})
	lines, err := db.Engine.ReadElems(cur)
	if err != nil {
		t.Fatalf("current result unreadable after GC: %v", err)
	}
	if len(lines) == 0 {
		t.Fatal("current result empty")
	}
	for _, l := range lines {
		if _, err := db.Engine.ReadAttr(l, "Dep"); err != nil {
			t.Fatalf("matrix line unreadable after GC: %v", err)
		}
	}
	checkConsistent(t, db, gmr)
	// Second collection is a no-op.
	n, err = db.GMRs.CollectResultGarbage()
	if err != nil || n != 0 {
		t.Fatalf("second GC collected %d, err %v", n, err)
	}
	if grown := db.Objects.NumObjects() - objsBefore; grown > 40 {
		t.Logf("note: %d objects net growth after GC (current result set)", grown)
	}
}

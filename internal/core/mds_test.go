package core_test

// Tests of the Section 3.2/3.3 tabular retrieval over a multidimensional
// (Grid File) GMR index.

import (
	"testing"

	"gomdb"
	"gomdb/internal/core"
	"gomdb/internal/fixtures"
)

func mdsDB(t *testing.T) (*gomdb.Database, *fixtures.Geometry, *gomdb.GMR) {
	t.Helper()
	db := gomdb.Open(gomdb.DefaultConfig())
	if err := fixtures.DefineGeometry(db, false); err != nil {
		t.Fatal(err)
	}
	g, err := fixtures.PopulateGeometry(db, 50, 17)
	if err != nil {
		t.Fatal(err)
	}
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs:    []string{"Cuboid.volume", "Cuboid.weight"},
		Complete: true,
		Strategy: gomdb.Lazy,
		Mode:     gomdb.ModeObjDep,
		UseMDS:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !gmr.HasMDS() {
		t.Fatal("MDS not created")
	}
	return db, g, gmr
}

// retrieveRef runs the same tabular query by scanning the extension.
func retrieveRef(t *testing.T, db *gomdb.Database, gmr *gomdb.GMR, spec []core.FieldSpec) int {
	t.Helper()
	// Build a second, scan-only answer via Entries after revalidation.
	for _, fid := range gmr.FuncIDs() {
		_ = fid
	}
	n := 0
	gmr.Entries(func(args, results []gomdb.Value, valid []bool) bool {
		cols := append(append([]gomdb.Value{}, args...), results...)
		ok := true
		for i, f := range spec {
			if f.Exact != nil && !cols[i].Equal(*f.Exact) {
				ok = false
			}
			if f.Lo != nil {
				v, _ := cols[i].AsFloat()
				if cols[i].Kind == gomdb.Ref(0).Kind {
					v = float64(cols[i].R)
				}
				if v < *f.Lo {
					ok = false
				}
			}
			if f.Hi != nil {
				v, _ := cols[i].AsFloat()
				if cols[i].Kind == gomdb.Ref(0).Kind {
					v = float64(cols[i].R)
				}
				if v > *f.Hi {
					ok = false
				}
			}
		}
		if ok {
			n++
		}
		return true
	})
	return n
}

// TestRetrieveForwardAndBackward reproduces the Section 3.2 table: the
// forward query (all arguments bound, results retrieved) and the backward
// range query (ranges on results, arguments retrieved).
func TestRetrieveForwardAndBackward(t *testing.T) {
	db, g, gmr := mdsDB(t)
	// Forward: [id_i | ? | ?].
	rows, err := db.GMRs.Retrieve(gmr.Name, []core.FieldSpec{
		core.ExactSpec(gomdb.Ref(g.Cuboids[3])),
		core.AnySpec(),
		core.AnySpec(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Args[0].R != g.Cuboids[3] {
		t.Fatalf("forward retrieve: %v", rows)
	}
	fn, _ := db.Schema.LookupFunction("Cuboid.volume")
	want, _ := db.Engine.EvalRaw(fn, rows[0].Args)
	if !rows[0].Results[0].Equal(want) {
		t.Fatalf("forward retrieve volume = %v, want %v", rows[0].Results[0], want)
	}
	// Backward: [? | [100,300] | [500, 3000]].
	spec := []core.FieldSpec{
		core.AnySpec(),
		core.RangeSpec(100, 300),
		core.RangeSpec(500, 3000),
	}
	rows, err = db.GMRs.Retrieve(gmr.Name, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != retrieveRef(t, db, gmr, spec) {
		t.Fatalf("backward retrieve %d rows, scan says %d", len(rows), retrieveRef(t, db, gmr, spec))
	}
	if len(rows) == 0 {
		t.Fatal("vacuous backward window")
	}
}

// TestRetrieveRevalidatesConstrainedColumns: under lazy maintenance a
// constrained result column is revalidated before searching, so stale
// values cannot cause misses.
func TestRetrieveRevalidatesConstrainedColumns(t *testing.T) {
	db, g, gmr := mdsDB(t)
	// Shrink one cuboid so its stale volume would wrongly stay in a large
	// window (and its fresh volume in a small one).
	s := fixtures.NewVertex(db, 0.1, 1, 1)
	if _, err := db.Call("Cuboid.scale", gomdb.Ref(g.Cuboids[0]), gomdb.Ref(s)); err != nil {
		t.Fatal(err)
	}
	if gmr.InvalidCount("Cuboid.volume") == 0 {
		t.Fatal("scale did not invalidate under lazy")
	}
	fn, _ := db.Schema.LookupFunction("Cuboid.volume")
	fresh, _ := db.Engine.EvalRaw(fn, []gomdb.Value{gomdb.Ref(g.Cuboids[0])})
	f, _ := fresh.AsFloat()
	rows, err := db.GMRs.Retrieve(gmr.Name, []core.FieldSpec{
		core.AnySpec(),
		core.RangeSpec(f-0.001, f+0.001),
		core.AnySpec(),
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rows {
		if r.Args[0].R == g.Cuboids[0] {
			found = true
		}
	}
	if !found {
		t.Fatal("retrieve missed the rescaled cuboid (stale MDS key not repaired)")
	}
	if gmr.InvalidCount("Cuboid.volume") != 0 {
		t.Fatal("constrained retrieve did not revalidate")
	}
}

// TestRetrieveExposesValidity: an unconstrained ('don't care') column may
// carry a stale value, flagged through Row.Valid.
func TestRetrieveExposesValidity(t *testing.T) {
	db, g, gmr := mdsDB(t)
	// Invalidate weight only (lazy GMR): change the material reference.
	mat := g.MaterialO[1]
	if err := db.Set(g.Cuboids[0], "Mat", gomdb.Ref(mat)); err != nil {
		t.Fatal(err)
	}
	if gmr.InvalidCount("Cuboid.weight") == 0 {
		t.Fatal("set_Mat did not invalidate weight")
	}
	// Query constraining only the argument: weight column stays stale and
	// is reported as invalid.
	rows, err := db.GMRs.Retrieve(gmr.Name, []core.FieldSpec{
		core.ExactSpec(gomdb.Ref(g.Cuboids[0])),
		core.AnySpec(),
		core.AnySpec(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Valid[1] {
		t.Fatal("stale weight column reported valid")
	}
	if !rows[0].Valid[0] {
		t.Fatal("volume column wrongly invalid")
	}
	// Constraining the weight column forces revalidation.
	rows, err = db.GMRs.Retrieve(gmr.Name, []core.FieldSpec{
		core.ExactSpec(gomdb.Ref(g.Cuboids[0])),
		core.AnySpec(),
		core.RangeSpec(-1e12, 1e12),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !rows[0].Valid[1] {
		t.Fatalf("constrained retrieve did not revalidate: %+v", rows)
	}
}

// TestRetrieveCombinedArgAndResult constrains an argument and a result at
// once — the "any combination" the paper's QBE table promises.
func TestRetrieveCombinedArgAndResult(t *testing.T) {
	db, g, gmr := mdsDB(t)
	oid := g.Cuboids[7]
	fn, _ := db.Schema.LookupFunction("Cuboid.volume")
	v, _ := db.Engine.EvalRaw(fn, []gomdb.Value{gomdb.Ref(oid)})
	f, _ := v.AsFloat()
	rows, err := db.GMRs.Retrieve(gmr.Name, []core.FieldSpec{
		core.ExactSpec(gomdb.Ref(oid)),
		core.RangeSpec(f-1, f+1),
		core.AnySpec(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("combined retrieve returned %d rows", len(rows))
	}
	rows, err = db.GMRs.Retrieve(gmr.Name, []core.FieldSpec{
		core.ExactSpec(gomdb.Ref(oid)),
		core.RangeSpec(f+10, f+20), // wrong window
		core.AnySpec(),
	})
	if err != nil || len(rows) != 0 {
		t.Fatalf("mismatching combined retrieve returned %d rows, err %v", len(rows), err)
	}
}

// TestRetrieveWithoutMDSFallsBackToScan: Retrieve works (by scanning) when
// the GMR was created without an MDS.
func TestRetrieveWithoutMDSFallsBackToScan(t *testing.T) {
	db, _ := exampleDB(t, false)
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.volume", "Cuboid.weight"}, Complete: true,
		Mode: gomdb.ModeObjDep,
	})
	if err != nil {
		t.Fatal(err)
	}
	if gmr.HasMDS() {
		t.Fatal("MDS created without UseMDS")
	}
	rows, err := db.GMRs.Retrieve(gmr.Name, []core.FieldSpec{
		core.AnySpec(),
		core.RangeSpec(150, 350),
		core.AnySpec(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // volumes 200 and 300
		t.Fatalf("scan retrieve returned %d rows", len(rows))
	}
}

// TestMDSRejectsHighArity: the distance GMR (Cuboid x Robot + 1 result) fits
// in 3 dims, but a hypothetical 5-column GMR must be rejected, matching the
// paper's dimensionality caveat.
func TestMDSRejectsHighArity(t *testing.T) {
	db, _ := exampleDB(t, false)
	// volume+weight+distance can't share (different args); build a GMR with
	// 4 functions over Cuboid: length, width, height, volume = 5 columns.
	_, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs:    []string{"Cuboid.length", "Cuboid.width", "Cuboid.height", "Cuboid.volume"},
		Complete: true,
		Mode:     gomdb.ModeObjDep,
		UseMDS:   true,
	})
	if err == nil {
		t.Fatal("5-column MDS accepted")
	}
}

// TestMDSMaintainedUnderUpdates: updates, creates, and deletes keep the MDS
// in sync with the extension.
func TestMDSMaintainedUnderUpdates(t *testing.T) {
	db, g, gmr := mdsDB(t)
	// Scale a few cuboids, create one, delete one.
	for i := 0; i < 5; i++ {
		s := fixtures.NewVertex(db, 0.5+float64(i)*0.2, 1, 1)
		if _, err := db.Call("Cuboid.scale", gomdb.Ref(g.Cuboids[i]), gomdb.Ref(s)); err != nil {
			t.Fatal(err)
		}
	}
	g.CreateRandomCuboid()
	if err := g.DeleteRandomCuboid(); err != nil {
		t.Fatal(err)
	}
	// Full-window retrieve must agree with the extension.
	rows, err := db.GMRs.Retrieve(gmr.Name, []core.FieldSpec{
		core.AnySpec(), core.RangeSpec(-1e12, 1e12), core.AnySpec(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(db.Extension("Cuboid")) {
		t.Fatalf("retrieve %d rows for %d cuboids", len(rows), len(db.Extension("Cuboid")))
	}
}

package core

import (
	"fmt"
	"math"

	"gomdb/internal/object"
)

// Observability and self-verification: a trace hook on every maintenance
// action of the GMR manager, and an online checker for the paper's
// consistency definitions, usable by downstream code the way the test suite
// uses it.

// TraceEvent describes one maintenance action.
type TraceEvent struct {
	// Op is the action: "invalidate", "rematerialize", "compensate",
	// "new_object", "forget_object", "predicate", "forward_hit",
	// "forward_miss", "backward".
	Op string
	// GMR is the affected relation (may be empty for object-level events).
	GMR string
	// Fct is the materialized function involved, if any.
	Fct string
	// Obj is the triggering or argument object, if any.
	Obj object.OID
}

func (e TraceEvent) String() string {
	s := e.Op
	if e.Fct != "" {
		s += " " + e.Fct
	}
	if e.Obj != object.NilOID {
		s += " @" + e.Obj.String()
	}
	if e.GMR != "" {
		s += " [" + e.GMR + "]"
	}
	return s
}

// Trace, when set, receives one event per maintenance action — the paper's
// GMR_Manager invocations made visible. Keep the callback cheap; it runs
// inline with update processing. Forward hits and backward queries run under
// the Database read lock, so the callback may fire from several goroutines
// at once and must do its own synchronization if it accumulates state.
func (m *Manager) SetTrace(fn func(TraceEvent)) {
	if fn == nil {
		m.trace.Store(nil)
		return
	}
	m.trace.Store(&fn)
}

func (m *Manager) emit(op, gmr, fct string, obj object.OID) {
	if fn := m.trace.Load(); fn != nil {
		(*fn)(TraceEvent{Op: op, GMR: gmr, Fct: fct, Obj: obj})
	}
}

// ConsistencyReport summarizes a CheckConsistency run.
type ConsistencyReport struct {
	GMR        string
	Entries    int
	Valid      int
	Invalid    int
	Violations []string
}

func (r ConsistencyReport) String() string {
	return fmt.Sprintf("%s: %d entries (%d valid, %d invalid), %d violations",
		r.GMR, r.Entries, r.Valid, r.Invalid, len(r.Violations))
}

// Err returns an error if the report contains violations.
func (r ConsistencyReport) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	return fmt.Errorf("core: GMR %s violates consistency: %s (and %d more)",
		r.GMR, r.Violations[0], len(r.Violations)-1)
}

// CheckConsistency verifies Definition 3.2 for the named GMR: every valid
// entry must equal a fresh recomputation of its function against the
// current object base (numeric results compare with relative tolerance tol;
// complex results are compared by recomputing and canonically expanding
// both sides). With checkComplete it also verifies Definition 3.4/6.1
// completeness against the current type extensions. The check reads through
// the normal (charged) access paths, so it is also a realistic "audit"
// workload.
func (m *Manager) CheckConsistency(name string, tol float64, checkComplete bool) (*ConsistencyReport, error) {
	g, ok := m.gmrs[name]
	if !ok {
		return nil, fmt.Errorf("core: no GMR %q", name)
	}
	rep := &ConsistencyReport{GMR: name}
	type row struct {
		args    []object.Value
		results []object.Value
		valid   []bool
	}
	var rows []row
	g.Entries(func(args, results []object.Value, valid []bool) bool {
		rows = append(rows, row{
			append([]object.Value{}, args...),
			append([]object.Value{}, results...),
			append([]bool{}, valid...),
		})
		return true
	})
	rep.Entries = len(rows)
	for _, r := range rows {
		for i, fn := range g.Funcs {
			if !r.valid[i] {
				rep.Invalid++
				continue
			}
			rep.Valid++
			fresh, err := m.En.EvalRaw(fn, r.args)
			if err != nil {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("%s(%v): recomputation failed: %v", fn.Name, r.args, err))
				continue
			}
			if !m.resultsEquivalent(r.results[i], fresh, tol) {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("%s(%v): stored %v != fresh %v", fn.Name, r.args, r.results[i], fresh))
			}
		}
	}
	if checkComplete {
		combos, err := m.argCombinations(g, -1, object.Null())
		if err != nil {
			return nil, err
		}
		want := 0
		for _, args := range combos {
			if !g.admitsArgs(args) {
				continue
			}
			if g.Restriction != nil {
				holds, err := m.En.EvalRaw(g.Restriction.Fn, args)
				if err != nil {
					return nil, err
				}
				if !holds.Truth() {
					if _, present := g.lookup(args); present {
						rep.Violations = append(rep.Violations,
							fmt.Sprintf("entry %v present but restriction predicate is false", args))
					}
					continue
				}
			}
			want++
			if _, present := g.lookup(args); !present {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("missing entry for argument combination %v", args))
			}
		}
		if want != len(rows) {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("extension has %d entries, completeness requires %d", len(rows), want))
		}
	}
	return rep, nil
}

// resultsEquivalent compares a stored result with a fresh recomputation,
// expanding result-object references through the live (charged) read path.
func (m *Manager) resultsEquivalent(stored, fresh object.Value, tol float64) bool {
	get := func(oid object.OID) (*object.Obj, error) {
		if !m.Objs.Exists(oid) {
			return nil, fmt.Errorf("core: no object %v", oid)
		}
		return m.Objs.Get(oid)
	}
	return m.valuesEquivalent(get, stored, fresh, tol)
}

// valuesEquivalent is resultsEquivalent parameterized over the object
// getter, so the MVCC snapshot audit can expand references at a pinned
// version (snapshot.go) while the live audit keeps its charged reads.
func (m *Manager) valuesEquivalent(get func(object.OID) (*object.Obj, error), stored, fresh object.Value, tol float64) bool {
	if stored.Equal(fresh) {
		return true
	}
	sf, okS := stored.AsFloat()
	ff, okF := fresh.AsFloat()
	if okS && okF {
		diff := math.Abs(sf - ff)
		scale := math.Max(1, math.Max(math.Abs(sf), math.Abs(ff)))
		return diff <= tol*scale
	}
	// Complex results: canonical expansion.
	seen := map[object.OID]bool{}
	return m.canonValue(get, stored, 0, seen) == m.canonValue(get, fresh, 0, map[object.OID]bool{})
}

// canonValue renders a value with result-object references expanded (via
// get) so a stored result object and a transient recomputation compare
// structurally.
func (m *Manager) canonValue(get func(object.OID) (*object.Obj, error), v object.Value, depth int, seen map[object.OID]bool) string {
	if depth > 6 {
		return v.String()
	}
	switch v.Kind {
	case object.KRef:
		if v.R == object.NilOID || seen[v.R] {
			return v.String()
		}
		o, err := get(v.R)
		if err != nil {
			return v.String()
		}
		seen[v.R] = true
		defer delete(seen, v.R)
		t := m.Sch.Reg.Lookup(o.Type)
		if len(o.Elems) > 0 || (t != nil && t.Kind != object.TupleType) {
			return m.canonValue(get, object.Value{Kind: object.KSet, Elems: o.Elems}, depth, seen)
		}
		return m.canonValue(get, object.Value{Kind: object.KTuple, TupleType: o.Type, Elems: o.Attrs}, depth, seen)
	case object.KSet:
		parts := make([]string, len(v.Elems))
		for i, e := range v.Elems {
			parts[i] = m.canonValue(get, e, depth+1, seen)
		}
		sortStrings(parts)
		return "{" + joinStrings(parts, ";") + "}"
	case object.KList:
		parts := make([]string, len(v.Elems))
		for i, e := range v.Elems {
			parts[i] = m.canonValue(get, e, depth+1, seen)
		}
		return "<" + joinStrings(parts, ";") + ">"
	case object.KTuple:
		parts := make([]string, len(v.Elems))
		for i, e := range v.Elems {
			parts[i] = m.canonValue(get, e, depth+1, seen)
		}
		return v.TupleType + "[" + joinStrings(parts, ";") + "]"
	default:
		return v.String()
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func joinStrings(s []string, sep string) string {
	out := ""
	for i, x := range s {
		if i > 0 {
			out += sep
		}
		out += x
	}
	return out
}

package core_test

// Failure injection: once the simulated disk starts failing, every layer —
// object manager, engine, GMR manager, query executor — must surface the
// error instead of panicking or silently corrupting results, and must
// recover once the fault clears.

import (
	"strings"
	"testing"

	"gomdb"
	"gomdb/internal/fixtures"
)

func TestDiskFailurePropagatesAndRecovers(t *testing.T) {
	// A tiny buffer pool forces physical I/O on nearly every access so the
	// injected fault is hit quickly.
	cfg := gomdb.DefaultConfig()
	cfg.BufferPages = 4
	db := gomdb.Open(cfg)
	if err := fixtures.DefineGeometry(db, false); err != nil {
		t.Fatal(err)
	}
	g, err := fixtures.PopulateGeometry(db, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.volume"}, Complete: true,
		Strategy: gomdb.Immediate, Mode: gomdb.ModeObjDep,
	}); err != nil {
		t.Fatal(err)
	}

	db.Disk.FailAfter(1)
	defer db.Disk.ClearFailure()

	// Drive operations until the fault fires; every error must mention the
	// injection and nothing may panic.
	sawError := false
	for i := 0; i < 50 && !sawError; i++ {
		c := g.Cuboids[i%len(g.Cuboids)]
		if _, err := db.Call("Cuboid.volume", gomdb.Ref(c)); err != nil {
			if !strings.Contains(err.Error(), "injected disk failure") {
				t.Fatalf("unexpected error: %v", err)
			}
			sawError = true
		}
		s := fixtures.NewVertex(db, 1, 1, 1)
		if _, err := db.Call("Cuboid.scale", gomdb.Ref(c), gomdb.Ref(s)); err != nil {
			if !strings.Contains(err.Error(), "injected disk failure") {
				t.Fatalf("unexpected error: %v", err)
			}
			sawError = true
		}
	}
	if !sawError {
		t.Fatal("fault never surfaced")
	}
	// Queries fail cleanly too.
	if _, err := db.Query(`range c: Cuboid retrieve c where c.volume > 0.0`, nil); err == nil {
		t.Fatal("query succeeded on a failing disk")
	}

	// After the fault clears the system keeps working; results computed
	// afterwards are correct (maintenance errors abort the operation, so
	// the affected entry may be stale-but-valid only if its update never
	// applied — verify by re-scaling through the normal path).
	db.Disk.ClearFailure()
	if _, err := db.Query(`range c: Cuboid retrieve c where c.volume > 0.0`, nil); err != nil {
		t.Fatalf("query after recovery: %v", err)
	}
	c := g.Cuboids[0]
	s := fixtures.NewVertex(db, 2, 1, 1)
	if _, err := db.Call("Cuboid.scale", gomdb.Ref(c), gomdb.Ref(s)); err != nil {
		t.Fatalf("scale after recovery: %v", err)
	}
	v, err := db.Call("Cuboid.volume", gomdb.Ref(c))
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := db.Schema.LookupFunction("Cuboid.volume")
	fresh, err := db.Engine.EvalRaw(fn, []gomdb.Value{gomdb.Ref(c)})
	if err != nil {
		t.Fatal(err)
	}
	if !valuesClose(v, fresh) {
		t.Fatalf("post-recovery GMR answer %v differs from recomputation %v", v, fresh)
	}
}

func TestDiskFailureDuringMaterialization(t *testing.T) {
	cfg := gomdb.DefaultConfig()
	cfg.BufferPages = 4
	db := gomdb.Open(cfg)
	if err := fixtures.DefineGeometry(db, false); err != nil {
		t.Fatal(err)
	}
	if _, err := fixtures.PopulateGeometry(db, 30, 5); err != nil {
		t.Fatal(err)
	}
	db.Disk.FailAfter(3)
	_, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.volume"}, Complete: true, Mode: gomdb.ModeObjDep,
	})
	if err == nil {
		t.Fatal("materialization succeeded on a failing disk")
	}
	db.Disk.ClearFailure()
	// The failed materialization must have been rolled out of the catalog:
	// no hooks, no GMR, and a retry succeeds.
	if db.GMRs.InstalledHookCount() != 0 {
		t.Fatalf("%d hooks left after failed materialization", db.GMRs.InstalledHookCount())
	}
	if len(db.GMRs.GMRs()) != 0 {
		t.Fatalf("GMR left registered after failure: %v", db.GMRs.GMRs())
	}
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.volume"}, Complete: true, Mode: gomdb.ModeObjDep,
	})
	if err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	rep, err := db.GMRs.CheckConsistency(gmr.Name, 1e-9, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
}

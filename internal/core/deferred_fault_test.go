package core_test

// Error paths of the deferred drain: a recomputation failing mid-Flush must
// leave the pending queue consistent (applied items retired, unapplied items
// still queued), keep the GMR forceable once the fault clears, and keep the
// flush statistics accurate.

import (
	"errors"
	"testing"

	"gomdb"
	"gomdb/internal/fixtures"
	"gomdb/internal/storage"
)

// deferredWithPending builds a deferred Cuboid.volume GMR over n cuboids and
// invalidates every entry by scaling each cuboid once, so PendingLen() == n.
// The tiny buffer pool forces physical reads during phase-2 trace replay.
func deferredWithPending(t *testing.T, n int) (*gomdb.Database, *fixtures.Geometry, *gomdb.GMR) {
	t.Helper()
	cfg := gomdb.DefaultConfig()
	cfg.BufferPages = 4
	db := gomdb.Open(cfg)
	if err := fixtures.DefineGeometry(db, false); err != nil {
		t.Fatal(err)
	}
	g, err := fixtures.PopulateGeometry(db, n, 11)
	if err != nil {
		t.Fatal(err)
	}
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.volume"}, Complete: true,
		Strategy: gomdb.Deferred, Mode: gomdb.ModeObjDep,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range g.Cuboids {
		s := fixtures.NewVertex(db, 1.5, 1.0, 1.0)
		if _, err := db.Call("Cuboid.scale", gomdb.Ref(c), gomdb.Ref(s)); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.GMRs.PendingLen(); got != n {
		t.Fatalf("expected %d pending recomputations, got %d", n, got)
	}
	return db, g, gmr
}

func TestDeferredFlushFaultMidDrain(t *testing.T) {
	const n = 20
	db, g, gmr := deferredWithPending(t, n)

	// Phase 1 of the drain evaluates on charge-free snapshots and is immune
	// to injected faults by design; the first charged read of the objects
	// heap happens in the phase-2 trace replay, so a persistent read fault
	// on "objects" fails the drain partway through the serial apply.
	db.Disk.SetFaultPlan(storage.FaultPlan{Rules: []storage.FaultRule{
		{Op: storage.FaultRead, File: "objects", After: 3},
	}})
	err := db.Flush()
	if err == nil {
		t.Fatal("flush succeeded on a failing disk")
	}
	if !errors.Is(err, gomdb.ErrInjectedFault) {
		t.Fatalf("flush error does not wrap ErrInjectedFault: %v", err)
	}

	// The queue must stay consistent: every item is either revalidated
	// (setResult ran, retiring it from the queue) or still pending — nothing
	// lost, nothing duplicated. Revalidations are counted by
	// Stats.Rematerializations (the initial populate contributed n). Note
	// the item the fault interrupted can be "half applied": its result was
	// stored and its pending entry retired, but the RRR refresh after it
	// (which under ModeObjDep reads the object to maintain the ObjDepFct
	// marking) errored before FlushedItems was counted.
	revalidated := int(db.GMRs.Stats.Rematerializations) - n
	applied := int(db.GMRs.Stats.FlushedItems)
	remaining := db.GMRs.PendingLen()
	if revalidated+remaining != n {
		t.Fatalf("queue inconsistent after failed flush: %d revalidated + %d pending != %d",
			revalidated, remaining, n)
	}
	halfApplied := revalidated - applied
	if halfApplied < 0 || halfApplied > 1 {
		t.Fatalf("%d items counted flushed but %d revalidated: at most the interrupted item may differ",
			applied, revalidated)
	}
	if remaining == 0 {
		t.Fatal("fault fired but every item was applied; drain was not interrupted")
	}
	if flushes := db.GMRs.Stats.Flushes; flushes != 1 {
		t.Fatalf("Stats.Flushes = %d after one (failed) flush, want 1", flushes)
	}

	// Once the fault clears, a second flush drains the remainder and the GMR
	// is fully forceable and congruent again.
	db.Disk.ClearFaults()
	if err := db.Flush(); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
	if got := db.GMRs.PendingLen(); got != 0 {
		t.Fatalf("%d items still pending after recovery flush", got)
	}
	// Each of the n invalidated entries was recomputed exactly once across
	// the two flushes — coalescing bookkeeping survived the interruption.
	if got := int(db.GMRs.Stats.Rematerializations); got != 2*n {
		t.Fatalf("Stats.Rematerializations = %d, want %d (populate %d + one recompute per entry)",
			got, 2*n, n)
	}
	if got := int(db.GMRs.Stats.FlushedItems); got != n-halfApplied {
		t.Fatalf("Stats.FlushedItems = %d, want %d", got, n-halfApplied)
	}
	if got := db.GMRs.Stats.Flushes; got != 2 {
		t.Fatalf("Stats.Flushes = %d, want 2", got)
	}
	rep, err := db.CheckConsistency(gmr.Name, 1e-9, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("GMR inconsistent after recovery: %v", err)
	}
	// Forward force through the public path agrees with a fresh evaluation.
	c := g.Cuboids[0]
	v, err := db.Call("Cuboid.volume", gomdb.Ref(c))
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := db.Schema.LookupFunction("Cuboid.volume")
	fresh, err := db.Engine.EvalRaw(fn, []gomdb.Value{gomdb.Ref(c)})
	if err != nil {
		t.Fatal(err)
	}
	if !valuesClose(v, fresh) {
		t.Fatalf("post-recovery GMR answer %v differs from recomputation %v", v, fresh)
	}
}

// TestDeferredFlushFaultThenForce: after a failed drain, individual forward
// forces (which recompute one entry under full charging) must still work on
// the entries left pending, retiring them from the queue one by one.
func TestDeferredFlushFaultThenForce(t *testing.T) {
	const n = 12
	db, g, _ := deferredWithPending(t, n)

	db.Disk.SetFaultPlan(storage.FaultPlan{Rules: []storage.FaultRule{
		{Op: storage.FaultRead, File: "objects", After: 0},
	}})
	if err := db.Flush(); err == nil {
		t.Fatal("flush succeeded on a failing disk")
	}
	db.Disk.ClearFaults()

	before := db.GMRs.PendingLen()
	if before == 0 {
		t.Fatal("no items left pending after interrupted drain")
	}
	// Force every cuboid's volume through the normal lookup path; each force
	// of an invalidated entry must retire its pending item.
	for _, c := range g.Cuboids {
		if _, err := db.Call("Cuboid.volume", gomdb.Ref(c)); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.GMRs.PendingLen(); got != 0 {
		t.Fatalf("%d pending items survived forcing every entry", got)
	}
	// A final flush finds no work and must not inflate the statistics.
	flushes := db.GMRs.Stats.Flushes
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := db.GMRs.Stats.Flushes; got != flushes {
		t.Fatalf("empty flush counted as work: Flushes %d -> %d", flushes, got)
	}
}

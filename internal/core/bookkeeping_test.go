package core_test

// Regression tests for retrieval-path bookkeeping: the aggregate paths must
// reject non-numeric columns instead of silently summing zeros, backward
// queries must show up in statistics and traces no matter which entry point
// served them, and every forward access — hit, lazy rematerialization, or
// incremental insert — must feed the trace hook and the second-chance
// reference bits consulted by cache eviction.

import (
	"strings"
	"testing"

	"gomdb"
	"gomdb/internal/fixtures"
)

// TestSumRejectsNonNumericExtension: Sum over a whole extension of a
// string-valued materialized function must error, exactly like the
// per-argument path does, rather than summing the zero values AsFloat
// reports for non-numeric results.
func TestSumRejectsNonNumericExtension(t *testing.T) {
	db, g := exampleDB(t, false)
	if err := db.DefineOpSrc("Material", `
		define mname: string is
			return self.Name
		end`, true); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Material.mname"}, Complete: true,
		Strategy: gomdb.Immediate, Mode: gomdb.ModeObjDep,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.GMRs.Sum("Material.mname", nil); err == nil {
		t.Fatal("whole-extension Sum over a string column succeeded")
	} else if !strings.Contains(err.Error(), "non-numeric") {
		t.Fatalf("whole-extension Sum error = %v, want non-numeric", err)
	}
	// The per-argument path must fail the same way.
	if _, err := db.GMRs.Sum("Material.mname", []gomdb.OID{g.MaterialO[0]}); err == nil {
		t.Fatal("per-argument Sum over a string column succeeded")
	} else if !strings.Contains(err.Error(), "non-numeric") {
		t.Fatalf("per-argument Sum error = %v, want non-numeric", err)
	}
}

// TestBackwardAnyCountsAndEmits: the existence-only backward query must
// increment Stats.BackwardQueries and emit a "backward" trace event just
// like the full range query.
func TestBackwardAnyCountsAndEmits(t *testing.T) {
	db, _ := exampleDB(t, false)
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.weight"}, Complete: true,
		Strategy: gomdb.Immediate, Mode: gomdb.ModeObjDep,
	}); err != nil {
		t.Fatal(err)
	}
	var events []string
	db.SetTrace(func(ev gomdb.TraceEvent) { events = append(events, ev.Op) })
	before := db.GMRs.Stats.BackwardQueries
	m, found, err := db.GMRs.BackwardAny("Cuboid.weight", 1500, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("no cuboid with weight in [1500, 2000]")
	}
	if f, _ := m.Result.AsFloat(); f < 1500 || f > 2000 {
		t.Fatalf("BackwardAny returned weight %g outside the range", f)
	}
	if got := db.GMRs.Stats.BackwardQueries - before; got != 1 {
		t.Fatalf("BackwardAny bumped BackwardQueries by %d, want 1", got)
	}
	if len(events) == 0 || events[0] != "backward" {
		t.Fatalf("BackwardAny emitted %v, want a backward event", events)
	}
}

// countOps tallies trace events by op name.
func countOps(events []string) map[string]int {
	n := map[string]int{}
	for _, e := range events {
		n[e]++
	}
	return n
}

// TestForwardExitsEmitUniformly: all three cached exits of Forward — valid
// hit, lazy rematerialization, incremental insert — must report to the
// statistics and the trace hook.
func TestForwardExitsEmitUniformly(t *testing.T) {
	db, g := exampleDB(t, false)
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.weight"}, Complete: true,
		Strategy: gomdb.Lazy, Mode: gomdb.ModeObjDep,
	}); err != nil {
		t.Fatal(err)
	}
	var events []string
	db.SetTrace(func(ev gomdb.TraceEvent) { events = append(events, ev.Op) })
	arg := []gomdb.Value{gomdb.Ref(g.Cuboids[0])}

	// Valid hit.
	hitsBefore := db.GMRs.Stats.ForwardHits
	if _, err := db.GMRs.Forward("Cuboid.weight", arg); err != nil {
		t.Fatal(err)
	}
	if db.GMRs.Stats.ForwardHits != hitsBefore+1 {
		t.Fatal("valid hit not counted")
	}
	if n := countOps(events); n["forward_hit"] != 1 {
		t.Fatalf("valid hit emitted %v", events)
	}

	// Lazy rematerialization: invalidate, then look up again.
	if err := db.Set(g.MaterialO[0], "SpecWeight", gomdb.Float(8)); err != nil {
		t.Fatal(err)
	}
	events = nil
	missesBefore := db.GMRs.Stats.ForwardMisses
	if _, err := db.GMRs.Forward("Cuboid.weight", arg); err != nil {
		t.Fatal(err)
	}
	if db.GMRs.Stats.ForwardMisses != missesBefore+1 {
		t.Fatal("lazy rematerialization not counted as a miss")
	}
	if n := countOps(events); n["forward_miss"] != 1 {
		t.Fatalf("lazy rematerialization emitted %v, want one forward_miss", events)
	}

	// Incremental insert on a cache GMR.
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.volume"}, Complete: false, MaxEntries: 8,
		Strategy: gomdb.Immediate, Mode: gomdb.ModeObjDep,
	}); err != nil {
		t.Fatal(err)
	}
	events = nil
	missesBefore = db.GMRs.Stats.ForwardMisses
	if _, err := db.GMRs.Forward("Cuboid.volume", arg); err != nil {
		t.Fatal(err)
	}
	if db.GMRs.Stats.ForwardMisses != missesBefore+1 {
		t.Fatal("incremental insert not counted as a miss")
	}
	if n := countOps(events); n["forward_miss"] != 1 {
		t.Fatalf("incremental insert emitted %v, want one forward_miss", events)
	}
}

// TestSecondChanceCacheEviction: a forward hit sets the entry's reference
// bit, so the next eviction sweep spares the re-accessed entry and evicts an
// untouched one — plain FIFO would evict the oldest regardless of use.
func TestSecondChanceCacheEviction(t *testing.T) {
	db, g := exampleDB(t, false)
	// Two extra cuboids so five distinct argument combinations exercise the
	// three-slot cache below.
	mkExtra := func() gomdb.OID {
		g.NextID++
		return fixtures.NewCuboid(db, g.NextID, 0, 0, 0, 2, 2, 2, g.MaterialO[0], 5)
	}
	d, e := mkExtra(), mkExtra()
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.volume"}, Complete: false, MaxEntries: 3,
		Strategy: gomdb.Immediate, Mode: gomdb.ModeObjDep,
	})
	if err != nil {
		t.Fatal(err)
	}
	fwd := func(oid gomdb.OID) {
		t.Helper()
		if _, err := db.GMRs.Forward("Cuboid.volume", []gomdb.Value{gomdb.Ref(oid)}); err != nil {
			t.Fatal(err)
		}
	}
	a, b, c := g.Cuboids[0], g.Cuboids[1], g.Cuboids[2]
	fwd(a)
	fwd(b)
	fwd(c)
	// Inserting d overflows the cache; the sweep clears every fresh bit and
	// evicts a, leaving {b, c, d} with only the newcomer d marked.
	fwd(d)
	// Re-access b: its reference bit is set again.
	fwd(b)
	// Inserting e must evict c — the only unreferenced entry — sparing the
	// re-accessed b. Plain FIFO would evict b, the oldest resident.
	fwd(e)
	cached := map[gomdb.OID]bool{}
	gmr.Entries(func(args, _ []gomdb.Value, _ []bool) bool {
		cached[args[0].R] = true
		return true
	})
	if !cached[b] {
		t.Fatalf("re-accessed entry evicted; cache = %v", cached)
	}
	if cached[c] {
		t.Fatalf("unreferenced entry survived; cache = %v", cached)
	}
	if len(cached) != 3 {
		t.Fatalf("cache holds %d entries, want 3", len(cached))
	}
}

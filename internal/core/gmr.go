// Package core implements the paper's primary contribution: function
// materialization. It provides Generalized Materialization Relations (GMRs,
// Definition 3.1), the Reverse Reference Relation (RRR, Definition 4.1), and
// the GMR manager with its invalidation and rematerialization machinery —
// lazy and immediate strategies (Section 4.1), creation and deletion of
// argument objects (Section 4.2), the update notification mechanism via
// schema rewrite (Section 4.3), the invalidation-overhead reductions of
// Section 5 (RelAttr/SchemaDepFct, ObjDepFct marking, information hiding,
// compensating actions), and restricted GMRs with atomic argument types
// (Section 6).
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"gomdb/internal/btree"
	"gomdb/internal/gridfile"
	"gomdb/internal/lang"
	"gomdb/internal/object"
	"gomdb/internal/pred"
	"gomdb/internal/storage"
)

// Strategy selects between the two rematerialization disciplines of
// Section 3.1.
type Strategy uint8

const (
	// Immediate recomputes an invalidated result as soon as the
	// invalidation occurs.
	Immediate Strategy = iota
	// Lazy only marks invalidated results; they are recomputed when next
	// needed (or by an explicit Revalidate sweep).
	Lazy
	// Deferred marks invalidated results and enqueues them on the manager's
	// coalescing recomputation queue: N updates hitting the same entry
	// between flushes cost a single recomputation, performed by the parallel
	// worker drain of Manager.Flush (see deferred.go). A lookup that touches
	// a pending entry forces just that entry, like the lazy path.
	Deferred
)

func (s Strategy) String() string {
	switch s {
	case Lazy:
		return "lazy"
	case Deferred:
		return "deferred"
	}
	return "immediate"
}

// HookMode selects how much of Section 5's machinery the schema rewrite
// uses. The modes correspond to the program versions of the paper's
// benchmarks.
type HookMode uint8

const (
	// ModeBasic is the unsophisticated Section 4 mechanism: every
	// elementary update operation of every involved type notifies the GMR
	// manager, which always performs an RRR lookup (Figure 4).
	ModeBasic HookMode = iota
	// ModeSchemaDep rewrites only the update operations in SchemaDepFct
	// (Section 5.1) and passes the schema-dependent function set along.
	ModeSchemaDep
	// ModeObjDep additionally consults the per-object ObjDepFct marking, so
	// the manager is invoked only when an invalidation will actually occur
	// (Section 5.2, Figure 5). This is the paper's "WithGMR" version.
	ModeObjDep
	// ModeInfoHiding exploits strict encapsulation: public operations with a
	// declared non-empty InvalidatedFct are rewritten instead of the
	// elementary operations of subobject types (Section 5.3). Types without
	// encapsulation fall back to ModeObjDep behaviour.
	ModeInfoHiding
)

func (m HookMode) String() string {
	switch m {
	case ModeBasic:
		return "basic"
	case ModeSchemaDep:
		return "schemadep"
	case ModeObjDep:
		return "objdep"
	case ModeInfoHiding:
		return "infohiding"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// ArgRestriction restricts an atomic argument position (Section 6.2): a
// float argument must be value-restricted, an int argument may be value- or
// range-restricted.
type ArgRestriction struct {
	// Values enumerates the admissible argument values (value-restricted).
	Values []object.Value
	// IsRange selects range restriction Lo <= x <= Hi for int arguments.
	IsRange bool
	Lo, Hi  int64
}

// Restriction is the restriction predicate p of a p-restricted GMR
// (Definition 6.1).
type Restriction struct {
	// Fn is the executable predicate p : t1,...,tn -> bool; it is treated
	// as a materialized function for invalidation purposes (Section 6.1).
	Fn *lang.Function
	// Formula is the declarative form of p used for the backward-query
	// applicability test (¬p ∧ σ′ unsatisfiable); variables are canonical
	// "arg<i>.<path>" strings. Optional: without it the GMR is only used
	// for forward queries.
	Formula pred.P
}

// Options configures a materialization request.
type Options struct {
	// Name identifies the GMR; defaults to "<<f1,...,fm>>".
	Name string
	// Funcs are the qualified names of the side-effect-free functions to
	// materialize; they must share their argument types (Definition 3.1).
	Funcs []string
	// Strategy selects lazy or immediate rematerialization.
	Strategy Strategy
	// Mode selects the invalidation machinery.
	Mode HookMode
	// Complete requests precomputation for every argument combination
	// (Definition 3.4); false creates an incrementally filled GMR that acts
	// as a cache of results computed during query evaluation.
	Complete bool
	// MaxEntries bounds an incremental GMR (0 = unlimited); beyond it the
	// least recently inserted entries are evicted.
	MaxEntries int
	// Restriction makes this a p-restricted GMR.
	Restriction *Restriction
	// AtomicArgs restricts atomic argument positions (by index).
	AtomicArgs map[int]ArgRestriction
	// SecondChance enables the second-chance variant of the immediate(o)
	// algorithm Section 4.1 sketches: instead of removing the updated
	// object's RRR tuple in step 1 and re-inserting it in step 3, the tuple
	// stays and is removed only if the rematerialization did not visit the
	// object again — saving a delete/insert pair in the common case where
	// an object is re-used after an update.
	SecondChance bool
	// UseMDS maintains a single multidimensional index (a Grid File) over
	// all argument and result columns instead of relying solely on the
	// conventional per-column indexes — the Section 3.3 option for GMRs of
	// at most four total columns with numeric results. It enables
	// Manager.Retrieve queries that constrain arbitrary column combinations.
	UseMDS bool
	// MemoCache enables the forward-lookup memo cache for this GMR's
	// functions: repeat forward hits against a quiescent extension are
	// answered from a sharded in-memory map without touching the buffer
	// pool — and therefore without charging the simulated clock. Off by
	// default so the paper's cost accounting is unchanged unless a caller
	// explicitly opts into the modern-hardware read path (see memo.go for
	// the epoch-based invalidation contract).
	MemoCache bool
}

// entry is one tuple of a GMR extension:
// [O1,...,On, f1, V1, ..., fm, Vm].
type entry struct {
	Args    []object.Value
	Results []object.Value
	Valid   []bool
	// aux are the btree tie-break keys per function column.
	aux []uint64
	// idx are the records of this entry in the paged index files.
	idx []storage.RID
	rid storage.RID
	// ref is the second-chance reference bit: set on insertion and on every
	// forward access, cleared when cache eviction rotates past the entry.
	// Atomic because forward hits run on the concurrent read path.
	ref atomic.Bool
}

// GMR is a generalized materialization relation (Definition 3.1). The
// extension is stored in a paged heap file (so access is charged to the
// simulated clock) with an in-memory hash index on the argument combination
// and one B+ tree per numeric result column for backward range queries — the
// "conventional indexing schemes" Section 3.3 recommends over
// multidimensional structures for higher arities.
type GMR struct {
	Name     string
	Funcs    []*lang.Function
	ArgTypes []string
	Strategy Strategy
	Mode     HookMode
	Complete bool

	MaxEntries   int
	Restriction  *Restriction
	AtomicArgs   map[int]ArgRestriction
	SecondChance bool
	// Memo mirrors Options.MemoCache: forward lookups on this GMR consult
	// and fill the manager's memo cache.
	Memo bool

	entries map[string]*entry
	order   []string // insertion order: determinism + cache eviction
	// argIndex maps an argument object to the entry keys whose argument
	// list contains it — the "supplementary index" Section 4.2 mentions as
	// the alternative to exhaustively searching the RRR. It guarantees
	// forget_object finds every affected entry even when lazy invalidation
	// already consumed the corresponding RRR tuples.
	argIndex map[object.OID]map[string]bool
	heap     *storage.HeapFile
	resIdx   []*btree.Tree // per function; nil for non-numeric results
	// idxHeap models the paged storage of each backward index: every index
	// insert, delete, and leaf visit during a range scan is charged as page
	// I/O through the buffer pool, like the conventional secondary indexes
	// Section 3.3 prescribes.
	idxHeap []*storage.HeapFile
	invalid []map[string]bool
	nextAux uint64
	// mds is the optional Grid File over all columns (Section 3.3).
	mds *gridfile.GridFile

	// colFid maps function ids (declared functions and subtype overrides)
	// to column indexes; variants holds, per column, every override body so
	// the hook planner can analyze all of them.
	colFid   map[string]int
	variants map[int][]*lang.Function

	mgr *Manager
}

// FuncIDs returns the qualified names of the materialized functions.
func (g *GMR) FuncIDs() []string {
	out := make([]string, len(g.Funcs))
	for i, f := range g.Funcs {
		out[i] = f.Name
	}
	return out
}

// predID is the pseudo-function identifier under which the restriction
// predicate of a restricted GMR is itself materialized (Section 6.1).
func (g *GMR) predID() string { return "p:" + g.Name }

// colFid maps function ids — including subtype overrides of materialized
// operations — to their column index.
//
// funcIndex returns the column of the named function, or -1.
func (g *GMR) funcIndex(fid string) int {
	if i, ok := g.colFid[fid]; ok {
		return i
	}
	for i, f := range g.Funcs {
		if f.Name == fid {
			return i
		}
	}
	return -1
}

// Len returns the number of entries in the extension.
func (g *GMR) Len() int { return len(g.entries) }

// InvalidCount returns the number of invalid results in column fid.
func (g *GMR) InvalidCount(fid string) int {
	i := g.funcIndex(fid)
	if i < 0 {
		return 0
	}
	return len(g.invalid[i])
}

// argKey encodes an argument combination as a map key.
func argKey(args []object.Value) string {
	var b strings.Builder
	for _, a := range args {
		b.Write(object.EncodeValue(a))
	}
	return b.String()
}

// encodeEntry serializes an entry for the heap file.
func encodeEntry(e *entry) []byte {
	var vals []object.Value
	vals = append(vals, object.Int(int64(len(e.Args))))
	vals = append(vals, e.Args...)
	for i := range e.Results {
		vals = append(vals, e.Results[i], object.Bool(e.Valid[i]))
	}
	var buf []byte
	for _, v := range vals {
		buf = append(buf, object.EncodeValue(v)...)
	}
	return buf
}

// insertEntry adds a new entry to the extension, heap, and indexes.
//
// Like every entry mutator it bumps the memo epoch *after* the mutation
// (via defer): bumping first opens a window where a concurrent memo-enabled
// reader loads the fresh epoch, reads the pre-mutation entry, and caches
// the stale value under an epoch that stays current — a persistent stale
// hit. Bumping last means the worst a racing reader can do is cache the new
// value under the old epoch, which never answers a lookup. The mutators
// also run under the manager's snapshot mutex so pinned MVCC readers see
// entry state change atomically (see snapshot.go).
func (g *GMR) insertEntry(e *entry) error {
	defer g.mgr.BumpWriteEpoch()
	g.mgr.snapMu.Lock()
	defer g.mgr.snapMu.Unlock()
	return g.insertEntryLocked(e)
}

func (g *GMR) insertEntryLocked(e *entry) error {
	k := argKey(e.Args)
	if _, dup := g.entries[k]; dup {
		return fmt.Errorf("core: duplicate GMR entry for %v in %s", e.Args, g.Name)
	}
	g.mgr.captureEntry(g, k, nil)
	// A full cache frees a slot before the newcomer goes in: the eviction
	// sweep then only judges entries by accesses since the previous sweep,
	// and the fresh entry keeps its reference bit until the next one.
	if g.MaxEntries > 0 && len(g.entries) >= g.MaxEntries {
		g.evictOldest()
	}
	rid, err := g.heap.Insert(encodeEntry(e))
	if err != nil {
		return err
	}
	e.rid = rid
	e.aux = make([]uint64, len(g.Funcs))
	e.idx = make([]storage.RID, len(g.Funcs))
	// A fresh entry counts as referenced, so it survives at least one
	// eviction sweep before becoming a candidate victim.
	e.ref.Store(true)
	g.entries[k] = e
	g.order = append(g.order, k)
	for _, a := range e.Args {
		if a.Kind == object.KRef {
			if g.argIndex[a.R] == nil {
				g.argIndex[a.R] = make(map[string]bool)
			}
			g.argIndex[a.R][k] = true
		}
	}
	for i := range g.Funcs {
		if e.Valid[i] {
			if err := g.indexResult(e, i); err != nil {
				return err
			}
		} else {
			g.invalid[i][k] = true
		}
	}
	if err := g.mdsInsert(e); err != nil {
		return err
	}
	return nil
}

// idxRecordSize pads index records to model B-tree key/pointer overhead and
// fill factor: ~100 index entries per 4 KB page.
const idxRecordSize = 40

// indexResult inserts entry e's column i into the backward index if the
// result is numeric, charging the index-page write.
func (g *GMR) indexResult(e *entry, i int) error {
	if g.resIdx[i] == nil {
		return nil
	}
	f, ok := e.Results[i].AsFloat()
	if !ok {
		return nil
	}
	g.nextAux++
	e.aux[i] = g.nextAux
	g.resIdx[i].Insert(btree.Key{F: f, Aux: e.aux[i]}, e)
	g.mgr.Clock.AddCPU(4)
	rid, err := g.idxHeap[i].Insert(make([]byte, idxRecordSize))
	if err != nil {
		return err
	}
	e.idx[i] = rid
	return nil
}

// unindexResult removes entry e's column i from the backward index,
// charging the index-page access.
func (g *GMR) unindexResult(e *entry, i int) error {
	if g.resIdx[i] == nil || e.aux[i] == 0 {
		return nil
	}
	if f, ok := e.Results[i].AsFloat(); ok {
		g.resIdx[i].Delete(btree.Key{F: f, Aux: e.aux[i]})
	}
	e.aux[i] = 0
	g.mgr.Clock.AddCPU(4)
	if !e.idx[i].IsZero() {
		if err := g.idxHeap[i].Delete(e.idx[i]); err != nil {
			return err
		}
		e.idx[i] = storage.RID{}
	}
	return nil
}

// touchIdx charges the index-leaf visit of a range scan for entry e.
func (g *GMR) touchIdx(e *entry, i int) error {
	if i < len(e.idx) && !e.idx[i].IsZero() {
		if _, err := g.idxHeap[i].Read(e.idx[i]); err != nil {
			return err
		}
	}
	return nil
}

// markInvalid sets Vi := false for column i of the entry with key k
// (step 1 of the lazy(o) algorithm). The backward index keeps its now-stale
// entry: lazy invalidation deliberately avoids index maintenance, and the
// index is repaired when the result is rematerialized.
func (g *GMR) markInvalid(k string, i int) error {
	e, ok := g.entries[k]
	if !ok {
		return nil
	}
	if !e.Valid[i] {
		return nil
	}
	// Epoch bump deferred past the mutation — see insertEntry.
	defer g.mgr.BumpWriteEpoch()
	g.mgr.snapMu.Lock()
	defer g.mgr.snapMu.Unlock()
	g.mgr.captureEntry(g, k, e)
	e.Valid[i] = false
	g.invalid[i][k] = true
	return g.rewrite(e)
}

// setResult replaces column i of entry e (the rematerialization write). It
// also retires any pending deferred recomputation of the same column — this
// is how a forward force, a column revalidation, and the flush apply phase
// all keep the deferred queue consistent through a single point.
func (g *GMR) setResult(e *entry, i int, v object.Value) error {
	// Epoch bump deferred past the mutation — see insertEntry.
	defer g.mgr.BumpWriteEpoch()
	g.mgr.snapMu.Lock()
	defer g.mgr.snapMu.Unlock()
	g.mgr.captureEntry(g, argKey(e.Args), e)
	if err := g.mdsDelete(e); err != nil {
		return err
	}
	if err := g.unindexResult(e, i); err != nil {
		return err
	}
	k := argKey(e.Args)
	e.Results[i] = v
	e.Valid[i] = true
	delete(g.invalid[i], k)
	g.mgr.clearPending(g.Name, k, i)
	if err := g.indexResult(e, i); err != nil {
		return err
	}
	if err := g.mdsInsert(e); err != nil {
		return err
	}
	return g.rewrite(e)
}

// rewrite persists the entry to the heap file (charging the I/O).
func (g *GMR) rewrite(e *entry) error {
	rid, err := g.heap.Update(e.rid, encodeEntry(e))
	if err != nil {
		return err
	}
	e.rid = rid
	return nil
}

// touch reads the entry record from the heap file, charging the page access
// a real system would pay to fetch the tuple.
func (g *GMR) touch(e *entry) error {
	if _, err := g.heap.Read(e.rid); err != nil {
		return err
	}
	g.mgr.Clock.AddCPU(2)
	return nil
}

// removeEntry deletes the entry with key k from the extension, heap, and
// indexes. RRR entries pointing at it become blind references that are
// lazily cleaned (Section 4.2).
func (g *GMR) removeEntry(k string) error {
	// Epoch bump deferred past the mutation — see insertEntry.
	defer g.mgr.BumpWriteEpoch()
	g.mgr.snapMu.Lock()
	defer g.mgr.snapMu.Unlock()
	return g.removeEntryLocked(k)
}

// removeEntryLocked is removeEntry's body; split out because evictOldest
// runs inside insertEntry's locked region and must not re-acquire snapMu.
func (g *GMR) removeEntryLocked(k string) error {
	e, ok := g.entries[k]
	if !ok {
		return nil
	}
	g.mgr.captureEntry(g, k, e)
	if err := g.mdsDelete(e); err != nil {
		return err
	}
	for i := range g.Funcs {
		if err := g.unindexResult(e, i); err != nil {
			return err
		}
		delete(g.invalid[i], k)
		g.mgr.clearPending(g.Name, k, i)
	}
	delete(g.entries, k)
	g.mgr.clearEntryTraces(g, k)
	for i, ok := range g.order {
		if ok == k {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
	for _, a := range e.Args {
		if a.Kind == object.KRef {
			delete(g.argIndex[a.R], k)
			if len(g.argIndex[a.R]) == 0 {
				delete(g.argIndex, a.R)
			}
		}
	}
	return g.heap.Delete(e.rid)
}

// entryKeysWithArg returns the keys of all entries whose argument list
// contains oid.
func (g *GMR) entryKeysWithArg(oid object.OID) []string {
	var out []string
	for k := range g.argIndex[oid] {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// evictOldest frees one cache slot of an over-full incremental GMR using the
// second-chance variant of FIFO:
// entries whose reference bit is set (inserted or accessed since the last
// sweep) get their bit cleared and rotate to the back; the first unreferenced
// entry is evicted. Because rotation clears bits as it goes, the sweep
// terminates within two passes even when every entry was recently accessed.
func (g *GMR) evictOldest() {
	for pass := 0; pass < 2*len(g.order); pass++ {
		if len(g.order) == 0 {
			return
		}
		k := g.order[0]
		e := g.entries[k]
		if e != nil && e.ref.Load() {
			e.ref.Store(false)
			copy(g.order, g.order[1:])
			g.order[len(g.order)-1] = k
			continue
		}
		// Called from insertEntry's locked region: use the lock-free body
		// (the insert's deferred epoch bump covers the eviction too).
		_ = g.removeEntryLocked(k)
		return
	}
}

// lookup returns the entry for an argument combination.
func (g *GMR) lookup(args []object.Value) (*entry, bool) {
	e, ok := g.entries[argKey(args)]
	return e, ok
}

// Entries calls fn for every entry in insertion order; used by queries,
// diagnostics, and tests. args and results alias internal state and must not
// be mutated.
func (g *GMR) Entries(fn func(args []object.Value, results []object.Value, valid []bool) bool) {
	for _, k := range g.order {
		e := g.entries[k]
		if !fn(e.Args, e.Results, e.Valid) {
			return
		}
	}
}

// admitsArgs checks atomic argument restrictions for an argument vector.
func (g *GMR) admitsArgs(args []object.Value) bool {
	for i, r := range g.AtomicArgs {
		if i >= len(args) {
			return false
		}
		if r.IsRange {
			if args[i].Kind != object.KInt || args[i].I < r.Lo || args[i].I > r.Hi {
				return false
			}
			continue
		}
		found := false
		for _, v := range r.Values {
			if v.Equal(args[i]) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

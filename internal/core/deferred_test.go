package core_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"gomdb"
	"gomdb/internal/fixtures"
	"gomdb/internal/storage"
)

// Tests of the Deferred rematerialization strategy: coalescing semantics,
// flush points, on-demand forcing, the second-chance interaction, and the
// charge-equivalence property (simulated cost is independent of the flush
// worker count).

func openDeferredGeometry(t *testing.T, workers, n int, secondChance bool) (*gomdb.Database, *fixtures.Geometry, *gomdb.GMR) {
	t.Helper()
	cfg := gomdb.DefaultConfig()
	cfg.RematWorkers = workers
	db := gomdb.Open(cfg)
	if err := fixtures.DefineGeometry(db, false); err != nil {
		t.Fatal(err)
	}
	g, err := fixtures.PopulateGeometry(db, n, 11)
	if err != nil {
		t.Fatal(err)
	}
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.volume", "Cuboid.weight"}, Complete: true,
		Strategy: gomdb.Deferred, Mode: gomdb.ModeObjDep, SecondChance: secondChance,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db, g, gmr
}

// vertexOf returns the OID of vertex attribute vn of cuboid c.
func vertexOf(t *testing.T, db *gomdb.Database, c gomdb.OID, vn string) gomdb.OID {
	t.Helper()
	v, err := db.GetAttr(c, vn)
	if err != nil {
		t.Fatal(err)
	}
	return v.R
}

// TestDeferredCoalescesBurst: N updates hitting the same entry between
// flushes are queued once and recomputed once.
func TestDeferredCoalescesBurst(t *testing.T) {
	db, g, gmr := openDeferredGeometry(t, 2, 12, false)
	c := g.Cuboids[0]

	st := &db.GMRs.Stats
	remat0 := atomic.LoadInt64(&st.Rematerializations)
	// Move three different vertices of the same cuboid: three invalidations
	// per materialized column, all targeting the same two GMR entries.
	for i, vn := range []string{"V1", "V2", "V4"} {
		if err := db.Set(vertexOf(t, db, c, vn), "X", gomdb.Float(float64(10+i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.GMRs.PendingLen(); got != 2 {
		t.Fatalf("pending = %d, want 2 (volume and weight of one entry)", got)
	}
	// 3 updates x 2 columns = 6 deferred invalidations; the first per column
	// enqueues, the remaining 2x2 coalesce.
	if got := atomic.LoadInt64(&st.DeferredUpdates); got != 6 {
		t.Fatalf("DeferredUpdates = %d, want 6", got)
	}
	if got := atomic.LoadInt64(&st.CoalescedUpdates); got != 4 {
		t.Fatalf("CoalescedUpdates = %d, want 4", got)
	}
	if got := atomic.LoadInt64(&st.QueueHighWater); got != 2 {
		t.Fatalf("QueueHighWater = %d, want 2", got)
	}
	if gmr.InvalidCount("Cuboid.volume") != 1 || gmr.InvalidCount("Cuboid.weight") != 1 {
		t.Fatalf("expected exactly one invalid entry per column")
	}

	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := db.GMRs.PendingLen(); got != 0 {
		t.Fatalf("pending after flush = %d, want 0", got)
	}
	if got := atomic.LoadInt64(&st.Flushes); got != 1 {
		t.Fatalf("Flushes = %d, want 1", got)
	}
	if got := atomic.LoadInt64(&st.FlushedItems); got != 2 {
		t.Fatalf("FlushedItems = %d, want 2", got)
	}
	// The whole burst cost one recomputation per column.
	if got := atomic.LoadInt64(&st.Rematerializations) - remat0; got != 2 {
		t.Fatalf("Rematerializations = %d, want 2", got)
	}
	rep, err := db.CheckConsistency(gmr.Name, 1e-6, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestDeferredForceOnLookup: a forward lookup touching a pending entry
// forces just that entry; the rest of the queue stays for the flush.
func TestDeferredForceOnLookup(t *testing.T) {
	db, g, gmr := openDeferredGeometry(t, 0, 12, false)
	st := &db.GMRs.Stats
	for _, c := range g.Cuboids[:2] {
		if err := db.Set(vertexOf(t, db, c, "V1"), "X", gomdb.Float(21)); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.GMRs.PendingLen(); got != 4 {
		t.Fatalf("pending = %d, want 4 (2 entries x 2 columns)", got)
	}
	if _, err := db.Call("Cuboid.volume", gomdb.Ref(g.Cuboids[0])); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&st.DeferredForces); got != 1 {
		t.Fatalf("DeferredForces = %d, want 1", got)
	}
	if got := db.GMRs.PendingLen(); got != 3 {
		t.Fatalf("pending after force = %d, want 3", got)
	}
	// A backward query needs the whole column valid: it forces the pending
	// volume of the second cuboid, leaving the two weight items.
	if _, err := db.GMRs.Backward("Cuboid.volume", 0, 1e9); err != nil {
		t.Fatal(err)
	}
	if got := db.GMRs.PendingLen(); got != 2 {
		t.Fatalf("pending after backward = %d, want 2", got)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := db.GMRs.PendingLen(); got != 0 {
		t.Fatalf("pending after flush = %d, want 0", got)
	}
	rep, err := db.CheckConsistency(gmr.Name, 1e-6, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestDeferredSecondChance: under the second-chance variant the RRR tuple of
// the triggering object is retained across the invalidate/flush cycle, so
// repeated updates of the same object coalesce instead of going unnoticed,
// and the flush does not pay the delete/insert pair for objects the
// recomputation still visits.
func TestDeferredSecondChance(t *testing.T) {
	db, g, gmr := openDeferredGeometry(t, 2, 12, true)
	st := &db.GMRs.Stats
	c := g.Cuboids[0]
	v1 := vertexOf(t, db, c, "V1")

	if db.GMRs.RRR().FctCount(v1, "Cuboid.volume") != 1 {
		t.Fatalf("expected one volume RRR tuple for %v before update", v1)
	}
	for i := 0; i < 3; i++ {
		if err := db.Set(v1, "X", gomdb.Float(float64(30+i))); err != nil {
			t.Fatal(err)
		}
	}
	// The tuple survived the invalidation, so the second and third update
	// still found it and coalesced (2 extra updates x 2 columns).
	if got := db.GMRs.RRR().FctCount(v1, "Cuboid.volume"); got != 1 {
		t.Fatalf("volume RRR tuples for %v = %d, want 1 (second chance retains)", v1, got)
	}
	if got := atomic.LoadInt64(&st.CoalescedUpdates); got != 4 {
		t.Fatalf("CoalescedUpdates = %d, want 4", got)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := db.GMRs.RRR().FctCount(v1, "Cuboid.volume"); got != 1 {
		t.Fatalf("volume RRR tuples for %v after flush = %d, want 1", v1, got)
	}
	rep, err := db.CheckConsistency(gmr.Name, 1e-6, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
}

// deferredWorkload drives a fixed burst-update/flush/read-back cycle and
// returns the final simulated-cost counters.
func deferredWorkload(t *testing.T, workers int, secondChance bool) storage.Clock {
	t.Helper()
	db, g, gmr := openDeferredGeometry(t, workers, 16, secondChance)
	for round := 0; round < 3; round++ {
		for ci := 0; ci < 6; ci++ {
			c := g.Cuboids[(round+ci)%len(g.Cuboids)]
			for vi, vn := range []string{"V1", "V2", "V5"} {
				if err := db.Set(vertexOf(t, db, c, vn), "Y", gomdb.Float(float64(round*7+ci+vi)+0.5)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	// Read-back so stale results would surface as wrong charges later.
	for _, c := range g.Cuboids {
		for _, fn := range []string{"Cuboid.volume", "Cuboid.weight"} {
			if _, err := db.Call(fn, gomdb.Ref(c)); err != nil {
				t.Fatal(err)
			}
		}
	}
	rep, err := db.CheckConsistency(gmr.Name, 1e-6, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	st := &db.GMRs.Stats
	if atomic.LoadInt64(&st.Flushes) == 0 || atomic.LoadInt64(&st.CoalescedUpdates) == 0 {
		t.Fatalf("workload did not exercise flush/coalescing (flushes=%d coalesced=%d)",
			atomic.LoadInt64(&st.Flushes), atomic.LoadInt64(&st.CoalescedUpdates))
	}
	return db.Snapshot()
}

// TestDeferredChargeEquivalenceAcrossWorkers: the simulated cost of a
// deferred workload is bit-identical for every flush worker count — the
// parallel drain only spreads wall-clock work, never simulated charges.
func TestDeferredChargeEquivalenceAcrossWorkers(t *testing.T) {
	for _, sc := range []bool{false, true} {
		sc := sc
		name := "plain"
		if sc {
			name = "secondchance"
		}
		t.Run(name, func(t *testing.T) {
			base := deferredWorkload(t, 1, sc)
			for _, workers := range []int{2, 4, 8} {
				got := deferredWorkload(t, workers, sc)
				if got != base {
					t.Errorf("workers=%d: counters %+v differ from 1-worker drain %+v", workers, got, base)
				}
			}
		})
	}
}

// TestDeferredBatch: Batch takes the engine lock once, and its end is a
// flush point.
func TestDeferredBatch(t *testing.T) {
	db, g, gmr := openDeferredGeometry(t, 4, 12, false)
	st := &db.GMRs.Stats
	err := db.Batch(func(tx *gomdb.Tx) error {
		for _, c := range g.Cuboids[:4] {
			for _, vn := range []string{"V4", "V5"} {
				v, err := tx.GetAttr(c, vn)
				if err != nil {
					return err
				}
				if err := tx.Set(v.R, "Z", gomdb.Float(3.25)); err != nil {
					return err
				}
			}
		}
		if got := db.GMRs.PendingLen(); got != 8 {
			return fmt.Errorf("pending inside batch = %d, want 8", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := db.GMRs.PendingLen(); got != 0 {
		t.Fatalf("pending after batch = %d, want 0 (batch end is a flush point)", got)
	}
	if got := atomic.LoadInt64(&st.Flushes); got != 1 {
		t.Fatalf("Flushes = %d, want 1", got)
	}
	// 4 entries x 2 columns x 2 distinct vertices: half coalesced.
	if got := atomic.LoadInt64(&st.CoalescedUpdates); got != 8 {
		t.Fatalf("CoalescedUpdates = %d, want 8", got)
	}
	rep, err := db.CheckConsistency(gmr.Name, 1e-6, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
}
